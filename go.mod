module herald

go 1.21
