// Availclient: a minimal HTTP client for the availserve daemon,
// demonstrating the service's JSON wire format end to end — request,
// cached replay, and a streamed adaptive run.
//
// It deliberately imports nothing from this repository: the structs
// below mirror the wire format exactly as any external client would
// write them.
//
// Start a daemon, then run the client:
//
//	go run ./cmd/availserve -listen 127.0.0.1:8080 &
//	go run ./examples/availclient -addr http://127.0.0.1:8080
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"
)

// spec mirrors dist.Spec: a distribution as family + parameters.
type spec struct {
	Family string    `json:"family"`
	Params []float64 `json:"params,omitempty"`
}

// params mirrors the service's "params" object (shard.WireParams).
type params struct {
	Disks           int     `json:"disks"`
	TTF             spec    `json:"ttf"`
	Repair          spec    `json:"repair"`
	TapeRestore     spec    `json:"tape_restore"`
	HERecovery      *spec   `json:"he_recovery,omitempty"`
	HEP             float64 `json:"hep"`
	CrashRate       float64 `json:"crash_rate"`
	ResyncAfterUndo bool    `json:"resync_after_undo"`
	Policy          int     `json:"policy"`
}

// options mirrors the service's "options" object.
type options struct {
	Iterations      int     `json:"iterations"`
	MissionTime     float64 `json:"mission_time"`
	Seed            uint64  `json:"seed"`
	TargetHalfWidth float64 `json:"target_half_width,omitempty"`
}

type runRequest struct {
	Params  params  `json:"params"`
	Options options `json:"options"`
	Shards  int     `json:"shards,omitempty"`
}

type runResponse struct {
	Fingerprint string `json:"fingerprint"`
	Cached      bool   `json:"cached"`
	Summary     struct {
		Availability float64 `json:"Availability"`
		HalfWidth    float64 `json:"HalfWidth"`
		Nines        float64 `json:"Nines"`
		Iterations   int     `json:"Iterations"`
		Converged    bool    `json:"Converged"`
	} `json:"summary"`
}

type streamEvent struct {
	Type       string   `json:"type"`
	Iterations int      `json:"iterations"`
	Cap        int      `json:"cap"`
	HalfWidth  *float64 `json:"half_width"`
	Converged  bool     `json:"converged"`
	Error      string   `json:"error"`
	runResponse
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "availserve base URL")
	flag.Parse()

	// A 4-disk RAID5 array with paper-style rates: exponential disk
	// lifetimes (1/λ = 10^6 h), 30 h repairs, 48 h tape restores, and
	// a 1% per-service human error probability with 8 h undo recovery.
	req := runRequest{
		Params: params{
			Disks:       4,
			TTF:         spec{Family: "exponential", Params: []float64{1e-6}},
			Repair:      spec{Family: "deterministic", Params: []float64{30}},
			TapeRestore: spec{Family: "deterministic", Params: []float64{48}},
			HERecovery:  &spec{Family: "deterministic", Params: []float64{8}},
			HEP:         0.01,
		},
		Options: options{Iterations: 50_000, MissionTime: 87_600, Seed: 1},
	}

	fmt.Println("--- POST /v1/run (fresh) ---")
	r1 := postRun(*addr, req)
	fmt.Printf("fingerprint %s  cached=%v\n", r1.Fingerprint, r1.Cached)
	fmt.Printf("availability %.6f ± %.6f (%.2f nines, %d iterations)\n\n",
		r1.Summary.Availability, r1.Summary.HalfWidth, r1.Summary.Nines, r1.Summary.Iterations)

	fmt.Println("--- POST /v1/run (identical request: served from cache) ---")
	start := time.Now()
	r2 := postRun(*addr, req)
	fmt.Printf("fingerprint %s  cached=%v  (%.1fms)\n\n", r2.Fingerprint, r2.Cached,
		float64(time.Since(start).Microseconds())/1000)

	fmt.Println("--- POST /v1/run?stream=1 (adaptive, live progress) ---")
	adaptive := req
	adaptive.Options.Seed = 2
	adaptive.Options.TargetHalfWidth = 2e-5
	streamRun(*addr, adaptive)
}

func postRun(addr string, req runRequest) runResponse {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(addr+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST /v1/run: %s: %s", resp.Status, e.Error)
	}
	var rr runResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		log.Fatalf("decode: %v", err)
	}
	return rr
}

func streamRun(addr string, req runRequest) {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(addr+"/v1/run?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("POST /v1/run?stream=1: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("stream: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			log.Fatalf("bad stream line: %v", err)
		}
		switch ev.Type {
		case "progress":
			hw := "n/a"
			if ev.HalfWidth != nil {
				hw = fmt.Sprintf("%.2e", *ev.HalfWidth)
			}
			fmt.Printf("  %7d / %d iterations, half-width %s, converged=%v\n",
				ev.Iterations, ev.Cap, hw, ev.Converged)
		case "result":
			fmt.Printf("final: availability %.6f ± %.6f at %d iterations (converged=%v)\n",
				ev.Summary.Availability, ev.Summary.HalfWidth,
				ev.Summary.Iterations, ev.Summary.Converged)
		case "error":
			log.Fatalf("run failed: %s", ev.Error)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("stream read: %v", err)
	}
}
