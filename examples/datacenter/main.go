// Datacenter: the paper's motivating arithmetic (§I) at fleet scale.
//
// An exa-byte data center runs more than a million disk drives, so it
// sees roughly one disk failure per hour; with a human error
// probability of 0.001..0.1 per service, that is multiple wrong
// replacements every day. This example quantifies that motivation and
// then uses the discrete-event kernel to print one simulated day of
// fleet-level failure and service events.
//
// Run with: go run ./examples/datacenter
package main

import (
	"fmt"
	"log"

	"herald"
	"herald/internal/des"
	"herald/internal/dist"
	"herald/internal/human"
	"herald/internal/xrand"
)

const (
	fleetDisks = 1_250_000 // an EB at 800GB usable per effective disk
	lambda     = 8e-7      // per-disk failure rate, ~143 years MTTF
)

func main() {
	// 1. Fleet-level incident arithmetic.
	failuresPerHour := fleetDisks * lambda
	fmt.Printf("fleet: %d disks at lambda = %g/h => %.2f disk failures per hour\n",
		fleetDisks, lambda, failuresPerHour)
	for _, hep := range []human.ErrorProbability{human.HEPEnterpriseLow, human.HEPEnterpriseHigh, human.HEPGeneralHigh} {
		perDay := human.ExpectedErrorsPerDay(fleetDisks, lambda, hep)
		fmt.Printf("  hep = %-6g => %6.2f wrong replacements per day\n", float64(hep), perDay)
	}

	// 2. What that does to user-visible availability: the fleet as
	// RAID5(7+1) arrays, usable capacity fixed.
	fleet, err := herald.PlanFleet(herald.RAID5Wide, fleetDisks*7/8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRAID5(7+1) fleet: %d arrays, %d physical disks\n", fleet.Count, fleet.TotalDisks())
	for _, hep := range []float64{0, 0.001, 0.01} {
		res, err := herald.SolveConventional(herald.PaperParams(8, lambda, hep))
		if err != nil {
			log.Fatal(err)
		}
		fa := herald.FleetAvailability(res.Availability, fleet.Count)
		fmt.Printf("  hep = %-6g => fleet availability %.6f (%.2f nines)\n",
			hep, fa, herald.Nines(fa))
	}

	// 3. One simulated day of fleet incidents via the DES kernel.
	fmt.Println("\nOne simulated day of fleet service events:")
	simulateDay()
}

// simulateDay drives a compound Poisson process of disk failures over
// 24 hours; each failure schedules a replacement service that may
// suffer a human error.
func simulateDay() {
	r := xrand.New(2017)
	s := des.New()
	interarrival := dist.NewExponential(fleetDisks * lambda) // fleet failure stream
	service := dist.NewExponential(0.1)                      // 10h mean replacement
	tech := human.MustNewModel(human.HEPEnterpriseHigh)

	var failures, errors int
	var scheduleNext func(sim *des.Simulator)
	scheduleNext = func(sim *des.Simulator) {
		sim.Schedule(interarrival.Sample(r), func(sim *des.Simulator) {
			failures++
			at := sim.Now()
			fmt.Printf("  %6.2fh  disk failure #%d", at, failures)
			wrong := tech.Occurs(human.ReplaceFailedDisk, r)
			dur := service.Sample(r)
			if wrong {
				errors++
				fmt.Printf("  -> WRONG DISK PULLED during service (+%.1fh outage)", dur)
			}
			fmt.Println()
			scheduleNext(sim)
		})
	}
	scheduleNext(s)
	s.RunUntil(24)
	fmt.Printf("  total: %d failures, %d human errors in 24h\n", failures, errors)
}
