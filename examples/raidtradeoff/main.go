// RAID trade-off: which redundancy scheme should a backed-up storage
// system use once human errors are part of the model?
//
// The paper's §V-C answer: it depends on the human error probability.
// At equal usable capacity, RAID1's availability lead evaporates
// because its Effective Replication Factor of 2 doubles the number of
// service opportunities. This example reproduces the ranking flip and
// locates the hep at which each pair of configurations crosses over.
//
// Run with: go run ./examples/raidtradeoff
package main

import (
	"fmt"
	"log"
	"os"

	"herald"
	"herald/internal/report"
	"herald/internal/sweep"
)

const lambda = 1e-5

func main() {
	configs := []herald.RAIDConfig{herald.RAID1Mirror, herald.RAID5Small, herald.RAID5Wide}
	capacity, err := herald.EquivalentCapacity(configs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("comparing at %d disk-units of usable capacity, lambda = %g/h\n\n", capacity, lambda)

	// Availability table across hep.
	t := report.NewTable("Fleet availability (nines) at equal usable capacity",
		"config", "ERF", "hep=0", "hep=0.001", "hep=0.01")
	for _, cfg := range configs {
		fleet, err := herald.PlanFleet(cfg, capacity)
		if err != nil {
			log.Fatal(err)
		}
		row := []string{cfg.String(), report.F3(cfg.ERF())}
		for _, hep := range []float64{0, 0.001, 0.01} {
			res, err := herald.SolveConventional(herald.PaperParams(cfg.Disks(), lambda, hep))
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, report.F3(herald.Nines(herald.FleetAvailability(res.Availability, fleet.Count))))
		}
		t.AddRow(row...)
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Locate the crossover hep between RAID1(1+1) and RAID5(3+1).
	heps := sweep.Logspace(1e-5, 0.05, 60)
	fleetNines := func(cfg herald.RAIDConfig) sweep.Series {
		fleet, err := herald.PlanFleet(cfg, capacity)
		if err != nil {
			log.Fatal(err)
		}
		s, err := sweep.Eval(heps, func(hep float64) (float64, error) {
			res, err := herald.SolveConventional(herald.PaperParams(cfg.Disks(), lambda, hep))
			if err != nil {
				return 0, err
			}
			return herald.Nines(herald.FleetAvailability(res.Availability, fleet.Count)), nil
		})
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	r1 := fleetNines(herald.RAID1Mirror)
	r5 := fleetNines(herald.RAID5Small)
	cross := sweep.Crossovers(r1, r5)
	if len(cross) == 0 {
		fmt.Println("\nno crossover found in the swept hep range")
		return
	}
	fmt.Printf("\nRAID1(1+1) falls below RAID5(3+1) at hep ~ %.2g\n", cross[0])
	fmt.Println("(the conventional 'mirroring is safest' rule breaks beyond that error rate)")
}
