// Fail-over policy study: what does automatic disk fail-over with a
// hot spare buy once human errors are modelled?
//
// The paper's §V-D answer: about two orders of magnitude of
// availability at hep = 0.01, because the delayed replacement policy
// moves the human touch-point away from the exposed state. This
// example evaluates both Markov models and cross-checks the fail-over
// policy with the Monte-Carlo simulator.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"os"

	"herald"
	"herald/internal/report"
)

const lambda = 1e-6

func main() {
	t := report.NewTable(
		"Conventional vs automatic fail-over, RAID5(3+1), lambda = 1e-6/h",
		"hep", "conventional (nines)", "fail-over (nines)", "downtime cut")
	for _, hep := range []float64{0, 0.001, 0.01} {
		conv, err := herald.SolveConventional(herald.PaperParams(4, lambda, hep))
		if err != nil {
			log.Fatal(err)
		}
		fo, err := herald.SolveFailover(herald.PaperFailoverParams(4, lambda, hep))
		if err != nil {
			log.Fatal(err)
		}
		cut := "-"
		if fu := fo.Unavailability(); fu > 0 {
			cut = fmt.Sprintf("%.0fx", conv.Unavailability()/fu)
		}
		t.AddRow(report.F(hep), report.F3(conv.Nines()), report.F3(fo.Nines()), cut)
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Monte-Carlo cross-check of the fail-over policy at an
	// accelerated failure rate (denser statistics in few iterations).
	fmt.Println("\nMonte-Carlo cross-check (accelerated lambda = 1e-4):")
	p := herald.PaperSimParams(4, 1e-4, 0.01)
	p.Policy = herald.PolicyAutoFailover
	mc, err := herald.Simulate(p, herald.SimOptions{Iterations: 5000, MissionTime: 2e5, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  MC fail-over availability: %.6f nines %.3f (CI +/- %.2g)\n",
		mc.Availability, mc.Nines, mc.HalfWidth)
	fmt.Printf("  events: %d failures, %d human errors, %d crashes\n",
		mc.Events.Failures, mc.Events.HumanErrors, mc.Events.Crashes)
}
