// Shardsweep: a paper-scale HEP sweep executed by sharded worker
// processes, demonstrating the distributed Monte-Carlo layer.
//
// Each point partitions its iteration range into shards, runs them on
// single-threaded sibling processes of this binary (one per core by
// default), and merges the partial accumulators — producing exactly
// the Summary a single-process run would, only faster. Setting a
// checkpoint path would additionally make each point resumable.
//
// Run with: go run ./examples/shardsweep
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"herald"
)

func main() {
	// Required first line in any binary that uses SimulateSharded:
	// when the coordinator spawns this program as a worker, it serves
	// shard jobs here and never reaches the sweep below.
	herald.MaybeShardWorker()

	const (
		disks  = 4
		lambda = 1e-6
		iters  = 200_000 // paper scale is 1e6; keep the example brisk
	)
	shards := 2 * runtime.GOMAXPROCS(0)

	fmt.Printf("RAID5(3+1) sharded sweep: %d iterations/point, %d shards, %d worker processes\n\n",
		iters, shards, runtime.GOMAXPROCS(0))
	fmt.Println("hep       availability      nines   wall")

	for _, hep := range []float64{0, 0.001, 0.01} {
		p := herald.PaperSimParams(disks, lambda, hep)
		o := herald.SimOptions{Iterations: iters, MissionTime: 1e6, Seed: 20170327}
		start := time.Now()
		s, err := herald.SimulateSharded(p, o, shards, 0, "")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8g  %.9f  %6.3f  %s\n", hep, s.Availability, s.Nines, time.Since(start).Round(time.Millisecond))
	}

	fmt.Println("\nSummaries are bit-identical to single-process herald.Simulate runs.")
}
