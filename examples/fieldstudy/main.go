// Field study: the full practitioner pipeline from raw failure logs to
// an availability verdict.
//
//  1. A synthetic fleet log is generated from a hidden wear-out
//     (Weibull) lifetime law — standing in for the proprietary field
//     data of studies like Schroeder & Gibson (FAST'07) that the paper
//     draws its parameters from.
//  2. Exponential and Weibull models are fitted by censored maximum
//     likelihood and compared by AIC.
//  3. The fitted parameters drive both the Markov model and the
//     Monte-Carlo simulator to answer the operator's question: what is
//     my availability, and how much of it do human errors cost?
//
// Run with: go run ./examples/fieldstudy
package main

import (
	"fmt"
	"log"

	"herald"
	"herald/internal/trace"
	"herald/internal/xrand"
)

func main() {
	// ---- 1. "Field" data ------------------------------------------
	const (
		slots  = 5000 // disk bays observed
		window = 3e4  // ~3.4 years of observation
	)
	hidden := herald.WeibullFromMeanRate(2e-5, 1.48) // ground truth, unknown to the analyst
	r := xrand.New(20170327)
	fieldLog := trace.Generate(hidden, slots, window, r)
	fmt.Printf("field log: %d records, %d failures, %.2g device-hours\n",
		len(fieldLog), fieldLog.Failures(), fieldLog.TotalExposure())

	// ---- 2. Model fitting ------------------------------------------
	choice, err := trace.Choose(fieldLog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexponential fit: lambda = %.3g/h (AIC %.0f)\n", choice.ExpRate, choice.AICExponential)
	fmt.Printf("weibull fit:     shape = %.3f, scale = %.3g h (AIC %.0f)\n",
		choice.WeibullShape, choice.WeibullScale, choice.AICWeibull)
	if choice.WeibullPreferred {
		fmt.Println("=> AIC prefers the Weibull (wear-out) model, as the field studies report")
	} else {
		fmt.Println("=> AIC prefers the exponential model")
	}

	// ---- 3. Availability verdict -----------------------------------
	lambda := choice.ImpliedMeanRate
	fmt.Printf("\nRAID5(3+1) availability at the fitted mean rate (%.3g/h):\n", lambda)
	for _, hep := range []float64{0, 0.001, 0.01} {
		res, err := herald.SolveConventional(herald.PaperParams(4, lambda, hep))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  hep = %-6g  %.3f nines  (%.3g h downtime/yr)\n",
			hep, res.Nines(), herald.DowntimeHoursPerYear(res.Availability))
	}

	// Monte-Carlo with the fitted Weibull law (what the Markov model
	// cannot represent) at the realistic hep.
	p := herald.PaperSimParams(4, lambda, 0.001)
	p.TTF = herald.Weibull(choice.WeibullShape, choice.WeibullScale)
	mc, err := herald.Simulate(p, herald.SimOptions{Iterations: 20000, MissionTime: 1e6, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMonte-Carlo with the fitted Weibull law (hep = 0.001): %.3f nines (CI +/- %.2g)\n",
		mc.Nines, mc.HalfWidth)
}
