// Quickstart: how much availability does a RAID5 (3+1) array lose to
// occasional wrong-disk replacements?
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"herald"
)

func main() {
	const (
		disks  = 4    // RAID5 3+1
		lambda = 1e-6 // one disk failure per ~114 years per disk
	)

	fmt.Println("RAID5(3+1), lambda = 1e-6/h, paper service rates")
	fmt.Println()

	// 1. Analytic model across human error probabilities.
	for _, hep := range []float64{0, 0.001, 0.01} {
		res, err := herald.SolveConventional(herald.PaperParams(disks, lambda, hep))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hep = %-6g  availability = %.9f  (%5.2f nines, %8.4g h downtime/yr)\n",
			hep, res.Availability, res.Nines(),
			herald.DowntimeHoursPerYear(res.Availability))
	}

	// 2. The headline: how badly does ignoring human error mislead?
	ratio, err := herald.UnderestimationRatio(herald.PaperParams(disks, lambda, 0.01))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIgnoring hep = 0.01 underestimates downtime %.0fx.\n", ratio)

	// 3. Cross-check the hep = 0.001 point with the Monte-Carlo
	// reference model (scaled-down iteration count).
	mc, err := herald.Simulate(herald.PaperSimParams(disks, lambda, 0.001), herald.SimOptions{
		Iterations:  30000,
		MissionTime: 1e6,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMonte-Carlo check (hep = 0.001): %.3f nines, CI +/- %.2g\n",
		mc.Nines, mc.HalfWidth)
}
