// Package herald evaluates the impact of human errors on the
// availability of data storage systems. It is an open reproduction of
// Kishani, Eftekhari & Asadi, "Evaluating Impact of Human Errors on
// the Availability of Data Storage Systems" (DATE 2017).
//
// # What it provides
//
//   - Analytic Markov availability models of RAID arrays under the
//     conventional disk replacement policy (paper Fig. 2) and the
//     automatic fail-over / delayed replacement policy with a hot
//     spare (paper Fig. 3), both extended with the human error states
//     (wrong disk replacement) the paper introduces, plus a
//     dual-parity extension.
//   - A Monte-Carlo reference simulator (paper §III) supporting
//     arbitrary time-to-failure laws — exponential and Weibull in the
//     paper — and both replacement policies.
//   - RAID geometry / Effective Replication Factor planning for
//     equal-usable-capacity comparisons (paper §V-C).
//   - A reproduction harness regenerating every figure of the paper's
//     evaluation (Run with an experiment id, or cmd/repro).
//
// # Quick start
//
//	res, err := herald.SolveConventional(herald.PaperParams(4, 1e-6, 0.001))
//	if err != nil { ... }
//	fmt.Printf("availability: %.3f nines\n", res.Nines())
//
// All rates are per hour. See DESIGN.md for modelling decisions and
// EXPERIMENTS.md for paper-vs-measured results.
package herald

import (
	"io"
	"net"

	"herald/internal/dist"
	"herald/internal/model"
	"herald/internal/raid"
	"herald/internal/report"
	"herald/internal/repro"
	"herald/internal/serve"
	"herald/internal/shard"
	"herald/internal/sim"
	"herald/internal/stats"
	"herald/internal/sweep"
)

// Version identifies the library release.
const Version = "1.0.0"

// ---------------------------------------------------------------------
// Analytic (Markov) models
// ---------------------------------------------------------------------

// ConventionalParams parameterizes the conventional-replacement Markov
// model (paper Fig. 2). See the field docs in internal/model.
type ConventionalParams = model.Params

// FailoverParams parameterizes the automatic fail-over Markov model
// (paper Fig. 3).
type FailoverParams = model.FailoverParams

// ModelResult is a solved availability model: steady-state
// probabilities, availability, and the DU/DL unavailability breakdown.
type ModelResult = model.Result

// PaperParams returns the paper's §V-B defaults (muDF=0.1, muDDF=0.03,
// muHE=1, lambdaCrash=0.01, post-undo resync enabled) for an n-disk
// array with per-disk failure rate lambda (1/h) and human error
// probability hep.
func PaperParams(n int, lambda, hep float64) ConventionalParams {
	return model.Paper(n, lambda, hep)
}

// PaperFailoverParams returns the fail-over defaults (PaperParams plus
// muS=0.1, muCH=1, full Fig. 3 structure).
func PaperFailoverParams(n int, lambda, hep float64) FailoverParams {
	return model.PaperFailover(n, lambda, hep)
}

// SolveConventional builds and solves the conventional-replacement
// model. Up states: OP, EXP.
func SolveConventional(p ConventionalParams) (*ModelResult, error) {
	return model.Conventional(p)
}

// SolveFailover builds and solves the automatic fail-over model.
func SolveFailover(p FailoverParams) (*ModelResult, error) {
	return model.Failover(p)
}

// SolveDualParity builds and solves the dual-parity (RAID6-style)
// extension model.
func SolveDualParity(p ConventionalParams) (*ModelResult, error) {
	return model.DualParity(p)
}

// MTTDL returns the mean time to data loss (hours) of the conventional
// model with DL absorbing.
func MTTDL(p ConventionalParams) (float64, error) { return model.MTTDL(p) }

// UnderestimationRatio returns unavail(hep)/unavail(0) for the given
// configuration: the factor by which a human-error-blind model
// underestimates downtime (the paper's headline is up to 263x).
func UnderestimationRatio(p ConventionalParams) (float64, error) {
	return model.UnderestimationRatio(p)
}

// FleetAvailability composes count identical independent arrays in
// series: availability^count.
func FleetAvailability(arrayAvailability float64, count int) float64 {
	return model.FleetAvailability(arrayAvailability, count)
}

// ---------------------------------------------------------------------
// Monte-Carlo simulation
// ---------------------------------------------------------------------

// SimParams describes an array for Monte-Carlo simulation; unlike the
// Markov models it accepts arbitrary distributions.
type SimParams = sim.ArrayParams

// SimOptions controls iteration count, mission time, seed, parallelism
// and confidence level. A positive TargetHalfWidth makes the run
// adaptive (precision-targeted): it stops at the first canonical cell
// boundary where the availability CI half-width reaches the target —
// see the README's "Adaptive precision" section.
type SimOptions = sim.Options

// SimSummary is a Monte-Carlo result with availability, confidence
// half-width and event counts.
type SimSummary = sim.Summary

// Replacement policies for SimParams.Policy.
const (
	// PolicyConventional replaces the failed disk while exposed.
	PolicyConventional = sim.Conventional
	// PolicyAutoFailover rebuilds onto a hot spare first.
	PolicyAutoFailover = sim.AutoFailover
	// PolicyDualParity is conventional replacement on a RAID6-style
	// array tolerating two concurrent losses.
	PolicyDualParity = sim.DualParity
)

// SimKernel selects the Monte-Carlo walker specialization via
// SimOptions.Kernel; see the README's "Kernel dispatch" section.
type SimKernel = sim.Kernel

const (
	// SimKernelAuto specializes fully exponential configurations to
	// the rate-based memoryless walkers (the default).
	SimKernelAuto = sim.KernelAuto
	// SimKernelGeneric forces the per-disk failure-clock walkers.
	SimKernelGeneric = sim.KernelGeneric
	// SimKernelMemoryless forces the rate-based walkers; runs reject
	// non-exponential laws.
	SimKernelMemoryless = sim.KernelMemoryless
)

// ResolveSimKernel reports the concrete kernel a simulation of p
// under k would execute (SimKernelMemoryless or SimKernelGeneric);
// it errors when k forces the memoryless kernel on a configuration
// with non-exponential laws.
func ResolveSimKernel(p SimParams, k SimKernel) (SimKernel, error) {
	return sim.ResolveKernel(p, k)
}

// ParseSimKernel maps "auto", "generic" or "memoryless" onto a
// SimKernel.
func ParseSimKernel(s string) (SimKernel, error) {
	return sim.ParseKernel(s)
}

// SimBiasAuto is the SimOptions.Bias sentinel asking a run to pick
// its failure-inflation factor from the configuration's failure/repair
// rate ratio; see the README's "Rare-event acceleration" section.
const SimBiasAuto = sim.BiasAuto

// ParseSimBias maps a bias token onto a SimOptions.Bias value: ""
// (off), "auto" (SimBiasAuto), or a finite factor >= 1.
func ParseSimBias(s string) (float64, error) { return sim.ParseBias(s) }

// ResolveSimBias reports the concrete failure-inflation factor a
// simulation of p under o samples with (1 when unbiased); it errors
// when auto resolution is requested on non-exponential laws.
func ResolveSimBias(p SimParams, o SimOptions) (float64, error) {
	return sim.ResolveBias(p, o)
}

// PaperSimParams returns the simulator defaults matching PaperParams.
func PaperSimParams(n int, lambda, hep float64) SimParams {
	return sim.PaperDefaults(n, lambda, hep)
}

// Simulate runs the Monte-Carlo reference model. Adaptive options
// (SimOptions.TargetHalfWidth) stop the run at the requested CI
// precision; the Summary's Iterations, TargetHalfWidth and Converged
// fields report where and whether it stopped.
func Simulate(p SimParams, o SimOptions) (SimSummary, error) { return sim.Run(p, o) }

// ---------------------------------------------------------------------
// Sharded (multi-process / multi-machine) simulation
// ---------------------------------------------------------------------

// SimPartial is the mergeable outcome of a contiguous iteration range;
// see SimulateRange and MergeSimPartials.
type SimPartial = sim.Partial

// ShardConfig configures a distributed Monte-Carlo run; see
// internal/shard for the coordinator/worker architecture.
type ShardConfig = shard.Config

// ShardWorker executes shard jobs for a coordinator.
type ShardWorker = shard.Worker

// MaybeShardWorker turns this process into a shard worker when it was
// spawned by a sharded coordinator (SimulateSharded execs the current
// binary). Call it first thing in main() of any program that uses
// SimulateSharded; it returns immediately otherwise.
func MaybeShardWorker() { shard.MaybeWorker() }

// SimulateSharded runs the Monte-Carlo model partitioned into shards
// executed by workerProcs local single-threaded worker processes
// (0 = one per core). The Summary is bit-identical to Simulate with
// the same parameters, whatever the shard and worker counts; an
// optional non-empty checkpoint path makes the run resumable after a
// kill. The calling binary's main must start with MaybeShardWorker.
func SimulateSharded(p SimParams, o SimOptions, shards, workerProcs int, checkpoint string) (SimSummary, error) {
	return shard.RunLocal(p, o, shards, workerProcs, checkpoint, nil)
}

// ShardedRun executes a fully custom distributed run (remote TCP
// workers via DialShardWorker, mixed pools, checkpoint logs).
func ShardedRun(cfg ShardConfig) (SimSummary, error) { return shard.Run(cfg) }

// ShardNetConfig tunes the TCP transport of the shard protocol:
// shared-token authentication, TLS, connect/handshake timeouts, and
// the heartbeat cadence bounding half-open-connection detection. The
// zero value is a plaintext, unauthenticated link.
type ShardNetConfig = shard.NetConfig

// DialShardWorker attaches a remote worker serving the shard protocol
// over TCP (ServeShardWorkers, or `availsim -shard-serve`).
func DialShardWorker(addr string) (ShardWorker, error) { return shard.Dial(addr) }

// DialShardWorkerNet is DialShardWorker with explicit transport
// configuration (TLS, token authentication, timeouts).
func DialShardWorkerNet(addr string, nc ShardNetConfig) (ShardWorker, error) {
	return shard.DialNet(addr, nc)
}

// ServeShardWorkers turns this process into a TCP shard worker
// serving jobs on addr until the listener fails.
func ServeShardWorkers(addr string) error { return shard.ListenAndServe(addr, nil) }

// ServeShardWorkersNet is ServeShardWorkers with explicit transport
// configuration (TLS termination, token authentication, heartbeats).
func ServeShardWorkersNet(addr string, nc ShardNetConfig) error {
	return shard.ListenAndServeNet(addr, nc, nil)
}

// JoinShardCoordinator dials a coordinator accepting shard workers
// (ListenShardWorkers, or `availsim -shard-listen`), registers with
// the advertised capacity (0 = all local cores), and serves jobs until
// the coordinator closes the connection.
func JoinShardCoordinator(addr string, capacity int, nc ShardNetConfig) error {
	return shard.Join(addr, capacity, nc)
}

// JoinShardCoordinatorLoop is the supervised form of
// JoinShardCoordinator: transport and handshake failures are retried
// with capped exponential backoff (deterministic jitter, see
// ShardNetConfig's Retry fields), so the worker outlives coordinator
// restarts and partitions. A clean coordinator close — or a close of
// stop — ends the loop with nil. logw (nil = discard) receives one
// line per failed session.
func JoinShardCoordinatorLoop(addr string, capacity int, nc ShardNetConfig, stop <-chan struct{}, logw io.Writer) error {
	return shard.JoinLoop(addr, capacity, nc, stop, logw)
}

// ListenShardWorkers accepts workers joining via JoinShardCoordinator
// (or `availsim -shard-join`) on addr, delivering each on the returned
// channel, ready for ShardConfig.WorkerSource. Close the listener to
// stop accepting and close the channel.
func ListenShardWorkers(addr string, nc ShardNetConfig) (net.Listener, <-chan ShardWorker, error) {
	return shard.ListenWorkers(addr, nc, nil)
}

// SimulateRange computes the canonical cell partials of the aligned
// iteration range [start, end) of a run; MergeSimPartials folds
// partials that exactly tile the run back into a Summary. Together
// they are the building blocks SimulateSharded distributes.
func SimulateRange(p SimParams, o SimOptions, start, end int) ([]SimPartial, error) {
	return sim.RunRange(p, o, start, end)
}

// ---------------------------------------------------------------------
// Pipelined scenario sweeps
// ---------------------------------------------------------------------

// SweepPoint is one scenario of a pipelined Monte-Carlo sweep: a
// label plus the full simulation configuration (adaptive options make
// the point precision-targeted).
type SweepPoint = sweep.MCPoint

// SweepResult is one sweep point's outcome: its Summary (bit-identical
// to running the point alone), run statistics, and completion offset.
type SweepResult = sweep.MCResult

// SimulateSweep executes scenario points pipelined through one shared
// pool of workerProcs local worker processes (0 = one per core):
// point k+1's shards start while point k drains, so the pool never
// idles at scenario boundaries. The calling binary's main must start
// with MaybeShardWorker.
func SimulateSweep(points []SweepPoint, workerProcs int) ([]SweepResult, error) {
	workers, err := shard.SpawnLocal(workerProcs)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	return sweep.MonteCarlo(points, workers, nil)
}

// MergeSimPartials merges partials covering [0, o.Iterations) exactly
// once into a Summary, rejecting gaps, overlaps and duplicates.
func MergeSimPartials(o SimOptions, parts []SimPartial) (SimSummary, error) {
	return sim.Summarize(o, parts)
}

// ---------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------

// Distribution is the sampling interface consumed by the simulator.
type Distribution = dist.Distribution

// Exponential returns an exponential law with the given rate (1/h).
func Exponential(rate float64) Distribution { return dist.NewExponential(rate) }

// Weibull returns a Weibull law with the given shape and scale (h).
func Weibull(shape, scale float64) Distribution { return dist.NewWeibull(shape, scale) }

// WeibullFromMeanRate returns the Weibull law with the given shape
// whose mean time to failure is 1/rate, as used in the paper's Fig. 5.
func WeibullFromMeanRate(rate, shape float64) Distribution {
	return dist.WeibullFromMeanRate(rate, shape)
}

// Deterministic returns a point mass: a service of fixed duration (h).
func Deterministic(value float64) Distribution { return dist.NewDeterministic(value) }

// Uniform returns the constant-density law on [lo, hi) hours.
func Uniform(lo, hi float64) Distribution { return dist.NewUniform(lo, hi) }

// Lognormal returns the lognormal law with log-mean mu and log-stddev
// sigma: the HRA literature's standard human task-time model.
func Lognormal(mu, sigma float64) Distribution { return dist.NewLognormal(mu, sigma) }

// LognormalFromMeanMedian returns the lognormal law with the given
// mean and median (hours), the statistics HRA tables report.
func LognormalFromMeanMedian(mean, median float64) Distribution {
	return dist.LognormalFromMeanMedian(mean, median)
}

// Gamma returns the gamma law with the given shape and rate (1/h).
func Gamma(shape, rate float64) Distribution { return dist.NewGamma(shape, rate) }

// Erlang returns the k-stage Erlang law: a service procedure of k
// sequential exponential steps of the given rate.
func Erlang(k int, rate float64) Distribution { return dist.NewErlang(k, rate) }

// HyperExponential returns a weighted mixture of exponential laws for
// multi-mode durations (e.g. a wrong pull noticed within minutes or
// discovered hours later).
func HyperExponential(weights, rates []float64) Distribution {
	return dist.NewHyperExponential(weights, rates)
}

// MixtureOf returns a weighted mixture of arbitrary component laws.
func MixtureOf(weights []float64, components ...Distribution) Distribution {
	return dist.NewMixture(weights, components...)
}

// NormQuantile returns the standard normal inverse CDF at p in (0,1).
func NormQuantile(p float64) float64 { return dist.NormQuantile(p) }

// ---------------------------------------------------------------------
// RAID geometry
// ---------------------------------------------------------------------

// RAIDConfig is an array geometry (level, data disks, parity disks).
type RAIDConfig = raid.Config

// Fleet is a set of identical arrays meeting a usable-capacity target.
type Fleet = raid.Fleet

// Paper geometries.
var (
	// RAID1Mirror is RAID1 (1+1).
	RAID1Mirror = raid.R1Mirror
	// RAID5Small is RAID5 (3+1).
	RAID5Small = raid.R5Small
	// RAID5Wide is RAID5 (7+1).
	RAID5Wide = raid.R5Wide
)

// PlanFleet returns the smallest fleet of identical arrays reaching
// the usable capacity (in disk units).
func PlanFleet(c RAIDConfig, usableDisks int) (Fleet, error) {
	return raid.PlanFleet(c, usableDisks)
}

// EquivalentCapacity returns the least usable capacity every supplied
// geometry divides evenly (the paper's fair comparison point).
func EquivalentCapacity(configs ...RAIDConfig) (int, error) {
	return raid.EquivalentCapacity(configs...)
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

// Nines converts availability to -log10(1-A).
func Nines(availability float64) float64 { return stats.Nines(availability) }

// DowntimeHoursPerYear converts availability to expected yearly
// downtime hours.
func DowntimeHoursPerYear(availability float64) float64 {
	return stats.DowntimeHoursPerYear(availability)
}

// ---------------------------------------------------------------------
// Reproduction harness
// ---------------------------------------------------------------------

// ExperimentOptions scales the reproduction experiments.
type ExperimentOptions = repro.Options

// Experiments lists the available experiment ids ("4".."7",
// "underestimation", "ablation").
func Experiments() []string { return repro.All() }

// RunExperiment regenerates one paper figure/claim as tables.
func RunExperiment(id string, o ExperimentOptions) ([]*report.Table, error) {
	return repro.Run(id, o)
}

// RunAllExperiments writes every experiment's tables to w.
func RunAllExperiments(w io.Writer, o ExperimentOptions) error {
	return repro.RunAll(w, o)
}

// ---------------------------------------------------------------------
// Availability as a service
// ---------------------------------------------------------------------

// SimFingerprint is the canonical identity of a run's result: a
// stable hash over every result-affecting input (parameters and
// options, schedule-only knobs excluded). Equal fingerprints mean
// byte-identical Summaries, whatever the worker or shard count — it
// is the exact cache key availserve and SweepResult.Fingerprint use.
func SimFingerprint(p SimParams, o SimOptions) (string, error) {
	return shard.FingerprintOf(p, o)
}

// ShardPool is a persistent worker pool accepting runs over its
// lifetime: the execution engine behind the availability service.
type ShardPool = shard.Pool

// ShardRunSpec is one run submitted to a ShardPool.
type ShardRunSpec = shard.RunSpec

// ShardRunProgress is one progress observation of a pool run (banked
// iterations, adaptive half-width, convergence).
type ShardRunProgress = shard.RunProgress

// NewShardPool starts a persistent pool on the given workers and
// optional elastic worker source. Close the pool to release them.
func NewShardPool(workers []ShardWorker, source <-chan ShardWorker, logw io.Writer) (*ShardPool, error) {
	return shard.NewPool(workers, source, logw)
}

// ShardPoolOptions tunes a persistent pool (degraded-mode in-process
// fallback when the pool drains).
type ShardPoolOptions = shard.PoolOptions

// ShardPoolHealth is a snapshot of a pool's capacity to make progress
// (the readiness probe's substance).
type ShardPoolHealth = shard.PoolHealth

// NewShardPoolOptions is NewShardPool with explicit tuning.
func NewShardPoolOptions(workers []ShardWorker, source <-chan ShardWorker, logw io.Writer, opts ShardPoolOptions) (*ShardPool, error) {
	return shard.NewPoolOptions(workers, source, logw, opts)
}

// ServiceConfig configures the availability-simulation HTTP service;
// see internal/serve and cmd/availserve.
type ServiceConfig = serve.Config

// Service is the availability-simulation HTTP handler: fingerprint-
// keyed result caching, singleflight dedup of identical requests,
// streamed progress for adaptive runs, admission control and graceful
// drain.
type Service = serve.Server

// NewService builds a Service on a ShardPool.
func NewService(cfg ServiceConfig) (*Service, error) { return serve.NewServer(cfg) }
