package herald

// Benchmark harness: one benchmark per paper figure/claim (DESIGN.md
// §4 maps experiment ids to these targets), plus micro-benchmarks of
// the analytic and simulation kernels. Each figure benchmark runs the
// full experiment generator at a reduced Monte-Carlo scale and reports
// the reproduced headline metric via b.ReportMetric, so
// `go test -bench=.` regenerates the paper's result shapes.

import (
	"strconv"
	"testing"

	"herald/internal/model"
	"herald/internal/repro"
	"herald/internal/sim"
)

// benchOpts keeps figure benchmarks at laptop scale; the cmd/repro CLI
// runs the full configuration.
func benchOpts() repro.Options {
	return repro.Options{MCIterations: 3000, MissionTime: 1e6, Seed: 1, Workers: 0}
}

// BenchmarkFig4MCvsMarkov regenerates Fig. 4 (validation of the Markov
// model against Monte-Carlo simulation across failure rates).
func BenchmarkFig4MCvsMarkov(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := repro.Fig4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		within := 0
		for _, row := range tb.Rows {
			if row[5] == "yes" {
				within++
			}
		}
		b.ReportMetric(float64(within)/float64(len(tb.Rows)), "markov-in-ci-frac")
	}
}

// BenchmarkFig5HumanError regenerates Fig. 5 (availability vs hep with
// Weibull failure laws).
func BenchmarkFig5HumanError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := repro.Fig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		// Availability drop (in nines) from hep=0 to hep=0.01 for the
		// first failure-rate pair.
		hep0, _ := strconv.ParseFloat(tb.Rows[0][4], 64)
		hep2, _ := strconv.ParseFloat(tb.Rows[2][4], 64)
		b.ReportMetric(hep0-hep2, "nines-drop-hep0.01")
	}
}

// BenchmarkFig6RAIDComparison regenerates Fig. 6 (RAID ranking at
// equal usable capacity).
func BenchmarkFig6RAIDComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := repro.Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		// Ranking gap RAID5(3+1) - RAID1(1+1) at hep=0.01, lambda=1e-5
		// (positive = the paper's flip reproduced).
		r1, _ := strconv.ParseFloat(tables[0].Rows[0][6], 64)
		r5, _ := strconv.ParseFloat(tables[0].Rows[1][6], 64)
		b.ReportMetric(r5-r1, "flip-gap-nines")
	}
}

// BenchmarkFig7Failover regenerates Fig. 7 (conventional vs automatic
// fail-over policy).
func BenchmarkFig7Failover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := repro.Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		gain, _ := strconv.ParseFloat(tb.Rows[2][3], 64)
		b.ReportMetric(gain, "failover-gain-x")
	}
}

// BenchmarkHeadlineUnderestimation regenerates the abstract's claim
// (up to 263x downtime underestimation).
func BenchmarkHeadlineUnderestimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := repro.Underestimation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		max := 0.0
		for _, row := range tb.Rows {
			v, _ := strconv.ParseFloat(row[4], 64)
			if v > max {
				max = v
			}
		}
		b.ReportMetric(max, "max-underestimation-x")
	}
}

// BenchmarkAblationRates regenerates the interpretation-knob ablation
// (DESIGN.md §3).
func BenchmarkAblationRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.Ablation(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivityElasticities regenerates the designer-facing
// parameter elasticity ranking.
func BenchmarkSensitivityElasticities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.Sensitivity(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Kernel micro-benchmarks
// ---------------------------------------------------------------------

// BenchmarkSteadyStateConventional measures one Fig. 2 model solve.
func BenchmarkSteadyStateConventional(b *testing.B) {
	p := model.Paper(4, 1e-6, 0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := model.Conventional(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadyStateFailover measures one 12-state Fig. 3 solve.
func BenchmarkSteadyStateFailover(b *testing.B) {
	p := model.PaperFailover(4, 1e-6, 0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := model.Failover(p); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMCIteration measures Monte-Carlo throughput for one policy and
// kernel on the default (exponential) configuration; 100 iterations
// per op. KernelAuto rows resolve to the memoryless specialization,
// the KernelGeneric rows pin the clock-walker fallback so the
// benchcheck gate watches both sides of the dispatch.
func benchMCIteration(b *testing.B, pol sim.Policy, k sim.Kernel) {
	p := sim.PaperDefaults(4, 1e-5, 0.01)
	p.Policy = pol
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(p, sim.Options{
			Iterations: 100, MissionTime: 1e6, Seed: uint64(i), Workers: 1, Kernel: k,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCIterationConventional measures Monte-Carlo throughput for
// the conventional policy (iterations/op is the configured count).
// Since the kernel dispatch layer this runs the memoryless walker.
func BenchmarkMCIterationConventional(b *testing.B) {
	benchMCIteration(b, sim.Conventional, sim.KernelAuto)
}

// BenchmarkMCIterationConventionalGeneric pins the generic clock
// walker on the same configuration.
func BenchmarkMCIterationConventionalGeneric(b *testing.B) {
	benchMCIteration(b, sim.Conventional, sim.KernelGeneric)
}

// BenchmarkMCIterationConventionalBias measures the importance-sampled
// memoryless walker on the same configuration (auto failure bias):
// the per-iteration cost of the weighted machinery relative to
// BenchmarkMCIterationConventional, still allocation-free.
func BenchmarkMCIterationConventionalBias(b *testing.B) {
	p := sim.PaperDefaults(4, 1e-5, 0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(p, sim.Options{
			Iterations: 100, MissionTime: 1e6, Seed: uint64(i), Workers: 1, Bias: sim.BiasAuto,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCIterationFailover measures Monte-Carlo throughput for the
// fail-over policy (memoryless walker via KernelAuto).
func BenchmarkMCIterationFailover(b *testing.B) {
	benchMCIteration(b, sim.AutoFailover, sim.KernelAuto)
}

// BenchmarkMCIterationFailoverGeneric pins the generic fail-over
// walker with its cached two-min phase scans.
func BenchmarkMCIterationFailoverGeneric(b *testing.B) {
	benchMCIteration(b, sim.AutoFailover, sim.KernelGeneric)
}

// BenchmarkMCIterationDualParity measures the dual-parity policy
// (memoryless walker via KernelAuto).
func BenchmarkMCIterationDualParity(b *testing.B) {
	benchMCIteration(b, sim.DualParity, sim.KernelAuto)
}

// BenchmarkMCIterationDualParityGeneric pins the generic dual-parity
// walker.
func BenchmarkMCIterationDualParityGeneric(b *testing.B) {
	benchMCIteration(b, sim.DualParity, sim.KernelGeneric)
}

// BenchmarkMTTDL measures the absorbing-chain analysis.
func BenchmarkMTTDL(b *testing.B) {
	p := model.Paper(4, 1e-6, 0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := model.MTTDL(p); err != nil {
			b.Fatal(err)
		}
	}
}
