#!/usr/bin/env bash
# Smoke-test the availserve daemon end to end: build it, start it,
# push one run through the HTTP API, verify the identical repeat is
# served from the cache, and check SIGTERM drains to a clean exit 0.
# Then exercise the self-healing fleet: an elastic worker is kill -9'd
# mid-run and restarted, and the run must still complete.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${AVAILSERVE_SMOKE_PORT:-18099}"
PORT2="${AVAILSERVE_SMOKE_PORT2:-18100}"
SPORT="${AVAILSERVE_SMOKE_SHARD_PORT:-18101}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/availserve" ./cmd/availserve
go build -o "$TMP/availsim" ./cmd/availsim

"$TMP/availserve" -listen "127.0.0.1:$PORT" -local-procs 2 2>"$TMP/serve.log" &
PID=$!
trap 'kill -9 $PID 2>/dev/null || true; rm -rf "$TMP"' EXIT

for _ in $(seq 1 100); do
  curl -sf "http://127.0.0.1:$PORT/v1/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "http://127.0.0.1:$PORT/v1/healthz" | grep -q '"status":"ok"' || {
  echo "FAIL: daemon never became healthy"; cat "$TMP/serve.log"; exit 1
}

REQ='{
  "params": {
    "disks": 4,
    "ttf": {"family": "exponential", "params": [1e-6]},
    "repair": {"family": "deterministic", "params": [30]},
    "tape_restore": {"family": "deterministic", "params": [48]},
    "he_recovery": {"family": "deterministic", "params": [8]},
    "hep": 0.01
  },
  "options": {"iterations": 5000, "mission_time": 87600, "seed": 42}
}'

echo "--- first request (fresh run) ---"
R1="$(curl -sf -X POST "http://127.0.0.1:$PORT/v1/run" -d "$REQ")"
echo "$R1" | head -c 400; echo
echo "$R1" | grep -q '"Availability":'   || { echo "FAIL: no Availability in response"; exit 1; }
echo "$R1" | grep -q '"cached":false'    || { echo "FAIL: first request claimed cached"; exit 1; }
echo "$R1" | grep -q '"fingerprint":"'   || { echo "FAIL: no fingerprint"; exit 1; }

echo "--- repeat request (cache hit) ---"
R2="$(curl -sf -X POST "http://127.0.0.1:$PORT/v1/run" -d "$REQ")"
echo "$R2" | grep -q '"cached":true'     || { echo "FAIL: repeat request not cached"; exit 1; }
SUM1="${R1#*\"summary\":}"; SUM2="${R2#*\"summary\":}"
[ "$SUM1" = "$SUM2" ]                    || { echo "FAIL: cached summary differs"; exit 1; }

echo "--- cache stats ---"
STATS="$(curl -sf "http://127.0.0.1:$PORT/v1/cache")"
echo "$STATS"
echo "$STATS" | grep -q '"hits":1'       || { echo "FAIL: expected exactly one cache hit"; exit 1; }
echo "$STATS" | grep -q '"inserts":1'    || { echo "FAIL: expected exactly one insert"; exit 1; }

echo "--- graceful drain (SIGTERM) ---"
kill -TERM $PID
CODE=0
wait $PID || CODE=$?
[ "$CODE" -eq 0 ] || { echo "FAIL: daemon exited $CODE after SIGTERM"; cat "$TMP/serve.log"; exit 1; }
grep -q "drained, exiting" "$TMP/serve.log" || { echo "FAIL: no drain message"; cat "$TMP/serve.log"; exit 1; }

echo "--- worker kill-and-restart mid-run ---"
# A coordinator with only elastic workers; the worker supervises its
# join (default -join-retry) so the restarted process redials on its own.
"$TMP/availserve" -listen "127.0.0.1:$PORT2" -shard-listen "127.0.0.1:$SPORT" \
  -shard-token sm0ke -shard-heartbeat 100ms -local-procs 0 2>"$TMP/serve2.log" &
PID2=$!
trap 'kill -9 $PID $PID2 2>/dev/null || true; rm -rf "$TMP"' EXIT

for _ in $(seq 1 100); do
  curl -sf "http://127.0.0.1:$PORT2/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done

start_worker() {
  # One core so the long run is provably still in flight at the kill.
  GOMAXPROCS=1 "$TMP/availsim" -shard-join "127.0.0.1:$SPORT" -shard-capacity 1 \
    -shard-token sm0ke -shard-heartbeat 100ms 2>>"$TMP/worker.log" &
  WPID=$!
}
start_worker
for _ in $(seq 1 100); do
  curl -sf "http://127.0.0.1:$PORT2/readyz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "http://127.0.0.1:$PORT2/readyz" >/dev/null || {
  echo "FAIL: coordinator never became ready with a joined worker"; cat "$TMP/serve2.log"; exit 1
}

# A run long enough (~3s on one core) to straddle the worker's death.
LONGREQ="${REQ/5000/30000000}"
curl -sf -X POST "http://127.0.0.1:$PORT2/v1/run" -d "$LONGREQ" >"$TMP/long.json" &
CURLPID=$!
sleep 0.5
kill -9 "$WPID" 2>/dev/null || true
start_worker
trap 'kill -9 $PID $PID2 $WPID 2>/dev/null || true; rm -rf "$TMP"' EXIT

CODE=0
wait $CURLPID || CODE=$?
[ "$CODE" -eq 0 ] || { echo "FAIL: run across worker restart failed"; cat "$TMP/serve2.log" "$TMP/worker.log"; exit 1; }
grep -q '"Availability":' "$TMP/long.json" || { echo "FAIL: no Availability after worker restart"; cat "$TMP/long.json"; exit 1; }
JOINS="$(grep -c "joined" "$TMP/serve2.log" || true)"
[ "$JOINS" -ge 2 ] || { echo "FAIL: expected a rejoin after kill ($JOINS joins)"; cat "$TMP/serve2.log"; exit 1; }

kill -TERM $PID2
CODE=0
wait $PID2 || CODE=$?
[ "$CODE" -eq 0 ] || { echo "FAIL: coordinator exited $CODE after SIGTERM"; cat "$TMP/serve2.log"; exit 1; }
kill "$WPID" 2>/dev/null || true

echo "PASS: availserve smoke"
