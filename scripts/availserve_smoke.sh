#!/usr/bin/env bash
# Smoke-test the availserve daemon end to end: build it, start it,
# push one run through the HTTP API, verify the identical repeat is
# served from the cache, and check SIGTERM drains to a clean exit 0.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${AVAILSERVE_SMOKE_PORT:-18099}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/availserve" ./cmd/availserve

"$TMP/availserve" -listen "127.0.0.1:$PORT" -local-procs 2 2>"$TMP/serve.log" &
PID=$!
trap 'kill -9 $PID 2>/dev/null || true; rm -rf "$TMP"' EXIT

for _ in $(seq 1 100); do
  curl -sf "http://127.0.0.1:$PORT/v1/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "http://127.0.0.1:$PORT/v1/healthz" | grep -q '"status":"ok"' || {
  echo "FAIL: daemon never became healthy"; cat "$TMP/serve.log"; exit 1
}

REQ='{
  "params": {
    "disks": 4,
    "ttf": {"family": "exponential", "params": [1e-6]},
    "repair": {"family": "deterministic", "params": [30]},
    "tape_restore": {"family": "deterministic", "params": [48]},
    "he_recovery": {"family": "deterministic", "params": [8]},
    "hep": 0.01
  },
  "options": {"iterations": 5000, "mission_time": 87600, "seed": 42}
}'

echo "--- first request (fresh run) ---"
R1="$(curl -sf -X POST "http://127.0.0.1:$PORT/v1/run" -d "$REQ")"
echo "$R1" | head -c 400; echo
echo "$R1" | grep -q '"Availability":'   || { echo "FAIL: no Availability in response"; exit 1; }
echo "$R1" | grep -q '"cached":false'    || { echo "FAIL: first request claimed cached"; exit 1; }
echo "$R1" | grep -q '"fingerprint":"'   || { echo "FAIL: no fingerprint"; exit 1; }

echo "--- repeat request (cache hit) ---"
R2="$(curl -sf -X POST "http://127.0.0.1:$PORT/v1/run" -d "$REQ")"
echo "$R2" | grep -q '"cached":true'     || { echo "FAIL: repeat request not cached"; exit 1; }
SUM1="${R1#*\"summary\":}"; SUM2="${R2#*\"summary\":}"
[ "$SUM1" = "$SUM2" ]                    || { echo "FAIL: cached summary differs"; exit 1; }

echo "--- cache stats ---"
STATS="$(curl -sf "http://127.0.0.1:$PORT/v1/cache")"
echo "$STATS"
echo "$STATS" | grep -q '"hits":1'       || { echo "FAIL: expected exactly one cache hit"; exit 1; }
echo "$STATS" | grep -q '"inserts":1'    || { echo "FAIL: expected exactly one insert"; exit 1; }

echo "--- graceful drain (SIGTERM) ---"
kill -TERM $PID
CODE=0
wait $PID || CODE=$?
[ "$CODE" -eq 0 ] || { echo "FAIL: daemon exited $CODE after SIGTERM"; cat "$TMP/serve.log"; exit 1; }
grep -q "drained, exiting" "$TMP/serve.log" || { echo "FAIL: no drain message"; cat "$TMP/serve.log"; exit 1; }

echo "PASS: availserve smoke"
