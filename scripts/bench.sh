#!/usr/bin/env bash
# bench.sh — run the kernel micro-benchmarks and emit a JSON record.
#
# Usage: scripts/bench.sh [OUT.json] [BENCHTIME]
#
#   OUT.json   output path (default: stdout)
#   BENCHTIME  go test -benchtime value (default: 2s)
#
# The JSON shape is one run object:
#
#   {
#     "go": "go1.xx ...", "cpu": "...", "benchtime": "2s",
#     "benchmarks": [
#       {"name": "...", "ns_per_op": 1.2, "allocs_per_op": 0, "bytes_per_op": 0},
#       ...
#     ]
#   }
#
# BENCH_<pr>.json files committed at the repo root combine the "before"
# and "after" runs of a PR so the perf trajectory stays reviewable.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-}"
benchtime="${2:-2s}"

# One go test invocation per package: a multi-package invocation
# compiles the later test binaries while the first one's benchmarks
# run, which skews timings on small machines.
raw=""
for pkg in . ./internal/dist/ ./internal/xrand/ ./internal/stats/; do
  raw+="$(go test -run='^$' \
    -bench='MCIteration|SteadyState|MTTDL|SampleN|ExpFloat64|ErlangFloat64|NormFloat64|Uint32n|StudentTQuantile' \
    -benchmem -benchtime="$benchtime" -count=1 "$pkg" 2>&1)"
  raw+=$'\n'
done

# Keep the human-readable output visible on stderr.
echo "$raw" >&2

json="$(echo "$raw" | awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = "null"; allocs = "null"
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")     ns     = $(i-1)
        if ($(i) == "B/op")      bytes  = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    printf "%s{\"name\":\"%s\",\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", sep, name, ns, bytes, allocs
    sep = ","
}
BEGIN { printf "[" }
END   { printf "]" }
')"

goversion="$(go version)"
cpu="$(echo "$raw" | awk -F': ' '/^cpu:/ {print $2; exit}')"

payload="$(jq -n \
  --arg go "$goversion" \
  --arg cpu "${cpu:-unknown}" \
  --arg benchtime "$benchtime" \
  --argjson benchmarks "$json" \
  '{go: $go, cpu: $cpu, benchtime: $benchtime, benchmarks: $benchmarks}')"

if [ -n "$out" ]; then
  echo "$payload" > "$out"
  echo "bench.sh: wrote $out" >&2
else
  echo "$payload"
fi
