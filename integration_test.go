package herald

// Integration tests crossing the package layers: the three model
// formalisms (CTMC, hourly DTMC, Monte-Carlo) must tell one story, and
// the field-study pipeline must carry a ground truth end to end.

import (
	"math"
	"testing"
)

// TestThreeFormalismsAgree pins the Fig. 2 model's availability across
// the continuous chain, its hourly discretization and the simulator.
func TestThreeFormalismsAgree(t *testing.T) {
	const lambda, hep = 1e-4, 0.01
	p := PaperParams(4, lambda, hep)

	ctmc, err := SolveConventional(p)
	if err != nil {
		t.Fatal(err)
	}

	dtmc, err := ConventionalHourlyDTMC(p)
	if err != nil {
		t.Fatal(err)
	}
	dtmcUp, err := dtmc.StationaryProbability("OP", "EXP")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dtmcUp-ctmc.Availability) > 1e-9 {
		t.Fatalf("DTMC %v vs CTMC %v", dtmcUp, ctmc.Availability)
	}

	mc, err := Simulate(PaperSimParams(4, lambda, hep), SimOptions{
		Iterations: 4000, MissionTime: 2e5, Seed: 1234, Workers: 4, Confidence: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	tol := 4*mc.HalfWidth + 0.03*(1-ctmc.Availability)
	if diff := math.Abs(mc.Availability - ctmc.Availability); diff > tol {
		t.Fatalf("MC %v vs CTMC %v (diff %v, tol %v)", mc.Availability, ctmc.Availability, diff, tol)
	}
}

// TestFieldStudyPipelineEndToEnd hides a Weibull ground truth inside a
// synthetic log and checks that fit -> model recovers the availability
// verdict of the ground truth.
func TestFieldStudyPipelineEndToEnd(t *testing.T) {
	const trueRate, trueShape = 2e-5, 1.3
	hidden := WeibullFromMeanRate(trueRate, trueShape)
	log := GenerateFailureLog(hidden, 4000, 2e5, 99)

	choice, err := ChooseLifetimeModel(log)
	if err != nil {
		t.Fatal(err)
	}
	if !choice.WeibullPreferred {
		t.Fatal("AIC missed the wear-out signal")
	}
	if rel := math.Abs(choice.WeibullShape-trueShape) / trueShape; rel > 0.1 {
		t.Fatalf("fitted shape %v, truth %v", choice.WeibullShape, trueShape)
	}

	// Availability from fitted rate vs from true rate.
	fitted, err := SolveConventional(PaperParams(4, choice.ImpliedMeanRate, 0.001))
	if err != nil {
		t.Fatal(err)
	}
	truth, err := SolveConventional(PaperParams(4, trueRate, 0.001))
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(fitted.Unavailability()-truth.Unavailability()) / truth.Unavailability(); rel > 0.1 {
		t.Fatalf("fitted unavailability %v vs truth %v", fitted.Unavailability(), truth.Unavailability())
	}
}

// TestProcedureFeedsModel derives hep from a THERP-style procedure and
// pushes it through the availability model.
func TestProcedureFeedsModel(t *testing.T) {
	proc := DiskReplacementProcedure(HEPEnterpriseHigh)
	hep, err := proc.ErrorProbabilityTotal()
	if err != nil {
		t.Fatal(err)
	}
	if hep <= 0 || hep > 0.1 {
		t.Fatalf("procedure hep = %v outside the paper band", hep)
	}
	res, err := SolveConventional(PaperParams(4, 1e-6, float64(hep)))
	if err != nil {
		t.Fatal(err)
	}
	perfect, err := SolveConventional(PaperParams(4, 1e-6, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability >= perfect.Availability {
		t.Fatal("procedure-derived hep should cost availability")
	}
}

// TestMissionConsistencyAcrossPolicies checks finite-horizon metrics
// behave sanely for both policies.
func TestMissionConsistencyAcrossPolicies(t *testing.T) {
	conv, err := SolveConventional(PaperParams(4, 1e-5, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	fo, err := SolveFailover(PaperFailoverParams(4, 1e-5, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*ModelResult{conv, fo} {
		m, err := res.Mission(8766) // one year
		if err != nil {
			t.Fatal(err)
		}
		if m.IntervalAvailability < res.Availability-1e-12 {
			t.Fatalf("first-year availability %v below steady state %v", m.IntervalAvailability, res.Availability)
		}
		if m.ExpectedDowntimeHours < 0 {
			t.Fatal("negative downtime")
		}
	}
	// Fail-over must also win on the finite horizon.
	mc, _ := conv.Mission(8766)
	mf, _ := fo.Mission(8766)
	if mf.IntervalAvailability <= mc.IntervalAvailability {
		t.Fatal("fail-over should win the first year too")
	}
}

// TestFleetSimMatchesFleetModel closes the loop between SimulateFleet
// and the analytic series composition.
func TestFleetSimMatchesFleetModel(t *testing.T) {
	const lambda, hep, count = 1e-4, 0.01, 5
	fleet, err := SimulateFleet(PaperSimParams(4, lambda, hep), count, SimOptions{
		Iterations: 3000, MissionTime: 2e5, Seed: 77, Workers: 4, Confidence: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveConventional(PaperParams(4, lambda, hep))
	if err != nil {
		t.Fatal(err)
	}
	want := FleetAvailability(res.Availability, count)
	tol := 4*fleet.HalfWidth + 0.03*(1-want)
	if diff := math.Abs(fleet.Availability - want); diff > tol {
		t.Fatalf("fleet MC %v vs model %v (diff %v, tol %v)", fleet.Availability, want, diff, tol)
	}
}

// TestPaperNarrative walks the full claim chain as a single scenario.
func TestPaperNarrative(t *testing.T) {
	// 1. Traditional model says RAID1 mirrors are safest.
	r1, _ := SolveConventional(PaperParams(2, 1e-5, 0))
	r5, _ := SolveConventional(PaperParams(4, 1e-5, 0))
	f1 := FleetAvailability(r1.Availability, 21)
	f5 := FleetAvailability(r5.Availability, 7)
	if f1 <= f5 {
		t.Fatal("step 1 failed: RAID1 should lead without human error")
	}
	// 2. Add realistic human error: the ranking flips.
	r1h, _ := SolveConventional(PaperParams(2, 1e-5, 0.01))
	r5h, _ := SolveConventional(PaperParams(4, 1e-5, 0.01))
	f1h := FleetAvailability(r1h.Availability, 21)
	f5h := FleetAvailability(r5h.Availability, 7)
	if f1h >= f5h {
		t.Fatal("step 2 failed: ranking should flip at hep=0.01")
	}
	// 3. The traditional model underestimated downtime by orders of
	// magnitude.
	ratio, err := UnderestimationRatio(PaperParams(4, 1.31e-6, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 100 {
		t.Fatalf("step 3 failed: ratio %v", ratio)
	}
	// 4. Automatic fail-over buys the loss back.
	conv, _ := SolveConventional(PaperParams(4, 1e-6, 0.01))
	fo, _ := SolveFailover(PaperFailoverParams(4, 1e-6, 0.01))
	if conv.Unavailability()/fo.Unavailability() < 50 {
		t.Fatal("step 4 failed: fail-over gain too small")
	}
}
