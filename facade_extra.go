package herald

import (
	"herald/internal/human"
	"herald/internal/markov"
	"herald/internal/model"
	"herald/internal/sim"
	"herald/internal/trace"
	"herald/internal/xrand"
)

// This file extends the facade with the analysis features beyond the
// paper's core: finite-mission metrics, the literal discrete-time
// chains, failure-log fitting, fleet simulation and THERP-style
// procedure modelling.

// ---------------------------------------------------------------------
// Mission (finite-horizon) analysis
// ---------------------------------------------------------------------

// MissionResult carries finite-horizon availability metrics; obtain it
// from ModelResult.Mission(horizon).
type MissionResult = model.MissionResult

// ---------------------------------------------------------------------
// Discrete-time chains (the paper's literal figure form)
// ---------------------------------------------------------------------

// DTMC is a discrete-time Markov chain; the paper's figures are drawn
// in this form with hourly steps and explicit self-loops.
type DTMC = markov.DTMC

// ConventionalHourlyDTMC returns the paper's Fig. 2 as the hourly
// discrete chain it is drawn as. Its stationary availability matches
// the CTMC's.
func ConventionalHourlyDTMC(p ConventionalParams) (*DTMC, error) {
	return model.ConventionalHourlyDTMC(p)
}

// FailoverDTMC returns the Fig. 3 chain discretized with an explicit
// step (0.25 h keeps all rows stochastic at the paper defaults).
func FailoverDTMC(p FailoverParams, dt float64) (*DTMC, error) {
	return model.FailoverDTMC(p, dt)
}

// FailoverMTTDL returns the mean time to data loss (hours) under the
// automatic fail-over policy (DL and DLns absorbing).
func FailoverMTTDL(p FailoverParams) (float64, error) {
	return model.FailoverMTTDL(p)
}

// ---------------------------------------------------------------------
// Failure-log fitting (field-study pipeline)
// ---------------------------------------------------------------------

// FailureObservation is one disk lifetime record (possibly censored).
type FailureObservation = trace.Observation

// FailureLog is a set of lifetime observations.
type FailureLog = trace.Log

// LifetimeModelChoice is the AIC comparison of exponential vs Weibull
// fits of a failure log.
type LifetimeModelChoice = trace.ModelChoice

// GenerateFailureLog simulates a fleet failure log (with renewal and
// right-censoring) from any lifetime distribution — the synthetic
// stand-in for proprietary field data.
func GenerateFailureLog(lifetime Distribution, slots int, window float64, seed uint64) FailureLog {
	return trace.Generate(lifetime, slots, window, xrand.New(seed))
}

// FitExponentialLog returns the censored maximum-likelihood failure
// rate of a log.
func FitExponentialLog(l FailureLog) (rate float64, err error) {
	return trace.FitExponential(l)
}

// FitWeibullLog returns the censored maximum-likelihood Weibull shape
// and scale of a log.
func FitWeibullLog(l FailureLog) (shape, scale float64, err error) {
	return trace.FitWeibull(l)
}

// ChooseLifetimeModel fits both lifetime models and picks one by AIC.
func ChooseLifetimeModel(l FailureLog) (LifetimeModelChoice, error) {
	return trace.Choose(l)
}

// ---------------------------------------------------------------------
// Fleet simulation
// ---------------------------------------------------------------------

// FleetSimSummary is the Monte-Carlo estimate for a series fleet of
// identical arrays.
type FleetSimSummary = sim.FleetSummary

// SimulateFleet estimates the availability of count identical arrays
// in series, with delta-method CI propagation.
func SimulateFleet(p SimParams, count int, o SimOptions) (FleetSimSummary, error) {
	return sim.RunFleet(p, count, o)
}

// ---------------------------------------------------------------------
// Human reliability (THERP-style)
// ---------------------------------------------------------------------

// ServiceStep is one action in a service procedure, with a base error
// probability and an optional recovery factor.
type ServiceStep = human.Step

// ServiceProcedure is an ordered sequence of service steps; its
// end-to-end error probability is the hep to feed the models.
type ServiceProcedure = human.Procedure

// HumanErrorProbability is a per-opportunity error probability.
type HumanErrorProbability = human.ErrorProbability

// Published HEP bands from the HRA literature the paper surveys.
const (
	HEPEnterpriseLow  = human.HEPEnterpriseLow
	HEPEnterpriseHigh = human.HEPEnterpriseHigh
	HEPGeneralHigh    = human.HEPGeneralHigh
)

// DiskReplacementProcedure returns a representative conventional
// replacement procedure parameterized by a base step HEP.
func DiskReplacementProcedure(base HumanErrorProbability) ServiceProcedure {
	return human.DiskReplacementProcedure(base)
}
