package main

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadBenchmarksBareReport(t *testing.T) {
	path := writeFile(t, "bench.json", `{
		"go": "go1.24", "cpu": "TestCPU",
		"benchmarks": [
			{"name": "BenchmarkMCIterationConventional", "ns_per_op": 140000, "allocs_per_op": 8},
			{"name": "BenchmarkBroken", "ns_per_op": 0}
		]
	}`)
	m, cpu, err := loadBenchmarks(path)
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "TestCPU" {
		t.Errorf("cpu = %q", cpu)
	}
	if len(m) != 1 {
		t.Errorf("kept %d benchmarks, want 1 (zero ns/op dropped)", len(m))
	}
	if m["BenchmarkMCIterationConventional"].NsPerOp != 140000 {
		t.Errorf("ns/op = %v", m["BenchmarkMCIterationConventional"].NsPerOp)
	}
}

func TestLoadBenchmarksTrajectoryFile(t *testing.T) {
	// BENCH_<pr>.json shape: before/after sections; "after" wins.
	path := writeFile(t, "BENCH_2.json", `{
		"pr": 2,
		"before": {"benchmarks": [{"name": "BenchmarkX", "ns_per_op": 300}]},
		"after":  {"cpu": "C", "benchmarks": [{"name": "BenchmarkX", "ns_per_op": 100}]}
	}`)
	m, cpu, err := loadBenchmarks(path)
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "C" {
		t.Errorf("cpu = %q, want after-section CPU", cpu)
	}
	if m["BenchmarkX"].NsPerOp != 100 {
		t.Errorf("ns/op = %v, want the after section's 100", m["BenchmarkX"].NsPerOp)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := map[string]benchmark{
		"BenchmarkMCIterationConventional": {Name: "BenchmarkMCIterationConventional", NsPerOp: 100},
		"BenchmarkSampleNExp":              {Name: "BenchmarkSampleNExp", NsPerOp: 50},
		"BenchmarkIgnored":                 {Name: "BenchmarkIgnored", NsPerOp: 10},
		"BenchmarkOnlyInBase":              {Name: "BenchmarkOnlyInBase", NsPerOp: 10},
	}
	cur := map[string]benchmark{
		"BenchmarkMCIterationConventional": {Name: "BenchmarkMCIterationConventional", NsPerOp: 125}, // +25%: regression
		"BenchmarkSampleNExp":              {Name: "BenchmarkSampleNExp", NsPerOp: 55},               // +10%: fine
		"BenchmarkIgnored":                 {Name: "BenchmarkIgnored", NsPerOp: 1000},                // filtered out
	}
	re := regexp.MustCompile("MCIteration|SampleN|OnlyInBase")
	ds, missing, added := compare(base, cur, re, 0.20)
	if len(ds) != 2 {
		t.Fatalf("compared %d benchmarks, want 2", len(ds))
	}
	if len(missing) != 1 || missing[0] != "BenchmarkOnlyInBase" {
		t.Errorf("missing = %v, want the dropped gated benchmark surfaced", missing)
	}
	if len(added) != 0 {
		t.Errorf("added = %v, want none", added)
	}
	// Sorted worst-first.
	if ds[0].Name != "BenchmarkMCIterationConventional" || !ds[0].Regression {
		t.Errorf("worst delta = %+v, want flagged MCIteration", ds[0])
	}
	if ds[1].Name != "BenchmarkSampleNExp" || ds[1].Regression {
		t.Errorf("second delta = %+v, want unflagged SampleN", ds[1])
	}
}

func TestCompareImprovementNotFlagged(t *testing.T) {
	base := map[string]benchmark{"BenchmarkMCIterationConventional": {NsPerOp: 100}}
	cur := map[string]benchmark{"BenchmarkMCIterationConventional": {NsPerOp: 40}}
	ds, _, _ := compare(base, cur, nil, 0.20)
	if len(ds) != 1 || ds[0].Regression {
		t.Fatalf("improvement flagged as regression: %+v", ds)
	}
}

// TestCompareToleratesNewBenchmarks pins the forward-compatibility
// contract: kernel benchmarks added in this PR are absent from older
// BENCH_*.json baselines and must neither gate nor error — they are
// surfaced in added and start gating once a baseline includes them.
func TestCompareToleratesNewBenchmarks(t *testing.T) {
	base := map[string]benchmark{
		"BenchmarkMCIterationConventional": {NsPerOp: 145000},
	}
	cur := map[string]benchmark{
		"BenchmarkMCIterationConventional":        {NsPerOp: 60000},  // the specialized kernel
		"BenchmarkMCIterationConventionalGeneric": {NsPerOp: 145000}, // new in this report
		"BenchmarkMCIterationDualParity":          {NsPerOp: 80000},  // new in this report
		"BenchmarkUnrelated":                      {NsPerOp: 1},      // not gated
	}
	re := regexp.MustCompile("MCIteration")
	ds, missing, added := compare(base, cur, re, 0.20)
	if len(missing) != 0 {
		t.Errorf("missing = %v, want none", missing)
	}
	want := []string{"BenchmarkMCIterationConventionalGeneric", "BenchmarkMCIterationDualParity"}
	if len(added) != len(want) || added[0] != want[0] || added[1] != want[1] {
		t.Errorf("added = %v, want %v", added, want)
	}
	for _, d := range ds {
		if d.Regression {
			t.Errorf("unexpected regression %+v", d)
		}
	}
}
