// Command benchcheck compares a fresh benchmark report (the JSON
// scripts/bench.sh emits) against a committed baseline (the newest
// BENCH_*.json at the repo root) and exits non-zero when a kernel
// benchmark regressed beyond the threshold. CI runs it after the
// bench job so a >20% kernel regression fails the build instead of
// slipping into the trajectory unnoticed.
//
// Usage:
//
//	benchcheck -baseline BENCH_2.json -current bench-report.json
//	benchcheck -baseline BENCH_2.json -current out.json -threshold 0.3 -match 'MCIteration'
//
// Both file shapes are accepted: a bare bench.sh report
// ({"benchmarks": [...]}) or a PR trajectory file whose "after" (or
// "before") section holds the report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// benchmark is one benchmark line of a report.
type benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// report is the JSON shape bench.sh emits; trajectory files nest it
// under "before"/"after".
type report struct {
	Go         string      `json:"go"`
	CPU        string      `json:"cpu"`
	Benchmarks []benchmark `json:"benchmarks"`
	Before     *report     `json:"before"`
	After      *report     `json:"after"`
}

// loadBenchmarks reads a report file and returns its benchmarks by
// name, preferring the "after" section of trajectory files.
func loadBenchmarks(path string) (map[string]benchmark, string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	sel := &r
	if len(sel.Benchmarks) == 0 && r.After != nil {
		sel = r.After
	}
	if len(sel.Benchmarks) == 0 && r.Before != nil {
		sel = r.Before
	}
	if len(sel.Benchmarks) == 0 {
		return nil, "", fmt.Errorf("%s: no benchmarks found", path)
	}
	out := make(map[string]benchmark, len(sel.Benchmarks))
	for _, b := range sel.Benchmarks {
		if b.Name == "" || b.NsPerOp <= 0 {
			continue
		}
		out[b.Name] = b
	}
	cpu := sel.CPU
	if cpu == "" {
		cpu = r.CPU
	}
	return out, cpu, nil
}

// delta is one baseline-vs-current comparison.
type delta struct {
	Name       string
	BaseNs     float64
	CurNs      float64
	Ratio      float64 // CurNs/BaseNs - 1; positive = slower
	Regression bool
}

// compare matches benchmarks by name (filtered by match) and flags
// regressions beyond threshold. Gated baseline benchmarks absent from
// the current report are returned in missing — a renamed or dropped
// kernel benchmark must be visible, not silently un-gated. The
// reverse direction is tolerated by construction: benchmarks present
// only in the current report (newly added kernels not yet in older
// BENCH_*.json baselines) are returned in added and never gate — they
// start gating once a baseline containing them is committed.
func compare(base, cur map[string]benchmark, match *regexp.Regexp, threshold float64) (out []delta, missing, added []string) {
	for name, b := range base {
		if match != nil && !match.MatchString(name) {
			continue
		}
		c, ok := cur[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		ratio := c.NsPerOp/b.NsPerOp - 1
		out = append(out, delta{
			Name:       name,
			BaseNs:     b.NsPerOp,
			CurNs:      c.NsPerOp,
			Ratio:      ratio,
			Regression: ratio > threshold,
		})
	}
	for name := range cur {
		if match != nil && !match.MatchString(name) {
			continue
		}
		if _, ok := base[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ratio > out[j].Ratio })
	sort.Strings(missing)
	sort.Strings(added)
	return out, missing, added
}

func main() {
	var (
		baseline  = flag.String("baseline", "", "committed baseline JSON (e.g. the newest BENCH_*.json)")
		current   = flag.String("current", "", "fresh report JSON (scripts/bench.sh output)")
		threshold = flag.Float64("threshold", 0.20, "fail when ns/op grows by more than this fraction")
		match     = flag.String("match", "MCIteration|SampleN|ExpFloat64|ErlangFloat64|NormFloat64|Uint32n|StudentTQuantile|SteadyState",
			"regexp selecting the kernel benchmarks to gate on")
		missingIs = flag.String("missing", "warn",
			"how to treat gated baseline benchmarks absent from the current report: warn or fail")
	)
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -baseline and -current are required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck: bad -match:", err)
		os.Exit(2)
	}
	base, baseCPU, err := loadBenchmarks(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	cur, curCPU, err := loadBenchmarks(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	if baseCPU != "" && curCPU != "" && baseCPU != curCPU {
		fmt.Fprintf(os.Stderr, "benchcheck: note: baseline CPU %q differs from current %q; timings are cross-machine\n",
			baseCPU, curCPU)
	}

	if *missingIs != "warn" && *missingIs != "fail" {
		fmt.Fprintln(os.Stderr, "benchcheck: -missing must be warn or fail")
		os.Exit(2)
	}

	deltas, missing, added := compare(base, cur, re, *threshold)
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: gated baseline benchmark %s is missing from the current report\n", *missingIs, name)
	}
	for _, name := range added {
		// New benchmarks (e.g. kernels absent from older BENCH_*.json)
		// are informational until a baseline containing them lands.
		fmt.Fprintf(os.Stderr, "benchcheck: note: %s is new in the current report; it gates once a baseline includes it\n", name)
	}
	if len(deltas) == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no matching benchmarks shared by baseline and current report")
		os.Exit(2)
	}
	failed := 0
	for _, d := range deltas {
		flag := "  "
		if d.Regression {
			flag = "!!"
			failed++
		}
		fmt.Printf("%s %-48s %12.1f -> %12.1f ns/op  %+6.1f%%\n", flag, d.Name, d.BaseNs, d.CurNs, 100*d.Ratio)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d kernel benchmark(s) regressed more than %.0f%%\n", failed, 100**threshold)
		os.Exit(1)
	}
	if len(missing) > 0 && *missingIs == "fail" {
		fmt.Fprintf(os.Stderr, "benchcheck: %d gated benchmark(s) missing from the current report\n", len(missing))
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d benchmarks within %.0f%% of baseline\n", len(deltas), 100**threshold)
}
