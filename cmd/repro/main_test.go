package main

import (
	"strings"
	"testing"

	"herald/internal/sim"
)

// TestParseBiasFlag pins the -bias boundary: bad tokens fail at parse
// time with an error naming the flag, good tokens map onto the sim
// option values.
func TestParseBiasFlag(t *testing.T) {
	good := map[string]float64{
		"":     0,
		"auto": sim.BiasAuto,
		"1":    1,
		"2.5":  2.5,
	}
	for tok, want := range good {
		got, err := parseBiasFlag(tok)
		if err != nil || got != want {
			t.Errorf("parseBiasFlag(%q) = %v, %v; want %v", tok, got, err, want)
		}
	}
	for _, tok := range []string{"0", "0.5", "-1", "nan", "inf", "-inf", "garbage"} {
		_, err := parseBiasFlag(tok)
		if err == nil {
			t.Errorf("parseBiasFlag(%q) accepted", tok)
			continue
		}
		if !strings.Contains(err.Error(), "-bias") {
			t.Errorf("parseBiasFlag(%q) error does not name the flag: %v", tok, err)
		}
	}
}
