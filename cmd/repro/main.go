// Command repro regenerates the paper's evaluation figures as tables.
//
// Examples:
//
//	repro                      # every figure, laptop scale
//	repro -fig 6               # only Fig. 6 (RAID ranking)
//	repro -fig 4 -iters 100000 # Fig. 4 at near-paper Monte-Carlo scale
//	repro -fig 5 -csv          # Fig. 5 as CSV
//	repro -full                # paper-scale 1e6-iteration sweep,
//	                           # sharded across all cores
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"herald/internal/prof"
	"herald/internal/repro"
	"herald/internal/shard"
	"herald/internal/sim"
)

// parseBiasFlag maps the -bias token onto an Options.Bias value,
// naming the flag in the error so a bad value reads as a flag problem
// rather than an internal one.
func parseBiasFlag(s string) (float64, error) {
	v, err := sim.ParseBias(s)
	if err != nil {
		return 0, fmt.Errorf("-bias must be \"auto\" or a finite factor >= 1, got %q", s)
	}
	return v, nil
}

func main() {
	// -full shards across sibling processes of this binary.
	shard.MaybeWorker()

	var (
		fig        = flag.String("fig", "all", "experiment id: "+strings.Join(repro.All(), ", ")+" or all")
		iters      = flag.Int("iters", 0, "Monte-Carlo iterations per point (0 = default 4000; paper used 1e6)")
		mission    = flag.Float64("mission", 0, "mission time per iteration in hours (0 = default 1e6)")
		seed       = flag.Uint64("seed", 0, "PRNG seed (0 = default)")
		workers    = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS); with -full, the worker-process count")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		full       = flag.Bool("full", false, "run the paper-scale sweep (policies x HEP at 1e6 iterations/point) pipelined across all cores")
		targetHW   = flag.Float64("target-halfwidth", 0, "with -full: stop each point at this CI half-width instead of the full iteration count (adaptive sequential sampling; -iters becomes the cap)")
		bias       = flag.String("bias", "", "with -full: failure-biased importance sampling — a finite inflation factor >= 1, or auto to pick one per point from its failure/repair rate ratio (empty = off)")
		undoLaws   = flag.Bool("undo-laws", false, "shorthand for -fig undo-laws: compare hyper-exponential / lognormal human-error undo latencies against the paper's exponential assumption")
		confidence = flag.Float64("confidence", 0, "confidence level for the intervals (0 = default 0.99 as in the paper)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof format)")
		memProfile = flag.String("memprofile", "", "write an allocation heap profile to this file after the run (go tool pprof format)")
	)
	flag.Parse()

	// Validated here rather than deep inside a figure run: an
	// out-of-range level (including NaN) otherwise only surfaces after
	// the Monte-Carlo work is already done.
	if *confidence != 0 && !(*confidence > 0 && *confidence < 1) {
		fmt.Fprintf(os.Stderr, "repro: -confidence must be inside (0,1), got %v\n", *confidence)
		os.Exit(1)
	}

	biasF, err := parseBiasFlag(*bias)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}

	o := repro.Options{
		MCIterations:    *iters,
		MissionTime:     *mission,
		Seed:            *seed,
		Workers:         *workers,
		TargetHalfWidth: *targetHW,
		Confidence:      *confidence,
		Bias:            biasF,
	}

	if *targetHW != 0 && !*full {
		fmt.Fprintln(os.Stderr, "repro: -target-halfwidth requires -full")
		os.Exit(1)
	}
	if biasF != 0 && !*full {
		fmt.Fprintln(os.Stderr, "repro: -bias requires -full")
		os.Exit(1)
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	if *full {
		if err := repro.Full(o, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		return
	}

	ids := repro.All()
	if *undoLaws {
		if *fig != "all" {
			fmt.Fprintln(os.Stderr, "repro: -undo-laws and -fig are mutually exclusive (use -fig undo-laws to combine with nothing else)")
			os.Exit(1)
		}
		ids = []string{repro.ExpUndoLaws}
	} else if *fig != "all" {
		ids = []string{*fig}
	}
	for _, id := range ids {
		tables, err := repro.Run(id, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *csv {
				if err := t.CSV(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, "repro:", err)
					os.Exit(1)
				}
			} else if _, err := t.WriteTo(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "repro:", err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}
