// Command availcalc evaluates the analytic Markov availability models
// for a single RAID array, printing steady-state probabilities,
// availability (plain and in nines), downtime per year, the DU/DL
// breakdown and MTTDL.
//
// Examples:
//
//	availcalc -disks 4 -lambda 1e-6 -hep 0.001
//	availcalc -policy failover -disks 4 -lambda 1e-6 -hep 0.01
//	availcalc -raid raid6 -disks 6 -lambda 1e-5 -hep 0.01
//	availcalc -disks 4 -lambda 1e-6 -hep 0.01 -dot > fig2.dot
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"herald/internal/model"
	"herald/internal/report"
	"herald/internal/stats"
)

func main() {
	var (
		raidKind    = flag.String("raid", "raid5", "redundancy scheme: raid1, raid5 or raid6")
		policy      = flag.String("policy", "conventional", "replacement policy: conventional or failover")
		disks       = flag.Int("disks", 4, "total member disks n (RAID1 uses 2)")
		lambda      = flag.Float64("lambda", 1e-6, "per-disk failure rate (1/h)")
		hep         = flag.Float64("hep", 0.001, "human error probability per service")
		muDF        = flag.Float64("mu-df", 0.1, "disk replacement/rebuild rate (1/h)")
		muDDF       = flag.Float64("mu-ddf", 0.03, "data loss recovery rate from backup (1/h)")
		muHE        = flag.Float64("mu-he", 1, "human error undo rate (1/h)")
		lambdaCrash = flag.Float64("lambda-crash", 0.01, "crash rate of a wrongly removed disk (1/h)")
		muS         = flag.Float64("mu-s", 0.1, "on-line rebuild-to-spare rate (failover policy)")
		muCH        = flag.Float64("mu-ch", 1, "spare swap service rate (failover policy)")
		noResync    = flag.Bool("no-resync", false, "use the literal Fig. 2 DU->OP recovery (no post-undo resync)")
		dot         = flag.Bool("dot", false, "print the model in Graphviz DOT format and exit")
		fleet       = flag.Int("fleet", 1, "number of identical arrays composed in series")
		mission     = flag.Float64("mission", 0, "also report finite-mission metrics for this horizon in hours (0 = skip)")
	)
	flag.Parse()

	p := model.Params{
		Disks:           *disks,
		Lambda:          *lambda,
		MuDF:            *muDF,
		MuDDF:           *muDDF,
		MuHE:            *muHE,
		HEP:             *hep,
		LambdaCrash:     *lambdaCrash,
		ResyncAfterUndo: !*noResync,
	}

	var (
		res  *model.Result
		err  error
		name string
	)
	switch {
	case *policy == "failover":
		fp := model.FailoverParams{
			Params: p, MuS: *muS, MuCH: *muCH,
			InstallAsSpare: true, DownAltService: true,
		}
		name = "automatic fail-over (Fig. 3)"
		if *dot {
			c, err := model.FailoverChain(fp)
			exitOn(err)
			fmt.Print(c.DOT("failover"))
			return
		}
		res, err = model.Failover(fp)
	case *raidKind == "raid6":
		name = "dual parity (RAID6 extension)"
		if *dot {
			c, err := model.DualParityChain(p)
			exitOn(err)
			fmt.Print(c.DOT("dualparity"))
			return
		}
		res, err = model.DualParity(p)
	case *raidKind == "raid1" || *raidKind == "raid5":
		if *raidKind == "raid1" {
			p.Disks = 2
		}
		name = "conventional replacement (Fig. 2)"
		if *dot {
			c, err := model.ConventionalChain(p)
			exitOn(err)
			fmt.Print(c.DOT("conventional"))
			return
		}
		res, err = model.Conventional(p)
	default:
		exitOn(fmt.Errorf("unknown -raid %q (want raid1, raid5 or raid6)", *raidKind))
	}
	exitOn(err)

	t := report.NewTable("Model: "+name, "state", "steady-state probability")
	names := make([]string, 0, len(res.Pi))
	for s := range res.Pi {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		t.AddRow(s, report.E(res.Pi[s]))
	}
	t.AddNote("availability          = %.12f (%s nines)", res.Availability, report.F3(res.Nines()))
	t.AddNote("unavailability        = %s (DU %s, DL %s)",
		report.E(res.Unavailability()), report.E(res.UnavailabilityDU), report.E(res.UnavailabilityDL))
	t.AddNote("downtime              = %.4g h/year", res.DowntimeHoursPerYear())
	if *policy != "failover" && *raidKind != "raid6" {
		if mttdl, err := model.MTTDL(p); err == nil {
			t.AddNote("MTTDL                 = %.3g h (%.1f years)", mttdl, mttdl/8766)
		}
	}
	if *fleet > 1 {
		fa := model.FleetAvailability(res.Availability, *fleet)
		t.AddNote("fleet of %d in series = %.12f (%s nines)", *fleet, fa, report.F3(stats.Nines(fa)))
	}
	if *mission > 0 {
		m, err := res.Mission(*mission)
		exitOn(err)
		t.AddNote("mission %.3gh: interval availability %.12f (%s nines), expected downtime %.4g h",
			m.Horizon, m.IntervalAvailability, report.F3(m.Nines()), m.ExpectedDowntimeHours)
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		exitOn(err)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "availcalc:", err)
		os.Exit(1)
	}
}
