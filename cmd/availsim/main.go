// Command availsim runs the Monte-Carlo reference availability model
// (paper §III) for one array configuration and prints the estimate
// with its confidence interval and the event census.
//
// Time-to-failure (-dist) and replacement service (-repair-dist) laws
// can be drawn from any family in internal/dist; each is
// parameterized so its mean matches the corresponding rate flag
// (1/lambda for TTF, 1/mu-df for the service).
//
// Examples:
//
//	availsim -disks 4 -lambda 1e-6 -hep 0.001 -iters 100000
//	availsim -dist weibull -shape 1.48 -lambda 2e-5 -hep 0.01
//	availsim -dist gamma -shape 2.5 -lambda 1e-5
//	availsim -dist erlang -stages 3 -lambda 1e-5
//	availsim -dist lognormal -sigma 1.2 -lambda 1e-5
//	availsim -dist hyperexp -hyper-weights 0.9,0.1 -hyper-rates 2e-5,1e-6
//	availsim -repair-dist lognormal -repair-sigma 0.8 -mu-df 0.1
//	availsim -policy failover -disks 4 -lambda 1e-5 -hep 0.01
//
// Paper-scale runs shard across processes and machines (see README.md
// "Sharded execution"): -shards partitions the iteration range,
// -workers sets the local worker-process count, -checkpoint makes the
// run resumable, -shard-serve turns this host into a TCP worker that
// -shard-connect attaches. Alternatively the coordinator opens a
// registration port with -shard-listen and worker boxes dial in with
// -shard-join, joining (and leaving) while the run executes. Both
// modes authenticate with -shard-token and encrypt with the
// -shard-tls-* flags:
//
//	availsim -iters 1000000 -shards 16 -workers 8
//	availsim -iters 1000000 -shards 32 -checkpoint run.ckpt
//	availsim -shard-serve :9009                   # on a worker box
//	availsim -iters 1000000 -shards 32 -shard-connect box1:9009,box2:9009
//	availsim -iters 1000000 -shards 32 -shard-listen :9009 -shard-token s3cret
//	availsim -shard-join coord:9009 -shard-token s3cret   # on each worker box
//
// Adaptive (precision-targeted) runs stop at a requested CI half-width
// instead of a preset count (README.md "Adaptive precision"); -iters
// becomes the cap, and sharded adaptive runs hand shards out in waves:
//
//	availsim -target-halfwidth 5e-9 -iters 1000000
//	availsim -target-halfwidth 5e-9 -iters 1000000 -shards 16 -workers 8
package main

import (
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"herald/internal/dist"
	"herald/internal/prof"
	"herald/internal/report"
	"herald/internal/shard"
	"herald/internal/sim"
)

// distFamilies names the supported law families for -dist and
// -repair-dist.
const distFamilies = "exp, weibull, lognormal, gamma, erlang or hyperexp"

// lawFlags bundles the shape flags of one distribution selection.
type lawFlags struct {
	family  string
	shape   float64 // weibull / gamma shape
	sigma   float64 // lognormal log-space standard deviation
	stages  int     // erlang stage count
	hyperW  string  // hyperexp branch weights (comma-separated)
	hyperR  string  // hyperexp branch rates (comma-separated, 1/h)
	flagTag string  // flag-name prefix for error messages ("" or "repair-")
}

// build constructs the law with mean 1/rate (except hyperexp, whose
// branch rates are explicit).
func (lf *lawFlags) build(rate float64) (dist.Distribution, error) {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("-%s"+format, append([]any{lf.flagTag}, args...)...)
	}
	switch lf.family {
	case "exp":
		return dist.NewExponential(rate), nil
	case "weibull":
		if !(lf.shape > 0) || math.IsInf(lf.shape, 0) {
			return nil, bad("shape must be a positive finite value, got %v", lf.shape)
		}
		return dist.WeibullFromMeanRate(rate, lf.shape), nil
	case "lognormal":
		if !(lf.sigma > 0) || math.IsInf(lf.sigma, 0) {
			return nil, bad("sigma must be a positive finite value, got %v", lf.sigma)
		}
		// Mean-matched: mu = ln(1/rate) - sigma^2/2.
		return dist.NewLognormal(-math.Log(rate)-lf.sigma*lf.sigma/2, lf.sigma), nil
	case "gamma":
		if !(lf.shape > 0) || math.IsInf(lf.shape, 0) {
			return nil, bad("shape must be a positive finite value, got %v", lf.shape)
		}
		// Mean shape/(shape*rate) = 1/rate.
		return dist.NewGamma(lf.shape, lf.shape*rate), nil
	case "erlang":
		if lf.stages < 1 {
			return nil, bad("stages must be >= 1, got %d", lf.stages)
		}
		return dist.NewErlang(lf.stages, float64(lf.stages)*rate), nil
	case "hyperexp":
		weights, err := parseCSV(lf.hyperW)
		if err != nil {
			return nil, bad("hyper-weights: %v", err)
		}
		rates, err := parseCSV(lf.hyperR)
		if err != nil {
			return nil, bad("hyper-rates: %v", err)
		}
		if len(weights) != len(rates) || len(weights) == 0 {
			return nil, bad("hyper-weights and -%shyper-rates need the same non-zero length, got %d and %d",
				lf.flagTag, len(weights), len(rates))
		}
		for _, r := range rates {
			if !(r > 0) || math.IsInf(r, 0) {
				return nil, bad("hyper-rates must be positive finite values, got %v", r)
			}
		}
		sum := 0.0
		for _, w := range weights {
			if !(w >= 0) || math.IsInf(w, 0) {
				return nil, bad("hyper-weights must be non-negative finite values, got %v", w)
			}
			sum += w
		}
		if sum <= 0 {
			return nil, bad("hyper-weights must sum to a positive value")
		}
		return dist.NewHyperExponential(weights, rates), nil
	default:
		return nil, fmt.Errorf("unknown -%sdist %q (want %s)", lf.flagTag, lf.family, distFamilies)
	}
}

// parseBiasFlag maps the -bias token onto an Options.Bias value,
// naming the flag in the error so a bad value reads as a flag problem
// rather than an internal one.
func parseBiasFlag(s string) (float64, error) {
	v, err := sim.ParseBias(s)
	if err != nil {
		return 0, fmt.Errorf("-bias must be \"auto\" or a finite factor >= 1, got %q", s)
	}
	return v, nil
}

// parseCSV parses a comma-separated float list.
func parseCSV(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty list")
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad element %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func main() {
	// When spawned by a sharded coordinator, this process serves jobs
	// over stdio and never reaches the CLI below.
	shard.MaybeWorker()

	var (
		disks  = flag.Int("disks", 4, "total member disks n")
		lambda = flag.Float64("lambda", 1e-6, "per-disk failure rate (1/h); the TTF law's mean is 1/lambda")
		hep    = flag.Float64("hep", 0.001, "human error probability per service")

		ttf = lawFlags{flagTag: ""}
		rep = lawFlags{flagTag: "repair-"}

		policy      = flag.String("policy", "conventional", "replacement policy: conventional, failover or dualparity")
		muDF        = flag.Float64("mu-df", 0.1, "replacement/rebuild rate (1/h); the service law's mean is 1/mu-df")
		muDDF       = flag.Float64("mu-ddf", 0.03, "backup restore rate (1/h)")
		muHE        = flag.Float64("mu-he", 1, "human error undo rate (1/h)")
		muS         = flag.Float64("mu-s", 0.1, "on-line rebuild-to-spare rate (failover)")
		muCH        = flag.Float64("mu-ch", 1, "spare swap rate (failover)")
		lambdaCrash = flag.Float64("lambda-crash", 0.01, "pulled-disk crash rate (1/h)")
		noResync    = flag.Bool("no-resync", false, "skip the post-undo resync outage")
		kernel      = flag.String("kernel", "auto", "Monte-Carlo kernel: auto (rate-based walkers when every law is exponential), generic (per-disk clock walkers) or memoryless (force; rejects non-exponential laws)")
		bias        = flag.String("bias", "", "failure-biased importance sampling: a finite inflation factor >= 1, or auto to pick one from the failure/repair rate ratio; needs the memoryless kernel (empty = off)")
		targetHW    = flag.Float64("target-halfwidth", 0, "adaptive precision target: stop when the availability CI half-width reaches this value (sequential sampling; -iters becomes the cap, or the minimum when -max-iters is set)")
		maxIters    = flag.Int("max-iters", 0, "iteration cap for adaptive runs (requires -target-halfwidth; -iters then floors the executed count)")
		iters       = flag.Int("iters", 20000, "Monte-Carlo iterations (paper: 1e6); with -target-halfwidth, the cap instead")
		mission     = flag.Float64("mission", 1e6, "mission time per iteration (h)")
		seed        = flag.Uint64("seed", 42, "PRNG seed")
		workers     = flag.Int("workers", 0, "parallel workers: goroutines single-process, local worker processes when sharded (0 = GOMAXPROCS)")
		confidence  = flag.Float64("confidence", 0.99, "confidence level for the interval")

		shards       = flag.Int("shards", 1, "partition the run into N shards executed by worker processes/machines (results are bit-identical for every N)")
		checkpoint   = flag.String("checkpoint", "", "checkpoint log path: completed shards are recorded and a rerun resumes from them (implies sharded execution)")
		shardConnect = flag.String("shard-connect", "", "comma-separated host:port list of remote TCP workers (availsim -shard-serve) to attach")
		shardServe   = flag.String("shard-serve", "", "run as a TCP shard worker on this address instead of simulating")

		shardJoin      = flag.String("shard-join", "", "join a coordinator (availsim -shard-listen) as a shard worker instead of simulating")
		shardCapacity  = flag.Int("shard-capacity", 0, "job parallelism advertised when joining via -shard-join (0 = all local cores)")
		joinRetry      = flag.Bool("join-retry", true, "supervise -shard-join: reconnect after transport failures with capped exponential backoff; a clean coordinator close still exits (false: exit on any error)")
		shardListen    = flag.String("shard-listen", "", "accept shard workers joining via -shard-join on this address for the run (implies sharded execution)")
		shardToken     = flag.String("shard-token", "", "shared secret authenticating shard connections; both ends must agree (HMAC handshake, the token never crosses the wire)")
		shardTLSCert   = flag.String("shard-tls-cert", "", "PEM certificate enabling TLS on listening shard sockets (-shard-serve, -shard-listen; with -shard-tls-key); on dialing sides, the client certificate for mutual TLS")
		shardTLSKey    = flag.String("shard-tls-key", "", "PEM private key paired with -shard-tls-cert")
		cpuProfile     = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file (go tool pprof format)")
		memProfile     = flag.String("memprofile", "", "write an allocation heap profile to this file after the simulation (go tool pprof format)")
		shardTLSCA     = flag.String("shard-tls-ca", "", "PEM CA bundle: dialing sides verify the server against it (enables TLS on -shard-connect/-shard-join); listening sides additionally require client certificates chained to it (mutual TLS)")
		shardHeartbeat = flag.Duration("shard-heartbeat", 0, "shard liveness heartbeat interval; a peer silent for 4 intervals is declared dead and its work reassigned (0 = 3s)")
	)
	flag.StringVar(&ttf.family, "dist", "exp", "time-to-failure law: "+distFamilies)
	flag.Float64Var(&ttf.shape, "shape", 1.2, "TTF shape (weibull, gamma)")
	flag.Float64Var(&ttf.sigma, "sigma", 1, "TTF log-space standard deviation (lognormal)")
	flag.IntVar(&ttf.stages, "stages", 2, "TTF stage count (erlang)")
	flag.StringVar(&ttf.hyperW, "hyper-weights", "0.5,0.5", "TTF branch weights (hyperexp)")
	flag.StringVar(&ttf.hyperR, "hyper-rates", "", "TTF branch rates 1/h (hyperexp)")
	flag.StringVar(&rep.family, "repair-dist", "exp", "replacement service law: "+distFamilies)
	flag.Float64Var(&rep.shape, "repair-shape", 1.2, "service shape (weibull, gamma)")
	flag.Float64Var(&rep.sigma, "repair-sigma", 1, "service log-space standard deviation (lognormal)")
	flag.IntVar(&rep.stages, "repair-stages", 2, "service stage count (erlang)")
	flag.StringVar(&rep.hyperW, "repair-hyper-weights", "0.5,0.5", "service branch weights (hyperexp)")
	flag.StringVar(&rep.hyperR, "repair-hyper-rates", "", "service branch rates 1/h (hyperexp)")
	flag.Parse()

	clientNC, serverNC, err := shardNetConfigs(*shardToken, *shardTLSCert, *shardTLSKey, *shardTLSCA, *shardHeartbeat)
	exitOn(err)

	if *shardServe != "" {
		err := shard.ListenAndServeNetStop(*shardServe, serverNC, func(a net.Addr) {
			fmt.Fprintf(os.Stderr, "availsim: serving shard jobs on %s\n", a)
		}, stopOnSignal())
		exitOn(err)
		fmt.Fprintln(os.Stderr, "availsim: shard worker drained, exiting")
		return
	}
	if *shardJoin != "" {
		fmt.Fprintf(os.Stderr, "availsim: joining shard coordinator %s\n", *shardJoin)
		if *joinRetry {
			exitOn(shard.JoinLoop(*shardJoin, *shardCapacity, clientNC, stopOnSignal(), os.Stderr))
		} else {
			exitOn(shard.JoinStop(*shardJoin, *shardCapacity, clientNC, stopOnSignal()))
		}
		fmt.Fprintln(os.Stderr, "availsim: shard worker drained, exiting")
		return
	}

	// Out-of-range confidence levels used to reach the Student-t
	// quantile deep inside a run; reject them at the flag boundary.
	if !(*confidence > 0 && *confidence < 1) {
		exitOn(fmt.Errorf("-confidence must be inside (0,1), got %v", *confidence))
	}

	// The distribution constructors treat non-positive rates as
	// programmer errors and panic; turn bad flag values into flag
	// errors instead.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"-lambda", *lambda}, {"-mu-df", *muDF},
		{"-mu-ddf", *muDDF}, {"-mu-he", *muHE}, {"-mu-s", *muS}, {"-mu-ch", *muCH},
	} {
		if !(f.v > 0) || math.IsInf(f.v, 0) {
			exitOn(fmt.Errorf("%s must be a positive finite value, got %v", f.name, f.v))
		}
	}

	p := sim.ArrayParams{
		Disks:           *disks,
		TapeRestore:     dist.NewExponential(*muDDF),
		HERecovery:      dist.NewExponential(*muHE),
		HEP:             *hep,
		CrashRate:       *lambdaCrash,
		ResyncAfterUndo: !*noResync,
		SpareRebuild:    dist.NewExponential(*muS),
		SpareSwap:       dist.NewExponential(*muCH),
	}
	if p.TTF, err = ttf.build(*lambda); err != nil {
		exitOn(err)
	}
	if p.Repair, err = rep.build(*muDF); err != nil {
		exitOn(err)
	}
	if p.Policy, err = sim.ParsePolicy(*policy); err != nil {
		exitOn(err)
	}

	kern, err2 := sim.ParseKernel(*kernel)
	if err2 != nil {
		exitOn(err2)
	}
	// Resolve eagerly so -kernel memoryless on a non-exponential law
	// fails before any sharded machinery spins up, and so the report
	// can name the kernel that actually ran.
	resolved, err2 := sim.ResolveKernel(p, kern)
	if err2 != nil {
		exitOn(err2)
	}
	biasF, err2 := parseBiasFlag(*bias)
	if err2 != nil {
		exitOn(err2)
	}
	if biasF != 0 && resolved != sim.KernelMemoryless {
		exitOn(fmt.Errorf("-bias %s requires the memoryless kernel (this configuration resolved %v)", *bias, resolved))
	}

	o := sim.Options{
		Iterations:      *iters,
		MissionTime:     *mission,
		Seed:            *seed,
		Workers:         *workers,
		Confidence:      *confidence,
		Kernel:          kern,
		Bias:            biasF,
		TargetHalfWidth: *targetHW,
		MaxIters:        *maxIters,
	}
	if err := o.Validate(); err != nil {
		exitOn(err)
	}
	// Profiles bracket only the Monte-Carlo work, not flag parsing or
	// report formatting.
	stopProf, perr := prof.Start(*cpuProfile, *memProfile)
	exitOn(perr)
	var s sim.Summary
	if *shards > 1 || *shardConnect != "" || *checkpoint != "" || *shardListen != "" {
		s, err = runSharded(p, o, *shards, *workers, *checkpoint, *shardConnect, *shardListen, clientNC, serverNC)
	} else {
		s, err = sim.Run(p, o)
	}
	exitOn(err)
	exitOn(stopProf())

	t := report.NewTable(
		fmt.Sprintf("Monte-Carlo availability, %d-disk array, %s policy, TTF %s, service %s",
			*disks, p.Policy, p.TTF, p.Repair),
		"metric", "value")
	t.AddRow("availability", fmt.Sprintf("%.12f", s.Availability))
	t.AddRow("nines", report.F3(s.Nines))
	t.AddRow(fmt.Sprintf("CI half-width (%.0f%%)", *confidence*100), report.E(s.HalfWidth))
	t.AddRow("mean DU downtime / iteration", fmt.Sprintf("%.4g h", s.MeanDowntimeDU))
	t.AddRow("mean DL downtime / iteration", fmt.Sprintf("%.4g h", s.MeanDowntimeDL))
	t.AddRow("disk failures", fmt.Sprintf("%d", s.Events.Failures))
	t.AddRow("double disk failures", fmt.Sprintf("%d", s.Events.DoubleFailures))
	t.AddRow("human errors", fmt.Sprintf("%d", s.Events.HumanErrors))
	t.AddRow("pulled-disk crashes", fmt.Sprintf("%d", s.Events.Crashes))
	t.AddRow("undo attempts", fmt.Sprintf("%d", s.Events.UndoAttempts))
	if s.Bias > 0 {
		t.AddRow("effective sample size", fmt.Sprintf("%.1f", s.ESS))
	}
	if o.Adaptive() {
		state := "cap reached without convergence"
		if s.Converged {
			state = "converged"
		}
		t.AddNote("adaptive: target half-width %.3g, stopped at %d of <= %d iterations (%s)",
			s.TargetHalfWidth, s.Iterations, o.IterationCap(), state)
	}
	biasNote := ""
	if s.Bias > 0 {
		biasNote = fmt.Sprintf(", failure bias x%.4g", s.Bias)
	}
	t.AddNote("%d iterations x %.3g h mission, seed %d, %s kernel%s", s.Iterations, s.MissionTime, *seed, resolved, biasNote)
	if _, err := t.WriteTo(os.Stdout); err != nil {
		exitOn(err)
	}
}

// runSharded executes the run through the shard coordinator: remote
// TCP workers from -shard-connect, workers joining via -shard-listen,
// plus nlocal local worker processes (0 = GOMAXPROCS; with remote or
// joining workers, 0 means no local processes).
func runSharded(p sim.ArrayParams, o sim.Options, shards, nlocal int, checkpoint, connect, listen string, clientNC, serverNC shard.NetConfig) (sim.Summary, error) {
	var workers []shard.Worker
	closeAll := func() {
		for _, w := range workers {
			w.Close()
		}
	}
	if connect != "" {
		for _, addr := range strings.Split(connect, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			w, err := shard.DialNet(addr, clientNC)
			if err != nil {
				closeAll()
				return sim.Summary{}, err
			}
			workers = append(workers, w)
		}
	}
	if nlocal > 0 || (len(workers) == 0 && listen == "") {
		local, err := shard.SpawnLocal(nlocal)
		if err != nil {
			closeAll()
			return sim.Summary{}, err
		}
		workers = append(workers, local...)
	}
	defer closeAll()
	cfg := shard.Config{
		Params:     p,
		Options:    o,
		Shards:     shards,
		Workers:    workers,
		Checkpoint: checkpoint,
		Log:        os.Stderr,
	}
	if listen != "" {
		ln, source, err := shard.ListenWorkers(listen, serverNC, os.Stderr)
		if err != nil {
			return sim.Summary{}, err
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "availsim: accepting shard workers on %s\n", ln.Addr())
		cfg.WorkerSource = source
	}
	return shard.Run(cfg)
}

// shardNetConfigs resolves the -shard-* transport flags into the
// dialing-side and listening-side network configurations. TLS turns on
// for listeners when a certificate pair is given, and for dialers when
// a CA bundle is given (the pair then doubles as the client
// certificate for mutual TLS).
func shardNetConfigs(token, cert, key, ca string, heartbeat time.Duration) (client, server shard.NetConfig, err error) {
	client = shard.NetConfig{Token: token, HeartbeatInterval: heartbeat}
	server = client
	if cert != "" || key != "" {
		server.TLS, err = shard.ServerTLS(cert, key, ca)
		if err != nil {
			return client, server, err
		}
	}
	if ca != "" {
		client.TLS, err = shard.ClientTLS(ca, "", cert, key)
		if err != nil {
			return client, server, err
		}
	}
	return client, server, nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "availsim:", err)
		os.Exit(1)
	}
}

// stopOnSignal returns a channel that closes on the first SIGINT or
// SIGTERM, switching the long-lived worker modes to a graceful drain:
// finish the running job, hand queued jobs back for reassignment,
// exit 0.
func stopOnSignal() <-chan struct{} {
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "availsim: %v received, draining\n", s)
		close(stop)
		signal.Stop(sig)
	}()
	return stop
}
