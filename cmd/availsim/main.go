// Command availsim runs the Monte-Carlo reference availability model
// (paper §III) for one array configuration and prints the estimate
// with its confidence interval and the event census.
//
// Examples:
//
//	availsim -disks 4 -lambda 1e-6 -hep 0.001 -iters 100000
//	availsim -dist weibull -shape 1.48 -lambda 2e-5 -hep 0.01
//	availsim -policy failover -disks 4 -lambda 1e-5 -hep 0.01
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"herald/internal/dist"
	"herald/internal/report"
	"herald/internal/sim"
)

func main() {
	var (
		disks       = flag.Int("disks", 4, "total member disks n")
		lambda      = flag.Float64("lambda", 1e-6, "per-disk failure rate (1/h)")
		hep         = flag.Float64("hep", 0.001, "human error probability per service")
		distKind    = flag.String("dist", "exp", "time-to-failure law: exp or weibull")
		shape       = flag.Float64("shape", 1.2, "Weibull shape (with -dist weibull)")
		policy      = flag.String("policy", "conventional", "replacement policy: conventional or failover")
		muDF        = flag.Float64("mu-df", 0.1, "replacement/rebuild rate (1/h)")
		muDDF       = flag.Float64("mu-ddf", 0.03, "backup restore rate (1/h)")
		muHE        = flag.Float64("mu-he", 1, "human error undo rate (1/h)")
		muS         = flag.Float64("mu-s", 0.1, "on-line rebuild-to-spare rate (failover)")
		muCH        = flag.Float64("mu-ch", 1, "spare swap rate (failover)")
		lambdaCrash = flag.Float64("lambda-crash", 0.01, "pulled-disk crash rate (1/h)")
		noResync    = flag.Bool("no-resync", false, "skip the post-undo resync outage")
		iters       = flag.Int("iters", 20000, "Monte-Carlo iterations (paper: 1e6)")
		mission     = flag.Float64("mission", 1e6, "mission time per iteration (h)")
		seed        = flag.Uint64("seed", 42, "PRNG seed")
		workers     = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		confidence  = flag.Float64("confidence", 0.99, "confidence level for the interval")
	)
	flag.Parse()

	// The distribution constructors treat non-positive rates as
	// programmer errors and panic; turn bad flag values into flag
	// errors instead.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"-lambda", *lambda}, {"-mu-df", *muDF},
		{"-mu-ddf", *muDDF}, {"-mu-he", *muHE}, {"-mu-s", *muS}, {"-mu-ch", *muCH},
	} {
		if !(f.v > 0) || math.IsInf(f.v, 0) {
			exitOn(fmt.Errorf("%s must be a positive finite value, got %v", f.name, f.v))
		}
	}

	p := sim.ArrayParams{
		Disks:           *disks,
		Repair:          dist.NewExponential(*muDF),
		TapeRestore:     dist.NewExponential(*muDDF),
		HERecovery:      dist.NewExponential(*muHE),
		HEP:             *hep,
		CrashRate:       *lambdaCrash,
		ResyncAfterUndo: !*noResync,
		SpareRebuild:    dist.NewExponential(*muS),
		SpareSwap:       dist.NewExponential(*muCH),
	}
	switch *distKind {
	case "exp":
		p.TTF = dist.NewExponential(*lambda)
	case "weibull":
		if !(*shape > 0) || math.IsInf(*shape, 0) {
			exitOn(fmt.Errorf("-shape must be a positive finite value, got %v", *shape))
		}
		p.TTF = dist.WeibullFromMeanRate(*lambda, *shape)
	default:
		exitOn(fmt.Errorf("unknown -dist %q (want exp or weibull)", *distKind))
	}
	switch *policy {
	case "conventional":
		p.Policy = sim.Conventional
	case "failover":
		p.Policy = sim.AutoFailover
	default:
		exitOn(fmt.Errorf("unknown -policy %q (want conventional or failover)", *policy))
	}

	s, err := sim.Run(p, sim.Options{
		Iterations:  *iters,
		MissionTime: *mission,
		Seed:        *seed,
		Workers:     *workers,
		Confidence:  *confidence,
	})
	exitOn(err)

	t := report.NewTable(
		fmt.Sprintf("Monte-Carlo availability, %d-disk array, %s policy, TTF %s",
			*disks, p.Policy, p.TTF),
		"metric", "value")
	t.AddRow("availability", fmt.Sprintf("%.12f", s.Availability))
	t.AddRow("nines", report.F3(s.Nines))
	t.AddRow(fmt.Sprintf("CI half-width (%.0f%%)", *confidence*100), report.E(s.HalfWidth))
	t.AddRow("mean DU downtime / iteration", fmt.Sprintf("%.4g h", s.MeanDowntimeDU))
	t.AddRow("mean DL downtime / iteration", fmt.Sprintf("%.4g h", s.MeanDowntimeDL))
	t.AddRow("disk failures", fmt.Sprintf("%d", s.Events.Failures))
	t.AddRow("double disk failures", fmt.Sprintf("%d", s.Events.DoubleFailures))
	t.AddRow("human errors", fmt.Sprintf("%d", s.Events.HumanErrors))
	t.AddRow("pulled-disk crashes", fmt.Sprintf("%d", s.Events.Crashes))
	t.AddRow("undo attempts", fmt.Sprintf("%d", s.Events.UndoAttempts))
	t.AddNote("%d iterations x %.3g h mission, seed %d", s.Iterations, s.MissionTime, *seed)
	if _, err := t.WriteTo(os.Stdout); err != nil {
		exitOn(err)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "availsim:", err)
		os.Exit(1)
	}
}
