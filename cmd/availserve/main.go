// Command availserve exposes the availability simulator as a
// long-lived HTTP/JSON service on a shared shard worker pool.
//
// Endpoints:
//
//	POST /v1/run      execute (or replay) one simulation; ?stream=1 or
//	                  Accept: text/event-stream streams progress
//	POST /v1/sweep    execute a batch of points in one request
//	GET  /v1/cache    result-cache statistics
//	GET  /v1/healthz  liveness and drain state (alias /healthz)
//	GET  /readyz      readiness: pool population and drain state
//
// Results are cached under the canonical run fingerprint and
// concurrent identical requests share a single execution; -cache-file
// persists the cache across restarts. Workers are local processes
// (-local-procs), dialed remotes (-shard-connect: availsim
// -shard-serve peers), and/or elastic joiners accepted on
// -shard-listen (availsim -shard-join, which reconnects with backoff
// by default). -local-fallback keeps runs progressing in-process if
// every worker departs; -auth-token locks the /v1 API; -run-timeout
// bounds each run and a client disconnect cancels its in-flight shard
// jobs. SIGTERM or SIGINT drains gracefully: in-flight runs finish,
// new runs get 503, then the process exits 0.
//
//	availserve -listen :8080
//	availserve -listen :8080 -shard-listen :9009 -shard-token s3cret -local-fallback 4
//	availserve -listen :8080 -shard-connect box1:9009,box2:9009 -auth-token t0ps3cret
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"herald/internal/serve"
	"herald/internal/shard"
)

func main() {
	shard.MaybeWorker()

	var (
		listen     = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		localProcs = flag.Int("local-procs", 0, "local worker processes (0 = GOMAXPROCS; with remote or joining workers, 0 means none)")

		shardConnect = flag.String("shard-connect", "", "comma-separated host:port list of remote TCP workers (availsim -shard-serve) to attach")
		shardListen  = flag.String("shard-listen", "", "accept elastic workers (availsim -shard-join) on this address")
		shardToken   = flag.String("shard-token", "", "shared secret authenticating shard connections; both ends must agree")
		shardTLSCert = flag.String("shard-tls-cert", "", "PEM certificate for TLS on -shard-listen (with -shard-tls-key); on -shard-connect, the client certificate for mutual TLS")
		shardTLSKey  = flag.String("shard-tls-key", "", "PEM private key paired with -shard-tls-cert")
		shardTLSCA   = flag.String("shard-tls-ca", "", "PEM CA bundle: -shard-connect verifies servers against it; -shard-listen additionally requires client certificates chained to it")
		shardHB      = flag.Duration("shard-heartbeat", 0, "shard liveness heartbeat interval (0 = 3s)")

		cacheEntries = flag.Int("cache-entries", 256, "result-cache capacity (fingerprint-keyed LRU)")
		cacheFile    = flag.String("cache-file", "", "persist the result cache to this ndjson snapshot across restarts")
		cacheEvery   = flag.Int("cache-snapshot-every", 32, "snapshot the cache every N insertions (with -cache-file)")
		maxInFlight  = flag.Int("max-inflight", 4, "concurrently executing runs")
		maxQueue     = flag.Int("max-queue", 16, "requests waiting for a run slot before 429 (negative: refuse immediately)")
		maxPerClient = flag.Int("max-inflight-per-client", 0, "per-client bound on executing+queued runs (0 = no per-client bound)")
		retryAfter   = flag.Duration("retry-after", 5*time.Second, "Retry-After hint on 429 responses")
		maxSweep     = flag.Int("max-sweep-points", 64, "points allowed in one /v1/sweep request")
		runTimeout   = flag.Duration("run-timeout", 0, "per-run execution deadline; overdue runs abort via the shard cancel path (0 = none)")
		authToken    = flag.String("auth-token", "", "require 'Authorization: Bearer <token>' on /v1 endpoints (health stays open)")
		localFB      = flag.Int("local-fallback", 0, "arm an in-process worker with this parallelism when the pool drains (degraded mode; 0 = off)")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "bound on the graceful drain after SIGTERM")
	)
	flag.Parse()

	clientNC := shard.NetConfig{Token: *shardToken, HeartbeatInterval: *shardHB}
	serverNC := clientNC
	var err error
	if *shardTLSCert != "" || *shardTLSKey != "" {
		serverNC.TLS, err = shard.ServerTLS(*shardTLSCert, *shardTLSKey, *shardTLSCA)
		exitOn(err)
	}
	if *shardTLSCA != "" {
		clientNC.TLS, err = shard.ClientTLS(*shardTLSCA, "", *shardTLSCert, *shardTLSKey)
		exitOn(err)
	}

	var workers []shard.Worker
	if *shardConnect != "" {
		for _, addr := range strings.Split(*shardConnect, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			w, err := shard.DialNet(addr, clientNC)
			exitOn(err)
			workers = append(workers, w)
		}
	}
	if *localProcs > 0 || (len(workers) == 0 && *shardListen == "") {
		local, err := shard.SpawnLocal(*localProcs)
		exitOn(err)
		workers = append(workers, local...)
	}
	var source <-chan shard.Worker
	var shardLn net.Listener
	if *shardListen != "" {
		shardLn, source, err = shard.ListenWorkers(*shardListen, serverNC, os.Stderr)
		exitOn(err)
		fmt.Fprintf(os.Stderr, "availserve: accepting shard workers on %s\n", shardLn.Addr())
	}

	pool, err := shard.NewPoolOptions(workers, source, os.Stderr, shard.PoolOptions{LocalFallback: *localFB})
	exitOn(err)

	srv, err := serve.NewServer(serve.Config{
		Pool:                 pool,
		CacheEntries:         *cacheEntries,
		CacheFile:            *cacheFile,
		CacheSnapshotEvery:   *cacheEvery,
		MaxInFlight:          *maxInFlight,
		MaxQueued:            *maxQueue,
		MaxInFlightPerClient: *maxPerClient,
		RetryAfter:           *retryAfter,
		MaxSweepPoints:       *maxSweep,
		RunTimeout:           *runTimeout,
		AuthToken:            *authToken,
		Log:                  os.Stderr,
	})
	exitOn(err)

	ln, err := net.Listen("tcp", *listen)
	exitOn(err)
	hs := &http.Server{Handler: srv}
	fmt.Fprintf(os.Stderr, "availserve: listening on http://%s\n", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "availserve: %v received, draining\n", s)
	case err := <-serveErr:
		exitOn(err)
	}

	// Graceful drain: refuse new runs, let in-flight requests and
	// their runs finish (bounded), then release the pool.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "availserve: shutdown: %v\n", err)
	}
	srv.Drain()
	if shardLn != nil {
		shardLn.Close()
	}
	if err := pool.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "availserve: pool close: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "availserve: drained, exiting")
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "availserve:", err)
		os.Exit(1)
	}
}
