package raid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperConfigsERF(t *testing.T) {
	// The paper quotes ERF 2, 1.33 and 1.14 for these geometries.
	cases := []struct {
		c    Config
		erf  float64
		name string
	}{
		{R1Mirror, 2.0, "RAID1(1+1)"},
		{R5Small, 4.0 / 3, "RAID5(3+1)"},
		{R5Wide, 8.0 / 7, "RAID5(7+1)"},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", tc.name, err)
		}
		if math.Abs(tc.c.ERF()-tc.erf) > 1e-12 {
			t.Errorf("%s ERF = %v, want %v", tc.name, tc.c.ERF(), tc.erf)
		}
		if tc.c.String() != tc.name {
			t.Errorf("String() = %q, want %q", tc.c.String(), tc.name)
		}
	}
}

func TestDiskCounts(t *testing.T) {
	if R5Small.Disks() != 4 || R5Small.UsableDisks() != 3 {
		t.Error("RAID5(3+1) counts wrong")
	}
	if R5Wide.Disks() != 8 || R1Mirror.Disks() != 2 {
		t.Error("disk totals wrong")
	}
}

func TestFaultTolerance(t *testing.T) {
	cases := []struct {
		c    Config
		want int
	}{
		{Config{RAID0, 4, 0}, 0},
		{R1Mirror, 1},
		{Config{RAID1, 1, 2}, 2}, // three-way mirror
		{R5Small, 1},
		{Config{RAID6, 6, 2}, 2},
		{Config{RAID10, 4, 4}, 1},
	}
	for _, tc := range cases {
		if got := tc.c.FaultTolerance(); got != tc.want {
			t.Errorf("%v fault tolerance = %d, want %d", tc.c, got, tc.want)
		}
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	bad := []Config{
		{RAID0, 2, 1},    // parity on RAID0
		{RAID1, 2, 1},    // RAID1 with two data disks
		{RAID1, 1, 0},    // no mirror
		{RAID5, 3, 2},    // RAID5 with two parity
		{RAID5, 1, 1},    // too narrow
		{RAID6, 4, 1},    // RAID6 with one parity
		{RAID10, 3, 2},   // unbalanced mirror set
		{RAID5, 0, 1},    // no data
		{Level(9), 1, 0}, // unknown level
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v passed validation", c)
		}
	}
}

func TestNewConstructor(t *testing.T) {
	c, err := New(RAID5, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c != R5Wide {
		t.Errorf("New = %v", c)
	}
	if _, err := New(RAID5, 1, 1); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestPlanFleetExact(t *testing.T) {
	f, err := PlanFleet(R5Small, 21)
	if err != nil {
		t.Fatal(err)
	}
	if f.Count != 7 {
		t.Fatalf("count = %d, want 7", f.Count)
	}
	if f.TotalDisks() != 28 {
		t.Fatalf("total disks = %d, want 28", f.TotalDisks())
	}
	if math.Abs(f.EffectiveERF()-4.0/3) > 1e-12 {
		t.Fatalf("fleet ERF = %v", f.EffectiveERF())
	}
}

func TestPlanFleetRoundsUp(t *testing.T) {
	f, err := PlanFleet(R5Wide, 20) // 20/7 -> 3 arrays
	if err != nil {
		t.Fatal(err)
	}
	if f.Count != 3 {
		t.Fatalf("count = %d, want 3", f.Count)
	}
	if f.EffectiveERF() <= f.Array.ERF() {
		t.Error("rounded fleet should have ERF above array ERF")
	}
}

func TestPlanFleetErrors(t *testing.T) {
	if _, err := PlanFleet(Config{RAID5, 1, 1}, 10); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := PlanFleet(R5Small, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestEquivalentCapacityPaperTriple(t *testing.T) {
	// lcm(1, 3, 7) = 21 usable disks: 21 mirrors (42 disks),
	// 7x R5(3+1) (28 disks), 3x R5(7+1) (24 disks).
	cap21, err := EquivalentCapacity(R1Mirror, R5Small, R5Wide)
	if err != nil {
		t.Fatal(err)
	}
	if cap21 != 21 {
		t.Fatalf("equivalent capacity = %d, want 21", cap21)
	}
	counts := map[string]int{}
	disks := map[string]int{}
	for _, c := range []Config{R1Mirror, R5Small, R5Wide} {
		f, err := PlanFleet(c, cap21)
		if err != nil {
			t.Fatal(err)
		}
		counts[c.String()] = f.Count
		disks[c.String()] = f.TotalDisks()
	}
	if counts["RAID1(1+1)"] != 21 || counts["RAID5(3+1)"] != 7 || counts["RAID5(7+1)"] != 3 {
		t.Fatalf("fleet counts = %v", counts)
	}
	if disks["RAID1(1+1)"] != 42 || disks["RAID5(3+1)"] != 28 || disks["RAID5(7+1)"] != 24 {
		t.Fatalf("fleet disks = %v", disks)
	}
}

func TestEquivalentCapacityErrors(t *testing.T) {
	if _, err := EquivalentCapacity(); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := EquivalentCapacity(Config{RAID5, 1, 1}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestLevelStrings(t *testing.T) {
	names := map[Level]string{
		RAID0: "RAID0", RAID1: "RAID1", RAID5: "RAID5", RAID6: "RAID6", RAID10: "RAID10",
	}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("Level %d String = %q", int(l), l.String())
		}
	}
	if Level(42).String() == "" {
		t.Error("unknown level should render")
	}
}

func TestQuickERFAtLeastOne(t *testing.T) {
	f := func(dataRaw, parityRaw uint8) bool {
		data := 2 + int(dataRaw%16)
		c := Config{Level: RAID5, Data: data, Parity: 1}
		return c.ERF() > 1 && c.ERF() <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFleetMeetsCapacity(t *testing.T) {
	f := func(capRaw uint8) bool {
		usable := 1 + int(capRaw)
		for _, c := range []Config{R1Mirror, R5Small, R5Wide} {
			fl, err := PlanFleet(c, usable)
			if err != nil {
				return false
			}
			if fl.Count*c.Data < usable {
				return false
			}
			// Minimality: one fewer array must not suffice.
			if (fl.Count-1)*c.Data >= usable {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGCDLCM(t *testing.T) {
	if gcd(12, 18) != 6 {
		t.Error("gcd wrong")
	}
	if lcm(4, 6) != 12 {
		t.Error("lcm wrong")
	}
	if lcm(1, 7) != 7 {
		t.Error("lcm identity wrong")
	}
}
