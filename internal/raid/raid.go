// Package raid models RAID array geometry: data/parity layout, fault
// tolerance, Effective Replication Factor (ERF), and equivalent-usable-
// capacity fleet planning.
//
// The ERF — the ratio of physical to logical capacity (Muralidhar et
// al., OSDI'14, cited by the paper) — drives the paper's §V-C result:
// for a fixed usable capacity, RAID1's ERF of 2 requires more physical
// disks than RAID5's 1.33 (3+1) or 1.14 (7+1), giving human errors more
// opportunities to strike.
package raid

import (
	"fmt"
)

// Level identifies a RAID redundancy scheme.
type Level int

const (
	// RAID0 stripes with no redundancy.
	RAID0 Level = iota
	// RAID1 mirrors data across all members.
	RAID1
	// RAID5 stripes with single distributed parity.
	RAID5
	// RAID6 stripes with dual distributed parity.
	RAID6
	// RAID10 stripes across mirrored pairs.
	RAID10
)

// String returns the conventional name of the level.
func (l Level) String() string {
	switch l {
	case RAID0:
		return "RAID0"
	case RAID1:
		return "RAID1"
	case RAID5:
		return "RAID5"
	case RAID6:
		return "RAID6"
	case RAID10:
		return "RAID10"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Config is a concrete array geometry: a RAID level populated with
// Data data-bearing disks and Parity redundancy disks. The notation
// "RAID5 (3+1)" maps to Config{Level: RAID5, Data: 3, Parity: 1}.
type Config struct {
	Level  Level
	Data   int // disks worth of usable capacity
	Parity int // disks worth of redundancy
}

// Common paper configurations.
var (
	// R1Mirror is RAID1 (1+1): one data disk, one mirror.
	R1Mirror = Config{Level: RAID1, Data: 1, Parity: 1}
	// R5Small is RAID5 (3+1).
	R5Small = Config{Level: RAID5, Data: 3, Parity: 1}
	// R5Wide is RAID5 (7+1).
	R5Wide = Config{Level: RAID5, Data: 7, Parity: 1}
)

// New validates and returns a Config.
func New(level Level, data, parity int) (Config, error) {
	c := Config{Level: level, Data: data, Parity: parity}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Validate checks the geometry is well-formed for its level.
func (c Config) Validate() error {
	if c.Data < 1 {
		return fmt.Errorf("raid: %s needs at least one data disk, got %d", c.Level, c.Data)
	}
	switch c.Level {
	case RAID0:
		if c.Parity != 0 {
			return fmt.Errorf("raid: RAID0 cannot carry parity disks, got %d", c.Parity)
		}
	case RAID1:
		if c.Parity < 1 {
			return fmt.Errorf("raid: RAID1 needs at least one mirror disk, got %d", c.Parity)
		}
		if c.Data != 1 {
			return fmt.Errorf("raid: RAID1 mirrors a single data disk, got %d", c.Data)
		}
	case RAID5:
		if c.Parity != 1 {
			return fmt.Errorf("raid: RAID5 has exactly one parity disk, got %d", c.Parity)
		}
		if c.Data < 2 {
			return fmt.Errorf("raid: RAID5 needs at least two data disks, got %d", c.Data)
		}
	case RAID6:
		if c.Parity != 2 {
			return fmt.Errorf("raid: RAID6 has exactly two parity disks, got %d", c.Parity)
		}
		if c.Data < 2 {
			return fmt.Errorf("raid: RAID6 needs at least two data disks, got %d", c.Data)
		}
	case RAID10:
		if c.Data < 2 {
			return fmt.Errorf("raid: RAID10 needs at least two data disks, got %d", c.Data)
		}
		if c.Parity != c.Data {
			return fmt.Errorf("raid: RAID10 mirrors each data disk, want parity %d, got %d", c.Data, c.Parity)
		}
	default:
		return fmt.Errorf("raid: unknown level %v", c.Level)
	}
	return nil
}

// Disks returns the total physical disk count of one array.
func (c Config) Disks() int { return c.Data + c.Parity }

// UsableDisks returns the logical capacity in disk units.
func (c Config) UsableDisks() int { return c.Data }

// ERF returns the Effective Replication Factor: physical size divided
// by usable size.
func (c Config) ERF() float64 { return float64(c.Disks()) / float64(c.Data) }

// FaultTolerance returns how many simultaneous disk losses the array
// survives.
func (c Config) FaultTolerance() int {
	switch c.Level {
	case RAID0:
		return 0
	case RAID1:
		return c.Parity // n-way mirror survives n-1 losses
	case RAID5:
		return 1
	case RAID6:
		return 2
	case RAID10:
		return 1 // worst case: both members of one mirror pair
	default:
		return 0
	}
}

// String renders the "(data+parity)" notation used in the paper.
func (c Config) String() string {
	return fmt.Sprintf("%s(%d+%d)", c.Level, c.Data, c.Parity)
}

// Fleet is a set of identical arrays provisioned to reach a usable
// capacity target; availability-wise the arrays are in series (any
// array down makes some user data unavailable).
type Fleet struct {
	Array  Config
	Count  int
	Usable int // usable capacity in disk units
}

// PlanFleet returns the smallest fleet of identical arrays whose usable
// capacity reaches at least usableDisks.
func PlanFleet(c Config, usableDisks int) (Fleet, error) {
	if err := c.Validate(); err != nil {
		return Fleet{}, err
	}
	if usableDisks < 1 {
		return Fleet{}, fmt.Errorf("raid: usable capacity %d must be positive", usableDisks)
	}
	count := (usableDisks + c.Data - 1) / c.Data
	return Fleet{Array: c, Count: count, Usable: usableDisks}, nil
}

// TotalDisks returns the physical disk count of the fleet.
func (f Fleet) TotalDisks() int { return f.Count * f.Array.Disks() }

// EffectiveERF returns the fleet-level physical/usable ratio, which can
// exceed the array ERF when the capacity target is not a multiple of
// the array's usable size.
func (f Fleet) EffectiveERF() float64 {
	return float64(f.TotalDisks()) / float64(f.Usable)
}

// EquivalentCapacity returns the least usable capacity (in disk units)
// that every supplied geometry divides evenly — the fair comparison
// point the paper's Fig. 6 uses (fleets of R1(1+1), R5(3+1), R5(7+1)
// at equal usable capacity).
func EquivalentCapacity(configs ...Config) (int, error) {
	if len(configs) == 0 {
		return 0, fmt.Errorf("raid: no configurations supplied")
	}
	l := 1
	for _, c := range configs {
		if err := c.Validate(); err != nil {
			return 0, err
		}
		l = lcm(l, c.Data)
	}
	return l, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
