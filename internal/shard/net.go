package shard

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/tls"
	"crypto/x509"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"time"
)

// NetConfig tunes the TCP transport of the shard protocol: shared-token
// authentication, TLS, connection and handshake timeouts, and the
// heartbeat cadence that bounds half-open-connection detection. The
// zero value is a plaintext, unauthenticated link with the default
// timings — the pre-v3 behavior, minus the unbounded blocking.
type NetConfig struct {
	// Token, when non-empty, requires the peer to prove knowledge of
	// the same token during the hello handshake (HMAC-SHA256 over both
	// sides' nonces; the token itself never crosses the wire). A peer
	// without the token — or with a different one — is rejected before
	// any job flows. Over plaintext TCP the handshake stops unauthorized
	// attaches and replays but not an active man-in-the-middle; combine
	// with TLS for that.
	Token string
	// TLS, when non-nil, wraps the connection: as tls.Client config on
	// dialing sides (Dial, Join) and tls.Server config on listening
	// sides (ListenAndServe, ListenWorkers). See ServerTLS/ClientTLS
	// for building one from PEM files.
	TLS *tls.Config
	// HeartbeatInterval is how often this side sends protocol pings on
	// an established connection; the peer arms its read deadline at
	// heartbeatDeadlineFactor times the advertised interval, so a
	// half-open connection is detected within that bound. Default 3s.
	HeartbeatInterval time.Duration
	// DialTimeout bounds the TCP connect of Dial and Join (the OS
	// default can be minutes for an unroutable address). Default 10s.
	DialTimeout time.Duration
	// HandshakeTimeout bounds the hello exchange (and TLS handshake)
	// after the connection is up. Default 10s.
	HandshakeTimeout time.Duration
	// RetryBase and RetryMax bound JoinLoop's reconnect backoff: the
	// delay starts at RetryBase, doubles per consecutive failure, and
	// is capped at RetryMax (defaults 500ms and 30s). A session that
	// got past the handshake resets the ladder.
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetrySeed seeds the deterministic jitter stream of JoinLoop's
	// backoff (each delay is scaled into [1/2, 1) of its nominal value
	// off an xrand stream), so reconnect storms desynchronize while
	// tests replay the exact delay sequence. Zero derives a seed from
	// the process identity — distinct workers then spread out — which
	// is the right default everywhere outside a test.
	RetrySeed uint64
}

const (
	defaultHeartbeatInterval = 3 * time.Second
	defaultDialTimeout       = 10 * time.Second
	defaultHandshakeTimeout  = 10 * time.Second
	// heartbeatDeadlineFactor sizes the read deadline from the peer's
	// advertised heartbeat interval: several missed beats, not one, so
	// scheduling jitter never kills a healthy link.
	heartbeatDeadlineFactor = 4
	// netWriteTimeout bounds every message write: a peer that stopped
	// draining its socket (full TCP buffer on a half-open link) fails
	// the Send instead of wedging it.
	netWriteTimeout = 15 * time.Second
)

func (nc NetConfig) withDefaults() NetConfig {
	if nc.HeartbeatInterval <= 0 {
		nc.HeartbeatInterval = defaultHeartbeatInterval
	}
	if nc.DialTimeout <= 0 {
		nc.DialTimeout = defaultDialTimeout
	}
	if nc.HandshakeTimeout <= 0 {
		nc.HandshakeTimeout = defaultHandshakeTimeout
	}
	return nc
}

// ---------------------------------------------------------------------
// Deadline-aware transport with heartbeats
// ---------------------------------------------------------------------

// netTransport frames the ndjson protocol over a net.Conn with
// per-operation deadlines and a background heartbeat pinger. Reads are
// bounded by the peer's advertised heartbeat interval (a silent peer is
// a dead peer), writes by netWriteTimeout.
type netTransport struct {
	mu  sync.Mutex // serializes Send
	enc *json.Encoder
	dec *json.Decoder
	c   net.Conn

	readTimeout time.Duration // guarded by rmu; set once after handshake

	pingStop chan struct{}
	pingOnce sync.Once
	once     sync.Once
}

func newNetTransport(c net.Conn) *netTransport {
	return &netTransport{
		enc:      json.NewEncoder(c),
		dec:      json.NewDecoder(c),
		c:        c,
		pingStop: make(chan struct{}),
	}
}

func (t *netTransport) Send(m *Message) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = t.c.SetWriteDeadline(time.Now().Add(netWriteTimeout))
	return t.enc.Encode(m)
}

func (t *netTransport) Recv() (*Message, error) {
	if t.readTimeout > 0 {
		_ = t.c.SetReadDeadline(time.Now().Add(t.readTimeout))
	}
	var m Message
	if err := t.dec.Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

func (t *netTransport) Close() error {
	var err error
	t.once.Do(func() {
		t.pingOnce.Do(func() { close(t.pingStop) })
		err = t.c.Close()
	})
	return err
}

// startHeartbeat begins the outgoing ping cadence and arms the read
// deadline from the peer's advertised interval. Call exactly once,
// after the handshake and before concurrent use.
func (t *netTransport) startHeartbeat(own time.Duration, peerMS int) {
	if peerMS > 0 {
		t.readTimeout = heartbeatDeadlineFactor * time.Duration(peerMS) * time.Millisecond
	}
	if own <= 0 {
		return
	}
	go func() {
		tick := time.NewTicker(own)
		defer tick.Stop()
		for {
			select {
			case <-t.pingStop:
				return
			case <-tick.C:
				if t.Send(&Message{Type: MsgPing}) != nil {
					return // connection is gone; Recv surfaces it
				}
			}
		}
	}()
}

// ---------------------------------------------------------------------
// Authenticated handshake
// ---------------------------------------------------------------------

// The handshake is three hello messages. The listener volunteers only
// its protocol version and a random nonce; the dialer answers with its
// own nonce plus an HMAC over both (proving the token without an
// observable replayable credential); the listener verifies and answers
// with the mirrored HMAC, its heartbeat interval and — when it is a
// worker — its capacity. Either side configured with a token rejects a
// peer that cannot produce a valid MAC; a side without a token accepts
// anyone (open mode).

// handshake MAC domain-separation labels: each direction signs a
// distinct statement so one side's proof can never be replayed as the
// other's.
const (
	macLabelDialer   = "herald-shard-v3-dialer"
	macLabelListener = "herald-shard-v3-listener"
)

func newNonce() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("shard: handshake nonce: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// helloMAC computes the handshake proof for one direction.
func helloMAC(token, label, dialerNonce, listenerNonce string) string {
	mac := hmac.New(sha256.New, []byte(token))
	io.WriteString(mac, label)
	io.WriteString(mac, "\x00")
	io.WriteString(mac, dialerNonce)
	io.WriteString(mac, "\x00")
	io.WriteString(mac, listenerNonce)
	return hex.EncodeToString(mac.Sum(nil))
}

func macValid(token, label, dialerNonce, listenerNonce, got string) bool {
	want := helloMAC(token, label, dialerNonce, listenerNonce)
	return hmac.Equal([]byte(want), []byte(got))
}

// errAuth is the uniform rejection: it deliberately does not say
// whether the token was missing or wrong.
var errAuth = fmt.Errorf("shard: authentication failed (token mismatch)")

// handshakeDialer runs the dialing side of the hello exchange and
// returns the listener's final hello (capacity, heartbeat interval).
// capacity is this side's advertisement (join mode); pass 0 when
// dialing as a coordinator.
func handshakeDialer(t Transport, nc NetConfig, capacity int) (*Message, error) {
	srv, err := t.Recv()
	if err != nil {
		return nil, fmt.Errorf("shard: handshake: %w", err)
	}
	if srv.Type == MsgError {
		return nil, fmt.Errorf("shard: handshake rejected: %s", srv.Error)
	}
	if srv.Type != MsgHello {
		return nil, fmt.Errorf("shard: handshake: unexpected message type %q", srv.Type)
	}
	if srv.Version != ProtocolVersion {
		return nil, fmt.Errorf("shard: protocol version %d, want %d", srv.Version, ProtocolVersion)
	}
	nonce, err := newNonce()
	if err != nil {
		return nil, err
	}
	hello := &Message{
		Type:        MsgHello,
		Version:     ProtocolVersion,
		Nonce:       nonce,
		Capacity:    capacity,
		HeartbeatMS: int(nc.HeartbeatInterval / time.Millisecond),
	}
	if nc.Token != "" {
		hello.MAC = helloMAC(nc.Token, macLabelDialer, nonce, srv.Nonce)
	}
	if err := t.Send(hello); err != nil {
		return nil, fmt.Errorf("shard: handshake: %w", err)
	}
	ack, err := t.Recv()
	if err != nil {
		return nil, fmt.Errorf("shard: handshake: %w", err)
	}
	if ack.Type == MsgError {
		return nil, fmt.Errorf("shard: handshake rejected: %s", ack.Error)
	}
	if ack.Type != MsgHello {
		return nil, fmt.Errorf("shard: handshake: unexpected message type %q", ack.Type)
	}
	if nc.Token != "" && !macValid(nc.Token, macLabelListener, nonce, srv.Nonce, ack.MAC) {
		return nil, errAuth
	}
	return ack, nil
}

// handshakeListener runs the accepting side of the hello exchange and
// returns the dialer's hello (capacity, heartbeat interval). capacity
// is this side's advertisement (serve mode); pass 0 when listening as
// a coordinator. An authentication failure is answered with a protocol
// error message before the connection is abandoned, so the dialer sees
// a clean rejection instead of a reset.
func handshakeListener(t Transport, nc NetConfig, capacity int) (*Message, error) {
	nonce, err := newNonce()
	if err != nil {
		return nil, err
	}
	if err := t.Send(&Message{Type: MsgHello, Version: ProtocolVersion, Nonce: nonce}); err != nil {
		return nil, fmt.Errorf("shard: handshake: %w", err)
	}
	cli, err := t.Recv()
	if err != nil {
		return nil, fmt.Errorf("shard: handshake: %w", err)
	}
	if cli.Type != MsgHello {
		return nil, fmt.Errorf("shard: handshake: unexpected message type %q", cli.Type)
	}
	if cli.Version != ProtocolVersion {
		_ = t.Send(&Message{Type: MsgError, Error: fmt.Sprintf("protocol version %d, want %d", cli.Version, ProtocolVersion)})
		return nil, fmt.Errorf("shard: protocol version %d, want %d", cli.Version, ProtocolVersion)
	}
	if nc.Token != "" && !macValid(nc.Token, macLabelDialer, cli.Nonce, nonce, cli.MAC) {
		_ = t.Send(&Message{Type: MsgError, Error: "authentication failed"})
		return nil, errAuth
	}
	ack := &Message{
		Type:        MsgHello,
		Version:     ProtocolVersion,
		Capacity:    capacity,
		HeartbeatMS: int(nc.HeartbeatInterval / time.Millisecond),
	}
	if nc.Token != "" {
		ack.MAC = helloMAC(nc.Token, macLabelListener, cli.Nonce, nonce)
	}
	if err := t.Send(ack); err != nil {
		return nil, fmt.Errorf("shard: handshake: %w", err)
	}
	return cli, nil
}

// setupConn wraps a fresh connection for the protocol: optional TLS,
// a handshake deadline covering the whole exchange, then the hello
// handshake in the given role. It returns the transport (heartbeats
// already started) and the peer's hello.
func setupConn(conn net.Conn, nc NetConfig, dialer bool, capacity int) (*netTransport, *Message, error) {
	if nc.TLS != nil {
		if dialer {
			conn = tls.Client(conn, nc.TLS)
		} else {
			conn = tls.Server(conn, nc.TLS)
		}
	}
	_ = conn.SetDeadline(time.Now().Add(nc.HandshakeTimeout))
	t := newNetTransport(conn)
	var peer *Message
	var err error
	if dialer {
		peer, err = handshakeDialer(t, nc, capacity)
	} else {
		peer, err = handshakeListener(t, nc, capacity)
	}
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	t.startHeartbeat(nc.HeartbeatInterval, peer.HeartbeatMS)
	return t, peer, nil
}

// ---------------------------------------------------------------------
// Coordinator-dials-worker mode
// ---------------------------------------------------------------------

// Dial attaches a remote TCP worker (a process running ListenAndServe,
// e.g. `availsim -shard-serve`) with default network settings: bounded
// connect and handshake timeouts, heartbeats, no TLS, no token. Jobs
// sent to it use all of the remote machine's cores.
func Dial(addr string) (Worker, error) {
	return DialNet(addr, NetConfig{})
}

// DialNet is Dial with explicit transport configuration (TLS, token
// auth, timeouts). The connect is bounded by nc.DialTimeout and the
// handshake by nc.HandshakeTimeout, so an unroutable or wedged address
// fails quickly with the address named in the error.
func DialNet(addr string, nc NetConfig) (Worker, error) {
	nc = nc.withDefaults()
	nc.TLS = clientTLSFor(nc.TLS, addr)
	conn, err := net.DialTimeout("tcp", addr, nc.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("shard: dial %s: %w", addr, err)
	}
	t, peer, err := setupConn(conn, nc, true, 0)
	if err != nil {
		return nil, fmt.Errorf("shard: dial %s: %w", addr, err)
	}
	return newRemoteWorker("tcp:"+addr, t, peer.Capacity), nil
}

// ListenAndServe runs a plaintext, unauthenticated TCP worker: it
// accepts connections on addr and serves the shard protocol on each,
// using every local core per job unless the job says otherwise. The
// ready callback, when non-nil, receives the bound address before
// accepting begins (useful with ":0").
func ListenAndServe(addr string, ready func(net.Addr)) error {
	return ListenAndServeNet(addr, NetConfig{}, ready)
}

// ListenAndServeNet is ListenAndServe with explicit transport
// configuration: TLS termination, token authentication, and heartbeat
// cadence. Handshake failures (bad token, version skew) drop the
// connection without serving a single job.
func ListenAndServeNet(addr string, nc NetConfig, ready func(net.Addr)) error {
	return ListenAndServeNetStop(addr, nc, ready, nil)
}

// ListenAndServeNetStop is ListenAndServeNet with graceful shutdown:
// when stop closes, the listener stops accepting, every connection
// finishes the job it is executing, hands queued jobs back to its
// coordinator as cancelled (they are reassigned to surviving workers),
// and the function returns nil once all connections have drained. nil
// stop serves forever.
func ListenAndServeNetStop(addr string, nc NetConfig, ready func(net.Addr), stop <-chan struct{}) error {
	nc = nc.withDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	if ready != nil {
		ready(ln.Addr())
	}
	if stop != nil {
		go func() {
			<-stop
			ln.Close() // unblocks Accept
		}()
	}
	var conns sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			if stop != nil {
				select {
				case <-stop:
					conns.Wait() // every connection drains before exit
					return nil
				default:
				}
			}
			conns.Wait()
			return err
		}
		conns.Add(1)
		go func(c net.Conn) {
			defer conns.Done()
			t, _, err := setupConn(c, nc, false, workerCapacity(0))
			if err != nil {
				fmt.Fprintf(os.Stderr, "shard: %s: %v\n", c.RemoteAddr(), err)
				return
			}
			defer t.Close()
			_ = serveJobsStop(t, stop)
		}(conn)
	}
}

// ---------------------------------------------------------------------
// Worker-joins-coordinator mode (auto-discovery)
// ---------------------------------------------------------------------

// Join dials a coordinator (a process running ListenWorkers, e.g.
// `availsim -shard-listen`), registers with the advertised capacity
// (0 = all local cores), and serves shard jobs on the connection until
// the coordinator closes it. It returns nil on a clean close — the
// coordinator finished — and the transport or handshake error
// otherwise.
func Join(addr string, capacity int, nc NetConfig) error {
	return JoinStop(addr, capacity, nc, nil)
}

// JoinStop is Join with graceful shutdown: when stop closes, the worker
// finishes its running job, hands queued jobs back to the coordinator
// as cancelled (they are reassigned), closes the connection and returns
// nil. nil stop serves until the coordinator closes the connection.
func JoinStop(addr string, capacity int, nc NetConfig, stop <-chan struct{}) error {
	_, err := joinOnce(addr, capacity, nc, stop)
	return err
}

// joinOnce runs one join session end to end and additionally reports
// whether the handshake completed — the healthiness signal JoinLoop
// uses to reset its reconnect backoff. A nil error with joined=true is
// a clean coordinator close (EOF between frames); an error after
// joined=true is a session that broke mid-stream (mid-frame cut,
// stalled peer, read deadline); an error with joined=false never got
// past dialing or the hello exchange.
func joinOnce(addr string, capacity int, nc NetConfig, stop <-chan struct{}) (joined bool, err error) {
	nc = nc.withDefaults()
	nc.TLS = clientTLSFor(nc.TLS, addr)
	conn, err := net.DialTimeout("tcp", addr, nc.DialTimeout)
	if err != nil {
		return false, fmt.Errorf("shard: join %s: %w", addr, err)
	}
	t, _, err := setupConn(conn, nc, true, workerCapacity(capacity))
	if err != nil {
		return false, fmt.Errorf("shard: join %s: %w", addr, err)
	}
	defer t.Close()
	return true, serveJobsStop(t, stop)
}

// workerCapacity resolves a worker's advertised capacity: an explicit
// positive value, else the local core count.
func workerCapacity(capacity int) int {
	if capacity > 0 {
		return capacity
	}
	return runtime.GOMAXPROCS(0)
}

// ListenWorkers opens a coordinator-side registration listener:
// workers that Join addr (and pass authentication) are wrapped as
// remote Workers and delivered on the returned channel, ready to be
// handed to Config.WorkerSource / RunPipelineSource. Closing the
// listener stops the accept loop and closes the channel. logw (nil =
// discard) receives one line per accepted or rejected registration.
func ListenWorkers(addr string, nc NetConfig, logw io.Writer) (net.Listener, <-chan Worker, error) {
	nc = nc.withDefaults()
	if logw == nil {
		logw = io.Discard
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	ch := make(chan Worker, 16)
	go func() {
		defer close(ch)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			t, peer, err := setupConn(conn, nc, false, 0)
			if err != nil {
				fmt.Fprintf(logw, "shard: rejected worker %s: %v\n", conn.RemoteAddr(), err)
				continue
			}
			name := fmt.Sprintf("join:%s", conn.RemoteAddr())
			fmt.Fprintf(logw, "shard: worker %s joined (capacity %d)\n", name, peer.Capacity)
			ch <- newRemoteWorker(name, t, peer.Capacity)
		}
	}()
	return ln, ch, nil
}

// ---------------------------------------------------------------------
// TLS helpers
// ---------------------------------------------------------------------

// ServerTLS builds the listening-side TLS configuration from PEM
// files: the server certificate and key, plus an optional CA bundle —
// when given, client certificates are required and verified against it
// (mutual TLS).
func ServerTLS(certFile, keyFile, caFile string) (*tls.Config, error) {
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("shard: tls cert: %w", err)
	}
	cfg := &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12}
	if caFile != "" {
		pool, err := loadCertPool(caFile)
		if err != nil {
			return nil, err
		}
		cfg.ClientCAs = pool
		cfg.ClientAuth = tls.RequireAndVerifyClientCert
	}
	return cfg, nil
}

// ClientTLS builds the dialing-side TLS configuration: the CA bundle
// the peer's certificate must chain to (empty = system roots),
// serverName to verify against (empty = the dialed host), and an
// optional client certificate pair for mutual TLS.
func ClientTLS(caFile, serverName, certFile, keyFile string) (*tls.Config, error) {
	cfg := &tls.Config{ServerName: serverName, MinVersion: tls.VersionTLS12}
	if caFile != "" {
		pool, err := loadCertPool(caFile)
		if err != nil {
			return nil, err
		}
		cfg.RootCAs = pool
	}
	if certFile != "" || keyFile != "" {
		cert, err := tls.LoadX509KeyPair(certFile, keyFile)
		if err != nil {
			return nil, fmt.Errorf("shard: tls client cert: %w", err)
		}
		cfg.Certificates = []tls.Certificate{cert}
	}
	return cfg, nil
}

// clientTLSFor fills in the ServerName a dialing TLS config needs for
// certificate verification, from the host being dialed, unless the
// caller already set one.
func clientTLSFor(cfg *tls.Config, addr string) *tls.Config {
	if cfg == nil || cfg.ServerName != "" {
		return cfg
	}
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		host = addr
	}
	c := cfg.Clone()
	c.ServerName = host
	return c
}

func loadCertPool(caFile string) (*x509.CertPool, error) {
	pem, err := os.ReadFile(caFile)
	if err != nil {
		return nil, fmt.Errorf("shard: tls ca: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("shard: tls ca %s: no certificates found", caFile)
	}
	return pool, nil
}
