package shard

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"herald/internal/sim"
)

// adaptiveOptions returns CI-scale adaptive options whose stopping
// rule binds well inside the cap for testParams configurations.
func adaptiveOptions() sim.Options {
	return sim.Options{
		Iterations:      60000,
		MissionTime:     2e5,
		Seed:            20170327,
		Workers:         2,
		TargetHalfWidth: 1.5e-5,
	}
}

// TestAdaptiveShardedMatchesInProcess pins the adaptive determinism
// contract across the execution stack: a sharded adaptive run stops at
// the identical cell boundary as the in-process sim.Run, for every
// policy and several shard counts, with a byte-identical Summary.
func TestAdaptiveShardedMatchesInProcess(t *testing.T) {
	for _, pol := range []sim.Policy{sim.Conventional, sim.AutoFailover, sim.DualParity} {
		p := testParams(pol)
		o := adaptiveOptions()
		base, err := sim.Run(p, o)
		if err != nil {
			t.Fatalf("%v: baseline: %v", pol, err)
		}
		if base.Iterations >= o.Iterations {
			t.Fatalf("%v: adaptive baseline hit the cap (%d); loosen the target", pol, base.Iterations)
		}
		want := summaryBytes(t, base)
		for _, shards := range []int{1, 2, 7} {
			workers := []Worker{NewInProcessWorker("a", 1), NewInProcessWorker("b", 1)}
			got, st, err := RunStats(Config{Params: p, Options: o, Shards: shards, Workers: workers})
			if err != nil {
				t.Fatalf("%v shards=%d: %v", pol, shards, err)
			}
			if g := summaryBytes(t, got); string(g) != string(want) {
				t.Errorf("%v shards=%d: adaptive sharded summary diverged\n got %s\nwant %s", pol, shards, g, want)
			}
			if !st.StoppedEarly {
				t.Errorf("%v shards=%d: run did not stop early", pol, shards)
			}
			if st.Waves < 1 {
				t.Errorf("%v shards=%d: no waves opened", pol, shards)
			}
		}
	}
}

// TestAdaptiveWaveKilledWorker SIGKILLs a real worker process mid-wave
// during an adaptive run: the coordinator must reassign its shard,
// still converge to the target, and report the byte-identical Summary
// of an undisturbed adaptive run (exactly-once merging).
func TestAdaptiveWaveKilledWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	p := testParams(sim.Conventional)
	o := adaptiveOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	workers, err := SpawnLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	// Kill one worker before the run: its first assignment fails like a
	// mid-wave death and the survivor absorbs the wave.
	if err := workers[0].(*processWorker).Kill(); err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	got, st, err := RunStats(Config{Params: p, Options: o, Shards: 4, Workers: workers, Log: &log})
	if err != nil {
		t.Fatalf("%v (log: %s)", err, log.String())
	}
	if st.WorkerFailures != 1 {
		t.Errorf("worker failures = %d, want 1 (log: %s)", st.WorkerFailures, log.String())
	}
	if !got.Converged || got.HalfWidth > o.TargetHalfWidth {
		t.Errorf("run did not converge: half-width %g, target %g", got.HalfWidth, o.TargetHalfWidth)
	}
	if string(summaryBytes(t, got)) != string(summaryBytes(t, base)) {
		t.Error("adaptive summary diverged after worker kill")
	}
}

// TestAdaptiveCheckpointResume interrupts an adaptive run after some
// wave shards complete, then resumes from the checkpoint: only the
// remainder recomputes and the result is byte-identical.
func TestAdaptiveCheckpointResume(t *testing.T) {
	p := testParams(sim.Conventional)
	o := adaptiveOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	cpPath := filepath.Join(t.TempDir(), "adaptive.ckpt")

	// First attempt: the only worker dies after 2 shards, failing the
	// run — but those shards are checkpointed.
	_, st, err := RunStats(Config{
		Params: p, Options: o, Shards: 2, Checkpoint: cpPath,
		Workers: []Worker{&flakyWorker{inner: NewInProcessWorker("w", 1), failAfter: 2}},
	})
	if err == nil {
		t.Fatal("expected first attempt to fail")
	}
	if st.Computed != 2 {
		t.Fatalf("first attempt computed %d shards, want 2", st.Computed)
	}

	got, st, err := RunStats(Config{
		Params: p, Options: o, Shards: 2, Checkpoint: cpPath,
		Workers: []Worker{NewInProcessWorker("w", 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.FromCheckpoint != 2 {
		t.Errorf("resume restored %d shards, want 2", st.FromCheckpoint)
	}
	if string(summaryBytes(t, got)) != string(summaryBytes(t, base)) {
		t.Error("resumed adaptive summary diverged from the in-process baseline")
	}
}

// TestAdaptiveCheckpointTornTail extends the torn-tail recovery test
// to open-ended (adaptive) runs: a crash mid-append tears the last
// checkpoint record; resume drops it, recomputes that shard, and still
// converges byte-identically.
func TestAdaptiveCheckpointTornTail(t *testing.T) {
	p := testParams(sim.Conventional)
	o := adaptiveOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	cpPath := filepath.Join(t.TempDir(), "adaptive.ckpt")

	// Interrupted first attempt leaves a partial checkpoint.
	if _, _, err := RunStats(Config{
		Params: p, Options: o, Shards: 2, Checkpoint: cpPath,
		Workers: []Worker{&flakyWorker{inner: NewInProcessWorker("w", 1), failAfter: 3}},
	}); err == nil {
		t.Fatal("expected interrupted attempt to fail")
	}

	// Tear the final record mid-line, as a crash during append would.
	raw, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	if len(lines) < 3 { // header + >= 2 records
		t.Fatalf("checkpoint has %d lines, want >= 3", len(lines))
	}
	last := lines[len(lines)-1]
	torn := append(bytes.Join(lines[:len(lines)-1], []byte("\n")), '\n')
	torn = append(torn, last[:len(last)/2]...)
	if err := os.WriteFile(cpPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	got, st, err := RunStats(Config{
		Params: p, Options: o, Shards: 2, Checkpoint: cpPath,
		Workers: []Worker{NewInProcessWorker("w", 1)},
		Log:     &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "torn") {
		t.Errorf("log does not mention the torn record:\n%s", log.String())
	}
	if st.FromCheckpoint != 2 {
		t.Errorf("resume restored %d shards, want 2 (one of 3 torn)", st.FromCheckpoint)
	}
	if !got.Converged {
		t.Error("resumed run did not converge")
	}
	if string(summaryBytes(t, got)) != string(summaryBytes(t, base)) {
		t.Error("summary diverged after torn adaptive checkpoint")
	}
}

// TestPipelineMatchesSequential pins the sweep pipelining contract:
// runs executed through one shared pool are byte-identical to the same
// runs executed one after another, and results come back in spec
// order with nondecreasing completion offsets... completion offsets
// are per-run; only their positivity is guaranteed.
func TestPipelineMatchesSequential(t *testing.T) {
	heps := []float64{0, 0.005, 0.02}
	specs := make([]RunSpec, 0, len(heps))
	var want [][]byte
	for _, hep := range heps {
		p := sim.PaperDefaults(4, 1e-4, hep)
		o := testOptions()
		base, err := sim.Run(p, o)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, summaryBytes(t, base))
		specs = append(specs, RunSpec{Params: p, Options: o, Shards: 3})
	}
	workers := []Worker{NewInProcessWorker("a", 1), NewInProcessWorker("b", 1)}
	res, err := RunPipeline(specs, workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(specs) {
		t.Fatalf("pipeline returned %d results, want %d", len(res), len(specs))
	}
	for i, r := range res {
		if g := summaryBytes(t, r.Summary); string(g) != string(want[i]) {
			t.Errorf("point %d: pipelined summary diverged\n got %s\nwant %s", i, g, want[i])
		}
		if r.Wall <= 0 {
			t.Errorf("point %d: non-positive completion offset %v", i, r.Wall)
		}
		if r.Stats.Computed != r.Stats.Shards {
			t.Errorf("point %d: computed %d of %d shards", i, r.Stats.Computed, r.Stats.Shards)
		}
	}
}

// TestPipelineMixedAdaptiveFixed pipelines an adaptive run behind a
// fixed one and checks both match their solo executions.
func TestPipelineMixedAdaptiveFixed(t *testing.T) {
	pFixed := testParams(sim.DualParity)
	oFixed := testOptions()
	baseFixed, err := sim.Run(pFixed, oFixed)
	if err != nil {
		t.Fatal(err)
	}
	pAdapt := testParams(sim.Conventional)
	oAdapt := adaptiveOptions()
	baseAdapt, err := sim.Run(pAdapt, oAdapt)
	if err != nil {
		t.Fatal(err)
	}
	workers := []Worker{NewInProcessWorker("a", 1), NewInProcessWorker("b", 1)}
	res, err := RunPipeline([]RunSpec{
		{Params: pFixed, Options: oFixed, Shards: 2},
		{Params: pAdapt, Options: oAdapt, Shards: 2},
	}, workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g := summaryBytes(t, res[0].Summary); string(g) != string(summaryBytes(t, baseFixed)) {
		t.Error("fixed run diverged in the mixed pipeline")
	}
	if g := summaryBytes(t, res[1].Summary); string(g) != string(summaryBytes(t, baseAdapt)) {
		t.Error("adaptive run diverged in the mixed pipeline")
	}
	if !res[1].Stats.StoppedEarly {
		t.Error("adaptive run in pipeline did not stop early")
	}
}

// TestWorkerCancelProtocol pins the v2 cancel exchange at the protocol
// level: a job answered by a cancel comes back as a cancelled message
// and the worker stays usable for the next job.
func TestWorkerCancelProtocol(t *testing.T) {
	server, client := pipeTransports()
	go func() { _ = Serve(server) }()

	p := testParams(sim.Conventional)
	wire, err := EncodeParams(p)
	if err != nil {
		t.Fatal(err)
	}
	// A large cancellable job the cancel will interrupt.
	o := sim.Options{Iterations: 5_000_000, MissionTime: 2e5, Seed: 1, Workers: 1}
	if err := client.Send(&Message{Type: MsgJob, Job: &Job{ID: 7, Start: 0, End: o.Iterations, Params: wire, Options: o, Cancellable: true}}); err != nil {
		t.Fatal(err)
	}
	if err := client.Send(&Message{Type: MsgCancel, ID: 7}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(30 * time.Second)
	for {
		type recvd struct {
			m   *Message
			err error
		}
		ch := make(chan recvd, 1)
		go func() {
			m, err := client.Recv()
			ch <- recvd{m, err}
		}()
		var m *Message
		select {
		case r := <-ch:
			if r.err != nil {
				t.Fatal(r.err)
			}
			m = r.m
		case <-deadline:
			t.Fatal("no cancelled acknowledgement before deadline")
		}
		if m.Type == MsgHello {
			continue
		}
		if m.Type != MsgCancelled || m.ID != 7 {
			t.Fatalf("got message %q id %d, want cancelled id 7", m.Type, m.ID)
		}
		break
	}

	// The worker is still usable: a small follow-up job completes.
	o2 := sim.Options{Iterations: 500, MissionTime: 2e5, Seed: 1, Workers: 1}
	if err := client.Send(&Message{Type: MsgJob, Job: &Job{ID: 8, Start: 0, End: 500, Params: wire, Options: o2}}); err != nil {
		t.Fatal(err)
	}
	for {
		m, err := client.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Type == MsgHello {
			continue
		}
		if m.Type != MsgResult || m.ID != 8 {
			t.Fatalf("got message %q id %d, want result id 8", m.Type, m.ID)
		}
		if !tilesRange(m.Partials, 0, 500, 1, 2e5) {
			t.Error("follow-up job returned invalid partials")
		}
		break
	}

	// A cancel that overtakes its job (the coordinator's cancel send
	// can win the transport mutex) is tombstoned: the job is answered
	// cancelled without executing.
	if err := client.Send(&Message{Type: MsgCancel, ID: 9}); err != nil {
		t.Fatal(err)
	}
	if err := client.Send(&Message{Type: MsgJob, Job: &Job{ID: 9, Start: 0, End: o.Iterations, Params: wire, Options: o, Cancellable: true}}); err != nil {
		t.Fatal(err)
	}
	for {
		m, err := client.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Type == MsgHello {
			continue
		}
		if m.Type != MsgCancelled || m.ID != 9 {
			t.Fatalf("got message %q id %d, want cancelled id 9", m.Type, m.ID)
		}
		break
	}
}

// TestInProcessWorkerCancel pins ErrJobCancelled on the in-process
// backend.
func TestInProcessWorkerCancel(t *testing.T) {
	p := testParams(sim.Conventional)
	wire, err := EncodeParams(p)
	if err != nil {
		t.Fatal(err)
	}
	w := NewInProcessWorker("w", 1)
	o := sim.Options{Iterations: 5_000_000, MissionTime: 2e5, Seed: 2, Workers: 1}
	job := &Job{ID: 3, Start: 0, End: o.Iterations, Params: wire, Options: o}
	errc := make(chan error, 1)
	go func() {
		_, err := w.Run(job)
		errc <- err
	}()
	// Let the job start, then cancel it.
	time.Sleep(20 * time.Millisecond)
	w.(JobCanceler).CancelJob(3)
	select {
	case err := <-errc:
		if err != ErrJobCancelled {
			t.Fatalf("Run returned %v, want ErrJobCancelled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled Run did not return")
	}

	// A cancel that races ahead of Run is tombstoned: the job must not
	// execute at all.
	w.(JobCanceler).CancelJob(4)
	if _, err := w.Run(&Job{ID: 4, Start: 0, End: o.Iterations, Params: wire, Options: o}); err != ErrJobCancelled {
		t.Fatalf("pre-cancelled Run returned %v, want ErrJobCancelled", err)
	}
}

// TestAdaptivePartition pins the wave plan: shards tile a prefix
// structure of [0, cap) contiguously, cell-aligned, with geometric
// cumulative growth and the floor inside the first wave.
func TestAdaptivePartition(t *testing.T) {
	for _, tc := range []struct{ cap, floor, spw int }{
		{1_000_000, 0, 8}, {1_000_000, 100_000, 4}, {2000, 0, 2}, {64, 0, 16}, {50_000, 50_000, 3},
	} {
		shards, waves := adaptivePartition(tc.cap, tc.floor, tc.spw, nil)
		cs := sim.CellSize(tc.cap)
		cursor := 0
		seen := 0
		for wi, ids := range waves {
			if len(ids) == 0 {
				t.Fatalf("%+v: empty wave %d", tc, wi)
			}
			if len(ids) > tc.spw {
				t.Errorf("%+v: wave %d has %d shards, cap %d", tc, wi, len(ids), tc.spw)
			}
			for _, id := range ids {
				if id != seen {
					t.Fatalf("%+v: wave %d lists shard %d, want %d (ids must be dense in wave order)", tc, wi, id, seen)
				}
				seen++
				r := shards[id]
				if r.Start != cursor || r.End <= r.Start {
					t.Fatalf("%+v: shard %d range %+v at cursor %d", tc, id, r, cursor)
				}
				if r.Start%cs != 0 || (r.End%cs != 0 && r.End != tc.cap) {
					t.Fatalf("%+v: shard %d range %+v not cell-aligned (cell %d)", tc, id, r, cs)
				}
				cursor = r.End
			}
			if wi == 0 && tc.floor > 0 && cursor < tc.floor {
				t.Errorf("%+v: first wave ends at %d, below the floor %d", tc, cursor, tc.floor)
			}
		}
		if cursor != tc.cap {
			t.Fatalf("%+v: waves end at %d, want %d", tc, cursor, tc.cap)
		}
		if seen != len(shards) {
			t.Fatalf("%+v: %d shards listed in waves, want %d", tc, seen, len(shards))
		}
	}
}

// TestAdaptiveTCPWorker runs an adaptive sharded run over a real TCP
// worker, exercising the remote job/cancel exchange end to end.
func TestAdaptiveTCPWorker(t *testing.T) {
	addr := make(chan net.Addr, 1)
	go func() {
		_ = ListenAndServe("127.0.0.1:0", func(a net.Addr) { addr <- a })
	}()
	w, err := Dial((<-addr).String())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	p := testParams(sim.Conventional)
	o := adaptiveOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := RunStats(Config{Params: p, Options: o, Shards: 2, Workers: []Worker{w}})
	if err != nil {
		t.Fatal(err)
	}
	if !st.StoppedEarly {
		t.Error("TCP adaptive run did not stop early")
	}
	if string(summaryBytes(t, got)) != string(summaryBytes(t, base)) {
		t.Error("TCP adaptive summary diverged from the in-process baseline")
	}
}

// TestAdaptivePartitionWeighted pins the speed-aware wave split: with
// heterogeneous pool capacities, each wave's shards tile the same
// canonical cells as the even split, sized proportionally to the
// descending-sorted weights (largest shard first, so the greedy
// min-id handout starts with the biggest piece).
func TestAdaptivePartitionWeighted(t *testing.T) {
	const cap = 1_000_000
	weights := []int{1, 6, 3}
	shards, waves := adaptivePartition(cap, 0, 3, weights)
	even, _ := adaptivePartition(cap, 0, 3, nil)

	// Same total tiling as the even split.
	cursor := 0
	for _, ids := range waves {
		for _, id := range ids {
			if shards[id].Start != cursor {
				t.Fatalf("shard %d starts at %d, want %d", id, shards[id].Start, cursor)
			}
			cursor = shards[id].End
		}
	}
	if cursor != cap {
		t.Fatalf("weighted waves end at %d, want %d", cursor, cap)
	}
	if lastEven := even[len(even)-1].End; lastEven != cap {
		t.Fatalf("even waves end at %d, want %d", lastEven, cap)
	}

	// Within a full-width wave the shard sizes follow the sorted
	// weights 6:3:1 (to cell rounding), in descending order.
	for wi, ids := range waves {
		if len(ids) != 3 {
			continue
		}
		sz := make([]int, len(ids))
		total := 0
		for i, id := range ids {
			sz[i] = shards[id].End - shards[id].Start
			total += sz[i]
		}
		if !(sz[0] >= sz[1] && sz[1] >= sz[2]) {
			t.Errorf("wave %d shard sizes %v not descending", wi, sz)
		}
		// The largest share is 6/10 of the wave; allow one cell of
		// integer rounding.
		cs := sim.CellSize(cap)
		if diff := sz[0] - total*6/10; diff < -cs || diff > cs {
			t.Errorf("wave %d largest shard %d, want ~%d (weights 6:3:1)", wi, sz[0], total*6/10)
		}
	}

	// Uniform weights fall back to the even split exactly.
	uni, uw := adaptivePartition(cap, 0, 3, []int{2, 2, 2})
	if len(uni) != len(even) || len(uw) != len(waves) {
		t.Fatalf("uniform weights changed the plan: %d shards, want %d", len(uni), len(even))
	}
	for i := range uni {
		if uni[i] != even[i] {
			t.Fatalf("uniform weights shard %d = %+v, want %+v", i, uni[i], even[i])
		}
	}
}

// TestAdaptiveHeterogeneousPoolBitIdentical runs the adaptive run on a
// capacity-skewed pool (a wide worker next to a narrow one): the wave
// plan is capacity-proportional, and the Summary must stay
// byte-identical to the in-process run — shard sizing may move work
// between workers, never change the result.
func TestAdaptiveHeterogeneousPoolBitIdentical(t *testing.T) {
	for _, pol := range []sim.Policy{sim.Conventional, sim.AutoFailover} {
		p := testParams(pol)
		o := adaptiveOptions()
		base, err := sim.Run(p, o)
		if err != nil {
			t.Fatalf("%v: baseline: %v", pol, err)
		}
		want := summaryBytes(t, base)
		workers := []Worker{
			NewInProcessWorker("wide", 3),
			NewInProcessWorker("narrow", 1),
		}
		got, st, err := RunStats(Config{Params: p, Options: o, Workers: workers})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if g := summaryBytes(t, got); string(g) != string(want) {
			t.Errorf("%v: heterogeneous-pool summary diverged\n got %s\nwant %s", pol, g, want)
		}
		if !st.StoppedEarly {
			t.Errorf("%v: heterogeneous-pool run did not stop early", pol)
		}
	}
}
