package shard

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"herald/internal/chaos"
	"herald/internal/sim"
)

// chaosNC is the fast-failure NetConfig the chaos tests share: short
// heartbeats so read deadlines trip in milliseconds, short backoff so
// supervised joiners redial immediately.
func chaosNC(seed uint64) NetConfig {
	return NetConfig{
		Token:             "chaos",
		HeartbeatInterval: 50 * time.Millisecond,
		RetryBase:         20 * time.Millisecond,
		RetryMax:          100 * time.Millisecond,
		RetrySeed:         seed,
	}
}

// waitLive polls the pool until at least n workers are live.
func waitLive(t *testing.T, pool *Pool, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for pool.Health().LiveSlots < n {
		if time.Now().After(deadline) {
			t.Fatalf("pool never reached %d live workers: %+v", n, pool.Health())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosPartitionMidWaveByteIdentical is the headline robustness
// pin: a network partition dropped into the middle of a wave — the
// worker's results vanish, both sides trip their heartbeat deadlines,
// the supervised joiner redials — must leave the Summary byte-identical
// to the in-process baseline.
func TestChaosPartitionMidWaveByteIdentical(t *testing.T) {
	p := testParams(sim.Conventional)
	o := testOptions()
	// Big enough that the wave is still in flight when the first shard
	// banks and triggers the partition (~30ms/shard on one worker).
	o.Iterations = 400000
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	nc := chaosNC(3)
	ln, joiners, err := ListenWorkers("127.0.0.1:0", nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	proxy, err := chaos.NewProxy(ln.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	joinDone := make(chan error, 1)
	go func() { joinDone <- JoinLoop(proxy.Addr(), 1, nc, nil, io.Discard) }()

	logw := &syncLog{}
	pool, err := NewPool(nil, joiners, logw)
	if err != nil {
		t.Fatal(err)
	}
	waitLive(t, pool, 1)
	// Partition the link the moment the first shard banks: the wave is
	// provably mid-flight when the fault lands.
	var once sync.Once
	tk, err := pool.Submit(RunSpec{Params: p, Options: o, Shards: 8}, func(RunProgress) {
		once.Do(func() { proxy.Inject(chaos.Partition, chaos.Up, 2*time.Second) })
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatalf("run across partition: %v\nlog:\n%s", err, logw.String())
	}
	if g, w := summaryBytes(t, res.Summary), summaryBytes(t, base); string(g) != string(w) {
		t.Errorf("summary diverged across partition\n got %s\nwant %s", g, w)
	}
	if res.Stats.WorkerFailures == 0 {
		t.Errorf("partition left no worker failure in stats %+v — the fault never landed", res.Stats)
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("pool close: %v", err)
	}
	select {
	case err := <-joinDone:
		if err != nil {
			t.Fatalf("join loop ended with %v, want nil after clean close", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("join loop still running after pool close")
	}
}

// waitCheckpointRecords polls until the checkpoint file holds at least
// n shard records (lines beyond the header).
func waitCheckpointRecords(t *testing.T, path string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if f, err := os.Open(path); err == nil {
			lines := 0
			sc := bufio.NewScanner(f)
			sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
			for sc.Scan() {
				lines++
			}
			f.Close()
			if lines >= n+1 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("checkpoint %s never reached %d records", path, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosCoordinatorRestartRejoin kills the coordinator mid-run
// behind a partition (so the worker sees a dead network, not a clean
// close), brings up a replacement on the same checkpoint, and points
// the proxy at it: the supervised worker must redial into the new
// coordinator, the run must resume from the checkpoint, and the final
// Summary must be byte-identical to the baseline.
func TestChaosCoordinatorRestartRejoin(t *testing.T) {
	p := testParams(sim.Conventional)
	o := testOptions()
	// Big enough that shards are still outstanding when the first
	// checkpoint record lands and coordinator A is killed.
	o.Iterations = 800000
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	nc := chaosNC(4)

	lnA, joinersA, err := ListenWorkers("127.0.0.1:0", nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lnA.Close()
	proxy, err := chaos.NewProxy(lnA.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	joinDone := make(chan error, 1)
	go func() { joinDone <- JoinLoop(proxy.Addr(), 1, nc, nil, io.Discard) }()

	poolA, err := NewPool(nil, joinersA, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{Params: p, Options: o, Shards: 16, Checkpoint: ckpt}
	tkA, err := poolA.Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Let real progress reach the resume log, then take coordinator A
	// down behind a partition: the worker must never see its FIN.
	waitCheckpointRecords(t, ckpt, 1)
	proxy.Inject(chaos.Partition, chaos.Up, 2*time.Second)
	lnA.Close()
	go poolA.Close()
	if _, err := tkA.Wait(); err == nil {
		t.Fatal("run survived its coordinator dying")
	}

	lnB, joinersB, err := ListenWorkers("127.0.0.1:0", nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lnB.Close()
	proxy.SetTarget(lnB.Addr().String())
	poolB, err := NewPool(nil, joinersB, nil)
	if err != nil {
		t.Fatal(err)
	}
	tkB, err := poolB.Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tkB.Wait()
	if err != nil {
		t.Fatalf("resumed run on coordinator B: %v", err)
	}
	if g, w := summaryBytes(t, res.Summary), summaryBytes(t, base); string(g) != string(w) {
		t.Errorf("summary diverged across coordinator restart\n got %s\nwant %s", g, w)
	}
	if res.Stats.FromCheckpoint == 0 {
		t.Errorf("restart restored nothing from the checkpoint: %+v", res.Stats)
	}
	if err := poolB.Close(); err != nil {
		t.Fatalf("pool B close: %v", err)
	}
	select {
	case err := <-joinDone:
		if err != nil {
			t.Fatalf("join loop ended with %v, want nil after clean close", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("join loop still running after coordinator B closed")
	}
}

// TestChaosStallTripsHeartbeatDeadline pins failure-detection latency:
// a one-way stall (coordinator→worker bytes silently dropped) must be
// detected by the worker's heartbeat read deadline within the factor-4
// window, not hang.
func TestChaosStallTripsHeartbeatDeadline(t *testing.T) {
	const hb = 100 * time.Millisecond
	nc := NetConfig{Token: "chaos", HeartbeatInterval: hb}
	ln, joiners, err := ListenWorkers("127.0.0.1:0", nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	proxy, err := chaos.NewProxy(ln.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	stop := make(chan struct{})
	defer close(stop)
	joinErr := make(chan error, 1)
	go func() { joinErr <- JoinStop(proxy.Addr(), 1, nc, stop) }()
	var w Worker
	select {
	case w = <-joiners:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never joined through the proxy")
	}
	defer w.Close()
	// The coordinator delivers the worker after sending its final
	// hello; round-trip one tiny job so the stall provably lands on a
	// fully joined session, not on the in-flight handshake ack.
	wp, err := EncodeParams(testParams(sim.Conventional))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(&Job{ID: 1, Start: 0, End: 64, Params: wp, Options: testOptions()}); err != nil {
		t.Fatalf("probe job: %v", err)
	}
	start := time.Now()
	proxy.Inject(chaos.Stall, chaos.Down, 30*time.Second)
	select {
	case err := <-joinErr:
		elapsed := time.Since(start)
		if err == nil {
			t.Fatal("stalled session ended cleanly; a stall must be an error, or JoinLoop would not retry")
		}
		// The read deadline is heartbeatDeadlineFactor (4) times the
		// coordinator's advertised interval; allow generous CI slack.
		if limit := heartbeatDeadlineFactor*hb + 2*time.Second; elapsed > limit {
			t.Errorf("stall detected after %v, want within %v", elapsed, limit)
		}
		if elapsed < hb {
			t.Errorf("session died after %v, before a heartbeat could even be missed", elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker never detected the stalled link")
	}
}
