package shard

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"

	"herald/internal/sim"
)

// Serve runs the worker side of the shard protocol over a transport:
// it announces itself with a hello, then answers each job message with
// a result (the job range's cell partials) or a job-scoped error. It
// returns nil when the coordinator closes the stream.
func Serve(t Transport) error {
	if err := t.Send(&Message{Type: MsgHello, Version: ProtocolVersion}); err != nil {
		return err
	}
	for {
		m, err := t.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
				return nil
			}
			return err
		}
		switch m.Type {
		case MsgJob:
			if m.Job == nil {
				if err := t.Send(&Message{Type: MsgError, ID: m.ID, Error: "job message without job"}); err != nil {
					return err
				}
				continue
			}
			parts, jerr := runJob(m.Job)
			var reply *Message
			if jerr != nil {
				reply = &Message{Type: MsgError, ID: m.Job.ID, Error: jerr.Error()}
			} else {
				reply = &Message{Type: MsgResult, ID: m.Job.ID, Partials: parts}
			}
			if err := t.Send(reply); err != nil {
				return err
			}
		case MsgHello:
			// Ignore: transports may echo hellos.
		default:
			if err := t.Send(&Message{Type: MsgError, ID: m.ID, Error: fmt.Sprintf("unknown message type %q", m.Type)}); err != nil {
				return err
			}
		}
	}
}

// runJob executes one shard assignment in this process.
func runJob(j *Job) ([]sim.Partial, error) {
	p, err := j.Params.Decode()
	if err != nil {
		return nil, err
	}
	return sim.RunRange(p, j.Options, j.Start, j.End)
}

// ServeStream is Serve over a raw byte stream (a TCP connection or a
// stdio pipe pair).
func ServeStream(rw io.ReadWriter) error {
	return Serve(NewTransport(rw))
}

// ListenAndServe runs a TCP worker: it accepts connections on addr and
// serves the shard protocol on each, using every local core per job
// unless the job says otherwise. The ready callback, when non-nil,
// receives the bound address before accepting begins (useful with
// ":0").
func ListenAndServe(addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	if ready != nil {
		ready(ln.Addr())
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func(c net.Conn) {
			defer c.Close()
			_ = ServeStream(c)
		}(conn)
	}
}

// Worker executes shard jobs one at a time on behalf of the
// coordinator.
type Worker interface {
	// Name identifies the worker in logs and errors.
	Name() string
	// Run executes one job, blocking until its result is available. A
	// returned error means the worker is unusable (its job must be
	// reassigned); job-scoped failures reported by a live remote
	// worker surface as *JobError.
	Run(job *Job) ([]sim.Partial, error)
	// Close releases the worker's resources.
	Close() error
}

// JobError is a job-scoped failure reported by a live worker: the
// job's configuration was rejected rather than the worker dying. The
// coordinator treats it as fatal for the run (re-running the same job
// would fail again) instead of reassigning.
type JobError struct {
	ID  int
	Msg string
}

func (e *JobError) Error() string { return fmt.Sprintf("shard %d: %s", e.ID, e.Msg) }

// remoteWorker drives one protocol connection as a Worker. Stray
// result messages — answers for shards this worker is not currently
// running, e.g. re-deliveries after a presumed-lost connection — are
// handed to onStray so the coordinator can still bank them (or drop
// duplicates) instead of confusing them with the current job.
type remoteWorker struct {
	name string
	t    Transport
	// jobWorkers, when non-negative, overrides Job.Options.Workers for
	// every job sent through this worker: 1 pins a local sibling
	// process to one core; 0 lets a remote machine use all of its
	// cores.
	jobWorkers int
	onStray    func(id int, parts []sim.Partial)
}

// strayBanker is implemented by workers that can surface stray result
// deliveries; the coordinator installs its exactly-once sink here.
type strayBanker interface {
	setStray(func(id int, parts []sim.Partial))
}

func (w *remoteWorker) setStray(fn func(int, []sim.Partial)) { w.onStray = fn }

// NewRemoteWorker wraps a protocol transport as a Worker. jobWorkers
// overrides the per-job parallelism (-1 keeps the job's own setting).
func NewRemoteWorker(name string, t Transport, jobWorkers int) Worker {
	return &remoteWorker{name: name, t: t, jobWorkers: jobWorkers}
}

func (w *remoteWorker) Name() string { return w.name }

func (w *remoteWorker) Run(job *Job) ([]sim.Partial, error) {
	j := *job
	if w.jobWorkers >= 0 {
		j.Options.Workers = w.jobWorkers
	}
	if err := w.t.Send(&Message{Type: MsgJob, Job: &j}); err != nil {
		return nil, fmt.Errorf("worker %s: send: %w", w.name, err)
	}
	for {
		m, err := w.t.Recv()
		if err != nil {
			return nil, fmt.Errorf("worker %s: recv: %w", w.name, err)
		}
		switch m.Type {
		case MsgHello:
			if m.Version != ProtocolVersion {
				return nil, fmt.Errorf("worker %s: protocol version %d, want %d", w.name, m.Version, ProtocolVersion)
			}
		case MsgResult:
			if m.ID == job.ID {
				return m.Partials, nil
			}
			if w.onStray != nil {
				w.onStray(m.ID, m.Partials)
			}
		case MsgError:
			if m.ID == job.ID {
				return nil, &JobError{ID: m.ID, Msg: m.Error}
			}
		default:
			return nil, fmt.Errorf("worker %s: unexpected message type %q", w.name, m.Type)
		}
	}
}

func (w *remoteWorker) Close() error { return w.t.Close() }

// Dial attaches a remote TCP worker (a process running
// ListenAndServe, e.g. `availsim -shard-serve`). Jobs sent to it use
// all of the remote machine's cores.
func Dial(addr string) (Worker, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("shard: dial %s: %w", addr, err)
	}
	return NewRemoteWorker("tcp:"+addr, NewTransport(conn), 0), nil
}

// inProcessWorker runs jobs directly in the coordinator's process.
type inProcessWorker struct {
	name    string
	workers int
}

// NewInProcessWorker returns a Worker that executes jobs in this
// process with the given parallelism (0 = GOMAXPROCS). It is the
// zero-overhead backend for single-machine runs and tests.
func NewInProcessWorker(name string, workers int) Worker {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &inProcessWorker{name: name, workers: workers}
}

func (w *inProcessWorker) Name() string { return w.name }

func (w *inProcessWorker) Run(job *Job) ([]sim.Partial, error) {
	j := *job
	j.Options.Workers = w.workers
	parts, err := runJob(&j)
	if err != nil {
		return nil, &JobError{ID: job.ID, Msg: err.Error()}
	}
	return parts, nil
}

func (w *inProcessWorker) Close() error { return nil }
