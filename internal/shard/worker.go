package shard

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"

	"herald/internal/sim"
)

// Serve runs the worker side of the shard protocol over a transport:
// it announces itself with a hello, then answers each job message with
// a result (the job range's cell partials), a job-scoped error, or —
// when a cancel for the job arrives while it runs — a cancelled
// acknowledgement. Jobs execute in a goroutine so the receive loop
// stays responsive to cancels; the coordinator still sends at most one
// job at a time per connection. Serve returns nil when the coordinator
// closes the stream.
func Serve(t Transport) error {
	if err := t.Send(&Message{Type: MsgHello, Version: ProtocolVersion}); err != nil {
		return err
	}
	var (
		mu sync.Mutex
		// stop holds the cancel channel of each running job; cancelled
		// tombstones cancels that arrived before their job (the
		// coordinator's cancel send can overtake the job send), so the
		// job is answered cancelled instead of executed.
		stop      = make(map[int]chan struct{})
		cancelled = make(map[int]bool)
		wg        sync.WaitGroup
	)
	defer wg.Wait()
	for {
		m, err := t.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
				return nil
			}
			return err
		}
		switch m.Type {
		case MsgJob:
			if m.Job == nil {
				if err := t.Send(&Message{Type: MsgError, ID: m.ID, Error: "job message without job"}); err != nil {
					return err
				}
				continue
			}
			if !m.Job.Cancellable {
				// Plain jobs answer synchronously on the receive
				// goroutine: no handoff, no cancellation bookkeeping.
				if err := t.Send(jobReply(m.Job, nil)); err != nil {
					return err
				}
				continue
			}
			st := make(chan struct{})
			mu.Lock()
			if cancelled[m.Job.ID] {
				delete(cancelled, m.Job.ID)
				mu.Unlock()
				if err := t.Send(&Message{Type: MsgCancelled, ID: m.Job.ID}); err != nil {
					return err
				}
				continue
			}
			stop[m.Job.ID] = st
			mu.Unlock()
			wg.Add(1)
			go func(j *Job) {
				defer wg.Done()
				reply := jobReply(j, st)
				mu.Lock()
				delete(stop, j.ID)
				mu.Unlock()
				// A send failure means the coordinator is gone; the main
				// Recv loop observes the same condition and exits.
				_ = t.Send(reply)
			}(m.Job)
		case MsgCancel:
			mu.Lock()
			if st, ok := stop[m.ID]; ok {
				close(st)
				delete(stop, m.ID)
			} else {
				cancelled[m.ID] = true
			}
			mu.Unlock()
		case MsgHello:
			// Ignore: transports may echo hellos.
		default:
			if err := t.Send(&Message{Type: MsgError, ID: m.ID, Error: fmt.Sprintf("unknown message type %q", m.Type)}); err != nil {
				return err
			}
		}
	}
}

// jobReply executes one job and wraps its outcome as the protocol
// answer.
func jobReply(j *Job, stop <-chan struct{}) *Message {
	parts, jerr := runJob(j, stop)
	switch {
	case errors.Is(jerr, sim.ErrStopped):
		return &Message{Type: MsgCancelled, ID: j.ID}
	case jerr != nil:
		return &Message{Type: MsgError, ID: j.ID, Error: jerr.Error()}
	default:
		return &Message{Type: MsgResult, ID: j.ID, Partials: parts}
	}
}

// runJob executes one shard assignment in this process, streaming
// cells so a close of stop abandons the remainder (the partials of a
// cancelled job are discarded: the coordinator only cancels iterations
// its stopping rule no longer needs). It returns sim.ErrStopped for a
// cancelled job.
func runJob(j *Job, stop <-chan struct{}) ([]sim.Partial, error) {
	p, err := j.Params.Decode()
	if err != nil {
		return nil, err
	}
	// Size the buffer to the job's own cells (not the whole run's):
	// the stream can then complete without a collector goroutine.
	cs := sim.CellSize(j.Options.Iterations)
	cells := (j.End - j.Start + cs - 1) / cs
	out := make(chan sim.Partial, cells)
	if err := sim.RunRangeStream(p, j.Options, j.Start, j.End, out, stop); err != nil {
		return nil, err
	}
	parts := make([]sim.Partial, 0, cells)
	for pt := range out {
		parts = append(parts, pt)
	}
	return parts, nil
}

// ServeStream is Serve over a raw byte stream (a TCP connection or a
// stdio pipe pair).
func ServeStream(rw io.ReadWriter) error {
	return Serve(NewTransport(rw))
}

// ListenAndServe runs a TCP worker: it accepts connections on addr and
// serves the shard protocol on each, using every local core per job
// unless the job says otherwise. The ready callback, when non-nil,
// receives the bound address before accepting begins (useful with
// ":0").
func ListenAndServe(addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	if ready != nil {
		ready(ln.Addr())
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func(c net.Conn) {
			defer c.Close()
			_ = ServeStream(c)
		}(conn)
	}
}

// Worker executes shard jobs one at a time on behalf of the
// coordinator.
type Worker interface {
	// Name identifies the worker in logs and errors.
	Name() string
	// Run executes one job, blocking until its result is available. A
	// returned error means the worker is unusable (its job must be
	// reassigned); job-scoped failures reported by a live remote
	// worker surface as *JobError, and a job abandoned after CancelJob
	// as ErrJobCancelled.
	Run(job *Job) ([]sim.Partial, error)
	// Close releases the worker's resources.
	Close() error
}

// JobCanceler is implemented by workers that can abandon an in-flight
// job on coordinator request (all workers in this package). Cancel is
// best-effort and asynchronous: the pending Run returns
// ErrJobCancelled once the worker acknowledges, or its normal result
// if the job won the race.
type JobCanceler interface {
	CancelJob(id int)
}

// ErrJobCancelled reports a job abandoned after a CancelJob request.
// The worker remains usable.
var ErrJobCancelled = errors.New("shard: job cancelled")

// JobError is a job-scoped failure reported by a live worker: the
// job's configuration was rejected rather than the worker dying. The
// coordinator treats it as fatal for the run (re-running the same job
// would fail again) instead of reassigning.
type JobError struct {
	ID  int
	Msg string
}

func (e *JobError) Error() string { return fmt.Sprintf("shard %d: %s", e.ID, e.Msg) }

// remoteWorker drives one protocol connection as a Worker. Stray
// result messages — answers for shards this worker is not currently
// running, e.g. re-deliveries after a presumed-lost connection — are
// handed to onStray so the coordinator can still bank them (or drop
// duplicates) instead of confusing them with the current job.
type remoteWorker struct {
	name string
	t    Transport
	// jobWorkers, when non-negative, overrides Job.Options.Workers for
	// every job sent through this worker: 1 pins a local sibling
	// process to one core; 0 lets a remote machine use all of its
	// cores.
	jobWorkers int
	onStray    func(id int, parts []sim.Partial)
}

// strayBanker is implemented by workers that can surface stray result
// deliveries; the coordinator installs its exactly-once sink here.
type strayBanker interface {
	setStray(func(id int, parts []sim.Partial))
}

func (w *remoteWorker) setStray(fn func(int, []sim.Partial)) { w.onStray = fn }

// NewRemoteWorker wraps a protocol transport as a Worker. jobWorkers
// overrides the per-job parallelism (-1 keeps the job's own setting).
func NewRemoteWorker(name string, t Transport, jobWorkers int) Worker {
	return &remoteWorker{name: name, t: t, jobWorkers: jobWorkers}
}

func (w *remoteWorker) Name() string { return w.name }

func (w *remoteWorker) Run(job *Job) ([]sim.Partial, error) {
	j := *job
	if w.jobWorkers >= 0 {
		j.Options.Workers = w.jobWorkers
	}
	if err := w.t.Send(&Message{Type: MsgJob, Job: &j}); err != nil {
		return nil, fmt.Errorf("worker %s: send: %w", w.name, err)
	}
	for {
		m, err := w.t.Recv()
		if err != nil {
			return nil, fmt.Errorf("worker %s: recv: %w", w.name, err)
		}
		switch m.Type {
		case MsgHello:
			if m.Version != ProtocolVersion {
				return nil, fmt.Errorf("worker %s: protocol version %d, want %d", w.name, m.Version, ProtocolVersion)
			}
		case MsgResult:
			if m.ID == job.ID {
				return m.Partials, nil
			}
			if w.onStray != nil {
				w.onStray(m.ID, m.Partials)
			}
		case MsgError:
			if m.ID == job.ID {
				return nil, &JobError{ID: m.ID, Msg: m.Error}
			}
		case MsgCancelled:
			if m.ID == job.ID {
				return nil, ErrJobCancelled
			}
		default:
			return nil, fmt.Errorf("worker %s: unexpected message type %q", w.name, m.Type)
		}
	}
}

// CancelJob asks the remote worker to abandon the job. Send is
// concurrency-safe, so the cancel can overtake the pending Run's
// receive loop.
func (w *remoteWorker) CancelJob(id int) {
	_ = w.t.Send(&Message{Type: MsgCancel, ID: id})
}

func (w *remoteWorker) Close() error { return w.t.Close() }

// Dial attaches a remote TCP worker (a process running
// ListenAndServe, e.g. `availsim -shard-serve`). Jobs sent to it use
// all of the remote machine's cores.
func Dial(addr string) (Worker, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("shard: dial %s: %w", addr, err)
	}
	return NewRemoteWorker("tcp:"+addr, NewTransport(conn), 0), nil
}

// inProcessWorker runs jobs directly in the coordinator's process.
type inProcessWorker struct {
	name    string
	workers int

	mu sync.Mutex
	// stop holds running jobs' cancel channels; cancelled tombstones
	// cancels that raced ahead of their job's Run.
	stop      map[int]chan struct{}
	cancelled map[int]bool
}

// NewInProcessWorker returns a Worker that executes jobs in this
// process with the given parallelism (0 = GOMAXPROCS). It is the
// zero-overhead backend for single-machine runs and tests.
func NewInProcessWorker(name string, workers int) Worker {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &inProcessWorker{
		name:      name,
		workers:   workers,
		stop:      make(map[int]chan struct{}),
		cancelled: make(map[int]bool),
	}
}

func (w *inProcessWorker) Name() string { return w.name }

func (w *inProcessWorker) Run(job *Job) ([]sim.Partial, error) {
	j := *job
	j.Options.Workers = w.workers
	st := make(chan struct{})
	w.mu.Lock()
	if w.cancelled[j.ID] {
		delete(w.cancelled, j.ID)
		w.mu.Unlock()
		return nil, ErrJobCancelled
	}
	w.stop[j.ID] = st
	w.mu.Unlock()
	parts, err := runJob(&j, st)
	w.mu.Lock()
	delete(w.stop, j.ID)
	w.mu.Unlock()
	if errors.Is(err, sim.ErrStopped) {
		return nil, ErrJobCancelled
	}
	if err != nil {
		return nil, &JobError{ID: job.ID, Msg: err.Error()}
	}
	return parts, nil
}

// CancelJob abandons the job with the given id: the in-flight run is
// stopped, or — when the cancel races ahead of Run — a tombstone makes
// the upcoming Run return ErrJobCancelled without executing.
func (w *inProcessWorker) CancelJob(id int) {
	w.mu.Lock()
	if st, ok := w.stop[id]; ok {
		close(st)
		delete(w.stop, id)
	} else {
		w.cancelled[id] = true
	}
	w.mu.Unlock()
}

func (w *inProcessWorker) Close() error { return nil }
