package shard

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"

	"herald/internal/sim"
)

// Serve runs the worker side of the shard protocol over a transport:
// it announces itself with a hello, then answers each job message with
// a result (the job range's cell partials), a job-scoped error, or —
// when a cancel for the job arrives — a cancelled acknowledgement.
// Jobs are queued and executed strictly in arrival order off the
// receive loop, so the loop stays responsive to cancels and the
// coordinator may keep more than one job outstanding (protocol v3
// double-buffering). Serve returns nil when the coordinator closes the
// stream.
//
// Serve is the plain, unauthenticated entry point used on stdio pipes
// and in-memory transports; TCP connections run the hello handshake in
// net.go first and then the same job loop.
func Serve(t Transport) error {
	if err := t.Send(&Message{Type: MsgHello, Version: ProtocolVersion}); err != nil {
		return err
	}
	return serveJobs(t)
}

// serveJobs is the worker's post-handshake job loop: the receive side
// feeds a FIFO executor and handles cancels, pings and malformed
// messages inline.
func serveJobs(t Transport) error {
	return serveJobsStop(t, nil)
}

// serveJobsStop is serveJobs with a graceful-shutdown channel: when
// stop closes, the worker finishes the job it is running, answers every
// queued job with a cancelled message (the coordinator reassigns those
// shards elsewhere), and closes the transport — which unwinds the
// receive loop cleanly, so the caller sees a nil return. nil stop is
// plain serveJobs.
func serveJobsStop(t Transport, stop <-chan struct{}) error {
	ex := newJobExecutor(t)
	defer ex.shutdown()
	if stop != nil {
		go func() {
			select {
			case <-stop:
				ex.drain()
				t.Close()
			case <-ex.done:
				// Connection ended first; nothing to drain.
			}
		}()
	}
	for {
		m, err := t.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		switch m.Type {
		case MsgJob:
			if m.Job == nil {
				if err := t.Send(&Message{Type: MsgError, ID: m.ID, Error: "job message without job"}); err != nil {
					return err
				}
				continue
			}
			ex.enqueue(m.Job)
		case MsgCancel:
			ex.cancel(m.ID)
		case MsgHello, MsgPing:
			// Hellos may be echoed by transports; pings are liveness
			// only — receiving one already reset the read deadline.
		default:
			if err := t.Send(&Message{Type: MsgError, ID: m.ID, Error: fmt.Sprintf("unknown message type %q", m.Type)}); err != nil {
				return err
			}
		}
	}
}

// jobExecutor runs queued jobs one at a time in arrival order, off the
// receive goroutine. Cancels interrupt the running job (its stop
// channel), remove a still-queued job, or tombstone a job that has not
// arrived yet (the coordinator's cancel send can overtake the job
// send); all three answer with a cancelled message.
type jobExecutor struct {
	t Transport

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []*Job
	stop      map[int]chan struct{}
	cancelled map[int]bool
	closed    bool
	draining  bool
	done      chan struct{}
}

func newJobExecutor(t Transport) *jobExecutor {
	e := &jobExecutor{
		t:         t,
		stop:      make(map[int]chan struct{}),
		cancelled: make(map[int]bool),
		done:      make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	go e.run()
	return e
}

func (e *jobExecutor) run() {
	defer close(e.done)
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed && !e.draining {
			e.cond.Wait()
		}
		if len(e.queue) == 0 {
			e.mu.Unlock()
			return
		}
		j := e.queue[0]
		e.queue = e.queue[1:]
		if e.cancelled[j.ID] {
			delete(e.cancelled, j.ID)
			e.mu.Unlock()
			_ = e.t.Send(&Message{Type: MsgCancelled, ID: j.ID})
			continue
		}
		st := make(chan struct{})
		e.stop[j.ID] = st
		e.mu.Unlock()
		reply := jobReply(j, st)
		e.mu.Lock()
		delete(e.stop, j.ID)
		e.mu.Unlock()
		// A send failure means the coordinator is gone; the receive
		// loop observes the same condition and shuts the executor down.
		_ = e.t.Send(reply)
	}
}

func (e *jobExecutor) enqueue(j *Job) {
	e.mu.Lock()
	if e.cancelled[j.ID] || e.draining {
		delete(e.cancelled, j.ID)
		e.mu.Unlock()
		_ = e.t.Send(&Message{Type: MsgCancelled, ID: j.ID})
		return
	}
	e.queue = append(e.queue, j)
	e.cond.Signal()
	e.mu.Unlock()
}

func (e *jobExecutor) cancel(id int) {
	e.mu.Lock()
	if st, ok := e.stop[id]; ok {
		// Running: interrupt it; the executor answers cancelled when
		// the stream winds down.
		close(st)
		delete(e.stop, id)
		e.mu.Unlock()
		return
	}
	for i, j := range e.queue {
		if j.ID == id {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			e.mu.Unlock()
			_ = e.t.Send(&Message{Type: MsgCancelled, ID: id})
			return
		}
	}
	e.cancelled[id] = true
	e.mu.Unlock()
}

// drain gracefully winds the executor down: the running job (if any)
// completes and its result is sent, every queued job is handed back to
// the coordinator as cancelled for reassignment, and new arrivals are
// answered cancelled immediately. drain returns once the executor
// goroutine has exited — the last in-flight reply is on the wire.
func (e *jobExecutor) drain() {
	e.mu.Lock()
	e.draining = true
	q := e.queue
	e.queue = nil
	e.cond.Signal()
	e.mu.Unlock()
	for _, j := range q {
		_ = e.t.Send(&Message{Type: MsgCancelled, ID: j.ID})
	}
	<-e.done
}

// shutdown interrupts the running job, drops the queue and waits for
// the executor goroutine to exit. Called when the connection is gone,
// so undelivered replies are moot.
func (e *jobExecutor) shutdown() {
	e.mu.Lock()
	e.closed = true
	e.queue = nil
	for id, st := range e.stop {
		close(st)
		delete(e.stop, id)
	}
	e.cond.Signal()
	e.mu.Unlock()
	<-e.done
}

// jobReply executes one job and wraps its outcome as the protocol
// answer.
func jobReply(j *Job, stop <-chan struct{}) *Message {
	parts, jerr := runJob(j, stop)
	switch {
	case errors.Is(jerr, sim.ErrStopped):
		return &Message{Type: MsgCancelled, ID: j.ID}
	case jerr != nil:
		return &Message{Type: MsgError, ID: j.ID, Error: jerr.Error()}
	default:
		return &Message{Type: MsgResult, ID: j.ID, Partials: parts}
	}
}

// runJob executes one shard assignment in this process, streaming
// cells so a close of stop abandons the remainder (the partials of a
// cancelled job are discarded: the coordinator only cancels iterations
// its stopping rule no longer needs). It returns sim.ErrStopped for a
// cancelled job.
func runJob(j *Job, stop <-chan struct{}) ([]sim.Partial, error) {
	p, err := j.Params.Decode()
	if err != nil {
		return nil, err
	}
	// Size the buffer to the job's own cells (not the whole run's):
	// the stream can then complete without a collector goroutine.
	cs := sim.CellSize(j.Options.Iterations)
	cells := (j.End - j.Start + cs - 1) / cs
	out := make(chan sim.Partial, cells)
	if err := sim.RunRangeStream(p, j.Options, j.Start, j.End, out, stop); err != nil {
		return nil, err
	}
	parts := make([]sim.Partial, 0, cells)
	for pt := range out {
		parts = append(parts, pt)
	}
	return parts, nil
}

// ServeStream is Serve over a raw byte stream (a TCP connection or a
// stdio pipe pair).
func ServeStream(rw io.ReadWriter) error {
	return Serve(NewTransport(rw))
}

// Worker executes shard jobs on behalf of the coordinator.
type Worker interface {
	// Name identifies the worker in logs and errors.
	Name() string
	// Run executes one job, blocking until its result is available. A
	// returned error means the worker is unusable (its job must be
	// reassigned); job-scoped failures reported by a live remote
	// worker surface as *JobError, and a job abandoned after CancelJob
	// as ErrJobCancelled. Run is safe for concurrent use on workers
	// that advertise a PipelineDepth above one.
	Run(job *Job) ([]sim.Partial, error)
	// Close releases the worker's resources.
	Close() error
}

// Pipeliner is implemented by workers that can usefully hold more than
// one job at a time: the coordinator keeps PipelineDepth jobs
// outstanding so the worker's next job is already queued remotely when
// the previous result lands, hiding the result-decode + round-trip gap.
// Workers without the interface run one job at a time.
type Pipeliner interface {
	PipelineDepth() int
}

// JobCanceler is implemented by workers that can abandon an in-flight
// job on coordinator request (all workers in this package). Cancel is
// best-effort and asynchronous: the pending Run returns
// ErrJobCancelled once the worker acknowledges, or its normal result
// if the job won the race.
type JobCanceler interface {
	CancelJob(id int)
}

// CapacityReporter is an optional Worker facet: the worker's job
// parallelism (a join-mode worker's hello advertisement, an in-process
// worker's configured width). The coordinator uses it to size wave
// shards proportionally, so a heterogeneous pool drains each wave
// together instead of idling its fast members behind the slowest one.
// Workers that return 0 (or lack the interface) count as one slot.
type CapacityReporter interface {
	Capacity() int
}

// ErrJobCancelled reports a job abandoned after a CancelJob request.
// The worker remains usable.
var ErrJobCancelled = errors.New("shard: job cancelled")

// JobError is a job-scoped failure reported by a live worker: the
// job's configuration was rejected rather than the worker dying. The
// coordinator treats it as fatal for the run (re-running the same job
// would fail again) instead of reassigning.
type JobError struct {
	ID  int
	Msg string
}

func (e *JobError) Error() string { return fmt.Sprintf("shard %d: %s", e.ID, e.Msg) }

// remoteWorker drives one protocol connection as a Worker. A single
// pump goroutine owns the transport's receive side and routes each
// reply to the pending Run that sent the job, so several Runs can be
// in flight at once (PipelineDepth). Stray result messages — answers
// for shards no Run is waiting on, e.g. re-deliveries after a
// presumed-lost connection — are handed to onStray so the coordinator
// can still bank them (or drop duplicates) instead of losing them.
type remoteWorker struct {
	name string
	t    Transport
	// jobWorkers, when non-negative, overrides Job.Options.Workers for
	// every job sent through this worker: 1 pins a local sibling
	// process to one core; 0 lets a remote machine use all of its
	// cores; a join-mode worker's advertised capacity caps it there.
	jobWorkers int

	mu       sync.Mutex
	pending  map[int]chan *Message
	onStray  func(id int, parts []sim.Partial)
	pumpErr  error
	pumpDone chan struct{}
	pumpOnce sync.Once
}

// strayBanker is implemented by workers that can surface stray result
// deliveries; the coordinator installs its exactly-once sink here.
type strayBanker interface {
	setStray(func(id int, parts []sim.Partial))
}

func (w *remoteWorker) setStray(fn func(int, []sim.Partial)) {
	w.mu.Lock()
	w.onStray = fn
	w.mu.Unlock()
}

// NewRemoteWorker wraps a protocol transport as a Worker. jobWorkers
// overrides the per-job parallelism (-1 keeps the job's own setting).
func NewRemoteWorker(name string, t Transport, jobWorkers int) Worker {
	return newRemoteWorker(name, t, jobWorkers)
}

func newRemoteWorker(name string, t Transport, jobWorkers int) *remoteWorker {
	return &remoteWorker{
		name:       name,
		t:          t,
		jobWorkers: jobWorkers,
		pending:    make(map[int]chan *Message),
		pumpDone:   make(chan struct{}),
	}
}

func (w *remoteWorker) Name() string { return w.name }

// Capacity reports the worker's advertised job parallelism: positive
// jobWorkers came from its hello (join mode) or its spawner; 0 and -1
// (all cores / job's own setting) advertise nothing.
func (w *remoteWorker) Capacity() int {
	if w.jobWorkers > 0 {
		return w.jobWorkers
	}
	return 0
}

// PipelineDepth keeps two jobs in flight per connection: while one
// executes remotely the next is already queued in the worker's
// executor, so the worker never idles for the result round-trip.
func (w *remoteWorker) PipelineDepth() int { return 2 }

// pump is the sole reader of the transport: it routes each reply to
// its pending Run, banks strays, and on any receive failure records
// the error and releases every waiter.
func (w *remoteWorker) pump() {
	defer close(w.pumpDone)
	for {
		m, err := w.t.Recv()
		if err != nil {
			w.mu.Lock()
			w.pumpErr = fmt.Errorf("worker %s: recv: %w", w.name, err)
			w.mu.Unlock()
			return
		}
		switch m.Type {
		case MsgHello:
			if m.Version != ProtocolVersion {
				w.mu.Lock()
				w.pumpErr = fmt.Errorf("worker %s: protocol version %d, want %d", w.name, m.Version, ProtocolVersion)
				w.mu.Unlock()
				return
			}
		case MsgPing:
			// Liveness only; receiving it reset the read deadline.
		case MsgResult, MsgError, MsgCancelled:
			w.mu.Lock()
			ch := w.pending[m.ID]
			if ch != nil {
				delete(w.pending, m.ID)
			}
			stray := w.onStray
			w.mu.Unlock()
			switch {
			case ch != nil:
				ch <- m // buffered; never blocks
			case m.Type == MsgResult && stray != nil:
				stray(m.ID, m.Partials)
			}
		default:
			w.mu.Lock()
			w.pumpErr = fmt.Errorf("worker %s: unexpected message type %q", w.name, m.Type)
			w.mu.Unlock()
			return
		}
	}
}

func (w *remoteWorker) Run(job *Job) ([]sim.Partial, error) {
	w.pumpOnce.Do(func() { go w.pump() })
	j := *job
	if w.jobWorkers >= 0 {
		j.Options.Workers = w.jobWorkers
	}
	ch := make(chan *Message, 1)
	w.mu.Lock()
	if w.pumpErr != nil {
		err := w.pumpErr
		w.mu.Unlock()
		return nil, err
	}
	w.pending[job.ID] = ch
	w.mu.Unlock()
	if err := w.t.Send(&Message{Type: MsgJob, Job: &j}); err != nil {
		w.mu.Lock()
		delete(w.pending, job.ID)
		w.mu.Unlock()
		return nil, fmt.Errorf("worker %s: send: %w", w.name, err)
	}
	var m *Message
	select {
	case m = <-ch:
	case <-w.pumpDone:
		// The pump may have routed the reply just before dying; prefer
		// the delivered result over the connection error.
		select {
		case m = <-ch:
		default:
			w.mu.Lock()
			delete(w.pending, job.ID)
			err := w.pumpErr
			w.mu.Unlock()
			if err == nil {
				err = fmt.Errorf("worker %s: connection closed", w.name)
			}
			return nil, err
		}
	}
	switch m.Type {
	case MsgResult:
		return m.Partials, nil
	case MsgCancelled:
		return nil, ErrJobCancelled
	case MsgError:
		return nil, &JobError{ID: m.ID, Msg: m.Error}
	default:
		return nil, fmt.Errorf("worker %s: unexpected reply type %q", w.name, m.Type)
	}
}

// CancelJob asks the remote worker to abandon the job. Send is
// concurrency-safe, so the cancel can overtake the pending Run's
// receive loop.
func (w *remoteWorker) CancelJob(id int) {
	_ = w.t.Send(&Message{Type: MsgCancel, ID: id})
}

func (w *remoteWorker) Close() error { return w.t.Close() }

// inProcessWorker runs jobs directly in the coordinator's process.
type inProcessWorker struct {
	name    string
	workers int

	mu sync.Mutex
	// stop holds running jobs' cancel channels; cancelled tombstones
	// cancels that raced ahead of their job's Run.
	stop      map[int]chan struct{}
	cancelled map[int]bool
}

// NewInProcessWorker returns a Worker that executes jobs in this
// process with the given parallelism (0 = GOMAXPROCS). It is the
// zero-overhead backend for single-machine runs and tests.
func NewInProcessWorker(name string, workers int) Worker {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &inProcessWorker{
		name:      name,
		workers:   workers,
		stop:      make(map[int]chan struct{}),
		cancelled: make(map[int]bool),
	}
}

func (w *inProcessWorker) Name() string { return w.name }

// Capacity reports the worker's configured parallelism.
func (w *inProcessWorker) Capacity() int { return w.workers }

func (w *inProcessWorker) Run(job *Job) ([]sim.Partial, error) {
	j := *job
	j.Options.Workers = w.workers
	st := make(chan struct{})
	w.mu.Lock()
	if w.cancelled[j.ID] {
		delete(w.cancelled, j.ID)
		w.mu.Unlock()
		return nil, ErrJobCancelled
	}
	w.stop[j.ID] = st
	w.mu.Unlock()
	parts, err := runJob(&j, st)
	w.mu.Lock()
	delete(w.stop, j.ID)
	w.mu.Unlock()
	if errors.Is(err, sim.ErrStopped) {
		return nil, ErrJobCancelled
	}
	if err != nil {
		return nil, &JobError{ID: job.ID, Msg: err.Error()}
	}
	return parts, nil
}

// CancelJob abandons the job with the given id: the in-flight run is
// stopped, or — when the cancel races ahead of Run — a tombstone makes
// the upcoming Run return ErrJobCancelled without executing.
func (w *inProcessWorker) CancelJob(id int) {
	w.mu.Lock()
	if st, ok := w.stop[id]; ok {
		close(st)
		delete(w.stop, id)
	} else {
		w.cancelled[id] = true
	}
	w.mu.Unlock()
}

func (w *inProcessWorker) Close() error { return nil }
