package shard

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"herald/internal/sim"
)

// flakyWorker dies (returns a transport-style error) after completing
// failAfter jobs, closing died (when set) as it goes down.
type flakyWorker struct {
	inner     Worker
	failAfter int
	ran       int
	died      chan struct{}
}

func (w *flakyWorker) Name() string { return "flaky" }
func (w *flakyWorker) Run(job *Job) ([]sim.Partial, error) {
	if w.ran >= w.failAfter {
		if w.died != nil {
			close(w.died)
		}
		return nil, errors.New("connection reset by peer")
	}
	w.ran++
	return w.inner.Run(job)
}
func (w *flakyWorker) Close() error { return nil }

// gatedWorker delays its first job until gate closes, pinning the
// order of events in fault tests.
type gatedWorker struct {
	inner Worker
	gate  <-chan struct{}
}

func (w *gatedWorker) Name() string { return w.inner.Name() }
func (w *gatedWorker) Run(job *Job) ([]sim.Partial, error) {
	<-w.gate
	return w.inner.Run(job)
}
func (w *gatedWorker) Close() error { return w.inner.Close() }

// TestKilledWorkerReassigned kills a worker mid-run and checks the
// survivors finish the run with a byte-identical Summary.
func TestKilledWorkerReassigned(t *testing.T) {
	p := testParams(sim.Conventional)
	o := testOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	died := make(chan struct{})
	got, st, err := RunStats(Config{
		Params: p, Options: o, Shards: 8,
		Workers: []Worker{
			&flakyWorker{inner: NewInProcessWorker("w0", 1), failAfter: 0, died: died},
			&gatedWorker{inner: NewInProcessWorker("w1", 1), gate: died},
		},
		Log: &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.WorkerFailures != 1 {
		t.Errorf("worker failures = %d, want 1", st.WorkerFailures)
	}
	if !strings.Contains(log.String(), "reassigned") {
		t.Errorf("log does not mention reassignment:\n%s", log.String())
	}
	if string(summaryBytes(t, got)) != string(summaryBytes(t, base)) {
		t.Error("summary diverged after worker death")
	}
}

// TestAllWorkersDead checks the coordinator reports failure (instead
// of hanging or fabricating results) when every worker dies.
func TestAllWorkersDead(t *testing.T) {
	p := testParams(sim.Conventional)
	o := testOptions()
	_, st, err := RunStats(Config{
		Params: p, Options: o, Shards: 8,
		Workers: []Worker{
			&flakyWorker{inner: NewInProcessWorker("w0", 1), failAfter: 1},
			&flakyWorker{inner: NewInProcessWorker("w1", 1), failAfter: 2},
		},
	})
	if err == nil {
		t.Fatal("expected error when all workers die")
	}
	if st.Computed != 3 {
		t.Errorf("computed %d shards before dying, want 3", st.Computed)
	}
}

// TestKilledProcessWorkerReassigned kills a real worker process with
// SIGKILL mid-run; the surviving process must absorb its shards and
// the Summary must stay byte-identical.
func TestKilledProcessWorkerReassigned(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	p := testParams(sim.Conventional)
	o := testOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	workers, err := SpawnLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	// Kill the first worker before the run starts: its first Run fails
	// like a mid-run death and its shards are reassigned.
	if err := workers[0].(*processWorker).Kill(); err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	got, st, err := RunStats(Config{Params: p, Options: o, Shards: 6, Workers: workers, Log: &log})
	if err != nil {
		t.Fatalf("%v (log: %s)", err, log.String())
	}
	if st.WorkerFailures != 1 {
		t.Errorf("worker failures = %d, want 1 (log: %s)", st.WorkerFailures, log.String())
	}
	if string(summaryBytes(t, got)) != string(summaryBytes(t, base)) {
		t.Error("summary diverged after process kill")
	}
}

// duplicatingTransport replays every result message it delivers: the
// duplicate arrives as a stray while the worker waits for its next
// job's answer, exercising the exactly-once merge.
type duplicatingTransport struct {
	Transport
	replay []*Message
}

func (d *duplicatingTransport) Recv() (*Message, error) {
	if len(d.replay) > 0 {
		m := d.replay[0]
		d.replay = d.replay[1:]
		return m, nil
	}
	m, err := d.Transport.Recv()
	if err != nil {
		return nil, err
	}
	if m.Type == MsgResult {
		d.replay = append(d.replay, m)
	}
	return m, nil
}

// TestDuplicateResultIgnored feeds every shard result twice; the
// duplicates must be dropped, counted, and the Summary byte-identical.
func TestDuplicateResultIgnored(t *testing.T) {
	p := testParams(sim.DualParity)
	o := testOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}

	server, client := pipeTransports()
	go func() { _ = Serve(server) }()
	w := NewRemoteWorker("dup", &duplicatingTransport{Transport: client}, 1)
	defer w.Close()

	var log bytes.Buffer
	got, st, err := RunStats(Config{Params: p, Options: o, Shards: 5, Workers: []Worker{w}, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	if st.DuplicateResults == 0 {
		t.Errorf("expected dropped duplicates, got none (log: %s)", log.String())
	}
	if string(summaryBytes(t, got)) != string(summaryBytes(t, base)) {
		t.Error("summary diverged under duplicate deliveries")
	}
}

// corruptWorker returns partials with a wrong seed once, then behaves.
type corruptWorker struct {
	inner  Worker
	poison bool
}

func (w *corruptWorker) Name() string { return "corrupt" }
func (w *corruptWorker) Run(job *Job) ([]sim.Partial, error) {
	parts, err := w.inner.Run(job)
	if err == nil && !w.poison {
		w.poison = true
		parts = append([]sim.Partial(nil), parts...)
		parts[0].Seed++
	}
	return parts, err
}
func (w *corruptWorker) Close() error { return nil }

// TestMalformedResultRecomputed checks a result that fails validation
// is dropped and its shard recomputed rather than merged or fatal.
func TestMalformedResultRecomputed(t *testing.T) {
	p := testParams(sim.Conventional)
	o := testOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	got, st, err := RunStats(Config{
		Params: p, Options: o, Shards: 4,
		Workers: []Worker{&corruptWorker{inner: NewInProcessWorker("w", 1)}},
		Log:     &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "malformed") {
		t.Errorf("log does not mention the malformed result:\n%s", log.String())
	}
	if st.WorkerFailures != 1 {
		t.Errorf("failures = %d, want 1", st.WorkerFailures)
	}
	if string(summaryBytes(t, got)) != string(summaryBytes(t, base)) {
		t.Error("summary diverged after malformed result")
	}
}

// TestCheckpointResume interrupts a run after some shards complete and
// resumes from the checkpoint: the resumed run must only compute the
// remainder and end byte-identical.
func TestCheckpointResume(t *testing.T) {
	p := testParams(sim.AutoFailover)
	o := testOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	cpPath := filepath.Join(t.TempDir(), "run.ckpt")

	// First attempt: the only worker dies after 3 of 8 shards, so the
	// run fails — but the 3 shards are checkpointed.
	_, st, err := RunStats(Config{
		Params: p, Options: o, Shards: 8, Checkpoint: cpPath,
		Workers: []Worker{&flakyWorker{inner: NewInProcessWorker("w", 1), failAfter: 3}},
	})
	if err == nil {
		t.Fatal("expected first attempt to fail")
	}
	if st.Computed != 3 {
		t.Fatalf("first attempt computed %d shards, want 3", st.Computed)
	}

	// Resume with a healthy worker: only the remaining 5 recompute.
	got, st, err := RunStats(Config{
		Params: p, Options: o, Shards: 8, Checkpoint: cpPath,
		Workers: []Worker{NewInProcessWorker("w", 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.FromCheckpoint != 3 || st.Computed != 5 {
		t.Errorf("resume restored %d / computed %d, want 3 / 5", st.FromCheckpoint, st.Computed)
	}
	if string(summaryBytes(t, got)) != string(summaryBytes(t, base)) {
		t.Error("resumed summary diverged from single-process baseline")
	}
}

// TestCheckpointShortWrite tears the checkpoint mid-record (a crash
// during an append) and checks resume drops the torn tail, recomputes
// the torn shard, and still matches the baseline.
func TestCheckpointShortWrite(t *testing.T) {
	p := testParams(sim.Conventional)
	o := testOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	cpPath := filepath.Join(t.TempDir(), "run.ckpt")

	// Complete a full run to get a valid checkpoint of all 6 shards.
	if _, _, err := RunStats(Config{
		Params: p, Options: o, Shards: 6, Checkpoint: cpPath,
		Workers: []Worker{NewInProcessWorker("w", 1)},
	}); err != nil {
		t.Fatal(err)
	}

	// Tear the file mid-way through the final record.
	raw, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	if len(lines) != 7 { // header + 6 shards
		t.Fatalf("checkpoint has %d lines, want 7", len(lines))
	}
	last := lines[len(lines)-1]
	torn := append(bytes.Join(lines[:len(lines)-1], []byte("\n")), '\n')
	torn = append(torn, last[:len(last)/2]...) // short write: half a record, no newline
	if err := os.WriteFile(cpPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	got, st, err := RunStats(Config{
		Params: p, Options: o, Shards: 6, Checkpoint: cpPath,
		Workers: []Worker{NewInProcessWorker("w", 1)},
		Log:     &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "torn") {
		t.Errorf("log does not mention the torn record:\n%s", log.String())
	}
	if st.FromCheckpoint != 5 || st.Computed != 1 {
		t.Errorf("restored %d / computed %d, want 5 / 1", st.FromCheckpoint, st.Computed)
	}
	if string(summaryBytes(t, got)) != string(summaryBytes(t, base)) {
		t.Error("summary diverged after torn checkpoint")
	}
}

// TestMalformedResultsBounded checks a lone worker with a
// deterministic defect cannot spin the coordinator forever: after the
// per-shard cap the run fails with a diagnostic.
func TestMalformedResultsBounded(t *testing.T) {
	p := testParams(sim.Conventional)
	o := testOptions()
	_, _, err := RunStats(Config{
		Params: p, Options: o, Shards: 2,
		Workers: []Worker{&alwaysCorruptWorker{inner: NewInProcessWorker("w", 1)}},
	})
	if err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("expected malformed-results abort, got %v", err)
	}
}

// alwaysCorruptWorker poisons every result it returns.
type alwaysCorruptWorker struct{ inner Worker }

func (w *alwaysCorruptWorker) Name() string { return "always-corrupt" }
func (w *alwaysCorruptWorker) Run(job *Job) ([]sim.Partial, error) {
	parts, err := w.inner.Run(job)
	if err == nil {
		parts = append([]sim.Partial(nil), parts...)
		parts[0].MissionTime++
	}
	return parts, err
}
func (w *alwaysCorruptWorker) Close() error { return nil }

// TestCheckpointResumeDifferentWorkers pins that the fingerprint
// ignores the schedule-only Workers option: a run checkpointed under
// one worker count resumes under another.
func TestCheckpointResumeDifferentWorkers(t *testing.T) {
	p := testParams(sim.Conventional)
	o := testOptions()
	cpPath := filepath.Join(t.TempDir(), "run.ckpt")
	if _, _, err := RunStats(Config{
		Params: p, Options: o, Shards: 4, Checkpoint: cpPath,
		Workers: []Worker{NewInProcessWorker("w", 1)},
	}); err != nil {
		t.Fatal(err)
	}
	o2 := o
	o2.Workers = 7
	_, st, err := RunStats(Config{
		Params: p, Options: o2, Shards: 4, Checkpoint: cpPath,
		Workers: []Worker{NewInProcessWorker("w", 1)},
	})
	if err != nil {
		t.Fatalf("resume with different Workers refused: %v", err)
	}
	if st.FromCheckpoint != 4 {
		t.Errorf("restored %d shards, want 4", st.FromCheckpoint)
	}
}

// TestSummarizeHistogramMismatch checks mismatched histogram binning
// across partials surfaces as an error, not a panic.
func TestSummarizeHistogramMismatch(t *testing.T) {
	p := testParams(sim.Conventional)
	o := sim.Options{Iterations: 200, MissionTime: 1e5, Seed: 4, Workers: 1, HistogramBins: 8}
	a, err := sim.RunRange(p, o, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	o2 := o
	o2.HistogramMaxHours = 777
	b, err := sim.RunRange(p, o2, 64, o.Iterations)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Summarize(o, append(a, b...)); err == nil {
		t.Error("mismatched histogram binning accepted")
	}
}

// TestCheckpointFingerprintMismatch ensures a checkpoint from a
// different configuration is refused, not silently clobbered.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	p := testParams(sim.Conventional)
	o := testOptions()
	cpPath := filepath.Join(t.TempDir(), "run.ckpt")
	if _, _, err := RunStats(Config{
		Params: p, Options: o, Shards: 4, Checkpoint: cpPath,
		Workers: []Worker{NewInProcessWorker("w", 1)},
	}); err != nil {
		t.Fatal(err)
	}
	o2 := o
	o2.Seed++
	_, _, err := RunStats(Config{
		Params: p, Options: o2, Shards: 4, Checkpoint: cpPath,
		Workers: []Worker{NewInProcessWorker("w", 1)},
	})
	if err == nil || !strings.Contains(err.Error(), "different run") {
		t.Fatalf("expected fingerprint mismatch error, got %v", err)
	}
}

// TestSummarizeExactlyOnce pins the merge layer itself: duplicated,
// overlapping or missing partials must be rejected.
func TestSummarizeExactlyOnce(t *testing.T) {
	p := testParams(sim.Conventional)
	o := sim.Options{Iterations: 500, MissionTime: 1e5, Seed: 9, Workers: 2}
	parts, err := sim.RunRange(p, o, 0, o.Iterations)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Summarize(o, parts); err != nil {
		t.Fatalf("valid partials rejected: %v", err)
	}
	dup := append(append([]sim.Partial(nil), parts...), parts[0])
	if _, err := sim.Summarize(o, dup); err == nil {
		t.Error("duplicate partial accepted")
	}
	if _, err := sim.Summarize(o, parts[1:]); err == nil {
		t.Error("gap accepted")
	}
	bad := append([]sim.Partial(nil), parts...)
	bad[2].Seed++
	if _, err := sim.Summarize(o, bad); err == nil {
		t.Error("foreign-seed partial accepted")
	}
}

// pipeTransports returns two in-memory transports wired back-to-back.
func pipeTransports() (server, client Transport) {
	cr, sw := newChanPipe()
	sr, cw := newChanPipe()
	server = NewTransport(struct {
		*chanReader
		*chanWriter
	}{sr, sw})
	client = NewTransport(struct {
		*chanReader
		*chanWriter
	}{cr, cw})
	return server, client
}

// chanPipe is a tiny in-memory byte pipe (io.Pipe without the
// half-close subtleties).
type chanReader struct {
	ch  chan []byte
	buf []byte
}
type chanWriter struct{ ch chan []byte }

func newChanPipe() (*chanReader, *chanWriter) {
	ch := make(chan []byte, 64)
	return &chanReader{ch: ch}, &chanWriter{ch: ch}
}

func (r *chanReader) Read(p []byte) (int, error) {
	for len(r.buf) == 0 {
		b, ok := <-r.ch
		if !ok {
			return 0, fmt.Errorf("pipe closed")
		}
		r.buf = b
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}

func (w *chanWriter) Write(p []byte) (int, error) {
	b := append([]byte(nil), p...)
	w.ch <- b
	return len(p), nil
}
