package shard

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"
)

// RunProgress is one observation of a run's advance, delivered to the
// progress callback passed to Pool.Submit. For adaptive runs it tracks
// the stopping scan's folded prefix (the iterations whose contribution
// to the confidence interval is already proven); for fixed runs it
// tracks banked iterations. The final observation carries the merged
// summary's numbers.
type RunProgress struct {
	// Iterations banked (fixed runs) or folded into the stopping scan
	// (adaptive runs). Monotone non-decreasing across observations.
	Iterations int
	// Cap is the run's iteration ceiling (Iterations for fixed runs,
	// IterationCap for adaptive ones).
	Cap int
	// HalfWidth is the scan's current effective half-width (adaptive
	// runs; +Inf while the rule's safeguards are unmet) or the final
	// summary's half-width. +Inf for non-final fixed-run observations.
	HalfWidth float64
	// Converged is only meaningful on the final observation.
	Converged bool
	// Waves counts handout waves opened so far.
	Waves int
	// Final marks the last observation of the run: the run finished and
	// its Ticket is resolvable.
	Final bool
}

// Pool is a persistent shard-execution pool: the dispatcher of
// RunPipeline kept alive across runs, so a long-lived process (a
// simulation server) can submit runs as they arrive and share one
// worker set — local processes, remote dials, elastic joiners — among
// all of them. Runs are prioritized in submission order exactly as
// RunPipeline prioritizes its specs; every run's Summary is
// bit-identical to executing it alone.
//
// The zero value is not usable; construct with NewPool.
type Pool struct {
	d         *dispatcher
	intake    sync.WaitGroup
	joined    []Worker // owned by the intake goroutine until it exits
	closeOnce sync.Once
}

// PoolOptions tunes a persistent pool beyond its worker set.
type PoolOptions struct {
	// LocalFallback, when positive, arms degraded-mode execution: if
	// the pool ever drains completely (every worker dead or departed),
	// a bounded in-process worker with this parallelism joins so parked
	// runs keep progressing instead of waiting for a rejoiner the
	// deadline may outlast. The fallback stays in the pool once armed;
	// rejoining supervised workers simply take shards alongside it.
	LocalFallback int
}

// NewPool builds a persistent pool over the initial workers plus an
// optional elastic source (see RunPipelineSource for the source
// contract). The initial workers remain the caller's to close — after
// Close returns; workers delivered by source are closed by the pool.
// Wave-sizing weights are snapshotted from the initial workers.
func NewPool(workers []Worker, source <-chan Worker, logw io.Writer) (*Pool, error) {
	return NewPoolOptions(workers, source, logw, PoolOptions{})
}

// NewPoolOptions is NewPool with explicit tuning (degraded-mode local
// fallback).
func NewPoolOptions(workers []Worker, source <-chan Worker, logw io.Writer, opts PoolOptions) (*Pool, error) {
	return newPoolOptions(workers, source, logw, true, opts)
}

func newPool(workers []Worker, source <-chan Worker, logw io.Writer, persistent bool) (*Pool, error) {
	return newPoolOptions(workers, source, logw, persistent, PoolOptions{})
}

func newPoolOptions(workers []Worker, source <-chan Worker, logw io.Writer, persistent bool, opts PoolOptions) (*Pool, error) {
	if len(workers) == 0 && source == nil && opts.LocalFallback <= 0 {
		return nil, fmt.Errorf("shard: no workers")
	}
	if logw == nil {
		logw = io.Discard
	}
	d := &dispatcher{
		logw:       logw,
		start:      time.Now(),
		persistent: persistent,
		jobIndex:   make(map[int]jobKey),
		assigned:   make(map[int]*assignment),
		deadWorker: make(map[Worker]bool),
		sourceOpen: source != nil,
		done:       make(chan struct{}),
	}
	if persistent && opts.LocalFallback > 0 {
		d.fallback = NewInProcessWorker("local-fallback", opts.LocalFallback)
	}
	d.cond = sync.NewCond(&d.mu)
	d.caps = poolCapacities(workers)
	if len(d.caps) == 0 {
		d.caps = []int{1}
	}
	p := &Pool{d: d}
	for _, w := range workers {
		d.addWorker(w)
	}
	// The intake goroutine folds joining workers into the pool until
	// the source closes or the pool unwinds. It owns p.joined until it
	// exits (and it exits before Close's wg.Wait), so the close loop
	// reads it race-free.
	if source != nil {
		p.intake.Add(1)
		go func() {
			defer p.intake.Done()
			for {
				select {
				case w, ok := <-source:
					if !ok {
						d.mu.Lock()
						d.sourceOpen = false
						if d.live == 0 && d.fallback != nil && !d.fallbackArmed {
							d.armFallbackLocked()
						}
						dead := d.live == 0
						if dead && d.persistent && !d.closing {
							d.failLocked(fmt.Errorf("shard: no live workers remain"))
						}
						d.mu.Unlock()
						if dead && !d.persistent {
							d.signalDone()
						}
						return
					}
					p.joined = append(p.joined, w)
					d.addWorker(w)
				case <-d.done:
					d.mu.Lock()
					d.sourceOpen = false
					d.mu.Unlock()
					return
				}
			}
		}()
	}
	return p, nil
}

// Ticket is a handle on one submitted run.
type Ticket struct {
	d *dispatcher
	r *runState
}

// Submit validates, partitions and enqueues one run on the pool.
// progress, when non-nil, observes the run's advance; it is invoked
// with the pool's dispatch lock held and must return quickly without
// blocking or calling back into the pool (hand observations to a
// channel or buffer). Submission order is the pipelining priority.
func (p *Pool) Submit(spec RunSpec, progress func(RunProgress)) (*Ticket, error) {
	return p.submit(&spec, progress)
}

// SubmitCtx is Submit bound to a context: when ctx ends before the run
// does, the run is aborted — queued shards dropped, in-flight jobs
// cancelled through the protocol's cancel path — and the ticket
// resolves with an error wrapping ctx.Err(). This is how a client
// disconnect or a per-request deadline reaches the shard wire. The
// pool itself stays usable.
func (p *Pool) SubmitCtx(ctx context.Context, spec RunSpec, progress func(RunProgress)) (*Ticket, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("shard: run cancelled before submit: %w", err)
	}
	t, err := p.submit(&spec, progress)
	if err != nil {
		return nil, err
	}
	go func() {
		select {
		case <-ctx.Done():
			p.d.abortRun(t.r, fmt.Errorf("shard: run cancelled: %w", context.Cause(ctx)))
		case <-t.r.notify:
		case <-p.d.done:
		}
	}()
	return t, nil
}

func (p *Pool) submit(spec *RunSpec, progress func(RunProgress)) (*Ticket, error) {
	d := p.d
	d.mu.Lock()
	if err := p.submitErrLocked(); err != nil {
		d.mu.Unlock()
		return nil, err
	}
	caps := d.caps
	idx := d.nextIdx
	d.nextIdx++
	d.mu.Unlock()

	// Validation, partitioning and checkpoint restore run outside the
	// dispatch lock (they may read files).
	r, err := newRunState(idx, spec, caps, d.logw)
	if err != nil {
		return nil, err
	}
	r.progress = progress

	d.mu.Lock()
	if err := p.submitErrLocked(); err != nil {
		d.mu.Unlock()
		r.cp.close()
		return nil, err
	}
	if d.persistent {
		d.compactLocked()
		if d.live == 0 {
			// Submitting to an empty pool (drained, or elastic and not yet
			// populated): degraded mode starts now rather than parking the
			// new run until a joiner happens by. No-op without a fallback.
			d.armFallbackLocked()
		}
	}
	// Insert in index order: concurrent submits may reach this point
	// out of turn, and the scan order is the priority order.
	pos := len(d.runs)
	for pos > 0 && d.runs[pos-1].idx > r.idx {
		pos--
	}
	d.runs = append(d.runs, nil)
	copy(d.runs[pos+1:], d.runs[pos:])
	d.runs[pos] = r
	// A run fully restored from its checkpoint finishes before any
	// worker is consulted.
	d.advanceLocked(r)
	d.cond.Broadcast()
	d.mu.Unlock()
	return &Ticket{d: d, r: r}, nil
}

// submitErrLocked reports why the pool can take no more runs, if it
// cannot. Callers hold d.mu.
func (p *Pool) submitErrLocked() error {
	d := p.d
	if d.closing {
		return fmt.Errorf("shard: pool closed")
	}
	if d.fatal != nil {
		return fmt.Errorf("shard: pool dead: %w", d.fatal)
	}
	return nil
}

// compactLocked drops finished runs from the scan list (their tickets
// hold the results) so a long-lived pool's dispatch scan stays as short
// as its active run set. Callers hold d.mu.
func (d *dispatcher) compactLocked() {
	kept := d.runs[:0]
	for _, r := range d.runs {
		if r.finished {
			for _, jid := range r.jobIDs {
				delete(d.jobIndex, jid)
			}
			continue
		}
		kept = append(kept, r)
	}
	for i := len(kept); i < len(d.runs); i++ {
		d.runs[i] = nil
	}
	d.runs = kept
}

// seal marks a one-shot pipeline complete on the submission side: serve
// goroutines may retire once every submitted run finished.
func (p *Pool) seal() {
	p.d.mu.Lock()
	p.d.sealed = true
	allFinished := true
	for _, r := range p.d.runs {
		if !r.finished {
			allFinished = false
			break
		}
	}
	if allFinished {
		p.d.mu.Unlock()
		p.d.signalDone()
		p.d.cond.Broadcast()
		return
	}
	p.d.mu.Unlock()
	p.d.cond.Broadcast()
}

// Err reports the pool's fatal condition, nil while it is usable.
func (p *Pool) Err() error {
	p.d.mu.Lock()
	defer p.d.mu.Unlock()
	return p.d.fatal
}

// Cancel aborts the run if it has not finished: queued shards are
// dropped, in-flight jobs are cancelled on their workers, and Wait
// returns an error. Cancelling a finished run is a no-op. The pool
// stays usable.
func (t *Ticket) Cancel() {
	t.d.abortRun(t.r, fmt.Errorf("shard: run cancelled by caller"))
}

// Wait blocks until the run reaches a terminal state and returns its
// result. A nil error means the run finished and Summary is its merged
// result, bit-identical to running it alone. Wait is safe to call from
// several goroutines.
func (t *Ticket) Wait() (RunResult, error) {
	select {
	case <-t.r.notify:
	case <-t.d.done:
	}
	d := t.d
	d.mu.Lock()
	defer d.mu.Unlock()
	r := t.r
	res := RunResult{Summary: r.summary, Stats: r.stats, Wall: r.wall}
	switch {
	case r.aborted != nil:
		return res, r.aborted
	case r.finished:
		return res, nil
	case d.fatal != nil:
		return res, d.fatal
	case d.closing:
		return res, fmt.Errorf("shard: pool closed")
	default:
		return res, fmt.Errorf("shard: %d of %d shards unassigned and no live workers remain",
			len(r.shards)-len(r.done), len(r.shards))
	}
}

// PoolHealth is a point-in-time snapshot of a pool's capacity to make
// progress, for readiness probes.
type PoolHealth struct {
	// LiveSlots counts serve goroutines currently claiming work (a
	// pipelined worker contributes its depth).
	LiveSlots int
	// SourceOpen reports that an elastic worker source may still
	// deliver joiners (a drained pool parks runs instead of failing).
	SourceOpen bool
	// FallbackArmed reports that the bounded in-process fallback worker
	// joined the pool after a drain (degraded mode).
	FallbackArmed bool
	// ActiveRuns counts submitted runs not yet finished.
	ActiveRuns int
	// Err is the pool's fatal condition, nil while it is usable.
	Err error
}

// Ready reports whether the pool can currently take a run and advance
// it: it is alive and has (or can still gain) execution capacity.
func (h PoolHealth) Ready() bool {
	return h.Err == nil && (h.LiveSlots > 0 || h.SourceOpen)
}

// Health snapshots the pool's liveness and capacity.
func (p *Pool) Health() PoolHealth {
	d := p.d
	d.mu.Lock()
	defer d.mu.Unlock()
	h := PoolHealth{
		LiveSlots:     d.live,
		SourceOpen:    d.sourceOpen,
		FallbackArmed: d.fallbackArmed,
		Err:           d.fatal,
	}
	if d.closing && h.Err == nil {
		h.Err = fmt.Errorf("shard: pool closed")
	}
	for _, r := range d.runs {
		if !r.finished {
			h.ActiveRuns++
		}
	}
	return h
}

// Close shuts the pool down: no further submissions are accepted,
// in-flight jobs are cancelled (best-effort), serve goroutines retire,
// joined workers are closed and remaining checkpoints released. Runs
// that had not finished resolve their tickets with an error. Close is
// idempotent; the initial workers are the caller's to close afterwards.
func (p *Pool) Close() error {
	p.closeOnce.Do(func() {
		d := p.d
		d.mu.Lock()
		d.closing = true
		for jid, a := range d.assigned {
			if c, ok := a.w.(JobCanceler); ok {
				go c.CancelJob(jid)
			}
		}
		d.mu.Unlock()
		d.signalDone()
		d.cond.Broadcast()
		p.intake.Wait()
		d.wg.Wait()
		for _, w := range p.joined {
			w.Close()
		}
		d.closeCheckpoints()
	})
	return nil
}
