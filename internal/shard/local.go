package shard

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"

	"herald/internal/sim"
)

// defaultProcs returns the local worker-process count: one per core.
func defaultProcs() int { return runtime.GOMAXPROCS(0) }

// WorkerEnv is the environment variable that turns a process into a
// shard worker: any main that calls MaybeWorker first thing becomes
// spawnable by SpawnLocal.
const WorkerEnv = "HERALD_SHARD_WORKER"

// MaybeWorker checks whether this process was spawned as a local shard
// worker (WorkerEnv set) and, if so, serves the shard protocol on
// stdin/stdout until the coordinator closes the pipe, then exits. Call
// it at the top of main() in any binary that spawns local workers;
// it returns immediately in ordinary processes.
func MaybeWorker() {
	if os.Getenv(WorkerEnv) == "" {
		return
	}
	if err := ServeStream(stdio{}); err != nil {
		fmt.Fprintln(os.Stderr, "shard worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// stdio adapts the process's stdin/stdout into one stream.
type stdio struct{}

func (stdio) Read(p []byte) (int, error)  { return os.Stdin.Read(p) }
func (stdio) Write(p []byte) (int, error) { return os.Stdout.Write(p) }

// processWorker is a sibling process spawned by SpawnLocal, driven
// through its stdio pipes.
type processWorker struct {
	*remoteWorker
	cmd   *exec.Cmd
	stdin io.WriteCloser
}

// Close shuts the worker process down by closing its stdin (the
// worker's Serve loop exits on EOF) and waiting for it; a process that
// does not exit cleanly is killed.
func (w *processWorker) Close() error {
	w.stdin.Close()
	w.remoteWorker.Close()
	if err := w.cmd.Wait(); err != nil {
		_ = w.cmd.Process.Kill()
		return err
	}
	return nil
}

// Kill terminates the worker process immediately. It exists for
// fault-injection tests.
func (w *processWorker) Kill() error {
	return w.cmd.Process.Kill()
}

// SpawnLocal starts n copies of the current executable as
// single-threaded shard worker processes (the executable's main must
// call MaybeWorker); n < 1 spawns one per core. Each worker runs its
// jobs with Workers=1, so n processes occupy n cores; close every
// returned worker when done.
func SpawnLocal(n int) ([]Worker, error) {
	if n < 1 {
		n = defaultProcs()
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("shard: cannot locate executable: %w", err)
	}
	workers := make([]Worker, 0, n)
	fail := func(err error) ([]Worker, error) {
		for _, w := range workers {
			w.Close()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), WorkerEnv+"=1")
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return fail(err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return fail(err)
		}
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("shard: spawn worker: %w", err))
		}
		t := NewTransport(struct {
			io.Reader
			io.Writer
		}{stdout, stdin})
		workers = append(workers, &processWorker{
			remoteWorker: newRemoteWorker(fmt.Sprintf("proc:%d", cmd.Process.Pid), t, 1),
			cmd:          cmd,
			stdin:        stdin,
		})
	}
	return workers, nil
}

// RunLocal is the one-call local sharding entry point: it spawns
// procs sibling worker processes (default: GOMAXPROCS), partitions the
// run into shards pieces (default: one per worker), executes, and
// cleans the workers up. checkpoint may be empty.
func RunLocal(p sim.ArrayParams, o sim.Options, shards, procs int, checkpoint string, logw io.Writer) (sim.Summary, error) {
	if procs < 1 {
		procs = defaultProcs()
	}
	workers, err := SpawnLocal(procs)
	if err != nil {
		return sim.Summary{}, err
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	return Run(Config{
		Params:     p,
		Options:    o,
		Shards:     shards,
		Workers:    workers,
		Checkpoint: checkpoint,
		Log:        logw,
	})
}
