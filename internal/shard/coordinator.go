package shard

import (
	"fmt"
	"io"
	"sync"

	"herald/internal/sim"
)

// Config describes one distributed run.
type Config struct {
	// Params and Options configure the simulation exactly as sim.Run
	// would receive them.
	Params  sim.ArrayParams
	Options sim.Options
	// Shards is the number of contiguous iteration shards to
	// partition the run into (default: one per worker). Shard
	// boundaries always fall on the canonical cell boundaries, and the
	// count is capped at the cell count, so over-asking is safe.
	Shards int
	// Workers execute the shards; at least one is required. Use
	// SpawnLocal for sibling processes, Dial for remote TCP workers,
	// NewInProcessWorker for this process.
	Workers []Worker
	// Checkpoint, when non-empty, is the path of the resume log:
	// completed shards are appended as they finish, and a rerun with
	// the same path and configuration skips them.
	Checkpoint string
	// Log receives progress warnings (torn checkpoints, dead workers,
	// duplicate results). Nil discards them.
	Log io.Writer
}

// Stats reports how a distributed run unfolded, for observability and
// fault-injection tests.
type Stats struct {
	// Shards is the partition size of the run.
	Shards int
	// FromCheckpoint counts shards restored from the resume log
	// without recomputation.
	FromCheckpoint int
	// Computed counts shards executed by workers this run.
	Computed int
	// DuplicateResults counts shard results that arrived for an
	// already-completed shard and were dropped (exactly-once merging).
	DuplicateResults int
	// WorkerFailures counts workers that died mid-run and had their
	// shard reassigned.
	WorkerFailures int
}

// Partition returns the contiguous shard ranges of a run of n
// iterations split shards ways. Boundaries fall on the canonical cell
// boundaries of internal/sim, so every shard's partials are exactly
// the cells a single-process run would produce; the count is capped at
// the cell count.
func Partition(n, shards int) []sim.Range {
	cells := sim.Cells(n)
	if shards < 1 {
		shards = 1
	}
	if shards > len(cells) {
		shards = len(cells)
	}
	out := make([]sim.Range, 0, shards)
	for s := 0; s < shards; s++ {
		lo := s * len(cells) / shards
		hi := (s + 1) * len(cells) / shards
		if lo == hi {
			continue
		}
		out = append(out, sim.Range{Start: cells[lo].Start, End: cells[hi-1].End})
	}
	return out
}

// Run executes the distributed run and returns its summary.
func Run(cfg Config) (sim.Summary, error) {
	s, _, err := RunStats(cfg)
	return s, err
}

// RunStats is Run with the run's fault/resume statistics.
func RunStats(cfg Config) (sim.Summary, Stats, error) {
	var st Stats
	if err := cfg.Params.Validate(); err != nil {
		return sim.Summary{}, st, err
	}
	if err := cfg.Options.Validate(); err != nil {
		return sim.Summary{}, st, err
	}
	if len(cfg.Workers) == 0 {
		return sim.Summary{}, st, fmt.Errorf("shard: no workers")
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}
	wire, err := EncodeParams(cfg.Params)
	if err != nil {
		return sim.Summary{}, st, err
	}
	shardCount := cfg.Shards
	if shardCount < 1 {
		shardCount = len(cfg.Workers)
	}
	shards := Partition(cfg.Options.Iterations, shardCount)
	st.Shards = len(shards)

	// Checkpoint: restore completed shards, open the append log.
	var done map[int][]sim.Partial
	var cp *checkpoint
	if cfg.Checkpoint != "" {
		fp := Fingerprint(wire, cfg.Options, len(shards))
		done, cp, err = openCheckpoint(cfg.Checkpoint, fp, shards, cfg.Options.Seed, cfg.Options.MissionTime, logw)
		if err != nil {
			return sim.Summary{}, st, err
		}
		defer cp.close()
		st.FromCheckpoint = len(done)
	}
	if done == nil {
		done = make(map[int][]sim.Partial)
	}

	d := &dispatcher{
		shards:  shards,
		seed:    cfg.Options.Seed,
		mission: cfg.Options.MissionTime,
		done:    done,
		cp:      cp,
		logw:    logw,
	}
	d.cond = sync.NewCond(&d.mu)
	for id := range shards {
		if _, ok := done[id]; !ok {
			d.queue = append(d.queue, id)
		}
	}

	var wg sync.WaitGroup
	for _, w := range cfg.Workers {
		if sb, ok := w.(strayBanker); ok {
			sb.setStray(d.bankStray)
		}
		wg.Add(1)
		go func(w Worker) {
			defer wg.Done()
			d.serve(w, wire, cfg.Options)
		}(w)
	}
	wg.Wait()

	st.Computed = d.computed
	st.DuplicateResults = d.dups
	st.WorkerFailures = d.failures
	if d.fatal != nil {
		return sim.Summary{}, st, d.fatal
	}
	if len(d.done) != len(shards) {
		return sim.Summary{}, st, fmt.Errorf("shard: %d of %d shards unassigned and no live workers remain",
			len(shards)-len(d.done), len(shards))
	}

	parts := make([]sim.Partial, 0, len(shards))
	for id := range shards {
		parts = append(parts, d.done[id]...)
	}
	summary, err := sim.Summarize(cfg.Options, parts)
	return summary, st, err
}

// dispatcher is the coordinator's shared state: the pending-shard
// queue, the completed-shard map, and the exactly-once bookkeeping.
type dispatcher struct {
	mu   sync.Mutex
	cond *sync.Cond

	shards   []sim.Range
	seed     uint64
	mission  float64
	queue    []int // pending shard ids
	inflight int

	done      map[int][]sim.Partial
	cp        *checkpoint
	logw      io.Writer
	fatal     error
	computed  int
	dups      int
	failures  int
	malformed map[int]int // per-shard malformed-result count
}

// maxMalformedPerShard bounds how often a shard's results may fail
// validation before the run is declared dead — without it, a lone
// worker with a deterministic defect (e.g. a version-skewed binary
// whose seeding changed) would recompute the same shard forever.
const maxMalformedPerShard = 3

// serve drives one worker: claim a shard, run it, bank the result;
// on worker death requeue the shard and retire.
func (d *dispatcher) serve(w Worker, wire WireParams, o sim.Options) {
	for {
		id, ok := d.claim()
		if !ok {
			return
		}
		r := d.shards[id]
		job := &Job{ID: id, Start: r.Start, End: r.End, Params: wire, Options: o}
		parts, err := w.Run(job)
		if err != nil {
			if je, isJob := err.(*JobError); isJob {
				// The worker is alive but rejected the job: rerunning
				// elsewhere would fail identically, so the run is dead.
				d.fail(id, fmt.Errorf("shard: %w", je))
				return
			}
			d.mu.Lock()
			d.failures++
			d.inflight--
			if _, alreadyDone := d.done[id]; !alreadyDone {
				d.queue = append(d.queue, id)
			}
			fmt.Fprintf(d.logw, "shard: worker %s died (%v); shard %d reassigned\n", w.Name(), err, id)
			d.cond.Broadcast()
			d.mu.Unlock()
			return
		}
		d.bank(id, parts, true)
	}
}

// claim blocks until a shard is available, all work is finished, or a
// fatal error occurred. It returns (shard id, true) on assignment.
func (d *dispatcher) claim() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.fatal != nil || len(d.done) == len(d.shards) {
			return 0, false
		}
		if len(d.queue) > 0 {
			min := 0
			for i := range d.queue {
				if d.queue[i] < d.queue[min] {
					min = i
				}
			}
			id := d.queue[min]
			d.queue = append(d.queue[:min], d.queue[min+1:]...)
			d.inflight++
			return id, true
		}
		if d.inflight == 0 {
			// Nothing queued, nothing running, not all done: every
			// other worker is gone and there is no work to steal.
			return 0, false
		}
		d.cond.Wait()
	}
}

// bank records a completed shard exactly once; duplicates are counted
// and dropped. fromRun marks results produced by this dispatcher's own
// claim (to balance the inflight counter) versus stray deliveries.
func (d *dispatcher) bank(id int, parts []sim.Partial, fromRun bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if fromRun {
		d.inflight--
	}
	if id < 0 || id >= len(d.shards) {
		fmt.Fprintf(d.logw, "shard: dropping result for unknown shard %d\n", id)
		d.cond.Broadcast()
		return
	}
	if _, dup := d.done[id]; dup {
		d.dups++
		fmt.Fprintf(d.logw, "shard: dropping duplicate result for shard %d\n", id)
		d.cond.Broadcast()
		return
	}
	r := d.shards[id]
	if !tilesRange(parts, r.Start, r.End, d.seed, d.mission) {
		// A malformed result (wrong range, seed, mission time or
		// observation count) is dropped and the shard recomputed, like
		// a worker death — up to a cap, beyond which the defect is
		// clearly deterministic and the run is dead.
		if d.malformed == nil {
			d.malformed = make(map[int]int)
		}
		d.malformed[id]++
		d.failures++
		if d.malformed[id] >= maxMalformedPerShard {
			d.failLocked(id, fmt.Errorf("shard: shard %d returned %d malformed results; aborting (worker defect?)",
				id, d.malformed[id]))
			return
		}
		fmt.Fprintf(d.logw, "shard: dropping malformed result for shard %d\n", id)
		if !d.queued(id) {
			d.queue = append(d.queue, id)
		}
		d.cond.Broadcast()
		return
	}
	d.done[id] = parts
	d.computed++
	// Remove the shard from the queue if a stray delivery beat a
	// pending reassignment to it.
	for i := range d.queue {
		if d.queue[i] == id {
			d.queue = append(d.queue[:i], d.queue[i+1:]...)
			break
		}
	}
	if err := d.cp.record(id, parts); err != nil {
		d.failLocked(id, err)
		return
	}
	d.cond.Broadcast()
}

// queued reports whether shard id is already in the pending queue.
// Callers hold d.mu.
func (d *dispatcher) queued(id int) bool {
	for _, q := range d.queue {
		if q == id {
			return true
		}
	}
	return false
}

// bankStray records a result that arrived outside the request/response
// pairing (a re-delivery or a late answer from a presumed-dead
// worker).
func (d *dispatcher) bankStray(id int, parts []sim.Partial) {
	d.bank(id, parts, false)
}

func (d *dispatcher) fail(id int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inflight--
	d.failLocked(id, err)
}

func (d *dispatcher) failLocked(id int, err error) {
	if d.fatal == nil {
		d.fatal = err
	}
	d.cond.Broadcast()
}
