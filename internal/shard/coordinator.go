package shard

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"herald/internal/sim"
)

// Config describes one distributed run.
type Config struct {
	// Params and Options configure the simulation exactly as sim.Run
	// would receive them. Adaptive options (TargetHalfWidth, MaxIters)
	// switch the coordinator to wave-based precision-targeted handout.
	Params  sim.ArrayParams
	Options sim.Options
	// Shards is the number of contiguous iteration shards to
	// partition the run into (default: one per worker). Shard
	// boundaries always fall on the canonical cell boundaries, and the
	// count is capped at the cell count, so over-asking is safe. For
	// adaptive runs it is the shard count per wave.
	Shards int
	// Workers execute the shards. Use SpawnLocal for sibling
	// processes, Dial for remote TCP workers, NewInProcessWorker for
	// this process. May be empty when WorkerSource is set.
	Workers []Worker
	// WorkerSource, when non-nil, delivers workers that join the pool
	// while the run executes (elastic execution — see ListenWorkers).
	// The run finishes with whatever workers are present; while the
	// channel is open, a run whose last worker died waits for a joiner
	// instead of failing. Workers received from the source are closed
	// by the coordinator when the run ends; Workers remain the
	// caller's to close.
	WorkerSource <-chan Worker
	// Checkpoint, when non-empty, is the path of the resume log:
	// completed shards are appended as they finish, and a rerun with
	// the same path and configuration skips them.
	Checkpoint string
	// Log receives progress warnings (torn checkpoints, dead workers,
	// duplicate results). Nil discards them.
	Log io.Writer
}

// RunSpec is one run of a pipelined multi-run execution: Config minus
// the shared worker pool.
type RunSpec struct {
	Params     sim.ArrayParams
	Options    sim.Options
	Shards     int
	Checkpoint string
}

// RunResult is one run's outcome in a pipelined execution.
type RunResult struct {
	// Summary is the run's merged result (zero when the pipeline
	// failed before the run finished).
	Summary sim.Summary
	// Stats reports how the run unfolded.
	Stats Stats
	// Wall is the run's completion offset from the pipeline start —
	// runs share the pool, so per-run spans overlap and the last run's
	// Wall is the pipeline's total.
	Wall time.Duration
}

// Stats reports how a distributed run unfolded, for observability and
// fault-injection tests.
type Stats struct {
	// Shards is the partition size of the run (for adaptive runs, the
	// full wave plan's shard count — not all of which necessarily ran).
	Shards int
	// FromCheckpoint counts shards restored from the resume log
	// without recomputation.
	FromCheckpoint int
	// Computed counts shards executed by workers this run.
	Computed int
	// DuplicateResults counts shard results that arrived for an
	// already-completed shard and were dropped (exactly-once merging).
	DuplicateResults int
	// WorkerFailures counts workers that died mid-run and had their
	// shards reassigned — once per worker, however many jobs it held —
	// plus each malformed result dropped and recomputed.
	WorkerFailures int
	// Waves counts the handout waves opened (1 for fixed-N runs).
	Waves int
	// CancelledJobs counts in-flight jobs abandoned after the stopping
	// rule bound.
	CancelledJobs int
	// StoppedEarly reports that the adaptive stopping rule bound below
	// the iteration cap.
	StoppedEarly bool
}

// Partition returns the contiguous shard ranges of a run of n
// iterations split shards ways. Boundaries fall on the canonical cell
// boundaries of internal/sim, so every shard's partials are exactly
// the cells a single-process run would produce; the count is capped at
// the cell count.
func Partition(n, shards int) []sim.Range {
	cells := sim.Cells(n)
	if shards < 1 {
		shards = 1
	}
	if shards > len(cells) {
		shards = len(cells)
	}
	out := make([]sim.Range, 0, shards)
	for s := 0; s < shards; s++ {
		lo := s * len(cells) / shards
		hi := (s + 1) * len(cells) / shards
		if lo == hi {
			continue
		}
		out = append(out, sim.Range{Start: cells[lo].Start, End: cells[hi-1].End})
	}
	return out
}

// adaptivePartition returns the shard ranges and the per-wave shard-id
// lists of an adaptive run. Waves grow the handed-out iteration prefix
// of [0, capIters) geometrically — the first wave covers at least the
// rule's floor and one shard per pool slot, every later wave doubles
// the cumulative cell count — so the work spent past the stopping
// boundary is bounded by the prefix already proven necessary. Each
// wave is split into at most shardsPerWave contiguous shards along the
// cap run's canonical cells.
//
// weights, when non-nil, are the pool slots' advertised capacities
// (speed-aware wave sizing): each wave's cells are split proportionally
// to them, sorted descending so the largest shard carries the lowest id
// and is handed out first. A heterogeneous pool then finishes each wave
// roughly together — shard sizes match throughput — while the merge
// stays bit-identical, because shards still tile the same canonical
// cells in the same order whatever the split. nil (or uniform) weights
// reproduce the even split.
func adaptivePartition(capIters, floorIters, shardsPerWave int, weights []int) (shards []sim.Range, waves [][]int) {
	cells := sim.Cells(capIters)
	cs := sim.CellSize(capIters)
	if shardsPerWave < 1 {
		shardsPerWave = 1
	}
	if len(weights) == shardsPerWave && shardsPerWave > 1 {
		w := append([]int(nil), weights...)
		sort.Sort(sort.Reverse(sort.IntSlice(w)))
		if w[0] != w[len(w)-1] && w[len(w)-1] > 0 {
			weights = w
		} else {
			weights = nil // uniform or degenerate: even split
		}
	} else {
		weights = nil
	}
	first := shardsPerWave
	if fc := (floorIters + cs - 1) / cs; fc > first {
		first = fc
	}
	if first > len(cells) {
		first = len(cells)
	}
	for cum := 0; cum < len(cells); {
		next := first
		if cum > 0 {
			next = 2 * cum
		}
		if next > len(cells) {
			next = len(cells)
		}
		n := next - cum
		k := shardsPerWave
		if k > n {
			k = n
		}
		ids := make([]int, 0, k)
		wsum := 0
		if weights != nil {
			for _, wv := range weights[:k] {
				wsum += wv
			}
		}
		pref := 0
		for s := 0; s < k; s++ {
			var lo, hi int
			if weights == nil {
				lo = cum + s*n/k
				hi = cum + (s+1)*n/k
			} else {
				lo = cum + pref*n/wsum
				pref += weights[s]
				hi = cum + pref*n/wsum
			}
			if lo == hi {
				continue
			}
			ids = append(ids, len(shards))
			shards = append(shards, sim.Range{Start: cells[lo].Start, End: cells[hi-1].End})
		}
		waves = append(waves, ids)
		cum = next
	}
	return shards, waves
}

// poolCapacities maps the initial worker pool to wave-sizing weights:
// the advertised capacity where a worker reports one, one slot
// otherwise.
func poolCapacities(workers []Worker) []int {
	caps := make([]int, 0, len(workers))
	for _, w := range workers {
		c := 1
		if cr, ok := w.(CapacityReporter); ok && cr.Capacity() > 0 {
			c = cr.Capacity()
		}
		caps = append(caps, c)
	}
	return caps
}

// Run executes the distributed run and returns its summary.
func Run(cfg Config) (sim.Summary, error) {
	s, _, err := RunStats(cfg)
	return s, err
}

// RunStats is Run with the run's fault/resume statistics.
func RunStats(cfg Config) (sim.Summary, Stats, error) {
	res, err := RunPipelineSource([]RunSpec{{
		Params:     cfg.Params,
		Options:    cfg.Options,
		Shards:     cfg.Shards,
		Checkpoint: cfg.Checkpoint,
	}}, cfg.Workers, cfg.WorkerSource, cfg.Log)
	if len(res) != 1 {
		return sim.Summary{}, Stats{}, err
	}
	return res[0].Summary, res[0].Stats, err
}

// RunPipeline executes several runs through one shared worker pool,
// pipelined: a later run's shards are handed out as soon as a pool
// slot frees up, so run k+1 starts while run k's tail shards (or
// adaptive drain) still execute. Runs are prioritized in index order —
// a worker only takes run k+1 work when run k has nothing queued — and
// every run's Summary is bit-identical to executing it alone.
//
// The returned slice always has one RunResult per spec (zero Summary
// for runs the pipeline failed before finishing); the error is the
// first fatal condition, nil when every run completed.
func RunPipeline(specs []RunSpec, workers []Worker, logw io.Writer) ([]RunResult, error) {
	return RunPipelineSource(specs, workers, nil, logw)
}

// RunPipelineSource is RunPipeline with an elastic worker pool: beyond
// the initial workers (which may be empty), every Worker delivered on
// source joins the pool mid-run and starts taking shards. While source
// is open, a pool whose last worker died waits for a joiner instead of
// failing the run; once source is closed (or when it is nil) the old
// static semantics apply. Workers received from source are closed by
// the coordinator when the pipeline ends; the initial workers remain
// the caller's to close.
func RunPipelineSource(specs []RunSpec, workers []Worker, source <-chan Worker, logw io.Writer) ([]RunResult, error) {
	out := make([]RunResult, len(specs))
	if len(specs) == 0 {
		return out, nil
	}
	pool, err := newPool(workers, source, logw, false)
	if err != nil {
		return out, err
	}
	defer pool.Close()
	tickets := make([]*Ticket, 0, len(specs))
	for i := range specs {
		tk, err := pool.submit(&specs[i], nil)
		if err != nil {
			return out, err
		}
		tickets = append(tickets, tk)
	}
	pool.seal()
	var firstErr error
	for i, tk := range tickets {
		res, err := tk.Wait()
		out[i] = res
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return out, firstErr
}

// runState is one run's private state inside a pipelined dispatch.
type runState struct {
	idx  int
	spec *RunSpec
	wire WireParams
	// jobOptions are the options every job of this run carries:
	// Iterations raised to the cap, adaptive fields stripped (workers
	// always execute fixed ranges).
	jobOptions sim.Options
	adaptive   bool
	capIters   int
	scan       *sim.StopScan

	shards   []sim.Range
	waves    [][]int // shard ids per handout wave
	nextWave int
	queue    []int // pending shard ids
	inflight int

	done      map[int][]sim.Partial
	malformed map[int]int
	cp        *checkpoint

	// prefixShard is the next shard id whose cells the stopping scan
	// has not folded yet (adaptive runs only).
	prefixShard int

	// progress, when non-nil, observes the run's advance (see
	// RunProgress). It is invoked with the dispatcher lock held and must
	// not block or call back into the pool.
	progress func(RunProgress)
	// bankedIters counts iterations banked so far (fixed runs report it
	// as progress; adaptive runs report the folded prefix instead).
	bankedIters int
	// jobIDs records every job id issued for this run, so a persistent
	// pool can drop the run's jobIndex entries once it is compacted out.
	jobIDs []int

	finished bool
	// aborted carries the cancellation cause of a run ended by its
	// deadline or caller (Ticket.Cancel, SubmitCtx context). Aborted
	// runs set finished too — the dispatcher treats them as over — but
	// their tickets resolve with this error instead of a Summary.
	aborted error
	// notify is closed exactly once when the run reaches a terminal
	// state (finished or the pool died); Ticket.Wait blocks on it.
	notify   chan struct{}
	notified bool
	summary  sim.Summary
	stats    Stats
	wall     time.Duration
}

// signalTerminal wakes the run's ticket. Callers hold d.mu.
func (r *runState) signalTerminal() {
	if !r.notified {
		r.notified = true
		close(r.notify)
	}
}

// emitProgress reports the run's current advance to its observer.
// Callers hold d.mu.
func (r *runState) emitProgress(final bool) {
	if r.progress == nil {
		return
	}
	pr := RunProgress{Cap: r.capIters, Waves: r.stats.Waves, Final: final}
	switch {
	case final:
		pr.Iterations = r.summary.Iterations
		pr.HalfWidth = r.summary.HalfWidth
		pr.Converged = r.summary.Converged
	case r.adaptive:
		pr.Iterations = r.scan.End()
		pr.HalfWidth = r.scan.EffectiveHalfWidth()
	default:
		pr.Iterations = r.bankedIters
		pr.HalfWidth = math.Inf(1) // unknown until the merge
	}
	r.progress(pr)
}

// newRunState validates and partitions one run, restoring its
// checkpoint when configured. caps are the initial pool's wave-sizing
// weights (one entry per worker); an explicit spec.Shards overrides
// both the count and the proportional split with even shards.
func newRunState(idx int, spec *RunSpec, caps []int, logw io.Writer) (*runState, error) {
	if err := spec.Params.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Options.Validate(); err != nil {
		return nil, err
	}
	wire, err := EncodeParams(spec.Params)
	if err != nil {
		return nil, err
	}
	r := &runState{
		idx:      idx,
		spec:     spec,
		wire:     wire,
		adaptive: spec.Options.Adaptive(),
		capIters: spec.Options.IterationCap(),
		notify:   make(chan struct{}),
	}
	shardCount := spec.Shards
	weights := []int(nil)
	if shardCount < 1 {
		shardCount = len(caps)
		weights = caps
	}
	if r.adaptive {
		scan, err := sim.NewStopScan(spec.Options)
		if err != nil {
			return nil, err
		}
		r.scan = scan
		floor := 0
		if spec.Options.MaxIters > 0 {
			floor = spec.Options.Iterations
		}
		r.shards, r.waves = adaptivePartition(r.capIters, floor, shardCount, weights)
	} else {
		r.shards = Partition(spec.Options.Iterations, shardCount)
		all := make([]int, len(r.shards))
		for i := range all {
			all[i] = i
		}
		r.waves = [][]int{all}
	}
	r.stats.Shards = len(r.shards)
	r.jobOptions = spec.Options
	r.jobOptions.Iterations = r.capIters
	r.jobOptions.TargetHalfWidth = 0
	r.jobOptions.MaxIters = 0

	if spec.Checkpoint != "" {
		fp := Fingerprint(wire, spec.Options, len(r.shards))
		done, cp, err := openCheckpoint(spec.Checkpoint, fp, r.shards, spec.Options.Seed, spec.Options.MissionTime, logw)
		if err != nil {
			return nil, err
		}
		r.done, r.cp = done, cp
		r.stats.FromCheckpoint = len(done)
		for id := range done {
			sortParts(done[id])
			r.bankedIters += r.shards[id].Len()
		}
	}
	if r.done == nil {
		r.done = make(map[int][]sim.Partial)
	}
	return r, nil
}

// sortParts orders a shard's cell partials canonically (workers
// deliver them in completion order).
func sortParts(parts []sim.Partial) {
	sort.Slice(parts, func(i, j int) bool { return parts[i].Start < parts[j].Start })
}

// jobKey names a (run, shard) pair; job ids map onto it. The run is
// held by pointer so a persistent pool can compact finished runs out of
// its scan list while in-flight replies still resolve.
type jobKey struct {
	r     *runState
	shard int
}

// assignment tracks one in-flight job for cancellation.
type assignment struct {
	key jobKey
	w   Worker
}

// dispatcher is the pipelined coordinator's shared state.
type dispatcher struct {
	mu   sync.Mutex
	cond *sync.Cond

	runs  []*runState
	logw  io.Writer
	fatal error
	start time.Time

	// caps snapshots the initial pool's wave-sizing weights; runs
	// submitted later reuse them (joiners do not reshape waves).
	caps []int
	// nextIdx numbers runs in submission order (the pipelining
	// priority).
	nextIdx int
	// sealed marks a pipeline that will receive no further submissions:
	// serve goroutines may retire once every known run finished. A
	// persistent pool is never sealed; its serves park until Close.
	sealed bool
	// persistent distinguishes a long-lived Pool (runs compact away,
	// a drained pool is a fatal condition) from a one-shot pipeline.
	persistent bool
	// closing is set by Pool.Close: claims stop, serves retire.
	closing bool

	jobIndex map[int]jobKey      // every job ever issued (strays resolve here)
	assigned map[int]*assignment // in-flight jobs only

	// deadWorker dedupes WorkerFailures: a pipelined worker holds
	// several jobs, and its death must count once, not once per job.
	deadWorker map[Worker]bool

	// fallback, when non-nil on a persistent pool, is a bounded
	// in-process worker armed the moment the pool drains (every serve
	// goroutine gone) instead of declaring the pool dead or parking
	// runs indefinitely: degraded-mode serving. Armed at most once.
	fallback      Worker
	fallbackArmed bool

	wg   sync.WaitGroup // serve goroutines
	live int            // serve goroutines not yet exited
	// sourceOpen is true while an elastic worker source may still
	// deliver joiners; it keeps a workerless pool waiting instead of
	// declaring the run dead.
	sourceOpen bool
	done       chan struct{} // closed when the pipeline must unwind
	doneOnce   sync.Once
}

func (d *dispatcher) signalDone() { d.doneOnce.Do(func() { close(d.done) }) }

// addWorker plugs a worker into the pool: the coordinator's stray sink
// is installed, and one serve goroutine per pipeline slot starts
// claiming shards (PipelineDepth slots for workers that support
// double-buffering, one otherwise).
func (d *dispatcher) addWorker(w Worker) {
	d.mu.Lock()
	d.addWorkerLocked(w)
	d.mu.Unlock()
}

// addWorkerLocked is addWorker for callers already holding d.mu (the
// fallback arming paths, which must install the worker atomically with
// observing the drained pool).
func (d *dispatcher) addWorkerLocked(w Worker) {
	if sb, ok := w.(strayBanker); ok {
		sb.setStray(d.bankStray)
	}
	depth := 1
	if p, ok := w.(Pipeliner); ok && p.PipelineDepth() > 1 {
		depth = p.PipelineDepth()
	}
	d.live += depth
	for i := 0; i < depth; i++ {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.serve(w)
			d.exitServe()
		}()
	}
}

// armFallbackLocked installs the bounded in-process fallback worker
// on a drained pool, at most once. Callers hold d.mu.
func (d *dispatcher) armFallbackLocked() {
	if d.fallback == nil || d.fallbackArmed || d.closing || d.fatal != nil {
		return
	}
	d.fallbackArmed = true
	fmt.Fprintf(d.logw, "shard: pool drained; arming in-process fallback worker %s\n", d.fallback.Name())
	d.addWorkerLocked(d.fallback)
}

// exitServe retires one serve goroutine. When the last one goes and no
// joiner can revive the pool — the source is closed, or there is no
// pending work a joiner could take — the pipeline unwinds. A persistent
// pool first arms its in-process fallback worker (when configured) so
// parked runs keep making progress; without one it declares itself
// dead (future submissions must fail fast) unless it is already
// closing or a joiner may still arrive — with the source open, runs
// park and resume when a supervised worker rejoins.
func (d *dispatcher) exitServe() {
	d.mu.Lock()
	d.live--
	if d.live > 0 {
		d.mu.Unlock()
		return
	}
	if d.persistent {
		if d.fallback != nil && !d.fallbackArmed {
			d.armFallbackLocked()
		} else if !d.sourceOpen && !d.closing {
			d.failLocked(fmt.Errorf("shard: no live workers remain"))
		}
		d.mu.Unlock()
		return
	}
	drained := !(d.sourceOpen && d.pendingWorkLocked())
	d.mu.Unlock()
	if drained {
		d.signalDone()
	}
}

// pendingWorkLocked reports whether any unfinished run still has
// shards to hand out (queued, in flight for reassignment, or in
// unopened waves). Callers hold d.mu.
func (d *dispatcher) pendingWorkLocked() bool {
	for _, r := range d.runs {
		if r.finished {
			continue
		}
		if len(r.queue) > 0 || r.inflight > 0 || r.nextWave < len(r.waves) {
			return true
		}
	}
	return false
}

// jobSeq issues process-unique job ids. Uniqueness across coordinators
// matters because workers outlive runs: a cancel that loses its race
// to an already-sent result leaves a tombstone for that id on the
// worker, and a later coordinator reusing the id would see its job
// falsely answered as cancelled.
var jobSeq atomic.Int64

func (d *dispatcher) closeCheckpoints() {
	for _, r := range d.runs {
		r.cp.close()
	}
}

// serve drives one worker: claim a job, run it, bank the result; on
// worker death requeue the shard and retire.
func (d *dispatcher) serve(w Worker) {
	for {
		job, key, ok := d.claim(w)
		if !ok {
			return
		}
		parts, err := w.Run(job)
		switch {
		case err == nil:
			d.bank(key, job.ID, parts, true)
		case err == ErrJobCancelled:
			d.cancelled(key, job.ID)
		default:
			if je, isJob := err.(*JobError); isJob {
				// The worker is alive but rejected the job: rerunning
				// elsewhere would fail identically, so the pipeline is
				// dead.
				d.fail(key, job.ID, fmt.Errorf("shard: %w", je))
				return
			}
			d.mu.Lock()
			r := key.r
			if !d.deadWorker[w] {
				d.deadWorker[w] = true
				r.stats.WorkerFailures++
			}
			r.inflight--
			delete(d.assigned, job.ID)
			if _, alreadyDone := r.done[key.shard]; !alreadyDone && !r.finished && !queued(r.queue, key.shard) {
				r.queue = append(r.queue, key.shard)
			}
			fmt.Fprintf(d.logw, "shard: worker %s died (%v); run %d shard %d reassigned\n", w.Name(), err, r.idx, key.shard)
			d.cond.Broadcast()
			d.mu.Unlock()
			return
		}
	}
}

// claim blocks until a shard of some run is available, all work is
// finished, or a fatal error occurred. Runs are scanned in index
// order, which is what pipelines them: run k+1 work is only taken when
// run k has nothing queued right now.
func (d *dispatcher) claim(w Worker) (*Job, jobKey, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.fatal != nil || d.closing {
			return nil, jobKey{}, false
		}
		allFinished := true
		inflight := 0
		for _, r := range d.runs {
			if r.finished {
				continue
			}
			allFinished = false
			inflight += r.inflight
			d.refillLocked(r)
			if len(r.queue) == 0 {
				continue
			}
			min := 0
			for i := range r.queue {
				if r.queue[i] < r.queue[min] {
					min = i
				}
			}
			id := r.queue[min]
			r.queue = append(r.queue[:min], r.queue[min+1:]...)
			r.inflight++
			jid := int(jobSeq.Add(1))
			key := jobKey{r: r, shard: id}
			d.jobIndex[jid] = key
			d.assigned[jid] = &assignment{key: key, w: w}
			r.jobIDs = append(r.jobIDs, jid)
			rg := r.shards[id]
			return &Job{ID: jid, Start: rg.Start, End: rg.End, Params: r.wire,
				Options: r.jobOptions, Cancellable: r.adaptive}, key, true
		}
		if d.sealed {
			if allFinished {
				return nil, jobKey{}, false
			}
			if inflight == 0 {
				// Nothing queued, nothing running, not all done: every
				// other worker is gone and there is no work to steal.
				return nil, jobKey{}, false
			}
		}
		// Unsealed (persistent or still-submitting) pools park here:
		// a future Submit may bring work.
		d.cond.Wait()
	}
}

// refillLocked opens the next wave(s) of an unfinished run whose
// current wave fully banked. Callers hold d.mu.
func (d *dispatcher) refillLocked(r *runState) {
	for len(r.queue) == 0 && r.inflight == 0 && !r.finished && r.nextWave < len(r.waves) {
		for _, id := range r.waves[r.nextWave] {
			if _, ok := r.done[id]; !ok {
				r.queue = append(r.queue, id)
			}
		}
		r.nextWave++
		r.stats.Waves++
	}
}

// maxMalformedPerShard bounds how often a shard's results may fail
// validation before the run is declared dead — without it, a lone
// worker with a deterministic defect (e.g. a version-skewed binary
// whose seeding changed) would recompute the same shard forever.
const maxMalformedPerShard = 3

// bank records a completed shard exactly once; duplicates are counted
// and dropped. fromRun marks results produced by this dispatcher's own
// claim (to balance the inflight counter) versus stray deliveries.
func (d *dispatcher) bank(key jobKey, jobID int, parts []sim.Partial, fromRun bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r := key.r
	if fromRun {
		r.inflight--
		delete(d.assigned, jobID)
	}
	if key.shard < 0 || key.shard >= len(r.shards) {
		fmt.Fprintf(d.logw, "shard: dropping result for unknown shard %d of run %d\n", key.shard, r.idx)
		d.cond.Broadcast()
		return
	}
	if r.finished {
		// An adaptive run that already bound its stopping boundary no
		// longer needs this shard (a cancel lost the race).
		fmt.Fprintf(d.logw, "shard: dropping late result for finished run %d shard %d\n", r.idx, key.shard)
		d.cond.Broadcast()
		return
	}
	if _, dup := r.done[key.shard]; dup {
		r.stats.DuplicateResults++
		fmt.Fprintf(d.logw, "shard: dropping duplicate result for shard %d\n", key.shard)
		d.cond.Broadcast()
		return
	}
	rg := r.shards[key.shard]
	if !tilesRange(parts, rg.Start, rg.End, r.spec.Options.Seed, r.spec.Options.MissionTime) {
		// A malformed result (wrong range, seed, mission time or
		// observation count) is dropped and the shard recomputed, like
		// a worker death — up to a cap, beyond which the defect is
		// clearly deterministic and the run is dead.
		if r.malformed == nil {
			r.malformed = make(map[int]int)
		}
		r.malformed[key.shard]++
		r.stats.WorkerFailures++
		if r.malformed[key.shard] >= maxMalformedPerShard {
			d.failLocked(fmt.Errorf("shard: shard %d returned %d malformed results; aborting (worker defect?)",
				key.shard, r.malformed[key.shard]))
			return
		}
		fmt.Fprintf(d.logw, "shard: dropping malformed result for shard %d\n", key.shard)
		if !queued(r.queue, key.shard) {
			r.queue = append(r.queue, key.shard)
		}
		d.cond.Broadcast()
		return
	}
	sortParts(parts)
	r.done[key.shard] = parts
	r.stats.Computed++
	r.bankedIters += rg.Len()
	// Remove the shard from the queue if a stray delivery beat a
	// pending reassignment to it.
	for i := range r.queue {
		if r.queue[i] == key.shard {
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			break
		}
	}
	if err := r.cp.record(key.shard, parts); err != nil {
		d.failLocked(err)
		return
	}
	if !r.adaptive {
		r.emitProgress(false)
	}
	d.advanceLocked(r)
	d.cond.Broadcast()
}

// advanceLocked moves a run's completion state forward after new
// shards banked: adaptive runs fold the contiguous banked prefix into
// the stopping scan cell by cell (completion-order merging — partials
// are folded as soon as the prefix reaches them, not at a barrier) and
// finish at the first bound boundary; fixed runs finish when every
// shard banked. Callers hold d.mu.
func (d *dispatcher) advanceLocked(r *runState) {
	if r.finished {
		return
	}
	if !r.adaptive {
		if len(r.done) == len(r.shards) {
			d.finishLocked(r, r.spec.Options.Iterations)
		}
		return
	}
	moved := false
	for r.prefixShard < len(r.shards) {
		parts, ok := r.done[r.prefixShard]
		if !ok {
			if moved {
				r.emitProgress(false)
			}
			return
		}
		for i := range parts {
			if r.scan.Feed(&parts[i]) {
				d.stopLocked(r, r.scan.StopAt())
				return
			}
		}
		r.prefixShard++
		moved = true
	}
	// Every shard banked without the rule binding: the cap is the run.
	d.finishLocked(r, r.capIters)
}

// stopLocked ends an adaptive run at the bound stopping boundary:
// outstanding handout is dropped, in-flight jobs are cancelled
// (best-effort, asynchronously — their workers stay usable), and the
// summary covers exactly [0, stopAt). Callers hold d.mu.
func (d *dispatcher) stopLocked(r *runState, stopAt int) {
	r.queue = nil
	r.nextWave = len(r.waves)
	r.stats.StoppedEarly = true
	for jid, a := range d.assigned {
		if a.key.r != r {
			continue
		}
		if c, ok := a.w.(JobCanceler); ok {
			go c.CancelJob(jid)
		}
	}
	d.finishLocked(r, stopAt)
}

// finishLocked merges a run's kept iterations into its Summary.
// Callers hold d.mu.
func (d *dispatcher) finishLocked(r *runState, stopAt int) {
	var parts []sim.Partial
	for id := 0; id < len(r.shards) && r.shards[id].Start < stopAt; id++ {
		for _, pt := range r.done[id] {
			if pt.Start < stopAt {
				parts = append(parts, pt)
			}
		}
	}
	so := r.spec.Options
	so.Iterations = stopAt
	sum, err := sim.Summarize(so, parts)
	if err != nil {
		d.failLocked(err)
		return
	}
	r.summary = sum
	r.finished = true
	r.wall = time.Since(d.start)
	// A finished run's partials are dead weight for the rest of the
	// pipeline — release them so a long sweep's heap stays one point
	// deep. Every post-finish path is guarded by r.finished before it
	// touches r.done.
	r.done = nil
	// The checkpoint takes no more records after finish; closing it here
	// (rather than at pool shutdown) keeps a persistent pool's fd count
	// flat.
	r.cp.close()
	r.cp = nil
	r.emitProgress(true)
	r.signalTerminal()
	if d.sealed {
		all := true
		for _, rr := range d.runs {
			if !rr.finished {
				all = false
				break
			}
		}
		if all {
			d.signalDone()
		}
	}
	d.cond.Broadcast()
}

// abortRun ends a run before its natural completion: queued shards are
// dropped, in-flight jobs are cancelled through the protocol's v2
// cancel path (best-effort, asynchronously — the workers stay usable),
// and the ticket resolves with cause. Late results and cancel acks for
// the run are absorbed by the normal finished-run guards. Idempotent;
// a run that already finished is left alone.
func (d *dispatcher) abortRun(r *runState, cause error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if r.finished {
		return
	}
	r.aborted = cause
	r.queue = nil
	r.nextWave = len(r.waves)
	for jid, a := range d.assigned {
		if a.key.r != r {
			continue
		}
		if c, ok := a.w.(JobCanceler); ok {
			go c.CancelJob(jid)
		}
	}
	r.finished = true
	r.done = nil
	r.cp.close()
	r.cp = nil
	fmt.Fprintf(d.logw, "shard: run %d aborted: %v\n", r.idx, cause)
	r.signalTerminal()
	if d.sealed {
		all := true
		for _, rr := range d.runs {
			if !rr.finished {
				all = false
				break
			}
		}
		if all {
			d.signalDone()
		}
	}
	d.cond.Broadcast()
}

// cancelled accounts for a job a worker abandoned on request. The
// worker stays in the pool.
func (d *dispatcher) cancelled(key jobKey, jobID int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r := key.r
	r.inflight--
	delete(d.assigned, jobID)
	r.stats.CancelledJobs++
	if !r.finished {
		// A cancel that raced a still-running run (should not happen —
		// cancels are only sent after the run finished — but a shard
		// must never be silently lost).
		if _, done := r.done[key.shard]; !done && !queued(r.queue, key.shard) {
			r.queue = append(r.queue, key.shard)
		}
	}
	d.cond.Broadcast()
}

// queued reports whether shard id is in the pending queue.
func queued(queue []int, id int) bool {
	for _, q := range queue {
		if q == id {
			return true
		}
	}
	return false
}

// bankStray records a result that arrived outside the request/response
// pairing (a re-delivery or a late answer from a presumed-dead
// worker), resolving the job id against every assignment ever issued.
func (d *dispatcher) bankStray(jobID int, parts []sim.Partial) {
	d.mu.Lock()
	key, ok := d.jobIndex[jobID]
	d.mu.Unlock()
	if !ok {
		fmt.Fprintf(d.logw, "shard: dropping stray result for unknown job %d\n", jobID)
		return
	}
	d.bank(key, jobID, parts, false)
}

func (d *dispatcher) fail(key jobKey, jobID int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	key.r.inflight--
	delete(d.assigned, jobID)
	d.failLocked(err)
}

func (d *dispatcher) failLocked(err error) {
	if d.fatal == nil {
		d.fatal = err
	}
	d.signalDone()
	d.cond.Broadcast()
}
