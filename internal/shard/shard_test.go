package shard

import (
	"encoding/json"
	"net"
	"os"
	"testing"

	"herald/internal/dist"
	"herald/internal/sim"
)

// TestMain lets the test binary double as a shard worker process, so
// SpawnLocal-based tests exercise the real os/exec path.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

func testParams(pol sim.Policy) sim.ArrayParams {
	p := sim.PaperDefaults(4, 1e-4, 0.02)
	p.Policy = pol
	return p
}

func testOptions() sim.Options {
	return sim.Options{Iterations: 2000, MissionTime: 2e5, Seed: 20170327, Workers: 2}
}

// summaryBytes renders a Summary to its canonical JSON for
// byte-identity comparisons.
func summaryBytes(t *testing.T, s sim.Summary) []byte {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardedMatchesSingleProcessAllPolicies is the determinism
// contract: for every policy and a spread of shard and worker counts,
// the sharded Summary must be byte-identical to the single-process
// sim.Run baseline.
func TestShardedMatchesSingleProcessAllPolicies(t *testing.T) {
	for _, pol := range []sim.Policy{sim.Conventional, sim.AutoFailover, sim.DualParity} {
		p := testParams(pol)
		o := testOptions()
		base, err := sim.Run(p, o)
		if err != nil {
			t.Fatalf("%v: baseline: %v", pol, err)
		}
		want := summaryBytes(t, base)
		for _, cfg := range []struct{ shards, workers int }{
			{1, 1}, {2, 2}, {5, 3}, {31, 4}, {1000, 2},
		} {
			workers := make([]Worker, cfg.workers)
			for i := range workers {
				workers[i] = NewInProcessWorker("w", 1)
			}
			got, st, err := RunStats(Config{Params: p, Options: o, Shards: cfg.shards, Workers: workers})
			if err != nil {
				t.Fatalf("%v shards=%d workers=%d: %v", pol, cfg.shards, cfg.workers, err)
			}
			if g := summaryBytes(t, got); string(g) != string(want) {
				t.Errorf("%v shards=%d workers=%d: summary diverged\n got %s\nwant %s",
					pol, cfg.shards, cfg.workers, g, want)
			}
			if st.Computed != st.Shards {
				t.Errorf("%v shards=%d: computed %d of %d shards", pol, cfg.shards, st.Computed, st.Shards)
			}
		}
	}
}

// TestShardedHistogramMatches extends byte-identity to the downtime
// histogram path.
func TestShardedHistogramMatches(t *testing.T) {
	p := testParams(sim.Conventional)
	o := testOptions()
	o.HistogramBins = 32
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(Config{Params: p, Options: o, Shards: 4,
		Workers: []Worker{NewInProcessWorker("a", 1), NewInProcessWorker("b", 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if string(summaryBytes(t, got)) != string(summaryBytes(t, base)) {
		t.Error("histogram summary diverged from single-process baseline")
	}
}

// TestProcessWorkersMatchSingleProcess runs real sibling worker
// processes (the test binary re-executed via SpawnLocal) and checks
// byte-identity against sim.Run.
func TestProcessWorkersMatchSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	p := testParams(sim.Conventional)
	o := testOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunLocal(p, o, 4, 2, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(summaryBytes(t, got)) != string(summaryBytes(t, base)) {
		t.Error("process-sharded summary diverged from single-process baseline")
	}
}

// TestTCPWorkerMatchesSingleProcess attaches a worker over a real TCP
// connection (the remote-machine path) and checks byte-identity.
func TestTCPWorkerMatchesSingleProcess(t *testing.T) {
	addr := make(chan net.Addr, 1)
	go func() {
		_ = ListenAndServe("127.0.0.1:0", func(a net.Addr) { addr <- a })
	}()
	w, err := Dial((<-addr).String())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	p := testParams(sim.AutoFailover)
	o := testOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(Config{Params: p, Options: o, Shards: 3, Workers: []Worker{w}})
	if err != nil {
		t.Fatal(err)
	}
	if string(summaryBytes(t, got)) != string(summaryBytes(t, base)) {
		t.Error("TCP-sharded summary diverged from single-process baseline")
	}
}

// TestPartition pins the shard partition: contiguous, cell-aligned,
// exactly tiling [0, n).
func TestPartition(t *testing.T) {
	for _, n := range []int{1, 63, 64, 2000, 1_000_000} {
		for _, s := range []int{1, 2, 7, 256, 100000} {
			shards := Partition(n, s)
			if len(shards) == 0 {
				t.Fatalf("n=%d shards=%d: empty partition", n, s)
			}
			cursor := 0
			for _, r := range shards {
				if r.Start != cursor || r.End <= r.Start {
					t.Fatalf("n=%d shards=%d: bad range %+v at cursor %d", n, s, r, cursor)
				}
				cs := sim.CellSize(n)
				if r.Start%cs != 0 || (r.End%cs != 0 && r.End != n) {
					t.Fatalf("n=%d shards=%d: range %+v not cell-aligned (cell %d)", n, s, r, cs)
				}
				cursor = r.End
			}
			if cursor != n {
				t.Fatalf("n=%d shards=%d: partition ends at %d", n, s, cursor)
			}
		}
	}
}

// TestWireParamsRoundTrip pins the parameter codec across policies and
// non-exponential laws.
func TestWireParamsRoundTrip(t *testing.T) {
	p := testParams(sim.AutoFailover)
	p.TTF = dist.WeibullFromMeanRate(1e-4, 1.48)
	p.Repair = dist.LognormalFromMeanMedian(10, 6)
	p.HERecovery = dist.NewHyperExponential([]float64{0.8, 0.2}, []float64{2, 0.1})
	w, err := EncodeParams(p)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back WireParams
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	q, err := back.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("decoded params invalid: %v", err)
	}
	if q.TTF.String() != p.TTF.String() || q.Repair.String() != p.Repair.String() ||
		q.HERecovery.String() != p.HERecovery.String() {
		t.Errorf("laws diverged after round-trip:\n%v\n%v", q, p)
	}
	if q.Disks != p.Disks || q.HEP != p.HEP || q.Policy != p.Policy || q.CrashRate != p.CrashRate {
		t.Errorf("scalars diverged after round-trip:\n%+v\n%+v", q, p)
	}

	// A sharded run under the round-tripped params must agree exactly
	// with the original (the codec rebuilds derived caches).
	o := sim.Options{Iterations: 500, MissionTime: 1e5, Seed: 3, Workers: 2}
	a, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(q, o)
	if err != nil {
		t.Fatal(err)
	}
	if string(summaryBytes(t, a)) != string(summaryBytes(t, b)) {
		t.Error("round-tripped params changed the simulation")
	}
}

// TestShardedBiasedMatchesSingleProcess extends the byte-identity
// contract to importance-sampled runs: the weighted accumulators ride
// the shard wire codec and checkpoint path, so a biased sharded
// Summary must equal the single-process one byte for byte, for every
// shard/worker partition.
func TestShardedBiasedMatchesSingleProcess(t *testing.T) {
	for _, pol := range []sim.Policy{sim.Conventional, sim.AutoFailover, sim.DualParity} {
		p := testParams(pol)
		o := testOptions()
		o.Bias = sim.BiasAuto
		base, err := sim.Run(p, o)
		if err != nil {
			t.Fatalf("%v: baseline: %v", pol, err)
		}
		if base.Bias <= 0 || !(base.ESS > 0) {
			t.Fatalf("%v: baseline not weighted: factor %v, ESS %v", pol, base.Bias, base.ESS)
		}
		want := summaryBytes(t, base)
		for _, cfg := range []struct{ shards, workers int }{
			{2, 2}, {7, 3}, {64, 4},
		} {
			workers := make([]Worker, cfg.workers)
			for i := range workers {
				workers[i] = NewInProcessWorker("w", 1)
			}
			got, err := Run(Config{Params: p, Options: o, Shards: cfg.shards, Workers: workers})
			if err != nil {
				t.Fatalf("%v shards=%d workers=%d: %v", pol, cfg.shards, cfg.workers, err)
			}
			if g := summaryBytes(t, got); string(g) != string(want) {
				t.Errorf("%v shards=%d workers=%d: biased summary diverged\n got %s\nwant %s",
					pol, cfg.shards, cfg.workers, g, want)
			}
		}
	}
}
