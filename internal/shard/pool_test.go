package shard

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"herald/internal/sim"
)

// TestPoolSubmitMatchesSim pins the persistent-pool contract: runs
// submitted one by one to a long-lived Pool return Summaries
// byte-identical to in-process sim.Run, and the pool stays usable
// between them.
func TestPoolSubmitMatchesSim(t *testing.T) {
	workers := []Worker{NewInProcessWorker("a", 1), NewInProcessWorker("b", 1)}
	pool, err := NewPool(workers, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for _, pol := range []sim.Policy{sim.Conventional, sim.AutoFailover} {
		p := testParams(pol)
		o := testOptions()
		base, err := sim.Run(p, o)
		if err != nil {
			t.Fatalf("%v: baseline: %v", pol, err)
		}
		tk, err := pool.Submit(RunSpec{Params: p, Options: o, Shards: 5}, nil)
		if err != nil {
			t.Fatalf("%v: submit: %v", pol, err)
		}
		res, err := tk.Wait()
		if err != nil {
			t.Fatalf("%v: wait: %v", pol, err)
		}
		if g, w := summaryBytes(t, res.Summary), summaryBytes(t, base); string(g) != string(w) {
			t.Errorf("%v: pool summary diverged\n got %s\nwant %s", pol, g, w)
		}
	}
}

// TestPoolConcurrentSubmits drives several concurrent submissions
// through one pool; every ticket must resolve to its own
// bit-identical result.
func TestPoolConcurrentSubmits(t *testing.T) {
	workers := []Worker{NewInProcessWorker("a", 2), NewInProcessWorker("b", 2)}
	pool, err := NewPool(workers, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	seeds := []uint64{1, 2, 3, 4, 5, 6}
	var wg sync.WaitGroup
	errs := make([]error, len(seeds))
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed uint64) {
			defer wg.Done()
			p := testParams(sim.Conventional)
			o := testOptions()
			o.Seed = seed
			base, err := sim.Run(p, o)
			if err != nil {
				errs[i] = err
				return
			}
			tk, err := pool.Submit(RunSpec{Params: p, Options: o, Shards: 3}, nil)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := tk.Wait()
			if err != nil {
				errs[i] = err
				return
			}
			if g, w := summaryBytes(t, res.Summary), summaryBytes(t, base); string(g) != string(w) {
				errs[i] = fmt.Errorf("seed %d: summary diverged", seed)
			}
		}(i, seed)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestPoolAdaptiveProgress submits an adaptive run with a progress
// observer and checks the contract the streaming API builds on:
// iterations are monotone non-decreasing, the last event is final and
// carries the converged summary's numbers, and the stopping boundary
// matches the in-process baseline.
func TestPoolAdaptiveProgress(t *testing.T) {
	p := testParams(sim.Conventional)
	o := adaptiveOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	workers := []Worker{NewInProcessWorker("a", 1), NewInProcessWorker("b", 1)}
	pool, err := NewPool(workers, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	var mu sync.Mutex
	var events []RunProgress
	tk, err := pool.Submit(RunSpec{Params: p, Options: o}, func(pr RunProgress) {
		mu.Lock()
		events = append(events, pr)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	last := events[len(events)-1]
	if !last.Final {
		t.Errorf("last event not final: %+v", last)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Iterations < events[i-1].Iterations {
			t.Errorf("iterations not monotone: event %d %d after %d", i, events[i].Iterations, events[i-1].Iterations)
		}
	}
	if last.Iterations != base.Iterations || last.Iterations != res.Summary.Iterations {
		t.Errorf("final iterations %d, baseline %d, summary %d", last.Iterations, base.Iterations, res.Summary.Iterations)
	}
	if !last.Converged {
		t.Error("final event not converged")
	}
	if last.HalfWidth != res.Summary.HalfWidth {
		t.Errorf("final half-width %g, summary %g", last.HalfWidth, res.Summary.HalfWidth)
	}
}

// blockingWorker runs a job only after release is closed; it lets pool
// shutdown tests hold a run deterministically in flight.
type blockingWorker struct {
	inner   Worker
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (w *blockingWorker) Name() string { return "blocking" }
func (w *blockingWorker) Run(job *Job) ([]sim.Partial, error) {
	w.once.Do(func() { close(w.started) })
	<-w.release
	return w.inner.Run(job)
}
func (w *blockingWorker) Close() error { return w.inner.Close() }

// TestPoolCloseResolvesTickets closes a pool while a run is held in
// flight; the ticket must resolve with an error instead of hanging, and
// later submissions must be rejected.
func TestPoolCloseResolvesTickets(t *testing.T) {
	bw := &blockingWorker{
		inner:   NewInProcessWorker("inner", 1),
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	pool, err := NewPool([]Worker{bw}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := pool.Submit(RunSpec{Params: testParams(sim.Conventional), Options: testOptions(), Shards: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-bw.started
	closed := make(chan struct{})
	go func() {
		pool.Close()
		close(closed)
	}()
	res, err := tk.Wait()
	if err == nil {
		t.Fatalf("ticket resolved cleanly despite close: %+v", res.Summary)
	}
	close(bw.release) // let the worker finish so Close can join it
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("pool.Close did not return")
	}
	if _, err := pool.Submit(RunSpec{Params: testParams(sim.Conventional), Options: testOptions()}, nil); err == nil {
		t.Fatal("submit after close succeeded")
	}
}

// TestPoolDeadWithoutWorkers pins the persistent pool's failure mode:
// when the last worker dies and no joiner can arrive, in-flight tickets
// resolve with an error and future submissions fail fast.
func TestPoolDeadWithoutWorkers(t *testing.T) {
	pool, err := NewPool([]Worker{dyingWorker{}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	tk, err := pool.Submit(RunSpec{Params: testParams(sim.Conventional), Options: testOptions()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err == nil {
		t.Fatal("ticket resolved cleanly on a dead pool")
	}
	if pool.Err() == nil {
		t.Fatal("pool reports no error after its last worker died")
	}
	if _, err := pool.Submit(RunSpec{Params: testParams(sim.Conventional), Options: testOptions()}, nil); err == nil {
		t.Fatal("submit on a dead pool succeeded")
	}
}

// dyingWorker fails every job with a transport-style error, so the
// coordinator retires it as dead.
type dyingWorker struct{}

func (dyingWorker) Name() string                    { return "dying" }
func (dyingWorker) Run(*Job) ([]sim.Partial, error) { return nil, errors.New("boom") }
func (dyingWorker) Close() error                    { return nil }

// TestJoinStopDrainsGracefully exercises the worker-side graceful
// shutdown: a join-mode worker told to stop mid-run finishes or hands
// back its jobs and returns nil, while the run completes bit-identical
// on the surviving worker.
func TestJoinStopDrainsGracefully(t *testing.T) {
	p := testParams(sim.Conventional)
	o := testOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	ln, joiners, err := ListenWorkers("127.0.0.1:0", NetConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	stop := make(chan struct{})
	joinErr := make(chan error, 1)
	go func() {
		joinErr <- JoinStop(ln.Addr().String(), 1, NetConfig{}, stop)
	}()
	joined := <-joiners // the worker's handshake completed
	defer joined.Close()

	done := make(chan struct{})
	var res []RunResult
	var runErr error
	go func() {
		defer close(done)
		res, runErr = RunPipelineSource(
			[]RunSpec{{Params: p, Options: o, Shards: 16}},
			[]Worker{joined, NewInProcessWorker("local", 1)}, nil, nil)
	}()
	close(stop) // drain the joined worker mid-run
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	if g, w := summaryBytes(t, res[0].Summary), summaryBytes(t, base); string(g) != string(w) {
		t.Errorf("summary diverged after graceful drain\n got %s\nwant %s", g, w)
	}
	select {
	case err := <-joinErr:
		if err != nil {
			t.Errorf("JoinStop returned %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("JoinStop did not return")
	}
}

// TestListenAndServeNetStop exercises the serve-mode graceful shutdown:
// the listener told to stop returns nil after its connections drain,
// and a run in progress completes on the surviving worker.
func TestListenAndServeNetStop(t *testing.T) {
	p := testParams(sim.Conventional)
	o := testOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	addrCh := make(chan net.Addr, 1)
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- ListenAndServeNetStop("127.0.0.1:0", NetConfig{}, func(a net.Addr) { addrCh <- a }, stop)
	}()
	addr := <-addrCh
	remote, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	done := make(chan struct{})
	var res []RunResult
	var runErr error
	go func() {
		defer close(done)
		res, runErr = RunPipelineSource(
			[]RunSpec{{Params: p, Options: o, Shards: 16}},
			[]Worker{remote, NewInProcessWorker("local", 1)}, nil, nil)
	}()
	close(stop) // drain the TCP worker mid-run
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	if g, w := summaryBytes(t, res[0].Summary), summaryBytes(t, base); string(g) != string(w) {
		t.Errorf("summary diverged after serve-side drain\n got %s\nwant %s", g, w)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Errorf("ListenAndServeNetStop returned %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("ListenAndServeNetStop did not return")
	}
}

// TestRunFingerprintStable pins the exported fingerprint across
// processes and versions: result caches key on it, so it must never
// drift for an unchanged configuration.
func TestRunFingerprintStable(t *testing.T) {
	p := testParams(sim.Conventional)
	o := testOptions()
	fp, err := FingerprintOf(p, o)
	if err != nil {
		t.Fatal(err)
	}
	const want = "1d7f75bf838b0c5f"
	if fp != want {
		t.Errorf("fingerprint drifted: got %s, want %s", fp, want)
	}
}

// TestRunFingerprintScheduleIndependent checks what the fingerprint
// must and must not cover.
func TestRunFingerprintScheduleIndependent(t *testing.T) {
	p := testParams(sim.Conventional)
	o := testOptions()
	base, err := FingerprintOf(p, o)
	if err != nil {
		t.Fatal(err)
	}
	// Schedule-only knobs do not change the result, so not the key.
	o2 := o
	o2.Workers = 17
	if fp, _ := FingerprintOf(p, o2); fp != base {
		t.Error("Workers changed the fingerprint")
	}
	// The confidence default and its explicit value are one run.
	o3 := o
	o3.Confidence = 0.99
	if fp, _ := FingerprintOf(p, o3); fp != base {
		t.Error("default vs explicit confidence changed the fingerprint")
	}
	// Result-affecting fields must change the key.
	o4 := o
	o4.Seed++
	if fp, _ := FingerprintOf(p, o4); fp == base {
		t.Error("seed change kept the fingerprint")
	}
	o5 := o
	o5.Iterations *= 2
	if fp, _ := FingerprintOf(p, o5); fp == base {
		t.Error("iteration change kept the fingerprint")
	}
	// Biasing changes the sampled measure, so biased and unbiased runs
	// must never alias — and auto is its own key (it resolves
	// deterministically, but against the parameters).
	o6 := o
	o6.Bias = 4
	fpBias, _ := FingerprintOf(p, o6)
	if fpBias == base {
		t.Error("bias factor kept the fingerprint")
	}
	o7 := o
	o7.Bias = sim.BiasAuto
	if fp, _ := FingerprintOf(p, o7); fp == base || fp == fpBias {
		t.Error("auto bias aliased another run")
	}
	// An explicit factor 1 is off — one run with the unbiased default.
	o8 := o
	o8.Bias = 1
	if fp, _ := FingerprintOf(p, o8); fp != base {
		t.Error("explicit bias 1 changed the fingerprint")
	}
	// Domain separation from the checkpoint fingerprint.
	w, err := EncodeParams(p)
	if err != nil {
		t.Fatal(err)
	}
	if RunFingerprint(w, o) == Fingerprint(w, o, 1) {
		t.Error("run fingerprint collides with the checkpoint fingerprint")
	}
}
