// Package shard distributes Monte-Carlo availability runs across
// processes and machines. A coordinator partitions a run's iteration
// range [0, N) into contiguous shards along the canonical accumulation
// cells of internal/sim, hands shards to workers — local processes
// spawned via os/exec, or remote machines attached over TCP — and
// folds the returned cell partials into a Summary that is bit-identical
// to a single-process sim.Run, whatever the shard count, worker count
// or schedule.
//
// Beyond single fixed-N runs, the coordinator also executes adaptive
// (precision-targeted) runs — shards handed out in geometrically
// growing waves, results merged in completion order, the stopping rule
// re-checked at every cell boundary of the banked prefix, and
// outstanding jobs cancelled once it binds (RunPipeline, sim.StopScan)
// — and pipelines several runs through one shared worker pool so a
// scenario sweep's next point starts while the previous one drains
// (RunPipeline, internal/sweep.MonteCarlo).
//
// The determinism rests on two contracts from lower layers: every
// iteration reseeds its RNG stream from (seed, iteration index), so a
// lifetime is a pure function of the master seed; and partials are
// produced per canonical cell (sim.CellSize is a function of the
// iteration count alone) and merged in cell order, so the
// floating-point merge tree never depends on the partitioning.
//
// Workers speak a newline-delimited JSON protocol (one message object
// per line): hello for the version/auth handshake, job to assign a
// shard, result/error to answer, cancel/cancelled to abandon a job
// whose iterations an adaptive run no longer needs, ping as a liveness
// heartbeat. TCP links (coordinator-dials-worker and
// worker-joins-coordinator alike) open with a three-message
// authenticated hello exchange — optionally inside TLS — and carry
// heartbeats both ways, so a half-open or stalled peer is detected
// within a bounded deadline instead of wedging a receive loop forever.
// Completed shards are appended to a checkpoint log, so a killed
// coordinator resumes without recomputing them, and shards assigned to
// a worker that dies are handed to the survivors. See README.md
// ("Sharded execution" and "Adaptive precision") for the full protocol
// and failure-handling story.
package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"herald/internal/dist"
	"herald/internal/sim"
)

// ProtocolVersion identifies the wire protocol; hello messages carry
// it and mismatches abort the connection. Version 2 added the
// cancel/cancelled pair adaptive runs use to abandon jobs whose
// iterations the stopping rule made unnecessary. Version 3 added the
// authenticated handshake (nonce/mac hello fields), heartbeat pings
// with read deadlines, worker join/registration (capacity
// advertisement), and queued job delivery (double-buffering): a
// coordinator may keep more than one job outstanding per connection
// and the worker executes them strictly in arrival order.
const ProtocolVersion = 3

// Message types.
const (
	// MsgHello opens a connection (see the handshake in net.go): it
	// carries the protocol version, a random nonce, and — when a shared
	// token is configured — an HMAC proving knowledge of the token over
	// both sides' nonces. On TCP links each side also advertises its
	// heartbeat interval and, for workers, their job capacity.
	MsgHello = "hello"
	// MsgJob assigns one shard to a worker. Workers queue jobs and
	// execute them one at a time in arrival order, so a coordinator may
	// send the next job before the previous one answered.
	MsgJob = "job"
	// MsgResult returns a completed shard's cell partials.
	MsgResult = "result"
	// MsgError reports a job-level failure (ID set) or a connection-
	// level rejection such as failed authentication (ID zero).
	MsgError = "error"
	// MsgCancel asks the worker to abandon an in-flight job (sent by
	// the coordinator once an adaptive run's stopping rule binds). The
	// worker answers the job with cancelled — or with result/error if
	// the job had already finished when the cancel arrived.
	MsgCancel = "cancel"
	// MsgCancelled acknowledges an abandoned job; no partials follow.
	MsgCancelled = "cancelled"
	// MsgPing is a liveness heartbeat, sent periodically in both
	// directions on TCP links and ignored by the receiver beyond
	// resetting its read deadline. A half-open peer stops producing
	// them and is detected when the deadline fires.
	MsgPing = "ping"
)

// Message is the envelope of every protocol exchange: one JSON object
// per line, with Type selecting which fields are meaningful.
type Message struct {
	Type string `json:"type"`
	// Version accompanies hello.
	Version int `json:"version,omitempty"`
	// Nonce is this side's random handshake nonce (hex), carried by
	// hello messages on authenticated links.
	Nonce string `json:"nonce,omitempty"`
	// MAC is the hex HMAC-SHA256 over both handshake nonces keyed by
	// the shared token; it proves knowledge of the token without
	// sending it.
	MAC string `json:"mac,omitempty"`
	// Capacity is a worker's advertised job parallelism (hello; 0
	// means "all local cores").
	Capacity int `json:"capacity,omitempty"`
	// HeartbeatMS is the sender's heartbeat interval in milliseconds
	// (hello); the receiver sizes its read deadline from it. Zero means
	// the sender does not heartbeat (stdio pipes).
	HeartbeatMS int `json:"heartbeat_ms,omitempty"`
	// Job accompanies job messages.
	Job *Job `json:"job,omitempty"`
	// ID names the job a result, error, cancel or cancelled message
	// refers to.
	ID int `json:"id"`
	// Partials carry a result's per-cell outcomes.
	Partials []sim.Partial `json:"partials,omitempty"`
	// Error carries a job failure description.
	Error string `json:"error,omitempty"`
}

// Job describes one shard assignment: the iteration range, plus the
// full simulation configuration so a bare worker process needs no
// other context. ID is unique per coordinator (a pipelined coordinator
// multiplexes several runs over one worker pool, so the job id — not
// the shard index — pairs answers with assignments). Options always
// describe a fixed range: the coordinator strips the adaptive fields
// and substitutes the run's iteration cap before dispatch.
type Job struct {
	ID      int         `json:"id"`
	Start   int         `json:"start"`
	End     int         `json:"end"`
	Params  WireParams  `json:"params"`
	Options sim.Options `json:"options"`
	// Cancellable marks jobs the coordinator may cancel mid-flight
	// (shards of an adaptive run). Since protocol v3 every job executes
	// off the receive loop and can be interrupted, so the flag is
	// informational, kept on the wire for observability.
	Cancellable bool `json:"cancellable,omitempty"`
}

// WireParams is the serializable form of sim.ArrayParams, with every
// distribution encoded as a dist.Spec.
type WireParams struct {
	Disks           int        `json:"disks"`
	TTF             dist.Spec  `json:"ttf"`
	Repair          dist.Spec  `json:"repair"`
	TapeRestore     dist.Spec  `json:"tape_restore"`
	HERecovery      *dist.Spec `json:"he_recovery,omitempty"`
	HEP             float64    `json:"hep"`
	CrashRate       float64    `json:"crash_rate"`
	ResyncAfterUndo bool       `json:"resync_after_undo"`
	Policy          int        `json:"policy"`
	SpareRebuild    *dist.Spec `json:"spare_rebuild,omitempty"`
	SpareSwap       *dist.Spec `json:"spare_swap,omitempty"`
}

// EncodeParams converts simulation parameters to their wire form.
func EncodeParams(p sim.ArrayParams) (WireParams, error) {
	w := WireParams{
		Disks:           p.Disks,
		HEP:             p.HEP,
		CrashRate:       p.CrashRate,
		ResyncAfterUndo: p.ResyncAfterUndo,
		Policy:          int(p.Policy),
	}
	var err error
	req := func(name string, d dist.Distribution) dist.Spec {
		if err != nil {
			return dist.Spec{}
		}
		if d == nil {
			err = fmt.Errorf("shard: required distribution %s is nil", name)
			return dist.Spec{}
		}
		sp, e := dist.SpecOf(d)
		if e != nil {
			err = fmt.Errorf("shard: %s: %w", name, e)
		}
		return sp
	}
	opt := func(name string, d dist.Distribution) *dist.Spec {
		if err != nil || d == nil {
			return nil
		}
		sp, e := dist.SpecOf(d)
		if e != nil {
			err = fmt.Errorf("shard: %s: %w", name, e)
			return nil
		}
		return &sp
	}
	w.TTF = req("TTF", p.TTF)
	w.Repair = req("Repair", p.Repair)
	w.TapeRestore = req("TapeRestore", p.TapeRestore)
	w.HERecovery = opt("HERecovery", p.HERecovery)
	w.SpareRebuild = opt("SpareRebuild", p.SpareRebuild)
	w.SpareSwap = opt("SpareSwap", p.SpareSwap)
	if err != nil {
		return WireParams{}, err
	}
	return w, nil
}

// Decode rebuilds the simulation parameters from their wire form.
func (w WireParams) Decode() (sim.ArrayParams, error) {
	p := sim.ArrayParams{
		Disks:           w.Disks,
		HEP:             w.HEP,
		CrashRate:       w.CrashRate,
		ResyncAfterUndo: w.ResyncAfterUndo,
		Policy:          sim.Policy(w.Policy),
	}
	var err error
	req := func(name string, sp dist.Spec) dist.Distribution {
		if err != nil {
			return nil
		}
		d, e := sp.Distribution()
		if e != nil {
			err = fmt.Errorf("shard: %s: %w", name, e)
		}
		return d
	}
	opt := func(name string, sp *dist.Spec) dist.Distribution {
		if err != nil || sp == nil {
			return nil
		}
		d, e := sp.Distribution()
		if e != nil {
			err = fmt.Errorf("shard: %s: %w", name, e)
			return nil
		}
		return d
	}
	p.TTF = req("TTF", w.TTF)
	p.Repair = req("Repair", w.Repair)
	p.TapeRestore = req("TapeRestore", w.TapeRestore)
	p.HERecovery = opt("HERecovery", w.HERecovery)
	p.SpareRebuild = opt("SpareRebuild", w.SpareRebuild)
	p.SpareSwap = opt("SpareSwap", w.SpareSwap)
	if err != nil {
		return sim.ArrayParams{}, err
	}
	return p, nil
}

// Transport frames Messages over a byte stream: newline-delimited JSON
// in both directions. Send is safe for concurrent use; Recv is not.
type Transport interface {
	Send(*Message) error
	Recv() (*Message, error)
	Close() error
}

// connTransport implements Transport over any read-write stream (a
// TCP connection, a child process's stdio pipes, an in-memory pipe in
// tests).
type connTransport struct {
	mu   sync.Mutex
	enc  *json.Encoder
	dec  *json.Decoder
	c    io.Closer
	once sync.Once
}

// NewTransport frames newline-delimited JSON messages over rw. If rw
// is an io.Closer, Close closes it.
func NewTransport(rw io.ReadWriter) Transport {
	t := &connTransport{
		enc: json.NewEncoder(rw),
		dec: json.NewDecoder(rw),
	}
	if c, ok := rw.(io.Closer); ok {
		t.c = c
	}
	return t
}

func (t *connTransport) Send(m *Message) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enc.Encode(m)
}

func (t *connTransport) Recv() (*Message, error) {
	var m Message
	if err := t.dec.Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

func (t *connTransport) Close() error {
	var err error
	t.once.Do(func() {
		if t.c != nil {
			err = t.c.Close()
		}
	})
	return err
}
