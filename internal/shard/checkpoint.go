package shard

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"

	"herald/internal/sim"
)

// The checkpoint is a newline-delimited JSON log. Line one is a header
// binding the file to a run fingerprint (parameters, options, shard
// partition); each following line records one completed shard with its
// cell partials. Appending is the only write mode during a run, so a
// crash can at worst tear the final line — the loader drops an
// unparsable or invalid tail and the torn shard is simply recomputed.
// On resume the surviving records are compacted into a fresh file
// first, so the log never accretes torn garbage between lines.

type checkpointHeader struct {
	Type        string `json:"type"` // "header"
	Fingerprint string `json:"fingerprint"`
	Iterations  int    `json:"iterations"`
	Seed        uint64 `json:"seed"`
	Shards      int    `json:"shards"`
}

type checkpointRecord struct {
	Type     string        `json:"type"` // "shard"
	ID       int           `json:"id"`
	Partials []sim.Partial `json:"partials"`
}

// Fingerprint binds a checkpoint to one exact run configuration: the
// wire-encoded parameters, the result-affecting options, and the
// shard partition, hashed with FNV-1a over their canonical JSON.
// Schedule-only knobs (Workers) are excluded — results are
// partition-independent, so a run may resume on a box with a
// different worker count.
func Fingerprint(p WireParams, o sim.Options, shards int) string {
	o.Workers = 0
	h := fnv.New64a()
	enc := json.NewEncoder(h)
	_ = enc.Encode(p)
	_ = enc.Encode(o)
	_ = enc.Encode(shards)
	return fmt.Sprintf("%016x", h.Sum64())
}

// checkpoint is an open append-mode checkpoint log.
type checkpoint struct {
	f   *os.File
	enc *json.Encoder
}

// record appends one completed shard and flushes it to disk.
func (c *checkpoint) record(id int, parts []sim.Partial) error {
	if c == nil {
		return nil
	}
	if err := c.enc.Encode(checkpointRecord{Type: "shard", ID: id, Partials: parts}); err != nil {
		return fmt.Errorf("shard: checkpoint write: %w", err)
	}
	return c.f.Sync()
}

func (c *checkpoint) close() error {
	if c == nil {
		return nil
	}
	return c.f.Close()
}

// tilesRange reports whether parts exactly tile [start, end) and were
// produced under the given seed and mission time: the validity test
// for worker results and checkpointed shards.
func tilesRange(parts []sim.Partial, start, end int, seed uint64, mission float64) bool {
	if len(parts) == 0 {
		return false
	}
	sorted := append([]sim.Partial(nil), parts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	cursor := start
	for i := range sorted {
		pt := &sorted[i]
		if pt.Start != cursor || pt.End <= pt.Start || pt.Seed != seed || pt.MissionTime != mission {
			return false
		}
		if pt.Avail.N() != int64(pt.End-pt.Start) {
			return false
		}
		cursor = pt.End
	}
	return cursor == end
}

// loadCheckpoint reads an existing checkpoint file, returning the
// completed shards that validate against the current run (fingerprint,
// shard ranges, observation counts). Torn or invalid trailing data is
// dropped with a warning to logw. A fingerprint mismatch is an error:
// the file belongs to a different run and must not be silently
// clobbered.
func loadCheckpoint(path, fp string, shards []sim.Range, seed uint64, mission float64, logw io.Writer) (map[int][]sim.Partial, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	done := make(map[int][]sim.Partial)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if line == 1 {
			var h checkpointHeader
			if err := json.Unmarshal(raw, &h); err != nil || h.Type != "header" {
				return nil, fmt.Errorf("shard: checkpoint %s: malformed header", path)
			}
			if h.Fingerprint != fp {
				return nil, fmt.Errorf("shard: checkpoint %s belongs to a different run (fingerprint %s, want %s)",
					path, h.Fingerprint, fp)
			}
			continue
		}
		var rec checkpointRecord
		if err := json.Unmarshal(raw, &rec); err != nil || rec.Type != "shard" {
			// A torn tail from a crash mid-append: everything before it
			// is intact, so stop here and recompute the rest.
			fmt.Fprintf(logw, "shard: checkpoint %s: dropping torn record at line %d\n", path, line)
			break
		}
		if rec.ID < 0 || rec.ID >= len(shards) {
			fmt.Fprintf(logw, "shard: checkpoint %s: dropping record for unknown shard %d\n", path, rec.ID)
			continue
		}
		r := shards[rec.ID]
		if !tilesRange(rec.Partials, r.Start, r.End, seed, mission) {
			fmt.Fprintf(logw, "shard: checkpoint %s: dropping invalid record for shard %d\n", path, rec.ID)
			continue
		}
		if _, dup := done[rec.ID]; dup {
			continue
		}
		done[rec.ID] = rec.Partials
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("shard: checkpoint %s: %w", path, err)
	}
	if line == 0 {
		return nil, fmt.Errorf("shard: checkpoint %s: empty file", path)
	}
	return done, nil
}

// openCheckpoint prepares the checkpoint at path for a run: loading
// completed shards from an existing file (after validating its
// fingerprint) and compacting the survivors into a fresh log, or
// creating a new log when none exists. It returns the completed
// shards and the open append handle.
func openCheckpoint(path, fp string, shards []sim.Range, seed uint64, mission float64, logw io.Writer) (map[int][]sim.Partial, *checkpoint, error) {
	var done map[int][]sim.Partial
	if _, err := os.Stat(path); err == nil {
		done, err = loadCheckpoint(path, fp, shards, seed, mission, logw)
		if err != nil {
			return nil, nil, err
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}

	// Rewrite the log from the validated records (write-temp + rename),
	// so a previous torn tail never corrupts subsequent appends.
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, nil, err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(checkpointHeader{
		Type: "header", Fingerprint: fp, Iterations: shardsEnd(shards), Seed: seed, Shards: len(shards),
	}); err != nil {
		f.Close()
		return nil, nil, err
	}
	ids := make([]int, 0, len(done))
	for id := range done {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := enc.Encode(checkpointRecord{Type: "shard", ID: id, Partials: done[id]}); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Close(); err != nil {
		return nil, nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, nil, err
	}
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return done, &checkpoint{f: af, enc: json.NewEncoder(af)}, nil
}

// shardsEnd returns the end of the last shard (the run's iteration
// count).
func shardsEnd(shards []sim.Range) int {
	if len(shards) == 0 {
		return 0
	}
	return shards[len(shards)-1].End
}
