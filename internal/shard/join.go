package shard

import (
	"fmt"
	"io"
	"os"
	"time"

	"herald/internal/xrand"
)

const (
	defaultRetryBase = 500 * time.Millisecond
	defaultRetryMax  = 30 * time.Second
)

// joinBackoff produces the reconnect delay ladder of JoinLoop: capped
// exponential growth with deterministic jitter. Every delay is the
// nominal base<<attempt (capped at max) scaled into [1/2, 1) by the
// next draw of a seeded xrand stream, so two workers with different
// seeds never fall into dial lockstep, while a test replaying the same
// seed sees the identical sequence.
type joinBackoff struct {
	base, max time.Duration
	attempt   int
	src       *xrand.Source
}

func newJoinBackoff(base, max time.Duration, seed uint64) *joinBackoff {
	if base <= 0 {
		base = defaultRetryBase
	}
	if max < base {
		max = defaultRetryMax
		if max < base {
			max = base
		}
	}
	return &joinBackoff{base: base, max: max, src: xrand.New(seed)}
}

// next returns the delay before the upcoming reconnect attempt and
// advances the ladder.
func (b *joinBackoff) next() time.Duration {
	d := b.base
	for i := 0; i < b.attempt && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	b.attempt++
	// Jitter into [d/2, d): the draw is consumed even at the cap so the
	// sequence stays a pure function of (seed, attempt index).
	return d/2 + time.Duration(b.src.Float64()*float64(d/2))
}

// reset drops the ladder back to the base delay after a healthy
// session (one whose handshake completed).
func (b *joinBackoff) reset() { b.attempt = 0 }

// JoinLoop supervises Join: it dials the coordinator, serves shard
// jobs, and — when the session dies of a transport or handshake error
// (connection refused, mid-frame cut, stalled peer tripping the read
// deadline, auth rejection) — reconnects with capped exponential
// backoff and deterministic jitter (NetConfig.Retry*). A clean
// coordinator close (EOF between frames: the coordinator finished and
// closed the link) ends the loop with nil, as does a close of stop;
// every other outcome is retried forever, so a worker box outlives
// coordinator restarts and network partitions. A session that got past
// the handshake resets the backoff ladder, so a long-healthy worker
// redials quickly after a one-off drop instead of paying the
// accumulated penalty.
//
// logw (nil = discard) receives one line per failed session and per
// reconnect delay.
func JoinLoop(addr string, capacity int, nc NetConfig, stop <-chan struct{}, logw io.Writer) error {
	if logw == nil {
		logw = io.Discard
	}
	seed := nc.RetrySeed
	if seed == 0 {
		// Derive from the process identity: workers on one box (or
		// respawns of the same worker) land on distinct streams.
		seed = uint64(os.Getpid())*1e9 + uint64(time.Now().UnixNano()&0xffffffff)
	}
	backoff := newJoinBackoff(nc.RetryBase, nc.RetryMax, seed)
	for {
		joined, err := joinOnce(addr, capacity, nc, stop)
		if stopped(stop) {
			return nil
		}
		if err == nil {
			if joined {
				return nil // clean coordinator close
			}
			// Defensive: joinOnce never returns (false, nil) today, but a
			// sessionless nil must not be mistaken for a clean close.
			err = fmt.Errorf("shard: join %s: session ended before handshake", addr)
		}
		if joined {
			backoff.reset()
		}
		d := backoff.next()
		fmt.Fprintf(logw, "shard: join %s: %v; reconnecting in %s\n", addr, err, d.Round(time.Millisecond))
		select {
		case <-stop:
			return nil
		case <-time.After(d):
		}
	}
}

// stopped reports whether the stop channel is closed.
func stopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}
