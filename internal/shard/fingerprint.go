package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"

	"herald/internal/sim"
)

// RunFingerprint canonically identifies a run's *result*: every
// result-affecting input — the wire-encoded parameters and the options,
// with schedule-only knobs (Workers) zeroed and defaults normalized —
// hashed with FNV-1a over canonical JSON, domain-separated from the
// checkpoint fingerprint (which additionally binds the shard
// partition; results are partition-independent, so a result cache must
// not). Because execution is bit-identical across worker and shard
// counts, two runs with equal fingerprints produce byte-identical
// Summaries — an exact cache key, not an approximate one.
//
// The string is stable across processes, machines and repo versions
// (pinned by a test); changing what it covers requires bumping the
// domain label.
func RunFingerprint(p WireParams, o sim.Options) string {
	o.Workers = 0
	if o.Confidence == 0 {
		o.Confidence = 0.99 // the sim default; 0 and 0.99 are one run
	}
	if o.Bias == 1 {
		o.Bias = 0 // an explicit factor of 1 is off; one run either way
	}
	h := fnv.New64a()
	_, _ = io.WriteString(h, "herald-run-fp-v1\n")
	enc := json.NewEncoder(h)
	_ = enc.Encode(p)
	_ = enc.Encode(o)
	return fmt.Sprintf("%016x", h.Sum64())
}

// FingerprintOf is RunFingerprint from in-memory parameters: they are
// wire-encoded first, so the fingerprint matches what a server computes
// for the equivalent request.
func FingerprintOf(p sim.ArrayParams, o sim.Options) (string, error) {
	w, err := EncodeParams(p)
	if err != nil {
		return "", err
	}
	return RunFingerprint(w, o), nil
}
