package shard

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"herald/internal/sim"
)

func newBlockedPool(t *testing.T) (*Pool, *blockingWorker) {
	t.Helper()
	bw := &blockingWorker{
		inner:   NewInProcessWorker("inner", 1),
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	pool, err := NewPool([]Worker{bw}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pool, bw
}

// finishPool releases a held worker and closes the pool.
func finishPool(t *testing.T, pool *Pool, bw *blockingWorker) {
	t.Helper()
	select {
	case <-bw.release:
	default:
		close(bw.release)
	}
	pool.Close()
}

// TestSubmitCtxCancelAbortsRun pins deadline propagation: cancelling
// the submission context resolves the ticket with the cancellation
// cause, and the pool survives to run the next submission
// bit-identically.
func TestSubmitCtxCancelAbortsRun(t *testing.T) {
	pool, bw := newBlockedPool(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tk, err := pool.SubmitCtx(ctx, RunSpec{Params: testParams(sim.Conventional), Options: testOptions(), Shards: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-bw.started
	cancel()
	if _, err := tk.Wait(); err == nil {
		t.Fatal("cancelled run resolved cleanly")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want a context.Canceled chain", err)
	}
	// The pool must stay healthy: release the worker and run again.
	close(bw.release)
	p := testParams(sim.Conventional)
	o := testOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	tk2, err := pool.Submit(RunSpec{Params: p, Options: o, Shards: 2}, nil)
	if err != nil {
		t.Fatalf("submit after cancel: %v", err)
	}
	res, err := tk2.Wait()
	if err != nil {
		t.Fatalf("run after cancel: %v", err)
	}
	if g, w := summaryBytes(t, res.Summary), summaryBytes(t, base); string(g) != string(w) {
		t.Errorf("post-cancel summary diverged\n got %s\nwant %s", g, w)
	}
	pool.Close()
}

// TestSubmitCtxDeadlineAbortsRun pins the -run-timeout path: an
// expired context deadline aborts the in-flight run with a
// DeadlineExceeded chain.
func TestSubmitCtxDeadlineAbortsRun(t *testing.T) {
	pool, bw := newBlockedPool(t)
	defer finishPool(t, pool, bw)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	tk, err := pool.SubmitCtx(ctx, RunSpec{Params: testParams(sim.Conventional), Options: testOptions(), Shards: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-bw.started
	if _, err := tk.Wait(); err == nil {
		t.Fatal("overdue run resolved cleanly")
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("overdue run returned %v, want a DeadlineExceeded chain", err)
	}
}

// TestSubmitCtxRejectsDoneContext pins fail-fast submission: an
// already-cancelled context never reaches the dispatcher.
func TestSubmitCtxRejectsDoneContext(t *testing.T) {
	pool, bw := newBlockedPool(t)
	defer finishPool(t, pool, bw)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pool.SubmitCtx(ctx, RunSpec{Params: testParams(sim.Conventional), Options: testOptions()}, nil); err == nil {
		t.Fatal("submit with a done context succeeded")
	}
}

// TestTicketCancel pins the explicit cancel lever used by serve's
// drain path.
func TestTicketCancel(t *testing.T) {
	pool, bw := newBlockedPool(t)
	defer finishPool(t, pool, bw)
	tk, err := pool.Submit(RunSpec{Params: testParams(sim.Conventional), Options: testOptions(), Shards: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-bw.started
	tk.Cancel()
	if _, err := tk.Wait(); err == nil {
		t.Fatal("cancelled ticket resolved cleanly")
	} else if !strings.Contains(err.Error(), "cancelled by caller") {
		t.Fatalf("cancelled ticket returned %v, want a caller-cancel error", err)
	}
}

// TestLocalFallbackCompletesRun pins degraded mode: when every real
// worker dies, the armed in-process fallback finishes the run and the
// Summary stays byte-identical to the in-process baseline.
func TestLocalFallbackCompletesRun(t *testing.T) {
	p := testParams(sim.Conventional)
	o := testOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPoolOptions([]Worker{dyingWorker{}}, nil, nil, PoolOptions{LocalFallback: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	tk, err := pool.Submit(RunSpec{Params: p, Options: o, Shards: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatalf("run with fallback: %v", err)
	}
	if g, w := summaryBytes(t, res.Summary), summaryBytes(t, base); string(g) != string(w) {
		t.Errorf("fallback summary diverged\n got %s\nwant %s", g, w)
	}
	h := pool.Health()
	if !h.FallbackArmed {
		t.Error("health does not report the armed fallback")
	}
	if !h.Ready() {
		t.Errorf("pool with an armed fallback reports unready: %+v", h)
	}
}

// TestPoolOptionsFallbackOnly pins the no-workers degraded
// configuration: a pool may start with nothing but a local fallback.
func TestPoolOptionsFallbackOnly(t *testing.T) {
	p := testParams(sim.Conventional)
	o := testOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPoolOptions(nil, nil, nil, PoolOptions{LocalFallback: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	tk, err := pool.Submit(RunSpec{Params: p, Options: o, Shards: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatalf("fallback-only run: %v", err)
	}
	if g, w := summaryBytes(t, res.Summary), summaryBytes(t, base); string(g) != string(w) {
		t.Errorf("fallback-only summary diverged\n got %s\nwant %s", g, w)
	}
}

// TestPoolHealthTransitions pins the /readyz source of truth: a
// populated pool is ready, a closed pool is not.
func TestPoolHealthTransitions(t *testing.T) {
	pool, err := NewPool([]Worker{NewInProcessWorker("a", 1), NewInProcessWorker("b", 1)}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := pool.Health()
	if h.LiveSlots != 2 || !h.Ready() {
		t.Fatalf("fresh pool health %+v, want 2 live workers and ready", h)
	}
	pool.Close()
	if h := pool.Health(); h.Ready() || h.Err == nil {
		t.Fatalf("closed pool health %+v, want unready with an error", h)
	}
}
