package shard

import (
	"bytes"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"herald/internal/sim"
)

// TestJoinBackoffSequence pins the reconnect ladder: deterministic per
// seed, each delay jittered into [nominal/2, nominal) of the capped
// exponential, reset drops back to base, and distinct seeds diverge.
func TestJoinBackoffSequence(t *testing.T) {
	const base, max = 100 * time.Millisecond, 2 * time.Second
	a := newJoinBackoff(base, max, 7)
	b := newJoinBackoff(base, max, 7)
	var seq []time.Duration
	for i := 0; i < 12; i++ {
		da, db := a.next(), b.next()
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		seq = append(seq, da)
	}
	for i, d := range seq {
		nominal := base
		for k := 0; k < i && nominal < max; k++ {
			nominal *= 2
		}
		if nominal > max {
			nominal = max
		}
		if d < nominal/2 || d >= nominal {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", i, d, nominal/2, nominal)
		}
	}
	a.reset()
	if d := a.next(); d < base/2 || d >= base {
		t.Errorf("after reset: delay %v outside [%v, %v)", d, base/2, base)
	}
	c := newJoinBackoff(base, max, 8)
	diverged := false
	for i := 0; i < 12; i++ {
		if c.next() != seq[i%len(seq)] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("seeds 7 and 8 produced identical jitter sequences")
	}
}

// syncLog is a goroutine-safe log sink for supervision tests.
type syncLog struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (l *syncLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

func (l *syncLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.String()
}

// TestJoinLoopRetriesUntilStopped points a supervised joiner at an
// address nobody listens on: every dial fails, the loop must keep
// rescheduling (never return an error), and a stop close must end it
// with nil.
func TestJoinLoopRetriesUntilStopped(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port: dials now fail fast
	nc := NetConfig{RetryBase: 5 * time.Millisecond, RetryMax: 20 * time.Millisecond, RetrySeed: 1}
	stop := make(chan struct{})
	logw := &syncLog{}
	done := make(chan error, 1)
	go func() { done <- JoinLoop(addr, 1, nc, stop, logw) }()
	deadline := time.Now().Add(10 * time.Second)
	for strings.Count(logw.String(), "reconnecting in") < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("join loop logged no retries:\n%s", logw.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stopped join loop returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("join loop did not honor stop")
	}
}

// TestJoinLoopCleanCloseEndsLoop runs a full pipeline over a
// supervised joiner: the coordinator finishing and closing the link is
// a clean close, so JoinLoop must return nil instead of reconnecting —
// and the run's Summary must stay byte-identical to the in-process
// baseline.
func TestJoinLoopCleanCloseEndsLoop(t *testing.T) {
	p := testParams(sim.Conventional)
	o := testOptions()
	base, err := sim.Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	nc := NetConfig{Token: "join-loop", RetryBase: 10 * time.Millisecond, RetryMax: 50 * time.Millisecond, RetrySeed: 2}
	ln, joiners, err := ListenWorkers("127.0.0.1:0", nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() { done <- JoinLoop(ln.Addr().String(), 2, nc, nil, io.Discard) }()

	pool, err := NewPool(nil, joiners, nil)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := pool.Submit(RunSpec{Params: p, Options: o, Shards: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatalf("run over supervised joiner: %v", err)
	}
	if g, w := summaryBytes(t, res.Summary), summaryBytes(t, base); string(g) != string(w) {
		t.Errorf("summary diverged\n got %s\nwant %s", g, w)
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("pool close: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("join loop returned %v after a clean coordinator close, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("join loop kept reconnecting after a clean coordinator close")
	}
}
