package shard

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"io"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"herald/internal/sim"
)

// startWorkerServer runs ListenAndServeNet on a free port and returns
// the bound address. The serve goroutine leaks for the test's
// lifetime, like the plaintext TCP tests.
func startWorkerServer(t *testing.T, nc NetConfig) string {
	t.Helper()
	ready := make(chan net.Addr, 1)
	go func() {
		if err := ListenAndServeNet("127.0.0.1:0", nc, func(a net.Addr) { ready <- a }); err != nil {
			// The listener lives until process exit; report late
			// failures without t (the test may be done).
			fmt.Fprintln(os.Stderr, "test worker server:", err)
		}
	}()
	select {
	case a := <-ready:
		return a.String()
	case <-time.After(10 * time.Second):
		t.Fatal("worker server did not start")
		return ""
	}
}

// runWith executes the canonical test run on the given workers and
// returns its summary bytes.
func runWith(t *testing.T, workers []Worker, source <-chan Worker, logw io.Writer) ([]byte, Stats) {
	t.Helper()
	p := testParams(sim.Conventional)
	o := testOptions()
	res, err := RunPipelineSource([]RunSpec{{Params: p, Options: o, Shards: 4}}, workers, source, logw)
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	return summaryBytes(t, res[0].Summary), res[0].Stats
}

// baselineBytes is the single-process reference for byte-identity.
func baselineBytes(t *testing.T) []byte {
	t.Helper()
	base, err := sim.Run(testParams(sim.Conventional), testOptions())
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	return summaryBytes(t, base)
}

// TestAuthRejection pins the handshake contract: a dialer with the
// wrong token — or none — is rejected with a clean error before any
// job flows, and the right token runs to a bit-identical Summary.
func TestAuthRejection(t *testing.T) {
	addr := startWorkerServer(t, NetConfig{Token: "conf-date-2017"})

	for _, bad := range []string{"wrong-token", ""} {
		w, err := DialNet(addr, NetConfig{Token: bad, HandshakeTimeout: 5 * time.Second})
		if err == nil {
			w.Close()
			t.Fatalf("dial with token %q succeeded, want auth rejection", bad)
		}
		if !strings.Contains(err.Error(), "authentication failed") {
			t.Errorf("dial with token %q: error %q does not name the auth failure", bad, err)
		}
	}

	w, err := DialNet(addr, NetConfig{Token: "conf-date-2017"})
	if err != nil {
		t.Fatalf("dial with the right token: %v", err)
	}
	defer w.Close()
	got, _ := runWith(t, []Worker{w}, nil, nil)
	if !bytes.Equal(got, baselineBytes(t)) {
		t.Error("authenticated run is not byte-identical to the single-process baseline")
	}
}

// TestWorkerRejectsUnauthenticatedCoordinator covers the other
// direction: a token-holding dialer refuses a worker that cannot prove
// the token, so a spoofed worker cannot feed results into a run.
func TestWorkerRejectsUnauthenticatedCoordinator(t *testing.T) {
	addr := startWorkerServer(t, NetConfig{}) // open worker, no token
	w, err := DialNet(addr, NetConfig{Token: "secret", HandshakeTimeout: 5 * time.Second})
	if err == nil {
		w.Close()
		t.Fatal("token-holding dial accepted a tokenless worker")
	}
	if !strings.Contains(err.Error(), "authentication failed") {
		t.Errorf("error %q does not name the auth failure", err)
	}
}

// writeTestCerts generates a throwaway CA plus a server certificate
// for 127.0.0.1 signed by it, returning PEM file paths.
func writeTestCerts(t *testing.T) (certFile, keyFile, caFile string) {
	t.Helper()
	dir := t.TempDir()

	caPub, caPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	caTmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "herald test CA"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
	}
	caDER, err := x509.CreateCertificate(rand.Reader, caTmpl, caTmpl, caPub, caPriv)
	if err != nil {
		t.Fatal(err)
	}

	srvPub, srvPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	srvTmpl := &x509.Certificate{
		SerialNumber: big.NewInt(2),
		Subject:      pkix.Name{CommonName: "herald test worker"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:  []net.IP{net.ParseIP("127.0.0.1")},
		DNSNames:     []string{"localhost"},
	}
	srvDER, err := x509.CreateCertificate(rand.Reader, srvTmpl, caTmpl, srvPub, caPriv)
	if err != nil {
		t.Fatal(err)
	}
	srvKeyDER, err := x509.MarshalPKCS8PrivateKey(srvPriv)
	if err != nil {
		t.Fatal(err)
	}

	write := func(name, blockType string, der []byte) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, pem.EncodeToMemory(&pem.Block{Type: blockType, Bytes: der}), 0600); err != nil {
			t.Fatal(err)
		}
		return path
	}
	certFile = write("server.crt", "CERTIFICATE", srvDER)
	keyFile = write("server.key", "PRIVATE KEY", srvKeyDER)
	caFile = write("ca.crt", "CERTIFICATE", caDER)
	return certFile, keyFile, caFile
}

// TestTLSTokenByteIdentity is the acceptance pin: a run over TLS with
// token auth produces byte-identical output to a plaintext run (and
// hence to the single-process baseline).
func TestTLSTokenByteIdentity(t *testing.T) {
	certFile, keyFile, caFile := writeTestCerts(t)
	serverTLS, err := ServerTLS(certFile, keyFile, "")
	if err != nil {
		t.Fatal(err)
	}
	clientTLS, err := ClientTLS(caFile, "", "", "")
	if err != nil {
		t.Fatal(err)
	}

	addr := startWorkerServer(t, NetConfig{Token: "s3cret", TLS: serverTLS})
	w, err := DialNet(addr, NetConfig{Token: "s3cret", TLS: clientTLS})
	if err != nil {
		t.Fatalf("TLS dial: %v", err)
	}
	defer w.Close()
	tlsBytes, _ := runWith(t, []Worker{w}, nil, nil)

	plainAddr := startWorkerServer(t, NetConfig{})
	pw, err := DialNet(plainAddr, NetConfig{})
	if err != nil {
		t.Fatalf("plaintext dial: %v", err)
	}
	defer pw.Close()
	plainBytes, _ := runWith(t, []Worker{pw}, nil, nil)

	if !bytes.Equal(tlsBytes, plainBytes) {
		t.Error("TLS+token run differs from plaintext run")
	}
	if !bytes.Equal(tlsBytes, baselineBytes(t)) {
		t.Error("TLS+token run differs from single-process baseline")
	}
}

// TestJoinRoundTrip is the worker-auto-discovery round trip: workers
// Join a coordinator's registration listener, the elastic pipeline
// runs entirely on joined workers, the Summary is bit-identical, and
// every Join returns cleanly once the coordinator closes it.
func TestJoinRoundTrip(t *testing.T) {
	nc := NetConfig{Token: "join-token"}
	ln, source, err := ListenWorkers("127.0.0.1:0", nc, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const joiners = 2
	joinErr := make(chan error, joiners)
	for i := 0; i < joiners; i++ {
		go func() {
			joinErr <- Join(ln.Addr().String(), 1, nc)
		}()
	}

	got, _ := runWith(t, nil, source, io.Discard)
	if !bytes.Equal(got, baselineBytes(t)) {
		t.Error("joined-worker run is not byte-identical to the single-process baseline")
	}
	for i := 0; i < joiners; i++ {
		select {
		case err := <-joinErr:
			if err != nil {
				t.Errorf("join returned %v, want clean close", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("join did not return after the run")
		}
	}
}

// TestJoinRejectedCleanly pins registration auth: a joiner with the
// wrong token gets a clean error naming the rejection, and the
// listener keeps serving legitimate joiners afterwards.
func TestJoinRejectedCleanly(t *testing.T) {
	nc := NetConfig{Token: "right"}
	var logbuf syncBuffer
	ln, source, err := ListenWorkers("127.0.0.1:0", nc, &logbuf)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	err = Join(ln.Addr().String(), 1, NetConfig{Token: "wrong", HandshakeTimeout: 5 * time.Second})
	if err == nil {
		t.Fatal("join with wrong token succeeded")
	}
	if !strings.Contains(err.Error(), "authentication failed") {
		t.Errorf("join error %q does not name the auth failure", err)
	}

	done := make(chan error, 1)
	go func() { done <- Join(ln.Addr().String(), 1, nc) }()
	got, _ := runWith(t, nil, source, io.Discard)
	if !bytes.Equal(got, baselineBytes(t)) {
		t.Error("run after rejected joiner is not byte-identical to the baseline")
	}
	if err := <-done; err != nil {
		t.Errorf("legitimate join returned %v", err)
	}
	if !strings.Contains(logbuf.String(), "rejected worker") {
		t.Error("listener log does not record the rejected registration")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for logs written from
// coordinator goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startFrozenWorker runs a protocol-correct handshake advertising a
// fast heartbeat, then goes silent: it drains incoming messages but
// never answers a job and never pings — a half-open peer from the
// coordinator's perspective (the socket stays open).
func startFrozenWorker(t *testing.T, heartbeat time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		tr := newNetTransport(conn)
		if _, err := handshakeListener(tr, NetConfig{HeartbeatInterval: heartbeat}, 1); err != nil {
			conn.Close()
			return
		}
		// Freeze: drain the coordinator's jobs and pings so its sends
		// keep succeeding, but never reply. No startHeartbeat — the
		// silence is what the test injects.
		for {
			if _, err := tr.Recv(); err != nil {
				conn.Close()
				return
			}
		}
	}()
	return ln.Addr().String()
}

// TestHalfOpenWorkerReassigned is the tentpole acceptance test: a
// frozen (half-open) TCP worker is detected within the heartbeat
// deadline, its shards are reassigned through exactly-once banking,
// and the final Summary stays bit-identical to the single-process run.
func TestHalfOpenWorkerReassigned(t *testing.T) {
	const hb = 25 * time.Millisecond
	addr := startFrozenWorker(t, hb)
	frozen, err := DialNet(addr, NetConfig{HeartbeatInterval: hb})
	if err != nil {
		t.Fatalf("dial frozen worker: %v", err)
	}
	defer frozen.Close()

	var logbuf syncBuffer
	start := time.Now()
	got, stats := runWith(t, []Worker{frozen, NewInProcessWorker("survivor", 2)}, nil, &logbuf)
	elapsed := time.Since(start)

	if !bytes.Equal(got, baselineBytes(t)) {
		t.Error("summary after half-open reassignment is not byte-identical to the baseline")
	}
	if stats.WorkerFailures != 1 {
		t.Errorf("WorkerFailures = %d, want 1 (one frozen worker, counted once across its pipelined jobs)", stats.WorkerFailures)
	}
	if !strings.Contains(logbuf.String(), "reassigned") {
		t.Error("log does not record the reassignment")
	}
	// The deadline is 4 heartbeat intervals; well before the 15s write
	// timeout or any OS-level TCP timeout. Allow generous slack for
	// the run itself and loaded CI machines.
	if elapsed > 20*time.Second {
		t.Errorf("run took %v; half-open detection did not bound the stall", elapsed)
	}
}

// TestDialErrorsNameAddress pins the bounded-connect fix: an
// unresponsive address fails within the configured timeout — not the
// OS connect timeout — and the error names the address.
func TestDialErrorsNameAddress(t *testing.T) {
	// A listener that accepts but never speaks: the TCP connect
	// succeeds, so only the handshake deadline can save the dialer.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open, say nothing
		}
	}()

	addr := ln.Addr().String()
	start := time.Now()
	w, err := DialNet(addr, NetConfig{HandshakeTimeout: 200 * time.Millisecond})
	if err == nil {
		w.Close()
		t.Fatal("dial of a silent listener succeeded")
	}
	if !strings.Contains(err.Error(), addr) {
		t.Errorf("error %q does not name the failing address %s", err, addr)
	}
	if time.Since(start) > 10*time.Second {
		t.Errorf("handshake with silent listener took %v, want bounded by the handshake timeout", time.Since(start))
	}

	// An address nothing listens on fails the connect itself, again
	// naming the address.
	dead := ln.Addr().String()
	ln.Close()
	if _, err := DialNet(dead, NetConfig{DialTimeout: 2 * time.Second}); err == nil {
		t.Error("dial of a closed port succeeded")
	} else if !strings.Contains(err.Error(), dead) {
		t.Errorf("error %q does not name the failing address %s", err, dead)
	}
}

// TestElasticJoinerFinishesAfterPoolDeath exercises the elastic wait:
// the run's only worker freezes mid-run, and with the registration
// source still open the coordinator waits for a joiner — which then
// finishes the run bit-identically — instead of declaring it dead.
func TestElasticJoinerFinishesAfterPoolDeath(t *testing.T) {
	const hb = 25 * time.Millisecond
	frozenAddr := startFrozenWorker(t, hb)
	frozen, err := DialNet(frozenAddr, NetConfig{HeartbeatInterval: hb})
	if err != nil {
		t.Fatal(err)
	}
	defer frozen.Close()

	nc := NetConfig{Token: "elastic"}
	ln, source, err := ListenWorkers("127.0.0.1:0", nc, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// The joiner arrives only after the frozen worker's deadline has
	// almost certainly fired, so the pool really does hit zero live
	// workers with shards outstanding.
	joinErr := make(chan error, 1)
	go func() {
		time.Sleep(8 * hb)
		joinErr <- Join(ln.Addr().String(), 1, nc)
	}()

	got, stats := runWith(t, []Worker{frozen}, source, io.Discard)
	if !bytes.Equal(got, baselineBytes(t)) {
		t.Error("elastic-rescue run is not byte-identical to the baseline")
	}
	if stats.WorkerFailures != 1 {
		t.Errorf("WorkerFailures = %d, want 1", stats.WorkerFailures)
	}
	if err := <-joinErr; err != nil {
		t.Errorf("rescuing join returned %v", err)
	}
}
