package model

import (
	"math"
	"testing"
)

func TestMissionConvergesToSteadyState(t *testing.T) {
	res, err := Conventional(Paper(4, 1e-5, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Mission(5e6)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(m.IntervalAvailability-res.Availability) / (1 - res.Availability); rel > 0.05 {
		t.Fatalf("long mission interval availability %v vs steady %v", m.IntervalAvailability, res.Availability)
	}
	if rel := math.Abs(m.PointAvailability-res.Availability) / (1 - res.Availability); rel > 0.05 {
		t.Fatalf("long mission point availability %v vs steady %v", m.PointAvailability, res.Availability)
	}
}

func TestYoungSystemBeatsSteadyState(t *testing.T) {
	// Starting from OP, a short mission sees less downtime than the
	// stationary fraction.
	res, err := Conventional(Paper(4, 1e-4, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Mission(100)
	if err != nil {
		t.Fatal(err)
	}
	if m.IntervalAvailability <= res.Availability {
		t.Fatalf("young system %v not above steady state %v", m.IntervalAvailability, res.Availability)
	}
	if m.ExpectedDowntimeHours < 0 || m.ExpectedDowntimeHours > 100 {
		t.Fatalf("downtime %v h over 100 h", m.ExpectedDowntimeHours)
	}
	if m.Nines() <= 0 {
		t.Fatal("mission nines not positive")
	}
}

func TestMissionFailoverModel(t *testing.T) {
	res, err := Failover(PaperFailover(4, 1e-5, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Mission(1e4)
	if err != nil {
		t.Fatal(err)
	}
	if m.IntervalAvailability <= 0 || m.IntervalAvailability > 1 {
		t.Fatalf("interval availability = %v", m.IntervalAvailability)
	}
}

func TestMissionRejectsBadHorizon(t *testing.T) {
	res, err := Conventional(Paper(4, 1e-5, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Mission(0); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := res.Mission(-5); err == nil {
		t.Fatal("negative horizon accepted")
	}
}

func TestHourlyDTMCMatchesCTMC(t *testing.T) {
	p := Paper(4, 1e-6, 0.01)
	d, err := ConventionalHourlyDTMC(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Conventional(p)
	if err != nil {
		t.Fatal(err)
	}
	up, err := d.StationaryProbability(StateOP, StateEXP)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(up-res.Availability) > 1e-10 {
		t.Fatalf("DTMC availability %v vs CTMC %v", up, res.Availability)
	}
	// The figure's self-loop R1 = 1 - n*lambda.
	if got := d.Prob(StateOP, StateOP); math.Abs(got-(1-4e-6)) > 1e-12 {
		t.Fatalf("R1 = %v", got)
	}
}

func TestFailoverDTMC(t *testing.T) {
	d, err := FailoverDTMC(PaperFailover(4, 1e-6, 0.01), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 12 {
		t.Fatalf("state count = %d", d.N())
	}
	res, err := Failover(PaperFailover(4, 1e-6, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	up, err := d.StationaryProbability(res.UpStates...)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(up-res.Availability) > 1e-9 {
		t.Fatalf("DTMC availability %v vs CTMC %v", up, res.Availability)
	}
}

func TestHourlyDTMCPropagatesValidation(t *testing.T) {
	bad := Paper(1, 1e-6, 0.01)
	if _, err := ConventionalHourlyDTMC(bad); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestLSERateLowersAvailability(t *testing.T) {
	base, err := Conventional(Paper(4, 1e-5, 0.001))
	if err != nil {
		t.Fatal(err)
	}
	withLSE := Paper(4, 1e-5, 0.001)
	withLSE.LSERate = 1e-4 // unrecoverable sector hit during rebuild
	lse, err := Conventional(withLSE)
	if err != nil {
		t.Fatal(err)
	}
	if lse.Availability >= base.Availability {
		t.Fatalf("LSE model %v not below base %v", lse.Availability, base.Availability)
	}
	if lse.UnavailabilityDL <= base.UnavailabilityDL {
		t.Fatal("LSE should raise the data-loss mass")
	}
}

func TestLSERateValidation(t *testing.T) {
	p := Paper(4, 1e-5, 0.001)
	p.LSERate = -1
	if _, err := Conventional(p); err == nil {
		t.Fatal("negative LSE rate accepted")
	}
}

func TestFailoverMTTDLExceedsConventional(t *testing.T) {
	conv, err := MTTDL(Paper(4, 1e-5, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	fo, err := FailoverMTTDL(PaperFailover(4, 1e-5, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if fo <= conv {
		t.Fatalf("fail-over MTTDL %v not above conventional %v", fo, conv)
	}
}

func TestFailoverMTTDLValidates(t *testing.T) {
	bad := PaperFailover(1, 1e-5, 0.01)
	if _, err := FailoverMTTDL(bad); err == nil {
		t.Fatal("invalid params accepted")
	}
}
