package model

import (
	"fmt"

	"herald/internal/markov"
	"herald/internal/stats"
)

// MissionResult quantifies availability over a finite horizon for a
// system that starts fresh (state OP), where steady-state analysis
// overstates early-life downtime: a young array has not yet
// accumulated the stationary probability of being mid-restore.
type MissionResult struct {
	// Horizon is the mission length in hours.
	Horizon float64
	// IntervalAvailability is the expected fraction of the mission
	// spent up.
	IntervalAvailability float64
	// ExpectedDowntimeHours is the expected total downtime over the
	// mission.
	ExpectedDowntimeHours float64
	// PointAvailability is the probability of being up at exactly the
	// mission end.
	PointAvailability float64
}

// Nines converts the interval availability to nines.
func (m MissionResult) Nines() float64 { return stats.Nines(m.IntervalAvailability) }

// Mission computes finite-horizon metrics for a solved model, starting
// from the OP state. The result's steady-state fields are unaffected.
func (r *Result) Mission(horizon float64) (MissionResult, error) {
	if horizon <= 0 {
		return MissionResult{}, fmt.Errorf("model: mission horizon %v must be positive", horizon)
	}
	interval, err := r.Chain.IntervalProbability(StateOP, r.UpStates, horizon)
	if err != nil {
		return MissionResult{}, err
	}
	point, err := r.Chain.PointAvailability(StateOP, r.UpStates, horizon)
	if err != nil {
		return MissionResult{}, err
	}
	return MissionResult{
		Horizon:               horizon,
		IntervalAvailability:  interval,
		ExpectedDowntimeHours: (1 - interval) * horizon,
		PointAvailability:     point,
	}, nil
}

// ConventionalHourlyDTMC builds the paper's figures in their literal
// drawn form: a discrete-time chain with one-hour steps and explicit
// self-loop probabilities R = 1 - sum(exit probabilities). Its
// stationary distribution matches the CTMC's (the tests prove it);
// the method exists so the reproduction can exhibit the exact object
// in the paper.
func ConventionalHourlyDTMC(p Params) (*markov.DTMC, error) {
	c, err := ConventionalChain(p)
	if err != nil {
		return nil, err
	}
	return c.Discretize(1)
}

// FailoverDTMC is the discretization of the Fig. 3 chain with an
// explicit step. The paper draws the figure with hourly self-loops,
// but with muCH = 1 the OPns exit probability slightly exceeds one at
// dt = 1 (an inconsistency of the drawn figure); a step of 0.25 h keeps
// every row stochastic at the default rates.
func FailoverDTMC(p FailoverParams, dt float64) (*markov.DTMC, error) {
	c, err := FailoverChain(p)
	if err != nil {
		return nil, err
	}
	return c.Discretize(dt)
}
