// Package model builds the paper's analytic availability models: the
// Markov chain of a RAID array under conventional disk replacement
// with human errors (paper Fig. 2), the extended chain with automatic
// disk fail-over and hot sparing (paper Fig. 3), and a dual-parity
// (RAID6-style) extension. It exposes steady-state availability,
// the unavailability breakdown into human-error (DU) and data-loss
// (DL) downtime, MTTDL-style absorbing metrics, and fleet (series)
// composition for the equal-usable-capacity comparisons of §V-C.
//
// All rates are per hour, matching the paper's constants:
// muDF = 0.1, muDDF = 0.03, muHE = 1, muS = 1, lambdaCrash = 0.01.
package model

import (
	"fmt"
	"math"

	"herald/internal/markov"
	"herald/internal/stats"
)

// State names shared by the models. The fail-over model adds the
// ns ("no spare") and numbered variants.
const (
	StateOP     = "OP"     // all members operational
	StateEXP    = "EXP"    // exposed: one member failed (up, degraded)
	StateDU     = "DU"     // data unavailable: wrong disk pulled
	StateDL     = "DL"     // data loss: restoring from backup
	StateEXP1   = "EXP1"   // fail-over: rebuilding onto hot spare
	StateOPns   = "OPns"   // fail-over: operational, spare consumed
	StateEXPns1 = "EXPns1" // fail-over: exposed, no spare
	StateEXPns2 = "EXPns2" // fail-over: healthy member pulled, no spare
	StateEXP2   = "EXP2"   // fail-over: healthy member pulled, spare present
	StateDUns1  = "DUns1"  // fail-over: failed + pulled, no spare
	StateDUns2  = "DUns2"  // fail-over: two pulled, no spare
	StateDU1    = "DU1"    // fail-over: failed + pulled, spare present
	StateDU2    = "DU2"    // fail-over: two pulled, spare present
	StateDLns   = "DLns"   // fail-over: data loss, no spare
	StateEXPd   = "EXPd"   // raid6: two members failed (up, critical)
	StateDUR    = "DUR"    // resync/restore after a wrong pull was undone
)

// Params parameterizes the conventional-replacement models.
type Params struct {
	// Disks is the member count n (4 for RAID5 3+1, 2 for RAID1 1+1).
	Disks int
	// Lambda is the per-disk failure rate (1/h).
	Lambda float64
	// MuDF is the disk replacement/rebuild service rate (1/h).
	MuDF float64
	// MuDDF is the recovery rate from data loss via backup (1/h).
	MuDDF float64
	// MuHE is the human-error undo service rate (1/h).
	MuHE float64
	// HEP is the per-service human error probability.
	HEP float64
	// LambdaCrash is the crash rate of a wrongly removed disk (1/h).
	LambdaCrash float64
	// LSERate is an optional additional EXP -> DL rate modelling
	// unrecoverable latent sector errors encountered while rebuilding
	// (Schroeder et al., TOS'10, cited by the paper's §I as a main
	// data-loss source alongside whole-disk failures). Zero — the
	// paper's configuration — disables it.
	LSERate float64
	// ResyncAfterUndo, when true, models the recovery from a wrong
	// replacement as two phases: undoing the pull (rate MuHE) followed
	// by a consistency restore from backup (rate MuDDF, state DUR).
	//
	// The paper's drawn Fig. 2 has DU -> OP directly at (1-hep)*muHE,
	// but its Monte-Carlo walk-through (Fig. 1) ends every DU interval
	// with a tape recovery, and its reported magnitudes — a 10x-100x
	// availability drop at hep = 0.001 and up to 263x downtime
	// underestimation — are only reproducible when the DU outage costs
	// on the order of 1/muHE + 1/muDDF (~34h), not 1/muHE (~1h). The
	// default is therefore true; set false for the literal figure.
	ResyncAfterUndo bool
}

// Paper returns the paper's §V-B parameter defaults for an n-disk
// array with per-disk failure rate lambda and human error probability
// hep: muDF = 0.1, muDDF = 0.03, muHE = 1, lambdaCrash = 0.01.
func Paper(n int, lambda, hep float64) Params {
	return Params{
		Disks:           n,
		Lambda:          lambda,
		MuDF:            0.1,
		MuDDF:           0.03,
		MuHE:            1,
		HEP:             hep,
		LambdaCrash:     0.01,
		ResyncAfterUndo: true,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Disks < 2 {
		return fmt.Errorf("model: need at least 2 disks, got %d", p.Disks)
	}
	if p.Lambda <= 0 {
		return fmt.Errorf("model: failure rate %v must be positive", p.Lambda)
	}
	if p.MuDF <= 0 || p.MuDDF <= 0 {
		return fmt.Errorf("model: service rates muDF=%v muDDF=%v must be positive", p.MuDF, p.MuDDF)
	}
	if p.HEP < 0 || p.HEP > 1 {
		return fmt.Errorf("model: hep %v outside [0,1]", p.HEP)
	}
	if p.HEP > 0 && p.MuHE <= 0 {
		return fmt.Errorf("model: muHE %v must be positive when hep > 0", p.MuHE)
	}
	if p.LambdaCrash < 0 {
		return fmt.Errorf("model: negative crash rate %v", p.LambdaCrash)
	}
	if p.LSERate < 0 {
		return fmt.Errorf("model: negative LSE rate %v", p.LSERate)
	}
	return nil
}

// Result packages a solved availability model.
type Result struct {
	// Chain is the underlying CTMC (exported for DOT rendering and
	// further analysis).
	Chain *markov.CTMC
	// Pi maps state name to steady-state probability.
	Pi map[string]float64
	// UpStates lists the states counted as available.
	UpStates []string
	// Availability is the steady-state probability of the up states.
	Availability float64
	// UnavailabilityDU is the probability mass of human-error
	// (data-unavailable) down states.
	UnavailabilityDU float64
	// UnavailabilityDL is the probability mass of data-loss states.
	UnavailabilityDL float64
}

// Nines returns the availability in number-of-nines.
func (r *Result) Nines() float64 { return stats.Nines(r.Availability) }

// Unavailability returns 1 - availability.
func (r *Result) Unavailability() float64 { return stats.Unavailability(r.Availability) }

// DowntimeHoursPerYear converts the unavailability to hours per year.
func (r *Result) DowntimeHoursPerYear() float64 {
	return stats.DowntimeHoursPerYear(r.Availability)
}

// solve computes the steady state of a chain and classifies the mass.
func solve(c *markov.CTMC, upStates, duStates, dlStates []string) (*Result, error) {
	pi, err := c.SteadyState()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Chain:    c,
		Pi:       make(map[string]float64, c.N()),
		UpStates: append([]string(nil), upStates...),
	}
	for i, p := range pi {
		res.Pi[c.StateName(i)] = p
	}
	for _, s := range upStates {
		res.Availability += res.Pi[s]
	}
	for _, s := range duStates {
		res.UnavailabilityDU += res.Pi[s]
	}
	for _, s := range dlStates {
		res.UnavailabilityDL += res.Pi[s]
	}
	return res, nil
}

// ConventionalChain builds the paper's Fig. 2 CTMC: a RAID array with
// single-failure tolerance under conventional replacement.
//
//	OP  --n*lambda-->        EXP
//	EXP --(n-1)*lambda-->    DL
//	EXP --(1-hep)*muDF-->    OP
//	EXP --hep*muDF-->        DU
//	DU  --(1-hep)*muHE-->    DUR (or OP when ResyncAfterUndo is false)
//	DU  --lambdaCrash-->     DL
//	DUR --muDDF-->           OP
//	DL  --muDDF-->           OP
//
// The figure's hep*muHE self-loop on DU is the failed undo attempt; in
// continuous time it is captured by the effective exit rate
// (1-hep)*muHE. See Params.ResyncAfterUndo for the DUR phase.
func ConventionalChain(p Params) (*markov.CTMC, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := float64(p.Disks)
	b := markov.NewBuilder()
	b.At(StateOP, StateEXP, n*p.Lambda)
	b.At(StateEXP, StateDL, (n-1)*p.Lambda+p.LSERate)
	b.At(StateEXP, StateOP, (1-p.HEP)*p.MuDF)
	b.At(StateEXP, StateDU, p.HEP*p.MuDF)
	if p.ResyncAfterUndo {
		b.At(StateDU, StateDUR, (1-p.HEP)*p.MuHE)
		b.At(StateDUR, StateOP, p.MuDDF)
	} else {
		b.At(StateDU, StateOP, (1-p.HEP)*p.MuHE)
	}
	b.At(StateDU, StateDL, p.LambdaCrash)
	b.At(StateDL, StateOP, p.MuDDF)
	return b.Build()
}

// Conventional solves the Fig. 2 model. Up states: OP and EXP; the
// human-error downtime bucket covers DU and (when present) DUR.
func Conventional(p Params) (*Result, error) {
	c, err := ConventionalChain(p)
	if err != nil {
		return nil, err
	}
	du := []string{StateDU}
	if p.ResyncAfterUndo {
		du = append(du, StateDUR)
	}
	return solve(c,
		[]string{StateOP, StateEXP},
		du,
		[]string{StateDL})
}

// MTTDL returns the mean time (hours) until the first data-loss event
// under the conventional model, treating DL as absorbing.
func MTTDL(p Params) (float64, error) {
	c, err := ConventionalChain(p)
	if err != nil {
		return 0, err
	}
	return c.MeanTimeToAbsorption(StateOP, StateDL)
}

// FailoverMTTDL returns the mean time (hours) until the first
// data-loss event under the automatic fail-over model, treating both
// DL and DLns as absorbing.
func FailoverMTTDL(p FailoverParams) (float64, error) {
	c, err := FailoverChain(p)
	if err != nil {
		return 0, err
	}
	return c.MeanTimeToAbsorption(StateOP, StateDL, StateDLns)
}

// FailoverParams extends Params with the automatic fail-over rates.
type FailoverParams struct {
	Params
	// MuS is the on-line rebuild-to-hot-spare rate (1/h); the paper
	// sets it to 1.
	MuS float64
	// MuCH is the physical swap service rate (replenishing the spare
	// slot / changing the failed disk).
	MuCH float64
	// InstallAsSpare enables the Fig. 3 EXPns1 --(1-hep)muCH--> EXP1
	// branch (installing the new disk as a spare so the on-line
	// rebuild can take over). Disable to match the single-service
	// Monte-Carlo discipline.
	InstallAsSpare bool
	// DownAltService enables the Fig. 3 alternative services in the
	// unavailable states: restore-from-backup (muDDF) directly out of
	// DUns1/DU1 and the failed-disk swap (muCH) that moves
	// DUns1->DU1, DU1->EXP2 and DLns->DL. Disable to match the
	// Monte-Carlo discipline in which the operator always undoes the
	// human error first.
	DownAltService bool
}

// PaperFailover returns the fail-over defaults: base Paper(n, lambda,
// hep) plus muS = 0.1 (the 10-hour on-line rebuild of the paper's
// Fig. 1 walk-through; it also makes the hep = 0 availability match
// the conventional policy as in the paper's Fig. 7) and muCH = 1 (the
// quick physical swap, the paper's "muS = 1" constant read as the
// spare-handling service). Both Fig. 3 interpretation branches are
// enabled.
func PaperFailover(n int, lambda, hep float64) FailoverParams {
	return FailoverParams{
		Params:         Paper(n, lambda, hep),
		MuS:            0.1,
		MuCH:           1,
		InstallAsSpare: true,
		DownAltService: true,
	}
}

// Validate extends Params.Validate with the fail-over rates.
func (p FailoverParams) Validate() error {
	if err := p.Params.Validate(); err != nil {
		return err
	}
	if p.MuS <= 0 {
		return fmt.Errorf("model: muS %v must be positive", p.MuS)
	}
	if p.MuCH <= 0 {
		return fmt.Errorf("model: muCH %v must be positive", p.MuCH)
	}
	return nil
}

// FailoverChain builds the paper's Fig. 3 CTMC for a RAID array with
// a hot spare and the delayed (automatic fail-over) replacement
// policy. See DESIGN.md §3.2 for the full transition table and the
// interpretation knobs.
func FailoverChain(p FailoverParams) (*markov.CTMC, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := float64(p.Disks)
	l := p.Lambda
	hep := p.HEP
	b := markov.NewBuilder()

	// Spare present, no human involvement while rebuilding.
	b.At(StateOP, StateEXP1, n*l)
	b.At(StateEXP1, StateDL, (n-1)*l)
	b.At(StateEXP1, StateOPns, p.MuS)

	// Spare consumed: the technician replenishes it; a wrong pull
	// here leaves the array degraded but up (EXPns2).
	b.At(StateOPns, StateEXPns1, n*l)
	b.At(StateOPns, StateOP, (1-hep)*p.MuCH)
	b.At(StateOPns, StateEXPns2, hep*p.MuCH)

	// Exposed with no spare: direct replace-and-rebuild (muDF) and,
	// optionally, installing the new disk as a spare (muCH).
	installRate := 0.0
	if p.InstallAsSpare {
		installRate = p.MuCH
	}
	b.At(StateEXPns1, StateDLns, (n-1)*l)
	b.At(StateEXPns1, StateOPns, (1-hep)*p.MuDF)
	b.At(StateEXPns1, StateEXP1, (1-hep)*installRate)
	b.At(StateEXPns1, StateDUns1, hep*(p.MuDF+installRate))

	// Healthy member pulled, no failed member, no spare.
	b.At(StateEXPns2, StateDUns1, (n-1)*l)
	b.At(StateEXPns2, StateOP, (1-hep)*p.MuHE)
	b.At(StateEXPns2, StateDUns2, hep*p.MuHE)
	b.At(StateEXPns2, StateEXPns1, p.LambdaCrash)

	// Unavailable: failed + pulled, no spare.
	b.At(StateDUns1, StateEXPns1, (1-hep)*p.MuHE)
	b.At(StateDUns1, StateDLns, p.LambdaCrash)

	// Unavailable: two pulled, no spare.
	b.At(StateDUns2, StateEXPns2, (1-hep)*p.MuHE)
	b.At(StateDUns2, StateDUns1, 2*p.LambdaCrash)

	// Data loss.
	b.At(StateDLns, StateOPns, p.MuDDF)
	b.At(StateDL, StateOP, p.MuDDF)

	if p.DownAltService {
		// Alternative services while down (Fig. 3): direct restore
		// from backup and failed-disk replacement, which open up the
		// with-spare variants EXP2 / DU1 / DU2.
		b.At(StateDUns1, StateOPns, p.MuDDF)
		b.At(StateDUns1, StateDU1, (1-hep)*p.MuCH)
		b.At(StateDLns, StateDL, (1-hep)*p.MuCH)

		b.At(StateEXP2, StateDU1, (n-1)*l)
		b.At(StateEXP2, StateOP, (1-hep)*p.MuHE)
		b.At(StateEXP2, StateDU2, hep*p.MuHE)
		b.At(StateEXP2, StateEXP1, p.LambdaCrash)

		b.At(StateDU1, StateEXP1, (1-hep)*p.MuHE)
		b.At(StateDU1, StateDL, p.LambdaCrash)
		b.At(StateDU1, StateOP, p.MuDDF)
		b.At(StateDU1, StateEXP2, (1-hep)*p.MuCH)

		b.At(StateDU2, StateEXP2, (1-hep)*p.MuHE)
		b.At(StateDU2, StateDU1, 2*p.LambdaCrash)
	}
	return b.Build()
}

// Failover solves the Fig. 3 model. Up states: OP, EXP1, OPns,
// EXPns1, EXPns2 and (when reachable) EXP2.
func Failover(p FailoverParams) (*Result, error) {
	c, err := FailoverChain(p)
	if err != nil {
		return nil, err
	}
	up := []string{StateOP, StateEXP1, StateOPns, StateEXPns1, StateEXPns2}
	du := []string{StateDUns1, StateDUns2}
	dl := []string{StateDL, StateDLns}
	if p.DownAltService {
		up = append(up, StateEXP2)
		du = append(du, StateDU1, StateDU2)
	}
	return solve(c, up, du, dl)
}

// DualParityChain extends the conventional model to a dual-parity
// (RAID6-style) array that tolerates two concurrent losses: a second
// exposed state EXPd precedes data loss, and a wrong pull in EXPd also
// exhausts the redundancy (DU). This is the package's extension beyond
// the paper (its future-work direction of stronger codes).
func DualParityChain(p Params) (*markov.CTMC, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Disks < 4 {
		return nil, fmt.Errorf("model: dual parity needs at least 4 disks, got %d", p.Disks)
	}
	n := float64(p.Disks)
	hep := p.HEP
	b := markov.NewBuilder()
	b.At(StateOP, StateEXP, n*p.Lambda)
	b.At(StateEXP, StateEXPd, (n-1)*p.Lambda)
	b.At(StateEXP, StateOP, (1-hep)*p.MuDF)
	// A wrong pull while singly exposed leaves two members missing:
	// still up behind dual parity, modelled as landing in EXPd.
	b.At(StateEXP, StateEXPd, hep*p.MuDF)
	b.At(StateEXPd, StateDL, (n-2)*p.Lambda)
	b.At(StateEXPd, StateEXP, (1-hep)*p.MuDF)
	// A wrong pull while doubly exposed takes the third member: DU.
	b.At(StateEXPd, StateDU, hep*p.MuDF)
	if p.ResyncAfterUndo {
		b.At(StateDU, StateDUR, (1-hep)*p.MuHE)
		b.At(StateDUR, StateOP, p.MuDDF)
	} else {
		b.At(StateDU, StateEXPd, (1-hep)*p.MuHE)
	}
	b.At(StateDU, StateDL, p.LambdaCrash)
	b.At(StateDL, StateOP, p.MuDDF)
	return b.Build()
}

// DualParity solves the RAID6-style model. Up states: OP, EXP, EXPd.
func DualParity(p Params) (*Result, error) {
	c, err := DualParityChain(p)
	if err != nil {
		return nil, err
	}
	du := []string{StateDU}
	if p.ResyncAfterUndo {
		du = append(du, StateDUR)
	}
	return solve(c,
		[]string{StateOP, StateEXP, StateEXPd},
		du,
		[]string{StateDL})
}

// FleetAvailability composes count independent, identical arrays in
// series (user data spans all arrays, so every array must be up):
// A_fleet = A_array^count.
func FleetAvailability(arrayAvailability float64, count int) float64 {
	if count < 1 {
		panic(fmt.Sprintf("model: fleet count %d must be positive", count))
	}
	if arrayAvailability < 0 || arrayAvailability > 1 {
		panic(fmt.Sprintf("model: availability %v outside [0,1]", arrayAvailability))
	}
	return math.Pow(arrayAvailability, float64(count))
}

// UnderestimationRatio quantifies the paper's headline: how much the
// traditional (hep = 0) model underestimates unavailability compared
// to the same configuration with human errors. Returns
// unavail(hep) / unavail(0).
func UnderestimationRatio(p Params) (float64, error) {
	withHE, err := Conventional(p)
	if err != nil {
		return 0, err
	}
	p0 := p
	p0.HEP = 0
	without, err := Conventional(p0)
	if err != nil {
		return 0, err
	}
	u0 := without.Unavailability()
	if u0 == 0 {
		return math.Inf(1), nil
	}
	return withHE.Unavailability() / u0, nil
}
