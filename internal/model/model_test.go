package model

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// conventionalClosedForm solves the Fig. 2 (+DUR) balance equations by
// hand:
//
//	piEXP = n*l*piOP / ((n-1)*l + muDF)
//	piDU  = hep*muDF*piEXP / ((1-hep)*muHE + lCrash)
//	piDUR = (1-hep)*muHE*piDU / muDDF        (ResyncAfterUndo only)
//	piDL  = ((n-1)*l*piEXP + lCrash*piDU) / muDDF
func conventionalClosedForm(p Params) map[string]float64 {
	n := float64(p.Disks)
	piOP := 1.0
	piEXP := n * p.Lambda * piOP / ((n-1)*p.Lambda + p.MuDF)
	duOut := (1-p.HEP)*p.MuHE + p.LambdaCrash
	piDU := 0.0
	if duOut > 0 {
		piDU = p.HEP * p.MuDF * piEXP / duOut
	}
	piDUR := 0.0
	if p.ResyncAfterUndo {
		piDUR = (1 - p.HEP) * p.MuHE * piDU / p.MuDDF
	}
	piDL := ((n-1)*p.Lambda*piEXP + p.LambdaCrash*piDU) / p.MuDDF
	total := piOP + piEXP + piDU + piDUR + piDL
	out := map[string]float64{
		StateOP: piOP / total, StateEXP: piEXP / total,
		StateDU: piDU / total, StateDL: piDL / total,
	}
	if p.ResyncAfterUndo {
		out[StateDUR] = piDUR / total
	}
	return out
}

func TestConventionalMatchesClosedForm(t *testing.T) {
	for _, hep := range []float64{0, 0.001, 0.01} {
		for _, lambda := range []float64{1e-7, 1e-6, 1e-5, 5e-4} {
			for _, resync := range []bool{true, false} {
				p := Paper(4, lambda, hep)
				p.ResyncAfterUndo = resync
				res, err := Conventional(p)
				if err != nil {
					t.Fatalf("lambda=%v hep=%v: %v", lambda, hep, err)
				}
				want := conventionalClosedForm(p)
				for s, w := range want {
					if got := res.Pi[s]; math.Abs(got-w) > 1e-12*(1+w) {
						t.Errorf("lambda=%v hep=%v resync=%v state %s: pi=%v, want %v", lambda, hep, resync, s, got, w)
					}
				}
			}
		}
	}
}

func TestConventionalBreakdownConsistent(t *testing.T) {
	res, err := Conventional(Paper(4, 1e-5, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	total := res.Availability + res.UnavailabilityDU + res.UnavailabilityDL
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("probability mass = %v", total)
	}
	if res.UnavailabilityDU <= 0 || res.UnavailabilityDL <= 0 {
		t.Fatal("expected positive DU and DL mass at hep=0.01")
	}
}

func TestHEPZeroHasNoDUMass(t *testing.T) {
	res, err := Conventional(Paper(4, 1e-5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.UnavailabilityDU != 0 {
		t.Fatalf("DU mass = %v at hep=0", res.UnavailabilityDU)
	}
}

func TestAvailabilityMonotoneInHEP(t *testing.T) {
	prev := math.Inf(1)
	for _, hep := range []float64{0, 1e-4, 1e-3, 1e-2, 1e-1} {
		res, err := Conventional(Paper(4, 1e-6, hep))
		if err != nil {
			t.Fatal(err)
		}
		if res.Availability >= prev {
			t.Fatalf("availability not decreasing at hep=%v: %v >= %v", hep, res.Availability, prev)
		}
		prev = res.Availability
	}
}

func TestAvailabilityMonotoneInLambda(t *testing.T) {
	prev := math.Inf(1)
	for _, l := range []float64{1e-7, 1e-6, 1e-5, 1e-4} {
		res, err := Conventional(Paper(4, l, 0.001))
		if err != nil {
			t.Fatal(err)
		}
		if res.Availability >= prev {
			t.Fatalf("availability not decreasing at lambda=%v", l)
		}
		prev = res.Availability
	}
}

func TestPaperHeadlineHumanErrorDrop(t *testing.T) {
	// §V-B: at hep = 0.001 availability drops by one to two orders of
	// magnitude of unavailability for typical failure rates.
	ratio, err := UnderestimationRatio(Paper(4, 1e-6, 0.001))
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 5 {
		t.Fatalf("underestimation ratio %v; paper reports order(s) of magnitude", ratio)
	}
	// And dramatically more at hep = 0.01 with rare failures (the
	// "up to three orders of magnitude / 263x" regime).
	ratio, err = UnderestimationRatio(Paper(4, 1e-7, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 100 {
		t.Fatalf("underestimation ratio %v at the headline point; want >= 100", ratio)
	}
}

func TestUnderestimationRatioAtZeroHEPIsOne(t *testing.T) {
	ratio, err := UnderestimationRatio(Paper(4, 1e-6, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratio-1) > 1e-9 {
		t.Fatalf("ratio = %v, want 1", ratio)
	}
}

func TestConventionalChainStructure(t *testing.T) {
	c, err := ConventionalChain(Paper(4, 1e-6, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 5 {
		t.Fatalf("state count = %d, want 5 (OP EXP DU DUR DL)", c.N())
	}
	if !c.IsIrreducible() {
		t.Fatal("conventional chain not irreducible")
	}
	// Spot-check rates against the figure.
	if got := c.Rate(StateOP, StateEXP); math.Abs(got-4e-6) > 1e-18 {
		t.Errorf("OP->EXP rate = %v", got)
	}
	if got := c.Rate(StateEXP, StateDU); math.Abs(got-0.01*0.1) > 1e-15 {
		t.Errorf("EXP->DU rate = %v", got)
	}
	if got := c.Rate(StateDU, StateDUR); math.Abs(got-0.99) > 1e-12 {
		t.Errorf("DU->DUR rate = %v", got)
	}
	if got := c.Rate(StateDUR, StateOP); math.Abs(got-0.03) > 1e-15 {
		t.Errorf("DUR->OP rate = %v", got)
	}

	// The literal-figure variant keeps the 4-state shape.
	lit := Paper(4, 1e-6, 0.01)
	lit.ResyncAfterUndo = false
	cl, err := ConventionalChain(lit)
	if err != nil {
		t.Fatal(err)
	}
	if cl.N() != 4 {
		t.Fatalf("literal chain state count = %d, want 4", cl.N())
	}
	if got := cl.Rate(StateDU, StateOP); math.Abs(got-0.99) > 1e-12 {
		t.Errorf("literal DU->OP rate = %v", got)
	}
}

func TestRAID1IsTwoDiskChain(t *testing.T) {
	res, err := Conventional(Paper(2, 1e-5, 0.001))
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability <= 0 || res.Availability >= 1 {
		t.Fatalf("availability = %v", res.Availability)
	}
}

func TestFailoverBeatsConventional(t *testing.T) {
	// §V-D: automatic fail-over significantly moderates human error
	// impact; at hep = 0.01 the paper reports ~2 orders of magnitude.
	for _, hep := range []float64{0.001, 0.01} {
		conv, err := Conventional(Paper(4, 1e-6, hep))
		if err != nil {
			t.Fatal(err)
		}
		fo, err := Failover(PaperFailover(4, 1e-6, hep))
		if err != nil {
			t.Fatal(err)
		}
		if fo.Availability <= conv.Availability {
			t.Fatalf("hep=%v: fail-over %v not better than conventional %v",
				hep, fo.Availability, conv.Availability)
		}
	}
}

func TestFailoverGainGrowsWithHEP(t *testing.T) {
	// The paper: delayed replacement helps more when hep is larger.
	gain := func(hep float64) float64 {
		conv, err := Conventional(Paper(4, 1e-6, hep))
		if err != nil {
			t.Fatal(err)
		}
		fo, err := Failover(PaperFailover(4, 1e-6, hep))
		if err != nil {
			t.Fatal(err)
		}
		return conv.Unavailability() / fo.Unavailability()
	}
	if g1, g2 := gain(0.001), gain(0.01); g2 <= g1 {
		t.Fatalf("gain at hep=0.01 (%v) not above gain at hep=0.001 (%v)", g2, g1)
	}
}

func TestFailoverChainStructure(t *testing.T) {
	c, err := FailoverChain(PaperFailover(4, 1e-6, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 12 {
		t.Fatalf("state count = %d, want 12 (full Fig. 3)", c.N())
	}
	if !c.IsIrreducible() {
		t.Fatal("fail-over chain not irreducible")
	}
	// No human error opportunity while rebuilding onto the spare.
	if got := c.Rate(StateEXP1, StateDUns1); got != 0 {
		t.Errorf("EXP1 has a human error path: %v", got)
	}
	if got := c.Rate(StateEXP1, StateOPns); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("EXP1->OPns = %v, want muS=0.1 (10h on-line rebuild)", got)
	}
}

func TestFailoverReducedVariant(t *testing.T) {
	p := PaperFailover(4, 1e-6, 0.01)
	p.InstallAsSpare = false
	p.DownAltService = false
	c, err := FailoverChain(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 9 {
		t.Fatalf("reduced chain has %d states, want 9 (no EXP2/DU1/DU2)", c.N())
	}
	res, err := Failover(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability <= 0 || res.Availability >= 1 {
		t.Fatalf("availability = %v", res.Availability)
	}
}

func TestFailoverHEPZero(t *testing.T) {
	res, err := Failover(PaperFailover(4, 1e-5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.UnavailabilityDU > 1e-15 {
		t.Fatalf("DU mass = %v at hep=0", res.UnavailabilityDU)
	}
	if res.UnavailabilityDL <= 0 {
		t.Fatal("expected DL mass from double failures")
	}
}

func TestDualParityBeatsSingleParity(t *testing.T) {
	for _, hep := range []float64{0, 0.001, 0.01} {
		single, err := Conventional(Paper(6, 1e-5, hep))
		if err != nil {
			t.Fatal(err)
		}
		double, err := DualParity(Paper(6, 1e-5, hep))
		if err != nil {
			t.Fatal(err)
		}
		if double.Availability <= single.Availability {
			t.Fatalf("hep=%v: dual parity %v not above single parity %v",
				hep, double.Availability, single.Availability)
		}
	}
}

func TestDualParityNeedsFourDisks(t *testing.T) {
	if _, err := DualParityChain(Paper(3, 1e-5, 0)); err == nil {
		t.Fatal("3-disk dual parity accepted")
	}
}

func TestMTTDLMatchesClosedFormAtHEPZero(t *testing.T) {
	// Without human error the chain reduces to the textbook RAID5
	// MTTDL = (muDF + (2n-1)lambda) / (n(n-1)lambda^2).
	p := Paper(4, 1e-4, 0)
	got, err := MTTDL(p)
	if err != nil {
		t.Fatal(err)
	}
	n, l := float64(p.Disks), p.Lambda
	want := (p.MuDF + (2*n-1)*l) / (n * (n - 1) * l * l)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("MTTDL = %v, want %v", got, want)
	}
}

func TestMTTDLShrinksWithHEP(t *testing.T) {
	base, err := MTTDL(Paper(4, 1e-5, 0))
	if err != nil {
		t.Fatal(err)
	}
	withHE, err := MTTDL(Paper(4, 1e-5, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if withHE >= base {
		t.Fatalf("MTTDL with human error (%v) not below baseline (%v)", withHE, base)
	}
}

func TestFleetAvailability(t *testing.T) {
	if got := FleetAvailability(0.99, 1); got != 0.99 {
		t.Fatalf("single array = %v", got)
	}
	got := FleetAvailability(0.99, 3)
	want := 0.99 * 0.99 * 0.99
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("fleet = %v, want %v", got, want)
	}
}

func TestFleetAvailabilityPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { FleetAvailability(0.9, 0) },
		func() { FleetAvailability(1.5, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRAIDRankingFlipsUnderHumanError(t *testing.T) {
	// §V-C: at equal usable capacity (21 disk units), RAID1(1+1)
	// leads without human error but falls below RAID5(3+1) when
	// hep > 0 because of its higher ERF.
	fleetNines := func(n, count int, hep float64) float64 {
		res, err := Conventional(Paper(n, 1e-5, hep))
		if err != nil {
			t.Fatal(err)
		}
		return -math.Log10(1 - FleetAvailability(res.Availability, count))
	}
	// RAID1: 21 arrays of 2 disks; RAID5(3+1): 7 arrays of 4 disks.
	r1NoHE := fleetNines(2, 21, 0)
	r5NoHE := fleetNines(4, 7, 0)
	if r1NoHE <= r5NoHE {
		t.Fatalf("without human error RAID1 (%v nines) should lead RAID5(3+1) (%v nines)", r1NoHE, r5NoHE)
	}
	r1HE := fleetNines(2, 21, 0.01)
	r5HE := fleetNines(4, 7, 0.01)
	if r1HE >= r5HE {
		t.Fatalf("with hep=0.01 RAID1 (%v nines) should fall below RAID5(3+1) (%v nines)", r1HE, r5HE)
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{Disks: 1, Lambda: 1e-6, MuDF: 0.1, MuDDF: 0.03, MuHE: 1},
		{Disks: 4, Lambda: 0, MuDF: 0.1, MuDDF: 0.03, MuHE: 1},
		{Disks: 4, Lambda: 1e-6, MuDF: 0, MuDDF: 0.03, MuHE: 1},
		{Disks: 4, Lambda: 1e-6, MuDF: 0.1, MuDDF: 0, MuHE: 1},
		{Disks: 4, Lambda: 1e-6, MuDF: 0.1, MuDDF: 0.03, MuHE: 0, HEP: 0.01},
		{Disks: 4, Lambda: 1e-6, MuDF: 0.1, MuDDF: 0.03, MuHE: 1, HEP: 1.5},
		{Disks: 4, Lambda: 1e-6, MuDF: 0.1, MuDDF: 0.03, MuHE: 1, LambdaCrash: -1},
	}
	for i, p := range bad {
		if _, err := Conventional(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
	foBad := PaperFailover(4, 1e-6, 0.01)
	foBad.MuS = 0
	if _, err := Failover(foBad); err == nil {
		t.Error("muS=0 accepted")
	}
	foBad = PaperFailover(4, 1e-6, 0.01)
	foBad.MuCH = 0
	if _, err := Failover(foBad); err == nil {
		t.Error("muCH=0 accepted")
	}
}

func TestResultMetrics(t *testing.T) {
	res, err := Conventional(Paper(4, 1e-6, 0.001))
	if err != nil {
		t.Fatal(err)
	}
	if res.Nines() <= 0 {
		t.Error("nines should be positive")
	}
	if math.Abs(res.Unavailability()-(1-res.Availability)) > 1e-15 {
		t.Error("unavailability mismatch")
	}
	if res.DowntimeHoursPerYear() <= 0 {
		t.Error("downtime should be positive")
	}
}

func TestChainDOTRendering(t *testing.T) {
	c, err := FailoverChain(PaperFailover(4, 1e-6, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	dot := c.DOT("failover")
	for _, s := range []string{StateOP, StateEXP1, StateDUns2, StateDLns} {
		if !strings.Contains(dot, s) {
			t.Errorf("DOT missing state %s", s)
		}
	}
}

func TestQuickAvailabilityBounds(t *testing.T) {
	f := func(lRaw, hRaw uint16) bool {
		lambda := 1e-8 + float64(lRaw)/65535*1e-4
		hep := float64(hRaw) / 65535 * 0.1
		res, err := Conventional(Paper(4, lambda, hep))
		if err != nil {
			return false
		}
		return res.Availability > 0 && res.Availability < 1 &&
			res.UnavailabilityDU >= 0 && res.UnavailabilityDL >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickFailoverAvailabilityBounds(t *testing.T) {
	f := func(lRaw, hRaw uint16) bool {
		lambda := 1e-8 + float64(lRaw)/65535*1e-4
		hep := float64(hRaw) / 65535 * 0.1
		res, err := Failover(PaperFailover(4, lambda, hep))
		if err != nil {
			return false
		}
		return res.Availability > 0 && res.Availability < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickFleetMonotoneInCount(t *testing.T) {
	f := func(cRaw uint8) bool {
		count := 1 + int(cRaw%50)
		a := FleetAvailability(0.9999, count)
		b := FleetAvailability(0.9999, count+1)
		return b < a && a <= 0.9999
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
