// Package chaos is a deterministic fault-injection harness for the
// shard transport. Its centerpiece is a TCP proxy whose per-connection
// byte streams are disturbed by scripted events — latency spikes,
// one-way stalls, two-way partitions, abrupt cuts — triggered at exact
// byte offsets, so a fault lands in precisely the same protocol
// position on every replay. Schedules can be derived from a seeded
// xrand stream (Schedule), making whole chaos runs a pure function of
// their seed; Inject covers timing-relative faults ("stall the link
// now that the worker has joined") that byte offsets cannot express.
//
// Fault semantics mirror the real network:
//
//   - a stalled or partitioned direction silently discards bytes — the
//     peer sees a live TCP connection carrying nothing, which only a
//     heartbeat read deadline can detect;
//   - while a partition holds, a peer's close is NOT propagated: the
//     other side never sees the FIN, exactly like a network split, and
//     must time out on its own;
//   - a cut closes both legs after forwarding exactly At bytes, so an
//     offset inside a frame produces the mid-frame truncation
//     (io.ErrUnexpectedEOF at the decoder) that distinguishes a crash
//     from a clean coordinator close.
package chaos

import (
	"net"
	"sort"
	"sync"
	"time"

	"herald/internal/xrand"
)

// Dir names a forwarding direction through the proxy.
type Dir int

const (
	// Up is the dialer→target byte stream (worker→coordinator when a
	// worker joins through the proxy).
	Up Dir = iota
	// Down is the target→dialer byte stream.
	Down
)

func (d Dir) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// Action is the kind of disturbance an Event applies.
type Action int

const (
	// Delay pauses forwarding of the event's direction for Dur; bytes
	// queue in kernel buffers and then flow (a latency spike, no loss).
	Delay Action = iota
	// Stall silently discards the event's direction for Dur: a one-way
	// freeze the peer can only detect by heartbeat read deadline.
	Stall
	// Partition discards both directions for Dur and suppresses close
	// propagation while it holds (neither side sees the other's FIN).
	Partition
	// Cut abruptly closes both legs after forwarding exactly At bytes.
	Cut
)

func (a Action) String() string {
	switch a {
	case Delay:
		return "delay"
	case Stall:
		return "stall"
	case Partition:
		return "partition"
	case Cut:
		return "cut"
	}
	return "unknown"
}

// Event is one scripted disturbance, triggered when the cumulative
// byte count forwarded in Dir reaches At.
type Event struct {
	Dir    Dir
	At     int64
	Action Action
	Dur    time.Duration // ignored by Cut
}

// Script is the set of events applied to one proxied connection.
// Events fire in At order per direction; several events may share an
// offset.
type Script struct {
	Events []Event
}

// Schedule derives a Script of n events from a seed: directions,
// byte offsets in [1, span], actions drawn from actions, durations in
// (0, maxDur]. The same inputs always produce the identical script —
// chaos runs replay exactly.
func Schedule(seed uint64, n int, span int64, actions []Action, maxDur time.Duration) Script {
	src := xrand.New(seed)
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		ev := Event{
			Dir:    Dir(src.Intn(2)),
			At:     1 + int64(src.Float64()*float64(span)),
			Action: actions[src.Intn(len(actions))],
		}
		if ev.At > span {
			ev.At = span
		}
		if ev.Action != Cut {
			ev.Dur = time.Duration(1 + int64(src.Float64()*float64(maxDur)))
		}
		evs = append(evs, ev)
	}
	return Script{Events: evs}
}

// Proxy is a fault-injecting TCP forwarder. Each accepted connection
// is piped to the current target through a link that applies the
// connection's script. SetTarget redirects links accepted afterwards —
// the lever for coordinator-restart tests, where a supervised worker
// keeps redialing the proxy while the coordinator moves.
type Proxy struct {
	ln      net.Listener
	scripts func(conn int) Script

	mu     sync.Mutex
	target string
	links  []*link
	nconn  int
	closed bool

	wg sync.WaitGroup
}

// NewProxy starts a proxy on an ephemeral localhost port forwarding to
// target. scripts, when non-nil, supplies the fault script for the
// i-th accepted connection (i counts from 0); nil means no scripted
// faults (Inject still works).
func NewProxy(target string, scripts func(conn int) Script) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, scripts: scripts}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's dialable address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetTarget redirects connections accepted from now on; existing links
// keep their original target.
func (p *Proxy) SetTarget(addr string) {
	p.mu.Lock()
	p.target = addr
	p.mu.Unlock()
}

// Conns reports how many connections the proxy has accepted.
func (p *Proxy) Conns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nconn
}

// Inject applies an action to every live link right now, regardless of
// byte offsets: Stall/Partition open their discard window for dur, Cut
// severs the links. (Delay is meaningless here and ignored.) This is
// the trigger for faults whose moment is defined by protocol state —
// "once the worker has joined" — rather than a byte position.
func (p *Proxy) Inject(action Action, dir Dir, dur time.Duration) {
	p.mu.Lock()
	links := append([]*link(nil), p.links...)
	p.mu.Unlock()
	for _, l := range links {
		l.apply(Event{Dir: dir, Action: action, Dur: dur})
	}
}

// Close severs every live link and stops accepting.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	links := append([]*link(nil), p.links...)
	p.mu.Unlock()
	err := p.ln.Close()
	for _, l := range links {
		l.cut()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			return
		}
		idx := p.nconn
		p.nconn++
		target := p.target
		p.mu.Unlock()
		var sc Script
		if p.scripts != nil {
			sc = p.scripts(idx)
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			t, err := net.DialTimeout("tcp", target, 5*time.Second)
			if err != nil {
				// The dialer got a connection (to us) whose far side never
				// came up: close it mid-handshake, which the shard layer
				// must treat as a retryable error, not a clean close.
				c.Close()
				return
			}
			l := newLink(c, t, sc)
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				l.cut()
				return
			}
			p.links = append(p.links, l)
			p.mu.Unlock()
			l.run()
			p.dropLink(l)
		}()
	}
}

func (p *Proxy) dropLink(l *link) {
	p.mu.Lock()
	for i, x := range p.links {
		if x == l {
			p.links = append(p.links[:i], p.links[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// link is one proxied connection pair with its fault state.
type link struct {
	dialer, target net.Conn
	events         [2][]Event // per direction, sorted by At

	mu         sync.Mutex
	stallUntil [2]time.Time

	cutOnce sync.Once
	pipes   sync.WaitGroup
}

func newLink(dialer, target net.Conn, sc Script) *link {
	l := &link{dialer: dialer, target: target}
	for _, ev := range sc.Events {
		if ev.Dir != Up && ev.Dir != Down {
			continue
		}
		l.events[ev.Dir] = append(l.events[ev.Dir], ev)
	}
	for d := range l.events {
		evs := l.events[d]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	}
	return l
}

func (l *link) run() {
	l.pipes.Add(2)
	go l.pipe(Up, l.dialer, l.target)
	go l.pipe(Down, l.target, l.dialer)
	l.pipes.Wait()
	l.cut()
}

// pipe forwards one direction, splitting the stream at event offsets
// so every fault lands after exactly At forwarded bytes.
func (l *link) pipe(dir Dir, src, dst net.Conn) {
	defer l.pipes.Done()
	evs := l.events[dir]
	next := 0
	var count int64
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			b := buf[:n]
			for len(b) > 0 {
				if next < len(evs) && count+int64(len(b)) >= evs[next].At {
					k := evs[next].At - count
					if k < 0 {
						k = 0
					}
					if k > 0 {
						if l.forward(dir, dst, b[:k]) != nil {
							l.cut()
							return
						}
						count += k
						b = b[k:]
					}
					ev := evs[next]
					next++
					if !l.apply(ev) {
						return // cut
					}
					continue
				}
				if l.forward(dir, dst, b) != nil {
					l.cut()
					return
				}
				count += int64(len(b))
				b = nil
			}
		}
		if err != nil {
			if l.blackholed(dir) {
				// A partitioned peer never sees the close: leave the
				// other leg open and let its read deadline do the work.
				return
			}
			l.cut()
			return
		}
	}
}

// forward delivers bytes unless the direction is inside a discard
// window (then they are silently lost, like packets into a partition).
func (l *link) forward(dir Dir, dst net.Conn, b []byte) error {
	if len(b) == 0 {
		return nil
	}
	if l.blackholed(dir) {
		return nil
	}
	_, err := dst.Write(b)
	return err
}

// apply performs an event's action now; it reports false when the link
// was cut.
func (l *link) apply(ev Event) bool {
	switch ev.Action {
	case Delay:
		time.Sleep(ev.Dur)
	case Stall:
		l.mu.Lock()
		l.stallLocked(ev.Dir, ev.Dur)
		l.mu.Unlock()
	case Partition:
		l.mu.Lock()
		l.stallLocked(Up, ev.Dur)
		l.stallLocked(Down, ev.Dur)
		l.mu.Unlock()
	case Cut:
		l.cut()
		return false
	}
	return true
}

func (l *link) stallLocked(dir Dir, dur time.Duration) {
	u := time.Now().Add(dur)
	if u.After(l.stallUntil[dir]) {
		l.stallUntil[dir] = u
	}
}

func (l *link) blackholed(dir Dir) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return time.Now().Before(l.stallUntil[dir])
}

func (l *link) cut() {
	l.cutOnce.Do(func() {
		l.dialer.Close()
		l.target.Close()
	})
}
