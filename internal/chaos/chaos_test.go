package chaos_test

import (
	"bytes"
	"errors"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"herald/internal/chaos"
)

// sink is a one-connection TCP server recording every byte it
// receives; done closes when the connection ends.
type sink struct {
	ln   net.Listener
	mu   sync.Mutex
	got  []byte
	done chan struct{}
}

func newSink(t *testing.T) *sink {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &sink{ln: ln, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(buf)
			if n > 0 {
				s.mu.Lock()
				s.got = append(s.got, buf[:n]...)
				s.mu.Unlock()
			}
			if err != nil {
				return
			}
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return s
}

func (s *sink) addr() string { return s.ln.Addr().String() }

func (s *sink) snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.got...)
}

// waitDone blocks until the sink's connection closed, or fails the test.
func (s *sink) waitDone(t *testing.T) {
	t.Helper()
	select {
	case <-s.done:
	case <-time.After(10 * time.Second):
		t.Fatal("sink connection never closed")
	}
}

func pattern(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n) }

// TestScheduleDeterministic pins the chaos contract that makes replays
// meaningful: a schedule is a pure function of its seed.
func TestScheduleDeterministic(t *testing.T) {
	actions := []chaos.Action{chaos.Delay, chaos.Stall, chaos.Partition, chaos.Cut}
	a := chaos.Schedule(42, 32, 1<<20, actions, 500*time.Millisecond)
	b := chaos.Schedule(42, 32, 1<<20, actions, 500*time.Millisecond)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	c := chaos.Schedule(43, 32, 1<<20, actions, 500*time.Millisecond)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	for i, ev := range a.Events {
		if ev.At < 1 || ev.At > 1<<20 {
			t.Errorf("event %d offset %d outside [1, span]", i, ev.At)
		}
		if ev.Action == chaos.Cut && ev.Dur != 0 {
			t.Errorf("event %d: cut carries a duration", i)
		}
		if ev.Action != chaos.Cut && (ev.Dur <= 0 || ev.Dur > 500*time.Millisecond) {
			t.Errorf("event %d duration %v outside (0, maxDur]", i, ev.Dur)
		}
	}
}

// TestCutForwardsExactOffset pins byte-exact fault placement: a Cut at
// offset N delivers exactly N bytes and then severs both legs, on
// every replay.
func TestCutForwardsExactOffset(t *testing.T) {
	const at = 137
	for round := 0; round < 2; round++ {
		s := newSink(t)
		script := chaos.Script{Events: []chaos.Event{{Dir: chaos.Up, At: at, Action: chaos.Cut}}}
		p, err := chaos.NewProxy(s.addr(), func(int) chaos.Script { return script })
		if err != nil {
			t.Fatal(err)
		}
		c, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		// Write past the cut; the tail must never arrive.
		payload := pattern('x', 4096)
		c.SetWriteDeadline(time.Now().Add(5 * time.Second))
		c.Write(payload)
		s.waitDone(t)
		if got := s.snapshot(); len(got) != at {
			t.Fatalf("round %d: cut at %d forwarded %d bytes", round, at, len(got))
		}
		c.Close()
		p.Close()
	}
}

// TestStallDiscardsWindow pins the silent-loss semantics: bytes sent
// into a stalled direction vanish, the connection stays up, and
// delivery resumes when the window lapses.
func TestStallDiscardsWindow(t *testing.T) {
	s := newSink(t)
	script := chaos.Script{Events: []chaos.Event{{Dir: chaos.Up, At: 100, Action: chaos.Stall, Dur: 400 * time.Millisecond}}}
	p, err := chaos.NewProxy(s.addr(), func(int) chaos.Script { return script })
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.Write(pattern('a', 100)) // delivered; triggers the stall at offset 100
	time.Sleep(50 * time.Millisecond)
	c.Write(pattern('b', 50)) // inside the window: silently lost
	time.Sleep(600 * time.Millisecond)
	c.Write(pattern('c', 60)) // after the window: delivered
	time.Sleep(100 * time.Millisecond)
	c.Close()
	s.waitDone(t)
	want := append(pattern('a', 100), pattern('c', 60)...)
	if got := s.snapshot(); !bytes.Equal(got, want) {
		t.Fatalf("stall window delivered %d bytes (want 100 a's then 60 c's)", len(got))
	}
}

// TestDelayHoldsBytes pins that Delay is a latency spike, not loss:
// bytes behind the delay arrive late but intact.
func TestDelayHoldsBytes(t *testing.T) {
	s := newSink(t)
	script := chaos.Script{Events: []chaos.Event{{Dir: chaos.Up, At: 10, Action: chaos.Delay, Dur: 400 * time.Millisecond}}}
	p, err := chaos.NewProxy(s.addr(), func(int) chaos.Script { return script })
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.Write(pattern('d', 30))
	time.Sleep(100 * time.Millisecond)
	if got := len(s.snapshot()); got != 10 {
		t.Fatalf("mid-delay the sink has %d bytes, want exactly 10", got)
	}
	time.Sleep(600 * time.Millisecond)
	c.Close()
	s.waitDone(t)
	if got := s.snapshot(); !bytes.Equal(got, pattern('d', 30)) {
		t.Fatalf("after the delay the sink has %d bytes, want all 30", len(got))
	}
}

// TestPartitionSuppressesClose pins the semantics JoinLoop's
// retry/return distinction rests on: while a partition holds, a peer's
// close is invisible — the survivor sees a silent link, not an EOF.
func TestPartitionSuppressesClose(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	p, err := chaos.NewProxy(ln.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var srvConn net.Conn
	select {
	case srvConn = <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("proxy never reached the server")
	}
	p.Inject(chaos.Partition, chaos.Up, 5*time.Second)
	srvConn.Close()
	// The client must NOT see the FIN: its read times out instead.
	c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	buf := make([]byte, 1)
	_, err = c.Read(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read through a partition returned %v, want timeout (close must not propagate)", err)
	}
}
