// Package trace generates and fits disk failure logs: the input side
// of the availability study. The paper takes its Weibull parameters
// from field studies (Schroeder & Gibson, FAST'07); this package
// provides the machinery a practitioner needs to derive such
// parameters from their own logs — synthetic log generation from any
// lifetime law, and maximum-likelihood fitting of exponential and
// Weibull models with right-censoring (most disks in a real log never
// fail during the observation window).
package trace

import (
	"errors"
	"fmt"
	"math"

	"herald/internal/dist"
	"herald/internal/xrand"
)

// Observation is one disk-lifetime record: a duration in hours and
// whether the observation window closed before the disk failed
// (right-censored).
type Observation struct {
	Duration float64
	Censored bool
}

// Log is a set of lifetime observations.
type Log []Observation

// Failures returns the number of uncensored (actual failure)
// observations.
func (l Log) Failures() int {
	n := 0
	for _, o := range l {
		if !o.Censored {
			n++
		}
	}
	return n
}

// TotalExposure returns the summed duration over all observations
// (the denominator of the classic failures-per-device-hour rate).
func (l Log) TotalExposure() float64 {
	s := 0.0
	for _, o := range l {
		s += o.Duration
	}
	return s
}

// validate rejects logs that cannot be fitted.
func (l Log) validate() error {
	if len(l) == 0 {
		return errors.New("trace: empty log")
	}
	for i, o := range l {
		if o.Duration <= 0 || math.IsNaN(o.Duration) || math.IsInf(o.Duration, 0) {
			return fmt.Errorf("trace: observation %d has invalid duration %v", i, o.Duration)
		}
	}
	if l.Failures() == 0 {
		return errors.New("trace: log contains no failures; parameters are not identifiable")
	}
	return nil
}

// Generate simulates a fleet of slots over an observation window:
// each slot runs disks drawn from the lifetime law, replacing them on
// failure (a renewal process), and the final in-service disk is
// recorded as censored at the window end. This is the shape of real
// field logs.
func Generate(lifetime dist.Distribution, slots int, window float64, r *xrand.Source) Log {
	if slots < 1 || window <= 0 {
		panic(fmt.Sprintf("trace: invalid generation parameters slots=%d window=%v", slots, window))
	}
	var log Log
	for s := 0; s < slots; s++ {
		t := 0.0
		for {
			life := lifetime.Sample(r)
			if t+life >= window {
				remaining := window - t
				if remaining > 0 {
					log = append(log, Observation{Duration: remaining, Censored: true})
				}
				break
			}
			log = append(log, Observation{Duration: life})
			t += life
		}
	}
	return log
}

// FitExponential returns the maximum-likelihood failure rate for a
// (possibly censored) log: failures / total exposure.
func FitExponential(l Log) (rate float64, err error) {
	if err := l.validate(); err != nil {
		return 0, err
	}
	return float64(l.Failures()) / l.TotalExposure(), nil
}

// FitWeibull returns the maximum-likelihood Weibull shape and scale
// for a (possibly censored) log. The profile-likelihood equation in
// the shape k,
//
//	g(k) = sum_i x_i^k ln x_i / sum_i x_i^k - 1/k - mean(ln x_f) = 0
//
// (sums over all observations, the mean over failures only) is solved
// by bisection; the scale follows as (sum_i x_i^k / r)^(1/k).
func FitWeibull(l Log) (shape, scale float64, err error) {
	if err := l.validate(); err != nil {
		return 0, 0, err
	}
	r := float64(l.Failures())
	meanLogFail := 0.0
	for _, o := range l {
		if !o.Censored {
			meanLogFail += math.Log(o.Duration)
		}
	}
	meanLogFail /= r

	g := func(k float64) float64 {
		// Numerically stable weighted sums: factor out max x^k.
		maxLog := math.Inf(-1)
		for _, o := range l {
			if lx := k * math.Log(o.Duration); lx > maxLog {
				maxLog = lx
			}
		}
		var sw, swl float64
		for _, o := range l {
			w := math.Exp(k*math.Log(o.Duration) - maxLog)
			sw += w
			swl += w * math.Log(o.Duration)
		}
		return swl/sw - 1/k - meanLogFail
	}

	// g is increasing in k; bracket the root.
	lo, hi := 1e-3, 1.0
	for g(hi) < 0 {
		hi *= 2
		if hi > 1e4 {
			return 0, 0, errors.New("trace: weibull shape did not bracket (degenerate log)")
		}
	}
	for g(lo) > 0 {
		lo /= 2
		if lo < 1e-9 {
			return 0, 0, errors.New("trace: weibull shape did not bracket (degenerate log)")
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	shape = (lo + hi) / 2

	// Scale from the likelihood equation, in log space.
	maxLog := math.Inf(-1)
	for _, o := range l {
		if lx := shape * math.Log(o.Duration); lx > maxLog {
			maxLog = lx
		}
	}
	sw := 0.0
	for _, o := range l {
		sw += math.Exp(shape*math.Log(o.Duration) - maxLog)
	}
	logScale := (maxLog + math.Log(sw) - math.Log(r)) / shape
	scale = math.Exp(logScale)
	return shape, scale, nil
}

// LogLikelihoodExponential evaluates the censored log-likelihood of an
// exponential model.
func LogLikelihoodExponential(l Log, rate float64) float64 {
	ll := 0.0
	for _, o := range l {
		if o.Censored {
			ll += -rate * o.Duration
		} else {
			ll += math.Log(rate) - rate*o.Duration
		}
	}
	return ll
}

// LogLikelihoodWeibull evaluates the censored log-likelihood of a
// Weibull model.
func LogLikelihoodWeibull(l Log, shape, scale float64) float64 {
	ll := 0.0
	for _, o := range l {
		z := o.Duration / scale
		h := math.Pow(z, shape)
		if o.Censored {
			ll += -h
		} else {
			ll += math.Log(shape/scale) + (shape-1)*math.Log(z) - h
		}
	}
	return ll
}

// ModelChoice summarizes an AIC comparison between the exponential and
// Weibull fits of a log.
type ModelChoice struct {
	ExpRate               float64
	WeibullShape          float64
	WeibullScale          float64
	AICExponential        float64
	AICWeibull            float64
	WeibullPreferred      bool
	ImpliedMeanRate       float64 // 1 / fitted mean lifetime
	FittedMeanLifetimeHrs float64
}

// Choose fits both models and compares them by AIC (2k - 2 lnL).
func Choose(l Log) (ModelChoice, error) {
	rate, err := FitExponential(l)
	if err != nil {
		return ModelChoice{}, err
	}
	shape, scale, err := FitWeibull(l)
	if err != nil {
		return ModelChoice{}, err
	}
	aicE := 2*1 - 2*LogLikelihoodExponential(l, rate)
	aicW := 2*2 - 2*LogLikelihoodWeibull(l, shape, scale)
	mean := dist.NewWeibull(shape, scale).Mean()
	return ModelChoice{
		ExpRate:               rate,
		WeibullShape:          shape,
		WeibullScale:          scale,
		AICExponential:        aicE,
		AICWeibull:            aicW,
		WeibullPreferred:      aicW < aicE,
		ImpliedMeanRate:       1 / mean,
		FittedMeanLifetimeHrs: mean,
	}, nil
}
