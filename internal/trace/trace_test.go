package trace

import (
	"math"
	"testing"
	"testing/quick"

	"herald/internal/dist"
	"herald/internal/xrand"
)

func TestGenerateShape(t *testing.T) {
	r := xrand.New(1)
	log := Generate(dist.NewExponential(1e-4), 100, 1e5, r)
	if len(log) == 0 {
		t.Fatal("empty log")
	}
	censored := len(log) - log.Failures()
	// Every slot ends with (at most) one censored record.
	if censored > 100 {
		t.Fatalf("censored %d > slots", censored)
	}
	if censored == 0 {
		t.Fatal("expected some censored records")
	}
	if log.Failures() == 0 {
		t.Fatal("expected failures at lambda*window = 10")
	}
	for _, o := range log {
		if o.Duration <= 0 || o.Duration > 1e5 {
			t.Fatalf("bad duration %v", o.Duration)
		}
	}
}

func TestGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(dist.NewExponential(1), 0, 10, xrand.New(1))
}

func TestFitExponentialRecoversRate(t *testing.T) {
	r := xrand.New(7)
	const want = 2e-5
	log := Generate(dist.NewExponential(want), 2000, 2e5, r)
	rate, err := FitExponential(log)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(rate-want) / want; rel > 0.05 {
		t.Fatalf("fitted rate %v, want %v (rel %v)", rate, want, rel)
	}
}

func TestFitWeibullRecoversParameters(t *testing.T) {
	r := xrand.New(11)
	// The paper's steepest Fig. 5 pair: rate 2e-5 mean, shape 1.48.
	truth := dist.WeibullFromMeanRate(2e-5, 1.48)
	log := Generate(truth, 3000, 2e5, r)
	shape, scale, err := FitWeibull(log)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(shape-1.48) / 1.48; rel > 0.05 {
		t.Fatalf("fitted shape %v, want 1.48", shape)
	}
	if rel := math.Abs(scale-truth.Scale) / truth.Scale; rel > 0.05 {
		t.Fatalf("fitted scale %v, want %v", scale, truth.Scale)
	}
}

func TestFitWeibullOnExponentialDataGivesShapeOne(t *testing.T) {
	r := xrand.New(13)
	log := Generate(dist.NewExponential(5e-5), 3000, 1e5, r)
	shape, _, err := FitWeibull(log)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(shape-1) > 0.06 {
		t.Fatalf("shape on exponential data = %v, want ~1", shape)
	}
}

func TestFitHandlesHeavyCensoring(t *testing.T) {
	// Short window relative to MTTF: most records censored, as in a
	// real field study.
	r := xrand.New(17)
	log := Generate(dist.NewExponential(1e-5), 20000, 2e4, r) // ~18% fail
	frac := float64(log.Failures()) / float64(len(log))
	if frac > 0.5 {
		t.Fatalf("expected heavy censoring, got failure fraction %v", frac)
	}
	rate, err := FitExponential(log)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(rate-1e-5) / 1e-5; rel > 0.06 {
		t.Fatalf("censored fit %v, want 1e-5", rate)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitExponential(nil); err == nil {
		t.Fatal("empty log accepted")
	}
	if _, _, err := FitWeibull(Log{{Duration: 5, Censored: true}}); err == nil {
		t.Fatal("failure-free log accepted")
	}
	if _, err := FitExponential(Log{{Duration: -1}}); err == nil {
		t.Fatal("negative duration accepted")
	}
	if _, err := FitExponential(Log{{Duration: math.NaN()}}); err == nil {
		t.Fatal("NaN duration accepted")
	}
}

func TestLogLikelihoodPeaksNearMLE(t *testing.T) {
	r := xrand.New(19)
	log := Generate(dist.NewExponential(3e-5), 1000, 1e5, r)
	mle, err := FitExponential(log)
	if err != nil {
		t.Fatal(err)
	}
	best := LogLikelihoodExponential(log, mle)
	for _, factor := range []float64{0.5, 0.8, 1.25, 2} {
		if ll := LogLikelihoodExponential(log, mle*factor); ll >= best {
			t.Fatalf("likelihood at %vx MLE (%v) >= at MLE (%v)", factor, ll, best)
		}
	}
}

func TestChoosePrefersWeibullOnWearOutData(t *testing.T) {
	r := xrand.New(23)
	truth := dist.WeibullFromMeanRate(2e-5, 1.48)
	log := Generate(truth, 3000, 2e5, r)
	choice, err := Choose(log)
	if err != nil {
		t.Fatal(err)
	}
	if !choice.WeibullPreferred {
		t.Fatalf("AIC chose exponential on shape-1.48 data: %+v", choice)
	}
	if rel := math.Abs(choice.ImpliedMeanRate-2e-5) / 2e-5; rel > 0.06 {
		t.Fatalf("implied mean rate %v, want 2e-5", choice.ImpliedMeanRate)
	}
}

func TestChoosePrefersExponentialOnMemorylessData(t *testing.T) {
	r := xrand.New(29)
	log := Generate(dist.NewExponential(2e-5), 3000, 2e5, r)
	choice, err := Choose(log)
	if err != nil {
		t.Fatal(err)
	}
	// AIC penalizes Weibull's extra parameter; on truly exponential
	// data the simpler model should usually win.
	if choice.WeibullPreferred && math.Abs(choice.WeibullShape-1) > 0.1 {
		t.Fatalf("suspicious Weibull preference: %+v", choice)
	}
}

func TestLogAccessors(t *testing.T) {
	l := Log{{Duration: 10}, {Duration: 5, Censored: true}, {Duration: 1}}
	if l.Failures() != 2 {
		t.Fatalf("failures = %d", l.Failures())
	}
	if l.TotalExposure() != 16 {
		t.Fatalf("exposure = %v", l.TotalExposure())
	}
}

func TestQuickFitWeibullRoundTrip(t *testing.T) {
	f := func(seed uint64, shapeRaw uint8) bool {
		shape := 0.8 + float64(shapeRaw)/255*1.2 // 0.8 .. 2.0
		r := xrand.New(seed)
		truth := dist.NewWeibull(shape, 1e5)
		log := Generate(truth, 800, 3e5, r)
		if log.Failures() < 50 {
			return true // too few failures to demand accuracy
		}
		got, _, err := FitWeibull(log)
		if err != nil {
			return false
		}
		return math.Abs(got-shape)/shape < 0.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
