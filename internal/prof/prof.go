// Package prof wires -cpuprofile/-memprofile CLI flags to
// runtime/pprof so the binaries can profile a run without a test
// harness.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns
// a stop function that ends the CPU profile and, when memPath is
// non-empty, writes an allocation heap profile. Either path may be
// empty; with both empty the returned stop is a no-op. Call stop on
// the success path after the work being measured, not via defer past
// an os.Exit.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			defer f.Close()
			// Materialize up-to-date allocation statistics before the
			// snapshot; otherwise the profile lags the last GC cycle.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
