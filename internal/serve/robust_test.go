package serve_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"herald/internal/serve"
	"herald/internal/shard"
	"herald/internal/sim"
)

// failingWorker errors every job; a server whose pool holds only this
// worker can serve nothing except cache hits.
type failingWorker struct{}

func (failingWorker) Name() string                          { return "failing" }
func (failingWorker) Run(*shard.Job) ([]sim.Partial, error) { return nil, errors.New("boom") }
func (failingWorker) Close() error                          { return nil }

// logBuf is a goroutine-safe server log sink.
type logBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (l *logBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

func (l *logBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.String()
}

// startServer builds a server whose lifecycle the test drives manually
// (restart tests shut servers down mid-test).
func startServer(t *testing.T, cfg serve.Config, workers ...shard.Worker) (*httptest.Server, *serve.Server, *shard.Pool) {
	t.Helper()
	if len(workers) == 0 {
		workers = []shard.Worker{shard.NewInProcessWorker("test", 2)}
	}
	pool, err := shard.NewPool(workers, nil, io.Discard)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	cfg.Pool = pool
	srv, err := serve.NewServer(cfg)
	if err != nil {
		pool.Close()
		t.Fatalf("NewServer: %v", err)
	}
	return httptest.NewServer(srv), srv, pool
}

// TestCachePersistsAcrossRestart pins the restart contract: a result
// computed by one server generation is served as a cache hit by the
// next — proven by giving the restarted server a pool that cannot run
// anything — and a torn snapshot tail costs only the torn entry.
func TestCachePersistsAcrossRestart(t *testing.T) {
	cf := filepath.Join(t.TempDir(), "cache.ndjson")
	body := wireRequest(t, testParams, runOpts(testOptions), 4)
	want := simBytes(t, testParams, testOptions)

	hs1, srv1, pool1 := startServer(t, serve.Config{CacheFile: cf})
	resp, rr := postRun(t, hs1.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run status = %d", resp.StatusCode)
	}
	if !bytes.Equal(rr.Summary, want) {
		t.Fatalf("first run summary diverged from sim")
	}
	hs1.Close()
	srv1.Drain() // drain snapshots the cache
	pool1.Close()
	if _, err := os.Stat(cf); err != nil {
		t.Fatalf("drain left no snapshot: %v", err)
	}

	// Second generation: its pool fails every job, so only a cache hit
	// can answer.
	hs2, srv2, pool2 := startServer(t, serve.Config{CacheFile: cf}, failingWorker{})
	if st := cacheStats(t, hs2.URL); st.Loaded != 1 {
		t.Fatalf("restarted server loaded %d entries, want 1", st.Loaded)
	}
	resp, rr = postRun(t, hs2.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replayed run status = %d, want a cache hit", resp.StatusCode)
	}
	if !rr.Cached {
		t.Error("replayed run not marked cached")
	}
	if !bytes.Equal(rr.Summary, want) {
		t.Fatalf("replayed summary diverged from the first generation")
	}
	hs2.Close()
	srv2.Drain()
	pool2.Close()

	// Tear the snapshot's tail (a crash mid-append); the surviving
	// prefix must still load and serve.
	f, err := os.OpenFile(cf, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"type":"entry","fp":"torn`)
	f.Close()
	hs3, srv3, pool3 := startServer(t, serve.Config{CacheFile: cf}, failingWorker{})
	defer func() { hs3.Close(); srv3.Drain(); pool3.Close() }()
	if st := cacheStats(t, hs3.URL); st.Loaded != 1 {
		t.Fatalf("torn snapshot loaded %d entries, want 1", st.Loaded)
	}
	resp, rr = postRun(t, hs3.URL, body)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(rr.Summary, want) {
		t.Fatalf("torn-tail reload cannot serve the prior result (status %d)", resp.StatusCode)
	}
}

// TestAuthTokenGatesV1 pins the bearer gate: /v1 endpoints demand the
// token and reject everything else with one uniform body, while health
// endpoints stay open for probes.
func TestAuthTokenGatesV1(t *testing.T) {
	hs, _, _ := newTestServer(t, serve.Config{AuthToken: "s3cret"})

	get := func(path, token string) (*http.Response, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, hs.URL+path, nil)
		if token != "" {
			req.Header.Set("Authorization", token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, string(b)
	}

	resp, missing := get("/v1/cache", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("missing token: status %d, want 401", resp.StatusCode)
	}
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Error("401 missing WWW-Authenticate challenge")
	}
	resp, wrong := get("/v1/cache", "Bearer nope")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong token: status %d, want 401", resp.StatusCode)
	}
	if missing != wrong {
		t.Errorf("401 bodies differ between missing and wrong tokens:\n%q\n%q", missing, wrong)
	}
	if resp, _ := get("/v1/cache", "Bearer s3cret"); resp.StatusCode != http.StatusOK {
		t.Fatalf("correct token: status %d, want 200", resp.StatusCode)
	}
	if resp, _ := get("/v1/cache", "bearer s3cret"); resp.StatusCode != http.StatusOK {
		t.Fatalf("case-insensitive scheme: status %d, want 200", resp.StatusCode)
	}
	for _, path := range []string{"/healthz", "/v1/healthz", "/readyz"} {
		if resp, _ := get(path, ""); resp.StatusCode == http.StatusUnauthorized {
			t.Errorf("%s is gated; health must stay open", path)
		}
	}
	// A run with the token flows end to end.
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/run", bytes.NewReader(wireRequest(t, testParams, runOpts(testOptions), 2)))
	req.Header.Set("Authorization", "Bearer s3cret")
	req.Header.Set("Content-Type", "application/json")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("authorized run: status %d, want 200", resp2.StatusCode)
	}
}

// TestPerClientAdmission pins per-client fairness: one client may not
// hold more than its bound of executing+queued runs even when global
// slots remain.
func TestPerClientAdmission(t *testing.T) {
	bw := newBlockingWorker()
	hs, _, _ := newTestServer(t, serve.Config{MaxInFlight: 4, MaxInFlightPerClient: 1}, bw)

	first := wireRequest(t, testParams, runOpts(testOptions), 1)
	second := testOptions
	second.Seed = 99
	secondBody := wireRequest(t, testParams, runOpts(second), 1)

	done := make(chan serve.RunResponse, 1)
	go func() {
		_, rr := postRun(t, hs.URL, first)
		done <- rr
	}()
	<-bw.started

	resp, err := http.Post(hs.URL+"/v1/run", "application/json", bytes.NewReader(secondBody))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("same client's second run status = %d, want 429", resp.StatusCode)
	}
	if !strings.Contains(string(raw), "client at capacity") {
		t.Errorf("429 body %q does not name the per-client bound", raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}

	close(bw.release)
	rr := <-done
	if !bytes.Equal(rr.Summary, simBytes(t, testParams, testOptions)) {
		t.Fatalf("first run corrupted by the refused second")
	}
	// With the slot free again the client may run anew.
	resp2, rr2 := postRun(t, hs.URL, secondBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("run after release: status %d, want 200", resp2.StatusCode)
	}
	if len(rr2.Summary) == 0 {
		t.Error("run after release returned no summary")
	}
}

// TestClientDisconnectCancelsRun pins deadline propagation end to end:
// when the only client of a flight goes away, the leader's context is
// cancelled and the shard run aborts — and the server stays healthy.
func TestClientDisconnectCancelsRun(t *testing.T) {
	bw := newBlockingWorker()
	logw := &logBuf{}
	hs, _, _ := newTestServer(t, serve.Config{Log: logw}, bw)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/run",
		bytes.NewReader(wireRequest(t, testParams, runOpts(testOptions), 1)))
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-bw.started // the run is on the worker
	cancel()     // client vanishes
	if err := <-errc; err == nil {
		t.Fatal("cancelled request returned without error")
	}
	// The abandoned flight must abort its run promptly.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(logw.String(), "cancelled") {
		if time.Now().After(deadline) {
			t.Fatalf("run never aborted after client disconnect; log:\n%s", logw.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The pool survives the abort: the identical request recomputes.
	close(bw.release)
	resp, rr := postRun(t, hs.URL, wireRequest(t, testParams, runOpts(testOptions), 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rerun after disconnect: status %d", resp.StatusCode)
	}
	if !bytes.Equal(rr.Summary, simBytes(t, testParams, testOptions)) {
		t.Fatal("rerun after disconnect diverged from sim")
	}
	if rr.Cached {
		t.Error("aborted run polluted the cache")
	}
}

// TestRunTimeoutAbortsRun pins the -run-timeout bound: an overdue run
// fails with the deadline cause instead of hanging, and the server
// keeps serving.
func TestRunTimeoutAbortsRun(t *testing.T) {
	bw := newBlockingWorker()
	hs, _, _ := newTestServer(t, serve.Config{RunTimeout: 100 * time.Millisecond}, bw)

	body := wireRequest(t, testParams, runOpts(testOptions), 1)
	resp, err := http.Post(hs.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("overdue run status = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(raw), "cancelled") {
		t.Errorf("overdue run body %q does not name the cancellation", raw)
	}
	close(bw.release)
	// A fresh (different) request must still be served.
	second := testOptions
	second.Seed = 7
	resp2, rr := postRun(t, hs.URL, wireRequest(t, testParams, runOpts(second), 1))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("run after timeout: status %d", resp2.StatusCode)
	}
	if !bytes.Equal(rr.Summary, simBytes(t, testParams, second)) {
		t.Fatal("run after timeout diverged from sim")
	}
}

// TestReadyzReflectsState pins the readiness contract: ready while the
// pool is populated, unready once draining begins.
func TestReadyzReflectsState(t *testing.T) {
	hs, srv, _ := newTestServer(t, serve.Config{})
	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh server /readyz = %d, want 200", resp.StatusCode)
	}
	srv.BeginDrain()
	resp, err = http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(raw), "draining") {
		t.Errorf("draining /readyz body %q does not say so", raw)
	}
}
