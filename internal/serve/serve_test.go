package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"herald/internal/serve"
	"herald/internal/shard"
	"herald/internal/sim"
)

var (
	testParams  = sim.PaperDefaults(4, 1e-4, 0.02)
	testOptions = sim.Options{Iterations: 2000, MissionTime: 2e5, Seed: 20170327}
)

// wireRequest lowers in-memory parameters to the JSON body of
// POST /v1/run.
func wireRequest(t *testing.T, p sim.ArrayParams, o serve.RunOptions, shards int) []byte {
	t.Helper()
	wp, err := shard.EncodeParams(p)
	if err != nil {
		t.Fatalf("EncodeParams: %v", err)
	}
	b, err := json.Marshal(serve.RunRequest{Params: wp, Options: o, Shards: shards})
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	return b
}

func runOpts(o sim.Options) serve.RunOptions {
	return serve.RunOptions{
		Iterations:      o.Iterations,
		MissionTime:     o.MissionTime,
		Seed:            o.Seed,
		TargetHalfWidth: o.TargetHalfWidth,
		MaxIters:        o.MaxIters,
	}
}

// simBytes is the ground truth: the marshalled Summary of an
// in-process run. The service must return these exact bytes.
func simBytes(t *testing.T, p sim.ArrayParams, o sim.Options) []byte {
	t.Helper()
	sum, err := sim.Run(p, o)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	b, err := json.Marshal(sum)
	if err != nil {
		t.Fatalf("marshal summary: %v", err)
	}
	return b
}

func newTestServer(t *testing.T, cfg serve.Config, workers ...shard.Worker) (*httptest.Server, *serve.Server, *shard.Pool) {
	t.Helper()
	if len(workers) == 0 {
		workers = []shard.Worker{shard.NewInProcessWorker("test", 2)}
	}
	pool, err := shard.NewPool(workers, nil, io.Discard)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	cfg.Pool = pool
	srv, err := serve.NewServer(cfg)
	if err != nil {
		pool.Close()
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Drain()
		pool.Close()
	})
	return hs, srv, pool
}

func postRun(t *testing.T, url string, body []byte) (*http.Response, serve.RunResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var rr serve.RunResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &rr); err != nil {
			t.Fatalf("decode response %q: %v", raw, err)
		}
	}
	return resp, rr
}

func cacheStats(t *testing.T, url string) serve.CacheStats {
	t.Helper()
	resp, err := http.Get(url + "/v1/cache")
	if err != nil {
		t.Fatalf("GET /v1/cache: %v", err)
	}
	defer resp.Body.Close()
	var st serve.CacheStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode cache stats: %v", err)
	}
	return st
}

// TestRunMatchesSimAndCaches pins the service's core contract: the
// HTTP summary is byte-identical to an in-process sim.Run, and the
// identical repeat request is served from the cache.
func TestRunMatchesSimAndCaches(t *testing.T) {
	hs, _, _ := newTestServer(t, serve.Config{})
	body := wireRequest(t, testParams, runOpts(testOptions), 4)
	want := simBytes(t, testParams, testOptions)

	resp, rr := postRun(t, hs.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if rr.Cached {
		t.Fatalf("first request reported cached")
	}
	if !bytes.Equal(rr.Summary, want) {
		t.Fatalf("summary mismatch:\n got %s\nwant %s", rr.Summary, want)
	}
	if rr.Fingerprint == "" {
		t.Fatalf("empty fingerprint")
	}

	resp2, rr2 := postRun(t, hs.URL, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status = %d", resp2.StatusCode)
	}
	if !rr2.Cached {
		t.Fatalf("repeat request not served from cache")
	}
	if !bytes.Equal(rr2.Summary, want) {
		t.Fatalf("cached summary differs from fresh one")
	}
	if rr2.Fingerprint != rr.Fingerprint {
		t.Fatalf("fingerprint changed across identical requests: %s vs %s", rr.Fingerprint, rr2.Fingerprint)
	}

	st := cacheStats(t, hs.URL)
	if st.Entries != 1 || st.Inserts != 1 {
		t.Fatalf("cache stats = %+v, want 1 entry / 1 insert", st)
	}
	if st.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.Hits)
	}

	// A schedule-only difference (shard partition) must hit the same
	// cache entry: the fingerprint ignores it.
	resp3, rr3 := postRun(t, hs.URL, wireRequest(t, testParams, runOpts(testOptions), 9))
	if resp3.StatusCode != http.StatusOK || !rr3.Cached {
		t.Fatalf("different shard count missed the cache (status %d, cached %v)", resp3.StatusCode, rr3.Cached)
	}
}

// blockingWorker delegates to an in-process worker but holds every job
// until released, making admission and dedup windows deterministic.
type blockingWorker struct {
	inner   shard.Worker
	started chan struct{}
	release chan struct{}

	mu   sync.Mutex
	jobs int
}

func newBlockingWorker() *blockingWorker {
	return &blockingWorker{
		inner:   shard.NewInProcessWorker("inner", 2),
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (b *blockingWorker) Name() string { return "blocking" }

func (b *blockingWorker) Run(j *shard.Job) ([]sim.Partial, error) {
	b.mu.Lock()
	b.jobs++
	b.mu.Unlock()
	b.started <- struct{}{}
	<-b.release
	return b.inner.Run(j)
}

func (b *blockingWorker) Close() error { return b.inner.Close() }

func (b *blockingWorker) jobCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.jobs
}

// TestConcurrentIdenticalRequestsRunOnce pins singleflight dedup: two
// concurrent identical requests produce exactly one underlying run and
// byte-identical responses.
func TestConcurrentIdenticalRequestsRunOnce(t *testing.T) {
	bw := newBlockingWorker()
	hs, _, _ := newTestServer(t, serve.Config{}, bw)
	body := wireRequest(t, testParams, runOpts(testOptions), 1)

	type outcome struct {
		status int
		rr     serve.RunResponse
	}
	results := make(chan outcome, 2)
	do := func() {
		resp, rr := postRun(t, hs.URL, body)
		results <- outcome{resp.StatusCode, rr}
	}
	go do()
	<-bw.started // the first request's single job is on the worker
	go do()
	time.Sleep(50 * time.Millisecond) // let the second request join the flight
	close(bw.release)

	a, b := <-results, <-results
	if a.status != http.StatusOK || b.status != http.StatusOK {
		t.Fatalf("statuses = %d, %d", a.status, b.status)
	}
	if !bytes.Equal(a.rr.Summary, b.rr.Summary) {
		t.Fatalf("concurrent identical requests returned different bytes")
	}
	if a.rr.Cached || b.rr.Cached {
		t.Fatalf("neither request should report cached (both were computed once, together)")
	}
	if got := bw.jobCount(); got != 1 {
		t.Fatalf("worker executed %d jobs, want exactly 1 (dedup failed)", got)
	}
	if st := cacheStats(t, hs.URL); st.Inserts != 1 {
		t.Fatalf("cache inserts = %d, want 1", st.Inserts)
	}
}

// TestAdmissionRefusesDeterministically pins the 429 path: with one
// slot and no queue, a second distinct request is refused immediately
// with Retry-After set, and the first still completes.
func TestAdmissionRefusesDeterministically(t *testing.T) {
	bw := newBlockingWorker()
	hs, _, _ := newTestServer(t, serve.Config{MaxInFlight: 1, MaxQueued: -1}, bw)

	first := wireRequest(t, testParams, runOpts(testOptions), 1)
	second := testOptions
	second.Seed = 99
	secondBody := wireRequest(t, testParams, runOpts(second), 1)

	done := make(chan serve.RunResponse, 1)
	go func() {
		_, rr := postRun(t, hs.URL, first)
		done <- rr
	}()
	<-bw.started

	resp, _ := postRun(t, hs.URL, secondBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 missing Retry-After header")
	}

	close(bw.release)
	rr := <-done
	if !bytes.Equal(rr.Summary, simBytes(t, testParams, testOptions)) {
		t.Fatalf("first request's summary corrupted by refused second")
	}
}

// TestStreamedAdaptiveRun pins the progress stream: monotone
// iteration counts, a converged terminal event, and a final summary
// byte-identical to the in-process adaptive run (same stopping
// boundary as the CLI).
func TestStreamedAdaptiveRun(t *testing.T) {
	hs, _, _ := newTestServer(t, serve.Config{})
	opts := sim.Options{
		Iterations:      60000,
		MissionTime:     2e5,
		Seed:            20170327,
		TargetHalfWidth: 1.5e-5,
	}
	body := wireRequest(t, testParams, runOpts(opts), 8)
	want := simBytes(t, testParams, opts)

	resp, err := http.Post(hs.URL+"/v1/run?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}

	type event struct {
		Type       string          `json:"type"`
		Iterations int             `json:"iterations"`
		Cap        int             `json:"cap"`
		HalfWidth  *float64        `json:"half_width"`
		Converged  bool            `json:"converged"`
		Final      bool            `json:"final"`
		Cached     bool            `json:"cached"`
		Summary    json.RawMessage `json:"summary"`
		Error      string          `json:"error"`
	}
	var events []event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(events) < 2 {
		t.Fatalf("got %d events, want at least one progress + result", len(events))
	}
	last := events[len(events)-1]
	if last.Type != "result" {
		t.Fatalf("terminal event type = %q (error: %s)", last.Type, last.Error)
	}
	if !bytes.Equal(last.Summary, want) {
		t.Fatalf("streamed summary differs from in-process run:\n got %s\nwant %s", last.Summary, want)
	}
	prev := 0
	sawProgress := false
	for _, ev := range events[:len(events)-1] {
		if ev.Type != "progress" {
			t.Fatalf("unexpected event type %q before result", ev.Type)
		}
		sawProgress = true
		if ev.Iterations < prev {
			t.Fatalf("progress went backwards: %d after %d", ev.Iterations, prev)
		}
		prev = ev.Iterations
	}
	if !sawProgress {
		t.Fatalf("no progress events before the result")
	}
	final := events[len(events)-2]
	if !final.Final || !final.Converged {
		t.Fatalf("last progress event = %+v, want final and converged", final)
	}
	var sum sim.Summary
	if err := json.Unmarshal(last.Summary, &sum); err != nil {
		t.Fatalf("decode streamed summary: %v", err)
	}
	if final.Iterations != sum.Iterations {
		t.Fatalf("final progress iterations %d != summary iterations %d", final.Iterations, sum.Iterations)
	}
}

// TestSweepWithDuplicatePoint pins /v1/sweep: per-point results in
// request order, duplicates coalesced to identical bytes.
func TestSweepWithDuplicatePoint(t *testing.T) {
	hs, _, _ := newTestServer(t, serve.Config{})
	wp, err := shard.EncodeParams(testParams)
	if err != nil {
		t.Fatalf("EncodeParams: %v", err)
	}
	other := testOptions
	other.Seed = 7
	req := serve.SweepRequest{Points: []serve.RunRequest{
		{Params: wp, Options: runOpts(testOptions), Shards: 2},
		{Params: wp, Options: runOpts(other), Shards: 2},
		{Params: wp, Options: runOpts(testOptions), Shards: 5}, // duplicate of point 0 modulo schedule
	}}
	body, _ := json.Marshal(req)
	resp, err := http.Post(hs.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sweep: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var sr serve.SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode sweep response: %v", err)
	}
	if len(sr.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(sr.Results))
	}
	if !bytes.Equal(sr.Results[0].Summary, simBytes(t, testParams, testOptions)) {
		t.Fatalf("point 0 summary differs from in-process run")
	}
	if !bytes.Equal(sr.Results[1].Summary, simBytes(t, testParams, other)) {
		t.Fatalf("point 1 summary differs from in-process run")
	}
	if sr.Results[0].Fingerprint != sr.Results[2].Fingerprint {
		t.Fatalf("duplicate points got different fingerprints")
	}
	if !bytes.Equal(sr.Results[0].Summary, sr.Results[2].Summary) {
		t.Fatalf("duplicate points got different bytes")
	}
}

// TestDrainRefusesNewRuns pins graceful drain: new work is refused
// with 503, while cache hits keep being served.
func TestDrainRefusesNewRuns(t *testing.T) {
	hs, srv, _ := newTestServer(t, serve.Config{})
	body := wireRequest(t, testParams, runOpts(testOptions), 2)
	if resp, _ := postRun(t, hs.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("priming run status = %d", resp.StatusCode)
	}

	srv.BeginDrain()

	// Cached result: still served.
	resp, rr := postRun(t, hs.URL, body)
	if resp.StatusCode != http.StatusOK || !rr.Cached {
		t.Fatalf("cache hit during drain: status %d, cached %v", resp.StatusCode, rr.Cached)
	}

	// New work: refused.
	fresh := testOptions
	fresh.Seed = 4242
	resp2, _ := postRun(t, hs.URL, wireRequest(t, testParams, runOpts(fresh), 2))
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new run during drain: status %d, want 503", resp2.StatusCode)
	}
}

// TestMalformedRequests pins the 400/405 surface.
func TestMalformedRequests(t *testing.T) {
	hs, _, _ := newTestServer(t, serve.Config{})
	post := func(path, body string) int {
		resp, err := http.Post(hs.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	goodParams, _ := shard.EncodeParams(testParams)
	pj, _ := json.Marshal(goodParams)

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"syntax error", "/v1/run", `{"params": nope}`, 400},
		{"unknown field", "/v1/run", fmt.Sprintf(`{"params": %s, "options": {"iterations": 10, "mission_time": 1000, "seed": 1}, "bogus": 1}`, pj), 400},
		{"unknown option", "/v1/run", fmt.Sprintf(`{"params": %s, "options": {"iterations": 10, "mission_time": 1000, "seed": 1, "workers": 4}}`, pj), 400},
		{"zero iterations", "/v1/run", fmt.Sprintf(`{"params": %s, "options": {"mission_time": 1000, "seed": 1}}`, pj), 400},
		{"bad kernel", "/v1/run", fmt.Sprintf(`{"params": %s, "options": {"iterations": 10, "mission_time": 1000, "seed": 1, "kernel": "warp"}}`, pj), 400},
		{"negative shards", "/v1/run", fmt.Sprintf(`{"params": %s, "options": {"iterations": 10, "mission_time": 1000, "seed": 1}, "shards": -1}`, pj), 400},
		{"bad distribution", "/v1/run", `{"params": {"disks": 4, "ttf": {"family": "exponential", "params": [-1]}, "repair": {"family": "exponential", "params": [1]}, "tape_restore": {"family": "exponential", "params": [1]}}, "options": {"iterations": 10, "mission_time": 1000, "seed": 1}}`, 400},
		{"empty sweep", "/v1/sweep", `{"points": []}`, 400},
		{"bad sweep point", "/v1/sweep", fmt.Sprintf(`{"points": [{"params": %s, "options": {"mission_time": 1000, "seed": 1}}]}`, pj), 400},
	}
	for _, tc := range cases {
		if got := post(tc.path, tc.body); got != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, got, tc.want)
		}
	}
	for _, path := range []string{"/v1/run", "/v1/sweep"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status = %d, want 405", path, resp.StatusCode)
		}
	}
	resp, err := http.Post(hs.URL+"/v1/cache", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /v1/cache: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/cache: status = %d, want 405", resp.StatusCode)
	}
}

// TestDegenerateSummaryServes pins the all-up edge case: a run that
// never observes downtime has Nines = +Inf, which plain encoding/json
// refuses; Summary's marshaller emits null instead and the service
// must return 200, identical to the in-process encoding.
func TestDegenerateSummaryServes(t *testing.T) {
	hs, _, _ := newTestServer(t, serve.Config{})
	p := sim.PaperDefaults(4, 1e-9, 0) // failures effectively never happen
	o := sim.Options{Iterations: 200, MissionTime: 1000, Seed: 5}
	resp, rr := postRun(t, hs.URL, wireRequest(t, p, runOpts(o), 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(rr.Summary), `"Nines":null`) {
		t.Fatalf("degenerate summary = %s, want Nines null", rr.Summary)
	}
	if !bytes.Equal(rr.Summary, simBytes(t, p, o)) {
		t.Fatalf("degenerate summary differs from in-process encoding")
	}
}

// TestHealthz pins the health endpoint's states.
func TestHealthz(t *testing.T) {
	hs, srv, _ := newTestServer(t, serve.Config{})
	get := func() (int, string) {
		resp, err := http.Get(hs.URL + "/v1/healthz")
		if err != nil {
			t.Fatalf("GET /v1/healthz: %v", err)
		}
		defer resp.Body.Close()
		var st map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&st)
		return resp.StatusCode, st["status"]
	}
	if code, status := get(); code != 200 || status != "ok" {
		t.Fatalf("healthz = %d %q, want 200 ok", code, status)
	}
	srv.BeginDrain()
	if code, status := get(); code != 200 || status != "draining" {
		t.Fatalf("healthz during drain = %d %q, want 200 draining", code, status)
	}
}

// TestBiasedRun pins the service's importance-sampling surface: a
// biased request answers the byte-exact biased in-process Summary
// (factor echoed in it), biased and unbiased runs of one
// configuration get distinct cache entries, and a biased request
// against a generic-kernel configuration is a 400 at compile time.
func TestBiasedRun(t *testing.T) {
	hs, _, _ := newTestServer(t, serve.Config{})

	bo := runOpts(testOptions)
	bo.Bias = "4"
	so := testOptions
	so.Bias = 4
	want := simBytes(t, testParams, so)

	resp, rr := postRun(t, hs.URL, wireRequest(t, testParams, bo, 2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("biased run status = %d", resp.StatusCode)
	}
	if !bytes.Equal(rr.Summary, want) {
		t.Fatalf("biased summary mismatch:\n got %s\nwant %s", rr.Summary, want)
	}
	var sum sim.Summary
	if err := json.Unmarshal(rr.Summary, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Bias != 4 || !(sum.ESS > 0) {
		t.Fatalf("biased summary does not report the weighting: factor %v, ESS %v", sum.Bias, sum.ESS)
	}

	// The unbiased twin of the same configuration is a different run:
	// different fingerprint, no cache aliasing.
	respU, rrU := postRun(t, hs.URL, wireRequest(t, testParams, runOpts(testOptions), 2))
	if respU.StatusCode != http.StatusOK {
		t.Fatalf("unbiased run status = %d", respU.StatusCode)
	}
	if rrU.Fingerprint == rr.Fingerprint {
		t.Error("biased and unbiased runs share a fingerprint")
	}
	if rrU.Cached {
		t.Error("unbiased run answered from the biased run's cache entry")
	}
	if bytes.Equal(rrU.Summary, rr.Summary) {
		t.Error("biased and unbiased summaries are identical")
	}

	// Repeating the biased request hits its own cache entry.
	resp2, rr2 := postRun(t, hs.URL, wireRequest(t, testParams, bo, 2))
	if resp2.StatusCode != http.StatusOK || !rr2.Cached {
		t.Errorf("biased repeat: status %d, cached %v", resp2.StatusCode, rr2.Cached)
	}

	// A malformed factor and a generic-kernel configuration both fail
	// before any work is scheduled.
	badOpts := runOpts(testOptions)
	badOpts.Bias = "0.5"
	if resp, _ := postRun(t, hs.URL, wireRequest(t, testParams, badOpts, 2)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bias 0.5: status %d, want 400", resp.StatusCode)
	}
	genericOpts := runOpts(testOptions)
	genericOpts.Bias = "4"
	genericOpts.Kernel = "generic"
	if resp, _ := postRun(t, hs.URL, wireRequest(t, testParams, genericOpts, 2)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("biased generic-kernel request: status %d, want 400", resp.StatusCode)
	}
}
