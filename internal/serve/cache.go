// Package serve exposes the availability simulator as a long-lived
// HTTP/JSON service: one shared shard pool executes every request,
// results are cached under the canonical run fingerprint, concurrent
// identical requests coalesce into a single run, and adaptive runs can
// stream their convergence progress to the client.
//
// Because simulation results are bit-identical for equal fingerprints
// regardless of worker or shard count (see shard.RunFingerprint), the
// cache is exact: a hit returns the very bytes a fresh run would have
// produced.
package serve

import (
	"bufio"
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// CacheStats is a point-in-time snapshot of the result cache,
// served by GET /v1/cache.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Inserts   uint64 `json:"inserts"`
	// Loaded counts entries restored from the snapshot file at boot.
	Loaded int `json:"loaded,omitempty"`
}

// resultCache is an LRU map from run fingerprint to the marshalled
// Summary bytes of the finished run. Entries are immutable once
// inserted; the stored slice is shared, never mutated.
//
// When a snapshot path is configured the cache persists across process
// restarts: the whole LRU is written as an ndjson snapshot (header line
// then one entry per line, least- to most-recently-used, so a reload
// reconstructs the recency order) every snapEvery insertions and on
// drain, using the checkpoint idiom — write a temp file, fsync, rename
// — so a crash mid-snapshot leaves the previous snapshot intact and a
// torn tail only costs the entries behind it.
type resultCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	byFP      map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
	inserts   uint64
	loaded    int

	path      string
	snapEvery int
	sinceSnap int
	snapping  bool
	logw      io.Writer

	snapMu sync.Mutex // serializes snapshot writers
}

type cacheEntry struct {
	fp   string
	body []byte
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:  capacity,
		ll:   list.New(),
		byFP: make(map[string]*list.Element),
	}
}

// get returns the cached summary bytes for fp, or nil on a miss.
func (c *resultCache) get(fp string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byFP[fp]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body
}

// put inserts (or refreshes) fp's summary bytes, evicting the least
// recently used entry when over capacity. With persistence configured,
// every snapEvery-th insertion triggers an asynchronous snapshot.
func (c *resultCache) put(fp string, body []byte) {
	c.mu.Lock()
	if el, ok := c.byFP[fp]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		c.mu.Unlock()
		return
	}
	c.inserts++
	c.byFP[fp] = c.ll.PushFront(&cacheEntry{fp: fp, body: body})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byFP, last.Value.(*cacheEntry).fp)
		c.evictions++
	}
	snap := false
	if c.path != "" {
		c.sinceSnap++
		if c.sinceSnap >= c.snapEvery && !c.snapping {
			c.snapping = true
			c.sinceSnap = 0
			snap = true
		}
	}
	c.mu.Unlock()
	if snap {
		go func() {
			c.snapshotNow()
			c.mu.Lock()
			c.snapping = false
			c.mu.Unlock()
		}()
	}
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Capacity:  c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Inserts:   c.inserts,
		Loaded:    c.loaded,
	}
}

// The snapshot is newline-delimited JSON: a header line binding the
// file to this format, then one line per entry, written least- to
// most-recently-used.

type cacheSnapHeader struct {
	Type    string `json:"type"` // "header"
	Format  string `json:"format"`
	Version int    `json:"v"`
}

type cacheSnapEntry struct {
	Type string          `json:"type"` // "entry"
	FP   string          `json:"fp"`
	Body json.RawMessage `json:"body"`
}

const cacheSnapFormat = "herald-result-cache"

// persistTo arms persistence: snapshots go to path every snapEvery
// insertions (and on snapshotNow), and an existing snapshot is loaded
// immediately. Loading failures other than a missing file are returned;
// a torn tail is dropped with a warning, keeping everything before it.
func (c *resultCache) persistTo(path string, snapEvery int, logw io.Writer) error {
	if snapEvery <= 0 {
		snapEvery = 32
	}
	if logw == nil {
		logw = io.Discard
	}
	c.mu.Lock()
	c.path = path
	c.snapEvery = snapEvery
	c.logw = logw
	c.mu.Unlock()
	return c.load()
}

// load replays an existing snapshot into the (empty) cache. Entries
// are inserted in file order — LRU first — so the reloaded cache has
// the same eviction order the old process had.
func (c *resultCache) load() error {
	f, err := os.Open(c.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: cache snapshot %s: %w", c.path, err)
	}
	defer f.Close()
	// Replay must not trigger a snapshot of the file being read;
	// holding the snapping latch suppresses the insertion trigger.
	c.mu.Lock()
	c.snapping = true
	c.mu.Unlock()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	line, n := 0, 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if line == 1 {
			var h cacheSnapHeader
			if err := json.Unmarshal(raw, &h); err != nil || h.Type != "header" || h.Format != cacheSnapFormat {
				return fmt.Errorf("serve: cache snapshot %s: malformed header", c.path)
			}
			continue
		}
		var e cacheSnapEntry
		if err := json.Unmarshal(raw, &e); err != nil || e.Type != "entry" || e.FP == "" || len(e.Body) == 0 {
			// A torn tail from a crash mid-write: keep what precedes it.
			fmt.Fprintf(c.logw, "serve: cache snapshot %s: dropping torn entry at line %d\n", c.path, line)
			break
		}
		c.put(e.FP, []byte(e.Body))
		n++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("serve: cache snapshot %s: %w", c.path, err)
	}
	c.mu.Lock()
	c.loaded = n
	// Replaying the snapshot must not count as fresh insertions, or a
	// reload would immediately re-trigger a snapshot of itself.
	c.inserts = 0
	c.misses = 0
	c.sinceSnap = 0
	c.snapping = false
	c.mu.Unlock()
	return nil
}

// snapshotNow writes the full cache to the snapshot file (temp file,
// fsync, rename), serializing concurrent writers. A cache without a
// configured path is a no-op.
func (c *resultCache) snapshotNow() {
	c.mu.Lock()
	path, logw := c.path, c.logw
	entries := make([]cacheSnapEntry, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() { // LRU → MRU
		e := el.Value.(*cacheEntry)
		entries = append(entries, cacheSnapEntry{Type: "entry", FP: e.fp, Body: json.RawMessage(e.body)})
	}
	c.mu.Unlock()
	if path == "" {
		return
	}
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	if err := writeCacheSnapshot(path, entries); err != nil {
		fmt.Fprintf(logw, "serve: cache snapshot %s: %v\n", path, err)
	}
}

func writeCacheSnapshot(path string, entries []cacheSnapEntry) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(cacheSnapHeader{Type: "header", Format: cacheSnapFormat, Version: 1}); err != nil {
		f.Close()
		return err
	}
	for i := range entries {
		if err := enc.Encode(&entries[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
