// Package serve exposes the availability simulator as a long-lived
// HTTP/JSON service: one shared shard pool executes every request,
// results are cached under the canonical run fingerprint, concurrent
// identical requests coalesce into a single run, and adaptive runs can
// stream their convergence progress to the client.
//
// Because simulation results are bit-identical for equal fingerprints
// regardless of worker or shard count (see shard.RunFingerprint), the
// cache is exact: a hit returns the very bytes a fresh run would have
// produced.
package serve

import (
	"container/list"
	"sync"
)

// CacheStats is a point-in-time snapshot of the result cache,
// served by GET /v1/cache.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Inserts   uint64 `json:"inserts"`
}

// resultCache is an LRU map from run fingerprint to the marshalled
// Summary bytes of the finished run. Entries are immutable once
// inserted; the stored slice is shared, never mutated.
type resultCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	byFP      map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
	inserts   uint64
}

type cacheEntry struct {
	fp   string
	body []byte
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:  capacity,
		ll:   list.New(),
		byFP: make(map[string]*list.Element),
	}
}

// get returns the cached summary bytes for fp, or nil on a miss.
func (c *resultCache) get(fp string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byFP[fp]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body
}

// put inserts (or refreshes) fp's summary bytes, evicting the least
// recently used entry when over capacity.
func (c *resultCache) put(fp string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byFP[fp]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.inserts++
	c.byFP[fp] = c.ll.PushFront(&cacheEntry{fp: fp, body: body})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byFP, last.Value.(*cacheEntry).fp)
		c.evictions++
	}
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Capacity:  c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Inserts:   c.inserts,
	}
}
