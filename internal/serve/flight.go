package serve

import (
	"sync"

	"herald/internal/shard"
)

// flight is one in-progress run shared by every request that asked for
// the same fingerprint (singleflight). The first request becomes the
// leader and executes the run; later identical requests join, block on
// done, and read the same bytes. Streaming requests subscribe to the
// run's progress feed; slow subscribers are coalesced, never blocked
// on, because the publisher runs under the shard dispatcher's lock.
type flight struct {
	fp   string
	done chan struct{}

	mu      sync.Mutex
	subs    map[chan shard.RunProgress]struct{}
	last    shard.RunProgress
	hasLast bool

	// waiters counts requests with a live interest in the outcome; when
	// the last one leaves before the run finished, the flight is
	// abandoned and its run cancelled (nobody is left to read it).
	waiters   int
	cancel    func()
	abandoned bool
	ended     bool

	// Set before done closes, immutable after.
	body []byte
	err  error
}

func newFlight(fp string) *flight {
	return &flight{
		fp:   fp,
		done: make(chan struct{}),
		subs: make(map[chan shard.RunProgress]struct{}),
	}
}

// publish fans a progress observation out to every subscriber. It is
// the Pool.Submit progress callback, so it must never block: each
// subscriber channel has capacity one and acts as a mailbox holding
// the freshest observation — when full, the stale value is dropped and
// replaced. Progress is monotone, so dropping older events preserves
// the stream's ordering guarantee.
func (f *flight) publish(pr shard.RunProgress) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.last = pr
	f.hasLast = true
	for ch := range f.subs {
		select {
		case ch <- pr:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- pr:
			default:
			}
		}
	}
}

// subscribe registers a progress mailbox, pre-filled with the latest
// observation so a late joiner sees where the run stands immediately.
func (f *flight) subscribe() chan shard.RunProgress {
	ch := make(chan shard.RunProgress, 1)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hasLast {
		ch <- f.last
	}
	f.subs[ch] = struct{}{}
	return ch
}

func (f *flight) unsubscribe(ch chan shard.RunProgress) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.subs, ch)
}

// join registers one waiter. Every request that will block on the
// flight's outcome must join before blocking and leave afterwards.
func (f *flight) join() {
	f.mu.Lock()
	f.waiters++
	f.mu.Unlock()
}

// leave drops one waiter. The last leave before the flight finished
// abandons it: the run's cancel hook fires, propagating the collective
// client disconnect down to the shard layer.
func (f *flight) leave() {
	f.mu.Lock()
	var cancel func()
	f.waiters--
	if f.waiters <= 0 && !f.ended && !f.abandoned {
		f.abandoned = true
		cancel = f.cancel
	}
	f.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// setCancel installs the run's cancel hook (the leader calls it once
// the run is submitted). If every waiter already left — the
// registration lost the race to the abandonment — it fires immediately.
func (f *flight) setCancel(c func()) {
	f.mu.Lock()
	fire := f.abandoned
	f.cancel = c
	f.mu.Unlock()
	if fire {
		c()
	}
}

// finish records the run's outcome and releases every waiter. The
// leader calls it exactly once, after the result has been inserted
// into the cache (so no request can observe neither flight nor cache).
func (f *flight) finish(body []byte, err error) {
	f.mu.Lock()
	f.ended = true
	f.mu.Unlock()
	f.body = body
	f.err = err
	close(f.done)
}
