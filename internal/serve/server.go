package serve

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"herald/internal/shard"
	"herald/internal/sim"
)

// Config parameterizes a Server.
type Config struct {
	// Pool is the shared shard worker pool every request executes on.
	// Required; the Server does not own it (Close it after Drain).
	Pool *shard.Pool
	// CacheEntries bounds the LRU result cache (default 256).
	CacheEntries int
	// MaxInFlight bounds concurrently executing runs (default 4).
	// Cache hits and singleflight joins bypass admission entirely.
	MaxInFlight int
	// MaxQueued bounds requests waiting for an execution slot; beyond
	// it new work is refused with 429 + Retry-After (default 16;
	// negative means refuse immediately once the slots are full).
	MaxQueued int
	// RetryAfter is the hint sent with 429 responses (default 5s).
	RetryAfter time.Duration
	// MaxSweepPoints bounds the points of one /v1/sweep request
	// (default 64).
	MaxSweepPoints int
	// MaxInFlightPerClient additionally bounds admission per client —
	// the bearer token when authenticated, the remote host otherwise —
	// counting both executing and queued work, so one client cannot
	// monopolize the global slots. 0 disables the per-client bound.
	MaxInFlightPerClient int
	// AuthToken, when non-empty, locks every /v1 endpoint except
	// health behind `Authorization: Bearer <token>` (constant-time
	// compare; uniform 401 body). Health endpoints stay open so
	// orchestrators can probe without credentials.
	AuthToken string
	// RunTimeout bounds each run's execution (submission to summary).
	// A run past its deadline is aborted through the shard cancel path
	// and reported as an error. 0 means no deadline.
	RunTimeout time.Duration
	// CacheFile, when non-empty, persists the result cache across
	// restarts: an existing snapshot is loaded at construction, and the
	// cache is re-snapshotted every CacheSnapshotEvery insertions and
	// on Drain (ndjson, temp-file + fsync + rename).
	CacheFile string
	// CacheSnapshotEvery is the insertion cadence of automatic cache
	// snapshots (default 32).
	CacheSnapshotEvery int
	// Log receives request-level diagnostics (default: discard).
	Log io.Writer
}

// Server is the availability-simulation HTTP service. It implements
// http.Handler; mount it directly or under a prefix.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	cache *resultCache

	mu        sync.Mutex
	flights   map[string]*flight
	queued    int
	perClient map[string]int

	slots     chan struct{}
	drainCh   chan struct{}
	drainOnce sync.Once
	wg        sync.WaitGroup
}

// NewServer builds a Server on the given pool, applying Config
// defaults for unset fields.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Pool == nil {
		return nil, fmt.Errorf("serve: Config.Pool is required")
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 256
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4
	}
	if cfg.MaxQueued < 0 {
		cfg.MaxQueued = 0
	} else if cfg.MaxQueued == 0 {
		cfg.MaxQueued = 16
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 5 * time.Second
	}
	if cfg.MaxSweepPoints <= 0 {
		cfg.MaxSweepPoints = 64
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		cache:     newResultCache(cfg.CacheEntries),
		flights:   make(map[string]*flight),
		perClient: make(map[string]int),
		slots:     make(chan struct{}, cfg.MaxInFlight),
		drainCh:   make(chan struct{}),
	}
	if cfg.CacheFile != "" {
		if err := s.cache.persistTo(cfg.CacheFile, cfg.CacheSnapshotEvery, cfg.Log); err != nil {
			return nil, err
		}
		if n := s.cache.stats().Loaded; n > 0 {
			fmt.Fprintf(cfg.Log, "serve: cache: loaded %d entries from %s\n", n, cfg.CacheFile)
		}
	}
	// The module's go directive predates method patterns in ServeMux,
	// so routes are plain paths with explicit method checks.
	s.mux.HandleFunc("/v1/run", s.handleRun)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/cache", s.handleCache)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s, nil
}

// openPath reports whether path is served without authentication:
// liveness and readiness probes must work for orchestrators that hold
// no credentials.
func openPath(path string) bool {
	switch path {
	case "/healthz", "/readyz", "/v1/healthz":
		return true
	}
	return false
}

// authorized implements the bearer check. Both sides are hashed before
// the comparison, so its duration depends on neither the length nor
// the content of what the client sent.
func (s *Server) authorized(r *http.Request) bool {
	token, ok := bearerToken(r)
	if !ok {
		return false
	}
	got := sha256.Sum256([]byte(token))
	want := sha256.Sum256([]byte(s.cfg.AuthToken))
	return subtle.ConstantTimeCompare(got[:], want[:]) == 1
}

func bearerToken(r *http.Request) (string, bool) {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) <= len(prefix) || !strings.EqualFold(h[:len(prefix)], prefix) {
		return "", false
	}
	return h[len(prefix):], true
}

// clientKey identifies the requester for per-client admission: the
// (hashed) bearer token when authentication is on, the remote host
// otherwise.
func (s *Server) clientKey(r *http.Request) string {
	if s.cfg.AuthToken != "" {
		if token, ok := bearerToken(r); ok {
			sum := sha256.Sum256([]byte(token))
			return "t:" + hex.EncodeToString(sum[:8])
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "h:" + host
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.cfg.AuthToken != "" && !openPath(r.URL.Path) && !s.authorized(r) {
		// One body for a missing, malformed or wrong credential: the
		// response must not reveal which.
		w.Header().Set("WWW-Authenticate", `Bearer realm="herald"`)
		writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "unauthorized"})
		return
	}
	s.mux.ServeHTTP(w, r)
}

// BeginDrain refuses new runs (503) while letting cache hits, flight
// joins and already-admitted work finish. Idempotent.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// Drain begins draining and blocks until every in-flight run has
// finished, then snapshots the result cache (when persistence is on)
// so a restart reloads everything the process computed. Call after
// shutting down the HTTP listener; the pool can be closed once Drain
// returns.
func (s *Server) Drain() {
	s.BeginDrain()
	s.wg.Wait()
	if s.cfg.CacheFile != "" {
		s.cache.snapshotNow()
	}
}

// CacheStats snapshots the result cache.
func (s *Server) CacheStats() CacheStats { return s.cache.stats() }

// RunOptions is the wire form of the result-affecting simulation
// options. Workers is deliberately absent: parallelism is the
// server's business and never part of a run's identity.
type RunOptions struct {
	Iterations        int     `json:"iterations"`
	MissionTime       float64 `json:"mission_time"`
	Seed              uint64  `json:"seed"`
	Confidence        float64 `json:"confidence,omitempty"`
	Kernel            string  `json:"kernel,omitempty"`
	// Bias selects failure-biased importance sampling: "" (off),
	// "auto", or a finite factor >= 1. Part of the run's identity —
	// biased and unbiased runs never share a cache entry.
	Bias              string  `json:"bias,omitempty"`
	TargetHalfWidth   float64 `json:"target_half_width,omitempty"`
	MaxIters          int     `json:"max_iters,omitempty"`
	HistogramBins     int     `json:"histogram_bins,omitempty"`
	HistogramMaxHours float64 `json:"histogram_max_hours,omitempty"`
}

// RunRequest is the body of POST /v1/run and one point of /v1/sweep.
type RunRequest struct {
	Params  shard.WireParams `json:"params"`
	Options RunOptions       `json:"options"`
	// Shards optionally fixes the run's shard partition; 0 lets the
	// pool choose. The result is bit-identical either way and the
	// cache key ignores it.
	Shards int `json:"shards,omitempty"`
}

// RunResponse is the body of a successful POST /v1/run.
type RunResponse struct {
	Fingerprint string `json:"fingerprint"`
	// Cached reports the summary came from the result cache. A
	// summary produced by joining a concurrent identical run reports
	// false: it was computed (once), not replayed.
	Cached  bool            `json:"cached"`
	Summary json.RawMessage `json:"summary"`
}

// SweepRequest is the body of POST /v1/sweep.
type SweepRequest struct {
	Points []RunRequest `json:"points"`
}

// SweepResponse is the body of a successful POST /v1/sweep; Results
// align with the request's Points.
type SweepResponse struct {
	Results []RunResponse `json:"results"`
}

// streamEvent is one line of a streamed run (ndjson) or one SSE data
// payload. Progress events carry iterations/cap/half_width/converged;
// the terminal event is type "result" (or "error").
type streamEvent struct {
	Type        string          `json:"type"`
	Iterations  int             `json:"iterations,omitempty"`
	Cap         int             `json:"cap,omitempty"`
	HalfWidth   *float64        `json:"half_width,omitempty"`
	Converged   bool            `json:"converged,omitempty"`
	Final       bool            `json:"final,omitempty"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Cached      bool            `json:"cached,omitempty"`
	Summary     json.RawMessage `json:"summary,omitempty"`
	Error       string          `json:"error,omitempty"`
}

type httpError struct {
	code       int
	msg        string
	retryAfter time.Duration
}

func (s *Server) writeError(w http.ResponseWriter, he *httpError) {
	if he.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(he.retryAfter.Seconds())))
	}
	writeJSON(w, he.code, map[string]string{"error": he.msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// compile validates a request and lowers it to a pool RunSpec plus its
// canonical fingerprint. The kernel is resolved to its concrete form
// first, so "auto" and the kernel it resolves to share one cache key
// (they are the same run).
func compile(req *RunRequest) (shard.RunSpec, string, error) {
	p, err := req.Params.Decode()
	if err != nil {
		return shard.RunSpec{}, "", err
	}
	if err := p.Validate(); err != nil {
		return shard.RunSpec{}, "", err
	}
	ks := req.Options.Kernel
	if ks == "" {
		ks = "auto"
	}
	kernel, err := sim.ParseKernel(ks)
	if err != nil {
		return shard.RunSpec{}, "", err
	}
	kernel, err = sim.ResolveKernel(p, kernel)
	if err != nil {
		return shard.RunSpec{}, "", err
	}
	bias, err := sim.ParseBias(req.Options.Bias)
	if err != nil {
		return shard.RunSpec{}, "", err
	}
	if bias != 0 && kernel != sim.KernelMemoryless {
		// Reject at compile time so the caller gets a 400, not a
		// mid-run failure from the pool.
		return shard.RunSpec{}, "", fmt.Errorf("serve: bias %q requires the memoryless kernel (configuration resolved %v)", req.Options.Bias, kernel)
	}
	o := sim.Options{
		Iterations:        req.Options.Iterations,
		MissionTime:       req.Options.MissionTime,
		Seed:              req.Options.Seed,
		Confidence:        req.Options.Confidence,
		Kernel:            kernel,
		Bias:              bias,
		TargetHalfWidth:   req.Options.TargetHalfWidth,
		MaxIters:          req.Options.MaxIters,
		HistogramBins:     req.Options.HistogramBins,
		HistogramMaxHours: req.Options.HistogramMaxHours,
	}
	if err := o.Validate(); err != nil {
		return shard.RunSpec{}, "", err
	}
	if req.Shards < 0 {
		return shard.RunSpec{}, "", fmt.Errorf("serve: shards must be non-negative")
	}
	wire, err := shard.EncodeParams(p)
	if err != nil {
		return shard.RunSpec{}, "", err
	}
	fp := shard.RunFingerprint(wire, o)
	return shard.RunSpec{Params: p, Options: o, Shards: req.Shards}, fp, nil
}

// acquire claims an execution slot, queueing up to MaxQueued waiters.
// Beyond the queue bound it refuses deterministically with 429. client,
// when per-client admission is configured, additionally charges the
// request against that client's own bound — covering its queued wait
// too, so a client cannot fill the queue either.
func (s *Server) acquire(ctx ctxDone, client string) (func(), *httpError) {
	select {
	case <-s.drainCh:
		return nil, &httpError{code: http.StatusServiceUnavailable, msg: "server is draining"}
	default:
	}
	clientRelease := func() {}
	if s.cfg.MaxInFlightPerClient > 0 && client != "" {
		s.mu.Lock()
		if s.perClient[client] >= s.cfg.MaxInFlightPerClient {
			s.mu.Unlock()
			return nil, &httpError{
				code:       http.StatusTooManyRequests,
				msg:        fmt.Sprintf("client at capacity: %d in flight", s.cfg.MaxInFlightPerClient),
				retryAfter: s.cfg.RetryAfter,
			}
		}
		s.perClient[client]++
		s.mu.Unlock()
		clientRelease = func() {
			s.mu.Lock()
			if s.perClient[client]--; s.perClient[client] <= 0 {
				delete(s.perClient, client)
			}
			s.mu.Unlock()
		}
	}
	release, herr := s.acquireGlobal(ctx)
	if herr != nil {
		clientRelease()
		return nil, herr
	}
	return func() { release(); clientRelease() }, nil
}

// acquireGlobal is the client-agnostic slot claim.
func (s *Server) acquireGlobal(ctx ctxDone) (func(), *httpError) {
	release := func() { <-s.slots }
	select {
	case s.slots <- struct{}{}:
		return release, nil
	default:
	}
	s.mu.Lock()
	if s.queued >= s.cfg.MaxQueued {
		s.mu.Unlock()
		return nil, &httpError{
			code:       http.StatusTooManyRequests,
			msg:        fmt.Sprintf("at capacity: %d in flight, %d queued", s.cfg.MaxInFlight, s.cfg.MaxQueued),
			retryAfter: s.cfg.RetryAfter,
		}
	}
	s.queued++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
	}()
	select {
	case s.slots <- struct{}{}:
		return release, nil
	case <-ctx.Done():
		return nil, &httpError{code: http.StatusServiceUnavailable, msg: "client went away"}
	case <-s.drainCh:
		return nil, &httpError{code: http.StatusServiceUnavailable, msg: "server is draining"}
	}
}

type ctxDone interface{ Done() <-chan struct{} }

// joinOrLead returns fp's flight, creating and executing it when
// absent. The caller hands over an admission-slot release; if an
// existing flight is joined instead, the slot is released immediately.
func (s *Server) joinOrLead(fp string, spec *shard.RunSpec, release func()) *flight {
	s.mu.Lock()
	if fl, ok := s.flights[fp]; ok {
		s.mu.Unlock()
		release()
		return fl
	}
	fl := newFlight(fp)
	s.flights[fp] = fl
	s.mu.Unlock()
	s.wg.Add(1)
	go s.execute(fl, spec, release)
	return fl
}

// execute is the flight leader: run once on the pool, insert the
// result into the cache, then retire the flight and wake every waiter.
// Cache insertion precedes flight removal so a request observing
// neither can only re-derive the identical bytes, never lose them.
//
// The run executes under its own context — bounded by RunTimeout and
// cancelled when the flight's last waiter leaves — so an abandoned or
// overdue run tears down its in-flight shard jobs instead of leaking
// them.
func (s *Server) execute(fl *flight, spec *shard.RunSpec, release func()) {
	defer s.wg.Done()
	defer release()
	ctx := context.Background()
	var cancel context.CancelFunc
	if s.cfg.RunTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RunTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	fl.setCancel(cancel)
	body, err := s.runOnce(ctx, spec, fl.publish)
	if err == nil {
		s.cache.put(fl.fp, body)
	} else {
		fmt.Fprintf(s.cfg.Log, "serve: run %s failed: %v\n", fl.fp, err)
	}
	s.mu.Lock()
	delete(s.flights, fl.fp)
	s.mu.Unlock()
	fl.finish(body, err)
}

func (s *Server) runOnce(ctx context.Context, spec *shard.RunSpec, progress func(shard.RunProgress)) ([]byte, error) {
	tk, err := s.cfg.Pool.SubmitCtx(ctx, *spec, progress)
	if err != nil {
		return nil, err
	}
	res, err := tk.Wait()
	if err != nil {
		return nil, err
	}
	return json.Marshal(res.Summary)
}

// flightOrCached resolves fp to either cached bytes or a flight to
// wait on, admitting a new run if neither exists yet. A returned
// flight has NOT been joined; the caller must join before blocking on
// it and leave afterwards.
func (s *Server) flightOrCached(ctx ctxDone, fp, client string, spec *shard.RunSpec) (*flight, []byte, *httpError) {
	if b := s.cache.get(fp); b != nil {
		return nil, b, nil
	}
	s.mu.Lock()
	fl, ok := s.flights[fp]
	s.mu.Unlock()
	if ok {
		return fl, nil, nil
	}
	release, herr := s.acquire(ctx, client)
	if herr != nil {
		return nil, nil, herr
	}
	return s.joinOrLead(fp, spec, release), nil, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, &httpError{code: http.StatusMethodNotAllowed, msg: "POST only"})
		return
	}
	var req RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, &httpError{code: http.StatusBadRequest, msg: err.Error()})
		return
	}
	spec, fp, err := compile(&req)
	if err != nil {
		s.writeError(w, &httpError{code: http.StatusBadRequest, msg: err.Error()})
		return
	}
	if r.URL.Query().Get("stream") == "1" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamRun(w, r, fp, &spec)
		return
	}
	fl, body, herr := s.flightOrCached(r.Context(), fp, s.clientKey(r), &spec)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	if fl != nil {
		fl.join()
		defer fl.leave()
		select {
		case <-fl.done:
		case <-r.Context().Done():
			return
		}
		if fl.err != nil {
			s.writeError(w, &httpError{code: http.StatusInternalServerError, msg: fl.err.Error()})
			return
		}
		body = fl.body
	}
	writeJSON(w, http.StatusOK, RunResponse{Fingerprint: fp, Cached: fl == nil, Summary: body})
}

// streamRun serves one run as a live event stream: ndjson by default,
// SSE when the client asks for text/event-stream. Progress events are
// coalesced (freshest wins, monotone); the terminal event carries the
// same summary bytes a non-streaming request would have received.
func (s *Server) streamRun(w http.ResponseWriter, r *http.Request, fp string, spec *shard.RunSpec) {
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	flusher, _ := w.(http.Flusher)
	emit := func(ev streamEvent) {
		b, err := json.Marshal(ev)
		if err != nil {
			return
		}
		if sse {
			fmt.Fprintf(w, "data: %s\n\n", b)
		} else {
			fmt.Fprintf(w, "%s\n", b)
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	start := func() {
		if sse {
			w.Header().Set("Content-Type", "text/event-stream")
			w.Header().Set("Cache-Control", "no-cache")
		} else {
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		w.WriteHeader(http.StatusOK)
	}

	fl, body, herr := s.flightOrCached(r.Context(), fp, s.clientKey(r), spec)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	if fl == nil {
		start()
		emit(streamEvent{Type: "result", Fingerprint: fp, Cached: true, Summary: body})
		return
	}
	fl.join()
	defer fl.leave()
	sub := fl.subscribe()
	defer fl.unsubscribe(sub)
	start()
	for {
		select {
		case pr := <-sub:
			emit(progressEvent(pr))
		case <-fl.done:
			select {
			case pr := <-sub:
				emit(progressEvent(pr))
			default:
			}
			if fl.err != nil {
				emit(streamEvent{Type: "error", Fingerprint: fp, Error: fl.err.Error()})
			} else {
				emit(streamEvent{Type: "result", Fingerprint: fp, Summary: fl.body})
			}
			return
		case <-r.Context().Done():
			return
		}
	}
}

func progressEvent(pr shard.RunProgress) streamEvent {
	ev := streamEvent{
		Type:       "progress",
		Iterations: pr.Iterations,
		Cap:        pr.Cap,
		Converged:  pr.Converged,
		Final:      pr.Final,
	}
	if !math.IsInf(pr.HalfWidth, 0) && !math.IsNaN(pr.HalfWidth) {
		hw := pr.HalfWidth
		ev.HalfWidth = &hw
	}
	return ev
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, &httpError{code: http.StatusMethodNotAllowed, msg: "POST only"})
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, &httpError{code: http.StatusBadRequest, msg: err.Error()})
		return
	}
	if len(req.Points) == 0 {
		s.writeError(w, &httpError{code: http.StatusBadRequest, msg: "sweep has no points"})
		return
	}
	if len(req.Points) > s.cfg.MaxSweepPoints {
		s.writeError(w, &httpError{
			code: http.StatusBadRequest,
			msg:  fmt.Sprintf("sweep has %d points; limit is %d", len(req.Points), s.cfg.MaxSweepPoints),
		})
		return
	}
	specs := make([]shard.RunSpec, len(req.Points))
	fps := make([]string, len(req.Points))
	for i := range req.Points {
		spec, fp, err := compile(&req.Points[i])
		if err != nil {
			s.writeError(w, &httpError{
				code: http.StatusBadRequest,
				msg:  fmt.Sprintf("point %d: %v", i, err),
			})
			return
		}
		specs[i] = spec
		fps[i] = fp
	}
	// A sweep occupies one admission slot regardless of its point
	// count; the pool pipelines the points internally.
	release, herr := s.acquire(r.Context(), s.clientKey(r))
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	defer release()
	results := make([]RunResponse, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, cached, err := s.resolvePoint(r.Context(), fps[i], &specs[i])
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = RunResponse{Fingerprint: fps[i], Cached: cached, Summary: body}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			s.writeError(w, &httpError{
				code: http.StatusInternalServerError,
				msg:  fmt.Sprintf("point %d: %v", i, err),
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, SweepResponse{Results: results})
}

// resolvePoint is the sweep-side resolve: identical cache and
// singleflight behaviour, but new flights ride on the sweep's already
// held admission slot instead of acquiring their own.
func (s *Server) resolvePoint(ctx ctxDone, fp string, spec *shard.RunSpec) ([]byte, bool, error) {
	if b := s.cache.get(fp); b != nil {
		return b, true, nil
	}
	fl := s.joinOrLead(fp, spec, func() {})
	fl.join()
	defer fl.leave()
	select {
	case <-fl.done:
	case <-ctx.Done():
		return nil, false, fmt.Errorf("serve: client went away")
	}
	return fl.body, false, fl.err
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, &httpError{code: http.StatusMethodNotAllowed, msg: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, s.cache.stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, &httpError{code: http.StatusMethodNotAllowed, msg: "GET only"})
		return
	}
	if err := s.cfg.Pool.Err(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "dead", "error": err.Error(),
		})
		return
	}
	status := "ok"
	select {
	case <-s.drainCh:
		status = "draining"
	default:
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

// readyzResponse is the body of GET /readyz: whether the service can
// take work right now, and why not if it cannot.
type readyzResponse struct {
	Status        string `json:"status"` // "ready" | "unready"
	LiveSlots     int    `json:"live_slots"`
	SourceOpen    bool   `json:"source_open"`
	FallbackArmed bool   `json:"fallback_armed"`
	ActiveRuns    int    `json:"active_runs"`
	Draining      bool   `json:"draining"`
	Error         string `json:"error,omitempty"`
}

// handleReadyz is the readiness probe: 200 while the pool can advance
// a run (live workers, or a still-open elastic source that parks runs
// until a joiner arrives) and the server is not draining; 503
// otherwise, with the pool population in the body either way.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, &httpError{code: http.StatusMethodNotAllowed, msg: "GET only"})
		return
	}
	h := s.cfg.Pool.Health()
	resp := readyzResponse{
		LiveSlots:     h.LiveSlots,
		SourceOpen:    h.SourceOpen,
		FallbackArmed: h.FallbackArmed,
		ActiveRuns:    h.ActiveRuns,
	}
	select {
	case <-s.drainCh:
		resp.Draining = true
	default:
	}
	if h.Err != nil {
		resp.Error = h.Err.Error()
	}
	if h.Ready() && !resp.Draining {
		resp.Status = "ready"
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp.Status = "unready"
	writeJSON(w, http.StatusServiceUnavailable, resp)
}
