package markov

import (
	"math"
	"testing"
)

func TestEmbeddedJumpProbabilities(t *testing.T) {
	c := NewBuilder().
		At("A", "B", 3).
		At("A", "C", 1).
		At("B", "A", 2).
		At("C", "A", 5).
		MustBuild()
	d, err := c.Embedded()
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Prob("A", "B"); math.Abs(got-0.75) > 1e-15 {
		t.Fatalf("P(A->B) = %v, want 0.75", got)
	}
	if got := d.Prob("A", "C"); math.Abs(got-0.25) > 1e-15 {
		t.Fatalf("P(A->C) = %v, want 0.25", got)
	}
	if got := d.Prob("B", "A"); got != 1 {
		t.Fatalf("P(B->A) = %v, want 1", got)
	}
}

func TestEmbeddedStationaryIdentity(t *testing.T) {
	// pi_ctmc(i) proportional to pi_embedded(i) / q_i.
	c := NewBuilder().
		At("A", "B", 0.4).
		At("B", "C", 1.2).
		At("C", "A", 0.7).
		At("B", "A", 0.3).
		At("A", "C", 0.1).
		MustBuild()
	d, err := c.Embedded()
	if err != nil {
		t.Fatal(err)
	}
	ctmcPi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	embPi, err := d.StationaryDirect()
	if err != nil {
		t.Fatal(err)
	}
	derived := make([]float64, c.N())
	total := 0.0
	for i := range derived {
		derived[i] = embPi[i] / c.ExitRate(i)
		total += derived[i]
	}
	for i := range derived {
		derived[i] /= total
		if math.Abs(derived[i]-ctmcPi[i]) > 1e-10 {
			t.Fatalf("state %d: derived %v vs ctmc %v", i, derived[i], ctmcPi[i])
		}
	}
}

func TestEmbeddedAbsorbingState(t *testing.T) {
	// A state with no exits becomes absorbing in the jump chain
	// (implicit self-loop of probability 1).
	c := NewBuilder().At("A", "B", 1).MustBuild()
	d, err := c.Embedded()
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Prob("B", "B"); got != 1 {
		t.Fatalf("absorbing self-loop = %v", got)
	}
}
