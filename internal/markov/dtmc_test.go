package markov

import (
	"math"
	"testing"
	"testing/quick"

	"herald/internal/xrand"
)

func TestDTMCBuilderImplicitSelfLoop(t *testing.T) {
	d := NewDTMCBuilder().
		Prob("A", "B", 0.3).
		Prob("B", "A", 0.1).
		MustBuild()
	if got := d.Prob("A", "A"); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("implicit self-loop = %v", got)
	}
	if got := d.Prob("B", "B"); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("implicit self-loop = %v", got)
	}
}

func TestDTMCBuilderExplicitSelfLoopMustClose(t *testing.T) {
	// Explicit self-loop that does not close the row is an error.
	_, err := NewDTMCBuilder().
		Prob("A", "A", 0.5).
		Prob("A", "B", 0.3).
		Prob("B", "A", 1).
		Build()
	if err == nil {
		t.Fatal("unclosed explicit row accepted")
	}
	// And one that does close it is fine.
	d := NewDTMCBuilder().
		Prob("A", "A", 0.7).
		Prob("A", "B", 0.3).
		Prob("B", "A", 1).
		MustBuild()
	if d.Prob("A", "A") != 0.7 {
		t.Fatal("explicit self-loop lost")
	}
}

func TestDTMCBuilderRejectsOverflowRow(t *testing.T) {
	_, err := NewDTMCBuilder().Prob("A", "B", 0.8).Prob("A", "C", 0.5).Build()
	if err == nil {
		t.Fatal("row sum > 1 accepted")
	}
}

func TestDTMCBuilderRejectsBadProb(t *testing.T) {
	if _, err := NewDTMCBuilder().Prob("A", "B", -0.1).Build(); err == nil {
		t.Fatal("negative probability accepted")
	}
	if _, err := NewDTMCBuilder().Prob("A", "B", 1.5).Build(); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if _, err := NewDTMCBuilder().Build(); err == nil {
		t.Fatal("empty DTMC accepted")
	}
}

func TestDTMCStationaryTwoState(t *testing.T) {
	// P(A->B)=0.2, P(B->A)=0.6: stationary (0.75, 0.25).
	d := NewDTMCBuilder().Prob("A", "B", 0.2).Prob("B", "A", 0.6).MustBuild()
	pi, err := d.Stationary(1e-14, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	iA, _ := d.StateIndex("A")
	if math.Abs(pi[iA]-0.75) > 1e-9 {
		t.Fatalf("pi(A) = %v", pi[iA])
	}
	direct, err := d.StationaryDirect()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi {
		if math.Abs(pi[i]-direct[i]) > 1e-9 {
			t.Fatalf("power %v vs direct %v", pi, direct)
		}
	}
}

func TestDTMCStepConservesMass(t *testing.T) {
	d := NewDTMCBuilder().
		Prob("A", "B", 0.5).Prob("B", "C", 0.25).Prob("C", "A", 1).
		MustBuild()
	pi := []float64{1, 0, 0}
	for k := 0; k < 50; k++ {
		pi = d.Step(pi)
		s := 0.0
		for _, v := range pi {
			if v < -1e-15 {
				t.Fatalf("negative probability at step %d", k)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("mass %v at step %d", s, k)
		}
	}
}

func TestDTMCStepN(t *testing.T) {
	d := NewDTMCBuilder().Prob("A", "B", 1).Prob("B", "A", 1).MustBuild()
	pi := d.StepN([]float64{1, 0}, 2)
	if math.Abs(pi[0]-1) > 1e-15 {
		t.Fatalf("period-2 chain after 2 steps = %v", pi)
	}
}

func TestDiscretizeMatchesCTMCSteadyState(t *testing.T) {
	// The paper's figures: hourly DTMC with self-loops R=1-sum(exits).
	// For small rate*dt the stationary distributions must agree.
	c := NewBuilder().
		At("OP", "EXP", 4e-4).
		At("EXP", "DL", 3e-4).
		At("EXP", "OP", 0.1).
		At("DL", "OP", 0.03).
		MustBuild()
	d, err := c.Discretize(1) // one-hour steps
	if err != nil {
		t.Fatal(err)
	}
	ctmcPi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	dtmcPi, err := d.StationaryDirect()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ctmcPi {
		// First-order discretization: stationary vectors agree exactly
		// (P - I = Q dt shares Q's null space).
		if math.Abs(ctmcPi[i]-dtmcPi[i]) > 1e-10 {
			t.Fatalf("state %d: CTMC %v vs DTMC %v", i, ctmcPi[i], dtmcPi[i])
		}
	}
}

func TestDiscretizeRejectsCoarseStep(t *testing.T) {
	c := NewBuilder().At("A", "B", 0.8).At("B", "A", 0.8).MustBuild()
	if _, err := c.Discretize(2); err == nil {
		t.Fatal("coarse discretization accepted")
	}
	if _, err := c.Discretize(0); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestDiscretizePreservesProbabilities(t *testing.T) {
	c := NewBuilder().At("UP", "DOWN", 0.001).At("DOWN", "UP", 0.1).MustBuild()
	d, err := c.Discretize(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Prob("UP", "DOWN"); math.Abs(got-0.001) > 1e-15 {
		t.Fatalf("P(UP->DOWN) = %v", got)
	}
	if got := d.Prob("UP", "UP"); math.Abs(got-0.999) > 1e-15 {
		t.Fatalf("R(UP) = %v", got)
	}
}

func TestDTMCAccessors(t *testing.T) {
	d := NewDTMCBuilder().Prob("B", "A", 0.5).Prob("A", "B", 0.5).MustBuild()
	if d.N() != 2 {
		t.Fatalf("N = %d", d.N())
	}
	if d.StateName(0) != "B" {
		t.Fatalf("declaration order lost: %v", d.StateName(0))
	}
	names := d.SortedNames()
	if names[0] != "A" || names[1] != "B" {
		t.Fatalf("sorted = %v", names)
	}
	if _, ok := d.StateIndex("Z"); ok {
		t.Fatal("phantom state")
	}
	if d.Prob("Z", "A") != 0 {
		t.Fatal("phantom probability")
	}
	if _, err := d.StationaryProbability("Z"); err == nil {
		t.Fatal("unknown state accepted")
	}
	p, err := d.StationaryProbability("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-12 {
		t.Fatalf("total = %v", p)
	}
}

func TestQuickDiscretizedStationaryMatches(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + int(seed%5)
		b := NewBuilder()
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		for i := 0; i < n; i++ {
			b.At(names[i], names[(i+1)%n], 0.001+0.3*r.Float64())
		}
		c := b.MustBuild()
		d, err := c.Discretize(1)
		if err != nil {
			return false
		}
		cp, err1 := c.SteadyState()
		dp, err2 := d.StationaryDirect()
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range cp {
			if math.Abs(cp[i]-dp[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
