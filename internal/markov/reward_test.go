package markov

import (
	"math"
	"testing"
)

func TestAccumulatedRewardTwoStateClosedForm(t *testing.T) {
	// For the machine-repair chain starting UP, the expected uptime in
	// [0,t] integrates the closed-form point availability:
	//   int_0^t A(s) ds = a*t + (b/r)(1 - e^{-r t})
	// with a = mu/(l+mu), b = l/(l+mu), r = l+mu.
	l, mu := 0.05, 0.4
	c := twoState(l, mu)
	iUp, _ := c.StateIndex("UP")
	pi0 := make([]float64, 2)
	pi0[iUp] = 1
	reward := make([]float64, 2)
	reward[iUp] = 1
	a := mu / (l + mu)
	b := l / (l + mu)
	r := l + mu
	for _, horizon := range []float64{0.1, 1, 10, 100, 1000} {
		got, err := c.AccumulatedReward(pi0, horizon, reward)
		if err != nil {
			t.Fatal(err)
		}
		want := a*horizon + b/r*(1-math.Exp(-r*horizon))
		if math.Abs(got-want) > 1e-8*(1+want) {
			t.Fatalf("horizon %v: uptime %v, want %v", horizon, got, want)
		}
	}
}

func TestAccumulatedRewardZeroHorizon(t *testing.T) {
	c := twoState(0.1, 0.9)
	got, err := c.AccumulatedReward([]float64{1, 0}, 0, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("zero horizon gave %v", got)
	}
}

func TestAccumulatedRewardNoTransitions(t *testing.T) {
	b := NewBuilder()
	b.State("ONLY")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.AccumulatedReward([]float64{1}, 7, []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-21) > 1e-12 {
		t.Fatalf("frozen chain reward = %v, want 21", got)
	}
}

func TestAccumulatedRewardErrors(t *testing.T) {
	c := twoState(1, 1)
	if _, err := c.AccumulatedReward([]float64{1}, 1, []float64{1, 0}); err == nil {
		t.Fatal("short pi0 accepted")
	}
	if _, err := c.AccumulatedReward([]float64{1, 0}, -1, []float64{1, 0}); err == nil {
		t.Fatal("negative horizon accepted")
	}
	if _, err := c.AccumulatedReward([]float64{1, 0}, math.Inf(1), []float64{1, 0}); err == nil {
		t.Fatal("infinite horizon accepted")
	}
}

func TestIntervalProbabilityConvergesToSteadyState(t *testing.T) {
	l, mu := 0.02, 0.5
	c := twoState(l, mu)
	av, err := c.IntervalProbability("UP", []string{"UP"}, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	want := mu / (l + mu)
	if math.Abs(av-want) > 1e-4 {
		t.Fatalf("long-run interval availability %v, want %v", av, want)
	}
}

func TestIntervalProbabilityShortMission(t *testing.T) {
	// A young system that starts UP has interval availability above
	// the steady-state value.
	l, mu := 0.01, 0.1
	c := twoState(l, mu)
	short, err := c.IntervalProbability("UP", []string{"UP"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ss := mu / (l + mu)
	if short <= ss {
		t.Fatalf("short-mission availability %v not above steady state %v", short, ss)
	}
	if short > 1 {
		t.Fatalf("availability %v > 1", short)
	}
}

func TestIntervalProbabilityErrors(t *testing.T) {
	c := twoState(1, 1)
	if _, err := c.IntervalProbability("NOPE", []string{"UP"}, 1); err == nil {
		t.Fatal("unknown initial accepted")
	}
	if _, err := c.IntervalProbability("UP", []string{"NOPE"}, 1); err == nil {
		t.Fatal("unknown state accepted")
	}
	if _, err := c.IntervalProbability("UP", []string{"UP"}, 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestAccumulatedRewardLargeUniformizationConstant(t *testing.T) {
	// Rates spanning 1e-6..1 with t large: exercises the log-space
	// Poisson tail handling (Lambda*t ~ 1e5).
	c := NewBuilder().
		At("OP", "EXP", 4e-6).
		At("EXP", "OP", 0.1).
		At("EXP", "DL", 3e-6).
		At("DL", "OP", 0.03).
		MustBuild()
	iOP, _ := c.StateIndex("OP")
	pi0 := make([]float64, 3)
	pi0[iOP] = 1
	rew := make([]float64, 3)
	iDL, _ := c.StateIndex("DL")
	rew[iDL] = 1
	horizon := 1e5
	down, err := c.AccumulatedReward(pi0, horizon, rew)
	if err != nil {
		t.Fatal(err)
	}
	// Steady-state DL mass is ~4e-9; expected downtime over 1e5 h
	// must be positive and below the steady-state bound extended by
	// transient slack.
	if down <= 0 || down > 1 {
		t.Fatalf("expected downtime %v h over %v h", down, horizon)
	}
}
