package markov

import (
	"fmt"
	"math"
)

// AccumulatedReward returns the expected reward integrated over [0, t]
// starting from distribution pi0: E[ int_0^t r(X(s)) ds ]. With r = 1
// on down states it yields the expected downtime of a finite mission,
// a metric the steady-state models cannot provide for young systems
// that have not reached equilibrium.
//
// Computation uses the uniformization identity
//
//	int_0^t pois_k(Lambda, s) ds = P(N_{Lambda t} > k) / Lambda
//
// so the integral becomes (1/Lambda) * sum_k P(N > k) * (pi0 P^k) . r
// with the Poisson tail accumulated in linear space (underflow of the
// early terms is benign: their tail is exactly 1).
func (c *CTMC) AccumulatedReward(pi0 []float64, t float64, reward []float64) (float64, error) {
	n := c.N()
	if len(pi0) != n || len(reward) != n {
		return 0, fmt.Errorf("markov: AccumulatedReward needs vectors of length %d (got %d, %d)", n, len(pi0), len(reward))
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return 0, fmt.Errorf("markov: invalid horizon %v", t)
	}
	if t == 0 {
		return 0, nil
	}
	lambda := 1.05 * c.MaxExitRate()
	if lambda == 0 {
		// No transitions: the initial distribution persists.
		s := 0.0
		for i := range pi0 {
			s += pi0[i] * reward[i]
		}
		return s * t, nil
	}
	p := c.UniformizedMatrix(lambda)
	lt := lambda * t
	kMax := int(lt + 12*math.Sqrt(lt) + 30)

	cur := append([]float64(nil), pi0...)
	logW := -lt // log Poisson pmf at k=0
	cum := 0.0  // Poisson CDF at k
	total := 0.0
	for k := 0; k <= kMax; k++ {
		cum += math.Exp(logW)
		tail := 1 - cum
		if tail < 0 {
			tail = 0
		}
		dot := 0.0
		for i := range cur {
			dot += cur[i] * reward[i]
		}
		total += tail * dot
		if tail < 1e-14 && float64(k) > lt {
			break
		}
		cur = p.VecMul(cur)
		logW += math.Log(lt) - math.Log(float64(k+1))
	}
	return total / lambda, nil
}

// IntervalProbability returns the expected fraction of [0, t] spent in
// the named states, starting from the named initial state: the
// interval availability when the states are the up states.
func (c *CTMC) IntervalProbability(initial string, states []string, t float64) (float64, error) {
	if t <= 0 {
		return 0, fmt.Errorf("markov: horizon %v must be positive", t)
	}
	i0, ok := c.index[initial]
	if !ok {
		return 0, fmt.Errorf("markov: unknown initial state %q", initial)
	}
	pi0 := make([]float64, c.N())
	pi0[i0] = 1
	reward := make([]float64, c.N())
	for _, name := range states {
		i, ok := c.index[name]
		if !ok {
			return 0, fmt.Errorf("markov: unknown state %q", name)
		}
		reward[i] = 1
	}
	acc, err := c.AccumulatedReward(pi0, t, reward)
	if err != nil {
		return 0, err
	}
	return acc / t, nil
}
