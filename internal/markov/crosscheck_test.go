package markov

import (
	"math"
	"testing"
)

// TestIntervalMatchesIntegratedTransient cross-checks the two
// independent transient code paths: IntervalProbability (accumulated
// reward via integrated Poisson tails) must equal the Simpson-rule
// integral of the pointwise Transient solution.
func TestIntervalMatchesIntegratedTransient(t *testing.T) {
	c := NewBuilder().
		At("OP", "EXP", 4e-3).
		At("EXP", "OP", 0.1).
		At("EXP", "DL", 3e-3).
		At("DL", "OP", 0.03).
		MustBuild()
	iOP, _ := c.StateIndex("OP")
	pi0 := make([]float64, c.N())
	pi0[iOP] = 1
	up := []string{"OP", "EXP"}

	horizon := 500.0
	direct, err := c.IntervalProbability("OP", up, horizon)
	if err != nil {
		t.Fatal(err)
	}

	// Simpson integration of the point availability.
	const steps = 200 // even
	h := horizon / steps
	pointAt := func(tm float64) float64 {
		pi, err := c.Transient(pi0, tm)
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, name := range up {
			i, _ := c.StateIndex(name)
			s += pi[i]
		}
		return s
	}
	sum := pointAt(0) + pointAt(horizon)
	for k := 1; k < steps; k++ {
		w := 2.0
		if k%2 == 1 {
			w = 4
		}
		sum += w * pointAt(float64(k)*h)
	}
	integral := sum * h / 3
	simpson := integral / horizon

	if math.Abs(direct-simpson) > 1e-7 {
		t.Fatalf("interval %v vs Simpson %v (diff %g)", direct, simpson, direct-simpson)
	}
}

// TestTransientAgreesWithMatrixExponentialSeries checks Transient
// against a direct truncated Taylor series of expm(Q t) for a small t
// where the series converges quickly.
func TestTransientAgreesWithMatrixExponentialSeries(t *testing.T) {
	c := NewBuilder().
		At("A", "B", 0.3).
		At("B", "C", 0.2).
		At("C", "A", 0.5).
		At("B", "A", 0.1).
		MustBuild()
	q := c.Generator()
	n := c.N()
	tm := 0.7

	// pi0 expm(Q t) by Taylor series: sum_k (pi0 Q^k) t^k / k!.
	pi0 := []float64{1, 0, 0}
	term := append([]float64(nil), pi0...)
	want := append([]float64(nil), pi0...)
	for k := 1; k < 60; k++ {
		term = q.VecMul(term)
		for i := range term {
			term[i] *= tm / float64(k)
		}
		for i := range want {
			want[i] += term[i]
		}
	}

	got, err := c.Transient(pi0, tm)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("state %d: uniformization %v vs series %v", i, got[i], want[i])
		}
	}
}
