package markov

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"herald/internal/linalg"
)

// DTMC is a discrete-time Markov chain over named states. The paper's
// figures are literally drawn in this form — per-step transition
// probabilities with explicit self-loops R1..R11 (one step = one
// hour) — so the package supports both formalisms and the tests prove
// they agree for the rate magnitudes involved.
type DTMC struct {
	names []string
	index map[string]int
	p     *linalg.CSR
}

// DTMCBuilder assembles a DTMC from named states and transition
// probabilities. Self-loop probabilities may be given explicitly or
// left implicit (filled so each row sums to one).
type DTMCBuilder struct {
	names []string
	index map[string]int
	items []linalg.Coord
	self  map[int]bool
	errs  []string
}

// NewDTMCBuilder returns an empty builder.
func NewDTMCBuilder() *DTMCBuilder {
	return &DTMCBuilder{index: make(map[string]int), self: make(map[int]bool)}
}

// State declares a state (idempotent) and returns its index.
func (b *DTMCBuilder) State(name string) int {
	if i, ok := b.index[name]; ok {
		return i
	}
	i := len(b.names)
	b.names = append(b.names, name)
	b.index[name] = i
	return i
}

// Prob adds a one-step transition probability from -> to. Declaring a
// self-transition marks the row as explicitly closed.
func (b *DTMCBuilder) Prob(from, to string, p float64) *DTMCBuilder {
	if p < 0 || p > 1 || math.IsNaN(p) {
		b.errs = append(b.errs, fmt.Sprintf("invalid probability %v on %s->%s", p, from, to))
		return b
	}
	f, t := b.State(from), b.State(to)
	if f == t {
		b.self[f] = true
	}
	if p == 0 {
		return b
	}
	b.items = append(b.items, linalg.Coord{Row: f, Col: t, Val: p})
	return b
}

// Build validates row stochasticity (filling implicit self-loops) and
// returns the chain.
func (b *DTMCBuilder) Build() (*DTMC, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("markov: invalid DTMC: %s", strings.Join(b.errs, "; "))
	}
	if len(b.names) == 0 {
		return nil, errors.New("markov: DTMC has no states")
	}
	n := len(b.names)
	rowSum := make([]float64, n)
	for _, it := range b.items {
		rowSum[it.Row] += it.Val
	}
	items := append([]linalg.Coord(nil), b.items...)
	for i := 0; i < n; i++ {
		excess := rowSum[i] - 1
		switch {
		case excess > 1e-9:
			return nil, fmt.Errorf("markov: DTMC row %s sums to %v > 1", b.names[i], rowSum[i])
		case b.self[i]:
			if math.Abs(excess) > 1e-9 {
				return nil, fmt.Errorf("markov: DTMC row %s sums to %v with explicit self-loop", b.names[i], rowSum[i])
			}
		default:
			// Implicit self-loop closes the row.
			items = append(items, linalg.Coord{Row: i, Col: i, Val: -excess})
		}
	}
	c := &DTMC{
		names: append([]string(nil), b.names...),
		index: make(map[string]int, n),
		p:     linalg.NewCSR(n, n, items),
	}
	for i, name := range c.names {
		c.index[name] = i
	}
	return c, nil
}

// MustBuild is Build panicking on error.
func (b *DTMCBuilder) MustBuild() *DTMC {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the number of states.
func (d *DTMC) N() int { return len(d.names) }

// StateName returns the name of state i.
func (d *DTMC) StateName(i int) string { return d.names[i] }

// StateIndex returns the index of a named state.
func (d *DTMC) StateIndex(name string) (int, bool) {
	i, ok := d.index[name]
	return i, ok
}

// Prob returns the one-step probability from -> to.
func (d *DTMC) Prob(from, to string) float64 {
	f, ok1 := d.index[from]
	t, ok2 := d.index[to]
	if !ok1 || !ok2 {
		return 0
	}
	return d.p.At(f, t)
}

// Step advances a distribution one step: pi' = pi P.
func (d *DTMC) Step(pi []float64) []float64 { return d.p.VecMul(pi) }

// StepN advances a distribution n steps.
func (d *DTMC) StepN(pi []float64, n int) []float64 {
	out := append([]float64(nil), pi...)
	for i := 0; i < n; i++ {
		out = d.p.VecMul(out)
	}
	return out
}

// Stationary computes the stationary distribution by power iteration.
func (d *DTMC) Stationary(tol float64, maxIter int) ([]float64, error) {
	pi0 := make([]float64, d.N())
	for i := range pi0 {
		pi0[i] = 1
	}
	pi, _, ok := linalg.PowerIteration(d.p, pi0, tol, maxIter)
	if !ok {
		return pi, ErrNotConverged
	}
	return pi, nil
}

// StationaryDirect computes the stationary distribution by solving
// pi (P - I) = 0 with normalization, mirroring CTMC.SteadyState.
func (d *DTMC) StationaryDirect() ([]float64, error) {
	n := d.N()
	if n == 1 {
		return []float64{1}, nil
	}
	a := d.p.Dense().Transpose()
	for i := 0; i < n; i++ {
		a.Add(i, i, -1)
	}
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b := make([]float64, n)
	b[n-1] = 1
	pi, err := linalg.SolveRefined(a, b, 4)
	if err != nil {
		return nil, fmt.Errorf("markov: DTMC stationary solve: %w", err)
	}
	for i, v := range pi {
		if v < 0 {
			if v < -1e-9 {
				return nil, fmt.Errorf("markov: DTMC stationary has negative probability %v in state %s", v, d.names[i])
			}
			pi[i] = 0
		}
	}
	linalg.Normalize1(pi)
	return pi, nil
}

// StationaryProbability returns the stationary mass over named states.
func (d *DTMC) StationaryProbability(states ...string) (float64, error) {
	pi, err := d.StationaryDirect()
	if err != nil {
		return 0, err
	}
	s := 0.0
	for _, name := range states {
		i, ok := d.index[name]
		if !ok {
			return 0, fmt.Errorf("markov: unknown state %q", name)
		}
		s += pi[i]
	}
	return s, nil
}

// Embedded returns the jump chain of a CTMC: the DTMC whose one-step
// probabilities are P_ij = q_ij / q_i (the probability that the next
// transition out of i goes to j), ignoring sojourn times. States with
// no outgoing rate become absorbing. The classic identity
// pi_ctmc(i) ~ pi_embedded(i) / q_i links the two stationary
// distributions (verified by test).
func (c *CTMC) Embedded() (*DTMC, error) {
	b := NewDTMCBuilder()
	for _, name := range c.names {
		b.State(name)
	}
	exit := make([]float64, c.N())
	for _, tr := range c.trans {
		exit[tr.From] += tr.Rate
	}
	for _, tr := range c.trans {
		b.Prob(c.names[tr.From], c.names[tr.To], tr.Rate/exit[tr.From])
	}
	return b.Build()
}

// Discretize converts a CTMC into the DTMC of its hourly (or any dt)
// first-order Euler discretization: P = I + Q dt. This is exactly the
// chain the paper's figures draw (self-loops R = 1 - sum of exit
// probabilities). It returns an error when dt is too coarse for the
// rates (a row would go negative).
func (c *CTMC) Discretize(dt float64) (*DTMC, error) {
	if dt <= 0 || math.IsNaN(dt) || math.IsInf(dt, 0) {
		return nil, fmt.Errorf("markov: invalid step %v", dt)
	}
	b := NewDTMCBuilder()
	// Preserve state order.
	for _, name := range c.names {
		b.State(name)
	}
	exit := make([]float64, c.N())
	for _, tr := range c.trans {
		p := tr.Rate * dt
		exit[tr.From] += p
		b.Prob(c.names[tr.From], c.names[tr.To], math.Min(p, 1))
	}
	for i, e := range exit {
		if e > 1 {
			return nil, fmt.Errorf("markov: step %v too coarse for state %s (exit probability %v)", dt, c.names[i], e)
		}
	}
	return b.Build()
}

// SortedNames returns the state names sorted alphabetically (handy for
// stable test output).
func (d *DTMC) SortedNames() []string {
	out := append([]string(nil), d.names...)
	sort.Strings(out)
	return out
}
