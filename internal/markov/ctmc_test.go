package markov

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"herald/internal/xrand"
)

// twoState builds the classic machine-repair chain: UP --lambda--> DOWN,
// DOWN --mu--> UP, with closed-form steady state mu/(lambda+mu).
func twoState(lambda, mu float64) *CTMC {
	return NewBuilder().
		At("UP", "DOWN", lambda).
		At("DOWN", "UP", mu).
		MustBuild()
}

func TestTwoStateSteadyState(t *testing.T) {
	lambda, mu := 0.001, 0.1
	c := twoState(lambda, mu)
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	wantUp := mu / (lambda + mu)
	iUp, _ := c.StateIndex("UP")
	if math.Abs(pi[iUp]-wantUp) > 1e-14 {
		t.Fatalf("pi(UP) = %v, want %v", pi[iUp], wantUp)
	}
}

func TestSteadyStateSumsToOne(t *testing.T) {
	c := twoState(0.3, 0.7)
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	s := 0.0
	for _, p := range pi {
		s += p
	}
	if math.Abs(s-1) > 1e-14 {
		t.Fatalf("sum = %v", s)
	}
}

func TestBirthDeathChain(t *testing.T) {
	// M/M/1/3: arrivals rate a, services rate s. Stationary is
	// geometric: pi_k proportional to (a/s)^k.
	a, s := 0.4, 1.0
	b := NewBuilder()
	b.At("0", "1", a).At("1", "2", a).At("2", "3", a)
	b.At("1", "0", s).At("2", "1", s).At("3", "2", s)
	c := b.MustBuild()
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	rho := a / s
	norm := 1 + rho + rho*rho + rho*rho*rho
	for k := 0; k < 4; k++ {
		want := math.Pow(rho, float64(k)) / norm
		i, _ := c.StateIndex(string(rune('0' + k)))
		if math.Abs(pi[i]-want) > 1e-12 {
			t.Fatalf("pi[%d] = %v, want %v", k, pi[i], want)
		}
	}
}

func TestIterativeMatchesDirect(t *testing.T) {
	// Random irreducible 12-state chain.
	r := xrand.New(31)
	b := NewBuilder()
	n := 12
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	// Ring guarantees irreducibility; add random extra edges.
	for i := 0; i < n; i++ {
		b.At(names[i], names[(i+1)%n], 0.01+r.Float64())
	}
	for k := 0; k < 40; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i != j {
			b.At(names[i], names[j], r.Float64()*2)
		}
	}
	c := b.MustBuild()
	direct, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	iter, err := c.SteadyStateIterative(1e-13, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if math.Abs(direct[i]-iter[i]) > 1e-8 {
			t.Fatalf("state %d: direct %v vs iterative %v", i, direct[i], iter[i])
		}
	}
}

func TestTransientMatchesClosedForm(t *testing.T) {
	lambda, mu := 0.02, 0.5
	c := twoState(lambda, mu)
	iUp, _ := c.StateIndex("UP")
	pi0 := make([]float64, 2)
	pi0[iUp] = 1
	for _, tm := range []float64{0, 0.5, 1, 5, 20, 200} {
		pi, err := c.Transient(pi0, tm)
		if err != nil {
			t.Fatal(err)
		}
		want := mu/(lambda+mu) + lambda/(lambda+mu)*math.Exp(-(lambda+mu)*tm)
		if math.Abs(pi[iUp]-want) > 1e-9 {
			t.Fatalf("t=%v: P(UP) = %v, want %v", tm, pi[iUp], want)
		}
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	c := twoState(0.1, 0.9)
	iUp, _ := c.StateIndex("UP")
	pi0 := []float64{0, 0}
	pi0[iUp] = 1
	long, err := c.Transient(pi0, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	ss, _ := c.SteadyState()
	for i := range ss {
		if math.Abs(long[i]-ss[i]) > 1e-9 {
			t.Fatalf("transient(1e4) = %v, steady = %v", long, ss)
		}
	}
}

func TestPointAvailability(t *testing.T) {
	c := twoState(0.01, 1)
	av, err := c.PointAvailability("UP", []string{"UP"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if av != 1 {
		t.Fatalf("availability at t=0 = %v", av)
	}
	av, err = c.PointAvailability("UP", []string{"UP"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / 1.01
	if math.Abs(av-want) > 1e-9 {
		t.Fatalf("availability = %v, want %v", av, want)
	}
}

func TestMeanTimeToAbsorptionSingleStep(t *testing.T) {
	// UP -> DOWN at rate lambda with no return: MTTA = 1/lambda.
	c := NewBuilder().At("UP", "DOWN", 0.004).At("DOWN", "UP", 0).MustBuild()
	mtta, err := c.MeanTimeToAbsorption("UP", "DOWN")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mtta-250) > 1e-9 {
		t.Fatalf("MTTA = %v, want 250", mtta)
	}
}

func TestMTTDLClosedForm(t *testing.T) {
	// RAID-style chain OP -n*l-> EXP -(n-1)*l-> DL with repair EXP
	// -mu-> OP has MTTDL = (mu + (2n-1) l) / (n (n-1) l^2).
	n := 4.0
	l, mu := 1e-4, 0.1
	c := NewBuilder().
		At("OP", "EXP", n*l).
		At("EXP", "DL", (n-1)*l).
		At("EXP", "OP", mu).
		MustBuild()
	mtta, err := c.MeanTimeToAbsorption("OP", "DL")
	if err != nil {
		t.Fatal(err)
	}
	want := (mu + (2*n-1)*l) / (n * (n - 1) * l * l)
	if math.Abs(mtta-want)/want > 1e-10 {
		t.Fatalf("MTTDL = %v, want %v", mtta, want)
	}
}

func TestMTTAFromAbsorbingState(t *testing.T) {
	c := twoState(1, 1)
	mtta, err := c.MeanTimeToAbsorption("DOWN", "DOWN")
	if err != nil {
		t.Fatal(err)
	}
	if mtta != 0 {
		t.Fatalf("MTTA from target = %v", mtta)
	}
}

func TestMTTAUnknownStates(t *testing.T) {
	c := twoState(1, 1)
	if _, err := c.MeanTimeToAbsorption("NOPE", "DOWN"); err == nil {
		t.Fatal("expected error for unknown initial")
	}
	if _, err := c.MeanTimeToAbsorption("UP", "NOPE"); err == nil {
		t.Fatal("expected error for unknown target")
	}
}

func TestExpectedReward(t *testing.T) {
	c := twoState(0.25, 0.75)
	av, err := c.ExpectedReward(func(name string) float64 {
		if name == "UP" {
			return 1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(av-0.75) > 1e-12 {
		t.Fatalf("reward = %v, want 0.75", av)
	}
}

func TestSteadyProbability(t *testing.T) {
	c := twoState(1, 3)
	p, err := c.SteadyProbability("UP", "DOWN")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-12 {
		t.Fatalf("total probability = %v", p)
	}
	if _, err := c.SteadyProbability("MISSING"); err == nil {
		t.Fatal("expected unknown state error")
	}
}

func TestBuilderMergesParallelEdges(t *testing.T) {
	c := NewBuilder().
		At("A", "B", 0.5).
		At("A", "B", 0.25).
		At("B", "A", 1).
		MustBuild()
	if got := c.Rate("A", "B"); math.Abs(got-0.75) > 1e-15 {
		t.Fatalf("merged rate = %v", got)
	}
	if len(c.Transitions()) != 2 {
		t.Fatalf("transition count = %d", len(c.Transitions()))
	}
}

func TestBuilderRejectsNegativeRate(t *testing.T) {
	_, err := NewBuilder().At("A", "B", -1).At("B", "A", 1).Build()
	if err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	_, err := NewBuilder().At("A", "A", 0.5).At("A", "B", 1).At("B", "A", 1).Build()
	if err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestBuilderRejectsNaNRate(t *testing.T) {
	_, err := NewBuilder().At("A", "B", math.NaN()).Build()
	if err == nil {
		t.Fatal("NaN rate accepted")
	}
}

func TestBuilderEmptyModel(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Fatal("empty model accepted")
	}
}

func TestZeroRateDropped(t *testing.T) {
	c := NewBuilder().At("A", "B", 0).At("A", "B", 1).At("B", "A", 1).MustBuild()
	if len(c.Transitions()) != 2 {
		t.Fatalf("transitions = %v", c.Transitions())
	}
}

func TestIrreducibility(t *testing.T) {
	if !twoState(1, 1).IsIrreducible() {
		t.Fatal("two-state cycle should be irreducible")
	}
	// A -> B with no way back.
	c := NewBuilder().At("A", "B", 1).MustBuild()
	if c.IsIrreducible() {
		t.Fatal("absorbing chain reported irreducible")
	}
}

func TestGeneratorRowsSumToZero(t *testing.T) {
	c := twoState(0.2, 0.9)
	q := c.Generator()
	for i := 0; i < q.Rows; i++ {
		s := 0.0
		for j := 0; j < q.Cols; j++ {
			s += q.At(i, j)
		}
		if math.Abs(s) > 1e-15 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestGeneratorCSRMatchesDense(t *testing.T) {
	c := NewBuilder().
		At("A", "B", 0.1).At("B", "C", 0.2).At("C", "A", 0.3).At("A", "C", 0.05).
		MustBuild()
	d := c.Generator()
	s := c.GeneratorCSR().Dense()
	for i := range d.Data {
		if math.Abs(d.Data[i]-s.Data[i]) > 1e-15 {
			t.Fatal("CSR generator mismatch")
		}
	}
}

func TestUniformizedMatrixIsStochastic(t *testing.T) {
	c := NewBuilder().
		At("A", "B", 2).At("B", "A", 0.5).At("B", "C", 1.5).At("C", "A", 1).
		MustBuild()
	p := c.UniformizedMatrix(0).Dense()
	for i := 0; i < p.Rows; i++ {
		s := 0.0
		for j := 0; j < p.Cols; j++ {
			v := p.At(i, j)
			if v < -1e-15 {
				t.Fatalf("negative probability %v at %d,%d", v, i, j)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestExitAndMaxExitRate(t *testing.T) {
	c := NewBuilder().
		At("A", "B", 2).At("A", "C", 3).At("B", "A", 1).At("C", "A", 1).
		MustBuild()
	iA, _ := c.StateIndex("A")
	if got := c.ExitRate(iA); math.Abs(got-5) > 1e-15 {
		t.Fatalf("exit(A) = %v", got)
	}
	if got := c.MaxExitRate(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("max exit = %v", got)
	}
}

func TestStateAccessors(t *testing.T) {
	c := twoState(1, 2)
	if c.N() != 2 {
		t.Fatalf("N = %d", c.N())
	}
	names := c.StateNames()
	if len(names) != 2 || names[0] != "UP" {
		t.Fatalf("names = %v", names)
	}
	if _, ok := c.StateIndex("UP"); !ok {
		t.Fatal("UP not found")
	}
	if _, ok := c.StateIndex("ZZZ"); ok {
		t.Fatal("phantom state found")
	}
	if c.Rate("UP", "DOWN") != 1 || c.Rate("X", "Y") != 0 {
		t.Fatal("Rate lookup wrong")
	}
}

func TestDOTOutput(t *testing.T) {
	dot := twoState(0.5, 1).DOT("repair")
	for _, want := range []string{"digraph", "UP", "DOWN", "->", "0.5"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestQuickSteadyStateIsStochastic(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + int(seed%6)
		b := NewBuilder()
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		for i := 0; i < n; i++ {
			b.At(names[i], names[(i+1)%n], 0.01+r.Float64())
		}
		for k := 0; k < n; k++ {
			i, j := r.Intn(n), r.Intn(n)
			if i != j {
				b.At(names[i], names[j], r.Float64())
			}
		}
		c := b.MustBuild()
		pi, err := c.SteadyState()
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range pi {
			if p < 0 || p > 1 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickBalanceEquationsHold(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 3 + int(seed%5)
		b := NewBuilder()
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		for i := 0; i < n; i++ {
			b.At(names[i], names[(i+1)%n], 0.05+r.Float64())
		}
		c := b.MustBuild()
		pi, err := c.SteadyState()
		if err != nil {
			return false
		}
		// pi Q must be (numerically) zero.
		res := c.Generator().VecMul(pi)
		for _, v := range res {
			if math.Abs(v) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickTransientStochastic(t *testing.T) {
	f := func(seed uint64, tRaw uint8) bool {
		r := xrand.New(seed)
		c := twoState(0.01+r.Float64(), 0.01+r.Float64())
		pi0 := []float64{1, 0}
		pi, err := c.Transient(pi0, float64(tRaw))
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range pi {
			if p < -1e-12 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
