// Package markov implements continuous-time Markov chains (CTMCs) and
// the analyses the availability study needs: steady-state solution of
// the balance equations, transient solution by uniformization, and
// absorbing-chain metrics (mean time to failure / data loss).
//
// The paper's RAID availability models (Figs. 2 and 3) are irreducible
// CTMCs whose steady-state probabilities, summed over "up" states,
// give the array availability. Models are assembled with Builder,
// which keeps states named so that model code reads like the paper's
// state diagrams.
package markov

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"herald/internal/linalg"
)

// ErrNotConverged is returned by iterative solvers that exhaust their
// iteration budget.
var ErrNotConverged = errors.New("markov: iteration did not converge")

// Transition is one directed rate between two states.
type Transition struct {
	From, To int
	Rate     float64
}

// CTMC is an immutable continuous-time Markov chain over named states.
// Construct with Builder.
type CTMC struct {
	names []string
	index map[string]int
	trans []Transition
}

// Builder assembles a CTMC from named states and rate transitions.
type Builder struct {
	names []string
	index map[string]int
	trans []Transition
	errs  []string
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{index: make(map[string]int)}
}

// State declares a state (idempotent) and returns its index.
func (b *Builder) State(name string) int {
	if i, ok := b.index[name]; ok {
		return i
	}
	i := len(b.names)
	b.names = append(b.names, name)
	b.index[name] = i
	return i
}

// At adds a transition from -> to with the given rate (per hour).
// Declaring the endpoints is implicit. Zero-rate transitions are
// dropped; negative rates and self-loops are recorded as build errors
// (a CTMC self-loop has no probabilistic meaning).
func (b *Builder) At(from, to string, rate float64) *Builder {
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		b.errs = append(b.errs, fmt.Sprintf("invalid rate %v on %s->%s", rate, from, to))
		return b
	}
	if from == to {
		if rate != 0 {
			b.errs = append(b.errs, fmt.Sprintf("self-loop %s->%s (rate %v) is meaningless in a CTMC", from, to, rate))
		}
		return b
	}
	f, t := b.State(from), b.State(to)
	if rate == 0 {
		return b
	}
	b.trans = append(b.trans, Transition{From: f, To: t, Rate: rate})
	return b
}

// Build validates and returns the chain. Parallel transitions between
// the same pair of states are merged by summing their rates.
func (b *Builder) Build() (*CTMC, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("markov: invalid model: %s", strings.Join(b.errs, "; "))
	}
	if len(b.names) == 0 {
		return nil, errors.New("markov: model has no states")
	}
	merged := make(map[[2]int]float64)
	for _, tr := range b.trans {
		merged[[2]int{tr.From, tr.To}] += tr.Rate
	}
	keys := make([][2]int, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	trans := make([]Transition, 0, len(keys))
	for _, k := range keys {
		trans = append(trans, Transition{From: k[0], To: k[1], Rate: merged[k]})
	}
	c := &CTMC{
		names: append([]string(nil), b.names...),
		index: make(map[string]int, len(b.names)),
		trans: trans,
	}
	for i, n := range c.names {
		c.index[n] = i
	}
	return c, nil
}

// MustBuild is Build that panics on error; for statically known models.
func (b *Builder) MustBuild() *CTMC {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the number of states.
func (c *CTMC) N() int { return len(c.names) }

// StateName returns the name of state i.
func (c *CTMC) StateName(i int) string { return c.names[i] }

// StateNames returns a copy of all state names in index order.
func (c *CTMC) StateNames() []string { return append([]string(nil), c.names...) }

// StateIndex returns the index of a named state.
func (c *CTMC) StateIndex(name string) (int, bool) {
	i, ok := c.index[name]
	return i, ok
}

// Transitions returns a copy of the merged transition list.
func (c *CTMC) Transitions() []Transition { return append([]Transition(nil), c.trans...) }

// Rate returns the transition rate from -> to (0 if absent).
func (c *CTMC) Rate(from, to string) float64 {
	f, ok1 := c.index[from]
	t, ok2 := c.index[to]
	if !ok1 || !ok2 {
		return 0
	}
	for _, tr := range c.trans {
		if tr.From == f && tr.To == t {
			return tr.Rate
		}
	}
	return 0
}

// ExitRate returns the total outgoing rate of state i.
func (c *CTMC) ExitRate(i int) float64 {
	s := 0.0
	for _, tr := range c.trans {
		if tr.From == i {
			s += tr.Rate
		}
	}
	return s
}

// MaxExitRate returns the largest total exit rate over all states (the
// uniformization constant must exceed it).
func (c *CTMC) MaxExitRate() float64 {
	exit := make([]float64, c.N())
	for _, tr := range c.trans {
		exit[tr.From] += tr.Rate
	}
	max := 0.0
	for _, e := range exit {
		if e > max {
			max = e
		}
	}
	return max
}

// Generator returns the dense infinitesimal generator Q, with
// Q[i][j] = rate(i->j) for i != j and Q[i][i] = -sum_j rate(i->j).
func (c *CTMC) Generator() *linalg.Dense {
	n := c.N()
	q := linalg.NewDense(n, n)
	for _, tr := range c.trans {
		q.Add(tr.From, tr.To, tr.Rate)
		q.Add(tr.From, tr.From, -tr.Rate)
	}
	return q
}

// GeneratorCSR returns the generator in sparse CSR form.
func (c *CTMC) GeneratorCSR() *linalg.CSR {
	items := make([]linalg.Coord, 0, 2*len(c.trans))
	for _, tr := range c.trans {
		items = append(items,
			linalg.Coord{Row: tr.From, Col: tr.To, Val: tr.Rate},
			linalg.Coord{Row: tr.From, Col: tr.From, Val: -tr.Rate})
	}
	return linalg.NewCSR(c.N(), c.N(), items)
}

// SteadyState solves pi Q = 0, sum(pi) = 1 directly: the transposed
// balance equations with one row replaced by the normalization
// constraint, followed by iterative refinement. It requires the chain
// to have a unique stationary distribution (irreducible chains do).
func (c *CTMC) SteadyState() ([]float64, error) {
	n := c.N()
	if n == 1 {
		return []float64{1}, nil
	}
	// A = Q^T with the last row replaced by ones; b = e_{n-1}.
	a := c.Generator().Transpose()
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b := make([]float64, n)
	b[n-1] = 1
	pi, err := linalg.SolveRefined(a, b, 4)
	if err != nil {
		return nil, fmt.Errorf("markov: steady state solve: %w", err)
	}
	// Clamp tiny negative round-off and renormalize.
	for i, v := range pi {
		if v < 0 {
			if v < -1e-9 {
				return nil, fmt.Errorf("markov: steady state has negative probability %v in state %s", v, c.names[i])
			}
			pi[i] = 0
		}
	}
	linalg.Normalize1(pi)
	return pi, nil
}

// SteadyStateIterative computes the stationary distribution through the
// uniformized DTMC and power iteration; a cross-check for the direct
// solver and the scalable path for large chains.
func (c *CTMC) SteadyStateIterative(tol float64, maxIter int) ([]float64, error) {
	p := c.UniformizedMatrix(0)
	pi0 := make([]float64, c.N())
	for i := range pi0 {
		pi0[i] = 1
	}
	pi, _, ok := linalg.PowerIteration(p, pi0, tol, maxIter)
	if !ok {
		return pi, ErrNotConverged
	}
	return pi, nil
}

// UniformizedMatrix returns the uniformized transition matrix
// P = I + Q/lambda. When lambda <= 0, 1.05 * MaxExitRate is used
// (the 5% slack keeps diagonal entries strictly positive, making the
// DTMC aperiodic).
func (c *CTMC) UniformizedMatrix(lambda float64) *linalg.CSR {
	if lambda <= 0 {
		lambda = 1.05 * c.MaxExitRate()
		if lambda == 0 {
			lambda = 1 // chain with no transitions: P = I
		}
	}
	n := c.N()
	exit := make([]float64, n)
	items := make([]linalg.Coord, 0, len(c.trans)+n)
	for _, tr := range c.trans {
		items = append(items, linalg.Coord{Row: tr.From, Col: tr.To, Val: tr.Rate / lambda})
		exit[tr.From] += tr.Rate
	}
	for i := 0; i < n; i++ {
		items = append(items, linalg.Coord{Row: i, Col: i, Val: 1 - exit[i]/lambda})
	}
	return linalg.NewCSR(n, n, items)
}

// Transient returns the state probability vector at time t (hours)
// starting from pi0, computed by uniformization with adaptive
// truncation of the Poisson series.
func (c *CTMC) Transient(pi0 []float64, t float64) ([]float64, error) {
	n := c.N()
	if len(pi0) != n {
		panic(fmt.Sprintf("markov: initial vector has %d entries, want %d", len(pi0), n))
	}
	if t < 0 {
		panic("markov: negative time")
	}
	pi := append([]float64(nil), pi0...)
	if t == 0 {
		return pi, nil
	}
	lambda := 1.05 * c.MaxExitRate()
	if lambda == 0 {
		return pi, nil
	}
	p := c.UniformizedMatrix(lambda)
	lt := lambda * t
	// Accumulate sum_k Poisson(lt, k) * pi0 P^k in log space for the
	// weights to survive large lt.
	out := make([]float64, n)
	cur := pi
	logW := -lt // log Poisson(k=0)
	kMax := int(lt + 12*math.Sqrt(lt) + 30)
	acc := 0.0
	for k := 0; ; k++ {
		w := math.Exp(logW)
		for i := range out {
			out[i] += w * cur[i]
		}
		acc += w
		if acc > 1-1e-14 || k >= kMax {
			break
		}
		cur = p.VecMul(cur)
		logW += math.Log(lt) - math.Log(float64(k+1))
	}
	// The truncated tail mass (1-acc) is redistributed by
	// normalization.
	linalg.Normalize1(out)
	return out, nil
}

// PointAvailability returns the probability of being in any of the
// given states at time t, starting from the named initial state.
func (c *CTMC) PointAvailability(initial string, states []string, t float64) (float64, error) {
	i0, ok := c.index[initial]
	if !ok {
		return 0, fmt.Errorf("markov: unknown initial state %q", initial)
	}
	pi0 := make([]float64, c.N())
	pi0[i0] = 1
	pi, err := c.Transient(pi0, t)
	if err != nil {
		return 0, err
	}
	return c.sumOver(pi, states)
}

// SteadyProbability returns the steady-state probability mass over the
// given named states.
func (c *CTMC) SteadyProbability(states ...string) (float64, error) {
	pi, err := c.SteadyState()
	if err != nil {
		return 0, err
	}
	return c.sumOver(pi, states)
}

func (c *CTMC) sumOver(pi []float64, states []string) (float64, error) {
	s := 0.0
	for _, name := range states {
		i, ok := c.index[name]
		if !ok {
			return 0, fmt.Errorf("markov: unknown state %q", name)
		}
		s += pi[i]
	}
	return s, nil
}

// ExpectedReward returns sum_i pi_i * reward(state i) at steady state;
// with reward = 1 on up states it yields availability, with state
// occupancy costs it yields expected downtime cost, etc.
func (c *CTMC) ExpectedReward(reward func(name string) float64) (float64, error) {
	pi, err := c.SteadyState()
	if err != nil {
		return 0, err
	}
	s := 0.0
	for i, p := range pi {
		s += p * reward(c.names[i])
	}
	return s, nil
}

// MeanTimeToAbsorption treats the named target states as absorbing and
// returns the expected time (hours) to first reach any of them from
// the initial state: the MTTF/MTTDL-style metric. It solves
// (-Q_TT) tau = 1 restricted to transient states.
func (c *CTMC) MeanTimeToAbsorption(initial string, targets ...string) (float64, error) {
	i0, ok := c.index[initial]
	if !ok {
		return 0, fmt.Errorf("markov: unknown initial state %q", initial)
	}
	absorbing := make(map[int]bool, len(targets))
	for _, name := range targets {
		i, ok := c.index[name]
		if !ok {
			return 0, fmt.Errorf("markov: unknown target state %q", name)
		}
		absorbing[i] = true
	}
	if absorbing[i0] {
		return 0, nil
	}
	// Index map for transient states.
	tIdx := make(map[int]int)
	var tStates []int
	for i := 0; i < c.N(); i++ {
		if !absorbing[i] {
			tIdx[i] = len(tStates)
			tStates = append(tStates, i)
		}
	}
	m := len(tStates)
	a := linalg.NewDense(m, m)
	for _, tr := range c.trans {
		fi, ok := tIdx[tr.From]
		if !ok {
			continue
		}
		a.Add(fi, fi, tr.Rate) // diagonal accumulates total exit rate
		if ti, ok := tIdx[tr.To]; ok {
			a.Add(fi, ti, -tr.Rate)
		}
	}
	ones := make([]float64, m)
	for i := range ones {
		ones[i] = 1
	}
	tau, err := linalg.SolveRefined(a, ones, 4)
	if err != nil {
		return 0, fmt.Errorf("markov: MTTA solve (targets unreachable from some state?): %w", err)
	}
	v := tau[tIdx[i0]]
	if v < 0 {
		return 0, fmt.Errorf("markov: negative MTTA %v; chain structure invalid", v)
	}
	return v, nil
}

// IsIrreducible reports whether every state can reach every other
// state (the requirement for a unique steady-state distribution).
func (c *CTMC) IsIrreducible() bool {
	n := c.N()
	fwd := make([][]int, n)
	rev := make([][]int, n)
	for _, tr := range c.trans {
		fwd[tr.From] = append(fwd[tr.From], tr.To)
		rev[tr.To] = append(rev[tr.To], tr.From)
	}
	return reachesAll(fwd, 0) && reachesAll(rev, 0)
}

func reachesAll(adj [][]int, start int) bool {
	n := len(adj)
	seen := make([]bool, n)
	stack := []int{start}
	seen[start] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// DOT renders the chain in Graphviz format with rates as edge labels;
// handy for eyeballing a model against the paper's figures.
func (c *CTMC) DOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n", name)
	for _, n := range c.names {
		fmt.Fprintf(&sb, "  %q;\n", n)
	}
	for _, tr := range c.trans {
		fmt.Fprintf(&sb, "  %q -> %q [label=%q];\n", c.names[tr.From], c.names[tr.To], trimFloat(tr.Rate))
	}
	sb.WriteString("}\n")
	return sb.String()
}

func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6g", v), "0"), ".")
}
