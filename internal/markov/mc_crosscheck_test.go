package markov_test

import (
	"math"
	"testing"

	"herald/internal/markov"
	"herald/internal/sim"
)

// These tests cross-check the repository's two independent
// availability engines end to end: the CTMC closed form (this
// package's steady-state solver, on chains built directly with the
// Builder) against the Monte-Carlo simulator running the matching
// exponential laws. They live in an external test package because
// internal/sim is a sibling consumer of markov, not a dependency.

// paperRates are the §V-B constants shared by both engines.
const (
	muDF        = 0.1
	muDDF       = 0.03
	muHE        = 1.0
	lambdaCrash = 0.01
)

// simParams builds the simulator configuration matching the chains
// below: exponential everything at the paper's rates.
func simParams(n int, lambda, hep float64) sim.ArrayParams {
	p := sim.PaperDefaults(n, lambda, hep)
	p.Policy = sim.Conventional
	return p
}

// mcAvailability runs a seeded Monte-Carlo estimate.
func mcAvailability(t *testing.T, p sim.ArrayParams) sim.Summary {
	t.Helper()
	s, err := sim.Run(p, sim.Options{
		Iterations:  3000,
		MissionTime: 2e5,
		Seed:        987,
		Workers:     4,
		Confidence:  0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// assertAgreement mirrors the simulator test-suite convention: the
// closed form must fall inside the MC confidence interval widened by a
// structural slack (the simulator tracks second-order events the
// chain aggregates).
func assertAgreement(t *testing.T, name string, mc sim.Summary, analytic float64) {
	t.Helper()
	tol := 4*mc.HalfWidth + 0.03*(1-analytic)
	if diff := math.Abs(mc.Availability - analytic); diff > tol {
		t.Errorf("%s: MC %v vs CTMC closed form %v (diff %.3g > tol %.3g)",
			name, mc.Availability, analytic, diff, tol)
	}
}

// TestSteadyStateMatchesMonteCarloNoHumanError builds the classic
// single-parity repairable-array chain (the hep = 0 reduction of the
// paper's Fig. 2) directly with the Builder and checks its
// steady-state availability against the simulator.
func TestSteadyStateMatchesMonteCarloNoHumanError(t *testing.T) {
	const (
		n      = 4
		lambda = 1e-4
	)
	c := markov.NewBuilder().
		At("OP", "EXP", n*lambda).
		At("EXP", "OP", muDF).
		At("EXP", "DL", (n-1)*lambda).
		At("DL", "OP", muDDF).
		MustBuild()
	analytic, err := c.SteadyProbability("OP", "EXP")
	if err != nil {
		t.Fatal(err)
	}
	mc := mcAvailability(t, simParams(n, lambda, 0))
	assertAgreement(t, "hep=0", mc, analytic)
}

// TestSteadyStateMatchesMonteCarloWithHumanError repeats the
// cross-check on the full Fig. 2 chain with the human-error states
// (wrong pull, undo, post-undo resync) at hep = 0.01.
func TestSteadyStateMatchesMonteCarloWithHumanError(t *testing.T) {
	const (
		n      = 4
		lambda = 1e-4
		hep    = 0.01
	)
	c := markov.NewBuilder().
		At("OP", "EXP", n*lambda).
		At("EXP", "DL", (n-1)*lambda).
		At("EXP", "OP", (1-hep)*muDF).
		At("EXP", "DU", hep*muDF).
		At("DU", "DUR", (1-hep)*muHE).
		At("DUR", "OP", muDDF).
		At("DU", "DL", lambdaCrash).
		At("DL", "OP", muDDF).
		MustBuild()
	analytic, err := c.SteadyProbability("OP", "EXP")
	if err != nil {
		t.Fatal(err)
	}
	mc := mcAvailability(t, simParams(n, lambda, hep))
	assertAgreement(t, "hep=0.01", mc, analytic)

	// The same chain also predicts the DU/DL downtime split; check the
	// human-error share of unavailability against the simulator's
	// bucketed downtime within the same structural slack.
	duMass, err := c.SteadyProbability("DU", "DUR")
	if err != nil {
		t.Fatal(err)
	}
	mcDU := mc.MeanDowntimeDU / mc.MissionTime
	if diff := math.Abs(mcDU - duMass); diff > 4*mc.HalfWidth+0.1*duMass {
		t.Errorf("DU mass: MC %v vs CTMC %v (diff %.3g)", mcDU, duMass, diff)
	}
}
