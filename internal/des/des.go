// Package des is a small discrete-event simulation kernel: a
// simulation clock plus a cancellable event calendar ordered by
// (time, insertion sequence). The Monte-Carlo availability model uses
// specialized race loops for speed, but fleet-level scenario studies
// (see examples/datacenter) and extensions build on this kernel.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Handler is the callback invoked when an event fires.
type Handler func(sim *Simulator)

// Event is a scheduled occurrence. Cancel it via Cancel; a cancelled
// event is skipped when it reaches the head of the calendar.
type Event struct {
	time      float64
	seq       uint64
	fn        Handler
	cancelled bool
	index     int // heap index, -1 once popped
}

// Time returns the scheduled firing time.
func (e *Event) Time() float64 { return e.time }

// Cancel marks the event so it will not fire. Cancelling an already
// fired or cancelled event is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether the event was cancelled.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the clock and the event calendar. The zero value is
// not usable; construct with New.
type Simulator struct {
	now    float64
	queue  eventHeap
	seq    uint64
	fired  uint64
	halted bool
}

// New returns a simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// Fired returns how many events have been executed.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of scheduled (possibly cancelled) events.
func (s *Simulator) Pending() int { return len(s.queue) }

// Halt stops Run/RunUntil after the current event returns.
func (s *Simulator) Halt() { s.halted = true }

// Schedule registers fn to fire after delay. It panics on negative or
// NaN delays.
func (s *Simulator) Schedule(delay float64, fn Handler) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("des: invalid delay %v", delay))
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt registers fn to fire at absolute time t >= Now.
func (s *Simulator) ScheduleAt(t float64, fn Handler) *Event {
	if t < s.now || math.IsNaN(t) {
		panic(fmt.Sprintf("des: cannot schedule at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("des: nil handler")
	}
	e := &Event{time: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// Step fires the next non-cancelled event and returns true, or returns
// false when the calendar is empty.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancelled {
			continue
		}
		s.now = e.time
		s.fired++
		e.fn(s)
		return true
	}
	return false
}

// RunUntil processes events with time <= horizon, advances the clock
// to exactly horizon, and returns the number of events fired. Events
// scheduled beyond the horizon stay queued.
func (s *Simulator) RunUntil(horizon float64) uint64 {
	if horizon < s.now {
		panic(fmt.Sprintf("des: horizon %v before now %v", horizon, s.now))
	}
	s.halted = false
	start := s.fired
	for len(s.queue) > 0 && !s.halted {
		// Peek; fire only if within horizon.
		e := s.queue[0]
		if e.cancelled {
			heap.Pop(&s.queue)
			continue
		}
		if e.time > horizon {
			break
		}
		heap.Pop(&s.queue)
		s.now = e.time
		s.fired++
		e.fn(s)
	}
	if s.now < horizon {
		s.now = horizon
	}
	return s.fired - start
}

// Run drains the calendar completely (or until Halt) and returns the
// number of events fired.
func (s *Simulator) Run() uint64 {
	s.halted = false
	start := s.fired
	for !s.halted && s.Step() {
	}
	return s.fired - start
}
