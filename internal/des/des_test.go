package des

import (
	"testing"
	"testing/quick"

	"herald/internal/xrand"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(3, func(*Simulator) { order = append(order, 3) })
	s.Schedule(1, func(*Simulator) { order = append(order, 1) })
	s.Schedule(2, func(*Simulator) { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New()
	var order []string
	s.Schedule(5, func(*Simulator) { order = append(order, "first") })
	s.Schedule(5, func(*Simulator) { order = append(order, "second") })
	s.Run()
	if order[0] != "first" || order[1] != "second" {
		t.Fatalf("tie-break order = %v", order)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(1, func(*Simulator) { fired = true })
	e.Cancel()
	if !e.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestScheduleFromHandler(t *testing.T) {
	s := New()
	count := 0
	var recur Handler
	recur = func(sim *Simulator) {
		count++
		if count < 5 {
			sim.Schedule(1, recur)
		}
	}
	s.Schedule(1, recur)
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
	if s.Now() != 5 {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New()
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		s.ScheduleAt(tm, func(*Simulator) { fired = append(fired, tm) })
	}
	n := s.RunUntil(3)
	if n != 3 {
		t.Fatalf("fired %d events, want 3", n)
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v, want exactly the horizon", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d", s.Pending())
	}
	// Continue to the end.
	s.RunUntil(10)
	if len(fired) != 5 || s.Now() != 10 {
		t.Fatalf("fired = %v, now = %v", fired, s.Now())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(42)
	if s.Now() != 42 {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestHalt(t *testing.T) {
	s := New()
	count := 0
	s.Schedule(1, func(sim *Simulator) { count++; sim.Halt() })
	s.Schedule(2, func(*Simulator) { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("count = %d after halt", count)
	}
	// Run again resumes.
	s.Run()
	if count != 2 {
		t.Fatalf("count = %d after resume", count)
	}
}

func TestSchedulePanics(t *testing.T) {
	s := New()
	cases := []func(){
		func() { s.Schedule(-1, func(*Simulator) {}) },
		func() { s.ScheduleAt(-0.5, func(*Simulator) {}) },
		func() { s.Schedule(1, nil) },
		func() { s.RunUntil(-1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFiredCounter(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Schedule(float64(i), func(*Simulator) {})
	}
	s.Run()
	if s.Fired() != 10 {
		t.Fatalf("fired = %d", s.Fired())
	}
}

func TestQuickOrderInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		s := New()
		last := -1.0
		ok := true
		n := 5 + r.Intn(50)
		for i := 0; i < n; i++ {
			s.Schedule(r.Float64()*100, func(sim *Simulator) {
				if sim.Now() < last {
					ok = false
				}
				last = sim.Now()
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickCancelledNeverFire(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		s := New()
		firedCancelled := false
		n := 5 + r.Intn(30)
		for i := 0; i < n; i++ {
			cancelled := r.Bernoulli(0.5)
			e := s.Schedule(r.Float64()*10, func(*Simulator) {
				if cancelled {
					firedCancelled = true
				}
			})
			if cancelled {
				e.Cancel()
			}
		}
		s.Run()
		return !firedCancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
