package repro

import (
	"strconv"
	"testing"
)

// TestGoldenAnalyticNumbers pins the analytic (Markov) cells of the
// experiment tables to their recorded values in EXPERIMENTS.md, so
// that refactors of the solver or model cannot silently drift the
// reproduction.
func TestGoldenAnalyticNumbers(t *testing.T) {
	const tol = 0.005 // nines

	cell := func(rows [][]string, r, c int) float64 {
		t.Helper()
		v, err := strconv.ParseFloat(rows[r][c], 64)
		if err != nil {
			t.Fatalf("bad cell [%d][%d] = %q", r, c, rows[r][c])
		}
		return v
	}
	near := func(name string, got, want float64) {
		t.Helper()
		if d := got - want; d > tol || d < -tol {
			t.Errorf("%s = %v, recorded %v", name, got, want)
		}
	}

	// Fig. 6a (lambda = 1e-5): the ranking-flip panel.
	tables, err := Fig6(fast())
	if err != nil {
		t.Fatal(err)
	}
	a := tables[0].Rows
	near("fig6a RAID1 hep=0", cell(a, 0, 4), 5.854)
	near("fig6a RAID1 hep=0.001", cell(a, 0, 5), 4.801)
	near("fig6a RAID1 hep=0.01", cell(a, 0, 6), 3.837)
	near("fig6a R5(3+1) hep=0", cell(a, 1, 4), 5.553)
	near("fig6a R5(3+1) hep=0.01", cell(a, 1, 6), 4.005)
	near("fig6a R5(7+1) hep=0.01", cell(a, 2, 6), 4.056)

	// Fig. 7: the policy comparison.
	f7, err := Fig7(fast())
	if err != nil {
		t.Fatal(err)
	}
	near("fig7 conv hep=0", cell(f7.Rows, 0, 1), 8.398)
	near("fig7 fo hep=0", cell(f7.Rows, 0, 2), 8.398)
	near("fig7 conv hep=0.001", cell(f7.Rows, 1, 1), 6.850)
	near("fig7 fo hep=0.001", cell(f7.Rows, 1, 2), 8.398)
	near("fig7 conv hep=0.01", cell(f7.Rows, 2, 1), 5.861)
	near("fig7 fo hep=0.01", cell(f7.Rows, 2, 2), 8.356)

	// Headline table: the 275.7x cell at (1.25e-6, 0.01).
	u, err := Underestimation(fast())
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(u.Rows, 1, 4); got < 270 || got > 281 {
		t.Errorf("headline ratio = %v, recorded 275.7", got)
	}
}
