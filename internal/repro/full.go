package repro

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"herald/internal/report"
	"herald/internal/shard"
	"herald/internal/sim"
	"herald/internal/sweep"
)

// Full runs the paper-scale evaluation sweep — every replacement
// policy crossed with the paper's HEP values, at 1e6 Monte-Carlo
// iterations per point (§V reports 99% confidence at that count) —
// pipelined across scenarios through one shared pool of local worker
// processes (sweep.MonteCarlo): point k+1's shards start while point k
// drains, so the pool never idles at point boundaries. Any binary
// calling it must invoke shard.MaybeWorker at the top of main.
//
// Options scale it: MCIterations overrides the per-point count,
// Workers the worker-process count, and a positive TargetHalfWidth
// makes every point adaptive — it stops at the requested CI precision
// instead of the full count, with MCIterations as the cap. The emitted
// table records each point's completion offset; the total wall time
// and aggregate throughput in the note line are where the
// BENCH_*.json scale targets are measured.
func Full(o Options, out io.Writer) error {
	d := o.withDefaults()
	iters := o.MCIterations
	if iters <= 0 {
		iters = 1_000_000
	}
	procs := o.Workers
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	// Twice as many shards as workers keeps the tail balanced when one
	// worker lags.
	shardCount := 2 * procs

	const lambda = 1e-6
	policies := []sim.Policy{sim.Conventional, sim.AutoFailover, sim.DualParity}
	heps := []float64{0, 0.001, 0.01}

	points := make([]sweep.MCPoint, 0, len(policies)*len(heps))
	for _, pol := range policies {
		for _, hep := range heps {
			p := sim.PaperDefaults(4, lambda, hep)
			p.Policy = pol
			points = append(points, sweep.MCPoint{
				Label:  fmt.Sprintf("%s hep=%g", pol, hep),
				Params: p,
				Options: sim.Options{
					Iterations:      iters,
					MissionTime:     d.MissionTime,
					Seed:            d.Seed,
					Confidence:      d.Confidence,
					Bias:            o.Bias,
					TargetHalfWidth: o.TargetHalfWidth,
				},
				Shards: shardCount,
			})
		}
	}

	workers, err := shard.SpawnLocal(procs)
	if err != nil {
		return err
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()

	start := time.Now()
	results, err := sweep.MonteCarlo(points, workers, nil)
	if err != nil {
		return fmt.Errorf("repro: full sweep: %w", err)
	}
	total := time.Since(start)

	title := fmt.Sprintf("Paper-scale sweep: %d iterations/point, %d shards/point pipelined over %d local worker processes",
		iters, shardCount, procs)
	if o.TargetHalfWidth > 0 {
		title = fmt.Sprintf("Paper-scale sweep: adaptive to half-width %.3g (cap %d iterations/point), %d shards/wave pipelined over %d local worker processes",
			o.TargetHalfWidth, iters, shardCount, procs)
	}
	t := report.NewTable(title,
		"policy", "hep", "availability", "nines", "ci half-width", "iters", "done at s")
	var totalIters int64
	for i, r := range results {
		pt := points[i]
		p := pt.Params
		totalIters += int64(r.Summary.Iterations)
		t.AddRow(
			p.Policy.String(),
			fmt.Sprintf("%g", p.HEP),
			fmt.Sprintf("%.9f", r.Summary.Availability),
			report.F3(r.Summary.Nines),
			report.E(r.Summary.HalfWidth),
			fmt.Sprintf("%d", r.Summary.Iterations),
			fmt.Sprintf("%.2f", r.Done.Seconds()),
		)
	}
	t.AddNote("lambda %g, mission %.3g h, seed %d, %d-disk arrays; pipelined summaries are bit-identical to standalone runs",
		lambda, d.MissionTime, d.Seed, 4)
	if o.Bias != 0 {
		var bs []string
		for i, r := range results {
			if r.Summary.Bias > 0 {
				bs = append(bs, fmt.Sprintf("%s x%.4g", points[i].Label, r.Summary.Bias))
			}
		}
		t.AddNote("failure-biased importance sampling (memoryless kernel): %s", strings.Join(bs, ", "))
	}
	t.AddNote("total wall %.2f s, %.2f Miter/s aggregate over the shared pool",
		total.Seconds(), float64(totalIters)/total.Seconds()/1e6)
	if _, err := t.WriteTo(out); err != nil {
		return err
	}
	return nil
}
