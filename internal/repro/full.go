package repro

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"herald/internal/report"
	"herald/internal/shard"
	"herald/internal/sim"
)

// Full runs the paper-scale evaluation sweep — every replacement
// policy crossed with the paper's HEP values, at 1e6 Monte-Carlo
// iterations per point (§V reports 99% confidence at that count) —
// sharded across all local cores via internal/shard worker processes.
// Any binary calling it must invoke shard.MaybeWorker at the top of
// main. Options scale it: MCIterations overrides the per-point count,
// Workers the worker-process count. The emitted table records the
// wall time and iteration throughput of every point, which is where
// the BENCH_*.json scale targets are measured.
func Full(o Options, out io.Writer) error {
	d := o.withDefaults()
	iters := o.MCIterations
	if iters <= 0 {
		iters = 1_000_000
	}
	procs := o.Workers
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	// Twice as many shards as workers keeps the tail balanced when one
	// worker lags.
	shardCount := 2 * procs

	const lambda = 1e-6
	policies := []sim.Policy{sim.Conventional, sim.AutoFailover, sim.DualParity}
	heps := []float64{0, 0.001, 0.01}

	workers, err := shard.SpawnLocal(procs)
	if err != nil {
		return err
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()

	t := report.NewTable(
		fmt.Sprintf("Paper-scale sweep: %d iterations/point, %d shards over %d local worker processes", iters, shardCount, procs),
		"policy", "hep", "availability", "nines", "ci half-width", "wall s", "Miter/s")
	for _, pol := range policies {
		for _, hep := range heps {
			p := sim.PaperDefaults(4, lambda, hep)
			p.Policy = pol
			opts := sim.Options{
				Iterations:  iters,
				MissionTime: d.MissionTime,
				Seed:        d.Seed,
				Confidence:  d.Confidence,
			}
			start := time.Now()
			s, err := shard.Run(shard.Config{
				Params:  p,
				Options: opts,
				Shards:  shardCount,
				Workers: workers,
			})
			if err != nil {
				return fmt.Errorf("repro: full sweep %s hep=%g: %w", pol, hep, err)
			}
			wall := time.Since(start)
			t.AddRow(
				pol.String(),
				fmt.Sprintf("%g", hep),
				fmt.Sprintf("%.9f", s.Availability),
				report.F3(s.Nines),
				report.E(s.HalfWidth),
				fmt.Sprintf("%.2f", wall.Seconds()),
				fmt.Sprintf("%.2f", float64(iters)/wall.Seconds()/1e6),
			)
		}
	}
	t.AddNote("lambda %g, mission %.3g h, seed %d, %d-disk arrays; sharded summaries are bit-identical to single-process runs",
		lambda, d.MissionTime, d.Seed, 4)
	if _, err := t.WriteTo(out); err != nil {
		return err
	}
	return nil
}
