package repro

import (
	"fmt"

	"herald/internal/dist"
	"herald/internal/model"
	"herald/internal/raid"
	"herald/internal/report"
	"herald/internal/sim"
	"herald/internal/stats"
	"herald/internal/sweep"
)

// mcRun executes one Monte-Carlo point with the experiment options.
func mcRun(p sim.ArrayParams, o Options, pointSeed uint64) (sim.Summary, error) {
	return sim.Run(p, sim.Options{
		Iterations:  o.MCIterations,
		MissionTime: o.MissionTime,
		Seed:        o.Seed ^ pointSeed*0x9e3779b97f4a7c15,
		Workers:     o.Workers,
		Confidence:  o.Confidence,
	})
}

// Fig4 reproduces the paper's Fig. 4: validation of the Markov model
// against Monte-Carlo simulation for a RAID5 (3+1) array across disk
// failure rates, at hep = 0.001 and hep = 0.01. The paper's check is
// that every Markov point falls within the MC confidence interval.
func Fig4(opts Options) (*report.Table, error) {
	o := opts.withDefaults()
	t := report.NewTable(
		"Fig. 4 — MC simulation vs Markov model, RAID5(3+1), exponential failures",
		"lambda", "hep", "MC nines", "MC CI +/-", "Markov nines", "Markov in CI")
	lambdas := sweep.Linspace(5e-7, 5.5e-6, 6)
	for _, hep := range []float64{0.001, 0.01} {
		for i, l := range lambdas {
			mc, err := mcRun(sim.PaperDefaults(4, l, hep), o, uint64(i)+uint64(hep*1e5))
			if err != nil {
				return nil, err
			}
			mk, err := model.Conventional(model.Paper(4, l, hep))
			if err != nil {
				return nil, err
			}
			within := mc.Interval().Contains(mk.Availability)
			ciNines := stats.Nines(mc.Availability-mc.HalfWidth) - mc.Nines
			if ciNines < 0 {
				ciNines = -ciNines
			}
			t.AddRow(report.E(l), report.F(hep),
				report.F3(mc.Nines), report.F3(ciNines),
				report.F3(mk.Nines()), report.B(within))
		}
	}
	t.AddNote("MC: %d iterations x %.0fh mission, %.0f%% confidence (paper: 1e6 iterations)",
		o.MCIterations, o.MissionTime, o.Confidence*100)
	return t, nil
}

// Fig5 reproduces the paper's Fig. 5: availability of a RAID5 (3+1)
// array versus human error probability, for the paper's four
// (failure rate, Weibull shape) pairs. The Monte-Carlo model runs the
// Weibull law; the Markov column is the exponential-rate analytic
// result for reference.
func Fig5(opts Options) (*report.Table, error) {
	o := opts.withDefaults()
	t := report.NewTable(
		"Fig. 5 — RAID5(3+1) availability vs hep, Weibull failures (MC) and exponential (Markov)",
		"lambda", "beta", "hep", "MC-Weibull nines", "Markov-exp nines")
	pairs := []struct{ rate, beta float64 }{
		{1.25e-6, 1.09}, {2.17e-6, 1.12}, {7.96e-6, 1.21}, {2.00e-5, 1.48},
	}
	for pi, pr := range pairs {
		for hi, hep := range []float64{0, 0.001, 0.01} {
			p := sim.PaperDefaults(4, pr.rate, hep)
			p.TTF = dist.WeibullFromMeanRate(pr.rate, pr.beta)
			mc, err := mcRun(p, o, uint64(pi*10+hi))
			if err != nil {
				return nil, err
			}
			mk, err := model.Conventional(model.Paper(4, pr.rate, hep))
			if err != nil {
				return nil, err
			}
			t.AddRow(report.E(pr.rate), report.F(pr.beta), report.F(hep),
				report.F3(mc.Nines), report.F3(mk.Nines()))
		}
	}
	t.AddNote("Weibull scale chosen so the MTTF equals 1/lambda (paper Fig. 5 pairs)")
	return t, nil
}

// Fig6 reproduces the paper's Fig. 6 (a-c): availability of RAID
// configurations with equivalent usable capacity — RAID1(1+1),
// RAID5(3+1), RAID5(7+1) fleets providing 21 disk units of usable
// capacity — versus hep, for failure rates 1e-5, 1e-6 and 1e-7.
func Fig6(opts Options) ([]*report.Table, error) {
	configs := []raid.Config{raid.R1Mirror, raid.R5Small, raid.R5Wide}
	capacity, err := raid.EquivalentCapacity(configs...)
	if err != nil {
		return nil, err
	}
	var tables []*report.Table
	panels := []struct {
		panel  string
		lambda float64
	}{
		{"a", 1e-5}, {"b", 1e-6}, {"c", 1e-7},
	}
	for _, pn := range panels {
		t := report.NewTable(
			fmt.Sprintf("Fig. 6%s — equal usable capacity (%d units), lambda=%s",
				pn.panel, capacity, report.E(pn.lambda)),
			"config", "arrays", "disks", "ERF",
			"nines hep=0", "nines hep=0.001", "nines hep=0.01")
		for _, cfg := range configs {
			fleet, err := raid.PlanFleet(cfg, capacity)
			if err != nil {
				return nil, err
			}
			row := []string{
				cfg.String(),
				fmt.Sprintf("%d", fleet.Count),
				fmt.Sprintf("%d", fleet.TotalDisks()),
				report.F3(cfg.ERF()),
			}
			for _, hep := range []float64{0, 0.001, 0.01} {
				res, err := model.Conventional(model.Paper(cfg.Disks(), pn.lambda, hep))
				if err != nil {
					return nil, err
				}
				fleetAvail := model.FleetAvailability(res.Availability, fleet.Count)
				row = append(row, report.F3(stats.Nines(fleetAvail)))
			}
			t.AddRow(row...)
		}
		t.AddNote("fleet availability = array availability ^ arrays (series composition)")
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig7 reproduces the paper's Fig. 7: availability of a RAID5 (3+1)
// array under the conventional replacement policy versus the automatic
// fail-over (delayed replacement) policy, at lambda = 1e-6.
func Fig7(opts Options) (*report.Table, error) {
	const lambda = 1e-6
	t := report.NewTable(
		"Fig. 7 — conventional vs automatic fail-over, RAID5(3+1), lambda=1e-06",
		"hep", "conventional nines", "delayed (fail-over) nines", "unavailability gain")
	for _, hep := range []float64{0, 0.001, 0.01} {
		conv, err := model.Conventional(model.Paper(4, lambda, hep))
		if err != nil {
			return nil, err
		}
		fo, err := model.Failover(model.PaperFailover(4, lambda, hep))
		if err != nil {
			return nil, err
		}
		gain := 1.0
		if fu := fo.Unavailability(); fu > 0 {
			gain = conv.Unavailability() / fu
		}
		t.AddRow(report.F(hep), report.F3(conv.Nines()), report.F3(fo.Nines()), report.F(gain))
	}
	t.AddNote("paper §V-D: fail-over buys ~2 orders of magnitude at hep=0.01")
	return t, nil
}

// Underestimation reproduces the headline claim: ignoring human
// errors underestimates unavailability by up to three orders of
// magnitude (263x in the paper's sweep). The table reports
// unavail(hep)/unavail(0) over the paper's failure-rate range.
func Underestimation(opts Options) (*report.Table, error) {
	t := report.NewTable(
		"Headline — downtime underestimation when ignoring human error, RAID5(3+1)",
		"lambda", "hep", "unavail(hep)", "unavail(0)", "ratio")
	maxRatio := 0.0
	maxAt := ""
	for _, l := range []float64{1.25e-6, 2.17e-6, 7.96e-6, 2.00e-5} {
		base, err := model.Conventional(model.Paper(4, l, 0))
		if err != nil {
			return nil, err
		}
		for _, hep := range []float64{0.001, 0.01} {
			ratio, err := model.UnderestimationRatio(model.Paper(4, l, hep))
			if err != nil {
				return nil, err
			}
			withHE, err := model.Conventional(model.Paper(4, l, hep))
			if err != nil {
				return nil, err
			}
			if ratio > maxRatio {
				maxRatio = ratio
				maxAt = fmt.Sprintf("lambda=%s hep=%s", report.E(l), report.F(hep))
			}
			t.AddRow(report.E(l), report.F(hep),
				report.E(withHE.Unavailability()), report.E(base.Unavailability()),
				report.F(ratio))
		}
	}
	t.AddNote("max ratio %.0fx at %s (paper: up to 263x)", maxRatio, maxAt)
	return t, nil
}

// Ablation sweeps the interpretation knobs DESIGN.md §3 calls out:
// the post-undo resync phase and the two Fig. 3 service branches, plus
// the sensitivity of the fail-over gain to muCH.
func Ablation(opts Options) (*report.Table, error) {
	const lambda, hep = 1e-6, 0.01
	t := report.NewTable(
		"Ablation — interpretation knobs at lambda=1e-06, hep=0.01",
		"variant", "nines", "delta vs default")
	base, err := model.Conventional(model.Paper(4, lambda, hep))
	if err != nil {
		return nil, err
	}
	add := func(name string, nines float64) {
		t.AddRow(name, report.F3(nines), report.F3(nines-base.Nines()))
	}
	add("conventional (default: resync after undo)", base.Nines())

	lit := model.Paper(4, lambda, hep)
	lit.ResyncAfterUndo = false
	litRes, err := model.Conventional(lit)
	if err != nil {
		return nil, err
	}
	add("conventional, literal Fig.2 (no resync)", litRes.Nines())

	fo, err := model.Failover(model.PaperFailover(4, lambda, hep))
	if err != nil {
		return nil, err
	}
	add("fail-over (full Fig.3)", fo.Nines())

	reduced := model.PaperFailover(4, lambda, hep)
	reduced.InstallAsSpare = false
	reduced.DownAltService = false
	foRed, err := model.Failover(reduced)
	if err != nil {
		return nil, err
	}
	add("fail-over, reduced (MC discipline)", foRed.Nines())

	for _, muCH := range []float64{0.1, 1, 10} {
		p := model.PaperFailover(4, lambda, hep)
		p.MuCH = muCH
		res, err := model.Failover(p)
		if err != nil {
			return nil, err
		}
		add(fmt.Sprintf("fail-over, muCH=%g", muCH), res.Nines())
	}
	t.AddNote("delta is in nines; positive means higher availability than the default conventional model")
	return t, nil
}
