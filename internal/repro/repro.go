// Package repro regenerates every table and figure of the paper's
// evaluation section (§V) plus its headline claims, as textual tables.
// Each experiment is addressable by the paper's figure number; see
// DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
// paper-vs-measured record.
package repro

import (
	"fmt"
	"io"

	"herald/internal/report"
)

// Options scales the Monte-Carlo workload. The paper runs 1e6
// iterations; the defaults here are laptop-scale and the CLIs accept
// the full counts.
type Options struct {
	// MCIterations is the per-point Monte-Carlo iteration count.
	MCIterations int
	// MissionTime is the per-iteration simulated horizon in hours.
	MissionTime float64
	// Seed drives all simulations.
	Seed uint64
	// Confidence is the CI level (default 0.99 as in the paper).
	Confidence float64
	// Workers caps simulation parallelism (0 = GOMAXPROCS).
	Workers int
	// TargetHalfWidth, when positive, makes the paper-scale sweep
	// (Full) adaptive: each point stops at this CI half-width instead
	// of running the full MCIterations count.
	TargetHalfWidth float64
	// Bias turns on failure-biased importance sampling for the
	// paper-scale sweep (Full): sim.BiasAuto or a finite factor >= 1
	// (0 = off). The sweep's configurations are all-exponential, so
	// the memoryless kernel the biasing needs always resolves.
	Bias float64
}

// Defaults returns laptop-scale options: 4000 iterations over a
// 1e6-hour mission at 99% confidence.
func Defaults() Options {
	return Options{
		MCIterations: 4000,
		MissionTime:  1e6,
		Seed:         20170327, // DATE'17 conference date
		Confidence:   0.99,
	}
}

func (o Options) withDefaults() Options {
	d := Defaults()
	if o.MCIterations > 0 {
		d.MCIterations = o.MCIterations
	}
	if o.MissionTime > 0 {
		d.MissionTime = o.MissionTime
	}
	if o.Seed != 0 {
		d.Seed = o.Seed
	}
	if o.Confidence > 0 {
		d.Confidence = o.Confidence
	}
	if o.Workers > 0 {
		d.Workers = o.Workers
	}
	return d
}

// Experiment names accepted by Run.
const (
	ExpFig4            = "4"
	ExpFig5            = "5"
	ExpFig6            = "6"
	ExpFig7            = "7"
	ExpUnderestimation = "underestimation"
	ExpAblation        = "ablation"
	ExpSensitivity     = "sensitivity"
	// ExpUndoLaws is a beyond-the-paper experiment: multi-mode
	// (hyper-exponential) and lognormal human-error undo latencies
	// against the paper's exponential assumption. See UndoLaws.
	ExpUndoLaws = "undo-laws"
)

// All lists every experiment id in presentation order.
func All() []string {
	return []string{ExpFig4, ExpFig5, ExpFig6, ExpFig7, ExpUnderestimation, ExpAblation, ExpSensitivity, ExpUndoLaws}
}

// Run executes one experiment by id and returns its tables.
func Run(id string, o Options) ([]*report.Table, error) {
	switch id {
	case ExpFig4:
		t, err := Fig4(o)
		return wrap(t, err)
	case ExpFig5:
		t, err := Fig5(o)
		return wrap(t, err)
	case ExpFig6:
		return Fig6(o)
	case ExpFig7:
		t, err := Fig7(o)
		return wrap(t, err)
	case ExpUnderestimation:
		t, err := Underestimation(o)
		return wrap(t, err)
	case ExpAblation:
		t, err := Ablation(o)
		return wrap(t, err)
	case ExpSensitivity:
		t, err := Sensitivity(o)
		return wrap(t, err)
	case ExpUndoLaws:
		t, err := UndoLaws(o)
		return wrap(t, err)
	default:
		return nil, fmt.Errorf("repro: unknown experiment %q (have %v)", id, All())
	}
}

func wrap(t *report.Table, err error) ([]*report.Table, error) {
	if err != nil {
		return nil, err
	}
	return []*report.Table{t}, nil
}

// RunAll executes every experiment and writes the tables to w.
func RunAll(w io.Writer, o Options) error {
	for _, id := range All() {
		tables, err := Run(id, o)
		if err != nil {
			return fmt.Errorf("repro: experiment %s: %w", id, err)
		}
		for _, t := range tables {
			if _, err := t.WriteTo(w); err != nil {
				return err
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
	}
	return nil
}
