package repro

import (
	"fmt"
	"math"

	"herald/internal/dist"
	"herald/internal/report"
	"herald/internal/sim"
)

// UndoLaws runs the ROADMAP experiment on the shape of the
// human-error undo latency: the paper models the time to notice and
// undo a wrong replacement as Exponential(muHE), but the HRA
// literature it cites prefers multi-mode laws — an error is either
// caught within minutes or discovered hours later — and lognormal
// task-completion times. Every candidate law is mean-matched to the
// paper's 1/muHE so only the distribution shape varies.
//
// Each law is evaluated under both interpretations of the DU interval:
// the calibrated one (every undo followed by a consistency resync from
// backup, ResyncAfterUndo) and the literal Fig. 2 one (the undo alone
// ends the outage), because the resync variant's DU downtime is
// dominated by the tape restore and thus nearly shape-blind — the
// literal variant is where the exponential assumption actually gets
// tested.
//
// The failure rate is inflated to 1e-4/h (vs the paper's 1e-6) so
// laptop-scale iteration counts produce dense undo statistics; the
// comparison is about shape sensitivity, not the absolute level.
func UndoLaws(o Options) (*report.Table, error) {
	d := o.withDefaults()
	const (
		lambda = 1e-4
		hep    = 0.01
		muHE   = 1.0 // the paper's undo rate; every law matches mean 1/muHE
	)

	// lateRate solves w1/r1 + w2/r2 = 1/muHE for r2: the slow branch
	// rate that keeps a two-mode undo law mean-matched.
	lateRate := func(w1, r1, w2 float64) float64 {
		return w2 / (1/muHE - w1/r1)
	}
	// logMu yields the log-space location hitting mean 1/muHE at the
	// given log-space spread: mu = ln(1/muHE) - sigma^2/2.
	logMu := func(sigma float64) float64 {
		return math.Log(1/muHE) - sigma*sigma/2
	}

	laws := []struct {
		name string
		d    dist.Distribution
	}{
		{"exponential (paper)", dist.NewExponential(muHE)},
		{"erlang-2 (two-step undo)", dist.NewErlang(2, 2*muHE)},
		{"lognormal sigma=1", dist.NewLognormal(logMu(1), 1)},
		{"lognormal sigma=1.5", dist.NewLognormal(logMu(1.5), 1.5)},
		{"hyperexp 80% quick / 20% late", dist.NewHyperExponential(
			[]float64{0.8, 0.2}, []float64{4 * muHE, lateRate(0.8, 4*muHE, 0.2)})},
		{"hyperexp 95% quick / 5% very late", dist.NewHyperExponential(
			[]float64{0.95, 0.05}, []float64{2 * muHE, lateRate(0.95, 2*muHE, 0.05)})},
	}

	run := func(law dist.Distribution, resync bool) (sim.Summary, error) {
		p := sim.PaperDefaults(4, lambda, hep)
		p.HERecovery = law
		p.ResyncAfterUndo = resync
		return sim.Run(p, sim.Options{
			Iterations:  d.MCIterations,
			MissionTime: d.MissionTime,
			Seed:        d.Seed,
			Workers:     d.Workers,
			Confidence:  d.Confidence,
		})
	}

	t := report.NewTable(
		fmt.Sprintf("Human-error undo latency laws, mean-matched at %g h (conventional policy, lambda %g, hep %g)",
			1/muHE, lambda, hep),
		"undo law", "mean h", "cv^2",
		"nines (resync)", "delta", "nines (literal)", "delta", "DU h/iter (literal)")

	var expResync, expLiteral float64
	for i, law := range laws {
		sr, err := run(law.d, true)
		if err != nil {
			return nil, fmt.Errorf("repro: undo-laws %s (resync): %w", law.name, err)
		}
		sl, err := run(law.d, false)
		if err != nil {
			return nil, fmt.Errorf("repro: undo-laws %s (literal): %w", law.name, err)
		}
		if i == 0 {
			expResync, expLiteral = sr.Nines, sl.Nines
		}
		mean := law.d.Mean()
		cv2 := law.d.Var() / (mean * mean)
		t.AddRow(
			law.name,
			fmt.Sprintf("%.3f", mean),
			fmt.Sprintf("%.2f", cv2),
			report.F3(sr.Nines),
			fmt.Sprintf("%+.3f", sr.Nines-expResync),
			report.F3(sl.Nines),
			fmt.Sprintf("%+.3f", sl.Nines-expLiteral),
			fmt.Sprintf("%.3f", sl.MeanDowntimeDU),
		)
	}
	t.AddNote("%d iterations x %.3g h mission, seed %d; identical mean undo latency per row — only the law's shape varies. "+
		"'resync' follows each undo with the calibrated tape restore (its DU downtime is restore-dominated and nearly "+
		"shape-blind); 'literal' is the bare Fig. 2 walk-through where the undo law alone sets the outage. The "+
		"exponential rows run the memoryless kernel, the rest the generic clock kernel (sim.KernelAuto dispatch).",
		d.MCIterations, d.MissionTime, d.Seed)
	return t, nil
}
