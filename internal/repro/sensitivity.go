package repro

import (
	"fmt"

	"herald/internal/model"
	"herald/internal/report"
	"herald/internal/sensitivity"
)

// conventionalKnobs exposes the Fig. 2 parameters to the elasticity
// analysis.
func conventionalKnobs() []sensitivity.Parameter[model.Params] {
	return []sensitivity.Parameter[model.Params]{
		{Name: "lambda (disk failure rate)",
			Get: func(p model.Params) float64 { return p.Lambda },
			Set: func(p model.Params, v float64) model.Params { p.Lambda = v; return p }},
		{Name: "hep (human error probability)",
			Get: func(p model.Params) float64 { return p.HEP },
			Set: func(p model.Params, v float64) model.Params { p.HEP = v; return p }},
		{Name: "muDF (replacement service rate)",
			Get: func(p model.Params) float64 { return p.MuDF },
			Set: func(p model.Params, v float64) model.Params { p.MuDF = v; return p }},
		{Name: "muDDF (backup restore rate)",
			Get: func(p model.Params) float64 { return p.MuDDF },
			Set: func(p model.Params, v float64) model.Params { p.MuDDF = v; return p }},
		{Name: "muHE (undo service rate)",
			Get: func(p model.Params) float64 { return p.MuHE },
			Set: func(p model.Params, v float64) model.Params { p.MuHE = v; return p }},
		{Name: "lambdaCrash (pulled-disk crash rate)",
			Get: func(p model.Params) float64 { return p.LambdaCrash },
			Set: func(p model.Params, v float64) model.Params { p.LambdaCrash = v; return p }},
	}
}

// Sensitivity ranks the model parameters by unavailability elasticity
// in the failure-dominated (hep = 0+) and human-error-dominated
// (hep = 0.01) regimes — the designer's "what to fix first" table the
// paper's conclusion calls for.
func Sensitivity(opts Options) (*report.Table, error) {
	t := report.NewTable(
		"Sensitivity — unavailability elasticity d ln(U)/d ln(p), RAID5(3+1), lambda=1e-06",
		"parameter", "value", "elasticity @hep~0", "elasticity @hep=0.01")

	eval := func(p model.Params) (float64, error) {
		res, err := model.Conventional(p)
		if err != nil {
			return 0, err
		}
		return res.Unavailability(), nil
	}
	// hep must be nonzero for the knob to exist in the analysis; use a
	// vanishing value for the failure-dominated regime.
	lowRegime, err := sensitivity.Analyze(model.Paper(4, 1e-6, 1e-9), conventionalKnobs(), 0.01, eval)
	if err != nil {
		return nil, err
	}
	highRegime, err := sensitivity.Analyze(model.Paper(4, 1e-6, 0.01), conventionalKnobs(), 0.01, eval)
	if err != nil {
		return nil, err
	}
	low := map[string]sensitivity.Elasticity{}
	for _, e := range lowRegime {
		low[e.Parameter] = e
	}
	// Present in the high-regime importance order.
	for _, e := range highRegime {
		l, ok := low[e.Parameter]
		lowCell := "-"
		if ok {
			lowCell = fmt.Sprintf("%+.3f", l.Elasticity)
		}
		t.AddRow(e.Parameter, report.E(e.Value), lowCell, fmt.Sprintf("%+.3f", e.Elasticity))
	}
	t.AddNote("positive: parameter growth hurts availability; negative: invest here")
	t.AddNote("hep~0 column evaluated at hep=1e-9 so the human-error knobs remain defined")
	return t, nil
}
