package repro

import (
	"strconv"
	"strings"
	"testing"
)

// fast returns options small enough for unit tests.
func fast() Options {
	return Options{MCIterations: 200, MissionTime: 2e5, Seed: 99, Workers: 2}
}

func TestFig4ProducesValidation(t *testing.T) {
	tb, err := Fig4(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 { // 6 lambdas x 2 heps
		t.Fatalf("row count = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[5] != "yes" && row[5] != "no" {
			t.Fatalf("CI column = %q", row[5])
		}
	}
}

func TestFig5CoversPaperPairs(t *testing.T) {
	tb, err := Fig5(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 { // 4 pairs x 3 heps
		t.Fatalf("row count = %d", len(tb.Rows))
	}
	if !strings.Contains(tb.String(), "1.48") {
		t.Fatal("missing the steepest Weibull shape")
	}
}

func TestFig6RankingFlip(t *testing.T) {
	tables, err := Fig6(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("panel count = %d", len(tables))
	}
	// Panel (a), lambda = 1e-5: RAID1 leads at hep=0 and trails
	// RAID5(3+1) at hep=0.01 — the paper's §V-C flip.
	panelA := tables[0]
	nines := func(row int, col int) float64 {
		v, err := strconv.ParseFloat(panelA.Rows[row][col], 64)
		if err != nil {
			t.Fatalf("bad cell %q", panelA.Rows[row][col])
		}
		return v
	}
	const hep0Col, hep01Col = 4, 6
	r1Zero, r5Zero := nines(0, hep0Col), nines(1, hep0Col)
	if r1Zero <= r5Zero {
		t.Fatalf("hep=0: RAID1 %v should lead RAID5(3+1) %v", r1Zero, r5Zero)
	}
	r1HE, r5HE := nines(0, hep01Col), nines(1, hep01Col)
	if r1HE >= r5HE {
		t.Fatalf("hep=0.01: RAID1 %v should trail RAID5(3+1) %v", r1HE, r5HE)
	}
	// And RAID5(7+1) leads everything at hep=0.01 (lowest ERF).
	r5wHE := nines(2, hep01Col)
	if r5wHE <= r5HE || r5wHE <= r1HE {
		t.Fatalf("hep=0.01: RAID5(7+1) %v should lead (%v, %v)", r5wHE, r5HE, r1HE)
	}
}

func TestFig7FailoverGain(t *testing.T) {
	tb, err := Fig7(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("row count = %d", len(tb.Rows))
	}
	// At hep=0.01 the gain column should report roughly two orders of
	// magnitude (paper's §V-D).
	gain, err := strconv.ParseFloat(tb.Rows[2][3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if gain < 50 {
		t.Fatalf("fail-over gain = %v, want order(s) of magnitude", gain)
	}
}

func TestUnderestimationHeadline(t *testing.T) {
	tb, err := Underestimation(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("row count = %d", len(tb.Rows))
	}
	// The sweep must reach the paper's 263x order of magnitude.
	maxRatio := 0.0
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad ratio cell %q", row[4])
		}
		if v > maxRatio {
			maxRatio = v
		}
	}
	if maxRatio < 100 || maxRatio > 1000 {
		t.Fatalf("max underestimation ratio = %v; paper reports up to 263x", maxRatio)
	}
}

func TestAblationVariants(t *testing.T) {
	tb, err := Ablation(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 5 {
		t.Fatalf("row count = %d", len(tb.Rows))
	}
	out := tb.String()
	for _, want := range []string{"literal Fig.2", "fail-over", "muCH"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation missing %q", want)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	for _, id := range All() {
		tables, err := Run(id, fast())
		if err != nil {
			t.Fatalf("experiment %s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("experiment %s returned no tables", id)
		}
	}
	if _, err := Run("nope", fast()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunAllWritesEverything(t *testing.T) {
	var sb strings.Builder
	if err := RunAll(&sb, fast()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig. 4", "Fig. 5", "Fig. 6a", "Fig. 6b", "Fig. 6c", "Fig. 7", "Headline", "Ablation", "Sensitivity", "undo latency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RunAll output missing %q", want)
		}
	}
}

func TestSensitivityRanksHumanErrorKnobs(t *testing.T) {
	tb, err := Sensitivity(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 5 {
		t.Fatalf("row count = %d", len(tb.Rows))
	}
	out := tb.String()
	for _, want := range []string{"hep", "muDDF", "lambda"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sensitivity missing %q:\n%s", want, out)
		}
	}
	// The top-ranked (first) row in the human-error regime must be a
	// near-unit elasticity knob (lambda or hep).
	first := tb.Rows[0][0]
	if !strings.Contains(first, "lambda") && !strings.Contains(first, "hep") {
		t.Fatalf("unexpected top knob %q", first)
	}
}

func TestOptionsDefaults(t *testing.T) {
	d := Options{}.withDefaults()
	if d.MCIterations == 0 || d.MissionTime == 0 || d.Confidence == 0 || d.Seed == 0 {
		t.Fatalf("defaults incomplete: %+v", d)
	}
	custom := Options{MCIterations: 7, MissionTime: 5, Seed: 3, Confidence: 0.5, Workers: 2}.withDefaults()
	if custom.MCIterations != 7 || custom.MissionTime != 5 || custom.Seed != 3 ||
		custom.Confidence != 0.5 || custom.Workers != 2 {
		t.Fatalf("overrides lost: %+v", custom)
	}
}

func TestUndoLawsShape(t *testing.T) {
	tb, err := UndoLaws(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("row count = %d, want one per undo law", len(tb.Rows))
	}
	if tb.Rows[0][0] != "exponential (paper)" {
		t.Fatalf("first row %q is not the exponential baseline", tb.Rows[0][0])
	}
	// Every law is mean-matched: the mean column must read 1.000.
	for _, row := range tb.Rows {
		if row[1] != "1.000" {
			t.Fatalf("law %q has mean %s, want 1.000 (mean-matched)", row[0], row[1])
		}
	}
	// The baseline's deltas are zero by construction.
	if tb.Rows[0][4] != "+0.000" || tb.Rows[0][6] != "+0.000" {
		t.Fatalf("baseline deltas = %s / %s", tb.Rows[0][4], tb.Rows[0][6])
	}
	// Shape variety: the cv^2 column must span below and above the
	// exponential's 1.
	if tb.Rows[1][2] != "0.50" {
		t.Fatalf("erlang-2 cv^2 = %s", tb.Rows[1][2])
	}
	if !strings.Contains(tb.String(), "10.50") {
		t.Fatal("missing the heaviest-tailed hyperexp row")
	}
}
