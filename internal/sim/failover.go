package sim

// foPhase enumerates the automatic fail-over state machine phases,
// mirroring the paper's Fig. 3 states (the with-spare unavailable
// variants DU1/DU2/EXP2 arise there only through service branches the
// simulator's single-technician discipline does not take; see
// DESIGN.md §3.2).
type foPhase int

const (
	phOP     foPhase = iota // n members up, hot spare present
	phEXP1                  // 1 failed, on-line rebuild onto spare
	phOPns                  // n members up, spare slot empty
	phEXPns1                // 1 failed, no spare
	phEXPns2                // healthy member wrongly pulled, no spare (up, degraded)
	phDUns1                 // 1 failed + 1 pulled: unavailable
	phDUns2                 // 2 pulled: unavailable
)

// failover walks one array lifetime under the automatic
// fail-over (delayed replacement) policy: the hot spare absorbs a
// failure with no human involvement; the technician only touches the
// array to replenish the spare (OPns) or when no spare is left
// (EXPns1), which is where human error opportunities live.
//
// The up-phases (OP, EXP1, OPns, EXPns1, EXPns2) exclude at most one
// disk from their next-failure query, so they share one cached
// two-min scan (cachedNextFailure) that survives phase transitions
// and is recomputed only after a clock actually changes — the DU
// phases, which exclude two disks, keep the direct scans.
func (sc *scratch) failover(mission float64) iterStats {
	p, r := sc.p, &sc.src
	n := p.Disks
	fail := sc.fail
	sc.ttf.sampleN(r, fail)
	var st iterStats
	t := 0.0
	phase := phOP
	fi := noDisk // failed member slot
	pi := noDisk // wrongly pulled member slot
	pi2 := noDisk

	for t < mission {
		switch phase {
		case phOP:
			// Phase-fused benign cycle: OP -> EXP1 -> OPns -> OP is by
			// far the dominant path, so it runs in one loop with no
			// phase dispatch between its stages. Exponential holding
			// times inline (the sampler's memoryless fast path,
			// hoisted); any branch off the benign path sets the phase
			// and falls back to the dispatcher. Minima are explicit
			// comparisons throughout the walker: math.Min is a function
			// call (not an intrinsic here) and its NaN/±0 handling buys
			// nothing for event times.
			for {
				idx, tFail := sc.cachedNextFailure(t, noDisk)
				if tFail >= mission {
					return st
				}
				st.events.Failures++
				fi, t = idx, tFail

				// EXP1: on-line rebuild onto the hot spare; no human
				// involved.
				rebEnd := t
				if sc.rebuild.rate > 0 {
					rebEnd += r.ExpFloat64() * sc.rebuild.invRate
				} else {
					rebEnd += sc.rebuild.sampleSlow(r)
				}
				si, tSecond := sc.cachedNextFailure(t, fi)
				if rebEnd >= mission && tSecond >= mission {
					return st // exposed but up
				}
				if tSecond < rebEnd {
					st.events.Failures++
					st.events.DoubleFailures++
					t = sc.dataLoss(&st, tSecond, mission, fi, si)
					// Restore rebuilds the full configuration, spare
					// included (Fig. 3: DL --muDDF--> OP); the cycle
					// restarts fused.
					fi = noDisk
					continue
				}
				// Spare now carries the failed member's data.
				fail[fi] = rebEnd + sc.ttf.sample(r)
				sc.clocksChanged()
				fi, t = noDisk, rebEnd

				// OPns: technician replenishes the spare slot; a wrong
				// pull here hits a fully redundant array (degraded,
				// still up).
				swapEnd := t
				if sc.swap.rate > 0 {
					swapEnd += r.ExpFloat64() * sc.swap.invRate
				} else {
					swapEnd += sc.swap.sampleSlow(r)
				}
				idx, tFail = sc.cachedNextFailure(t, noDisk)
				if swapEnd >= mission && tFail >= mission {
					return st
				}
				if tFail < swapEnd {
					st.events.Failures++
					fi, t, phase = idx, tFail, phEXPns1
					break
				}
				t = swapEnd
				if !sc.hepTrial(r) {
					continue // spare slot replenished: benign cycle done
				}
				st.events.HumanErrors++
				pi = pickOther(r, n, noDisk, noDisk)
				phase = phEXPns2
				break
			}

		case phOPns:
			// Mid-cycle entry only (after a restore or a no-spare
			// service completion): one swap step, then the benign
			// cycle re-enters the fused phOP loop.
			swapEnd := t + sc.swap.sample(r)
			idx, tFail := sc.cachedNextFailure(t, noDisk)
			if swapEnd >= mission && tFail >= mission {
				return st
			}
			if tFail < swapEnd {
				st.events.Failures++
				fi, t, phase = idx, tFail, phEXPns1
				continue
			}
			t = swapEnd
			if !sc.hepTrial(r) {
				phase = phOP // spare slot replenished
				continue
			}
			st.events.HumanErrors++
			pi = pickOther(r, n, noDisk, noDisk)
			phase = phEXPns2

		case phEXPns1:
			// Exposed with no spare: direct replace-and-rebuild
			// service, racing a second member failure.
			svcEnd := t + sc.repair.sample(r)
			si, tSecond := sc.cachedNextFailure(t, fi)
			if svcEnd >= mission && tSecond >= mission {
				return st
			}
			if tSecond < svcEnd {
				st.events.Failures++
				st.events.DoubleFailures++
				t = sc.dataLoss(&st, tSecond, mission, fi, si)
				fi, phase = noDisk, phOPns // DLns --muDDF--> OPns
				continue
			}
			t = svcEnd
			if !sc.hepTrial(r) {
				fail[fi] = t + sc.ttf.sample(r)
				sc.clocksChanged()
				fi, phase = noDisk, phOPns
				continue
			}
			st.events.HumanErrors++
			pi = pickOther(r, n, fi, noDisk)
			phase = phDUns1

		case phEXPns2:
			// A healthy member is out; data still available (n-1 of n).
			attemptEnd := t + sc.herec.sample(r)
			crashAt := t + expInv(r, sc.crashInv)
			idx, tFail := sc.cachedNextFailure(t, pi)
			next := attemptEnd
			if crashAt < next {
				next = crashAt
			}
			if tFail < next {
				next = tFail
			}
			if next >= mission {
				return st
			}
			switch next {
			case tFail:
				// Failure on top of the pull: unavailable.
				st.events.Failures++
				fi, t, phase = idx, tFail, phDUns1
			case crashAt:
				// Pulled disk died while out: it is now simply a
				// failed member with no spare.
				st.events.Crashes++
				fail[pi] = crashAt // expired clock; treated as failed
				sc.clocksChanged()
				fi, pi, t, phase = pi, noDisk, crashAt, phEXPns1
			default:
				st.events.UndoAttempts++
				t = attemptEnd
				if sc.hepTrial(r) {
					// Second error pulls another healthy member.
					st.events.HumanErrors++
					pi2 = pickOther(r, n, pi, noDisk)
					phase = phDUns2
					continue
				}
				// Re-seat; the new disk becomes the hot spare
				// (Fig. 3: EXPns2 --(1-hep)muHE--> OP).
				pi, phase = noDisk, phOP
			}

		case phDUns1:
			// One failed + one pulled: unavailable until undone.
			duStart := t
			cur := t
			for phase == phDUns1 {
				attemptEnd := cur + sc.herec.sample(r)
				crashAt := cur + expInv(r, sc.crashInv)
				oi, tOther := nextFailure(fail, cur, fi, pi)
				next := attemptEnd
				if crashAt < next {
					next = crashAt
				}
				if tOther < next {
					next = tOther
				}
				if next >= mission {
					st.downDU += mission - duStart
					return st
				}
				switch next {
				case tOther:
					// Third member lost: catastrophic, restore all.
					st.events.Failures++
					st.events.DoubleFailures++
					st.downDU += tOther - duStart
					t = sc.dataLoss(&st, tOther, mission, fi, oi)
					fail[pi] = t + sc.ttf.sample(r) // re-seated fresh by the restore service
					sc.clocksChanged()
					fi, pi, phase = noDisk, noDisk, phOPns
				case crashAt:
					// Pulled disk crashed: double loss, restore.
					st.events.Crashes++
					st.downDU += crashAt - duStart
					t = sc.dataLoss(&st, crashAt, mission, fi, pi)
					fi, pi, phase = noDisk, noDisk, phOPns
				default:
					st.events.UndoAttempts++
					if sc.hepTrial(r) {
						st.events.HumanErrors++
						cur = attemptEnd
						continue
					}
					// Pulled disk re-seated; failed member remains.
					st.downDU += attemptEnd - duStart
					t, pi, phase = attemptEnd, noDisk, phEXPns1
				}
			}

		case phDUns2:
			// Two healthy members pulled (double human error).
			duStart := t
			cur := t
			for phase == phDUns2 {
				attemptEnd := cur + sc.herec.sample(r)
				crashAt := cur + expInv(r, sc.crash2Inv)
				oi, tOther := nextFailure(fail, cur, pi, pi2)
				next := attemptEnd
				if crashAt < next {
					next = crashAt
				}
				if tOther < next {
					next = tOther
				}
				if next >= mission {
					st.downDU += mission - duStart
					return st
				}
				switch next {
				case tOther:
					// Failure with two members out: catastrophic.
					st.events.Failures++
					st.events.DoubleFailures++
					st.downDU += tOther - duStart
					t = sc.dataLoss(&st, tOther, mission, oi, pi)
					fail[pi2] = t + sc.ttf.sample(r)
					sc.clocksChanged()
					fi, pi, pi2, phase = noDisk, noDisk, noDisk, phOPns
				case crashAt:
					// One of the two pulled disks crashed.
					st.events.Crashes++
					st.downDU += crashAt - duStart
					fail[pi2] = crashAt
					sc.clocksChanged()
					fi, pi2 = pi2, noDisk
					t, phase = crashAt, phDUns1
				default:
					st.events.UndoAttempts++
					if sc.hepTrial(r) {
						st.events.HumanErrors++
						cur = attemptEnd
						continue
					}
					// One pull undone; still one member out (up again).
					st.downDU += attemptEnd - duStart
					t, pi2, phase = attemptEnd, noDisk, phEXPns2
				}
			}
		}
	}
	return st
}
