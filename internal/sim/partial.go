package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"herald/internal/stats"
)

// This file is the partitioning layer of the Monte-Carlo engine: it
// decomposes a run's iteration range [0, N) into canonical
// "accumulation cells", exposes RunRange to compute the cells of any
// aligned sub-range, and Summarize to fold cell partials back into a
// Summary. The decomposition is a pure function of N — never of the
// worker count, shard count or schedule — so every partitioning of a
// run produces the same floating-point merge tree and hence a
// bit-identical Summary. internal/shard distributes RunRange calls
// across processes and machines on top of this contract.

const (
	// maxCells caps the canonical cell count per run: enough
	// parallelism grain for hundreds of cores without bloating the
	// partial set a sharded run ships over the wire.
	maxCells = 256
	// minCellIterations floors the cell width so tiny runs do not
	// shatter into per-iteration partials.
	minCellIterations = 64
)

// Range is a half-open iteration index interval [Start, End).
type Range struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Len returns the number of iterations in the range.
func (r Range) Len() int { return r.End - r.Start }

// CellSize returns the canonical accumulation-cell width for a run of
// n iterations. It depends on n alone, which is what makes sharded
// results reproducible: any partitioning of [0, n) along cell
// boundaries yields the same cells, accumulated in the same iteration
// order and merged in the same index order.
func CellSize(n int) int {
	c := (n + maxCells - 1) / maxCells
	if c < minCellIterations {
		c = minCellIterations
	}
	return c
}

// Cells returns the canonical cell decomposition of [0, n).
func Cells(n int) []Range {
	return cellsIn(n, 0, n)
}

// cellsIn returns the canonical cells of a run of n iterations that
// tile [start, end). The bounds must be cell-aligned.
func cellsIn(n, start, end int) []Range {
	cs := CellSize(n)
	out := make([]Range, 0, (end-start+cs-1)/cs)
	for lo := start; lo < end; lo += cs {
		hi := lo + cs
		if hi > end {
			hi = end
		}
		out = append(out, Range{Start: lo, End: hi})
	}
	return out
}

// Partial carries the mergeable outcome of one contiguous iteration
// range: the availability and downtime accumulators, the event census,
// and the optional downtime histogram, plus the seed/range metadata a
// coordinator needs to verify exactly-once coverage. It serializes to
// JSON, which is how shard workers return results and how checkpoints
// persist completed shards.
type Partial struct {
	// Start and End delimit the half-open iteration range [Start, End).
	Start int `json:"start"`
	End   int `json:"end"`
	// Seed and MissionTime echo the options the range was run under;
	// Summarize rejects partials from a different configuration.
	Seed        uint64  `json:"seed"`
	MissionTime float64 `json:"mission_time"`
	// Avail accumulates per-iteration availability; DownDU and DownDL
	// accumulate per-iteration downtime hours by cause.
	Avail  stats.Accumulator `json:"avail"`
	DownDU stats.Accumulator `json:"down_du"`
	DownDL stats.Accumulator `json:"down_dl"`
	// DownIters counts the iterations of the range with nonzero
	// downtime — the informative observations of the heavily
	// zero-inflated availability stream. The adaptive stopping rule's
	// Student-t safeguard (stats.StopRule) takes its effective sample
	// size from this count.
	DownIters int64 `json:"down_iters,omitempty"`
	// Events is the incident census of the range.
	Events EventCounts `json:"events"`
	// Hist is the per-iteration downtime histogram when
	// Options.HistogramBins was set; nil otherwise.
	Hist *stats.Histogram `json:"hist,omitempty"`
	// Bias is the concrete failure-inflation factor the range sampled
	// under (> 0 exactly for importance-sampled ranges, including an
	// auto request that resolved to 1); 0 for unbiased ranges.
	// Summarize requires it to be consistent across a run's partials —
	// auto resolution happens once, in prepareRange, never per worker.
	Bias float64 `json:"bias,omitempty"`
	// WAvail/WDownDU/WDownDL are the weighted counterparts of the
	// accumulators above, carrying each iteration's importance weight
	// exp(logW). Set exactly when Bias > 0; the unweighted accumulators
	// are still filled (they describe the raw proposal-law stream and
	// keep the merge-tree contract uniform).
	WAvail  *stats.WeightedAccumulator `json:"w_avail,omitempty"`
	WDownDU *stats.WeightedAccumulator `json:"w_down_du,omitempty"`
	WDownDL *stats.WeightedAccumulator `json:"w_down_dl,omitempty"`
}

// histMaxFor returns the downtime histogram's upper edge for the run
// options (default: 1% of the mission time).
func histMaxFor(o Options) float64 {
	if o.HistogramMaxHours > 0 {
		return o.HistogramMaxHours
	}
	return o.MissionTime / 100
}

// runCell walks every iteration of one canonical cell sequentially and
// returns its partial. Sequential per-cell accumulation plus
// per-iteration stream reseeding makes the partial a pure function of
// (params, options, cell) — independent of which worker, process or
// machine computed it.
func (sc *scratch) runCell(c Range, opts Options, histMax float64) Partial {
	pt := Partial{Start: c.Start, End: c.End, Seed: opts.Seed, MissionTime: opts.MissionTime, Bias: opts.Bias}
	if opts.HistogramBins > 0 {
		pt.Hist = stats.NewHistogram(0, histMax, opts.HistogramBins)
	}
	if opts.Bias > 0 {
		pt.WAvail = &stats.WeightedAccumulator{}
		pt.WDownDU = &stats.WeightedAccumulator{}
		pt.WDownDL = &stats.WeightedAccumulator{}
	}
	for it := c.Start; it < c.End; it++ {
		is := sc.iterate(opts.Seed, it, opts.MissionTime)
		down := is.downDU + is.downDL
		av := 1 - down/opts.MissionTime
		pt.Avail.Add(av)
		pt.DownDU.Add(is.downDU)
		pt.DownDL.Add(is.downDL)
		if down > 0 {
			pt.DownIters++
		}
		pt.Events.Merge(is.events)
		if pt.Hist != nil {
			pt.Hist.Add(down)
		}
		if pt.WAvail != nil {
			w := math.Exp(is.logW)
			pt.WAvail.Add(av, w)
			pt.WDownDU.Add(is.downDU, w)
			pt.WDownDL.Add(is.downDL, w)
		}
	}
	return pt
}

// prepareRange validates a range execution and returns the resolved
// options and the canonical cells of [start, end).
func prepareRange(p *ArrayParams, o *Options, start, end int) (Options, []Range, error) {
	if err := p.Validate(); err != nil {
		return Options{}, nil, err
	}
	if err := o.Validate(); err != nil {
		return Options{}, nil, err
	}
	if start < 0 || end > o.Iterations || start >= end {
		return Options{}, nil, fmt.Errorf("sim: range [%d,%d) outside run [0,%d)", start, end, o.Iterations)
	}
	cs := CellSize(o.Iterations)
	if start%cs != 0 || (end%cs != 0 && end != o.Iterations) {
		return Options{}, nil, fmt.Errorf("sim: range [%d,%d) not aligned to the %d-iteration cells of a %d-iteration run",
			start, end, cs, o.Iterations)
	}
	// Resolve the kernel once, up front: a forced-but-impossible
	// specialization fails the run here rather than inside a worker.
	_, useMem, err := resolveKernel(p, o.Kernel)
	if err != nil {
		return Options{}, nil, err
	}
	opts := o.withDefaults()
	// Resolve the bias factor once, too: the concrete factor is fixed
	// here (auto picks from the rates) and echoed into every Partial,
	// so all workers — local goroutines or remote shards running the
	// same resolved options — sample under the identical measure.
	opts.Bias = 0
	if o.Biased() {
		if !useMem {
			return Options{}, nil, fmt.Errorf(
				"sim: bias factor %v requires the memoryless kernel (exponential laws throughout; kernel %v resolved generic)",
				o.Bias, o.Kernel)
		}
		b, err := ResolveBias(*p, *o)
		if err != nil {
			return Options{}, nil, err
		}
		opts.Bias = b
	}
	return opts, cellsIn(o.Iterations, start, end), nil
}

// ErrStopped is returned by RunRangeStream when the stop channel
// closed before every cell of the range was delivered.
var ErrStopped = errors.New("sim: run stopped before completing its range")

// RunRangeStream executes the iterations of [start, end) like RunRange
// but delivers each cell's Partial on out as soon as its cell
// completes — in completion order, not index order — so a consumer can
// merge and act on partials while later cells still run. The adaptive
// runs are built on this: the stopping rule is re-checked as partials
// land instead of waiting on a barrier merge.
//
// out is closed before RunRangeStream returns. A close of stop (nil
// for non-cancellable runs) abandons cells not yet started and
// undelivered results; RunRangeStream then returns ErrStopped. Cell
// contents are identical to RunRange's — only the delivery order
// varies with the schedule.
func RunRangeStream(p ArrayParams, o Options, start, end int, out chan<- Partial, stop <-chan struct{}) error {
	defer close(out)
	opts, cells, err := prepareRange(&p, &o, start, end)
	if err != nil {
		return err
	}
	histMax := histMaxFor(opts)
	workers := opts.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	var next, delivered atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newScratch(&p, opts.Kernel, opts.noBatch, opts.Bias)
			for {
				select {
				case <-stop:
					return
				default:
				}
				ci := int(next.Add(1)) - 1
				if ci >= len(cells) {
					return
				}
				pt := sc.runCell(cells[ci], opts, histMax)
				select {
				case out <- pt:
					delivered.Add(1)
				case <-stop:
					return
				}
			}
		}()
	}
	wg.Wait()
	if int(delivered.Load()) != len(cells) {
		return ErrStopped
	}
	return nil
}

// RunRange executes the iterations of [start, end) and returns one
// Partial per canonical cell, in cell order. The bounds must lie on
// cell boundaries of the full run (CellSize(o.Iterations)); end ==
// o.Iterations is always a valid boundary. Cells are computed in
// parallel across Options.Workers goroutines, but each cell is
// accumulated sequentially, so the returned partials do not depend on
// the schedule.
//
// The cell contents are identical to RunRangeStream's; RunRange keeps
// its own indexed assembly (no channel) so the barrier path stays as
// cheap as it was before streaming existed.
func RunRange(p ArrayParams, o Options, start, end int) ([]Partial, error) {
	opts, cells, err := prepareRange(&p, &o, start, end)
	if err != nil {
		return nil, err
	}
	histMax := histMaxFor(opts)
	parts := make([]Partial, len(cells))
	workers := opts.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers == 1 {
		// Single-worker runs walk the cells inline: no goroutine,
		// no atomic cursor. Same scratch, same cell order, so the
		// output is bit-identical to the concurrent path.
		sc := newScratch(&p, opts.Kernel, opts.noBatch, opts.Bias)
		for ci := range cells {
			parts[ci] = sc.runCell(cells[ci], opts, histMax)
		}
		return parts, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newScratch(&p, opts.Kernel, opts.noBatch, opts.Bias)
			for {
				ci := int(next.Add(1)) - 1
				if ci >= len(cells) {
					return
				}
				parts[ci] = sc.runCell(cells[ci], opts, histMax)
			}
		}()
	}
	wg.Wait()
	return parts, nil
}

// Summarize folds partials covering [0, o.Iterations) into a Summary.
// It enforces exactly-once merging: the partials, sorted by Start,
// must tile the run with no gap, overlap or duplicate, each must carry
// exactly End-Start observations, and each must have been produced
// under the same seed and mission time. Partials produced along the
// canonical cell boundaries (RunRange output, in any grouping) fold in
// a fixed order, so the Summary is bit-identical however the run was
// partitioned.
func Summarize(o Options, parts []Partial) (Summary, error) {
	if err := o.Validate(); err != nil {
		return Summary{}, err
	}
	opts := o.withDefaults()
	if len(parts) == 0 {
		return Summary{}, fmt.Errorf("sim: no partials to summarize")
	}
	sorted := append([]Partial(nil), parts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].End < sorted[j].End
	})

	var acc, du, dl stats.Accumulator
	var wav, wdu, wdl stats.WeightedAccumulator
	var events EventCounts
	var downIters int64
	var hist *stats.Histogram
	biased := opts.Biased()
	biasFactor := 0.0
	cursor := 0
	for i := range sorted {
		pt := &sorted[i]
		if pt.Seed != opts.Seed {
			return Summary{}, fmt.Errorf("sim: partial [%d,%d) ran under seed %d, want %d",
				pt.Start, pt.End, pt.Seed, opts.Seed)
		}
		if pt.MissionTime != opts.MissionTime {
			return Summary{}, fmt.Errorf("sim: partial [%d,%d) ran under mission time %v, want %v",
				pt.Start, pt.End, pt.MissionTime, opts.MissionTime)
		}
		if pt.End <= pt.Start || pt.End > opts.Iterations {
			return Summary{}, fmt.Errorf("sim: invalid partial range [%d,%d)", pt.Start, pt.End)
		}
		if pt.Start < cursor {
			return Summary{}, fmt.Errorf("sim: partial [%d,%d) duplicates or overlaps iterations before %d",
				pt.Start, pt.End, cursor)
		}
		if pt.Start > cursor {
			return Summary{}, fmt.Errorf("sim: iterations [%d,%d) missing from partials", cursor, pt.Start)
		}
		if got, want := pt.Avail.N(), int64(pt.End-pt.Start); got != want {
			return Summary{}, fmt.Errorf("sim: partial [%d,%d) carries %d observations, want %d",
				pt.Start, pt.End, got, want)
		}
		if biased {
			if pt.Bias <= 0 || pt.WAvail == nil || pt.WDownDU == nil || pt.WDownDL == nil {
				return Summary{}, fmt.Errorf("sim: partial [%d,%d) carries no importance weights for a biased run",
					pt.Start, pt.End)
			}
			if biasFactor == 0 {
				biasFactor = pt.Bias
			} else if pt.Bias != biasFactor {
				return Summary{}, fmt.Errorf("sim: partial [%d,%d) sampled under bias %v, want %v",
					pt.Start, pt.End, pt.Bias, biasFactor)
			}
			if got, want := pt.WAvail.N(), int64(pt.End-pt.Start); got != want {
				return Summary{}, fmt.Errorf("sim: partial [%d,%d) carries %d weighted observations, want %d",
					pt.Start, pt.End, got, want)
			}
			wav.Merge(pt.WAvail)
			wdu.Merge(pt.WDownDU)
			wdl.Merge(pt.WDownDL)
		} else if pt.Bias != 0 {
			return Summary{}, fmt.Errorf("sim: partial [%d,%d) sampled under bias %v in an unbiased run",
				pt.Start, pt.End, pt.Bias)
		}
		acc.Merge(&pt.Avail)
		du.Merge(&pt.DownDU)
		dl.Merge(&pt.DownDL)
		downIters += pt.DownIters
		events.Merge(pt.Events)
		if pt.Hist != nil {
			if hist == nil {
				h := *pt.Hist
				h.Counts = append([]int64(nil), pt.Hist.Counts...)
				hist = &h
			} else {
				if pt.Hist.Lo != hist.Lo || pt.Hist.Hi != hist.Hi || len(pt.Hist.Counts) != len(hist.Counts) {
					return Summary{}, fmt.Errorf("sim: partial [%d,%d) carries a histogram binned [%v,%v)x%d, want [%v,%v)x%d",
						pt.Start, pt.End, pt.Hist.Lo, pt.Hist.Hi, len(pt.Hist.Counts), hist.Lo, hist.Hi, len(hist.Counts))
				}
				hist.Merge(pt.Hist)
			}
		}
		cursor = pt.End
	}
	if cursor != opts.Iterations {
		return Summary{}, fmt.Errorf("sim: iterations [%d,%d) missing from partials", cursor, opts.Iterations)
	}

	avail := acc.Mean()
	halfWidth := acc.HalfWidth(opts.Confidence)
	meanDU, meanDL := du.Mean(), dl.Mean()
	ess, availHT := 0.0, 0.0
	if biased {
		// A biased run reports the self-normalized weighted estimates;
		// the weighted fold above walks the same cell order as the
		// unweighted one, so it is equally partition-independent.
		avail = wav.Mean()
		halfWidth = wav.HalfWidth(opts.Confidence)
		meanDU, meanDL = wdu.Mean(), wdl.Mean()
		ess = wav.ESS()
		availHT = wav.MeanHT()
	}
	// Converged is the stopping rule's own verdict — with its
	// effective-N safeguards — not a raw half-width comparison: a
	// zero-variance or event-starved stream reports half-width 0 but
	// must never be certified as converged (the fold here reproduces
	// the StopScan accumulator bit for bit, so the verdict matches the
	// scan's at the stopping boundary). Biased runs judge the weighted
	// stream at ESS-based effective degrees of freedom.
	converged := false
	if opts.TargetHalfWidth > 0 {
		rule := stats.StopRule{TargetHalfWidth: opts.TargetHalfWidth, Confidence: opts.Confidence}
		if biased {
			converged = rule.MetWeighted(&wav)
		} else {
			converged = rule.Met(&acc, downIters)
		}
	}
	return Summary{
		Availability:      avail,
		HalfWidth:         halfWidth,
		Nines:             stats.Nines(avail),
		MeanDowntimeDU:    meanDU,
		MeanDowntimeDL:    meanDL,
		Iterations:        opts.Iterations,
		MissionTime:       opts.MissionTime,
		Confidence:        opts.Confidence,
		TargetHalfWidth:   opts.TargetHalfWidth,
		Converged:         converged,
		Events:            events,
		Bias:              biasFactor,
		ESS:               ess,
		AvailabilityHT:    availHT,
		DowntimeHistogram: hist,
	}, nil
}
