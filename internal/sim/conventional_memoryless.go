package sim

import "math"

// This file is the memoryless specialization of the conventional
// walker. When every law is exponential the array process is a CTMC —
// the equivalence the paper itself leans on to validate the simulator
// (§V-A) — so the walker needs no per-disk failure clocks: in each
// state the holding time is one Exp(total-rate) draw (min of k iid
// Exp(lambda) is Exp(k*lambda)) and the winning transition is chosen
// with probability proportional to its rate. Disk identities are
// irrelevant: exponential members are exchangeable and, by
// memorylessness, a survivor's residual lifetime never depends on its
// age, so the state collapses to how many members are failed or
// pulled. The generic clock walker (conventional.go) remains the
// reference this kernel is validated against, both statistically and
// against the internal/markov closed forms.
//
// One second-order refinement of the clock walkers is deliberately
// not carried over: their surviving members keep aging through
// tape-restore and resync outages (an expired clock fires the moment
// the restore ends), whereas the rate-based kernels — like the
// paper's chains, whose DL state has the single transition
// DL --muDDF--> OP — restart the failure race fresh after an outage.
// The difference is of order lambda x restore-time per data loss
// (~1e-4 relative at the equivalence tests' inflated rates, far less
// at paper rates) and sits well inside the CI-overlap tolerances
// TestMemorylessMatchesGenericCIOverlap pins.

// convMemK holds the conventional kernel's precomputed state
// constants: the inverse total exit rate of each state (expInv
// multiplies instead of divides) and the unnormalized cut points that
// split a uniform draw over [0, total) among the competing risks.
//
// Under failure-biasing importance sampling (Options.Bias), only the
// winner-selection constants change: every disk-failure share of a
// race is inflated by the bias factor while holding times keep their
// nominal law (the inv* fields), so the clock stays calibrated and the
// per-transition likelihood ratio reduces to a state constant. The
// ln* fields are those constants — the log-weight a quiet (non-failure)
// or failure win of each race contributes, all exactly 0 when the
// bias factor is 1.
type convMemK struct {
	invOP    float64 // 1/(n*lambda): all members up
	invEXP   float64 // 1/(muDF + (n-1)*lambda): repair vs second failure
	pFailEXP float64 // probability the second failure wins that race
	raceInv  float64 // geomInv(pFailEXP): the race's skip-draw divisor
	raceQCap float64 // geomQCap(pFailEXP): its censoring threshold
	totDU    float64 // muHE + crash + b*(n-2)*lambda: the DU race's winner normalizer
	invDU    float64 // 1/(muHE + crash + (n-2)*lambda): its nominal hold
	cutDU1   float64 // undo-attempt share
	cutDU2   float64 // + crash share
	invTape  float64

	lnQuietEXP float64 // repair wins the exposed race
	lnFailEXP  float64 // second failure wins it
	lnQuietDU  float64 // undo or crash wins the DU race
	lnFailDU   float64 // a further failure wins it
}

func makeConvMemK(p *ArrayParams, m memRates, bias float64) convMemK {
	n := float64(p.Disks)
	totEXP := m.muDF + (n-1)*m.lambda
	totEXPb := m.muDF + bias*(n-1)*m.lambda
	totDU := m.muHE + p.CrashRate + (n-2)*m.lambda
	totDUb := m.muHE + p.CrashRate + bias*(n-2)*m.lambda
	pFail := bias * (n - 1) * m.lambda / totEXPb
	k := convMemK{
		invOP:    inv(n * m.lambda),
		invEXP:   inv(totEXP),
		pFailEXP: pFail,
		raceInv:  geomInv(pFail),
		raceQCap: geomQCap(pFail),
		totDU:    totDUb,
		invDU:    inv(totDU),
		cutDU1:   m.muHE,
		cutDU2:   m.muHE + p.CrashRate,
		invTape:  inv(m.muDDF),
	}
	if bias > 1 {
		lnB := math.Log(bias)
		k.lnQuietEXP = math.Log(totEXPb / totEXP)
		k.lnFailEXP = k.lnQuietEXP - lnB
		if totDU > 0 {
			k.lnQuietDU = math.Log(totDUb / totDU)
			k.lnFailDU = k.lnQuietDU - lnB
		}
	}
	return k
}

// conventionalMemoryless walks one lifetime of the conventional
// policy's CTMC. The state structure mirrors conventional.go — the
// same events are counted at the same transitions, with the same
// downtime accounting and mission-end censoring — up to the
// aging-through-outages refinement noted above; only the sampling is
// rate-based.
func (sc *scratch) conventionalMemoryless(mission float64) iterStats {
	k, r, p := &sc.convK, &sc.src, sc.p
	var st iterStats
	t := 0.0
	// Both rare outcomes of the hot OK->EXPOSED->repaired cycle are
	// skip-sampled: raceGap counts the repair-wins remaining before a
	// second failure beats the service (geometric, drawGeomGap), and
	// hepGap the error-free services before the next human error. The
	// counters live in registers and are drawn lazily, so a benign
	// cycle costs two exponential draws and two decrements; both die
	// with the iteration, keeping iterations independent.
	raceGap, hepGap := -1, -1
	raceExact, hepExact := false, false

	// Benign-cycle aggregation: min(raceGap, hepGap) cycles are known
	// to be quiet — one failure, one clean repair, nothing else — so
	// their elapsed time collapses to two Erlang draws per chunk (the
	// sum of c iid holds per phase) instead of 2c exponentials.
	// cycleRate sizes chunks at the expected cycles remaining; 0
	// disables aggregation (noBatch reference, or a degenerate
	// failure rate whose first hold is infinite).
	cycleRate := 0.0
	if !sc.noBatch && k.invOP > 0 {
		cycleRate = 1 / (k.invOP + k.invEXP)
	}

	for t < mission {
		if cycleRate > 0 {
			if raceGap < 0 || (raceGap == 0 && !raceExact) {
				raceGap, raceExact = drawGeomGap(r, k.raceInv, k.raceQCap)
			}
			if hepGap < 0 || (hepGap == 0 && !hepExact) {
				hepGap, hepExact = drawGeomGap(r, sc.hepInv, sc.hepQCap)
			}
			for {
				c := quietChunk((mission-t)*cycleRate, raceGap, hepGap, math.MaxInt)
				if c == 0 {
					break
				}
				opSum := sc.erlangChunk(c, k.invOP)
				exSum := sc.erlangChunk(c, k.invEXP)
				if t+opSum+exSum >= mission {
					sc.resolveChunk2(&st, t, mission, c, opSum, exSum, k.lnQuietEXP)
					return st
				}
				t += opSum + exSum
				st.events.Failures += int64(c)
				st.logW += float64(c) * k.lnQuietEXP
				raceGap -= c
				hepGap -= c
			}
		}

		// Quiet tail: the chunk loop stopped because the expected
		// cycles remaining shrank below aggMin or a counter is about
		// to fire, so walk cycles individually. Elapsed time only
		// grows and the counters only decrement, so re-sizing a chunk
		// is pointless until an event (or a censored counter running
		// out) resets a skip counter — those paths break back to the
		// outer loop; plain quiet cycles stay in this inner loop, off
		// the chunk-sizing arithmetic.
		for {
			redrawn := false

			// All members up; hold for the first failure.
			t += sc.expNext() * k.invOP
			if t >= mission {
				return st
			}
			st.events.Failures++

			// Exposed: replacement service races a second member failure.
			dt := sc.expNext() * k.invEXP
			if t+dt >= mission {
				return st // exposed is up; mission ends first
			}
			t += dt
			if raceGap < 0 || (raceGap == 0 && !raceExact) {
				raceGap, raceExact = drawGeomGap(r, k.raceInv, k.raceQCap)
				redrawn = true
			}
			if raceGap == 0 {
				// Double disk failure: data loss, restore from backup.
				raceGap = -1
				st.events.Failures++
				st.events.DoubleFailures++
				st.logW += k.lnFailEXP
				t = sc.memDataLoss(&st, t, mission, k.invTape)
				break
			}
			raceGap--
			st.logW += k.lnQuietEXP
			if hepGap < 0 || (hepGap == 0 && !hepExact) {
				hepGap, hepExact = drawGeomGap(r, sc.hepInv, sc.hepQCap)
				redrawn = true
			}
			if hepGap != 0 {
				hepGap-- // correct replacement; the array is whole again
				if redrawn {
					break // fresh counter: aggregation may pay again
				}
				continue
			}
			hepGap = -1

			// Wrong disk replacement: unavailable until the error is
			// undone; meanwhile the pulled disk may crash and the n-2
			// untouched members may fail.
			st.events.HumanErrors++
			duStart := t
			for {
				dt := sc.expNext() * k.invDU
				if t+dt >= mission {
					st.downDU += mission - duStart
					t = mission
					break
				}
				t += dt
				u := r.Float64() * k.totDU
				if u < k.cutDU1 {
					st.logW += k.lnQuietDU
					st.events.UndoAttempts++
					if hepGap < 0 || (hepGap == 0 && !hepExact) {
						hepGap, hepExact = drawGeomGap(r, sc.hepInv, sc.hepQCap)
					}
					if hepGap == 0 {
						// The undo itself went wrong; array stays DU.
						hepGap = -1
						st.events.HumanErrors++
						continue
					}
					hepGap--
					// Error undone; optionally restore consistency from
					// backup before coming back up.
					end := t
					if p.ResyncAfterUndo {
						end += sc.expNext() * k.invTape
					}
					st.downDU += math.Min(end, mission) - duStart
					t = end
					break
				}
				st.downDU += t - duStart
				if u < k.cutDU2 {
					// The wrongly removed disk crashed while out.
					st.logW += k.lnQuietDU
					st.events.Crashes++
				} else {
					// A further member failed while unavailable.
					st.logW += k.lnFailDU
					st.events.Failures++
					st.events.DoubleFailures++
				}
				t = sc.memDataLoss(&st, t, mission, k.invTape)
				break
			}
			break
		}
	}
	return st
}

// memDataLoss accounts a data-loss interval starting at start under
// the memoryless kernels: one tape-restore holding time, downtime
// clipped at mission end. No member state survives the outage — the
// failure race restarts fresh at the restore end, the CTMC's
// DL --muDDF--> OP semantics (see the file comment for how this
// differs, in the second order, from the clock walkers' dataLoss).
func (sc *scratch) memDataLoss(st *iterStats, start, mission, invTape float64) float64 {
	end := start + sc.expNext()*invTape
	st.downDL += math.Min(end, mission) - start
	return end
}
