package sim

import (
	"math"
	"testing"
)

// TestBatchedMatchesUnbatchedCI cross-validates the batching
// transforms statistically: a batched run and its unbatched reference
// (Options.noBatch) consume the per-iteration streams differently, so
// they are distinct exact realizations of the same process — their
// confidence intervals must overlap. Run at 1e5 iterations per
// policy x kernel so the intervals are tight enough to catch a
// distributional bug in the refill buffers, the Erlang benign-cycle
// aggregation, or the censored geometric skip counters.
func TestBatchedMatchesUnbatchedCI(t *testing.T) {
	for _, pol := range policies {
		for _, kern := range []Kernel{KernelGeneric, KernelMemoryless} {
			p := paramsFor(pol)
			o := Options{Iterations: 100000, MissionTime: 1e6, Seed: 12, Workers: 0, Kernel: kern}
			batched, err := Run(p, o)
			if err != nil {
				t.Fatalf("%v/%v: %v", pol, kern, err)
			}
			o.noBatch = true
			plain, err := Run(p, o)
			if err != nil {
				t.Fatalf("%v/%v noBatch: %v", pol, kern, err)
			}
			gap := math.Abs(batched.Availability - plain.Availability)
			if lim := batched.HalfWidth + plain.HalfWidth; gap > lim {
				t.Errorf("%v/%v: batched %.12f vs unbatched %.12f differ by %g, beyond the summed 99%% half-widths %g",
					pol, kern, batched.Availability, plain.Availability, gap, lim)
			}
			// The generic walkers have no batching transforms to
			// disable; there the reference must be bit-identical.
			if kern == KernelGeneric && batched != plain {
				t.Errorf("%v/%v: noBatch changed the generic realization:\n%+v\n%+v",
					pol, kern, batched, plain)
			}
		}
	}
}

// TestIterationReplayCrossesRefillBoundaries pins the refill-buffer
// isolation contract: an iteration's realization depends only on
// (seed, iteration), never on how many buffered variates a previous
// iteration left behind. A warm scratch — whose expBuf sits at an
// arbitrary mid-buffer position after each iteration — must reproduce
// exactly what a cold scratch draws for the same iteration. At these
// parameters an iteration consumes hundreds of exponentials, so every
// lifetime crosses many expBufLen-sized refills.
func TestIterationReplayCrossesRefillBoundaries(t *testing.T) {
	const seed, mission = 99, 1e6
	for _, pol := range policies {
		p := paramsFor(pol)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		warm := newScratch(&p, KernelMemoryless, false, 0)
		for it := 0; it < 60; it++ {
			got := warm.iterate(seed, it, mission)
			cold := newScratch(&p, KernelMemoryless, false, 0)
			if want := cold.iterate(seed, it, mission); got != want {
				t.Fatalf("%v: iteration %d differs warm vs cold:\n%+v\n%+v", pol, it, got, want)
			}
		}
	}
}

// TestScheduleIndependenceBatched repeats the schedule contract at
// paper mission scale, where the batched walkers refill the
// exponential buffer dozens of times per iteration and the
// benign-cycle aggregation runs multi-chunk tails: worker count must
// not change a single drawn lifetime.
func TestScheduleIndependenceBatched(t *testing.T) {
	for _, pol := range policies {
		p := paramsFor(pol)
		base := Options{Iterations: 300, MissionTime: 1e6, Seed: 8, Workers: 1, Kernel: KernelMemoryless}
		ref, err := Run(p, base)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		for _, workers := range []int{2, 5} {
			o := base
			o.Workers = workers
			got, err := Run(p, o)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", pol, workers, err)
			}
			if got.Events != ref.Events {
				t.Errorf("%v: events changed with workers=%d:\n%+v\n%+v",
					pol, workers, ref.Events, got.Events)
			}
			if d := math.Abs(got.Availability - ref.Availability); d > 1e-12 {
				t.Errorf("%v: availability drifted %g with workers=%d", pol, d, workers)
			}
		}
	}
}
