package sim

import (
	"math"
	"testing"

	"herald/internal/dist"
	"herald/internal/xrand"
)

func xrandNew(seed uint64) *xrand.Source { return xrand.New(seed) }

// policies lists every walker for the fast-path regression tests.
var policies = []Policy{Conventional, AutoFailover, DualParity}

func paramsFor(pol Policy) ArrayParams {
	p := PaperDefaults(6, 1e-4, 0.02)
	p.Policy = pol
	return p
}

// TestReplayDeterminismAllPolicies pins the fast-path engine's replay
// contract: two Runs with identical options are bit-identical, for
// every policy and kernel, including event counts and downtime
// moments.
func TestReplayDeterminismAllPolicies(t *testing.T) {
	for _, pol := range policies {
		for _, kern := range []Kernel{KernelGeneric, KernelMemoryless} {
			p := paramsFor(pol)
			o := Options{Iterations: 400, MissionTime: 2e5, Seed: 31, Workers: 3, Kernel: kern}
			a, err := Run(p, o)
			if err != nil {
				t.Fatalf("%v/%v: %v", pol, kern, err)
			}
			b, err := Run(p, o)
			if err != nil {
				t.Fatalf("%v/%v: %v", pol, kern, err)
			}
			if a != b {
				t.Errorf("%v/%v: identical runs diverged:\n%+v\n%+v", pol, kern, a, b)
			}
		}
	}
}

// TestScheduleIndependence checks that per-iteration streams decouple
// the drawn lifetimes from the worker count: event counts (exact
// integer sums) must match across schedules, and the availability may
// differ only by accumulator merge-order rounding.
func TestScheduleIndependence(t *testing.T) {
	for _, pol := range policies {
		p := paramsFor(pol)
		// KernelAuto resolves to the memoryless walkers here; the
		// schedule contract must hold for them exactly as it did for
		// the clock walkers.
		base := Options{Iterations: 500, MissionTime: 2e5, Seed: 77, Workers: 1}
		ref, err := Run(p, base)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		for _, workers := range []int{2, 3, 7} {
			o := base
			o.Workers = workers
			got, err := Run(p, o)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", pol, workers, err)
			}
			if got.Events != ref.Events {
				t.Errorf("%v: events changed with workers=%d:\n%+v\n%+v",
					pol, workers, ref.Events, got.Events)
			}
			if d := math.Abs(got.Availability - ref.Availability); d > 1e-12 {
				t.Errorf("%v: availability drifted %g with workers=%d", pol, d, workers)
			}
		}
	}
}

// TestHotLoopZeroAllocs pins the per-iteration hot loop at zero
// allocations for every policy and every kernel (the generic clock
// walkers — conventional, fail-over, dual-parity — and each
// memoryless specialization): all scratch state is worker-resident
// and reused across iterations.
func TestHotLoopZeroAllocs(t *testing.T) {
	for _, pol := range policies {
		for _, kern := range []Kernel{KernelGeneric, KernelMemoryless} {
			p := paramsFor(pol)
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			sc := newScratch(&p, kern, false, 0)
			if sc.memoryless != (kern == KernelMemoryless) {
				t.Fatalf("%v/%v: kernel not resolved as requested", pol, kern)
			}
			it := 0
			allocs := testing.AllocsPerRun(300, func() {
				_ = sc.iterate(123, it, 1e5)
				it++
			})
			if allocs != 0 {
				t.Errorf("%v/%v: hot loop allocates %.1f per iteration, want 0", pol, kern, allocs)
			}
		}
	}
}

// TestHotLoopZeroAllocsNonExponential covers the generic sampler path
// (Weibull TTF, lognormal services): batch and interface sampling must
// also stay allocation-free.
func TestHotLoopZeroAllocsNonExponential(t *testing.T) {
	p := paramsFor(Conventional)
	p.TTF = dist.WeibullFromMeanRate(1e-4, 1.21)
	p.Repair = dist.LognormalFromMeanMedian(10, 6)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	sc := newScratch(&p, KernelAuto, false, 0)
	if sc.memoryless {
		t.Fatal("non-exponential config specialized to the memoryless kernel")
	}
	it := 0
	allocs := testing.AllocsPerRun(300, func() {
		_ = sc.iterate(123, it, 1e5)
		it++
	})
	if allocs != 0 {
		t.Errorf("generic-path hot loop allocates %.1f per iteration, want 0", allocs)
	}
}

// TestGeometricHEPSkipMatchesBernoulli verifies the skip-sampled
// human-error process: the per-service error frequency must match HEP.
func TestGeometricHEPSkipMatchesBernoulli(t *testing.T) {
	p := paramsFor(Conventional)
	p.HEP = 0.05
	s, err := Run(p, Options{Iterations: 4000, MissionTime: 1e5, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Services ~= failures that were repaired; errors/services ~ HEP.
	services := float64(s.Events.Failures - s.Events.DoubleFailures)
	ratio := float64(s.Events.HumanErrors) / services
	if math.Abs(ratio-p.HEP) > 0.012 {
		t.Errorf("human error frequency %v, want ~%v", ratio, p.HEP)
	}
}

// TestTwoMin4MatchesScan cross-checks the 4-member tournament against
// the general scan, including tie-heavy inputs where first-index-wins
// ordering matters.
func TestTwoMin4MatchesScan(t *testing.T) {
	r := xrandNew(9)
	f := make([]float64, 4)
	for trial := 0; trial < 200000; trial++ {
		for j := range f {
			f[j] = float64(r.Intn(6)) // small range to exercise ties
		}
		a1, b1, c1, d1 := twoMin(f)
		a2, b2, c2, d2 := twoMin4(f)
		if a1 != a2 || b1 != b2 || c1 != c2 || d1 != d2 {
			t.Fatalf("%v: scan (%d,%v,%d,%v) vs tournament (%d,%v,%d,%v)",
				f, a1, b1, c1, d1, a2, b2, c2, d2)
		}
	}
}
