package sim

import (
	"fmt"

	"herald/internal/stats"
)

// FleetSummary is the availability of count identical arrays composed
// in series (user data spans all arrays), derived from a single-array
// Monte-Carlo run.
type FleetSummary struct {
	// Array is the underlying single-array estimate.
	Array Summary
	// Count is the number of arrays in series.
	Count int
	// Availability is Array.Availability^Count.
	Availability float64
	// HalfWidth is the delta-method confidence half-width:
	// count * A^(count-1) * arrayHalfWidth.
	HalfWidth float64
	// Nines is the fleet availability in nines.
	Nines float64
}

// RunFleet estimates the availability of a series fleet of identical,
// independent arrays. Because the arrays are i.i.d., one array is
// simulated and the fleet availability follows as A^count, with the
// confidence interval propagated by the delta method.
func RunFleet(p ArrayParams, count int, o Options) (FleetSummary, error) {
	if count < 1 {
		return FleetSummary{}, fmt.Errorf("sim: fleet count %d must be positive", count)
	}
	s, err := Run(p, o)
	if err != nil {
		return FleetSummary{}, err
	}
	fleetAvail := pow(s.Availability, count)
	hw := float64(count) * pow(s.Availability, count-1) * s.HalfWidth
	return FleetSummary{
		Array:        s,
		Count:        count,
		Availability: fleetAvail,
		HalfWidth:    hw,
		Nines:        stats.Nines(fleetAvail),
	}, nil
}

// pow computes a^n for small integer n without math.Pow rounding
// surprises near 1.
func pow(a float64, n int) float64 {
	out := 1.0
	base := a
	for n > 0 {
		if n&1 == 1 {
			out *= base
		}
		base *= base
		n >>= 1
	}
	return out
}
