// Package sim implements the paper's Monte-Carlo reference model
// (§III): an event-driven simulation of a backed-up RAID array under
// disk failures, repair services, wrong-disk-replacement human errors,
// crashes of wrongly removed disks, and tape restores after data loss.
//
// Two replacement policies are modelled:
//
//   - Conventional: a technician replaces the failed disk while the
//     array is exposed; every service carries a human error
//     opportunity (paper Fig. 2's state structure).
//   - AutoFailover: a hot spare absorbs the failure via on-line
//     rebuild, and the human only touches the array afterwards
//     (delayed replacement, paper Fig. 3's state structure).
//
// Unlike the Markov models, the simulator accepts arbitrary
// time-to-failure and service-time distributions (the paper runs it
// with exponential and Weibull laws) and also tracks second-order
// events the CTMCs neglect, such as a further disk failure while the
// array is already unavailable.
//
// Availability is uptime divided by mission time, averaged over
// iterations, with a Student-t confidence interval (the paper reports
// 99% confidence over 1e6 iterations).
package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"

	"herald/internal/dist"
	"herald/internal/stats"
	"herald/internal/xrand"
)

// Policy selects the disk replacement discipline.
type Policy int

const (
	// Conventional replaces the failed disk while the array is
	// exposed (no hot spare).
	Conventional Policy = iota
	// AutoFailover rebuilds onto a hot spare first and delays the
	// physical replacement until the array is redundant again.
	AutoFailover
	// DualParity is conventional replacement on an array that
	// tolerates two concurrent member losses (RAID6-style), mirroring
	// model.DualParityChain.
	DualParity
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Conventional:
		return "conventional"
	case AutoFailover:
		return "auto-failover"
	case DualParity:
		return "dual-parity"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps a CLI or API token onto a Policy. Both the flag
// spellings (failover, dualparity) and the String() spellings
// (auto-failover, dual-parity) are accepted.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "conventional":
		return Conventional, nil
	case "failover", "auto-failover":
		return AutoFailover, nil
	case "dualparity", "dual-parity":
		return DualParity, nil
	default:
		return 0, fmt.Errorf("sim: unknown policy %q (want conventional, failover or dualparity)", s)
	}
}

// ArrayParams describes one RAID array for simulation. All durations
// are hours, all rates per hour.
type ArrayParams struct {
	// Disks is the total member count n (e.g. 4 for RAID5 3+1,
	// 2 for RAID1 1+1). The array survives any single member loss and
	// dies on a second concurrent loss.
	Disks int
	// TTF is the per-disk time-to-failure law (fresh disk).
	TTF dist.Distribution
	// Repair is the conventional replace-and-rebuild service time
	// (mean 1/muDF). Under AutoFailover it is the replacement service
	// performed in the no-spare exposed state.
	Repair dist.Distribution
	// TapeRestore is the data-loss recovery time from backup
	// (mean 1/muDDF).
	TapeRestore dist.Distribution
	// HERecovery is the duration of one attempt to undo a wrong
	// replacement (mean 1/muHE).
	HERecovery dist.Distribution
	// HEP is the per-service human error probability.
	HEP float64
	// CrashRate is the rate at which a wrongly removed (healthy) disk
	// crashes while out of the array (lambdaCrash).
	CrashRate float64
	// ResyncAfterUndo, when true, follows every successful undo of a
	// wrong replacement with a consistency restore from backup (a
	// TapeRestore-distributed outage), matching the paper's Fig. 1
	// walk-through in which each DU interval ends with a tape
	// recovery. See model.Params.ResyncAfterUndo for the calibration
	// argument. Conventional policy only.
	ResyncAfterUndo bool
	// Policy selects conventional replacement or automatic fail-over.
	Policy Policy
	// SpareRebuild is the on-line rebuild-to-hot-spare time
	// (mean 1/muS). AutoFailover only.
	SpareRebuild dist.Distribution
	// SpareSwap is the service time for replenishing the spare slot
	// (mean 1/muCH). AutoFailover only.
	SpareSwap dist.Distribution
}

// Validate checks the parameter set is complete for its policy.
func (p *ArrayParams) Validate() error {
	if p.Disks < 2 {
		return fmt.Errorf("sim: array needs at least 2 disks, got %d", p.Disks)
	}
	if p.TTF == nil || p.Repair == nil || p.TapeRestore == nil {
		return errors.New("sim: TTF, Repair and TapeRestore distributions are required")
	}
	if p.HEP < 0 || p.HEP > 1 {
		return fmt.Errorf("sim: HEP %v outside [0,1]", p.HEP)
	}
	if p.HEP > 0 && p.HERecovery == nil {
		return errors.New("sim: HERecovery distribution required when HEP > 0")
	}
	if p.CrashRate < 0 {
		return fmt.Errorf("sim: negative crash rate %v", p.CrashRate)
	}
	if p.Policy == AutoFailover && (p.SpareRebuild == nil || p.SpareSwap == nil) {
		return errors.New("sim: AutoFailover requires SpareRebuild and SpareSwap distributions")
	}
	if p.Policy == DualParity && p.Disks < 4 {
		return fmt.Errorf("sim: dual parity needs at least 4 disks, got %d", p.Disks)
	}
	if p.Policy != Conventional && p.Policy != AutoFailover && p.Policy != DualParity {
		return fmt.Errorf("sim: unknown policy %d", int(p.Policy))
	}
	return nil
}

// PaperDefaults returns the rate constants the paper's experiments use
// (§V-B): muDF = 0.1/h, muDDF = 0.03/h, muHE = 1/h, lambdaCrash =
// 0.01/h, a 10-hour mean on-line rebuild (muS = 0.1) and a quick
// spare swap (muCH = 1), exponential everything, for an n-disk array
// with per-disk failure rate lambda and human error probability hep.
// The post-undo resync is enabled (see ArrayParams.ResyncAfterUndo).
func PaperDefaults(n int, lambda, hep float64) ArrayParams {
	return ArrayParams{
		Disks:           n,
		TTF:             dist.NewExponential(lambda),
		Repair:          dist.NewExponential(0.1),
		TapeRestore:     dist.NewExponential(0.03),
		HERecovery:      dist.NewExponential(1),
		HEP:             hep,
		CrashRate:       0.01,
		ResyncAfterUndo: true,
		Policy:          Conventional,
		SpareRebuild:    dist.NewExponential(0.1),
		SpareSwap:       dist.NewExponential(1),
	}
}

// Kernel selects the Monte-Carlo walker specialization. The generic
// kernels simulate per-disk failure clocks and accept arbitrary laws;
// the memoryless kernels exploit the CTMC equivalence of fully
// exponential configurations (the same equivalence the paper uses to
// validate its simulator, §V-A): competing exponential risks collapse
// to one rate-based draw per event — min of n iid Exp(lambda) is
// Exp(n*lambda) — so no clock array is kept or scanned.
type Kernel int

const (
	// KernelAuto, the default, specializes to the rate-based
	// memoryless walkers when every law the policy draws from is
	// exponential (dist.Memoryless) and falls back to the generic
	// clock walkers otherwise. The kernels' estimates are
	// statistically interchangeable (pinned by CI-overlap tests; the
	// walkers differ only in a second-order aging-through-outages
	// refinement, see conventional_memoryless.go), but the draw
	// sequences differ: switching kernels changes the realization,
	// like changing the seed does.
	KernelAuto Kernel = iota
	// KernelGeneric forces the per-disk failure-clock walkers — the
	// reference implementation the specialized kernels are validated
	// against, and the only one that accepts non-exponential laws.
	KernelGeneric
	// KernelMemoryless forces the rate-based walkers. Runs reject
	// configurations whose laws are not all memoryless.
	KernelMemoryless
)

// String names the kernel as ParseKernel accepts it.
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelGeneric:
		return "generic"
	case KernelMemoryless:
		return "memoryless"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// ParseKernel maps a CLI token onto a Kernel.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "auto":
		return KernelAuto, nil
	case "generic":
		return KernelGeneric, nil
	case "memoryless":
		return KernelMemoryless, nil
	default:
		return 0, fmt.Errorf("sim: unknown kernel %q (want auto, generic or memoryless)", s)
	}
}

// ResolveKernel reports the concrete kernel a run of p under k
// executes: KernelMemoryless or KernelGeneric. It errors when k
// forces the memoryless kernel on a configuration that is not fully
// memoryless for its policy.
func ResolveKernel(p ArrayParams, k Kernel) (Kernel, error) {
	_, useMem, err := resolveKernel(&p, k)
	if err != nil {
		return 0, err
	}
	if useMem {
		return KernelMemoryless, nil
	}
	return KernelGeneric, nil
}

// Options controls a Monte-Carlo run.
type Options struct {
	// Iterations is the number of independent array lifetimes.
	Iterations int
	// MissionTime is the simulated horizon per iteration (hours).
	MissionTime float64
	// Seed drives the reproducible RNG; each iteration uses an
	// independent stream derived from it.
	Seed uint64
	// Workers caps parallelism; 0 means GOMAXPROCS.
	Workers int
	// Confidence is the CI level for the availability estimate
	// (default 0.99, the paper's choice).
	Confidence float64
	// HistogramBins, when positive, collects a histogram of
	// per-iteration total downtime hours over
	// [0, HistogramMaxHours) into Summary.DowntimeHistogram.
	HistogramBins int
	// HistogramMaxHours is the histogram's upper edge (default: 1% of
	// the mission time).
	HistogramMaxHours float64
	// Kernel selects the walker specialization (default KernelAuto).
	Kernel Kernel
	// TargetHalfWidth, when positive, makes the run adaptive
	// (precision-targeted): instead of executing a preset count, the
	// run grows the executed iteration prefix and stops at the first
	// canonical cell boundary where the sequential stopping rule
	// (stats.StopRule at Confidence, with its Student-t effective-N
	// safeguards) certifies the availability CI half-width at or below
	// this value. Iterations then bounds the run: it is the iteration
	// cap when MaxIters is zero, and the minimum executed iterations
	// when MaxIters is set. The reported Summary covers exactly the
	// iterations kept — see Summary.Iterations and Summary.Converged.
	TargetHalfWidth float64
	// MaxIters caps an adaptive run's executed iterations when
	// positive; it requires TargetHalfWidth and must be at least
	// Iterations (which becomes the minimum executed before the rule
	// may bind). Zero means Iterations is the cap.
	MaxIters int
	// Bias turns on failure-biasing importance sampling in the
	// memoryless walkers: event *selection* inflates every disk-failure
	// rate by this factor (holding times keep their nominal law, so
	// clocks stay calibrated) and each iteration carries the exact
	// likelihood ratio, accumulated as a running sum of per-event
	// rate-ratio logs. Estimates are reweighted, so they remain
	// consistent for the unbiased quantities; convergence switches to
	// the effective sample size (see stats.StopRule.MetWeighted and the
	// README's "Rare-event acceleration" section).
	//
	// 0 (and the no-op factor 1) disable biasing entirely; BiasAuto
	// picks a factor from the failure/repair rate ratio of the
	// configuration; factors > 1 are used as given. Requires the
	// memoryless kernel. The field is omitted from JSON when zero, so
	// unbiased fingerprints, checkpoints and cache keys are unchanged.
	Bias float64 `json:"Bias,omitempty"`

	// noBatch disables the batching transforms of the hot loop — the
	// exponential refill buffer and benign-cycle Erlang aggregation —
	// yielding the unbatched reference realization. Test-only
	// (unexported, settable from package tests); it never crosses the
	// JSON wire and does not participate in run fingerprints.
	noBatch bool
}

// Adaptive reports whether the options request a precision-targeted
// (sequentially stopped) run.
func (o *Options) Adaptive() bool { return o.TargetHalfWidth > 0 }

// Biased reports whether the options request importance sampling: an
// automatic or explicitly > 1 bias factor. An explicit factor of 1 is
// a no-op and runs the plain unbiased path (its fingerprint is
// normalized accordingly, see shard.RunFingerprint).
func (o *Options) Biased() bool { return o.Bias == BiasAuto || o.Bias > 1 }

// IterationCap returns the planned iteration ceiling of the run:
// MaxIters for adaptive runs that set it, Iterations otherwise. The
// canonical cell decomposition of an adaptive run is taken over the
// cap, so the executed prefix is always cell-aligned.
func (o *Options) IterationCap() int {
	if o.MaxIters > 0 {
		return o.MaxIters
	}
	return o.Iterations
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.Confidence == 0 {
		out.Confidence = 0.99
	}
	return out
}

// Validate checks the options.
func (o *Options) Validate() error {
	if o.Iterations < 1 {
		return fmt.Errorf("sim: iterations %d must be positive", o.Iterations)
	}
	if o.MissionTime <= 0 || math.IsNaN(o.MissionTime) || math.IsInf(o.MissionTime, 0) {
		return fmt.Errorf("sim: mission time %v must be positive and finite", o.MissionTime)
	}
	// The negated-range form catches NaN, which plain comparisons let
	// through straight into a Student-t quantile panic downstream.
	if !(o.Confidence >= 0 && o.Confidence < 1) {
		return fmt.Errorf("sim: confidence %v outside [0,1)", o.Confidence)
	}
	if o.Kernel != KernelAuto && o.Kernel != KernelGeneric && o.Kernel != KernelMemoryless {
		return fmt.Errorf("sim: unknown kernel %d", int(o.Kernel))
	}
	if o.TargetHalfWidth < 0 || math.IsNaN(o.TargetHalfWidth) || math.IsInf(o.TargetHalfWidth, 0) {
		return fmt.Errorf("sim: target half-width %v must be zero (fixed-N) or positive and finite", o.TargetHalfWidth)
	}
	if o.MaxIters < 0 {
		return fmt.Errorf("sim: max iterations %d must be non-negative", o.MaxIters)
	}
	if o.MaxIters > 0 {
		if o.TargetHalfWidth == 0 {
			return fmt.Errorf("sim: MaxIters %d set without TargetHalfWidth (fixed-N runs bound via Iterations)", o.MaxIters)
		}
		if o.MaxIters < o.Iterations {
			return fmt.Errorf("sim: MaxIters %d below the Iterations minimum %d", o.MaxIters, o.Iterations)
		}
	}
	// The negated form catches NaN; Inf must be rejected explicitly.
	if o.Bias != 0 && o.Bias != BiasAuto && (!(o.Bias >= 1) || math.IsInf(o.Bias, 0)) {
		return fmt.Errorf("sim: bias factor %v must be 0 (off), sim.BiasAuto or a finite factor >= 1", o.Bias)
	}
	return nil
}

// EventCounts aggregates how often each incident type occurred across
// all iterations.
type EventCounts struct {
	Failures       int64 // individual disk failures
	DoubleFailures int64 // data-loss events (second concurrent loss)
	HumanErrors    int64 // wrong replacements (incl. failed undo attempts)
	Crashes        int64 // wrongly removed disks that crashed while out
	UndoAttempts   int64 // human-error recovery attempts
}

// Merge folds another census into this one. It is the integer
// counterpart of stats.Accumulator.Merge: shard partials and external
// callers combine per-range counts with it, and unlike the
// floating-point accumulators it is exactly associative.
func (e *EventCounts) Merge(o EventCounts) {
	e.Failures += o.Failures
	e.DoubleFailures += o.DoubleFailures
	e.HumanErrors += o.HumanErrors
	e.Crashes += o.Crashes
	e.UndoAttempts += o.UndoAttempts
}

// Summary is the result of a Monte-Carlo run.
type Summary struct {
	// Availability is the mean fraction of mission time the array was
	// up.
	Availability float64
	// HalfWidth is the Student-t confidence half-width of
	// Availability at the requested confidence level.
	HalfWidth float64
	// Nines is -log10(1 - Availability).
	Nines float64
	// MeanDowntimeDU / MeanDowntimeDL are mean hours per iteration
	// spent unavailable due to human error (DU) and data loss (DL).
	MeanDowntimeDU float64
	MeanDowntimeDL float64
	// Iterations is the iteration count the summary covers. For
	// adaptive runs this is the count actually kept — the cell boundary
	// the stopping rule bound at, or the cap when it never bound.
	Iterations  int
	MissionTime float64
	// Confidence echoes the CI level.
	Confidence float64
	// TargetHalfWidth echoes the adaptive precision target; zero for
	// fixed-N runs.
	TargetHalfWidth float64
	// Converged reports the stopping rule's verdict on the kept
	// iterations: target reached with the rule's effective-N
	// safeguards satisfied. A zero-variance or event-starved run that
	// went to its cap reports false even though its raw half-width is
	// 0. Always false for fixed-N runs.
	Converged bool
	// Events aggregates incident counts.
	Events EventCounts
	// Bias is the concrete failure-inflation factor an
	// importance-sampled run executed with (the resolved value when
	// Options.Bias was BiasAuto); 0 for unbiased runs. When set,
	// Availability/MeanDowntime* are the self-normalized weighted
	// estimates and HalfWidth is computed at ESS-based degrees of
	// freedom.
	Bias float64 `json:",omitempty"`
	// ESS is the Kish effective sample size (Σw)²/Σw² of a biased run's
	// importance weights — the equally-weighted iteration count carrying
	// the same information; 0 for unbiased runs.
	ESS float64 `json:",omitempty"`
	// AvailabilityHT is the Horvitz–Thompson availability estimate
	// Σwx/n of a biased run (unbiased in expectation; reported as a
	// weight-degeneracy diagnostic against the self-normalized
	// Availability); 0 for unbiased runs.
	AvailabilityHT float64 `json:",omitempty"`
	// DowntimeHistogram is the per-iteration total-downtime histogram
	// when Options.HistogramBins was set; nil otherwise.
	DowntimeHistogram *stats.Histogram
}

// MarshalJSON encodes the summary with non-finite derived fields as
// JSON null — Nines is +Inf when the estimate is exactly 1 (no
// downtime ever observed), which encoding/json would otherwise refuse
// to emit — keeping every summary wire-representable. Summaries whose
// fields are all finite encode byte-identically to the plain struct.
func (s Summary) MarshalJSON() ([]byte, error) {
	finiteOrNull := func(v float64) *float64 {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return nil
		}
		return &v
	}
	// Mirrors Summary field for field (names and order) so the finite
	// encoding is unchanged.
	type wire struct {
		Availability      float64
		HalfWidth         *float64
		Nines             *float64
		MeanDowntimeDU    float64
		MeanDowntimeDL    float64
		Iterations        int
		MissionTime       float64
		Confidence        float64
		TargetHalfWidth   float64
		Converged         bool
		Events            EventCounts
		Bias              float64 `json:",omitempty"`
		ESS               float64 `json:",omitempty"`
		AvailabilityHT    float64 `json:",omitempty"`
		DowntimeHistogram *stats.Histogram
	}
	return json.Marshal(wire{
		Availability:      s.Availability,
		HalfWidth:         finiteOrNull(s.HalfWidth),
		Nines:             finiteOrNull(s.Nines),
		MeanDowntimeDU:    s.MeanDowntimeDU,
		MeanDowntimeDL:    s.MeanDowntimeDL,
		Iterations:        s.Iterations,
		MissionTime:       s.MissionTime,
		Confidence:        s.Confidence,
		TargetHalfWidth:   s.TargetHalfWidth,
		Converged:         s.Converged,
		Events:            s.Events,
		Bias:              s.Bias,
		ESS:               s.ESS,
		AvailabilityHT:    s.AvailabilityHT,
		DowntimeHistogram: s.DowntimeHistogram,
	})
}

// Interval returns the availability confidence interval.
func (s Summary) Interval() stats.Interval {
	return stats.Interval{Lo: s.Availability - s.HalfWidth, Hi: s.Availability + s.HalfWidth}
}

// Unavailability returns 1 - Availability.
func (s Summary) Unavailability() float64 { return stats.Unavailability(s.Availability) }

// iterStats is the outcome of one simulated lifetime. logW is the
// running log-likelihood ratio of an importance-sampled iteration
// (nominal law over proposal law; exactly 0 for unbiased runs, where
// every per-event constant feeding it is 0).
type iterStats struct {
	downDU, downDL float64
	logW           float64
	events         EventCounts
}

// Run executes the Monte-Carlo experiment and returns its summary.
//
// The run is decomposed into the canonical accumulation cells of
// [0, Iterations) (see CellSize): workers pull cells off a shared
// counter, accumulate each cell sequentially, and the cell partials
// are folded in index order by Summarize. Because the decomposition
// and fold order depend only on the iteration count, the Summary is
// bit-identical for every worker count — and identical to a sharded
// run (internal/shard) that partitions the same cells across
// processes or machines.
// Adaptive runs (Options.TargetHalfWidth > 0) instead grow the
// executed prefix of [0, IterationCap()) and stop at the first cell
// boundary where the stopping rule binds; see runAdaptive. The
// decomposition over the cap keeps the same schedule-independence: an
// adaptive Summary is bit-identical for every worker count, and
// identical to an adaptive sharded run with the same options.
func Run(p ArrayParams, o Options) (Summary, error) {
	if o.Iterations < 1 {
		return Summary{}, fmt.Errorf("sim: iterations %d must be positive", o.Iterations)
	}
	if o.Adaptive() {
		return runAdaptive(p, o)
	}
	parts, err := RunRange(p, o, 0, o.Iterations)
	if err != nil {
		return Summary{}, err
	}
	return Summarize(o, parts)
}

// ---------------------------------------------------------------------
// shared helpers
// ---------------------------------------------------------------------

// expInv draws an exponential variate given the precomputed inverse
// rate; +Inf when invRate is 0 (rate-0 events never fire, see inv).
// It is the one consolidated exponential fast path of every walker —
// the crash-clock draws, the hot-loop service/TTF draws and the
// memoryless kernels' holding-time draws all go through it. Keeping
// the function to a single call plus a hoisted constant leaves it
// within the compiler's inlining budget (go build -gcflags=-m:
// "can inline expInv"), so the draw compiles to the bare ziggurat
// call and one multiply at every call site.
func expInv(r *xrand.Source, invRate float64) float64 {
	if invRate <= 0 {
		return plusInf
	}
	return r.ExpFloat64() * invRate
}

// inv returns 1/rate for positive rates and 0 otherwise — the
// representation expInv expects for events that never fire.
func inv(rate float64) float64 {
	if rate > 0 {
		return 1 / rate
	}
	return 0
}

// nextFailure returns the index and clamped time of the earliest
// failure clock, skipping excluded indices. Clocks earlier than now
// fire at now (a disk re-seated after its latent expiry fails
// immediately). Returns (-1, +Inf) when every disk is excluded.
func nextFailure(fail []float64, now float64, ex1, ex2 int) (int, float64) {
	idx, at := -1, math.Inf(1)
	for i, f := range fail {
		if i == ex1 || i == ex2 {
			continue
		}
		if f < at {
			idx, at = i, f
		}
	}
	if idx >= 0 && at < now {
		at = now
	}
	return idx, at
}

// twoMin returns the two earliest failure clocks in one scan: the
// overall minimum (i1, t1) and the runner-up (i2, t2), first index
// winning ties. Clamping expired clocks to "now" is left to the
// caller, keeping the function inside the inlining budget — it runs
// once per failure event in the conventional walker's hot loop,
// replacing two successive nextFailure scans.
func twoMin(fail []float64) (i1 int, t1 float64, i2 int, t2 float64) {
	i1, t1 = -1, plusInf
	i2, t2 = -1, plusInf
	for i, f := range fail {
		if f < t2 {
			if f < t1 {
				i2, t2 = i1, t1
				i1, t1 = i, f
			} else {
				i2, t2 = i, f
			}
		}
	}
	return i1, t1, i2, t2
}

// plusInf hoists the math.Inf call out of the inlining cost of the
// scan helpers.
var plusInf = math.Inf(1)

// twoMin4 is twoMin specialized to 4-member arrays (the paper's
// RAID5 3+1 workhorse): a 5-comparison tournament with the same
// first-index-wins-ties semantics as the scan, verified exhaustively
// against it in tests.
func twoMin4(fail []float64) (i1 int, t1 float64, i2 int, t2 float64) {
	w01, l01 := 0, 1
	if fail[1] < fail[0] {
		w01, l01 = 1, 0
	}
	w23, l23 := 2, 3
	if fail[3] < fail[2] {
		w23, l23 = 3, 2
	}
	if fail[w23] < fail[w01] {
		i1 = w23
		i2 = w01
		if fail[l23] < fail[w01] {
			i2 = l23
		}
	} else {
		i1 = w01
		i2 = l01
		if fail[w23] < fail[l01] {
			i2 = w23
		}
	}
	return i1, fail[i1], i2, fail[i2]
}

// pickOther returns a uniformly random index in [0, n) distinct from
// the excluded ones. It panics when no candidate exists.
func pickOther(r *xrand.Source, n, ex1, ex2 int) int {
	count := 0
	for i := 0; i < n; i++ {
		if i != ex1 && i != ex2 {
			count++
		}
	}
	if count == 0 {
		panic("sim: no disk available to pick")
	}
	k := int(r.Uint32n(uint32(count)))
	for i := 0; i < n; i++ {
		if i == ex1 || i == ex2 {
			continue
		}
		if k == 0 {
			return i
		}
		k--
	}
	panic("sim: unreachable")
}

const noDisk = -1
