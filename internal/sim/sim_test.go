package sim

import (
	"math"
	"testing"
	"testing/quick"

	"herald/internal/dist"
	"herald/internal/model"
	"herald/internal/xrand"
)

// runFast executes a small Monte-Carlo run with fixed seed/workers so
// results are reproducible in tests.
func runFast(t *testing.T, p ArrayParams, iters int, mission float64) Summary {
	t.Helper()
	s, err := Run(p, Options{
		Iterations:  iters,
		MissionTime: mission,
		Seed:        12345,
		Workers:     4,
		Confidence:  0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// assertWithinCI checks that the analytic value lies inside the MC
// confidence interval widened by slack (structural second-order
// differences between simulator and chain).
func assertWithinCI(t *testing.T, name string, mc Summary, analytic float64) {
	t.Helper()
	tol := 4*mc.HalfWidth + 0.03*(1-analytic)
	if diff := math.Abs(mc.Availability - analytic); diff > tol {
		t.Errorf("%s: MC availability %v vs analytic %v (diff %.3g, tol %.3g)",
			name, mc.Availability, analytic, diff, tol)
	}
}

func TestConventionalMatchesMarkovNoHumanError(t *testing.T) {
	lambda := 1e-4
	p := PaperDefaults(4, lambda, 0)
	mc := runFast(t, p, 3000, 2e5)
	res, err := model.Conventional(model.Paper(4, lambda, 0))
	if err != nil {
		t.Fatal(err)
	}
	assertWithinCI(t, "hep=0", mc, res.Availability)
	if mc.Events.HumanErrors != 0 {
		t.Errorf("human errors = %d at hep=0", mc.Events.HumanErrors)
	}
	if mc.Events.Failures == 0 || mc.Events.DoubleFailures == 0 {
		t.Errorf("expected failures and double failures, got %+v", mc.Events)
	}
}

func TestConventionalMatchesMarkovWithHumanError(t *testing.T) {
	// The paper's §V-A validation: Markov results must fall within
	// the MC confidence interval. Large lambda for dense statistics.
	for _, hep := range []float64{0.001, 0.01} {
		lambda := 1e-4
		p := PaperDefaults(4, lambda, hep)
		mc := runFast(t, p, 3000, 2e5)
		res, err := model.Conventional(model.Paper(4, lambda, hep))
		if err != nil {
			t.Fatal(err)
		}
		assertWithinCI(t, "hep="+floatStr(hep), mc, res.Availability)
		if mc.Events.HumanErrors == 0 {
			t.Errorf("hep=%v: no human errors simulated", hep)
		}
	}
}

func floatStr(f float64) string {
	switch f {
	case 0.001:
		return "0.001"
	case 0.01:
		return "0.01"
	default:
		return "?"
	}
}

func TestConventionalLiteralFigureVariant(t *testing.T) {
	// With ResyncAfterUndo disabled both MC and Markov use the
	// literal Fig. 2 shape; they must still agree.
	lambda, hep := 1e-4, 0.01
	p := PaperDefaults(4, lambda, hep)
	p.ResyncAfterUndo = false
	mc := runFast(t, p, 3000, 2e5)
	mp := model.Paper(4, lambda, hep)
	mp.ResyncAfterUndo = false
	res, err := model.Conventional(mp)
	if err != nil {
		t.Fatal(err)
	}
	assertWithinCI(t, "literal", mc, res.Availability)
}

func TestRAID1Simulation(t *testing.T) {
	lambda, hep := 1e-4, 0.01
	mc := runFast(t, PaperDefaults(2, lambda, hep), 3000, 2e5)
	res, err := model.Conventional(model.Paper(2, lambda, hep))
	if err != nil {
		t.Fatal(err)
	}
	assertWithinCI(t, "raid1", mc, res.Availability)
}

func TestFailoverMatchesReducedMarkov(t *testing.T) {
	// The MC fail-over discipline (single technician, undo-first)
	// corresponds to the Fig. 3 chain without the alternative service
	// branches; see DESIGN.md.
	lambda, hep := 1e-4, 0.02
	p := PaperDefaults(4, lambda, hep)
	p.Policy = AutoFailover
	mc := runFast(t, p, 3000, 2e5)

	mp := model.PaperFailover(4, lambda, hep)
	mp.InstallAsSpare = false
	mp.DownAltService = false
	res, err := model.Failover(mp)
	if err != nil {
		t.Fatal(err)
	}
	assertWithinCI(t, "failover", mc, res.Availability)
}

func TestFailoverBeatsConventionalMC(t *testing.T) {
	lambda, hep := 1e-4, 0.02
	conv := runFast(t, PaperDefaults(4, lambda, hep), 2000, 2e5)
	fp := PaperDefaults(4, lambda, hep)
	fp.Policy = AutoFailover
	fo := runFast(t, fp, 2000, 2e5)
	if fo.Availability <= conv.Availability {
		t.Fatalf("fail-over %v not above conventional %v", fo.Availability, conv.Availability)
	}
}

func TestWeibullShapeOneMatchesExponential(t *testing.T) {
	lambda, hep := 1e-4, 0.01
	pExp := PaperDefaults(4, lambda, hep)
	pWb := pExp
	pWb.TTF = dist.WeibullFromMeanRate(lambda, 1)
	a := runFast(t, pExp, 2000, 2e5)
	b := runFast(t, pWb, 2000, 2e5)
	tol := 3 * (a.HalfWidth + b.HalfWidth)
	if diff := math.Abs(a.Availability - b.Availability); diff > tol {
		t.Fatalf("weibull(1) %v vs exponential %v (diff %.3g > tol %.3g)",
			b.Availability, a.Availability, diff, tol)
	}
}

func TestWeibullWearOutRuns(t *testing.T) {
	p := PaperDefaults(4, 2e-5, 0.01)
	p.TTF = dist.WeibullFromMeanRate(2e-5, 1.48) // the paper's steepest shape
	s := runFast(t, p, 500, 2e5)
	if s.Availability <= 0 || s.Availability > 1 {
		t.Fatalf("availability = %v", s.Availability)
	}
	if s.Events.Failures == 0 {
		t.Fatal("no failures simulated")
	}
}

func TestDeterminism(t *testing.T) {
	p := PaperDefaults(4, 1e-4, 0.01)
	o := Options{Iterations: 500, MissionTime: 1e5, Seed: 7, Workers: 3}
	a, err := Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestSeedChangesResult(t *testing.T) {
	p := PaperDefaults(4, 1e-4, 0.01)
	a, _ := Run(p, Options{Iterations: 200, MissionTime: 1e5, Seed: 1, Workers: 2})
	b, _ := Run(p, Options{Iterations: 200, MissionTime: 1e5, Seed: 2, Workers: 2})
	if a.Availability == b.Availability && a.Events == b.Events {
		t.Fatal("different seeds produced identical results")
	}
}

func TestHEPOneStillTerminates(t *testing.T) {
	// Every service errs; undo attempts always fail, so DU ends only
	// by crash or further failure. Availability must stay in [0,1).
	p := PaperDefaults(4, 1e-4, 1)
	s := runFast(t, p, 200, 1e5)
	if s.Availability < 0 || s.Availability >= 1 {
		t.Fatalf("availability = %v", s.Availability)
	}
	if s.MeanDowntimeDU <= 0 {
		t.Fatal("expected DU downtime at hep=1")
	}
}

func TestShortMissionClipping(t *testing.T) {
	// Huge failure rate, tiny mission: downtime must never exceed the
	// mission time.
	p := PaperDefaults(4, 0.5, 0.5)
	s := runFast(t, p, 500, 10)
	if s.Availability < 0 || s.Availability > 1 {
		t.Fatalf("availability = %v", s.Availability)
	}
	if s.MeanDowntimeDU+s.MeanDowntimeDL > 10+1e-9 {
		t.Fatalf("downtime %v exceeds mission 10h",
			s.MeanDowntimeDU+s.MeanDowntimeDL)
	}
}

func TestAvailabilityDecreasesWithHEPMC(t *testing.T) {
	prev := math.Inf(1)
	for _, hep := range []float64{0, 0.01, 0.1} {
		s := runFast(t, PaperDefaults(4, 1e-4, hep), 2000, 2e5)
		if s.Availability >= prev {
			t.Fatalf("availability not decreasing at hep=%v", hep)
		}
		prev = s.Availability
	}
}

func TestSummaryDerivedFields(t *testing.T) {
	s := runFast(t, PaperDefaults(4, 1e-4, 0.01), 500, 1e5)
	if s.Nines <= 0 {
		t.Error("nines not positive")
	}
	iv := s.Interval()
	if !iv.Contains(s.Availability) {
		t.Error("interval excludes its own mean")
	}
	if math.Abs(s.Unavailability()-(1-s.Availability)) > 1e-15 {
		t.Error("unavailability mismatch")
	}
	if s.Iterations != 500 || s.MissionTime != 1e5 || s.Confidence != 0.99 {
		t.Error("configuration echo wrong")
	}
}

func TestValidationErrors(t *testing.T) {
	good := PaperDefaults(4, 1e-4, 0.01)
	goodOpts := Options{Iterations: 10, MissionTime: 100}

	bad := []ArrayParams{
		func() ArrayParams { p := good; p.Disks = 1; return p }(),
		func() ArrayParams { p := good; p.TTF = nil; return p }(),
		func() ArrayParams { p := good; p.Repair = nil; return p }(),
		func() ArrayParams { p := good; p.TapeRestore = nil; return p }(),
		func() ArrayParams { p := good; p.HEP = -0.1; return p }(),
		func() ArrayParams { p := good; p.HEP = 1.1; return p }(),
		func() ArrayParams { p := good; p.HERecovery = nil; return p }(),
		func() ArrayParams { p := good; p.CrashRate = -1; return p }(),
		func() ArrayParams { p := good; p.Policy = Policy(9); return p }(),
		func() ArrayParams {
			p := good
			p.Policy = AutoFailover
			p.SpareRebuild = nil
			return p
		}(),
	}
	for i, p := range bad {
		if _, err := Run(p, goodOpts); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}

	badOpts := []Options{
		{Iterations: 0, MissionTime: 100},
		{Iterations: 10, MissionTime: 0},
		{Iterations: 10, MissionTime: math.Inf(1)},
		{Iterations: 10, MissionTime: 100, Confidence: 1},
		{Iterations: 10, MissionTime: 100, Confidence: -0.5},
	}
	for i, o := range badOpts {
		if _, err := Run(good, o); err == nil {
			t.Errorf("opts case %d: invalid options accepted", i)
		}
	}
}

func TestHEPZeroNeedsNoHERecovery(t *testing.T) {
	p := PaperDefaults(4, 1e-4, 0)
	p.HERecovery = nil
	if _, err := Run(p, Options{Iterations: 50, MissionTime: 1e4}); err != nil {
		t.Fatalf("hep=0 without HERecovery rejected: %v", err)
	}
}

func TestPolicyString(t *testing.T) {
	if Conventional.String() != "conventional" || AutoFailover.String() != "auto-failover" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy renders empty")
	}
}

func TestWorkersMoreThanIterations(t *testing.T) {
	p := PaperDefaults(4, 1e-4, 0)
	s, err := Run(p, Options{Iterations: 3, MissionTime: 1e4, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if s.Iterations != 3 {
		t.Fatalf("iterations = %d", s.Iterations)
	}
}

func TestNextFailureHelper(t *testing.T) {
	fail := []float64{5, 2, 9}
	idx, at := nextFailure(fail, 0, noDisk, noDisk)
	if idx != 1 || at != 2 {
		t.Fatalf("got %d@%v", idx, at)
	}
	// Exclusions.
	idx, at = nextFailure(fail, 0, 1, noDisk)
	if idx != 0 || at != 5 {
		t.Fatalf("got %d@%v", idx, at)
	}
	// Clamping of expired clocks.
	_, at = nextFailure(fail, 3, 1, noDisk)
	if at != 5 {
		t.Fatalf("clamped at = %v", at)
	}
	_, at = nextFailure(fail, 7, 1, noDisk)
	if at != 7 {
		t.Fatalf("expired clock fired at %v, want now=7", at)
	}
	// Everything excluded.
	idx, at = nextFailure([]float64{1, 2}, 0, 0, 1)
	if idx != noDisk || !math.IsInf(at, 1) {
		t.Fatalf("got %d@%v", idx, at)
	}
}

func TestPickOther(t *testing.T) {
	r := xrand.New(3)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		k := pickOther(r, 4, 0, 2)
		if k == 0 || k == 2 {
			t.Fatalf("picked excluded index %d", k)
		}
		counts[k]++
	}
	if counts[1] == 0 || counts[3] == 0 {
		t.Fatalf("candidates not covered: %v", counts)
	}
}

func TestPickOtherPanicsWhenEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pickOther(xrand.New(1), 2, 0, 1)
}

func TestExpInvInfiniteForZeroRate(t *testing.T) {
	r := xrand.New(1)
	if !math.IsInf(expInv(r, inv(0)), 1) {
		t.Fatal("zero rate should never fire")
	}
	if v := expInv(r, inv(2)); v <= 0 || math.IsInf(v, 1) {
		t.Fatalf("sample = %v", v)
	}
	if got := inv(4); got != 0.25 {
		t.Fatalf("inv(4) = %v", got)
	}
	if got := inv(-1); got != 0 {
		t.Fatalf("inv(-1) = %v", got)
	}
}

func TestQuickAvailabilityInRange(t *testing.T) {
	f := func(seed uint64, lRaw, hRaw uint8) bool {
		lambda := 1e-6 + float64(lRaw)/255*1e-3
		hep := float64(hRaw) / 255
		p := PaperDefaults(4, lambda, hep)
		s, err := Run(p, Options{Iterations: 20, MissionTime: 1e4, Seed: seed, Workers: 2})
		if err != nil {
			return false
		}
		return s.Availability >= 0 && s.Availability <= 1 &&
			s.MeanDowntimeDU >= 0 && s.MeanDowntimeDL >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickFailoverAvailabilityInRange(t *testing.T) {
	f := func(seed uint64, lRaw, hRaw uint8) bool {
		lambda := 1e-6 + float64(lRaw)/255*1e-3
		hep := float64(hRaw) / 255
		p := PaperDefaults(4, lambda, hep)
		p.Policy = AutoFailover
		s, err := Run(p, Options{Iterations: 20, MissionTime: 1e4, Seed: seed, Workers: 2})
		if err != nil {
			return false
		}
		return s.Availability >= 0 && s.Availability <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
