package sim

import (
	"testing"

	"herald/internal/dist"
)

// These tests force the simulator down the rare fail-over branches
// (double human error, pulled-disk crashes, failures while down) using
// extreme parameters, so the state machine's corner transitions are
// exercised deterministically rather than only by statistical luck.

// forceFailover builds a parameter set whose rates make the targeted
// branch dominant.
func forceFailover(lambda, hep, crash float64) ArrayParams {
	return ArrayParams{
		Disks:        4,
		TTF:          dist.NewExponential(lambda),
		Repair:       dist.NewExponential(0.5),
		TapeRestore:  dist.NewExponential(0.5),
		HERecovery:   dist.NewExponential(0.5),
		HEP:          hep,
		CrashRate:    crash,
		Policy:       AutoFailover,
		SpareRebuild: dist.NewExponential(0.5),
		SpareSwap:    dist.NewExponential(0.5),
	}
}

func TestFailoverDoubleHumanErrorPath(t *testing.T) {
	// hep=0.9: almost every swap pulls a healthy disk and almost every
	// undo pulls another => DUns2 is visited constantly.
	p := forceFailover(1e-3, 0.9, 0.01)
	s, err := Run(p, Options{Iterations: 300, MissionTime: 5e4, Seed: 21, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Events.HumanErrors < 100 {
		t.Fatalf("human errors = %d; branch not exercised", s.Events.HumanErrors)
	}
	if s.MeanDowntimeDU <= 0 {
		t.Fatal("no DU downtime despite constant double errors")
	}
	if s.Availability < 0 || s.Availability > 1 {
		t.Fatalf("availability = %v", s.Availability)
	}
}

func TestFailoverCrashWhilePulledPath(t *testing.T) {
	// Large crash rate: pulled disks die while out (EXPns2 -> EXPns1
	// and DUns1 -> DLns transitions).
	p := forceFailover(1e-3, 0.5, 5)
	s, err := Run(p, Options{Iterations: 300, MissionTime: 5e4, Seed: 22, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Events.Crashes == 0 {
		t.Fatal("no pulled-disk crashes despite crash rate 5/h")
	}
	if s.MeanDowntimeDL <= 0 {
		t.Fatal("crashes should produce data-loss downtime")
	}
}

func TestFailoverFailureWhileDownPath(t *testing.T) {
	// Very hot disks: further failures strike while the array is
	// already unavailable (DUns1/DUns2 -> catastrophic restore).
	p := forceFailover(2e-2, 0.9, 0.001)
	p.HERecovery = dist.NewExponential(0.01) // long DU windows
	s, err := Run(p, Options{Iterations: 200, MissionTime: 2e4, Seed: 23, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Events.DoubleFailures == 0 {
		t.Fatal("no catastrophic losses despite hot disks and long DU windows")
	}
	total := s.MeanDowntimeDU + s.MeanDowntimeDL
	if total <= 0 || total > 2e4 {
		t.Fatalf("downtime %v outside (0, mission]", total)
	}
}

func TestFailoverHEPOneNeverRecoversSpare(t *testing.T) {
	// At hep=1 every swap and every undo errs: the array cycles
	// through pulled states and crash-induced losses but must remain
	// well-defined.
	p := forceFailover(1e-3, 1, 0.2)
	s, err := Run(p, Options{Iterations: 200, MissionTime: 2e4, Seed: 24, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Availability < 0 || s.Availability >= 1 {
		t.Fatalf("availability = %v", s.Availability)
	}
	if s.Events.UndoAttempts == 0 {
		t.Fatal("no undo attempts recorded")
	}
}

func TestFailoverDeterministicServices(t *testing.T) {
	// Deterministic service laws exercise exact ties between service
	// completion and the mission horizon.
	p := forceFailover(1e-4, 0.1, 0.01)
	p.SpareRebuild = dist.NewDeterministic(10)
	p.SpareSwap = dist.NewDeterministic(2)
	p.Repair = dist.NewDeterministic(10)
	p.HERecovery = dist.NewDeterministic(1)
	p.TapeRestore = dist.NewDeterministic(33)
	s, err := Run(p, Options{Iterations: 500, MissionTime: 1e5, Seed: 25, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Availability <= 0 || s.Availability > 1 {
		t.Fatalf("availability = %v", s.Availability)
	}
	if s.Events.Failures == 0 {
		t.Fatal("no failures")
	}
}

func TestConventionalDeterministicServices(t *testing.T) {
	p := PaperDefaults(4, 1e-4, 0.1)
	p.Repair = dist.NewDeterministic(10)
	p.HERecovery = dist.NewDeterministic(1)
	p.TapeRestore = dist.NewDeterministic(33)
	s, err := Run(p, Options{Iterations: 500, MissionTime: 1e5, Seed: 26, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Availability <= 0 || s.Availability > 1 {
		t.Fatalf("availability = %v", s.Availability)
	}
	if s.Events.HumanErrors == 0 {
		t.Fatal("no human errors at hep=0.1")
	}
}

func TestRAID1FailoverSmallestArray(t *testing.T) {
	// n=2 with fail-over: pickOther must always find the single
	// remaining disk and the state machine must not dead-end.
	p := forceFailover(1e-3, 0.5, 0.1)
	p.Disks = 2
	s, err := Run(p, Options{Iterations: 300, MissionTime: 2e4, Seed: 27, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Availability < 0 || s.Availability > 1 {
		t.Fatalf("availability = %v", s.Availability)
	}
}
