package sim

import "math"

// dpMemK holds the dual-parity memoryless kernel's state constants.
// The walker state collapses to the number of missing members (failed
// or wrongly pulled): 0, 1 or 2 while up, plus the DU state where a
// third member is inaccessible. Semantics mirror dualparity.go.
type dpMemK struct {
	invOP float64 // n*lambda: fully redundant

	totE1   float64 // muDF + (n-1)*lambda: exposed-1 service vs failure
	invE1   float64
	cutE1   float64 // failure share
	gapInv  float64 // geomInv of the failure-beats-service probability
	gapQCap float64 // its censoring threshold

	totE2 float64 // muDF + (n-2)*lambda: exposed-2 service vs failure
	invE2 float64
	cutE2 float64 // failure share

	totDU float64 // muHE + crash + (n-3)*lambda: the DU race
	invDU float64
	cutU  float64 // undo share
	cutC  float64 // + crash share

	invTape float64

	// Importance-sampling log-weight constants (see convMemK): the
	// tot*/cut* fields hold bias-inflated winner normalizers, the inv*
	// fields the nominal holding rates. All 0 when the bias factor is 1.
	lnQuietE1 float64
	lnFailE1  float64
	lnQuietE2 float64
	lnFailE2  float64
	lnQuietDU float64
	lnFailDU  float64
}

func makeDpMemK(p *ArrayParams, m memRates, bias float64) dpMemK {
	n := float64(p.Disks)
	var k dpMemK
	k.invOP = inv(n * m.lambda)

	totE1 := m.muDF + (n-1)*m.lambda
	k.totE1 = m.muDF + bias*(n-1)*m.lambda
	k.invE1 = inv(totE1)
	k.cutE1 = bias * (n - 1) * m.lambda
	p1 := k.cutE1 * inv(k.totE1)
	k.gapInv = geomInv(p1)
	k.gapQCap = geomQCap(p1)

	totE2 := m.muDF + (n-2)*m.lambda
	k.totE2 = m.muDF + bias*(n-2)*m.lambda
	k.invE2 = inv(totE2)
	k.cutE2 = bias * (n - 2) * m.lambda

	totDU := m.muHE + p.CrashRate + (n-3)*m.lambda
	k.totDU = m.muHE + p.CrashRate + bias*(n-3)*m.lambda
	k.invDU = inv(totDU)
	k.cutU = m.muHE
	k.cutC = m.muHE + p.CrashRate

	k.invTape = inv(m.muDDF)

	if bias > 1 {
		lnB := math.Log(bias)
		k.lnQuietE1 = math.Log(k.totE1 / totE1)
		k.lnFailE1 = k.lnQuietE1 - lnB
		k.lnQuietE2 = math.Log(k.totE2 / totE2)
		k.lnFailE2 = k.lnQuietE2 - lnB
		if totDU > 0 {
			k.lnQuietDU = math.Log(k.totDU / totDU)
			k.lnFailDU = k.lnQuietDU - lnB
		}
	}
	return k
}

// dualParityMemoryless walks one lifetime of the dual-parity policy's
// CTMC: conventional replacement on an array that tolerates two
// concurrent member losses. Transition-for-transition it mirrors
// dualParity (same event counts, downtime accounting and censoring,
// up to the aging-through-outages refinement documented in
// conventional_memoryless.go); missing counts the members currently
// failed or wrongly pulled.
func (sc *scratch) dualParityMemoryless(mission float64) iterStats {
	k, r, p := &sc.dpK, &sc.src, sc.p
	var st iterStats
	t := 0.0
	missing := 0
	// gap1 skip-samples the exposed-1 race: repair-wins remaining
	// before a second failure beats the service (see
	// conventionalMemoryless's raceGap).
	gap1 := -1
	exact1 := false

	cycleRate := 0.0
	if !sc.noBatch && k.invOP > 0 {
		cycleRate = 1 / (k.invOP + k.invE1)
	}

	for t < mission {
		switch missing {
		case 0:
			if cycleRate > 0 {
				// Benign-cycle aggregation: min(gap1, hepGap) quiet
				// failure-repair cycles collapse into two-Erlang chunks
				// (see conventionalMemoryless).
				if gap1 < 0 || (gap1 == 0 && !exact1) {
					gap1, exact1 = drawGeomGap(r, k.gapInv, k.gapQCap)
				}
				if sc.hepGap < 0 || (sc.hepGap == 0 && !sc.hepExact) {
					sc.drawHEPGap(r)
				}
				for {
					c := quietChunk((mission-t)*cycleRate, gap1, sc.hepGap, math.MaxInt)
					if c == 0 {
						break
					}
					opSum := sc.erlangChunk(c, k.invOP)
					e1Sum := sc.erlangChunk(c, k.invE1)
					if t+opSum+e1Sum >= mission {
						sc.resolveChunk2(&st, t, mission, c, opSum, e1Sum, k.lnQuietE1)
						return st
					}
					t += opSum + e1Sum
					st.events.Failures += int64(c)
					st.logW += float64(c) * k.lnQuietE1
					gap1 -= c
					sc.hepGap -= c
				}
			}
			// Fully redundant: wait for the first failure.
			t += sc.expNext() * k.invOP
			if t >= mission {
				return st
			}
			st.events.Failures++
			missing = 1

		case 1:
			// Exposed-1: repair service races a second failure.
			dt := sc.expNext() * k.invE1
			if t+dt >= mission {
				return st
			}
			t += dt
			if gap1 < 0 || (gap1 == 0 && !exact1) {
				gap1, exact1 = drawGeomGap(r, k.gapInv, k.gapQCap)
			}
			if gap1 == 0 {
				gap1 = -1
				st.events.Failures++
				st.logW += k.lnFailE1
				missing = 2
				continue
			}
			gap1--
			st.logW += k.lnQuietE1
			if !sc.hepTrial(r) {
				missing = 0
				continue
			}
			// Wrong pull: a healthy member joins the missing set, but
			// dual parity keeps the data up (exposed-2).
			st.events.HumanErrors++
			missing = 2

		default:
			// Exposed-2 (up, critical): repair races a third loss.
			dt := sc.expNext() * k.invE2
			if t+dt >= mission {
				return st
			}
			t += dt
			if r.Float64()*k.totE2 < k.cutE2 {
				// Third concurrent loss: data gone.
				st.events.Failures++
				st.events.DoubleFailures++
				st.logW += k.lnFailE2
				t = sc.memDataLoss(&st, t, mission, k.invTape)
				missing = 0
				continue
			}
			st.logW += k.lnQuietE2
			if !sc.hepTrial(r) {
				missing = 1 // one member repaired
				continue
			}
			// Wrong pull with two members already missing: the third
			// inaccessible member makes the data unavailable.
			st.events.HumanErrors++
			duStart := t
			for {
				dt := sc.expNext() * k.invDU
				if t+dt >= mission {
					st.downDU += mission - duStart
					return st
				}
				t += dt
				u := r.Float64() * k.totDU
				if u < k.cutU {
					st.logW += k.lnQuietDU
					st.events.UndoAttempts++
					if sc.hepTrial(r) {
						st.events.HumanErrors++
						continue
					}
					// Undo succeeded; per the analytic chain the array
					// returns to exposed-2, unless the resync policy
					// restores everything.
					if p.ResyncAfterUndo {
						end := t + sc.expNext()*k.invTape
						st.downDU += math.Min(end, mission) - duStart
						t = end
						missing = 0
					} else {
						st.downDU += t - duStart
						// missing stays 2: back to exposed-2.
					}
					break
				}
				st.downDU += t - duStart
				if u < k.cutC {
					st.logW += k.lnQuietDU
					st.events.Crashes++
				} else {
					// Fourth loss while unavailable: catastrophic.
					st.logW += k.lnFailDU
					st.events.Failures++
					st.events.DoubleFailures++
				}
				t = sc.memDataLoss(&st, t, mission, k.invTape)
				missing = 0
				break
			}
		}
	}
	return st
}
