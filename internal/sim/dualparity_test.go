package sim

import (
	"math"
	"testing"

	"herald/internal/model"
)

func dpParams(lambda, hep float64) ArrayParams {
	p := PaperDefaults(6, lambda, hep)
	p.Policy = DualParity
	return p
}

func TestDualParityMatchesMarkovNoHumanError(t *testing.T) {
	lambda := 3e-4 // dense triple-failure statistics
	mc := runFast(t, dpParams(lambda, 0), 3000, 2e5)
	res, err := model.DualParity(model.Paper(6, lambda, 0))
	if err != nil {
		t.Fatal(err)
	}
	assertWithinCI(t, "dual parity hep=0", mc, res.Availability)
	if mc.Events.DoubleFailures == 0 {
		t.Fatal("no triple-loss events sampled; test underpowered")
	}
}

func TestDualParityMatchesMarkovWithHumanError(t *testing.T) {
	lambda, hep := 3e-4, 0.02
	mc := runFast(t, dpParams(lambda, hep), 3000, 2e5)
	res, err := model.DualParity(model.Paper(6, lambda, hep))
	if err != nil {
		t.Fatal(err)
	}
	assertWithinCI(t, "dual parity hep=0.02", mc, res.Availability)
	if mc.Events.HumanErrors == 0 {
		t.Fatal("no human errors sampled")
	}
}

func TestDualParityLiteralVariant(t *testing.T) {
	lambda, hep := 3e-4, 0.02
	p := dpParams(lambda, hep)
	p.ResyncAfterUndo = false
	mc := runFast(t, p, 3000, 2e5)
	mp := model.Paper(6, lambda, hep)
	mp.ResyncAfterUndo = false
	res, err := model.DualParity(mp)
	if err != nil {
		t.Fatal(err)
	}
	assertWithinCI(t, "dual parity literal", mc, res.Availability)
}

func TestDualParityBeatsSingleParityMC(t *testing.T) {
	lambda, hep := 3e-4, 0.01
	single := runFast(t, PaperDefaults(6, lambda, hep), 2000, 2e5)
	double := runFast(t, dpParams(lambda, hep), 2000, 2e5)
	if double.Availability <= single.Availability {
		t.Fatalf("dual parity %v not above single parity %v",
			double.Availability, single.Availability)
	}
}

func TestDualParityValidation(t *testing.T) {
	p := dpParams(1e-4, 0.01)
	p.Disks = 3
	if _, err := Run(p, Options{Iterations: 10, MissionTime: 100}); err == nil {
		t.Fatal("3-disk dual parity accepted")
	}
}

func TestDualParityPolicyString(t *testing.T) {
	if DualParity.String() != "dual-parity" {
		t.Fatal("policy name wrong")
	}
}

func TestNextFailure3(t *testing.T) {
	fail := []float64{5, 2, 9, 1, 7}
	idx, at := nextFailure3(fail, 0, 3, 1, 0)
	if idx != 4 || at != 7 {
		t.Fatalf("got %d@%v, want 4@7", idx, at)
	}
	idx, at = nextFailure3(fail[:3], 0, 0, 1, 2)
	if idx != noDisk || !math.IsInf(at, 1) {
		t.Fatalf("all-excluded gave %d@%v", idx, at)
	}
	// Past-due clamping.
	_, at = nextFailure3(fail, 8, 3, 1, 0)
	if at != 8 {
		t.Fatalf("clamped at %v, want 8", at)
	}
}
