package sim

import (
	"math"
	"testing"

	"herald/internal/model"
)

func TestRunFleetSingleEqualsArray(t *testing.T) {
	p := PaperDefaults(4, 1e-4, 0.01)
	o := Options{Iterations: 500, MissionTime: 1e5, Seed: 3, Workers: 2}
	fleet, err := RunFleet(p, 1, o)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Availability != fleet.Array.Availability {
		t.Fatalf("count=1 fleet %v != array %v", fleet.Availability, fleet.Array.Availability)
	}
	if fleet.HalfWidth != fleet.Array.HalfWidth {
		t.Fatal("count=1 half-width should match array")
	}
}

func TestRunFleetSeriesComposition(t *testing.T) {
	p := PaperDefaults(4, 1e-4, 0.01)
	o := Options{Iterations: 1000, MissionTime: 1e5, Seed: 3, Workers: 2}
	fleet, err := RunFleet(p, 7, o)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(fleet.Array.Availability, 7)
	if math.Abs(fleet.Availability-want) > 1e-12 {
		t.Fatalf("fleet availability %v, want %v", fleet.Availability, want)
	}
	if fleet.Availability >= fleet.Array.Availability {
		t.Fatal("series fleet cannot beat a single array")
	}
	if fleet.HalfWidth <= fleet.Array.HalfWidth {
		t.Fatal("fleet CI must widen with count")
	}
	if fleet.Nines >= fleet.Array.Nines {
		t.Fatal("fleet nines must drop")
	}
}

func TestRunFleetMatchesMarkovComposition(t *testing.T) {
	lambda, hep := 1e-4, 0.01
	p := PaperDefaults(4, lambda, hep)
	o := Options{Iterations: 3000, MissionTime: 2e5, Seed: 11, Workers: 4, Confidence: 0.99}
	fleet, err := RunFleet(p, 7, o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.Conventional(model.Paper(4, lambda, hep))
	if err != nil {
		t.Fatal(err)
	}
	want := model.FleetAvailability(res.Availability, 7)
	tol := 4*fleet.HalfWidth + 0.03*(1-want)
	if diff := math.Abs(fleet.Availability - want); diff > tol {
		t.Fatalf("fleet MC %v vs Markov %v (diff %v, tol %v)", fleet.Availability, want, diff, tol)
	}
}

func TestRunFleetRejectsBadCount(t *testing.T) {
	p := PaperDefaults(4, 1e-4, 0.01)
	if _, err := RunFleet(p, 0, Options{Iterations: 10, MissionTime: 100}); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestPowSmallIntegers(t *testing.T) {
	cases := []struct {
		a    float64
		n    int
		want float64
	}{
		{0.5, 0, 1}, {0.5, 1, 0.5}, {0.5, 2, 0.25}, {2, 10, 1024}, {0.999, 3, 0.999 * 0.999 * 0.999},
	}
	for _, c := range cases {
		if got := pow(c.a, c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("pow(%v,%d) = %v, want %v", c.a, c.n, got, c.want)
		}
	}
}
