package sim

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"herald/internal/stats"
)

func adaptiveTestParams(pol Policy) ArrayParams {
	// High lambda / hep so CI-scale runs see plenty of downtime events.
	p := PaperDefaults(4, 1e-4, 0.02)
	p.Policy = pol
	return p
}

func summaryJSON(t *testing.T, s Summary) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// oracleIterations returns the fixed-N oracle for a target half-width:
// the smallest canonical cell boundary of a cap-iteration run whose
// prefix fold reaches a reported (df = n-1) half-width at or below the
// target. It is computed from one fixed run's partials, independently
// of the adaptive machinery.
func oracleIterations(t *testing.T, p ArrayParams, o Options, target float64) int {
	t.Helper()
	oo := o
	oo.TargetHalfWidth = 0
	oo.MaxIters = 0
	parts, err := RunRange(p, oo, 0, oo.Iterations)
	if err != nil {
		t.Fatal(err)
	}
	conf := oo.Confidence
	if conf == 0 {
		conf = 0.99
	}
	var acc stats.Accumulator
	for i := range parts {
		acc.Merge(&parts[i].Avail)
		if acc.N() >= 2 && acc.HalfWidth(conf) <= target {
			return parts[i].End
		}
	}
	return oo.Iterations
}

// TestAdaptiveStopsAtTarget is the seeded statistical acceptance test:
// on all three policies, an adaptive run stops early with achieved
// half-width at or below the target, within 2x of the fixed-N oracle's
// iteration count, at CI-friendly scales.
func TestAdaptiveStopsAtTarget(t *testing.T) {
	for _, pol := range []Policy{Conventional, AutoFailover, DualParity} {
		p := adaptiveTestParams(pol)
		o := Options{Iterations: 80000, MissionTime: 2e5, Seed: 20170311, Workers: 2}

		// Calibrate the target off a quarter-cap pilot so the oracle
		// lands well inside the cap.
		pilot, err := Run(p, Options{Iterations: 20000, MissionTime: o.MissionTime, Seed: o.Seed, Workers: 2})
		if err != nil {
			t.Fatalf("%v: pilot: %v", pol, err)
		}
		target := pilot.HalfWidth
		oracle := oracleIterations(t, p, o, target)
		if oracle >= o.Iterations {
			t.Fatalf("%v: oracle %d at cap; target %g miscalibrated", pol, oracle, target)
		}

		o.TargetHalfWidth = target
		s, err := Run(p, o)
		if err != nil {
			t.Fatalf("%v: adaptive run: %v", pol, err)
		}
		if s.HalfWidth > target {
			t.Errorf("%v: achieved half-width %g above target %g", pol, s.HalfWidth, target)
		}
		if !s.Converged {
			t.Errorf("%v: adaptive run did not report convergence", pol)
		}
		if s.Iterations >= o.Iterations {
			t.Errorf("%v: adaptive run did not stop early (%d of %d)", pol, s.Iterations, o.Iterations)
		}
		if s.Iterations > 2*oracle {
			t.Errorf("%v: adaptive stopped at %d iterations, over 2x the fixed-N oracle %d", pol, s.Iterations, oracle)
		}
		t.Logf("%v: target %.3g achieved %.3g at %d iterations (oracle %d, cap %d)",
			pol, target, s.HalfWidth, s.Iterations, oracle, o.Iterations)
	}
}

// TestAdaptivePaperConfigStopsEarly pins the acceptance criterion on
// the conventional paper configuration exactly as `availsim
// -target-halfwidth 2e-8 -iters 1000000` runs it: the adaptive run
// stops well before the cap with achieved half-width at or below the
// requested target, at the seeded, deterministic boundary.
func TestAdaptivePaperConfigStopsEarly(t *testing.T) {
	p := PaperDefaults(4, 1e-6, 0.001)
	o := Options{
		Iterations:      1_000_000,
		MissionTime:     1e6,
		Seed:            42,
		Workers:         2,
		Confidence:      0.99,
		TargetHalfWidth: 2e-8,
	}
	s, err := Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if s.Iterations >= o.Iterations {
		t.Fatalf("paper-config adaptive run did not stop early (%d of %d)", s.Iterations, o.Iterations)
	}
	if !s.Converged || s.HalfWidth > o.TargetHalfWidth {
		t.Errorf("achieved half-width %g above target %g (converged=%v)", s.HalfWidth, o.TargetHalfWidth, s.Converged)
	}
	// The stopping boundary is a pure function of (params, options);
	// pin it so a silent change to the scan or rule shows up here.
	// (The value moves when a kernel's draw sequence is deliberately
	// restructured — realization changes are seed-like — most recently
	// for the batched memoryless kernels.)
	if s.Iterations != 179722 {
		t.Errorf("stopped at %d iterations, want the pinned 179722", s.Iterations)
	}
}

// TestAdaptiveDeterministic pins the adaptive determinism contract:
// the stopping boundary and the Summary are bit-identical across
// worker counts, because the rule is evaluated on the canonical
// cell-order fold, never on arrival order.
func TestAdaptiveDeterministic(t *testing.T) {
	p := adaptiveTestParams(Conventional)
	base := Options{Iterations: 60000, MissionTime: 2e5, Seed: 99, TargetHalfWidth: 1.2e-5}
	var want string
	for i, workers := range []int{1, 2, 5} {
		o := base
		o.Workers = workers
		s, err := Run(p, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			want = summaryJSON(t, s)
			if s.Iterations >= base.Iterations {
				t.Fatalf("adaptive run hit the cap (%d); pick a looser target", s.Iterations)
			}
			continue
		}
		if got := summaryJSON(t, s); got != want {
			t.Errorf("workers=%d: summary diverged\n got %s\nwant %s", workers, got, want)
		}
	}
}

// TestAdaptiveFloorAndCap pins the MaxIters/Iterations bounds: the
// rule may not bind below the Iterations floor when MaxIters is set,
// and an unreachable target runs exactly to the cap with Converged
// false.
func TestAdaptiveFloorAndCap(t *testing.T) {
	p := adaptiveTestParams(Conventional)

	// A target so loose the rule would bind almost immediately — the
	// floor must hold it back to at least Iterations.
	o := Options{Iterations: 20000, MaxIters: 40000, MissionTime: 2e5, Seed: 5, Workers: 2, TargetHalfWidth: 1e-2}
	s, err := Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if s.Iterations < 20000 {
		t.Errorf("rule bound at %d iterations, below the %d floor", s.Iterations, 20000)
	}
	if !s.Converged {
		t.Error("loose target did not converge")
	}

	// An unreachable target runs to the cap.
	o = Options{Iterations: 3000, MissionTime: 2e5, Seed: 5, Workers: 2, TargetHalfWidth: 1e-12}
	s, err = Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if s.Iterations != 3000 {
		t.Errorf("capped run kept %d iterations, want 3000", s.Iterations)
	}
	if s.Converged {
		t.Error("capped run claims convergence at an unreachable target")
	}
	// A capped adaptive run is the fixed-N run, bit for bit (modulo the
	// adaptive echo fields).
	fixed, err := Run(p, Options{Iterations: 3000, MissionTime: 2e5, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.TargetHalfWidth, s.Converged = 0, false
	if summaryJSON(t, s) != summaryJSON(t, fixed) {
		t.Error("capped adaptive summary diverged from the fixed-N run")
	}
}

// TestAdaptiveEventStarvedRunsToCap pins the Student-t safeguard: a
// configuration whose iterations almost never see downtime must not
// stop on a spuriously tight (zero-variance or event-starved)
// interval.
func TestAdaptiveEventStarvedRunsToCap(t *testing.T) {
	p := PaperDefaults(4, 1e-9, 0) // essentially no events at this scale
	o := Options{Iterations: 2000, MissionTime: 1e5, Seed: 11, Workers: 2, TargetHalfWidth: 1e-3}
	s, err := Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if s.Iterations != 2000 {
		t.Errorf("event-starved adaptive run stopped at %d, want the 2000 cap", s.Iterations)
	}
	if s.Converged {
		t.Error("event-starved run certified convergence off a zero-variance interval")
	}
}

// TestOptionsAdaptiveValidation pins the new option constraints.
func TestOptionsAdaptiveValidation(t *testing.T) {
	valid := Options{Iterations: 100, MissionTime: 1e5, TargetHalfWidth: 1e-6, MaxIters: 200}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid adaptive options rejected: %v", err)
	}
	for name, o := range map[string]Options{
		"negative target":    {Iterations: 100, MissionTime: 1e5, TargetHalfWidth: -1},
		"NaN target":         {Iterations: 100, MissionTime: 1e5, TargetHalfWidth: math.NaN()},
		"inf target":         {Iterations: 100, MissionTime: 1e5, TargetHalfWidth: math.Inf(1)},
		"max without target": {Iterations: 100, MissionTime: 1e5, MaxIters: 200},
		"max below min":      {Iterations: 300, MissionTime: 1e5, TargetHalfWidth: 1e-6, MaxIters: 200},
		"negative max":       {Iterations: 100, MissionTime: 1e5, TargetHalfWidth: 1e-6, MaxIters: -1},
		"confidence one":     {Iterations: 100, MissionTime: 1e5, Confidence: 1},
		"NaN confidence":     {Iterations: 100, MissionTime: 1e5, Confidence: math.NaN()},
	} {
		if err := o.Validate(); err == nil {
			t.Errorf("%s: options accepted", name)
		}
	}
}

// TestSummarizeArrivalOrderInvariance is the completion-order merging
// property test: any permutation of partial arrival order yields the
// same Summary as the sorted merge for a fixed N.
func TestSummarizeArrivalOrderInvariance(t *testing.T) {
	p := adaptiveTestParams(DualParity)
	o := Options{Iterations: 5000, MissionTime: 2e5, Seed: 31, Workers: 2, HistogramBins: 16}
	parts, err := RunRange(p, o, 0, o.Iterations)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Summarize(o, parts)
	if err != nil {
		t.Fatal(err)
	}
	want := summaryJSON(t, base)

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		perm := append([]Partial(nil), parts...)
		switch trial {
		case 0: // exact reversal
			for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
				perm[i], perm[j] = perm[j], perm[i]
			}
		default:
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		}
		got, err := Summarize(o, perm)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if g := summaryJSON(t, got); g != want {
			t.Fatalf("trial %d: permuted merge diverged\n got %s\nwant %s", trial, g, want)
		}
	}
}

// TestRunRangeStreamMatchesRunRange pins that streaming delivery is a
// pure reordering: the delivered cell set equals RunRange's output.
func TestRunRangeStreamMatchesRunRange(t *testing.T) {
	p := adaptiveTestParams(AutoFailover)
	o := Options{Iterations: 4000, MissionTime: 2e5, Seed: 17, Workers: 3}
	want, err := RunRange(p, o, 0, o.Iterations)
	if err != nil {
		t.Fatal(err)
	}
	out := make(chan Partial, len(Cells(o.Iterations)))
	if err := RunRangeStream(p, o, 0, o.Iterations, out, nil); err != nil {
		t.Fatal(err)
	}
	got := make(map[int]Partial)
	for pt := range out {
		got[pt.Start] = pt
	}
	if len(got) != len(want) {
		t.Fatalf("stream delivered %d cells, want %d", len(got), len(want))
	}
	for _, w := range want {
		g, ok := got[w.Start]
		if !ok {
			t.Fatalf("cell [%d,%d) not delivered", w.Start, w.End)
		}
		gb, _ := json.Marshal(g)
		wb, _ := json.Marshal(w)
		if string(gb) != string(wb) {
			t.Errorf("cell [%d,%d) diverged between stream and RunRange", w.Start, w.End)
		}
	}
}

// TestRunRangeStreamStop pins cancellation: closing stop after the
// first delivery ends the stream early with ErrStopped, and every
// delivered cell is still valid.
func TestRunRangeStreamStop(t *testing.T) {
	p := adaptiveTestParams(Conventional)
	o := Options{Iterations: 50000, MissionTime: 2e5, Seed: 23, Workers: 2}
	// Unbuffered: workers block on delivery, so cells provably cannot
	// all drain before the stop lands, however the test goroutine is
	// scheduled.
	out := make(chan Partial)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() { errc <- RunRangeStream(p, o, 0, o.Iterations, out, stop) }()

	first, ok := <-out
	if !ok {
		t.Fatal("stream closed without delivering anything")
	}
	close(stop)
	n := 1
	for pt := range out {
		if pt.Avail.N() != int64(pt.End-pt.Start) {
			t.Errorf("cell [%d,%d) carries %d observations", pt.Start, pt.End, pt.Avail.N())
		}
		n++
	}
	if err := <-errc; err != ErrStopped {
		t.Fatalf("stream returned %v, want ErrStopped", err)
	}
	if first.Avail.N() != int64(first.End-first.Start) {
		t.Error("first delivered cell invalid")
	}
	if n >= len(Cells(o.Iterations)) {
		t.Errorf("stream delivered all %d cells despite the stop", n)
	}
}
