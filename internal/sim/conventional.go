package sim

import "math"

// conventional walks one array lifetime under the conventional
// replacement policy (paper Fig. 1 / Fig. 2 structure):
//
//	OK --disk failure--> EXPOSED --second failure--> DATA LOSS
//	                      |            (tape restore, downtime DL)
//	                      +--service, correct--> OK
//	                      +--service, wrong disk pulled--> DU
//	DU --undo attempt ok--> OK         (downtime DU)
//	DU --pulled disk crashes--> DATA LOSS
//	DU --another member fails--> DATA LOSS   (MC-only refinement)
//
// The EXPOSED state is degraded but up; DU and DATA LOSS are down.
func (sc *scratch) conventional(mission float64) iterStats {
	p, r := sc.p, &sc.src
	n := p.Disks
	fail := sc.fail
	sc.ttf.sampleN(r, fail)
	var st iterStats
	t := 0.0

	// The repair and TTF draws run once per failure event; hoisting
	// the inverse rates lets the expInv fast path inline here, with
	// the interface dispatch outlined to the rare non-memoryless case
	// (see expInv's inlining note).
	repairInv := sc.repair.invRate
	ttfInv := sc.ttf.invRate

	for t < mission {
		// All members nominally present; wait for the first failure.
		// One scan yields both the failing member and the runner-up
		// clock the exposed-state race needs; expired clocks fire at
		// the current time, matching nextFailure's clamp.
		var fi, si int
		var tFail, tSecond float64
		if n == 4 {
			fi, tFail, si, tSecond = twoMin4(fail)
		} else {
			fi, tFail, si, tSecond = twoMin(fail)
		}
		if tFail < t {
			tFail = t
		}
		if tSecond < tFail {
			tSecond = tFail
		}
		if tFail >= mission {
			break
		}
		st.events.Failures++
		t = tFail

		// Exposed: replacement service races a second member failure.
		svc := expInv(r, repairInv)
		if repairInv == 0 {
			svc = sc.repair.sampleSlow(r)
		}
		repairEnd := t + svc
		if tSecond < repairEnd {
			if tSecond >= mission {
				break // exposed is up; mission ends first
			}
			// Double disk failure: data loss, restore from backup.
			st.events.Failures++
			st.events.DoubleFailures++
			t = sc.dataLoss(&st, tSecond, mission, fi, si)
			continue
		}
		if repairEnd >= mission {
			break
		}
		t = repairEnd
		if !sc.hepTrial(r) {
			// Correct replacement: the failed member is fresh.
			life := expInv(r, ttfInv)
			if ttfInv == 0 {
				life = sc.ttf.sampleSlow(r)
			}
			fail[fi] = t + life
			continue
		}

		// Wrong disk replacement: a healthy member was pulled. The
		// array is unavailable until the error is undone; meanwhile
		// the pulled disk may crash and other members may fail.
		st.events.HumanErrors++
		pi := pickOther(r, n, fi, noDisk)
		duStart := t
		cur := t
		resolved := false
		for !resolved {
			attemptEnd := cur + sc.herec.sample(r)
			crashAt := cur + expInv(r, sc.crashInv)
			oi, tOther := nextFailure(fail, cur, fi, pi)
			next := math.Min(attemptEnd, math.Min(crashAt, tOther))
			if next >= mission {
				st.downDU += mission - duStart
				t = mission
				break
			}
			switch next {
			case tOther:
				// A further member failed while unavailable: even a
				// successful undo leaves two lost members => data loss.
				st.events.Failures++
				st.events.DoubleFailures++
				st.downDU += tOther - duStart
				t = sc.dataLoss(&st, tOther, mission, fi, oi)
				resolved = true
			case crashAt:
				// The wrongly removed disk crashed while out.
				st.events.Crashes++
				st.downDU += crashAt - duStart
				t = sc.dataLoss(&st, crashAt, mission, fi, pi)
				resolved = true
			default:
				st.events.UndoAttempts++
				if sc.hepTrial(r) {
					// The undo itself went wrong; array stays DU.
					st.events.HumanErrors++
					cur = attemptEnd
					continue
				}
				// Error undone: pulled disk re-seated (keeps its age),
				// failed member properly replaced. When configured,
				// the array additionally restores consistency from
				// backup before coming back up.
				end := attemptEnd
				if p.ResyncAfterUndo {
					end += sc.tape.sample(r)
				}
				st.downDU += math.Min(end, mission) - duStart
				fail[fi] = end + sc.ttf.sample(r)
				t = end
				resolved = true
			}
		}
	}
	return st
}

// dataLoss accounts a data-loss interval starting at start, restores
// from backup, refreshes the two lost members, and returns the time
// the array is operational again (clipped at mission end).
func (sc *scratch) dataLoss(st *iterStats, start, mission float64, d1, d2 int) float64 {
	r := &sc.src
	restoreEnd := start + sc.tape.sample(r)
	end := math.Min(restoreEnd, mission)
	st.downDL += end - start
	if d1 != noDisk {
		sc.fail[d1] = restoreEnd + sc.ttf.sample(r)
	}
	if d2 != noDisk {
		sc.fail[d2] = restoreEnd + sc.ttf.sample(r)
	}
	sc.clocksChanged()
	return restoreEnd
}
