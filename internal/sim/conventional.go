package sim

import (
	"math"

	"herald/internal/xrand"
)

// simulateConventional walks one array lifetime under the conventional
// replacement policy (paper Fig. 1 / Fig. 2 structure):
//
//	OK --disk failure--> EXPOSED --second failure--> DATA LOSS
//	                      |            (tape restore, downtime DL)
//	                      +--service, correct--> OK
//	                      +--service, wrong disk pulled--> DU
//	DU --undo attempt ok--> OK         (downtime DU)
//	DU --pulled disk crashes--> DATA LOSS
//	DU --another member fails--> DATA LOSS   (MC-only refinement)
//
// The EXPOSED state is degraded but up; DU and DATA LOSS are down.
func simulateConventional(p *ArrayParams, r *xrand.Source, mission float64) iterStats {
	n := p.Disks
	fail := make([]float64, n)
	for i := range fail {
		fail[i] = p.TTF.Sample(r)
	}
	var st iterStats
	t := 0.0

	for t < mission {
		// All members nominally present; wait for the first failure.
		fi, tFail := nextFailure(fail, t, noDisk, noDisk)
		if tFail >= mission {
			break
		}
		st.events.Failures++
		t = tFail

		// Exposed: replacement service races a second member failure.
		repairEnd := t + p.Repair.Sample(r)
		si, tSecond := nextFailure(fail, t, fi, noDisk)
		if tSecond < repairEnd {
			if tSecond >= mission {
				break // exposed is up; mission ends first
			}
			// Double disk failure: data loss, restore from backup.
			st.events.Failures++
			st.events.DoubleFailures++
			t = dataLoss(p, r, &st, tSecond, mission, fail, fi, si)
			continue
		}
		if repairEnd >= mission {
			break
		}
		t = repairEnd
		if !r.Bernoulli(p.HEP) {
			// Correct replacement: the failed member is fresh.
			fail[fi] = t + p.TTF.Sample(r)
			continue
		}

		// Wrong disk replacement: a healthy member was pulled. The
		// array is unavailable until the error is undone; meanwhile
		// the pulled disk may crash and other members may fail.
		st.events.HumanErrors++
		pi := pickOther(r, n, fi, noDisk)
		duStart := t
		cur := t
		resolved := false
		for !resolved {
			attemptEnd := cur + p.HERecovery.Sample(r)
			crashAt := cur + expSample(r, p.CrashRate)
			oi, tOther := nextFailure(fail, cur, fi, pi)
			next := math.Min(attemptEnd, math.Min(crashAt, tOther))
			if next >= mission {
				st.downDU += mission - duStart
				t = mission
				break
			}
			switch next {
			case tOther:
				// A further member failed while unavailable: even a
				// successful undo leaves two lost members => data loss.
				st.events.Failures++
				st.events.DoubleFailures++
				st.downDU += tOther - duStart
				t = dataLoss(p, r, &st, tOther, mission, fail, fi, oi)
				resolved = true
			case crashAt:
				// The wrongly removed disk crashed while out.
				st.events.Crashes++
				st.downDU += crashAt - duStart
				t = dataLoss(p, r, &st, crashAt, mission, fail, fi, pi)
				resolved = true
			default:
				st.events.UndoAttempts++
				if r.Bernoulli(p.HEP) {
					// The undo itself went wrong; array stays DU.
					st.events.HumanErrors++
					cur = attemptEnd
					continue
				}
				// Error undone: pulled disk re-seated (keeps its age),
				// failed member properly replaced. When configured,
				// the array additionally restores consistency from
				// backup before coming back up.
				end := attemptEnd
				if p.ResyncAfterUndo {
					end += p.TapeRestore.Sample(r)
				}
				st.downDU += math.Min(end, mission) - duStart
				fail[fi] = end + p.TTF.Sample(r)
				t = end
				resolved = true
			}
		}
	}
	return st
}

// dataLoss accounts a data-loss interval starting at start, restores
// from backup, refreshes the two lost members, and returns the time
// the array is operational again (clipped at mission end).
func dataLoss(p *ArrayParams, r *xrand.Source, st *iterStats, start, mission float64, fail []float64, d1, d2 int) float64 {
	restoreEnd := start + p.TapeRestore.Sample(r)
	end := math.Min(restoreEnd, mission)
	st.downDL += end - start
	if d1 != noDisk {
		fail[d1] = restoreEnd + p.TTF.Sample(r)
	}
	if d2 != noDisk {
		fail[d2] = restoreEnd + p.TTF.Sample(r)
	}
	return restoreEnd
}
