package sim

import "math"

// dualParity walks one array lifetime for a dual-parity
// (RAID6-style) array under conventional replacement, mirroring
// model.DualParityChain:
//
//   - one failed member: exposed-1 (up); service repairs it, a wrong
//     pull leaves two members missing => exposed-2 (still up);
//   - two failed/missing members: exposed-2 (up, critical); service
//     repairs one, a wrong pull takes the third member => DU (down);
//   - three concurrent losses => data loss (tape restore);
//   - in DU, undo attempts race the pulled disk's crash and further
//     failures; a successful undo is followed by the configured
//     resync restore.
//
// Repair services restore one member at a time (rate muDF each), as in
// the analytic chain.
func (sc *scratch) dualParity(mission float64) iterStats {
	p, r := sc.p, &sc.src
	n := p.Disks
	fail := sc.fail
	sc.ttf.sampleN(r, fail)
	var st iterStats
	t := 0.0
	// missing tracks the indices currently failed or wrongly pulled
	// (at most 3 before a restore).
	var down1, down2 int = noDisk, noDisk

	for t < mission {
		switch {
		case down1 == noDisk:
			// Fully redundant: wait for the first failure.
			fi, tFail := nextFailure(fail, t, noDisk, noDisk)
			if tFail >= mission {
				return st
			}
			st.events.Failures++
			down1, t = fi, tFail

		case down2 == noDisk:
			// Exposed-1: repair service races a second failure.
			svcEnd := t + sc.repair.sample(r)
			si, tSecond := nextFailure(fail, t, down1, noDisk)
			if math.Min(svcEnd, tSecond) >= mission {
				return st
			}
			if tSecond < svcEnd {
				st.events.Failures++
				down2, t = si, tSecond
				continue
			}
			t = svcEnd
			if !sc.hepTrial(r) {
				fail[down1] = t + sc.ttf.sample(r)
				down1 = noDisk
				continue
			}
			// Wrong pull: a healthy member joins the missing set, but
			// dual parity keeps the data up (exposed-2).
			st.events.HumanErrors++
			down2 = pickOther(r, n, down1, noDisk)

		default:
			// Exposed-2 (up, critical): repair service races a third
			// loss.
			svcEnd := t + sc.repair.sample(r)
			oi, tThird := nextFailure(fail, t, down1, down2)
			if math.Min(svcEnd, tThird) >= mission {
				return st
			}
			if tThird < svcEnd {
				// Third concurrent loss: data gone.
				st.events.Failures++
				st.events.DoubleFailures++
				t = sc.dataLoss(&st, tThird, mission, down1, down2)
				fail[oi] = t + sc.ttf.sample(r)
				down1, down2 = noDisk, noDisk
				continue
			}
			t = svcEnd
			if !sc.hepTrial(r) {
				// One member repaired; back to exposed-1.
				fail[down1] = t + sc.ttf.sample(r)
				down1, down2 = down2, noDisk
				continue
			}
			// Wrong pull with two members already missing: the third
			// inaccessible member makes the data unavailable.
			st.events.HumanErrors++
			pulled := pickOther(r, n, down1, down2)
			duStart := t
			cur := t
			for {
				attemptEnd := cur + sc.herec.sample(r)
				crashAt := cur + expInv(r, sc.crashInv)
				xi, tOther := nextFailure3(fail, cur, down1, down2, pulled)
				next := math.Min(attemptEnd, math.Min(crashAt, tOther))
				if next >= mission {
					st.downDU += mission - duStart
					return st
				}
				if tOther == next {
					// Fourth loss while unavailable: catastrophic.
					st.events.Failures++
					st.events.DoubleFailures++
					st.downDU += tOther - duStart
					t = sc.dataLoss(&st, tOther, mission, down1, down2)
					fail[pulled] = t + sc.ttf.sample(r)
					fail[xi] = t + sc.ttf.sample(r)
					down1, down2 = noDisk, noDisk
					break
				}
				if crashAt == next {
					st.events.Crashes++
					st.downDU += crashAt - duStart
					t = sc.dataLoss(&st, crashAt, mission, down1, down2)
					fail[pulled] = t + sc.ttf.sample(r)
					down1, down2 = noDisk, noDisk
					break
				}
				st.events.UndoAttempts++
				if sc.hepTrial(r) {
					st.events.HumanErrors++
					cur = attemptEnd
					continue
				}
				// Undo succeeded; per the analytic chain the array
				// returns to exposed-2 (the pulled member re-seats),
				// unless the resync policy restores everything.
				end := attemptEnd
				if p.ResyncAfterUndo {
					end += sc.tape.sample(r)
					st.downDU += math.Min(end, mission) - duStart
					fail[down1] = end + sc.ttf.sample(r)
					fail[down2] = end + sc.ttf.sample(r)
					down1, down2 = noDisk, noDisk
				} else {
					st.downDU += attemptEnd - duStart
				}
				t = end
				break
			}
		}
	}
	return st
}

// nextFailure3 is nextFailure with three exclusions.
func nextFailure3(fail []float64, now float64, ex1, ex2, ex3 int) (int, float64) {
	idx, at := -1, math.Inf(1)
	for i, f := range fail {
		if i == ex1 || i == ex2 || i == ex3 {
			continue
		}
		if f < at {
			idx, at = i, f
		}
	}
	if idx >= 0 && at < now {
		at = now
	}
	return idx, at
}
