package sim

import (
	"math"
	"strings"
	"testing"

	"herald/internal/dist"
	"herald/internal/model"
)

// These tests pin the kernel dispatch layer: which configurations
// specialize, that forcing an impossible specialization fails loudly,
// and — the correctness contract of the whole layer — that the
// rate-based memoryless walkers are statistically indistinguishable
// from the generic clock walkers and agree with the internal/markov
// closed forms on memoryless configurations.

func TestKernelResolution(t *testing.T) {
	exp := PaperDefaults(4, 1e-4, 0.01)
	cases := []struct {
		name string
		p    ArrayParams
		req  Kernel
		want Kernel
	}{
		{"auto specializes exponential", exp, KernelAuto, KernelMemoryless},
		{"generic forces clocks", exp, KernelGeneric, KernelGeneric},
		{"memoryless honored", exp, KernelMemoryless, KernelMemoryless},
		{"weibull shape 1 is memoryless", func() ArrayParams {
			p := exp
			p.TTF = dist.WeibullFromMeanRate(1e-4, 1)
			return p
		}(), KernelAuto, KernelMemoryless},
		{"erlang stage 1 is memoryless", func() ArrayParams {
			p := exp
			p.Repair = dist.NewErlang(1, 0.1)
			return p
		}(), KernelAuto, KernelMemoryless},
		{"weibull wear-out falls back", func() ArrayParams {
			p := exp
			p.TTF = dist.WeibullFromMeanRate(1e-4, 1.48)
			return p
		}(), KernelAuto, KernelGeneric},
		{"lognormal undo falls back", func() ArrayParams {
			p := exp
			p.HERecovery = dist.NewLognormal(0, 1)
			return p
		}(), KernelAuto, KernelGeneric},
		{"hep 0 ignores the undo law", func() ArrayParams {
			p := exp
			p.HEP = 0
			p.HERecovery = dist.NewLognormal(0, 1)
			return p
		}(), KernelAuto, KernelMemoryless},
		{"failover checks the spare laws", func() ArrayParams {
			p := exp
			p.Policy = AutoFailover
			p.SpareRebuild = dist.LognormalFromMeanMedian(10, 6)
			return p
		}(), KernelAuto, KernelGeneric},
	}
	for _, c := range cases {
		got, err := ResolveKernel(c.p, c.req)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: resolved %v, want %v", c.name, got, c.want)
		}
	}
}

func TestForcedMemorylessRejectsGenericLaws(t *testing.T) {
	p := PaperDefaults(4, 1e-4, 0.01)
	p.TTF = dist.WeibullFromMeanRate(1e-4, 1.48)
	if _, err := ResolveKernel(p, KernelMemoryless); err == nil {
		t.Error("ResolveKernel accepted a Weibull TTF under KernelMemoryless")
	}
	_, err := Run(p, Options{Iterations: 10, MissionTime: 1e4, Kernel: KernelMemoryless})
	if err == nil {
		t.Fatal("Run accepted a Weibull TTF under KernelMemoryless")
	}
	if !strings.Contains(err.Error(), "exponential") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestKernelOptionValidation(t *testing.T) {
	p := PaperDefaults(4, 1e-4, 0.01)
	if _, err := Run(p, Options{Iterations: 10, MissionTime: 100, Kernel: Kernel(9)}); err == nil {
		t.Error("unknown kernel accepted")
	}
	if ParseKernelMust(t, "auto") != KernelAuto ||
		ParseKernelMust(t, "generic") != KernelGeneric ||
		ParseKernelMust(t, "memoryless") != KernelMemoryless {
		t.Error("ParseKernel mapping wrong")
	}
	if _, err := ParseKernel("ctmc"); err == nil {
		t.Error("ParseKernel accepted an unknown token")
	}
	for _, k := range []Kernel{KernelAuto, KernelGeneric, KernelMemoryless, Kernel(9)} {
		if k.String() == "" {
			t.Errorf("empty name for kernel %d", int(k))
		}
	}
}

func ParseKernelMust(t *testing.T, s string) Kernel {
	t.Helper()
	k, err := ParseKernel(s)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// equivCase is one policy's configuration for the kernel equivalence
// sweep. Rates are inflated against the paper defaults so that 1e5
// iterations produce dense second-order statistics.
type equivCase struct {
	name string
	p    ArrayParams
}

func equivCases() []equivCase {
	conv := PaperDefaults(4, 1e-4, 0.01)
	fo := PaperDefaults(4, 1e-4, 0.01)
	fo.Policy = AutoFailover
	dp := PaperDefaults(6, 3e-4, 0.02)
	dp.Policy = DualParity
	return []equivCase{{"conventional", conv}, {"failover", fo}, {"dualparity", dp}}
}

// TestMemorylessMatchesGenericCIOverlap is the acceptance gate of the
// specialization: at 1e5 iterations per kernel, the generic and
// memoryless estimates of availability must have overlapping 99%
// confidence intervals, the downtime means must agree to a few
// percent, and the per-iteration event frequencies must match within
// their sampling noise — for every policy.
func TestMemorylessMatchesGenericCIOverlap(t *testing.T) {
	const iters = 100000
	for _, c := range equivCases() {
		o := Options{Iterations: iters, MissionTime: 2e5, Confidence: 0.99}
		og := o
		og.Seed, og.Kernel = 1701, KernelGeneric
		om := o
		om.Seed, om.Kernel = 1702, KernelMemoryless
		g, err := Run(c.p, og)
		if err != nil {
			t.Fatalf("%s generic: %v", c.name, err)
		}
		m, err := Run(c.p, om)
		if err != nil {
			t.Fatalf("%s memoryless: %v", c.name, err)
		}

		if d := math.Abs(g.Availability - m.Availability); d > g.HalfWidth+m.HalfWidth {
			t.Errorf("%s: availability CIs do not overlap: generic %v±%v vs memoryless %v±%v",
				c.name, g.Availability, g.HalfWidth, m.Availability, m.HalfWidth)
		}
		relCheck := func(metric string, a, b, tol float64) {
			if a == 0 && b == 0 {
				return
			}
			if d := math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b)); d > tol {
				t.Errorf("%s: %s differs %.1f%% (generic %v vs memoryless %v, tol %.0f%%)",
					c.name, metric, 100*d, a, b, 100*tol)
			}
		}
		relCheck("mean DU downtime", g.MeanDowntimeDU, m.MeanDowntimeDU, 0.10)
		relCheck("mean DL downtime", g.MeanDowntimeDL, m.MeanDowntimeDL, 0.10)
		relCheck("failures", float64(g.Events.Failures), float64(m.Events.Failures), 0.01)
		relCheck("double failures", float64(g.Events.DoubleFailures), float64(m.Events.DoubleFailures), 0.10)
		relCheck("human errors", float64(g.Events.HumanErrors), float64(m.Events.HumanErrors), 0.05)
		relCheck("undo attempts", float64(g.Events.UndoAttempts), float64(m.Events.UndoAttempts), 0.05)
		relCheck("crashes", float64(g.Events.Crashes), float64(m.Events.Crashes), 0.30)
	}
}

// TestMemorylessMatchesCTMC closes the triangle: the specialized
// kernels must agree with the closed-form CTMC solutions the paper
// validates against — the same assertion the generic walkers already
// satisfy in sim_test.go / dualparity_test.go.
func TestMemorylessMatchesCTMC(t *testing.T) {
	run := func(p ArrayParams) Summary {
		t.Helper()
		s, err := Run(p, Options{
			Iterations: 3000, MissionTime: 2e5, Seed: 12345, Workers: 4,
			Confidence: 0.99, Kernel: KernelMemoryless,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	lambda, hep := 1e-4, 0.01
	mc := run(PaperDefaults(4, lambda, hep))
	res, err := model.Conventional(model.Paper(4, lambda, hep))
	if err != nil {
		t.Fatal(err)
	}
	assertWithinCI(t, "memoryless conventional", mc, res.Availability)

	fp := PaperDefaults(4, lambda, 0.02)
	fp.Policy = AutoFailover
	mc = run(fp)
	mp := model.PaperFailover(4, lambda, 0.02)
	mp.InstallAsSpare = false
	mp.DownAltService = false
	fres, err := model.Failover(mp)
	if err != nil {
		t.Fatal(err)
	}
	assertWithinCI(t, "memoryless failover", mc, fres.Availability)

	dp := PaperDefaults(6, 3e-4, 0.02)
	dp.Policy = DualParity
	mc = run(dp)
	dres, err := model.DualParity(model.Paper(6, 3e-4, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	assertWithinCI(t, "memoryless dual parity", mc, dres.Availability)
}

// TestMemorylessEdgeBehaviors ports the generic walkers' edge pins to
// the specialized kernels: hep=1 missions terminate with sane
// availability, and downtime never exceeds a short mission.
func TestMemorylessEdgeBehaviors(t *testing.T) {
	for _, c := range equivCases() {
		p := c.p
		p.HEP = 1
		s, err := Run(p, Options{
			Iterations: 200, MissionTime: 1e5, Seed: 8, Kernel: KernelMemoryless,
		})
		if err != nil {
			t.Fatalf("%s hep=1: %v", c.name, err)
		}
		if s.Availability < 0 || s.Availability >= 1 {
			t.Errorf("%s hep=1: availability = %v", c.name, s.Availability)
		}
		if s.MeanDowntimeDU <= 0 {
			t.Errorf("%s hep=1: expected DU downtime", c.name)
		}

		p = c.p
		p.TTF = dist.NewExponential(0.5)
		s, err = Run(p, Options{
			Iterations: 500, MissionTime: 10, Seed: 9, Kernel: KernelMemoryless,
		})
		if err != nil {
			t.Fatalf("%s short mission: %v", c.name, err)
		}
		if s.MeanDowntimeDU+s.MeanDowntimeDL > 10+1e-9 {
			t.Errorf("%s: downtime %v exceeds 10h mission", c.name,
				s.MeanDowntimeDU+s.MeanDowntimeDL)
		}
	}
}
