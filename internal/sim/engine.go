package sim

import (
	"fmt"
	"math"

	"herald/internal/dist"
	"herald/internal/xrand"
)

// sampler caches the devirtualized fast path for one distribution,
// resolved once per worker instead of per draw: memoryless laws
// (rate > 0, see dist.Memoryless) are drawn inline via
// expInv(r, invRate) with no interface dispatch, and laws implementing
// dist.BatchSampler fill slices through their batch algorithm.
type sampler struct {
	d     dist.Distribution
	batch dist.BatchSampler
	// rate > 0 marks a memoryless law; invRate caches 1/rate so the
	// hot path multiplies instead of divides (the values differ from
	// Exponential.Sample in the last ulp, which the stream-level
	// determinism contract permits).
	rate    float64
	invRate float64
}

func newSampler(d dist.Distribution) sampler {
	sp := sampler{d: d}
	if d == nil {
		return sp
	}
	if rate, ok := dist.Memoryless(d); ok {
		sp.rate = rate
		sp.invRate = 1 / rate
	}
	if b, ok := d.(dist.BatchSampler); ok {
		sp.batch = b
	}
	return sp
}

// sample draws one variate: inline exponential draws when the law
// allows it, one interface dispatch otherwise.
func (sp *sampler) sample(r *xrand.Source) float64 {
	if sp.rate > 0 {
		return expInv(r, sp.invRate)
	}
	return sp.sampleSlow(r)
}

func (sp *sampler) sampleSlow(r *xrand.Source) float64 { return sp.d.Sample(r) }

// sampleN fills dst with independent draws.
func (sp *sampler) sampleN(r *xrand.Source, dst []float64) {
	if sp.rate > 0 {
		for i := range dst {
			dst[i] = expInv(r, sp.invRate)
		}
		return
	}
	if sp.batch != nil {
		sp.batch.SampleN(r, dst)
		return
	}
	for i := range dst {
		dst[i] = sp.d.Sample(r)
	}
}

// memRates are the hazard rates of a fully memoryless configuration —
// the input of the rate-based kernels. muHE is 0 when HEP is 0 (the
// undo law is never drawn); muS and muCH are 0 outside AutoFailover.
type memRates struct {
	lambda float64 // per-disk failure
	muDF   float64 // replacement / rebuild service
	muDDF  float64 // tape restore
	muHE   float64 // human-error undo attempt
	muS    float64 // on-line rebuild to hot spare
	muCH   float64 // spare swap
}

// memorylessRates resolves the configuration's rates when every law
// the policy draws from answers dist.Memoryless.
func memorylessRates(p *ArrayParams) (memRates, bool) {
	var m memRates
	var ok bool
	if m.lambda, ok = dist.Memoryless(p.TTF); !ok {
		return m, false
	}
	if m.muDF, ok = dist.Memoryless(p.Repair); !ok {
		return m, false
	}
	if m.muDDF, ok = dist.Memoryless(p.TapeRestore); !ok {
		return m, false
	}
	if p.HEP > 0 {
		if m.muHE, ok = dist.Memoryless(p.HERecovery); !ok {
			return m, false
		}
	}
	if p.Policy == AutoFailover {
		if m.muS, ok = dist.Memoryless(p.SpareRebuild); !ok {
			return m, false
		}
		if m.muCH, ok = dist.Memoryless(p.SpareSwap); !ok {
			return m, false
		}
	}
	return m, true
}

// resolveKernel maps the requested kernel onto a walker choice for p.
// It is the options-resolution step of the dispatch layer: RunRange
// calls it before spawning workers so a forced-but-impossible
// specialization fails the run instead of silently degrading.
func resolveKernel(p *ArrayParams, k Kernel) (memRates, bool, error) {
	switch k {
	case KernelGeneric:
		return memRates{}, false, nil
	case KernelAuto, KernelMemoryless:
		m, ok := memorylessRates(p)
		if !ok && k == KernelMemoryless {
			return memRates{}, false, fmt.Errorf(
				"sim: kernel %v requires exponential laws throughout (TTF %v, repair %v, restore %v)",
				k, p.TTF, p.Repair, p.TapeRestore)
		}
		return m, ok, nil
	default:
		return memRates{}, false, fmt.Errorf("sim: unknown kernel %d", int(k))
	}
}

const (
	// expBufLen is the refill granularity of the scratch's rate-1
	// exponential buffer: small enough that the draws left unread at
	// iteration end (the buffer never carries across iterations) stay
	// cheap — with aggregation, an iteration's individual cycles only
	// need a handful — large enough to amortize ExpFloat64N's
	// batching win.
	expBufLen = 8

	// aggMin and aggMax bound benign-cycle aggregation chunks: below
	// aggMin cycles the Erlang draws stop paying for themselves and
	// the walkers fall back to individual cycles; aggMax matches the
	// stage counts dist.ErlangFloat64 has cached constants for.
	aggMin = 2
	aggMax = 64
)

// scratch is one worker's reusable simulation state: the failure-clock
// slice, an in-place reseedable stream, the resolved samplers and the
// kernel choice. Allocated once per worker, it makes the per-iteration
// hot loop allocation-free (pinned by TestHotLoopZeroAllocs).
type scratch struct {
	p    *ArrayParams
	src  xrand.Source
	fail []float64

	// expPos indexes the first unread variate of expBuf (the buffer
	// itself lives at the end of the struct, keeping the hot scalar
	// fields on few cache lines). noBatch (test-only, from Options)
	// bypasses both the refill buffer and benign-cycle aggregation,
	// giving the unbatched reference realization.
	expPos  int
	noBatch bool

	// hepGap counts the human-error Bernoulli(HEP) trials remaining
	// before the next error fires (geometric skip sampling: one log
	// draw per error instead of one uniform per trial). -1 means not
	// drawn yet; iterate resets it so iterations stay independent.
	// hepExact records whether the current value is a materialized gap
	// or a censored horizon (see drawGeomGap); hepInv and hepQCap are
	// the trial probability's precomputed geomInv divisor and
	// censoring threshold.
	hepGap   int
	hepExact bool
	hepInv   float64
	hepQCap  float64

	ttf, repair, tape, herec, rebuild, swap sampler

	// crashInv / crash2Inv cache the inverse crash-clock rates for
	// expInv (0 when the disks never crash while pulled).
	crashInv, crash2Inv float64

	// memoryless is true when this scratch runs the rate-based
	// kernels; the per-policy constant blocks below are then resolved.
	memoryless bool
	convK      convMemK
	foK        foMemK
	dpK        dpMemK

	// Cached two-min failure scan, threaded through the fail-over
	// phase machine: scanOK is invalidated whenever a clock changes
	// (clocksChanged), so phases that exclude at most one disk reuse
	// one scan instead of re-scanning per transition.
	scanOK         bool
	scanI1, scanI2 int
	scanT1, scanT2 float64

	// expBuf[expPos:] holds rate-1 exponentials not yet handed out;
	// refills draw from the iteration's stream (ExpFloat64N), and
	// iterate marks the buffer empty at each reseed, so buffered draws
	// remain a pure function of (seed, iteration) — the buffer is
	// logically part of the iteration's stream, never shared across
	// iterations.
	expBuf [expBufLen]float64

	// aggA/aggB/aggC are the per-phase stage scratch of the censored
	// chunk resolution (resolveChunk2/resolveChunk3), sized to the
	// largest aggregation chunk. Cold: touched at most once per
	// iteration, at mission end.
	aggA, aggB, aggC [aggMax]float64
}

// newScratch builds a worker's scratch for the given kernel request.
// Kernel feasibility must have been checked beforehand (resolveKernel
// in RunRange); an infeasible forced request falls back to the generic
// walker here. bias is the resolved failure-inflation factor of an
// importance-sampled run (values <= 1 mean unbiased; prepareRange
// rejects biased requests on non-memoryless configurations before any
// scratch is built). With bias 1 every kernel constant below is
// bit-identical to the unbiased construction — multiplying a rate by
// 1.0 is exact and ln(1) is 0 — so unbiased realizations are
// unchanged.
func newScratch(p *ArrayParams, k Kernel, noBatch bool, bias float64) *scratch {
	if bias < 1 {
		bias = 1
	}
	sc := &scratch{
		p:         p,
		noBatch:   noBatch,
		crashInv:  inv(p.CrashRate),
		crash2Inv: inv(2 * p.CrashRate),
		hepInv:    geomInv(p.HEP),
		hepQCap:   geomQCap(p.HEP),
	}
	if m, ok, err := resolveKernel(p, k); err == nil && ok {
		// The rate-based walkers never touch the failure clocks or the
		// law samplers; skipping their construction keeps short ranges
		// (adaptive probes, benchmark cells) off that setup cost.
		sc.memoryless = true
		switch p.Policy {
		case AutoFailover:
			sc.foK = makeFoMemK(p, m, bias)
		case DualParity:
			sc.dpK = makeDpMemK(p, m, bias)
		default:
			sc.convK = makeConvMemK(p, m, bias)
		}
		return sc
	}
	sc.fail = make([]float64, p.Disks)
	sc.ttf = newSampler(p.TTF)
	sc.repair = newSampler(p.Repair)
	sc.tape = newSampler(p.TapeRestore)
	sc.herec = newSampler(p.HERecovery)
	sc.rebuild = newSampler(p.SpareRebuild)
	sc.swap = newSampler(p.SpareSwap)
	return sc
}

// iterate walks one array lifetime for iteration index it. Each
// iteration reseeds the stream in place from (seed, it) and resets the
// skip counter, so the draw sequence of an iteration depends only on
// the master seed and the iteration index — never on which worker ran
// it or how iterations were scheduled.
func (sc *scratch) iterate(seed uint64, it int, mission float64) iterStats {
	sc.src.SeedStream(seed, uint64(it))
	sc.hepGap = -1
	sc.expPos = expBufLen // discard buffered draws of the previous iteration
	if sc.memoryless {
		switch sc.p.Policy {
		case AutoFailover:
			return sc.failoverMemoryless(mission)
		case DualParity:
			return sc.dualParityMemoryless(mission)
		default:
			return sc.conventionalMemoryless(mission)
		}
	}
	sc.scanOK = false
	switch sc.p.Policy {
	case AutoFailover:
		return sc.failover(mission)
	case DualParity:
		return sc.dualParity(mission)
	default:
		return sc.conventional(mission)
	}
}

// clocksChanged invalidates the cached two-min scan; call it after any
// write to sc.fail.
func (sc *scratch) clocksChanged() { sc.scanOK = false }

// refreshScan recomputes the cached two smallest failure clocks.
func (sc *scratch) refreshScan() {
	if len(sc.fail) == 4 {
		sc.scanI1, sc.scanT1, sc.scanI2, sc.scanT2 = twoMin4(sc.fail)
	} else {
		sc.scanI1, sc.scanT1, sc.scanI2, sc.scanT2 = twoMin(sc.fail)
	}
	sc.scanOK = true
}

// cachedNextFailure returns the earliest failure clock skipping ex
// (noDisk for none), with nextFailure's expired-clock clamp to now.
// It answers from the cached two-min scan, recomputing only when a
// clock changed since the last scan — at most one exclusion can be
// resolved this way, which covers every up-phase of the fail-over
// machine.
func (sc *scratch) cachedNextFailure(now float64, ex int) (int, float64) {
	if !sc.scanOK {
		sc.refreshScan()
	}
	i, at := sc.scanI1, sc.scanT1
	if i == ex {
		i, at = sc.scanI2, sc.scanT2
	}
	if i >= 0 && at < now {
		at = now
	}
	return i, at
}

// hepTrial reports whether the next human-error opportunity turns into
// an error. The trials are iid Bernoulli(HEP), realized by geometric
// gap sampling: the number of error-free trials before the next error
// is drawn once (floor(ln U / ln(1-hep))) and then counted down, which
// replaces one uniform per service with one logarithm per error. A
// censored counter that runs out is redrawn instead of firing (see
// drawGeomGap); the fresh draw never returns a censored 0, so one
// redraw settles the trial.
func (sc *scratch) hepTrial(r *xrand.Source) bool {
	if sc.hepGap < 0 || (sc.hepGap == 0 && !sc.hepExact) {
		sc.drawHEPGap(r)
	}
	if sc.hepGap == 0 {
		sc.hepGap = -1 // error fires; redraw before the next trial
		return true
	}
	sc.hepGap--
	return false
}

// drawHEPGap draws the geometric number of error-free trials before
// the next human error into sc.hepGap/sc.hepExact. HEP 0 never errs
// (the counter never runs out within a mission), HEP 1 always errs;
// neither consumes randomness, matching Bernoulli's edge behavior.
func (sc *scratch) drawHEPGap(r *xrand.Source) {
	sc.hepGap, sc.hepExact = drawGeomGap(r, sc.hepInv, sc.hepQCap)
}

// geomInv precomputes drawGeomGap's divisor as a reciprocal,
// 1/ln(1-p): a negative normal for 0 < p < 1, -0 for p >= 1 and +Inf
// for p <= 0 (both sentinels drawGeomGap resolves without touching
// the stream). Resolving it once with the kernel constants removes a
// log1p and a division from every geometric draw.
func geomInv(p float64) float64 {
	if p <= 0 {
		return plusInf
	}
	if p >= 1 {
		return math.Copysign(0, -1)
	}
	return 1 / math.Log1p(-p)
}

// gapCap is the censoring horizon of drawGeomGap: a counter is
// materialized exactly only when it falls short of gapCap trials, and
// reported as a censored gapCap otherwise. It must be at least aggMax
// so a censored counter never constrains a quiet chunk.
const gapCap = aggMax

// geomQCap precomputes the censoring threshold P(gap >= gapCap) =
// (1-p)^gapCap that drawGeomGap tests its uniform against. Only
// consulted for 0 < p < 1 (geomInv's sentinels bypass the draw).
func geomQCap(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return math.Exp(float64(gapCap) * math.Log1p(-p))
}

// drawGeomGap draws the geometric number of failures before the next
// success of an iid Bernoulli(p) sequence — floor(ln U / ln(1-p)) —
// taking the divisor as the precomputed reciprocal invLn = geomInv(p)
// and the censoring threshold qCap = geomQCap(p). p <= 0 (invLn +Inf)
// never succeeds (MaxInt outlives any mission), p >= 1 (invLn -0)
// always does; neither consumes randomness.
//
// The draw is censored at gapCap: when the uniform lands at or below
// qCap — the gap is at least gapCap — it returns (gapCap, false)
// without computing the logarithm. By memorylessness the excess over
// gapCap is again geometric, so a consumer that exhausts a censored
// counter redraws it fresh instead of firing the event; a censored
// draw never returns 0, so one redraw settles the decision. For the
// rare race outcomes the kernels skip-sample (p of 1e-3 and below,
// censored ~94% of the time) this reduces the draw to one uniform and
// one compare. Beyond the human-error trials, the memoryless kernels
// use it for exactly those races: in a CTMC the winner of a state's
// exit race is an iid Bernoulli draw independent of the holding
// times.
func drawGeomGap(r *xrand.Source, invLn, qCap float64) (gap int, exact bool) {
	if invLn >= 0 { // the sentinels: +Inf (never) and -0 (always)
		if invLn > 0 {
			return math.MaxInt, true
		}
		return 0, true
	}
	u := r.OpenFloat64()
	if u <= qCap {
		return gapCap, false
	}
	return int(math.Log(u) * invLn), true
}

// expNext returns the next rate-1 exponential of the iteration's
// stream, refilled through the buffer in expBufLen batches (see the
// expBuf field comment). Under noBatch it draws directly, giving the
// unbatched reference realization.
func (sc *scratch) expNext() float64 {
	if sc.noBatch {
		return sc.src.ExpFloat64()
	}
	if sc.expPos == expBufLen {
		sc.src.ExpFloat64N(sc.expBuf[:])
		sc.expPos = 0
	}
	v := sc.expBuf[sc.expPos]
	sc.expPos++
	return v
}

// expB is expInv off the buffered stream: an exponential variate for
// the precomputed inverse rate, +Inf when the event never fires.
func (sc *scratch) expB(invRate float64) float64 {
	if invRate <= 0 {
		return plusInf
	}
	return sc.expNext() * invRate
}

// aggSmall is the chunk size up to which erlangChunk sums buffered
// exponentials instead of paying dist.ErlangFloat64's rejection
// constant: c buffered draws undercut one rejection draw while
// c*~3ns stays below mtDraw's ~18ns.
const aggSmall = 1

// erlangChunk draws one Erlang(c) variate scaled by invRate — the
// elapsed time of c aggregated same-phase holds. Small chunks sum off
// the refill buffer; larger ones use dist.ErlangFloat64's O(1) draw.
func (sc *scratch) erlangChunk(c int, invRate float64) float64 {
	if c <= aggSmall {
		s := sc.expNext()
		for i := 1; i < c; i++ {
			s += sc.expNext()
		}
		return s * invRate
	}
	return dist.ErlangFloat64(&sc.src, c) * invRate
}

// quietChunk sizes the next benign-cycle aggregation chunk: 3/4 of
// the expected cycles left in the mission — large enough to collapse
// most of the mission in a couple of chunks, small enough that chunks
// rarely straddle mission end (an exact but cycle-by-cycle resolution,
// resolveChunk2/3) — bounded by the quiet cycles the skip counters
// guarantee and by the cached Erlang constants. 0 means aggregation
// stops paying and the caller walks cycles individually.
func quietChunk(expCycles float64, g1, g2, g3 int) int {
	c := int(expCycles * 0.75)
	if c > aggMax {
		c = aggMax
	}
	if g1 < c {
		c = g1
	}
	if g2 < c {
		c = g2
	}
	if g3 < c {
		c = g3
	}
	if c < aggMin {
		return 0
	}
	return c
}

// resolveChunk2 finishes an iteration whose aggregated chunk of c
// two-phase benign cycles (per-cycle holds aTot-phase then bTot-phase)
// straddles mission end. Conditioned on an Erlang total, the
// individual stage holds are the total split proportionally to fresh
// iid rate-1 exponentials (the Dirichlet(1,...,1) representation of
// uniform order-statistic spacings), so the walk below replays the
// chunk cycle by cycle and counts the member failures — one per
// completed first-phase hold — that precede mission end, exactly as
// the unaggregated walk would. The array is up throughout a benign
// cycle, so no downtime accrues, and the iteration ends inside the
// chunk by construction.
//
// lnB is the per-cycle quiet-race log-weight of an importance-sampled
// run (0 unbiased): a cycle's race trial only manifests once its
// b-phase hold completes within the mission, so the weight lands after
// that censoring check — the chunk's skip counters stay untouched for
// a straddling chunk, and trials the mission cuts off must not weigh.
func (sc *scratch) resolveChunk2(st *iterStats, t, mission float64, c int, aTot, bTot, lnB float64) {
	a, b := sc.aggA[:c], sc.aggB[:c]
	sc.src.ExpFloat64N(a)
	sc.src.ExpFloat64N(b)
	sumA, sumB := 0.0, 0.0
	for i := 0; i < c; i++ {
		sumA += a[i]
		sumB += b[i]
	}
	sa, sb := aTot/sumA, bTot/sumB
	for i := 0; i < c; i++ {
		t += a[i] * sa
		if t >= mission {
			return
		}
		st.events.Failures++
		t += b[i] * sb
		if t >= mission {
			return
		}
		st.logW += lnB
	}
	// Unreachable up to floating-point rounding of the prefix sums;
	// landing here means the mission boundary fell within rounding of
	// the chunk's end, with every cycle complete.
}

// resolveChunk3 is resolveChunk2 for the fail-over policy's
// three-phase benign cycle (OP hold, then rebuild, then swap); lnB and
// lnD are the rebuild and swap phases' quiet-race log-weights. The two
// tail holds advance time separately so each race's weight sits behind
// its own censoring check.
func (sc *scratch) resolveChunk3(st *iterStats, t, mission float64, c int, aTot, bTot, cTot, lnB, lnD float64) {
	a, b, d := sc.aggA[:c], sc.aggB[:c], sc.aggC[:c]
	sc.src.ExpFloat64N(a)
	sc.src.ExpFloat64N(b)
	sc.src.ExpFloat64N(d)
	sumA, sumB, sumD := 0.0, 0.0, 0.0
	for i := 0; i < c; i++ {
		sumA += a[i]
		sumB += b[i]
		sumD += d[i]
	}
	sa, sb, sd := aTot/sumA, bTot/sumB, cTot/sumD
	for i := 0; i < c; i++ {
		t += a[i] * sa
		if t >= mission {
			return
		}
		st.events.Failures++
		t += b[i] * sb
		if t >= mission {
			return
		}
		st.logW += lnB
		t += d[i] * sd
		if t >= mission {
			return
		}
		st.logW += lnD
	}
}
