package sim

import (
	"math"

	"herald/internal/dist"
	"herald/internal/xrand"
)

// sampler caches the devirtualized fast path for one distribution,
// resolved once per worker instead of per draw: exponential laws
// (rate > 0) are drawn inline via r.ExpFloat64()/rate with no
// interface dispatch, and laws implementing dist.BatchSampler fill
// slices through their batch algorithm.
type sampler struct {
	d     dist.Distribution
	batch dist.BatchSampler
	// rate > 0 marks an exponential law; invRate caches 1/rate so the
	// hot path multiplies instead of divides (the values differ from
	// Exponential.Sample in the last ulp, which the stream-level
	// determinism contract permits).
	rate    float64
	invRate float64
}

func newSampler(d dist.Distribution) sampler {
	sp := sampler{d: d}
	if d == nil {
		return sp
	}
	if rate, ok := dist.FastExp(d); ok {
		sp.rate = rate
		sp.invRate = 1 / rate
	}
	if b, ok := d.(dist.BatchSampler); ok {
		sp.batch = b
	}
	return sp
}

// sample draws one variate: inline exponential draws when the law
// allows it, one interface dispatch otherwise.
func (sp *sampler) sample(r *xrand.Source) float64 {
	if sp.rate > 0 {
		return r.ExpFloat64() * sp.invRate
	}
	return sp.sampleSlow(r)
}

func (sp *sampler) sampleSlow(r *xrand.Source) float64 { return sp.d.Sample(r) }

// sampleN fills dst with independent draws.
func (sp *sampler) sampleN(r *xrand.Source, dst []float64) {
	if sp.rate > 0 {
		for i := range dst {
			dst[i] = r.ExpFloat64() * sp.invRate
		}
		return
	}
	if sp.batch != nil {
		sp.batch.SampleN(r, dst)
		return
	}
	for i := range dst {
		dst[i] = sp.d.Sample(r)
	}
}

// scratch is one worker's reusable simulation state: the failure-clock
// slice, an in-place reseedable stream, and the resolved samplers.
// Allocated once per worker, it makes the per-iteration hot loop
// allocation-free (pinned by TestHotLoopZeroAllocs).
type scratch struct {
	p    *ArrayParams
	src  xrand.Source
	fail []float64

	// hepGap counts the human-error Bernoulli(HEP) trials remaining
	// before the next error fires (geometric skip sampling: one log
	// draw per error instead of one uniform per trial). -1 means not
	// drawn yet; iterate resets it so iterations stay independent.
	hepGap int

	ttf, repair, tape, herec, rebuild, swap sampler
}

func newScratch(p *ArrayParams) *scratch {
	return &scratch{
		p:       p,
		fail:    make([]float64, p.Disks),
		ttf:     newSampler(p.TTF),
		repair:  newSampler(p.Repair),
		tape:    newSampler(p.TapeRestore),
		herec:   newSampler(p.HERecovery),
		rebuild: newSampler(p.SpareRebuild),
		swap:    newSampler(p.SpareSwap),
	}
}

// iterate walks one array lifetime for iteration index it. Each
// iteration reseeds the stream in place from (seed, it) and resets the
// skip counter, so the draw sequence of an iteration depends only on
// the master seed and the iteration index — never on which worker ran
// it or how iterations were scheduled.
func (sc *scratch) iterate(seed uint64, it int, mission float64) iterStats {
	sc.src.SeedStream(seed, uint64(it))
	sc.hepGap = -1
	switch sc.p.Policy {
	case AutoFailover:
		return sc.failover(mission)
	case DualParity:
		return sc.dualParity(mission)
	default:
		return sc.conventional(mission)
	}
}

// hepTrial reports whether the next human-error opportunity turns into
// an error. The trials are iid Bernoulli(HEP), realized by geometric
// gap sampling: the number of error-free trials before the next error
// is drawn once (floor(ln U / ln(1-hep))) and then counted down, which
// replaces one uniform per service with one logarithm per error.
func (sc *scratch) hepTrial(r *xrand.Source) bool {
	if sc.hepGap < 0 {
		sc.hepGap = sc.drawHEPGap(r)
	}
	if sc.hepGap == 0 {
		sc.hepGap = -1 // error fires; redraw before the next trial
		return true
	}
	sc.hepGap--
	return false
}

// drawHEPGap draws the geometric number of error-free trials before
// the next human error. HEP 0 never errs (the counter never runs out
// within a mission), HEP 1 always errs; neither consumes randomness,
// matching Bernoulli's edge behavior.
func (sc *scratch) drawHEPGap(r *xrand.Source) int {
	hep := sc.p.HEP
	if hep <= 0 {
		return math.MaxInt
	}
	if hep >= 1 {
		return 0
	}
	return int(math.Log(r.OpenFloat64()) / math.Log1p(-hep))
}
