package sim

import (
	"fmt"
	"math"

	"herald/internal/dist"
	"herald/internal/xrand"
)

// sampler caches the devirtualized fast path for one distribution,
// resolved once per worker instead of per draw: memoryless laws
// (rate > 0, see dist.Memoryless) are drawn inline via
// expInv(r, invRate) with no interface dispatch, and laws implementing
// dist.BatchSampler fill slices through their batch algorithm.
type sampler struct {
	d     dist.Distribution
	batch dist.BatchSampler
	// rate > 0 marks a memoryless law; invRate caches 1/rate so the
	// hot path multiplies instead of divides (the values differ from
	// Exponential.Sample in the last ulp, which the stream-level
	// determinism contract permits).
	rate    float64
	invRate float64
}

func newSampler(d dist.Distribution) sampler {
	sp := sampler{d: d}
	if d == nil {
		return sp
	}
	if rate, ok := dist.Memoryless(d); ok {
		sp.rate = rate
		sp.invRate = 1 / rate
	}
	if b, ok := d.(dist.BatchSampler); ok {
		sp.batch = b
	}
	return sp
}

// sample draws one variate: inline exponential draws when the law
// allows it, one interface dispatch otherwise.
func (sp *sampler) sample(r *xrand.Source) float64 {
	if sp.rate > 0 {
		return expInv(r, sp.invRate)
	}
	return sp.sampleSlow(r)
}

func (sp *sampler) sampleSlow(r *xrand.Source) float64 { return sp.d.Sample(r) }

// sampleN fills dst with independent draws.
func (sp *sampler) sampleN(r *xrand.Source, dst []float64) {
	if sp.rate > 0 {
		for i := range dst {
			dst[i] = expInv(r, sp.invRate)
		}
		return
	}
	if sp.batch != nil {
		sp.batch.SampleN(r, dst)
		return
	}
	for i := range dst {
		dst[i] = sp.d.Sample(r)
	}
}

// memRates are the hazard rates of a fully memoryless configuration —
// the input of the rate-based kernels. muHE is 0 when HEP is 0 (the
// undo law is never drawn); muS and muCH are 0 outside AutoFailover.
type memRates struct {
	lambda float64 // per-disk failure
	muDF   float64 // replacement / rebuild service
	muDDF  float64 // tape restore
	muHE   float64 // human-error undo attempt
	muS    float64 // on-line rebuild to hot spare
	muCH   float64 // spare swap
}

// memorylessRates resolves the configuration's rates when every law
// the policy draws from answers dist.Memoryless.
func memorylessRates(p *ArrayParams) (memRates, bool) {
	var m memRates
	var ok bool
	if m.lambda, ok = dist.Memoryless(p.TTF); !ok {
		return m, false
	}
	if m.muDF, ok = dist.Memoryless(p.Repair); !ok {
		return m, false
	}
	if m.muDDF, ok = dist.Memoryless(p.TapeRestore); !ok {
		return m, false
	}
	if p.HEP > 0 {
		if m.muHE, ok = dist.Memoryless(p.HERecovery); !ok {
			return m, false
		}
	}
	if p.Policy == AutoFailover {
		if m.muS, ok = dist.Memoryless(p.SpareRebuild); !ok {
			return m, false
		}
		if m.muCH, ok = dist.Memoryless(p.SpareSwap); !ok {
			return m, false
		}
	}
	return m, true
}

// resolveKernel maps the requested kernel onto a walker choice for p.
// It is the options-resolution step of the dispatch layer: RunRange
// calls it before spawning workers so a forced-but-impossible
// specialization fails the run instead of silently degrading.
func resolveKernel(p *ArrayParams, k Kernel) (memRates, bool, error) {
	switch k {
	case KernelGeneric:
		return memRates{}, false, nil
	case KernelAuto, KernelMemoryless:
		m, ok := memorylessRates(p)
		if !ok && k == KernelMemoryless {
			return memRates{}, false, fmt.Errorf(
				"sim: kernel %v requires exponential laws throughout (TTF %v, repair %v, restore %v)",
				k, p.TTF, p.Repair, p.TapeRestore)
		}
		return m, ok, nil
	default:
		return memRates{}, false, fmt.Errorf("sim: unknown kernel %d", int(k))
	}
}

// scratch is one worker's reusable simulation state: the failure-clock
// slice, an in-place reseedable stream, the resolved samplers and the
// kernel choice. Allocated once per worker, it makes the per-iteration
// hot loop allocation-free (pinned by TestHotLoopZeroAllocs).
type scratch struct {
	p    *ArrayParams
	src  xrand.Source
	fail []float64

	// hepGap counts the human-error Bernoulli(HEP) trials remaining
	// before the next error fires (geometric skip sampling: one log
	// draw per error instead of one uniform per trial). -1 means not
	// drawn yet; iterate resets it so iterations stay independent.
	hepGap int

	ttf, repair, tape, herec, rebuild, swap sampler

	// crashInv / crash2Inv cache the inverse crash-clock rates for
	// expInv (0 when the disks never crash while pulled).
	crashInv, crash2Inv float64

	// memoryless is true when this scratch runs the rate-based
	// kernels; the per-policy constant blocks below are then resolved.
	memoryless bool
	convK      convMemK
	foK        foMemK
	dpK        dpMemK

	// Cached two-min failure scan, threaded through the fail-over
	// phase machine: scanOK is invalidated whenever a clock changes
	// (clocksChanged), so phases that exclude at most one disk reuse
	// one scan instead of re-scanning per transition.
	scanOK         bool
	scanI1, scanI2 int
	scanT1, scanT2 float64
}

// newScratch builds a worker's scratch for the given kernel request.
// Kernel feasibility must have been checked beforehand (resolveKernel
// in RunRange); an infeasible forced request falls back to the generic
// walker here.
func newScratch(p *ArrayParams, k Kernel) *scratch {
	sc := &scratch{
		p:         p,
		fail:      make([]float64, p.Disks),
		ttf:       newSampler(p.TTF),
		repair:    newSampler(p.Repair),
		tape:      newSampler(p.TapeRestore),
		herec:     newSampler(p.HERecovery),
		rebuild:   newSampler(p.SpareRebuild),
		swap:      newSampler(p.SpareSwap),
		crashInv:  inv(p.CrashRate),
		crash2Inv: inv(2 * p.CrashRate),
	}
	if m, ok, err := resolveKernel(p, k); err == nil && ok {
		sc.memoryless = true
		switch p.Policy {
		case AutoFailover:
			sc.foK = makeFoMemK(p, m)
		case DualParity:
			sc.dpK = makeDpMemK(p, m)
		default:
			sc.convK = makeConvMemK(p, m)
		}
	}
	return sc
}

// iterate walks one array lifetime for iteration index it. Each
// iteration reseeds the stream in place from (seed, it) and resets the
// skip counter, so the draw sequence of an iteration depends only on
// the master seed and the iteration index — never on which worker ran
// it or how iterations were scheduled.
func (sc *scratch) iterate(seed uint64, it int, mission float64) iterStats {
	sc.src.SeedStream(seed, uint64(it))
	sc.hepGap = -1
	if sc.memoryless {
		switch sc.p.Policy {
		case AutoFailover:
			return sc.failoverMemoryless(mission)
		case DualParity:
			return sc.dualParityMemoryless(mission)
		default:
			return sc.conventionalMemoryless(mission)
		}
	}
	sc.scanOK = false
	switch sc.p.Policy {
	case AutoFailover:
		return sc.failover(mission)
	case DualParity:
		return sc.dualParity(mission)
	default:
		return sc.conventional(mission)
	}
}

// clocksChanged invalidates the cached two-min scan; call it after any
// write to sc.fail.
func (sc *scratch) clocksChanged() { sc.scanOK = false }

// refreshScan recomputes the cached two smallest failure clocks.
func (sc *scratch) refreshScan() {
	if len(sc.fail) == 4 {
		sc.scanI1, sc.scanT1, sc.scanI2, sc.scanT2 = twoMin4(sc.fail)
	} else {
		sc.scanI1, sc.scanT1, sc.scanI2, sc.scanT2 = twoMin(sc.fail)
	}
	sc.scanOK = true
}

// cachedNextFailure returns the earliest failure clock skipping ex
// (noDisk for none), with nextFailure's expired-clock clamp to now.
// It answers from the cached two-min scan, recomputing only when a
// clock changed since the last scan — at most one exclusion can be
// resolved this way, which covers every up-phase of the fail-over
// machine.
func (sc *scratch) cachedNextFailure(now float64, ex int) (int, float64) {
	if !sc.scanOK {
		sc.refreshScan()
	}
	i, at := sc.scanI1, sc.scanT1
	if i == ex {
		i, at = sc.scanI2, sc.scanT2
	}
	if i >= 0 && at < now {
		at = now
	}
	return i, at
}

// hepTrial reports whether the next human-error opportunity turns into
// an error. The trials are iid Bernoulli(HEP), realized by geometric
// gap sampling: the number of error-free trials before the next error
// is drawn once (floor(ln U / ln(1-hep))) and then counted down, which
// replaces one uniform per service with one logarithm per error.
func (sc *scratch) hepTrial(r *xrand.Source) bool {
	if sc.hepGap < 0 {
		sc.hepGap = sc.drawHEPGap(r)
	}
	if sc.hepGap == 0 {
		sc.hepGap = -1 // error fires; redraw before the next trial
		return true
	}
	sc.hepGap--
	return false
}

// drawHEPGap draws the geometric number of error-free trials before
// the next human error. HEP 0 never errs (the counter never runs out
// within a mission), HEP 1 always errs; neither consumes randomness,
// matching Bernoulli's edge behavior.
func (sc *scratch) drawHEPGap(r *xrand.Source) int {
	return drawGeomGap(r, sc.p.HEP)
}

// drawGeomGap draws the geometric number of failures before the next
// success of an iid Bernoulli(p) sequence: floor(ln U / ln(1-p)).
// p <= 0 never succeeds (MaxInt outlives any mission), p >= 1 always
// does; neither consumes randomness. Beyond the human-error trials,
// the memoryless kernels use it to skip-sample rare race winners: in
// a CTMC the winner of a state's exit race is an iid Bernoulli draw
// independent of the holding times, so one logarithm per rare outcome
// replaces one uniform per visit.
func drawGeomGap(r *xrand.Source, p float64) int {
	if p <= 0 {
		return math.MaxInt
	}
	if p >= 1 {
		return 0
	}
	return int(math.Log(r.OpenFloat64()) / math.Log1p(-p))
}
