package sim

import (
	"testing"
)

func TestDowntimeHistogramCollected(t *testing.T) {
	// Rare incidents: most iterations should land in the first bin.
	p := PaperDefaults(4, 1e-4, 0.002)
	s, err := Run(p, Options{
		Iterations:    2000,
		MissionTime:   1e5,
		Seed:          9,
		Workers:       4,
		HistogramBins: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.DowntimeHistogram
	if h == nil {
		t.Fatal("histogram not collected")
	}
	if h.Total() != 2000 {
		t.Fatalf("histogram total = %d, want one record per iteration", h.Total())
	}
	if h.Hi != 1e3 { // default: 1% of mission
		t.Fatalf("default upper edge = %v", h.Hi)
	}
	// Most iterations see little downtime; the first bin must dominate.
	if h.Counts[0] < h.Total()/2 {
		t.Fatalf("first bin %d of %d; expected concentration near zero", h.Counts[0], h.Total())
	}
	// Quantiles must be ordered.
	if q50, q95 := h.Quantile(0.5), h.Quantile(0.95); q95 < q50 {
		t.Fatalf("q95 %v < q50 %v", q95, q50)
	}
}

func TestDowntimeHistogramCustomRange(t *testing.T) {
	p := PaperDefaults(4, 1e-4, 0.05)
	s, err := Run(p, Options{
		Iterations:        300,
		MissionTime:       1e5,
		Seed:              9,
		Workers:           2,
		HistogramBins:     10,
		HistogramMaxHours: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.DowntimeHistogram.Hi != 50 {
		t.Fatalf("upper edge = %v", s.DowntimeHistogram.Hi)
	}
}

func TestHistogramDisabledByDefault(t *testing.T) {
	p := PaperDefaults(4, 1e-4, 0.01)
	s, err := Run(p, Options{Iterations: 50, MissionTime: 1e4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.DowntimeHistogram != nil {
		t.Fatal("histogram collected without being requested")
	}
}
