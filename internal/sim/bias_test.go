package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"herald/internal/dist"
	"herald/internal/model"
)

// Statistical validation of the failure-biasing importance sampler:
// the biased kernels must estimate the same availability as the
// unbiased ones (CI overlap at 1e5 iterations per policy) and as the
// internal/markov closed forms, the weighted machinery must keep the
// partition-independent merge contract bit for bit, and ESS must track
// information content rather than raw iteration count.

func TestParseBias(t *testing.T) {
	good := map[string]float64{
		"":     0,
		"auto": BiasAuto,
		"1":    1,
		"2.5":  2.5,
		"1e4":  1e4,
	}
	for tok, want := range good {
		got, err := ParseBias(tok)
		if err != nil || got != want {
			t.Errorf("ParseBias(%q) = %v, %v; want %v", tok, got, err, want)
		}
	}
	for _, tok := range []string{"0", "0.5", "-1", "-4", "nan", "inf", "-inf", "x", "auto ", "1,5"} {
		if _, err := ParseBias(tok); err == nil {
			t.Errorf("ParseBias(%q) accepted", tok)
		} else if !strings.Contains(err.Error(), "bias") {
			t.Errorf("ParseBias(%q): unhelpful error %v", tok, err)
		}
	}
}

func TestBiasOptionValidation(t *testing.T) {
	p := PaperDefaults(4, 1e-4, 0.01)
	base := Options{Iterations: 100, MissionTime: 1e5}
	for _, b := range []float64{0, BiasAuto, 1, 2.5, 1e6} {
		o := base
		o.Bias = b
		if err := o.Validate(); err != nil {
			t.Errorf("bias %v rejected: %v", b, err)
		}
	}
	for _, b := range []float64{0.5, -0.25, -2, math.Inf(1), math.NaN()} {
		o := base
		o.Bias = b
		if err := o.Validate(); err == nil {
			t.Errorf("bias %v accepted", b)
		}
		if _, err := Run(p, o); err == nil {
			t.Errorf("Run accepted bias %v", b)
		}
	}
	// Biased() semantics: auto and factors above 1 bias; 0 and an
	// explicit 1 are off.
	for b, want := range map[float64]bool{0: false, 1: false, BiasAuto: true, 1.5: true, 100: true} {
		o := base
		o.Bias = b
		if o.Biased() != want {
			t.Errorf("Biased() with bias %v = %v, want %v", b, o.Biased(), want)
		}
	}
}

func TestResolveBiasAuto(t *testing.T) {
	// Paper configuration without human error: f = 3e-6, g = 0.1 =>
	// b_bal ~ 33333; cycles = 4, kappa = 2 => b_var ~ 16668 wins.
	p := PaperDefaults(4, 1e-6, 0)
	o := Options{Iterations: 100, MissionTime: 1e6, Bias: BiasAuto}
	b, err := ResolveBias(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if !(b > 1e4 && b < 1e5) {
		t.Errorf("auto bias %v outside the expected decade [1e4, 1e5)", b)
	}

	// With human error in play the drift budget tightens (kappa = 1/4
	// => b_var ~ 2084): the HEP downtime stream rides quiet weights, so
	// auto trades event yield for weight stability.
	hep := PaperDefaults(4, 1e-6, 0.001)
	bh, err := ResolveBias(hep, o)
	if err != nil {
		t.Fatal(err)
	}
	if !(bh > 1e3 && bh < 1e4) {
		t.Errorf("auto bias %v with hep > 0 outside the expected decade [1e3, 1e4)", bh)
	}
	if !(bh < b/4) {
		t.Errorf("auto bias with hep > 0 (%v) not materially tighter than without (%v)", bh, b)
	}

	// Explicit factors resolve to themselves; unbiased options to 1.
	o.Bias = 7.5
	if got, _ := ResolveBias(p, o); got != 7.5 {
		t.Errorf("explicit bias resolved to %v", got)
	}
	o.Bias = 0
	if got, _ := ResolveBias(p, o); got != 1 {
		t.Errorf("unbiased options resolved to %v", got)
	}

	// The balance cap binds when missions hold few benign cycles.
	dense := PaperDefaults(4, 1e-3, 0.01)
	o = Options{Iterations: 100, MissionTime: 1e5, Bias: BiasAuto}
	b, err = ResolveBias(dense, o)
	if err != nil {
		t.Fatal(err)
	}
	if !(b >= 1) {
		t.Errorf("auto bias %v below 1", b)
	}

	// Auto on non-exponential laws errors instead of guessing.
	weib := PaperDefaults(4, 1e-4, 0.01)
	weib.TTF = dist.WeibullFromMeanRate(1e-4, 1.48)
	if _, err := ResolveBias(weib, o); err == nil {
		t.Error("auto bias resolved on a Weibull TTF")
	}
}

func TestBiasRequiresMemorylessKernel(t *testing.T) {
	p := PaperDefaults(4, 1e-4, 0.01)
	p.TTF = dist.WeibullFromMeanRate(1e-4, 1.48)
	_, err := Run(p, Options{Iterations: 100, MissionTime: 1e5, Bias: 4})
	if err == nil {
		t.Fatal("Run accepted a biased run on a generic-kernel configuration")
	}
	if !strings.Contains(err.Error(), "memoryless") {
		t.Errorf("unhelpful error: %v", err)
	}
	// Forcing the generic kernel on an exponential configuration is
	// rejected the same way.
	exp := PaperDefaults(4, 1e-4, 0.01)
	if _, err := Run(exp, Options{Iterations: 100, MissionTime: 1e5, Bias: 4, Kernel: KernelGeneric}); err == nil {
		t.Error("Run accepted bias under a forced generic kernel")
	}
}

// TestBiasFactorOneIsBitIdenticalToUnbiased pins the change of
// measure's degenerate point: an auto request that resolves to — or an
// engine fed — factor 1 walks the identical path and weights every
// iteration 1, so the weighted estimates coincide with the unweighted
// ones exactly.
func TestBiasFactorOneIsBitIdenticalToUnbiased(t *testing.T) {
	for _, c := range equivCases() {
		o := Options{Iterations: 3000, MissionTime: 2e5, Seed: 77}
		un, err := Run(c.p, o)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		// An explicit factor 1 is fully off: same Summary, byte for byte.
		o.Bias = 1
		off, err := Run(c.p, o)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if summaryJSON(t, off) != summaryJSON(t, un) {
			t.Errorf("%s: explicit bias 1 changed the Summary", c.name)
		}
	}
}

// TestBiasedMatchesUnbiasedCIOverlap is the seeded statistical
// acceptance gate of the sampler: at 1e5 iterations per policy, the
// biased (auto factor) and unbiased estimates of availability must
// have overlapping confidence intervals, and the weighted downtime
// means must agree to a few percent.
func TestBiasedMatchesUnbiasedCIOverlap(t *testing.T) {
	const iters = 100000
	for _, c := range equivCases() {
		o := Options{Iterations: iters, MissionTime: 2e5, Confidence: 0.99}
		ou := o
		ou.Seed = 2401
		ob := o
		ob.Seed, ob.Bias = 2402, BiasAuto
		un, err := Run(c.p, ou)
		if err != nil {
			t.Fatalf("%s unbiased: %v", c.name, err)
		}
		bi, err := Run(c.p, ob)
		if err != nil {
			t.Fatalf("%s biased: %v", c.name, err)
		}
		if bi.Bias <= 0 {
			t.Fatalf("%s: biased Summary reports factor %v", c.name, bi.Bias)
		}
		if d := math.Abs(un.Availability - bi.Availability); d > un.HalfWidth+bi.HalfWidth {
			t.Errorf("%s: availability CIs do not overlap: unbiased %v±%v vs biased %v±%v (factor %v)",
				c.name, un.Availability, un.HalfWidth, bi.Availability, bi.HalfWidth, bi.Bias)
		}
		relCheck := func(metric string, a, b, tol float64) {
			if a == 0 && b == 0 {
				return
			}
			if d := math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b)); d > tol {
				t.Errorf("%s: %s differs %.1f%% (unbiased %v vs biased %v, tol %.0f%%)",
					c.name, metric, 100*d, a, b, 100*tol)
			}
		}
		relCheck("mean DU downtime", un.MeanDowntimeDU, bi.MeanDowntimeDU, 0.15)
		relCheck("mean DL downtime", un.MeanDowntimeDL, bi.MeanDowntimeDL, 0.15)
		// The Horvitz–Thompson diagnostic must sit near the
		// self-normalized estimate on a healthy run.
		if d := math.Abs(bi.AvailabilityHT - bi.Availability); d > 0.01 {
			t.Errorf("%s: HT estimate %v far from self-normalized %v", c.name, bi.AvailabilityHT, bi.Availability)
		}
	}
}

// TestBiasedMatchesCTMC closes the validation triangle: the biased
// kernels must agree with the closed-form CTMC solutions for every
// policy, exactly as the unbiased kernels already do.
func TestBiasedMatchesCTMC(t *testing.T) {
	run := func(p ArrayParams, bias float64) Summary {
		t.Helper()
		s, err := Run(p, Options{
			Iterations: 20000, MissionTime: 2e5, Seed: 998877, Workers: 4,
			Confidence: 0.99, Bias: bias,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	lambda, hep := 1e-4, 0.01
	mc := run(PaperDefaults(4, lambda, hep), BiasAuto)
	res, err := model.Conventional(model.Paper(4, lambda, hep))
	if err != nil {
		t.Fatal(err)
	}
	assertWithinCI(t, "biased conventional", mc, res.Availability)

	fp := PaperDefaults(4, lambda, 0.02)
	fp.Policy = AutoFailover
	mc = run(fp, BiasAuto)
	mp := model.PaperFailover(4, lambda, 0.02)
	mp.InstallAsSpare = false
	mp.DownAltService = false
	fres, err := model.Failover(mp)
	if err != nil {
		t.Fatal(err)
	}
	assertWithinCI(t, "biased failover", mc, fres.Availability)

	dp := PaperDefaults(6, 3e-4, 0.02)
	dp.Policy = DualParity
	mc = run(dp, 4) // fixed factor: exercises the explicit path too
	dres, err := model.DualParity(model.Paper(6, 3e-4, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	assertWithinCI(t, "biased dual parity", mc, dres.Availability)
}

// TestBiasedESSTracksEvents pins what ESS measures: on a rare-event
// configuration it grows proportionally with the simulated iterations
// (the information), stays below the raw count, and the weighted
// Summary reports it.
func TestBiasedESSTracksEvents(t *testing.T) {
	p := PaperDefaults(4, 1e-5, 0)
	run := func(iters int) Summary {
		t.Helper()
		s, err := Run(p, Options{Iterations: iters, MissionTime: 1e6, Seed: 5150, Bias: BiasAuto})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	small := run(2000)
	big := run(8000)
	if !(small.ESS > 0) || !(big.ESS > 0) {
		t.Fatalf("ESS missing from biased summaries: %v, %v", small.ESS, big.ESS)
	}
	if small.ESS >= float64(small.Iterations) || big.ESS >= float64(big.Iterations) {
		t.Errorf("ESS at or above raw n: %v/%d, %v/%d",
			small.ESS, small.Iterations, big.ESS, big.Iterations)
	}
	if big.ESS < 2*small.ESS {
		t.Errorf("ESS does not grow with events: %v at 2000 iters vs %v at 8000", small.ESS, big.ESS)
	}
}

// TestBiasedSummarizePartitionInvariance extends the arrival-order
// merging property to weighted partials: any permutation and any
// worker count of a biased run merges to a byte-identical weighted
// Summary.
func TestBiasedSummarizePartitionInvariance(t *testing.T) {
	p := adaptiveTestParams(DualParity)
	o := Options{Iterations: 5000, MissionTime: 2e5, Seed: 31, Workers: 2, HistogramBins: 16, Bias: 6}
	parts, err := RunRange(p, o, 0, o.Iterations)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Summarize(o, parts)
	if err != nil {
		t.Fatal(err)
	}
	if base.Bias != 6 || !(base.ESS > 0) {
		t.Fatalf("biased summary lacks weighting: factor %v, ESS %v", base.Bias, base.ESS)
	}
	want := summaryJSON(t, base)

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		perm := append([]Partial(nil), parts...)
		switch trial {
		case 0: // exact reversal
			for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
				perm[i], perm[j] = perm[j], perm[i]
			}
		default:
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		}
		got, err := Summarize(o, perm)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if g := summaryJSON(t, got); g != want {
			t.Fatalf("trial %d: permuted weighted merge diverged\n got %s\nwant %s", trial, g, want)
		}
	}

	for _, workers := range []int{1, 2, 7} {
		ow := o
		ow.Workers = workers
		s, err := Run(p, ow)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if g := summaryJSON(t, s); g != want {
			t.Fatalf("workers=%d: schedule changed the weighted Summary\n got %s\nwant %s", workers, g, want)
		}
	}
}

// TestBiasedSummarizeRejectsMixedPartials: weighted and unweighted
// partials, or partials sampled under different factors, must never
// silently fold together.
func TestBiasedSummarizeRejectsMixedPartials(t *testing.T) {
	p := adaptiveTestParams(Conventional)
	o := Options{Iterations: 256, MissionTime: 1e5, Seed: 9}
	ob := o
	ob.Bias = 4
	un, err := RunRange(p, o, 0, o.Iterations)
	if err != nil {
		t.Fatal(err)
	}
	bi, err := RunRange(p, ob, 0, o.Iterations)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Summarize(ob, un); err == nil {
		t.Error("biased Summarize accepted unweighted partials")
	}
	if _, err := Summarize(o, bi); err == nil {
		t.Error("unbiased Summarize accepted weighted partials")
	}
	mixed := append(append([]Partial(nil), bi[:1]...), bi[1:]...)
	mixed[1].Bias = 8
	if _, err := Summarize(ob, mixed); err == nil {
		t.Error("Summarize accepted partials sampled under different factors")
	}
}

// TestBiasedReplayDeterminism pins replay and schedule independence
// under biasing for every policy: identical options give byte-identical
// Summaries across repeated runs and worker counts.
func TestBiasedReplayDeterminism(t *testing.T) {
	for _, pol := range policies {
		p := paramsFor(pol)
		o := Options{Iterations: 2000, MissionTime: 1e6, Seed: 4242, Workers: 1, Bias: BiasAuto}
		first, err := Run(p, o)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		want := summaryJSON(t, first)
		again, err := Run(p, o)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if summaryJSON(t, again) != want {
			t.Errorf("%v: biased replay diverged", pol)
		}
		for _, workers := range []int{2, 5} {
			ow := o
			ow.Workers = workers
			s, err := Run(p, ow)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", pol, workers, err)
			}
			if summaryJSON(t, s) != want {
				t.Errorf("%v: workers=%d changed the biased Summary", pol, workers)
			}
		}
	}
}

// TestBiasedHotLoopZeroAllocs extends the allocation pin: the weighted
// walkers must stay allocation-free per iteration for every policy.
func TestBiasedHotLoopZeroAllocs(t *testing.T) {
	for _, pol := range policies {
		p := paramsFor(pol)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		sc := newScratch(&p, KernelMemoryless, false, 8.0)
		it := 0
		allocs := testing.AllocsPerRun(300, func() {
			_ = sc.iterate(123, it, 1e5)
			it++
		})
		if allocs != 0 {
			t.Errorf("%v: biased hot loop allocates %.1f per iteration, want 0", pol, allocs)
		}
	}
}

// TestBiasedAdaptiveFewerIterations is the acceleration acceptance
// test at a paper configuration: adaptively targeting a 1e-9 CI
// half-width, the biased run must converge at least 10x below the
// iteration count the unbiased stream needs (the unbiased run
// demonstrably fails to converge within 10x the biased stopping
// point).
func TestBiasedAdaptiveFewerIterations(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale adaptive comparison")
	}
	p := PaperDefaults(4, 1e-6, 0)
	const target = 1e-9
	ob := Options{Iterations: 256, MaxIters: 200000, TargetHalfWidth: target,
		MissionTime: 1e6, Seed: 90125, Workers: 4, Bias: BiasAuto}
	bi, err := Run(p, ob)
	if err != nil {
		t.Fatal(err)
	}
	if !bi.Converged {
		t.Fatalf("biased adaptive run failed to converge within %d iterations (half-width %v)",
			ob.MaxIters, bi.HalfWidth)
	}
	if bi.HalfWidth > target {
		t.Errorf("biased run stopped above target: %v > %v", bi.HalfWidth, target)
	}

	// The unbiased stream, given 10x the biased stopping point, must
	// still be short of the target — that is the >= 10x claim.
	ou := Options{Iterations: 256, MaxIters: 10 * bi.Iterations, TargetHalfWidth: target,
		MissionTime: 1e6, Seed: 90126, Workers: 4}
	un, err := Run(p, ou)
	if err != nil {
		t.Fatal(err)
	}
	if un.Converged {
		t.Errorf("unbiased run converged within 10x the biased iteration count (%d vs %d): speedup below 10x",
			un.Iterations, bi.Iterations)
	}
	t.Logf("biased: %d iterations to half-width %.3g (factor %.4g, ESS %.0f); unbiased at %d iterations: half-width %.3g",
		bi.Iterations, bi.HalfWidth, bi.Bias, bi.ESS, un.Iterations, un.HalfWidth)
}
