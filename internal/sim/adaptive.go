package sim

import (
	"fmt"

	"herald/internal/stats"
)

// Adaptive (precision-targeted) execution. A fixed-N run answers "what
// does 1e6 iterations say"; an adaptive run answers the question the
// paper actually poses — "what is the availability to within this
// confidence half-width" — by executing the canonical cells of
// [0, IterationCap()) as a growing prefix and stopping at the first
// cell boundary where the stopping rule binds.
//
// Determinism: the rule is evaluated on the cells folded in canonical
// index order (never in arrival order), so the boundary it binds at —
// and therefore the reported Summary — is a pure function of the
// parameters and options. Workers race ahead of the scanned prefix and
// their excess cells are discarded, which is why replay determinism is
// pinned on the iterations actually *kept*: re-running with the same
// options keeps the same prefix and reproduces the Summary bit for
// bit, for every worker count, in process or sharded
// (internal/shard reuses this scan for its wave coordinator).

// StopScan drives an adaptive run's stopping decision. Cell partials
// are fed strictly in canonical cell order; after each fold the
// Student-t stopping rule is re-evaluated at the cell's end boundary.
// The scan is shared by the in-process adaptive driver and the shard
// coordinator so both stop at the identical boundary.
type StopScan struct {
	rule   stats.StopRule
	floor  int
	acc    stats.Accumulator
	events int64
	end    int
	stopAt int

	// weighted marks the scan of an importance-sampled run: cells then
	// carry weighted accumulators and the rule is judged on the
	// weighted stream at ESS-based effective degrees of freedom.
	weighted bool
	wacc     stats.WeightedAccumulator
}

// NewStopScan builds the scan for adaptive options. It errors unless
// the options request an adaptive run.
func NewStopScan(o Options) (*StopScan, error) {
	if !o.Adaptive() {
		return nil, fmt.Errorf("sim: stop scan needs a positive target half-width")
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	conf := o.Confidence
	if conf == 0 {
		conf = 0.99
	}
	rule := stats.StopRule{TargetHalfWidth: o.TargetHalfWidth, Confidence: conf}
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	floor := 0
	if o.MaxIters > 0 {
		// Iterations is the adaptive minimum when MaxIters carries the
		// cap; the rule may not bind below it.
		floor = o.Iterations
	}
	return &StopScan{rule: rule, floor: floor, weighted: o.Biased()}, nil
}

// Feed folds the next canonical cell partial — which must start
// exactly at End() — and reports whether the stopping rule binds at
// its end boundary. Once the rule has bound, further feeds fold but
// never re-bind.
func (s *StopScan) Feed(pt *Partial) bool {
	if pt.Start != s.end {
		panic(fmt.Sprintf("sim: stop scan fed cell [%d,%d), want prefix continuation at %d", pt.Start, pt.End, s.end))
	}
	s.acc.Merge(&pt.Avail)
	s.events += pt.DownIters
	if s.weighted {
		if pt.WAvail == nil {
			panic(fmt.Sprintf("sim: stop scan fed unweighted cell [%d,%d) for a biased run", pt.Start, pt.End))
		}
		s.wacc.Merge(pt.WAvail)
	}
	s.end = pt.End
	if s.stopAt == 0 && s.end >= s.floor && s.met() {
		s.stopAt = s.end
		return true
	}
	return false
}

// met evaluates the rule on the stream the run estimates from.
func (s *StopScan) met() bool {
	if s.weighted {
		return s.rule.MetWeighted(&s.wacc)
	}
	return s.rule.Met(&s.acc, s.events)
}

// End returns the contiguous prefix folded so far, in iterations.
func (s *StopScan) End() int { return s.end }

// StopAt returns the boundary the rule bound at, or 0 while unbound.
func (s *StopScan) StopAt() int { return s.stopAt }

// EffectiveHalfWidth returns the rule's safeguarded half-width of the
// folded prefix (+Inf while the safeguards are unmet).
func (s *StopScan) EffectiveHalfWidth() float64 {
	if s.weighted {
		return s.rule.EffectiveHalfWidthWeighted(&s.wacc)
	}
	return s.rule.EffectiveHalfWidth(&s.acc, s.events)
}

// runAdaptive executes an adaptive run in this process: cells stream
// in completion order off RunRangeStream, the scan folds them in index
// order, and the first bound boundary cancels the outstanding cells.
func runAdaptive(p ArrayParams, o Options) (Summary, error) {
	scan, err := NewStopScan(o)
	if err != nil {
		return Summary{}, err
	}
	capIters := o.IterationCap()
	oo := o
	oo.Iterations = capIters

	// Validation failures surface through the stream: it closes out
	// immediately and the error returns below.
	out := make(chan Partial, len(Cells(capIters)))
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() { errc <- RunRangeStream(p, oo, 0, capIters, out, stop) }()

	// Cells arrive in completion order; pending parks the out-of-order
	// ones until the prefix reaches them.
	pending := make(map[int]Partial)
	var kept []Partial
	stopAt := 0
	for pt := range out {
		if stopAt != 0 {
			continue // draining after the rule bound
		}
		pending[pt.Start] = pt
		for {
			next, ok := pending[scan.End()]
			if !ok {
				break
			}
			delete(pending, next.Start)
			met := scan.Feed(&next)
			kept = append(kept, next)
			if met {
				stopAt = scan.StopAt()
				close(stop)
				break
			}
		}
	}
	streamErr := <-errc
	if stopAt == 0 {
		if streamErr != nil {
			return Summary{}, streamErr
		}
		stopAt = capIters
	} else if streamErr != nil && streamErr != ErrStopped {
		// ErrStopped is the stream acknowledging the cancellation; any
		// other error is real.
		return Summary{}, streamErr
	}

	so := o
	so.Iterations = stopAt
	return Summarize(so, kept)
}
