package sim

import "math"

// foMemK holds the fail-over memoryless kernel's per-phase constants:
// for each phase of the Fig. 3 machine, the inverse total exit rate
// and the unnormalized cut points of its competing risks. Phase
// semantics mirror failover.go; disk identity is collapsed to counts
// (one failed member, one or two pulled members) by exchangeability
// and memorylessness.
type foMemK struct {
	invOP float64 // n*lambda: wait for the first failure

	totEXP1  float64 // muS + (n-1)*lambda: rebuild-to-spare vs failure
	invEXP1  float64
	cutEXP1  float64 // failure share
	gap1Inv  float64 // geomInv of the failure-beats-rebuild probability
	gap1QCap float64 // its censoring threshold

	totOPns  float64 // muCH + n*lambda: spare swap vs failure
	invOPns  float64
	cutOPns  float64 // failure share
	gap2Inv  float64 // geomInv of the failure-beats-swap probability
	gap2QCap float64 // its censoring threshold

	totEXPns1 float64 // muDF + (n-1)*lambda: direct service vs failure
	invEXPns1 float64
	cutEXPns1 float64 // failure share

	totEXPns2  float64 // muHE + crash + (n-1)*lambda: healthy pull, up
	invEXPns2  float64
	cutUEXPns2 float64 // undo share
	cutCEXPns2 float64 // + crash share

	totDU1  float64 // muHE + crash + (n-2)*lambda: failed + pulled
	invDU1  float64
	cutUDU1 float64
	cutCDU1 float64

	totDU2  float64 // muHE + 2*crash + (n-2)*lambda: two pulled
	invDU2  float64
	cutUDU2 float64
	cutCDU2 float64

	invTape float64

	// Importance-sampling log-weight constants, one quiet/fail pair per
	// biased race (see convMemK): the tot*/cut* fields above hold the
	// bias-inflated winner normalizers while the inv* fields keep the
	// nominal holding rates. lnQuietCycle is the benign cycle's combined
	// quiet weight (EXP1 + OPns), precomputed for the chunk loop. All 0
	// when the bias factor is 1.
	lnQuietEXP1  float64
	lnFailEXP1   float64
	lnQuietOPns  float64
	lnFailOPns   float64
	lnQuietEXPns1 float64
	lnFailEXPns1  float64
	lnQuietEXPns2 float64
	lnFailEXPns2  float64
	lnQuietDU1   float64
	lnFailDU1    float64
	lnQuietDU2   float64
	lnFailDU2    float64
	lnQuietCycle float64
}

func makeFoMemK(p *ArrayParams, m memRates, bias float64) foMemK {
	n := float64(p.Disks)
	crash := p.CrashRate
	var k foMemK
	k.invOP = inv(n * m.lambda)

	totEXP1 := m.muS + (n-1)*m.lambda
	k.totEXP1 = m.muS + bias*(n-1)*m.lambda
	k.invEXP1 = inv(totEXP1)
	k.cutEXP1 = bias * (n - 1) * m.lambda
	p1 := k.cutEXP1 * inv(k.totEXP1)
	k.gap1Inv = geomInv(p1)
	k.gap1QCap = geomQCap(p1)

	totOPns := m.muCH + n*m.lambda
	k.totOPns = m.muCH + bias*n*m.lambda
	k.invOPns = inv(totOPns)
	k.cutOPns = bias * n * m.lambda
	p2 := k.cutOPns * inv(k.totOPns)
	k.gap2Inv = geomInv(p2)
	k.gap2QCap = geomQCap(p2)

	totEXPns1 := m.muDF + (n-1)*m.lambda
	k.totEXPns1 = m.muDF + bias*(n-1)*m.lambda
	k.invEXPns1 = inv(totEXPns1)
	k.cutEXPns1 = bias * (n - 1) * m.lambda

	totEXPns2 := m.muHE + crash + (n-1)*m.lambda
	k.totEXPns2 = m.muHE + crash + bias*(n-1)*m.lambda
	k.invEXPns2 = inv(totEXPns2)
	k.cutUEXPns2 = m.muHE
	k.cutCEXPns2 = m.muHE + crash

	totDU1 := m.muHE + crash + (n-2)*m.lambda
	k.totDU1 = m.muHE + crash + bias*(n-2)*m.lambda
	k.invDU1 = inv(totDU1)
	k.cutUDU1 = m.muHE
	k.cutCDU1 = m.muHE + crash

	totDU2 := m.muHE + 2*crash + (n-2)*m.lambda
	k.totDU2 = m.muHE + 2*crash + bias*(n-2)*m.lambda
	k.invDU2 = inv(totDU2)
	k.cutUDU2 = m.muHE
	k.cutCDU2 = m.muHE + 2*crash

	k.invTape = inv(m.muDDF)

	if bias > 1 {
		lnB := math.Log(bias)
		lnPair := func(biased, nominal float64) (quiet, fail float64) {
			if nominal <= 0 {
				return 0, 0
			}
			quiet = math.Log(biased / nominal)
			return quiet, quiet - lnB
		}
		k.lnQuietEXP1, k.lnFailEXP1 = lnPair(k.totEXP1, totEXP1)
		k.lnQuietOPns, k.lnFailOPns = lnPair(k.totOPns, totOPns)
		k.lnQuietEXPns1, k.lnFailEXPns1 = lnPair(k.totEXPns1, totEXPns1)
		k.lnQuietEXPns2, k.lnFailEXPns2 = lnPair(k.totEXPns2, totEXPns2)
		k.lnQuietDU1, k.lnFailDU1 = lnPair(k.totDU1, totDU1)
		k.lnQuietDU2, k.lnFailDU2 = lnPair(k.totDU2, totDU2)
		k.lnQuietCycle = k.lnQuietEXP1 + k.lnQuietOPns
	}
	return k
}

// failoverMemoryless walks one lifetime of the automatic fail-over
// policy's CTMC. Phase-for-phase it mirrors failover.go — the same
// transitions count the same events and open/close the same downtime
// intervals, up to the aging-through-outages refinement documented in
// conventional_memoryless.go — but each phase is one rate-based
// holding-time draw plus one winner draw, with no clock array, no
// scans and no re-scans.
//
// The benign OP -> EXP1 -> OPns -> OP cycle (failure, clean rebuild
// onto the spare, clean swap) dominates a lifetime. Its two race
// outcomes are skip-sampled like the conventional walker's (gap1:
// rebuild loses to a second failure; gap2: swap loses to a failure),
// and min(gap1, gap2, hepGap) quiet cycles are aggregated into
// three-Erlang chunks (see conventionalMemoryless).
func (sc *scratch) failoverMemoryless(mission float64) iterStats {
	k, r := &sc.foK, &sc.src
	var st iterStats
	t := 0.0
	phase := phOP
	duStart := 0.0 // opening time of the active DU interval
	gap1, gap2 := -1, -1
	exact1, exact2 := false, false

	cycleRate := 0.0
	if !sc.noBatch && k.invOP > 0 {
		cycleRate = 1 / (k.invOP + k.invEXP1 + k.invOPns)
	}

	for t < mission {
		switch phase {
		case phOP:
			if cycleRate > 0 {
				if gap1 < 0 || (gap1 == 0 && !exact1) {
					gap1, exact1 = drawGeomGap(r, k.gap1Inv, k.gap1QCap)
				}
				if gap2 < 0 || (gap2 == 0 && !exact2) {
					gap2, exact2 = drawGeomGap(r, k.gap2Inv, k.gap2QCap)
				}
				if sc.hepGap < 0 || (sc.hepGap == 0 && !sc.hepExact) {
					sc.drawHEPGap(r)
				}
				for {
					c := quietChunk((mission-t)*cycleRate, gap1, gap2, sc.hepGap)
					if c == 0 {
						break
					}
					opSum := sc.erlangChunk(c, k.invOP)
					exSum := sc.erlangChunk(c, k.invEXP1)
					nsSum := sc.erlangChunk(c, k.invOPns)
					if t+opSum+exSum+nsSum >= mission {
						sc.resolveChunk3(&st, t, mission, c, opSum, exSum, nsSum, k.lnQuietEXP1, k.lnQuietOPns)
						return st
					}
					t += opSum + exSum + nsSum
					st.events.Failures += int64(c)
					st.logW += float64(c) * k.lnQuietCycle
					gap1 -= c
					gap2 -= c
					sc.hepGap -= c
				}
			}
			// n members up, hot spare present.
			t += sc.expNext() * k.invOP
			if t >= mission {
				return st
			}
			st.events.Failures++
			phase = phEXP1

		case phEXP1:
			// On-line rebuild onto the hot spare; no human involved.
			dt := sc.expNext() * k.invEXP1
			if t+dt >= mission {
				return st // exposed but up
			}
			t += dt
			if gap1 < 0 || (gap1 == 0 && !exact1) {
				gap1, exact1 = drawGeomGap(r, k.gap1Inv, k.gap1QCap)
			}
			if gap1 == 0 {
				gap1 = -1
				st.events.Failures++
				st.events.DoubleFailures++
				st.logW += k.lnFailEXP1
				t = sc.memDataLoss(&st, t, mission, k.invTape)
				// Restore rebuilds the full configuration, spare
				// included (Fig. 3: DL --muDDF--> OP).
				phase = phOP
				continue
			}
			gap1--
			st.logW += k.lnQuietEXP1
			phase = phOPns // spare now carries the data

		case phOPns:
			// Technician replenishes the spare slot; a wrong pull here
			// hits a fully redundant array (degraded, still up).
			dt := sc.expNext() * k.invOPns
			if t+dt >= mission {
				return st
			}
			t += dt
			if gap2 < 0 || (gap2 == 0 && !exact2) {
				gap2, exact2 = drawGeomGap(r, k.gap2Inv, k.gap2QCap)
			}
			if gap2 == 0 {
				gap2 = -1
				st.events.Failures++
				st.logW += k.lnFailOPns
				phase = phEXPns1
				continue
			}
			gap2--
			st.logW += k.lnQuietOPns
			if !sc.hepTrial(r) {
				phase = phOP // spare slot replenished
				continue
			}
			st.events.HumanErrors++
			phase = phEXPns2

		case phEXPns1:
			// Exposed with no spare: direct replace-and-rebuild
			// service, racing a second member failure.
			dt := sc.expNext() * k.invEXPns1
			if t+dt >= mission {
				return st
			}
			t += dt
			if r.Float64()*k.totEXPns1 < k.cutEXPns1 {
				st.events.Failures++
				st.events.DoubleFailures++
				st.logW += k.lnFailEXPns1
				t = sc.memDataLoss(&st, t, mission, k.invTape)
				phase = phOPns // DLns --muDDF--> OPns
				continue
			}
			st.logW += k.lnQuietEXPns1
			if !sc.hepTrial(r) {
				phase = phOPns
				continue
			}
			st.events.HumanErrors++
			duStart = t
			phase = phDUns1

		case phEXPns2:
			// A healthy member is out; data still available (n-1 of n).
			dt := sc.expNext() * k.invEXPns2
			if t+dt >= mission {
				return st
			}
			t += dt
			u := r.Float64() * k.totEXPns2
			switch {
			case u < k.cutUEXPns2:
				st.logW += k.lnQuietEXPns2
				st.events.UndoAttempts++
				if sc.hepTrial(r) {
					// Second error pulls another healthy member.
					st.events.HumanErrors++
					duStart = t
					phase = phDUns2
					continue
				}
				// Re-seat; the new disk becomes the hot spare
				// (Fig. 3: EXPns2 --(1-hep)muHE--> OP).
				phase = phOP
			case u < k.cutCEXPns2:
				// Pulled disk died while out: it is now simply a
				// failed member with no spare.
				st.logW += k.lnQuietEXPns2
				st.events.Crashes++
				phase = phEXPns1
			default:
				// Failure on top of the pull: unavailable.
				st.logW += k.lnFailEXPns2
				st.events.Failures++
				duStart = t
				phase = phDUns1
			}

		case phDUns1:
			// One failed + one pulled: unavailable until undone.
			dt := sc.expNext() * k.invDU1
			if t+dt >= mission {
				st.downDU += mission - duStart
				return st
			}
			t += dt
			u := r.Float64() * k.totDU1
			switch {
			case u < k.cutUDU1:
				st.logW += k.lnQuietDU1
				st.events.UndoAttempts++
				if sc.hepTrial(r) {
					st.events.HumanErrors++
					continue // undo failed; array stays DU
				}
				// Pulled disk re-seated; failed member remains.
				st.downDU += t - duStart
				phase = phEXPns1
			case u < k.cutCDU1:
				// Pulled disk crashed: double loss, restore.
				st.logW += k.lnQuietDU1
				st.events.Crashes++
				st.downDU += t - duStart
				t = sc.memDataLoss(&st, t, mission, k.invTape)
				phase = phOPns
			default:
				// Third member lost: catastrophic, restore all.
				st.logW += k.lnFailDU1
				st.events.Failures++
				st.events.DoubleFailures++
				st.downDU += t - duStart
				t = sc.memDataLoss(&st, t, mission, k.invTape)
				phase = phOPns
			}

		case phDUns2:
			// Two healthy members pulled (double human error).
			dt := sc.expNext() * k.invDU2
			if t+dt >= mission {
				st.downDU += mission - duStart
				return st
			}
			t += dt
			u := r.Float64() * k.totDU2
			switch {
			case u < k.cutUDU2:
				st.logW += k.lnQuietDU2
				st.events.UndoAttempts++
				if sc.hepTrial(r) {
					st.events.HumanErrors++
					continue
				}
				// One pull undone; still one member out (up again).
				st.downDU += t - duStart
				phase = phEXPns2
			case u < k.cutCDU2:
				// One of the two pulled disks crashed; it becomes the
				// failed member of a still-unavailable DUns1.
				st.logW += k.lnQuietDU2
				st.events.Crashes++
				st.downDU += t - duStart
				duStart = t
				phase = phDUns1
			default:
				// Failure with two members out: catastrophic.
				st.logW += k.lnFailDU2
				st.events.Failures++
				st.events.DoubleFailures++
				st.downDU += t - duStart
				t = sc.memDataLoss(&st, t, mission, k.invTape)
				phase = phOPns
			}
		}
	}
	return st
}
