package sim

import (
	"fmt"
	"math"
	"strconv"
)

// Failure-biasing importance sampling. At paper-scale rates almost
// every simulated lifetime is all-quiet: the availability stream is so
// zero-inflated that the iterations-per-CI cost is dominated by
// lifetimes contributing the observation 1.0 exactly. The memoryless
// walkers sample each CTMC state as a holding-time draw plus a
// winner-of-the-race draw, which admits a cheap exact change of
// measure: inflate only the disk-failure shares of the winner draws by
// a factor b (holding times keep their nominal law, so the clock stays
// calibrated) and carry the likelihood ratio as a per-iteration sum of
// per-event state constants —
//
//	quiet win in state s:   ln((G_s + b·F_s)/(G_s + F_s))
//	failure win in state s: the same minus ln b
//
// where F_s / G_s are the state's failure and non-failure exit
// totals. Mission-censored holds and the Bernoulli(HEP) thinning draws
// are measure-invariant and contribute nothing. Estimates are
// reweighted through stats.WeightedAccumulator (self-normalized mean,
// Horvitz–Thompson diagnostic, ESS); see the README's "Rare-event
// acceleration" section for the estimator math.

// BiasAuto is the Options.Bias sentinel asking the run to pick the
// inflation factor from the configuration's failure/repair rate ratio
// (see ResolveBias).
const BiasAuto = -1.0

// ParseBias maps a CLI or API token onto an Options.Bias value: the
// empty string means off, "auto" means BiasAuto, and anything else
// must parse as a finite factor >= 1.
func ParseBias(s string) (float64, error) {
	switch s {
	case "":
		return 0, nil
	case "auto":
		return BiasAuto, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 1 {
		return 0, fmt.Errorf("sim: bias %q must be \"auto\" or a finite factor >= 1", s)
	}
	return v, nil
}

// ResolveBias returns the concrete failure-inflation factor a run of p
// under o samples with: 1 for unbiased options, o.Bias when explicit,
// and the auto heuristic below when o.Bias is BiasAuto. Auto
// resolution needs the configuration's rates and errors when they are
// not fully memoryless — the same constraint the kernels themselves
// impose on biased runs.
func ResolveBias(p ArrayParams, o Options) (float64, error) {
	if !o.Biased() {
		return 1, nil
	}
	if o.Bias != BiasAuto {
		return o.Bias, nil
	}
	m, ok := memorylessRates(&p)
	if !ok {
		return 0, fmt.Errorf("sim: auto bias requires exponential laws throughout (TTF %v, repair %v, restore %v)",
			p.TTF, p.Repair, p.TapeRestore)
	}
	return autoBias(&p, m, o.MissionTime), nil
}

// autoBias picks the inflation factor for the critical exposed-state
// race, balancing two pressures:
//
//   - b_bal = G/F makes the biased failure probability 1/2 in the
//     exposed state (F the failure exit total (n-1)·lambda, G the
//     repair exit: muDF conventionally, muS under fail-over) — the
//     classic failure-biasing target, past which quiet-cycle weights
//     degrade faster than event yield improves;
//   - b_var = 1 + kappa·(F+G)/(cycles·F) caps the all-quiet
//     log-weight drift at kappa over a mission of cycles expected
//     benign cycles (per-cycle quiet drift is ~(b-1)·F/(F+G) for
//     small drift), keeping the weight spread — and with it the ESS —
//     bounded on configurations with many cycles per mission.
//
// The drift budget kappa depends on where the informative mass sits.
// With HEP = 0 every informative observation is failure-driven and
// carries the 1/b factor, so the quiet drift largely cancels in the
// self-normalized ratio and a loose kappa = 2 buys maximal event
// yield. With HEP > 0 the human-error downtime rides *quiet-weighted*
// iterations — biasing cannot accelerate it, it can only spread its
// weights — so the budget tightens to kappa = 1/4, keeping that
// stream's ESS near n while the double-failure stream still enjoys
// the inflated yield.
//
// The factor is min(b_bal, b_var) clamped to at least 1; degenerate
// rate inputs (no failure or no repair exit) answer 1, leaving the run
// effectively unbiased rather than guessing.
func autoBias(p *ArrayParams, m memRates, mission float64) float64 {
	n := float64(p.Disks)
	f := (n - 1) * m.lambda
	g := m.muDF
	if p.Policy == AutoFailover {
		g = m.muS
	}
	if !(f > 0) || !(g > 0) || !(mission > 0) {
		return 1
	}
	bBal := g / f
	cycles := mission * n * m.lambda
	if cycles < 1 {
		cycles = 1
	}
	kappa := 2.0
	if p.HEP > 0 {
		kappa = 0.25
	}
	bVar := 1 + kappa*(f+g)/(cycles*f)
	b := bBal
	if bVar < b {
		b = bVar
	}
	if b < 1 {
		b = 1
	}
	return b
}
