package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"herald/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	m.Add(1, 2, 1)
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 || m.At(0, 1) != 0 {
		t.Fatalf("element access wrong: %v", m.Data)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestNewDenseFromRows(t *testing.T) {
	m := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("row construction wrong")
	}
}

func TestNewDenseFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDenseFromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := NewDenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	y := m.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestVecMul(t *testing.T) {
	m := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	y := m.VecMul([]float64{1, 1})
	if y[0] != 4 || y[1] != 6 {
		t.Fatalf("VecMul = %v", y)
	}
}

func TestMatMul(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewDenseFromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul mismatch at %d,%d: %v", i, j, c.At(i, j))
			}
		}
	}
}

func TestIdentityMul(t *testing.T) {
	r := xrand.New(1)
	a := NewDense(4, 4)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	p := a.Mul(Identity(4))
	for i := range a.Data {
		if !almostEq(p.Data[i], a.Data[i], 1e-15) {
			t.Fatal("A*I != A")
		}
	}
}

func TestLUSolveKnownSystem(t *testing.T) {
	a := NewDenseFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := []float64{8, -11, -3}
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-12) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestLUDeterminant(t *testing.T) {
	a := NewDenseFromRows([][]float64{{4, 3}, {6, 3}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), -6, 1e-12) {
		t.Fatalf("det = %v, want -6", f.Det())
	}
	if !almostEq(mustFactorize(t, Identity(5)).Det(), 1, 1e-15) {
		t.Fatal("det(I) != 1")
	}
}

func mustFactorize(t *testing.T, a *Dense) *LU {
	t.Helper()
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSingularDetection(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Factorize(a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := NewDenseFromRows([][]float64{{0, 1}, {1, 0}})
	f := mustFactorize(t, a)
	x, err := f.Solve([]float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 7, 1e-14) || !almostEq(x[1], 3, 1e-14) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveRefinedRandomSystems(t *testing.T) {
	r := xrand.New(99)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(20)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				v := r.NormFloat64()
				a.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			a.Add(i, i, rowSum+1) // diagonally dominant => well-conditioned
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.NormFloat64() * 10
		}
		b := a.MulVec(want)
		x, err := SolveRefined(a, b, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !almostEq(x[i], want[i], 1e-9*(1+math.Abs(want[i]))) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], want[i])
			}
		}
	}
}

func TestInverse(t *testing.T) {
	a := NewDenseFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0.6, -0.7}, {-0.2, 0.4}}
	for i := range want {
		for j := range want[i] {
			if !almostEq(inv.At(i, j), want[i][j], 1e-12) {
				t.Fatalf("inverse = %v", inv)
			}
		}
	}
	prod := a.Mul(inv)
	id := Identity(2)
	for i := range id.Data {
		if !almostEq(prod.Data[i], id.Data[i], 1e-12) {
			t.Fatal("A * A^-1 != I")
		}
	}
}

func TestResidualAndNorms(t *testing.T) {
	a := Identity(3)
	x := []float64{1, 2, 3}
	r := Residual(a, x, []float64{1, 2, 4})
	if r[0] != 0 || r[1] != 0 || r[2] != 1 {
		t.Fatalf("residual = %v", r)
	}
	if InfNorm([]float64{-5, 2}) != 5 {
		t.Fatal("InfNorm wrong")
	}
	if Norm1([]float64{-1, 2, -3}) != 6 {
		t.Fatal("Norm1 wrong")
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
}

func TestNormalize1(t *testing.T) {
	v := []float64{1, 3}
	Normalize1(v)
	if !almostEq(v[0], 0.25, 1e-15) || !almostEq(v[1], 0.75, 1e-15) {
		t.Fatalf("normalized = %v", v)
	}
}

func TestNormalize1ZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Normalize1([]float64{0, 0})
}

func TestDimensionPanics(t *testing.T) {
	m := NewDense(2, 3)
	cases := []func(){
		func() { m.MulVec([]float64{1, 2}) },
		func() { m.VecMul([]float64{1, 2, 3}) },
		func() { m.Mul(NewDense(2, 2)) },
		func() { Factorize(m) },
		func() { NewDense(0, 1) },
		func() { Dot([]float64{1}, []float64{1, 2}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestQuickLUSolvesDiagonallyDominant(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(8)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				v := r.Float64()*2 - 1
				a.Set(i, j, v)
				sum += math.Abs(v)
			}
			a.Add(i, i, sum+0.5)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.Float64()*20 - 10
		}
		x, err := SolveRefined(a, a.MulVec(want), 2)
		if err != nil {
			return false
		}
		for i := range want {
			if !almostEq(x[i], want[i], 1e-8*(1+math.Abs(want[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		rows, cols := 1+r.Intn(6), 1+r.Intn(6)
		m := NewDense(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		tt := m.Transpose().Transpose()
		for i := range m.Data {
			if tt.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	if NewDense(1, 1).String() == "" {
		t.Fatal("empty render")
	}
}
