package linalg

import (
	"fmt"
	"sort"
)

// Coord is one (row, col, value) triplet used to assemble sparse
// matrices.
type Coord struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed sparse row matrix; the natural format for Markov
// generator matrices whose rows hold a handful of outgoing transitions.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NewCSR assembles a CSR matrix from coordinate triplets. Duplicate
// (row, col) entries are summed, matching the semantics of adding
// parallel transitions between the same pair of Markov states.
func NewCSR(rows, cols int, items []Coord) *CSR {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid CSR dimensions %dx%d", rows, cols))
	}
	sorted := append([]Coord(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	prevRow, prevCol := -1, -1
	for _, it := range sorted {
		if it.Row < 0 || it.Row >= rows || it.Col < 0 || it.Col >= cols {
			panic(fmt.Sprintf("linalg: CSR entry (%d,%d) out of %dx%d", it.Row, it.Col, rows, cols))
		}
		if it.Row == prevRow && it.Col == prevCol {
			m.Val[len(m.Val)-1] += it.Val
			continue
		}
		m.ColIdx = append(m.ColIdx, it.Col)
		m.Val = append(m.Val, it.Val)
		m.RowPtr[it.Row+1]++
		prevRow, prevCol = it.Row, it.Col
	}
	for i := 1; i <= rows; i++ {
		m.RowPtr[i] += m.RowPtr[i-1]
	}
	return m
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// At returns element (i, j); zero if not stored.
func (m *CSR) At(i, j int) float64 {
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		if m.ColIdx[k] == j {
			return m.Val[k]
		}
	}
	return 0
}

// MulVec computes y = M x.
func (m *CSR) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: CSR MulVec dimension mismatch %d vs %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
	return y
}

// VecMul computes y = x^T M: the propagation step of a probability
// vector through a transition matrix.
func (m *CSR) VecMul(x []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("linalg: CSR VecMul dimension mismatch %d vs %d", len(x), m.Rows))
	}
	y := make([]float64, m.Cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			y[m.ColIdx[k]] += xi * m.Val[k]
		}
	}
	return y
}

// Dense converts to a dense matrix (for small models and tests).
func (m *CSR) Dense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Add(i, m.ColIdx[k], m.Val[k])
		}
	}
	return d
}

// PowerIteration iterates pi <- pi * P until the 1-norm change falls
// below tol or maxIter sweeps elapse, returning the fixed point and the
// number of iterations used. P must be a row-stochastic matrix; pi0 is
// normalized before use. The second return is false when the iteration
// did not converge.
func PowerIteration(p *CSR, pi0 []float64, tol float64, maxIter int) ([]float64, int, bool) {
	pi := append([]float64(nil), pi0...)
	Normalize1(pi)
	for it := 1; it <= maxIter; it++ {
		next := p.VecMul(pi)
		Normalize1(next)
		diff := 0.0
		for i := range next {
			d := next[i] - pi[i]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		pi = next
		if diff < tol {
			return pi, it, true
		}
	}
	return pi, maxIter, false
}
