// Package linalg provides the numerical linear algebra needed to solve
// Markov availability models: dense LU factorization with partial
// pivoting (for steady-state balance equations and absorbing-chain
// fundamental matrices), sparse CSR matrices, and iterative solvers
// for larger state spaces. Only the standard library is used.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a factorization or solve encounters an
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewDense returns a zeroed r-by-c matrix. It panics for non-positive
// dimensions.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: invalid dense dimensions %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewDenseFromRows builds a matrix from row slices, which must all have
// equal length.
func NewDenseFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: empty row data")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: len %d, want %d", i, len(row), m.Cols))
		}
		copy(m.Data[i*m.Cols:], row)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MulVec computes y = m * x. It panics on dimension mismatch.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch: %d cols vs %d vec", m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// VecMul computes y = x^T * m (left multiplication), the natural
// orientation for probability-vector times transition-matrix products.
func (m *Dense) VecMul(x []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("linalg: VecMul dimension mismatch: %d rows vs %d vec", m.Rows, len(x)))
	}
	y := make([]float64, m.Cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			y[j] += xi * v
		}
	}
	return y
}

// Mul returns the matrix product m * b.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch: %dx%d times %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&sb, "% .6g", m.At(i, j))
			if j < m.Cols-1 {
				sb.WriteByte('\t')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// LU is an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu    *Dense
	pivot []int
	sign  int
}

// Factorize computes the LU decomposition of a square matrix with
// partial pivoting (Doolittle). It returns ErrSingular when a pivot
// underflows the numeric tolerance.
func Factorize(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("linalg: Factorize needs square matrix, got %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1
	for k := 0; k < n; k++ {
		// Find pivot row.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				max, p = v, i
			}
		}
		pivot[k] = p
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			ri := lu.Data[p*n : (p+1)*n]
			rk := lu.Data[k*n : (k+1)*n]
			for j := range ri {
				ri[j], rk[j] = rk[j], ri[j]
			}
			sign = -sign
		}
		pivotVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivotVal
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			ri := lu.Data[i*n : (i+1)*n]
			rk := lu.Data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= f * rk[j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// Solve solves A x = b for one right-hand side.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: Solve dimension mismatch: %d vs %d", len(b), n))
	}
	x := append([]float64(nil), b...)
	// Apply permutation.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 || math.IsNaN(d) {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveRefined solves A x = b and performs up to iters steps of
// iterative refinement using the original matrix, improving residuals
// for ill-conditioned balance equations (rates spanning 1e-7 .. 1).
func SolveRefined(a *Dense, b []float64, iters int) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	x, err := f.Solve(b)
	if err != nil {
		return nil, err
	}
	for it := 0; it < iters; it++ {
		r := Residual(a, x, b)
		if InfNorm(r) <= 1e-16*(1+InfNorm(b)) {
			break
		}
		d, err := f.Solve(r)
		if err != nil {
			return nil, err
		}
		for i := range x {
			x[i] += d[i]
		}
	}
	return x, nil
}

// Residual returns b - A x.
func Residual(a *Dense, x, b []float64) []float64 {
	ax := a.MulVec(x)
	r := make([]float64, len(b))
	for i := range r {
		r[i] = b[i] - ax[i]
	}
	return r
}

// Inverse computes A^-1 column by column; primarily for the absorbing
// chain fundamental matrix N = (I-Q)^-1.
func Inverse(a *Dense) (*Dense, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewDense(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		e[j] = 0
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// InfNorm returns the max-abs element of a vector.
func InfNorm(v []float64) float64 {
	max := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > max {
			max = a
		}
	}
	return max
}

// Norm1 returns the sum of absolute values of a vector.
func Norm1(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Scale multiplies every element of v by s, in place.
func Scale(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Normalize1 scales v so its 1-norm is 1 (probability normalization).
// It panics when the norm is zero.
func Normalize1(v []float64) {
	n := Norm1(v)
	if n == 0 {
		panic("linalg: cannot normalize zero vector")
	}
	Scale(v, 1/n)
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot dimension mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
