package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"herald/internal/xrand"
)

func TestCSRAssembly(t *testing.T) {
	m := NewCSR(3, 3, []Coord{
		{0, 1, 2}, {2, 0, 5}, {1, 1, 1}, {0, 1, 3}, // duplicate (0,1) sums
	})
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3 (duplicates summed)", m.NNZ())
	}
	if m.At(0, 1) != 5 {
		t.Fatalf("At(0,1) = %v, want 5", m.At(0, 1))
	}
	if m.At(2, 0) != 5 || m.At(1, 1) != 1 || m.At(0, 0) != 0 {
		t.Fatal("element lookup wrong")
	}
}

func TestCSROutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCSR(2, 2, []Coord{{2, 0, 1}})
}

func TestCSRMulVec(t *testing.T) {
	// [[1 2],[3 4]] again, sparse.
	m := NewCSR(2, 2, []Coord{{0, 0, 1}, {0, 1, 2}, {1, 0, 3}, {1, 1, 4}})
	y := m.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
	z := m.VecMul([]float64{1, 1})
	if z[0] != 4 || z[1] != 6 {
		t.Fatalf("VecMul = %v", z)
	}
}

func TestCSRDenseRoundTrip(t *testing.T) {
	r := xrand.New(5)
	var items []Coord
	for k := 0; k < 30; k++ {
		items = append(items, Coord{r.Intn(6), r.Intn(6), r.NormFloat64()})
	}
	m := NewCSR(6, 6, items)
	d := m.Dense()
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if !almostEq(m.At(i, j), d.At(i, j), 1e-15) {
				t.Fatalf("dense mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestCSRMatchesDenseProducts(t *testing.T) {
	r := xrand.New(9)
	var items []Coord
	for k := 0; k < 40; k++ {
		items = append(items, Coord{r.Intn(8), r.Intn(8), r.Float64()})
	}
	m := NewCSR(8, 8, items)
	d := m.Dense()
	x := make([]float64, 8)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	ys, yd := m.MulVec(x), d.MulVec(x)
	zs, zd := m.VecMul(x), d.VecMul(x)
	for i := range ys {
		if !almostEq(ys[i], yd[i], 1e-12) || !almostEq(zs[i], zd[i], 1e-12) {
			t.Fatal("sparse/dense product mismatch")
		}
	}
}

func TestPowerIterationTwoState(t *testing.T) {
	// DTMC: P = [[0.9 0.1],[0.5 0.5]]; stationary pi = (5/6, 1/6).
	p := NewCSR(2, 2, []Coord{{0, 0, 0.9}, {0, 1, 0.1}, {1, 0, 0.5}, {1, 1, 0.5}})
	pi, _, ok := PowerIteration(p, []float64{1, 0}, 1e-14, 100000)
	if !ok {
		t.Fatal("did not converge")
	}
	if !almostEq(pi[0], 5.0/6, 1e-9) || !almostEq(pi[1], 1.0/6, 1e-9) {
		t.Fatalf("pi = %v", pi)
	}
}

func TestPowerIterationNonConvergence(t *testing.T) {
	// Period-2 chain never settles pointwise from a pure state.
	p := NewCSR(2, 2, []Coord{{0, 1, 1}, {1, 0, 1}})
	_, _, ok := PowerIteration(p, []float64{1, 0}, 1e-12, 50)
	if ok {
		t.Fatal("periodic chain should not converge from a pure state")
	}
}

func TestPowerIterationPreservesNormalization(t *testing.T) {
	p := NewCSR(3, 3, []Coord{
		{0, 0, 0.5}, {0, 1, 0.5},
		{1, 1, 0.2}, {1, 2, 0.8},
		{2, 0, 1},
	})
	pi, _, ok := PowerIteration(p, []float64{1, 1, 1}, 1e-13, 100000)
	if !ok {
		t.Fatal("did not converge")
	}
	if !almostEq(Norm1(pi), 1, 1e-12) {
		t.Fatalf("norm = %v", Norm1(pi))
	}
	// Verify fixed point: pi P = pi.
	next := p.VecMul(pi)
	for i := range pi {
		if !almostEq(next[i], pi[i], 1e-9) {
			t.Fatalf("not a fixed point: %v vs %v", next, pi)
		}
	}
}

func TestQuickCSRVecMulLinear(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(6)
		var items []Coord
		for k := 0; k < 3*n; k++ {
			items = append(items, Coord{r.Intn(n), r.Intn(n), r.NormFloat64()})
		}
		m := NewCSR(n, n, items)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = r.NormFloat64(), r.NormFloat64()
		}
		// M(x+y) == Mx + My
		xy := make([]float64, n)
		for i := range xy {
			xy[i] = x[i] + y[i]
		}
		got := m.MulVec(xy)
		mx, my := m.MulVec(x), m.MulVec(y)
		for i := range got {
			if math.Abs(got[i]-(mx[i]+my[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
