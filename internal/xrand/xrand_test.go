package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("sequence diverged at %d: %x vs %x", i, av, bv)
		}
	}
}

func TestSeedChangesSequence(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestOpenFloat64Positive(t *testing.T) {
	s := New(7)
	for i := 0; i < 100000; i++ {
		if v := s.OpenFloat64(); v <= 0 || v >= 1 {
			t.Fatalf("OpenFloat64 out of (0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	varc := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(varc-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", varc)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(19)
	for _, n := range []int{1, 2, 3, 7, 10, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(23)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d has %d draws, want ~%v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint32nBounds(t *testing.T) {
	s := New(29)
	for _, n := range []uint32{1, 2, 3, 5, 7, 10, 100, 1 << 20, 1<<32 - 1} {
		for i := 0; i < 1000; i++ {
			if v := s.Uint32n(n); v >= n {
				t.Fatalf("Uint32n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint32nOne(t *testing.T) {
	s := New(31)
	for i := 0; i < 100; i++ {
		if v := s.Uint32n(1); v != 0 {
			t.Fatalf("Uint32n(1) = %d", v)
		}
	}
}

// TestUint32nUniform checks per-bucket frequencies for bounds where a
// naive modulo reduction would be visibly biased: 2^32 mod n is large
// relative to n, so bias would shift low buckets by ~1/2^(32-k) —
// invisible at this sample size — whereas Lemire's rejection keeps
// exact uniformity, which the 5-sigma band certifies at the
// resolution that matters for index picking.
func TestUint32nUniform(t *testing.T) {
	s := New(37)
	for _, n := range []uint32{3, 6, 10} {
		const draws = 300000
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[s.Uint32n(n)]++
		}
		want := float64(draws) / float64(n)
		for i, c := range counts {
			if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
				t.Fatalf("Uint32n(%d) bucket %d has %d draws, want ~%v", n, i, c, want)
			}
		}
	}
}

// TestUint32nRejectionExact pins the bias-free construction directly:
// for the pathological bound n = 2^31 + 1 (worst-case rejection rate
// just under 1/2), the acceptance condition must still produce only
// in-range values and hit both halves of the range.
func TestUint32nRejectionExact(t *testing.T) {
	s := New(41)
	const n = 1<<31 + 1
	lo, hi := 0, 0
	for i := 0; i < 20000; i++ {
		v := s.Uint32n(n)
		if v >= n {
			t.Fatalf("Uint32n(%d) = %d out of range", uint32(n), v)
		}
		if v < n/2 {
			lo++
		} else {
			hi++
		}
	}
	if lo == 0 || hi == 0 {
		t.Fatalf("range halves not both reached: lo=%d hi=%d", lo, hi)
	}
}

func TestUint32nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint32n(0) did not panic")
		}
	}()
	New(1).Uint32n(0)
}

func TestBernoulliEdges(t *testing.T) {
	s := New(29)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(31)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", p)
	}
}

func TestJumpDisjointStreams(t *testing.T) {
	a := New(99)
	b := a.Clone()
	b.Jump()
	seen := make(map[uint64]bool, 10000)
	for i := 0; i < 10000; i++ {
		seen[a.Uint64()] = true
	}
	collisions := 0
	for i := 0; i < 10000; i++ {
		if seen[b.Uint64()] {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("jumped stream collided %d times with base stream prefix", collisions)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(5)
	a.Uint64()
	b := a.Clone()
	if a.Uint64() != b.Uint64() {
		t.Fatal("clone diverged immediately")
	}
	// Advancing a must not affect b.
	a.Uint64()
	a.Uint64()
	c := b.Clone()
	if b.Uint64() != c.Uint64() {
		t.Fatal("second clone diverged")
	}
}

func TestNewStreamDistinct(t *testing.T) {
	s0 := NewStream(1234, 0)
	s1 := NewStream(1234, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if s0.Uint64() == s1.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 0 and 1 produced %d/100 identical outputs", same)
	}
}

func TestNewStreamReproducible(t *testing.T) {
	a := NewStream(77, 5)
	b := NewStream(77, 5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical (seed,stream) gave different sequences")
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x,%#x) = (%#x,%#x), want (%#x,%#x)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestQuickFloat64InRange(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSeedDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		return New(seed).Uint64() == New(seed).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroStateGuard(t *testing.T) {
	var s Source // illegal all-zero state
	s.normalize()
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("normalize left a degenerate zero generator")
	}
}

func TestSeedStreamMatchesNewStream(t *testing.T) {
	var s Source
	for stream := uint64(0); stream < 10; stream++ {
		s.SeedStream(404, stream)
		want := NewStream(404, stream)
		for i := 0; i < 50; i++ {
			if s.Uint64() != want.Uint64() {
				t.Fatalf("SeedStream(404,%d) diverged from NewStream at draw %d", stream, i)
			}
		}
	}
}

func TestExpFloat64Moments(t *testing.T) {
	// The ziggurat must reproduce the rate-1 exponential's first two
	// moments (mean 1, variance 1).
	s := New(37)
	const n = 400000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	varc := sumSq/n - mean*mean
	if math.Abs(mean-1) > 0.01 {
		t.Fatalf("ziggurat mean = %v, want ~1", mean)
	}
	if math.Abs(varc-1) > 0.03 {
		t.Fatalf("ziggurat variance = %v, want ~1", varc)
	}
}

func TestExpFloat64MatchesInverseCDFHistogram(t *testing.T) {
	// Ziggurat and inverse-transform sampling target the same law:
	// compare empirical CDFs at fixed probes, including the ziggurat
	// tail region beyond the base strip edge.
	const n = 400000
	probes := []float64{0.05, 0.2, 0.7, 1.5, 3, 6, 8}
	zig, inv := New(41), New(43)
	for _, q := range probes {
		below := func(draw func() float64) float64 {
			c := 0
			for i := 0; i < n; i++ {
				if draw() < q {
					c++
				}
			}
			return float64(c) / n
		}
		pz := below(zig.ExpFloat64)
		pi := below(inv.ExpInvFloat64)
		want := 1 - math.Exp(-q)
		if math.Abs(pz-want) > 0.005 {
			t.Errorf("ziggurat P(X<%v) = %v, analytic %v", q, pz, want)
		}
		if math.Abs(pz-pi) > 0.01 {
			t.Errorf("ziggurat vs inverse CDF at %v: %v vs %v", q, pz, pi)
		}
	}
}

func TestExpFloat64TailReachable(t *testing.T) {
	// Draws beyond the base strip edge (x > zigExpR) occur with
	// probability exp(-7.697) ~ 4.5e-4; 100k draws should see a few.
	s := New(47)
	tail := 0
	for i := 0; i < 200000; i++ {
		if s.ExpFloat64() > zigExpR {
			tail++
		}
	}
	if tail == 0 {
		t.Fatal("ziggurat tail branch never taken in 200k draws")
	}
}

func TestExpFloat64NMatchesSequential(t *testing.T) {
	// The batch fill must consume the stream identically to sequential
	// ExpFloat64 calls: same values, same generator state afterwards.
	// Odd lengths exercise slow-path draws landing at batch boundaries.
	for _, n := range []int{0, 1, 2, 7, 64, 333, 4096} {
		a := New(91)
		b := New(91)
		got := make([]float64, n)
		a.ExpFloat64N(got)
		for i := 0; i < n; i++ {
			want := b.ExpFloat64()
			if got[i] != want {
				t.Fatalf("len %d: batch[%d] = %v, sequential = %v", n, i, got[i], want)
			}
		}
		if ga, gb := a.Uint64(), b.Uint64(); ga != gb {
			t.Fatalf("len %d: post-batch state diverged (%d vs %d)", n, ga, gb)
		}
	}
}

func TestExpFloat64NSlowPathReachable(t *testing.T) {
	// Non-fast draws (tail or wedge, ~1.4%) must occur inside batches;
	// 64k draws should see hundreds. A fast draw consumes exactly one
	// Uint64, so the batch state diverges from a pure-uniform walk iff
	// some draw took the slow continuation.
	s := New(53)
	buf := make([]float64, 1024)
	slow := false
	for round := 0; round < 64 && !slow; round++ {
		fastOnly := s.Clone()
		for i := 0; i < len(buf); i++ {
			fastOnly.Uint64()
		}
		s.ExpFloat64N(buf)
		slow = *fastOnly != *s
	}
	if !slow {
		t.Fatal("slow path never taken across 64k batched draws")
	}
}

func BenchmarkExpFloat64N(b *testing.B) {
	s := New(1)
	buf := make([]float64, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i += len(buf) {
		s.ExpFloat64N(buf)
	}
	_ = buf
}

func BenchmarkExpFloat64Ziggurat(b *testing.B) {
	s := New(1)
	acc := 0.0
	for i := 0; i < b.N; i++ {
		acc += s.ExpFloat64()
	}
	_ = acc
}

func BenchmarkExpFloat64InverseCDF(b *testing.B) {
	s := New(1)
	acc := 0.0
	for i := 0; i < b.N; i++ {
		acc += s.ExpInvFloat64()
	}
	_ = acc
}

func BenchmarkUint32n(b *testing.B) {
	s := New(1)
	var acc uint32
	for i := 0; i < b.N; i++ {
		acc += s.Uint32n(4)
	}
	sinkU32 = acc
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var acc int
	for i := 0; i < b.N; i++ {
		acc += s.Intn(4)
	}
	sinkInt = acc
}

var (
	sinkU32 uint32
	sinkInt int
)
