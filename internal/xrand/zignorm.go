package xrand

import "math"

// NormFloat64 returns a standard normal variate using a 256-layer
// ziggurat (Marsaglia & Tsang 2000). One 64-bit draw supplies the
// 52-bit magnitude, the sign and the layer index, so ~99% of draws
// cost one table compare and one multiply — no logarithm or square
// root, unlike the polar method (NormPolarFloat64) it replaces on the
// hot paths (lognormal batches, Marsaglia-Tsang gamma rejection). Like
// ExpFloat64, it consumes a variable number of generator outputs per
// draw; replay reproduces exactly when the whole stream is replayed
// from its seed.
func (s *Source) NormFloat64() float64 {
	for {
		u := s.Uint64()
		j := u >> 12        // 52 uniform bits for the magnitude
		i := u & 0xff       // layer index from disjoint low bits
		neg := u&0x100 != 0 // sign from another disjoint bit
		x := float64(j) * zigNormW[i]
		if j < zigNormK[i] {
			if neg {
				return -x
			}
			return x
		}
		if i == 0 {
			x = s.normTail()
			if neg {
				return -x
			}
			return x
		}
		if zigNormF[i]+s.Float64()*(zigNormF[i-1]-zigNormF[i]) < math.Exp(-0.5*x*x) {
			if neg {
				return -x
			}
			return x
		}
	}
}

// normTail samples the normal tail beyond zigNormR by Marsaglia's
// exponential-majorant rejection.
func (s *Source) normTail() float64 {
	for {
		x := -math.Log(s.OpenFloat64()) * (1 / zigNormR)
		y := -math.Log(s.OpenFloat64())
		if y+y >= x*x {
			return zigNormR + x
		}
	}
}

// zigNormR is the right edge of the base strip for the 256-layer
// normal ziggurat (Marsaglia & Tsang's constant).
const zigNormR = 3.6541528853610088

// Ziggurat tables for the standard normal law, built at init from the
// Marsaglia & Tsang recurrence against the unnormalized density
// f(x) = exp(-x^2/2): zigNormK[i] are acceptance thresholds against
// 52-bit uniforms, zigNormW[i] scale those uniforms onto layer widths,
// and zigNormF[i] are the density values at the layer edges.
var (
	zigNormK [256]uint64
	zigNormW [256]float64
	zigNormF [256]float64
)

func init() {
	const m = 1 << 52
	f := func(x float64) float64 { return math.Exp(-0.5 * x * x) }
	// The common layer area is derived from zigNormR at init rather
	// than hard-coded, keeping the pair exactly consistent:
	// v = r f(r) + integral of f beyond r.
	v := zigNormR*f(zigNormR) + math.Sqrt(math.Pi/2)*math.Erfc(zigNormR/math.Sqrt2)
	dn, tn := zigNormR, zigNormR
	q := v / f(zigNormR)
	zigNormK[0] = uint64(zigNormR / q * m)
	zigNormK[1] = 0
	zigNormW[0] = q / m
	zigNormW[255] = zigNormR / m
	zigNormF[0] = 1
	zigNormF[255] = f(zigNormR)
	for i := 254; i >= 1; i-- {
		dn = math.Sqrt(-2 * math.Log(v/dn+f(dn)))
		zigNormK[i+1] = uint64(dn / tn * m)
		tn = dn
		zigNormF[i] = f(dn)
		zigNormW[i] = dn / m
	}
}
