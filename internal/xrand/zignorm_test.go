package xrand

import (
	"math"
	"testing"
)

// normCDF is the reference standard normal CDF used by the self-tests
// (erfc keeps full precision in the tails).
func normCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// TestZigNormTables sanity-checks the init-built ziggurat: layer edges
// strictly decreasing from the base strip, density values increasing
// toward f(0) = 1, acceptance thresholds below the 52-bit ceiling, and
// every layer enclosing the same area to near machine precision.
func TestZigNormTables(t *testing.T) {
	const m = 1 << 52
	v := zigNormR*math.Exp(-0.5*zigNormR*zigNormR) + math.Sqrt(math.Pi/2)*math.Erfc(zigNormR/math.Sqrt2)
	for i := 1; i < 256; i++ {
		if zigNormF[i] >= zigNormF[i-1] {
			t.Fatalf("density edges not decreasing: f[%d]=%v f[%d]=%v", i-1, zigNormF[i-1], i, zigNormF[i])
		}
		if zigNormK[i] > m {
			t.Fatalf("layer %d: threshold %d above 52-bit ceiling", i, zigNormK[i])
		}
	}
	for i := 1; i < 255; i++ {
		xi := zigNormW[i] * m    // layer i right edge
		xi1 := zigNormW[i+1] * m // layer i+1 right edge
		if xi1 <= xi {
			t.Fatalf("layer edges not increasing with index: x[%d]=%v x[%d]=%v", i, xi, i+1, xi1)
		}
		// Rectangle area of layer i: x_{i+1} * (f(x_i) - f(x_{i+1})).
		area := xi1 * (zigNormF[i] - zigNormF[i+1])
		if math.Abs(area-v) > 1e-9 {
			t.Fatalf("layer %d area %v, want common area %v", i, area, v)
		}
	}
}

// TestZigNormMoments is the moment self-test of the ziggurat sampler:
// mean, variance, skewness and excess kurtosis of a large sample must
// match the standard normal within Monte-Carlo tolerance.
func TestZigNormMoments(t *testing.T) {
	const n = 2_000_000
	r := New(20170327)
	var s1, s2, s3, s4 float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		s1 += x
		s2 += x * x
		s3 += x * x * x
		s4 += x * x * x * x
	}
	mean := s1 / n
	varc := s2/n - mean*mean
	skew := s3 / n / math.Pow(varc, 1.5)
	kurt := s4/n/(varc*varc) - 3
	if math.Abs(mean) > 0.004 {
		t.Errorf("mean %v, want ~0", mean)
	}
	if math.Abs(varc-1) > 0.01 {
		t.Errorf("variance %v, want ~1", varc)
	}
	if math.Abs(skew) > 0.02 {
		t.Errorf("skewness %v, want ~0", skew)
	}
	if math.Abs(kurt) > 0.05 {
		t.Errorf("excess kurtosis %v, want ~0", kurt)
	}
}

// TestZigNormQuantiles is the quantile self-test: the empirical CDF at
// fixed abscissae — including points beyond the ziggurat base strip,
// exercising the tail sampler — must match the analytic normal CDF
// within binomial tolerance.
func TestZigNormQuantiles(t *testing.T) {
	const n = 2_000_000
	xs := []float64{-3.8, -3, -2, -1, -0.5, 0, 0.5, 1, 2, 3, 3.8}
	counts := make([]int, len(xs))
	r := New(7)
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		for j, x := range xs {
			if v <= x {
				counts[j]++
			}
		}
	}
	for j, x := range xs {
		p := normCDF(x)
		got := float64(counts[j]) / n
		tol := 5*math.Sqrt(p*(1-p)/n) + 2e-6
		if math.Abs(got-p) > tol {
			t.Errorf("P(X <= %v) = %v, want %v (tol %v)", x, got, p, tol)
		}
	}
}

// TestZigNormAgainstPolar cross-checks the ziggurat against the polar
// reference sampler on summary statistics from independent streams.
func TestZigNormAgainstPolar(t *testing.T) {
	const n = 500_000
	rz, rp := New(11), New(13)
	var mz, mp, vz, vp float64
	for i := 0; i < n; i++ {
		a, b := rz.NormFloat64(), rp.NormPolarFloat64()
		mz += a
		mp += b
		vz += a * a
		vp += b * b
	}
	mz, mp, vz, vp = mz/n, mp/n, vz/n, vp/n
	if math.Abs(mz-mp) > 0.008 {
		t.Errorf("ziggurat mean %v vs polar mean %v", mz, mp)
	}
	if math.Abs(vz-vp) > 0.01 {
		t.Errorf("ziggurat E[X^2] %v vs polar %v", vz, vp)
	}
}

// TestZigNormDeterminism pins replay: identical streams produce
// identical draw sequences.
func TestZigNormDeterminism(t *testing.T) {
	a, b := NewStream(3, 9), NewStream(3, 9)
	for i := 0; i < 10_000; i++ {
		if x, y := a.NormFloat64(), b.NormFloat64(); x != y {
			t.Fatalf("draw %d diverged: %v vs %v", i, x, y)
		}
	}
}

func BenchmarkNormFloat64Zig(b *testing.B) {
	r := New(1)
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += r.NormFloat64()
	}
	sinkNorm = s
}

func BenchmarkNormFloat64Polar(b *testing.B) {
	r := New(1)
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += r.NormPolarFloat64()
	}
	sinkNorm = s
}

var sinkNorm float64
