// Package xrand provides a fast, reproducible pseudo-random number
// generator substrate for Monte-Carlo availability simulation.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 so that any 64-bit seed yields a well-mixed state. The
// package supports two ways of deriving statistically independent
// streams from a single master seed:
//
//   - Jump: advances the state by 2^128 steps, giving up to 2^128
//     non-overlapping subsequences (used for parallel simulation
//     workers);
//   - NewStream(seed, i): hashes (seed, i) through SplitMix64, a cheap
//     scheme suitable for per-iteration replay streams.
//
// Source implements math/rand's Source64, so it can also back a
// *rand.Rand when convenient.
package xrand

import "math"

// Source is a xoshiro256** PRNG. The zero value is NOT a valid
// generator; construct with New or NewStream.
type Source struct {
	s [4]uint64
}

// splitMix64 advances x by the SplitMix64 sequence and returns the next
// output. It is the recommended seeding generator for xoshiro.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given 64-bit seed.
func New(seed uint64) *Source {
	var s Source
	s.Seed(int64(seed))
	return &s
}

// NewStream returns the stream-th independent Source derived from seed.
// Streams with distinct (seed, stream) pairs are decorrelated by hashing
// both through SplitMix64 before state expansion.
func NewStream(seed uint64, stream uint64) *Source {
	var s Source
	s.SeedStream(seed, stream)
	return &s
}

// SeedStream resets the generator in place to the stream-th independent
// state derived from seed, producing exactly the sequence of
// NewStream(seed, stream) without allocating. It is the per-iteration
// replay primitive of the Monte-Carlo hot loop: one stack-resident
// Source is reseeded for each iteration index.
func (s *Source) SeedStream(seed uint64, stream uint64) {
	x := seed
	h := splitMix64(&x)
	x = h ^ (stream * 0xd2b74407b1ce6e93)
	s.s[0] = splitMix64(&x)
	s.s[1] = splitMix64(&x)
	s.s[2] = splitMix64(&x)
	s.s[3] = splitMix64(&x)
	s.normalize()
}

// Seed resets the generator state from a 64-bit seed. It implements
// math/rand.Source.
func (s *Source) Seed(seed int64) {
	x := uint64(seed)
	s.s[0] = splitMix64(&x)
	s.s[1] = splitMix64(&x)
	s.s[2] = splitMix64(&x)
	s.s[3] = splitMix64(&x)
	s.normalize()
}

// normalize guards against the (astronomically unlikely, but illegal)
// all-zero state.
func (s *Source) normalize() {
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits. It implements
// math/rand.Source64. The state walks through locals so the function
// stays within the compiler's inlining budget — it is the innermost
// call of every draw in the Monte-Carlo hot loop.
func (s *Source) Uint64() uint64 {
	s0, s1, s2, s3 := s.s[0], s.s[1], s.s[2], s.s[3]
	result := rotl(s1*5, 7) * 9
	t := s1 << 17
	s2 ^= s0
	s3 ^= s1
	s1 ^= s2
	s0 ^= s3
	s2 ^= t
	s3 = rotl(s3, 45)
	s.s[0], s.s[1], s.s[2], s.s[3] = s0, s1, s2, s3
	return result
}

// Int63 returns a non-negative 63-bit random integer. It implements
// math/rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Float64 returns a uniformly distributed float64 in [0, 1) with 53
// bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// OpenFloat64 returns a uniformly distributed float64 in the open
// interval (0, 1). It never returns exactly 0, which makes it safe to
// feed into logarithms and inverse CDFs.
func (s *Source) OpenFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return u
		}
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
// It uses a 256-layer ziggurat (Marsaglia & Tsang), which resolves
// ~98.6% of draws with one 64-bit draw, one table compare and one
// multiply — no logarithm. The sequence is deterministic per stream but
// consumes a variable number of generator outputs per draw; replay
// therefore reproduces exactly when the whole stream is replayed from
// its seed (the contract the simulator's per-iteration streams rely
// on).
func (s *Source) ExpFloat64() float64 {
	u := s.Uint64()
	j := u >> 11  // 53 uniform bits
	i := u & 0xff // layer index from disjoint low bits
	if j < zigExpK[i] {
		return float64(j) * zigExpW[i]
	}
	return s.expSlow(u)
}

// expSlow finishes a ziggurat exponential draw whose first uniform u
// fell outside the fast-accept region (~1.4% of draws). Factoring it
// out keeps ExpFloat64's fast path small and lets ExpFloat64N share
// the identical slow continuation, so both consume the stream exactly
// alike.
func (s *Source) expSlow(u uint64) float64 {
	for {
		j := u >> 11
		i := u & 0xff
		if j < zigExpK[i] {
			return float64(j) * zigExpW[i]
		}
		if i == 0 {
			// Tail beyond x = zigExpR: memorylessness restarts the
			// exponential at the tail edge.
			return zigExpR + s.ExpInvFloat64()
		}
		x := float64(j) * zigExpW[i]
		if zigExpF[i]+s.Float64()*(zigExpF[i-1]-zigExpF[i]) < math.Exp(-x) {
			return x
		}
		u = s.Uint64()
	}
}

// ExpFloat64N fills dst with independent rate-1 exponential variates.
// It draws from the same ziggurat as ExpFloat64 and consumes the
// stream identically to len(dst) sequential ExpFloat64 calls, so a
// replayed stream may switch freely between the two. The batch form
// keeps the xoshiro state in registers across the whole fill,
// amortizing the per-call state loads/stores that dominate
// single-draw cost; the rare non-fast draws (~1.4%) flush state back
// and take the shared slow continuation.
func (s *Source) ExpFloat64N(dst []float64) {
	s0, s1, s2, s3 := s.s[0], s.s[1], s.s[2], s.s[3]
	for n := range dst {
		u := rotl(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
		j := u >> 11
		i := u & 0xff
		if j < zigExpK[i] {
			dst[n] = float64(j) * zigExpW[i]
			continue
		}
		s.s[0], s.s[1], s.s[2], s.s[3] = s0, s1, s2, s3
		dst[n] = s.expSlow(u)
		s0, s1, s2, s3 = s.s[0], s.s[1], s.s[2], s.s[3]
	}
	s.s[0], s.s[1], s.s[2], s.s[3] = s0, s1, s2, s3
}

// ExpInvFloat64 returns an exponentially distributed float64 with
// rate 1 by inverse-transform sampling (-ln U). It consumes exactly one
// uniform per draw (modulo the astronomically rare zero rejection in
// OpenFloat64), which makes it the reference sampler for tests that
// need fixed stream consumption.
func (s *Source) ExpInvFloat64() float64 {
	return -math.Log(s.OpenFloat64())
}

// Ziggurat tables for the rate-1 exponential law, built once at init
// from the Marsaglia & Tsang (2000) recurrence with 256 layers:
// zigExpK[i] are acceptance thresholds against 53-bit uniforms,
// zigExpW[i] scale those uniforms onto layer widths, and zigExpF[i] are
// the density values at the layer edges.
var (
	zigExpK [256]uint64
	zigExpW [256]float64
	zigExpF [256]float64
)

// zigExpR is the right edge of the base strip; zigExpV the common layer
// area (Marsaglia & Tsang's constants for N = 256).
const (
	zigExpR = 7.697117470131487
	zigExpV = 3.949659822581572e-3
)

func init() {
	const m = 1 << 53
	de, te := zigExpR, zigExpR
	q := zigExpV / math.Exp(-de)
	zigExpK[0] = uint64(de / q * m)
	zigExpK[1] = 0
	zigExpW[0] = q / m
	zigExpW[255] = de / m
	zigExpF[0] = 1
	zigExpF[255] = math.Exp(-de)
	for i := 254; i >= 1; i-- {
		de = -math.Log(zigExpV/de + math.Exp(-de))
		zigExpK[i+1] = uint64(de / te * m)
		te = de
		zigExpF[i] = math.Exp(-de)
		zigExpW[i] = de / m
	}
}

// NormPolarFloat64 returns a standard normal variate using the
// Marsaglia polar method. It is the reference sampler the ziggurat
// NormFloat64 is cross-checked against; hot paths should prefer
// NormFloat64.
func (s *Source) NormPolarFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Lemire's multiply-shift rejection method keeps it unbiased.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Uint32n returns a uniformly distributed uint32 in [0, n). It panics
// if n == 0. Like Intn it is bias-free (Lemire's multiply-shift
// rejection), but on 32-bit operands the 128-bit product collapses to
// one native 64-bit multiply, and the rejection threshold — the only
// division in the algorithm — is computed lazily on a path taken with
// probability below n/2^32. It is the uniform-index sampler of the
// simulation hot loops, where n is a disk count.
func (s *Source) Uint32n(n uint32) uint32 {
	if n == 0 {
		panic("xrand: Uint32n called with n == 0")
	}
	prod := uint64(uint32(s.Uint64()>>32)) * uint64(n)
	if low := uint32(prod); low < n {
		thresh := -n % n // (2^32 - n) % n, the bias-free cutoff
		for low < thresh {
			prod = uint64(uint32(s.Uint64()>>32)) * uint64(n)
			low = uint32(prod)
		}
	}
	return uint32(prod >> 32)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Bernoulli returns true with probability p. Values of p <= 0 always
// return false and p >= 1 always return true.
func (s *Source) Bernoulli(p float64) bool {
	if p >= 1 {
		return true
	}
	return p > 0 && s.Float64() < p
}

// jumpPoly is the xoshiro256** jump polynomial; calling Jump advances
// the state by 2^128 steps.
var jumpPoly = [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}

// Jump advances the generator 2^128 steps, equivalent to 2^128 calls to
// Uint64. It is used to partition one seed into non-overlapping
// parallel subsequences.
func (s *Source) Jump() {
	var t [4]uint64
	for _, jp := range jumpPoly {
		for b := uint(0); b < 64; b++ {
			if jp&(1<<b) != 0 {
				t[0] ^= s.s[0]
				t[1] ^= s.s[1]
				t[2] ^= s.s[2]
				t[3] ^= s.s[3]
			}
			s.Uint64()
		}
	}
	s.s = t
}

// Clone returns an independent copy of the generator in its current
// state. The copy and the original produce identical sequences.
func (s *Source) Clone() *Source {
	c := *s
	return &c
}
