package sweep

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 10, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Fatalf("xs = %v", xs)
		}
	}
}

func TestLinspaceEndpointsExact(t *testing.T) {
	xs := Linspace(5e-7, 5.5e-6, 11)
	if xs[0] != 5e-7 || xs[10] != 5.5e-6 {
		t.Fatalf("endpoints %v .. %v", xs[0], xs[10])
	}
}

func TestLogspace(t *testing.T) {
	xs := Logspace(1e-7, 1e-5, 3)
	if xs[0] != 1e-7 || xs[2] != 1e-5 {
		t.Fatalf("endpoints %v .. %v", xs[0], xs[2])
	}
	if math.Abs(xs[1]-1e-6)/1e-6 > 1e-10 {
		t.Fatalf("midpoint = %v, want 1e-6", xs[1])
	}
}

func TestRangePanics(t *testing.T) {
	cases := []func(){
		func() { Linspace(0, 1, 1) },
		func() { Linspace(2, 1, 5) },
		func() { Logspace(0, 1, 5) },
		func() { Logspace(1, 1, 5) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestEval(t *testing.T) {
	s, err := Eval([]float64{1, 2, 3}, func(x float64) (float64, error) { return x * x, nil })
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Y[2] != 9 {
		t.Fatalf("series = %+v", s)
	}
	if s.Min() != 1 || s.Max() != 9 || s.ArgMax() != 3 {
		t.Fatalf("stats wrong: min %v max %v argmax %v", s.Min(), s.Max(), s.ArgMax())
	}
}

func TestEvalPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Eval([]float64{1, 2}, func(x float64) (float64, error) {
		if x == 2 {
			return 0, boom
		}
		return x, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptySeriesStats(t *testing.T) {
	var s Series
	if !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) || !math.IsNaN(s.ArgMax()) {
		t.Fatal("empty series stats should be NaN")
	}
}

func TestCrossoversSingle(t *testing.T) {
	// a = x, b = 2 - x cross at x = 1.
	xs := Linspace(0, 2, 5)
	a, _ := Eval(xs, func(x float64) (float64, error) { return x, nil })
	b, _ := Eval(xs, func(x float64) (float64, error) { return 2 - x, nil })
	cross := Crossovers(a, b)
	if len(cross) != 1 || math.Abs(cross[0]-1) > 1e-12 {
		t.Fatalf("crossovers = %v", cross)
	}
}

func TestCrossoversNone(t *testing.T) {
	xs := Linspace(0, 1, 4)
	a, _ := Eval(xs, func(x float64) (float64, error) { return x, nil })
	b, _ := Eval(xs, func(x float64) (float64, error) { return x + 1, nil })
	if cross := Crossovers(a, b); len(cross) != 0 {
		t.Fatalf("crossovers = %v", cross)
	}
}

func TestCrossoversGridMismatchPanics(t *testing.T) {
	a := Series{X: []float64{1, 2}, Y: []float64{1, 2}}
	b := Series{X: []float64{1, 3}, Y: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Crossovers(a, b)
}

func TestQuickLinspaceMonotone(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := 2 + int(nRaw%50)
		xs := Linspace(1, 100, n)
		for i := 1; i < len(xs); i++ {
			if xs[i] <= xs[i-1] {
				return false
			}
		}
		return len(xs) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLogspacePositiveMonotone(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := 2 + int(nRaw%30)
		xs := Logspace(1e-8, 1e-2, n)
		for i, x := range xs {
			if x <= 0 {
				return false
			}
			if i > 0 && x <= xs[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
