// Package sweep provides parameter-grid helpers for the experiment
// harness: linear and logarithmic ranges, one-dimensional series
// evaluation, and crossover detection (used to locate where RAID
// availability rankings flip as hep grows).
package sweep

import (
	"fmt"
	"math"
)

// Linspace returns n evenly spaced values from lo to hi inclusive.
// It panics unless n >= 2 and hi > lo.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		panic(fmt.Sprintf("sweep: invalid linspace(%v, %v, %d)", lo, hi, n))
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // exact endpoint despite rounding
	return out
}

// Logspace returns n logarithmically spaced values from lo to hi
// inclusive. It panics unless n >= 2 and 0 < lo < hi.
func Logspace(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		panic(fmt.Sprintf("sweep: invalid logspace(%v, %v, %d)", lo, hi, n))
	}
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	step := (lhi - llo) / float64(n-1)
	for i := range out {
		out[i] = math.Exp(llo + float64(i)*step)
	}
	out[0], out[n-1] = lo, hi
	return out
}

// Series is a sampled one-dimensional function.
type Series struct {
	X, Y []float64
}

// Eval samples f over xs, failing fast on the first error.
func Eval(xs []float64, f func(x float64) (float64, error)) (Series, error) {
	s := Series{X: append([]float64(nil), xs...), Y: make([]float64, len(xs))}
	for i, x := range xs {
		y, err := f(x)
		if err != nil {
			return Series{}, fmt.Errorf("sweep: at x=%v: %w", x, err)
		}
		s.Y[i] = y
	}
	return s, nil
}

// Len returns the number of samples.
func (s Series) Len() int { return len(s.X) }

// Min returns the smallest Y value (NaN when empty).
func (s Series) Min() float64 {
	if len(s.Y) == 0 {
		return math.NaN()
	}
	m := s.Y[0]
	for _, y := range s.Y[1:] {
		if y < m {
			m = y
		}
	}
	return m
}

// Max returns the largest Y value (NaN when empty).
func (s Series) Max() float64 {
	if len(s.Y) == 0 {
		return math.NaN()
	}
	m := s.Y[0]
	for _, y := range s.Y[1:] {
		if y > m {
			m = y
		}
	}
	return m
}

// ArgMax returns the X at which Y is largest (NaN when empty).
func (s Series) ArgMax() float64 {
	if len(s.Y) == 0 {
		return math.NaN()
	}
	bi := 0
	for i, y := range s.Y {
		if y > s.Y[bi] {
			bi = i
		}
	}
	return s.X[bi]
}

// Crossovers returns the X positions (linearly interpolated) where two
// series sampled on the same grid swap order — e.g. where RAID1's
// availability curve crosses below RAID5's as hep grows. It panics if
// the grids differ.
func Crossovers(a, b Series) []float64 {
	if len(a.X) != len(b.X) {
		panic("sweep: crossover of series with different grids")
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			panic("sweep: crossover of series with different grids")
		}
	}
	var xs []float64
	for i := 1; i < len(a.X); i++ {
		d0 := a.Y[i-1] - b.Y[i-1]
		d1 := a.Y[i] - b.Y[i]
		if d0 == 0 {
			// Touching at a sample point counts once.
			if i == 1 || (a.Y[i-2]-b.Y[i-2])*d1 < 0 {
				xs = append(xs, a.X[i-1])
			}
			continue
		}
		if d0*d1 < 0 {
			// Linear interpolation of the sign change.
			frac := d0 / (d0 - d1)
			xs = append(xs, a.X[i-1]+frac*(a.X[i]-a.X[i-1]))
		}
	}
	return xs
}
