package sweep

import (
	"encoding/json"
	"testing"

	"herald/internal/shard"
	"herald/internal/sim"
)

// TestMonteCarloMatchesSolo pins the sweep coordinator's determinism:
// every pipelined point is byte-identical to running it alone, labels
// and order are preserved, and completion offsets are positive.
func TestMonteCarloMatchesSolo(t *testing.T) {
	mk := func(pol sim.Policy, hep float64) MCPoint {
		p := sim.PaperDefaults(4, 1e-4, hep)
		p.Policy = pol
		return MCPoint{
			Label:   pol.String(),
			Params:  p,
			Options: sim.Options{Iterations: 2000, MissionTime: 2e5, Seed: 20170327, Workers: 2},
		}
	}
	points := []MCPoint{
		mk(sim.Conventional, 0.02),
		mk(sim.AutoFailover, 0.02),
		mk(sim.DualParity, 0.02),
	}
	// The middle point runs adaptively: mixed sweeps are the common
	// shape once -target-halfwidth lands in repro.
	points[1].Options.TargetHalfWidth = 2e-5
	points[1].Options.Iterations = 60000

	var want []string
	for _, pt := range points {
		s, err := sim.Run(pt.Params, pt.Options)
		if err != nil {
			t.Fatalf("%s: solo run: %v", pt.Label, err)
		}
		b, _ := json.Marshal(s)
		want = append(want, string(b))
	}

	workers := []shard.Worker{
		shard.NewInProcessWorker("a", 1),
		shard.NewInProcessWorker("b", 1),
	}
	res, err := MonteCarlo(points, workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(points) {
		t.Fatalf("sweep returned %d results, want %d", len(res), len(points))
	}
	for i, r := range res {
		if r.Label != points[i].Label {
			t.Errorf("point %d: label %q, want %q", i, r.Label, points[i].Label)
		}
		b, _ := json.Marshal(r.Summary)
		if string(b) != want[i] {
			t.Errorf("point %d (%s): pipelined summary diverged\n got %s\nwant %s", i, r.Label, b, want[i])
		}
		if r.Done <= 0 {
			t.Errorf("point %d: non-positive completion offset %v", i, r.Done)
		}
	}
	if !res[1].Stats.StoppedEarly {
		t.Error("adaptive middle point did not stop early")
	}
}

// TestMonteCarloEmpty pins the trivial edge.
func TestMonteCarloEmpty(t *testing.T) {
	res, err := MonteCarlo(nil, []shard.Worker{shard.NewInProcessWorker("w", 1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("empty sweep returned %d results", len(res))
	}
}
