package sweep

import (
	"io"
	"time"

	"herald/internal/shard"
	"herald/internal/sim"
)

// Monte-Carlo scenario sweeps. A paper-scale evaluation is not one run
// but dozens — every policy crossed with every HEP value, each at 1e6
// iterations — and executing the points one after another leaves the
// worker pool idle while each point's tail shards (or adaptive drain)
// finish. MonteCarlo pipelines the points through one shared pool via
// shard.RunPipeline: point k+1's shards start the moment a pool slot
// frees up, while point k is still draining, without changing a bit of
// any point's answer.

// MCPoint is one scenario of a Monte-Carlo sweep: a label plus the
// full simulation configuration.
type MCPoint struct {
	// Label names the point in results and reports.
	Label string
	// Params and Options configure the point exactly as sim.Run would
	// receive them; adaptive options make the point precision-targeted.
	Params  sim.ArrayParams
	Options sim.Options
	// Shards overrides the point's shard count (0 = one per worker;
	// for adaptive points, per wave).
	Shards int
	// Checkpoint, when non-empty, makes the point resumable.
	Checkpoint string
}

// MCResult is one point's outcome.
type MCResult struct {
	// Label echoes the point's label.
	Label string
	// Summary is the point's merged result, bit-identical to running
	// the point alone.
	Summary sim.Summary
	// Stats reports how the point's distributed run unfolded.
	Stats shard.Stats
	// Done is the point's completion offset from the sweep start.
	// Points share the pool and overlap, so offsets are cumulative:
	// the last point's Done is the sweep's total wall time.
	Done time.Duration
	// Fingerprint is the point's canonical run identity
	// (shard.FingerprintOf): equal fingerprints mean byte-identical
	// Summaries, so it keys result caches and joins sweep rows to
	// availserve responses. Empty when the point's parameters fail to
	// encode (the run then failed too).
	Fingerprint string
}

// MonteCarlo executes the points through one shared worker pool,
// pipelined across scenarios as well as within each run. Results come
// back in point order; every Summary is bit-identical to executing
// that point alone with the same options. On error, the slice still
// carries the points that finished before the failure (zero Summary
// for the rest), mirroring shard.RunPipeline. logw receives
// coordinator warnings (nil discards them). The caller owns the
// workers.
func MonteCarlo(points []MCPoint, workers []shard.Worker, logw io.Writer) ([]MCResult, error) {
	specs := make([]shard.RunSpec, len(points))
	for i, pt := range points {
		specs[i] = shard.RunSpec{
			Params:     pt.Params,
			Options:    pt.Options,
			Shards:     pt.Shards,
			Checkpoint: pt.Checkpoint,
		}
	}
	res, err := shard.RunPipeline(specs, workers, logw)
	out := make([]MCResult, len(res))
	for i := range res {
		fp, _ := shard.FingerprintOf(points[i].Params, points[i].Options)
		out[i] = MCResult{
			Label:       points[i].Label,
			Summary:     res[i].Summary,
			Stats:       res[i].Stats,
			Done:        res[i].Wall,
			Fingerprint: fp,
		}
	}
	return out, err
}
