package human

import (
	"errors"
	"fmt"

	"herald/internal/xrand"
)

// Step is one action inside a service procedure, in THERP style
// (Swain & Guttmann's Technique for Human Error Rate Prediction, the
// paper's reference [8]): a base error probability, optionally
// mitigated by a recovery factor (a checklist tick, a second pair of
// eyes, an interlock) that catches a committed error with some
// probability.
type Step struct {
	// Name labels the step in reports.
	Name string
	// HEP is the base per-attempt error probability.
	HEP ErrorProbability
	// RecoveryFactor is the probability that a committed error is
	// caught and corrected before it takes effect (0 = no recovery).
	RecoveryFactor float64
}

// EffectiveHEP returns the step's error probability after recovery:
// hep * (1 - recovery).
func (s Step) EffectiveHEP() (ErrorProbability, error) {
	if err := s.HEP.Validate(); err != nil {
		return 0, fmt.Errorf("human: step %q: %w", s.Name, err)
	}
	if s.RecoveryFactor < 0 || s.RecoveryFactor > 1 {
		return 0, fmt.Errorf("human: step %q: recovery factor %v outside [0,1]", s.Name, s.RecoveryFactor)
	}
	return ErrorProbability(float64(s.HEP) * (1 - s.RecoveryFactor)), nil
}

// Procedure is an ordered sequence of steps performed during one
// service visit; the paper's "wrong disk replacement" is the failure
// of such a procedure's identify-and-pull step.
type Procedure struct {
	Name  string
	Steps []Step
}

// DiskReplacementProcedure returns a representative conventional
// replacement procedure whose end-to-end error probability lands in
// the paper's enterprise band when base is in [0.001, 0.01]: locate
// the failed drive, pull it, insert the new drive, start the rebuild
// script.
func DiskReplacementProcedure(base ErrorProbability) Procedure {
	return Procedure{
		Name: "conventional disk replacement",
		Steps: []Step{
			{Name: "identify failed drive bay", HEP: base, RecoveryFactor: 0.5},
			{Name: "pull drive", HEP: base, RecoveryFactor: 0},
			{Name: "insert replacement", HEP: base / 10, RecoveryFactor: 0.5},
			{Name: "start rebuild script", HEP: base, RecoveryFactor: 0.9},
		},
	}
}

// SuccessProbability returns the probability that every step completes
// without an effective error, assuming step independence (the THERP
// first-order model).
func (p Procedure) SuccessProbability() (float64, error) {
	if len(p.Steps) == 0 {
		return 0, errors.New("human: procedure has no steps")
	}
	s := 1.0
	for _, st := range p.Steps {
		eff, err := st.EffectiveHEP()
		if err != nil {
			return 0, err
		}
		s *= 1 - float64(eff)
	}
	return s, nil
}

// ErrorProbabilityTotal returns 1 - SuccessProbability: the value to
// plug into the availability models as hep.
func (p Procedure) ErrorProbabilityTotal() (ErrorProbability, error) {
	s, err := p.SuccessProbability()
	if err != nil {
		return 0, err
	}
	return ErrorProbability(1 - s), nil
}

// Sample walks the procedure once and returns the index of the first
// step whose error takes effect, or -1 on success.
func (p Procedure) Sample(r *xrand.Source) (int, error) {
	if len(p.Steps) == 0 {
		return 0, errors.New("human: procedure has no steps")
	}
	for i, st := range p.Steps {
		eff, err := st.EffectiveHEP()
		if err != nil {
			return 0, err
		}
		if r.Bernoulli(float64(eff)) {
			return i, nil
		}
	}
	return -1, nil
}
