// Package human models the human-error side of the study: Human Error
// Probabilities (hep) drawn from the Human Reliability Assessment
// literature the paper surveys (§II-A), and the taxonomy of operator
// actions during disk replacement service.
//
// The paper's working range — hep between 0.001 and 0.1 overall, and
// 0.001..0.01 for enterprise/safety-critical settings — comes from
// NASA HRA reports, EUROCONTROL feasibility studies, NUREG/WASH-1400
// and the Swain & Guttmann handbook. The constants here encode those
// published bands so experiments can reference them by name.
package human

import (
	"fmt"

	"herald/internal/xrand"
)

// ErrorProbability is a dimensionless per-opportunity human error
// probability (fraction of error cases over opportunities for error).
type ErrorProbability float64

// Validate checks the probability is inside [0, 1].
func (p ErrorProbability) Validate() error {
	if p < 0 || p > 1 {
		return fmt.Errorf("human: error probability %v outside [0,1]", float64(p))
	}
	return nil
}

// Published HEP reference points (see paper §II-A and refs [5]-[8]).
const (
	// HEPNone disables human error (the traditional availability
	// model's implicit assumption).
	HEPNone ErrorProbability = 0
	// HEPEnterpriseLow is the optimistic bound for highly trained
	// staff following checklists in enterprise settings.
	HEPEnterpriseLow ErrorProbability = 0.001
	// HEPEnterpriseHigh is the pessimistic bound for enterprise and
	// safety-critical applications.
	HEPEnterpriseHigh ErrorProbability = 0.01
	// HEPGeneralHigh is the upper end observed across all surveyed
	// applications and situations.
	HEPGeneralHigh ErrorProbability = 0.1
)

// PaperSweep returns the hep values the paper's figures sweep:
// 0 (traditional model), 0.001 and 0.01.
func PaperSweep() []ErrorProbability {
	return []ErrorProbability{HEPNone, HEPEnterpriseLow, HEPEnterpriseHigh}
}

// Action identifies an operator action that carries an error
// opportunity during storage service.
type Action int

const (
	// ReplaceFailedDisk is the physical swap of a failed disk for a
	// fresh one; the paper's focus ("wrong disk replacement" pulls a
	// healthy drive instead).
	ReplaceFailedDisk Action = iota
	// RunRecoveryScript starts the rebuild procedure; running the
	// wrong script can destroy the recovery.
	RunRecoveryScript
	// UndoWrongReplacement is the corrective action after a wrong
	// replacement: re-seat the pulled healthy disk, remove the failed
	// one. It is itself error-prone (the model's DU self-transition).
	UndoWrongReplacement
	// SwapSpareDisk replenishes the hot-spare slot after an automatic
	// fail-over (the delayed-replacement policy's only manual step).
	SwapSpareDisk
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ReplaceFailedDisk:
		return "replace-failed-disk"
	case RunRecoveryScript:
		return "run-recovery-script"
	case UndoWrongReplacement:
		return "undo-wrong-replacement"
	case SwapSpareDisk:
		return "swap-spare-disk"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Model carries per-action error probabilities. The zero value is the
// error-free technician.
type Model struct {
	perAction map[Action]ErrorProbability
	base      ErrorProbability
}

// NewModel returns a model that applies the same hep to every action.
func NewModel(hep ErrorProbability) (*Model, error) {
	if err := hep.Validate(); err != nil {
		return nil, err
	}
	return &Model{base: hep}, nil
}

// MustNewModel is NewModel panicking on invalid input.
func MustNewModel(hep ErrorProbability) *Model {
	m, err := NewModel(hep)
	if err != nil {
		panic(err)
	}
	return m
}

// SetAction overrides the probability of one action.
func (m *Model) SetAction(a Action, hep ErrorProbability) error {
	if err := hep.Validate(); err != nil {
		return err
	}
	if m.perAction == nil {
		m.perAction = make(map[Action]ErrorProbability)
	}
	m.perAction[a] = hep
	return nil
}

// HEP returns the error probability for an action.
func (m *Model) HEP(a Action) ErrorProbability {
	if m == nil {
		return 0
	}
	if p, ok := m.perAction[a]; ok {
		return p
	}
	return m.base
}

// Occurs samples whether a human error strikes the given action.
func (m *Model) Occurs(a Action, r *xrand.Source) bool {
	return r.Bernoulli(float64(m.HEP(a)))
}

// ExpectedErrorsPerDay estimates how many human errors a data-center
// experiences daily given a disk population, per-disk failure rate
// (1/h) and a per-service hep — the paper's motivating arithmetic: an
// exascale center with >1e6 drives sees a failure per hour, hence
// multiple human errors a day even at hep of a few permille.
func ExpectedErrorsPerDay(disks int, diskFailureRate float64, hep ErrorProbability) float64 {
	servicesPerDay := float64(disks) * diskFailureRate * 24
	return servicesPerDay * float64(hep)
}
