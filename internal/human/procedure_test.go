package human

import (
	"math"
	"testing"
	"testing/quick"

	"herald/internal/xrand"
)

func TestStepEffectiveHEP(t *testing.T) {
	s := Step{Name: "pull", HEP: 0.01, RecoveryFactor: 0.5}
	eff, err := s.EffectiveHEP()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(eff)-0.005) > 1e-15 {
		t.Fatalf("effective = %v", eff)
	}
}

func TestStepValidation(t *testing.T) {
	if _, err := (Step{HEP: 1.5}).EffectiveHEP(); err == nil {
		t.Fatal("bad hep accepted")
	}
	if _, err := (Step{HEP: 0.1, RecoveryFactor: -1}).EffectiveHEP(); err == nil {
		t.Fatal("bad recovery accepted")
	}
	if _, err := (Step{HEP: 0.1, RecoveryFactor: 2}).EffectiveHEP(); err == nil {
		t.Fatal("recovery > 1 accepted")
	}
}

func TestProcedureSuccessProbability(t *testing.T) {
	p := Procedure{
		Name: "test",
		Steps: []Step{
			{HEP: 0.1, RecoveryFactor: 0},
			{HEP: 0.2, RecoveryFactor: 0.5},
		},
	}
	got, err := p.SuccessProbability()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.9 * 0.9
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("success = %v, want %v", got, want)
	}
	hep, err := p.ErrorProbabilityTotal()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(hep)-(1-want)) > 1e-15 {
		t.Fatalf("total hep = %v", hep)
	}
}

func TestEmptyProcedureErrors(t *testing.T) {
	var p Procedure
	if _, err := p.SuccessProbability(); err == nil {
		t.Fatal("empty procedure accepted")
	}
	if _, err := p.Sample(xrand.New(1)); err == nil {
		t.Fatal("empty procedure sampled")
	}
}

func TestDiskReplacementProcedureInPaperBand(t *testing.T) {
	// At base hep values in the enterprise band the end-to-end error
	// probability should stay within the paper's [0.001, 0.1] range.
	for _, base := range []ErrorProbability{HEPEnterpriseLow, HEPEnterpriseHigh} {
		p := DiskReplacementProcedure(base)
		hep, err := p.ErrorProbabilityTotal()
		if err != nil {
			t.Fatal(err)
		}
		if hep < base/2 || hep > 4*base {
			t.Fatalf("base %v: total %v outside expected band", base, hep)
		}
	}
}

func TestProcedureSampleFrequency(t *testing.T) {
	p := Procedure{Steps: []Step{{Name: "only", HEP: 0.2}}}
	r := xrand.New(5)
	errors := 0
	const n = 100000
	for i := 0; i < n; i++ {
		idx, err := p.Sample(r)
		if err != nil {
			t.Fatal(err)
		}
		if idx == 0 {
			errors++
		} else if idx != -1 {
			t.Fatalf("unexpected step index %d", idx)
		}
	}
	if freq := float64(errors) / n; math.Abs(freq-0.2) > 0.01 {
		t.Fatalf("error frequency = %v", freq)
	}
}

func TestProcedureSamplePropagatesValidation(t *testing.T) {
	p := Procedure{Steps: []Step{{HEP: 2}}}
	if _, err := p.Sample(xrand.New(1)); err == nil {
		t.Fatal("invalid step sampled")
	}
}

func TestQuickSuccessMatchesSampling(t *testing.T) {
	f := func(seed uint64, aRaw, bRaw uint8) bool {
		a := float64(aRaw) / 255 * 0.3
		b := float64(bRaw) / 255 * 0.3
		p := Procedure{Steps: []Step{{HEP: ErrorProbability(a)}, {HEP: ErrorProbability(b)}}}
		want, err := p.SuccessProbability()
		if err != nil {
			return false
		}
		r := xrand.New(seed)
		ok := 0
		const n = 4000
		for i := 0; i < n; i++ {
			idx, err := p.Sample(r)
			if err != nil {
				return false
			}
			if idx == -1 {
				ok++
			}
		}
		return math.Abs(float64(ok)/n-want) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuickRecoveryNeverIncreasesHEP(t *testing.T) {
	f := func(hRaw, rRaw uint8) bool {
		h := ErrorProbability(float64(hRaw) / 255)
		rec := float64(rRaw) / 255
		base, err1 := (Step{HEP: h}).EffectiveHEP()
		mitigated, err2 := (Step{HEP: h, RecoveryFactor: rec}).EffectiveHEP()
		return err1 == nil && err2 == nil && mitigated <= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
