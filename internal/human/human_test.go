package human

import (
	"math"
	"testing"
	"testing/quick"

	"herald/internal/xrand"
)

func TestErrorProbabilityValidate(t *testing.T) {
	for _, p := range []ErrorProbability{0, 0.001, 0.01, 0.1, 1} {
		if err := p.Validate(); err != nil {
			t.Errorf("%v rejected: %v", p, err)
		}
	}
	for _, p := range []ErrorProbability{-0.1, 1.1} {
		if err := p.Validate(); err == nil {
			t.Errorf("%v accepted", p)
		}
	}
}

func TestPaperSweep(t *testing.T) {
	sweep := PaperSweep()
	want := []ErrorProbability{0, 0.001, 0.01}
	if len(sweep) != len(want) {
		t.Fatalf("sweep = %v", sweep)
	}
	for i := range want {
		if sweep[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", sweep, want)
		}
	}
}

func TestPublishedBands(t *testing.T) {
	// The paper: hep in [0.001, 0.1] overall; [0.001, 0.01] enterprise.
	if HEPEnterpriseLow != 0.001 || HEPEnterpriseHigh != 0.01 || HEPGeneralHigh != 0.1 {
		t.Fatal("published bands drifted from the paper's values")
	}
	if !(HEPNone < HEPEnterpriseLow && HEPEnterpriseLow < HEPEnterpriseHigh && HEPEnterpriseHigh < HEPGeneralHigh) {
		t.Fatal("bands are not ordered")
	}
}

func TestModelBaseHEP(t *testing.T) {
	m := MustNewModel(0.01)
	for _, a := range []Action{ReplaceFailedDisk, RunRecoveryScript, UndoWrongReplacement, SwapSpareDisk} {
		if m.HEP(a) != 0.01 {
			t.Errorf("HEP(%v) = %v", a, m.HEP(a))
		}
	}
}

func TestModelPerActionOverride(t *testing.T) {
	m := MustNewModel(0.01)
	if err := m.SetAction(RunRecoveryScript, 0.05); err != nil {
		t.Fatal(err)
	}
	if m.HEP(RunRecoveryScript) != 0.05 {
		t.Error("override not applied")
	}
	if m.HEP(ReplaceFailedDisk) != 0.01 {
		t.Error("override leaked to other actions")
	}
	if err := m.SetAction(ReplaceFailedDisk, 1.5); err == nil {
		t.Error("invalid override accepted")
	}
}

func TestNewModelRejectsInvalid(t *testing.T) {
	if _, err := NewModel(-0.2); err == nil {
		t.Error("negative hep accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewModel did not panic")
		}
	}()
	MustNewModel(2)
}

func TestNilModelIsErrorFree(t *testing.T) {
	var m *Model
	if m.HEP(ReplaceFailedDisk) != 0 {
		t.Error("nil model should have hep 0")
	}
	if m.Occurs(ReplaceFailedDisk, xrand.New(1)) {
		t.Error("nil model produced an error")
	}
}

func TestOccursFrequency(t *testing.T) {
	m := MustNewModel(0.01)
	r := xrand.New(42)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if m.Occurs(ReplaceFailedDisk, r) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.01) > 0.002 {
		t.Errorf("error frequency = %v, want ~0.01", got)
	}
}

func TestExpectedErrorsPerDayExascale(t *testing.T) {
	// The paper's motivation: >1e6 drives at enterprise failure rates
	// means ~a failure per hour; at hep ~ 0.01..0.1 that is multiple
	// human errors per day.
	const disks = 1_500_000
	const rate = 7e-7 // about one failure per hour across the fleet
	perDay := ExpectedErrorsPerDay(disks, rate, HEPGeneralHigh)
	if perDay < 1 {
		t.Errorf("exascale error rate = %v/day, expected multiple", perDay)
	}
	if z := ExpectedErrorsPerDay(disks, rate, HEPNone); z != 0 {
		t.Errorf("hep=0 should give zero errors, got %v", z)
	}
}

func TestActionStrings(t *testing.T) {
	for _, a := range []Action{ReplaceFailedDisk, RunRecoveryScript, UndoWrongReplacement, SwapSpareDisk, Action(77)} {
		if a.String() == "" {
			t.Errorf("Action %d renders empty", int(a))
		}
	}
}

func TestQuickOccursNeverForZeroAlwaysForOne(t *testing.T) {
	zero := MustNewModel(0)
	one := MustNewModel(1)
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		return !zero.Occurs(ReplaceFailedDisk, r) && one.Occurs(ReplaceFailedDisk, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickExpectedErrorsScalesLinearly(t *testing.T) {
	f := func(disksRaw uint16) bool {
		disks := 1 + int(disksRaw)
		base := ExpectedErrorsPerDay(disks, 1e-6, 0.01)
		double := ExpectedErrorsPerDay(2*disks, 1e-6, 0.01)
		return math.Abs(double-2*base) < 1e-12*(1+double)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
