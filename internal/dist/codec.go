package dist

import (
	"fmt"
)

// Spec is the serializable description of a distribution: family name
// plus positional parameters (and, for mixtures, branch weights and
// component specs). It is the wire format sharded simulation uses to
// ship laws to worker processes and machines. Round-tripping through a
// Spec rebuilds the law via its constructor, so derived caches
// (Weibull's inverse shape, Gamma's rejection constants, a Mixture's
// cumulative table) are restored even though they never travel.
type Spec struct {
	Family     string    `json:"family"`
	Params     []float64 `json:"params,omitempty"`
	Weights    []float64 `json:"weights,omitempty"`
	Components []Spec    `json:"components,omitempty"`
}

// Spec family names.
const (
	SpecExponential   = "exponential"
	SpecDeterministic = "deterministic"
	SpecUniform       = "uniform"
	SpecWeibull       = "weibull"
	SpecLognormal     = "lognormal"
	SpecGamma         = "gamma"
	SpecMixture       = "mixture"
)

// SpecOf returns the serializable description of d. Every family this
// package constructs is supported; an unknown implementation of
// Distribution yields an error.
func SpecOf(d Distribution) (Spec, error) {
	switch v := d.(type) {
	case Exponential:
		return Spec{Family: SpecExponential, Params: []float64{v.Rate}}, nil
	case *Exponential:
		return Spec{Family: SpecExponential, Params: []float64{v.Rate}}, nil
	case Deterministic:
		return Spec{Family: SpecDeterministic, Params: []float64{v.Value}}, nil
	case Uniform:
		return Spec{Family: SpecUniform, Params: []float64{v.Lo, v.Hi}}, nil
	case Weibull:
		return Spec{Family: SpecWeibull, Params: []float64{v.Shape, v.Scale}}, nil
	case Lognormal:
		return Spec{Family: SpecLognormal, Params: []float64{v.Mu, v.Sigma}}, nil
	case Gamma:
		return Spec{Family: SpecGamma, Params: []float64{v.Shape, v.Rate}}, nil
	case Mixture:
		sp := Spec{Family: SpecMixture, Weights: append([]float64(nil), v.Weights...)}
		for i, c := range v.Components {
			cs, err := SpecOf(c)
			if err != nil {
				return Spec{}, fmt.Errorf("dist: mixture component %d: %w", i, err)
			}
			sp.Components = append(sp.Components, cs)
		}
		return sp, nil
	default:
		return Spec{}, fmt.Errorf("dist: no spec encoding for %T", d)
	}
}

// Distribution rebuilds the law the spec describes, via the family's
// constructor. Invalid parameters surface as errors rather than the
// constructor panics.
func (s Spec) Distribution() (d Distribution, err error) {
	defer func() {
		if r := recover(); r != nil {
			d, err = nil, fmt.Errorf("dist: invalid %s spec: %v", s.Family, r)
		}
	}()
	need := func(n int) error {
		if len(s.Params) != n {
			return fmt.Errorf("dist: %s spec needs %d params, got %d", s.Family, n, len(s.Params))
		}
		return nil
	}
	switch s.Family {
	case SpecExponential:
		if err := need(1); err != nil {
			return nil, err
		}
		return NewExponential(s.Params[0]), nil
	case SpecDeterministic:
		if err := need(1); err != nil {
			return nil, err
		}
		return NewDeterministic(s.Params[0]), nil
	case SpecUniform:
		if err := need(2); err != nil {
			return nil, err
		}
		return NewUniform(s.Params[0], s.Params[1]), nil
	case SpecWeibull:
		if err := need(2); err != nil {
			return nil, err
		}
		return NewWeibull(s.Params[0], s.Params[1]), nil
	case SpecLognormal:
		if err := need(2); err != nil {
			return nil, err
		}
		return NewLognormal(s.Params[0], s.Params[1]), nil
	case SpecGamma:
		if err := need(2); err != nil {
			return nil, err
		}
		return NewGamma(s.Params[0], s.Params[1]), nil
	case SpecMixture:
		if len(s.Components) == 0 || len(s.Weights) != len(s.Components) {
			return nil, fmt.Errorf("dist: mixture spec needs matching weights and components, got %d and %d",
				len(s.Weights), len(s.Components))
		}
		comps := make([]Distribution, len(s.Components))
		for i, cs := range s.Components {
			c, err := cs.Distribution()
			if err != nil {
				return nil, fmt.Errorf("dist: mixture component %d: %w", i, err)
			}
			comps[i] = c
		}
		return NewMixture(s.Weights, comps...), nil
	default:
		return nil, fmt.Errorf("dist: unknown spec family %q", s.Family)
	}
}
