package dist

import "herald/internal/xrand"

// BatchSampler is implemented by laws that can fill a slice of
// variates more cheaply than repeated Sample calls: per-draw constants
// are hoisted out of the loop and families with expensive inverse CDFs
// (Gamma, Lognormal) switch to fast exact algorithms (Marsaglia-Tsang
// rejection, ziggurat normals).
//
// SampleN draws len(dst) independent variates of the same law as
// Sample. It is NOT guaranteed to consume the stream identically to
// repeated Sample calls, nor to produce the same values — only the
// distribution is preserved. Replay determinism holds at the stream
// level: the same calls against the same (seed, stream) reproduce the
// same values.
type BatchSampler interface {
	SampleN(r *xrand.Source, dst []float64)
}

// Every family ships the batch fast path.
var _ = []BatchSampler{
	Exponential{}, Deterministic{}, Uniform{},
	Weibull{}, Lognormal{}, Gamma{}, Mixture{},
}

// FastExp reports whether d is an exponential law and returns its
// rate. Callers on hot paths use it to devirtualize sampling: a
// positive rate means every draw is r.ExpFloat64()/rate inline, with
// no interface dispatch. This is the common case for the paper's
// experiments, where all services are exponential.
func FastExp(d Distribution) (rate float64, ok bool) {
	switch e := d.(type) {
	case Exponential:
		return e.Rate, true
	case *Exponential:
		return e.Rate, true
	}
	return 0, false
}

// Memoryless reports whether d is distributionally memoryless — an
// exponential law in any of its parameterizations — and returns its
// hazard rate. Beyond the Exponential family itself it recognizes the
// degenerate family members that collapse to it: Weibull with shape 1
// (rate 1/Scale) and Gamma/Erlang with shape 1 (rate Rate).
//
// It is the capability query behind kernel specialization: a
// configuration whose laws all answer true admits the constant-hazard
// (CTMC-equivalent) treatment — competing risks collapse to one
// rate-based draw per event with no per-entity clocks — which
// internal/sim compiles onto its memoryless walkers. FastExp remains
// the narrower type-only query for callers that must preserve the
// exact Exponential draw sequence.
func Memoryless(d Distribution) (rate float64, ok bool) {
	if rate, ok = FastExp(d); ok {
		return rate, true
	}
	switch e := d.(type) {
	case Weibull:
		if e.Shape == 1 {
			return 1 / e.Scale, true
		}
	case *Weibull:
		if e.Shape == 1 {
			return 1 / e.Scale, true
		}
	case Gamma:
		if e.Shape == 1 {
			return e.Rate, true
		}
	case *Gamma:
		if e.Shape == 1 {
			return e.Rate, true
		}
	}
	return 0, false
}
