package dist

import (
	"encoding/json"
	"math"
	"testing"

	"herald/internal/xrand"
)

// TestSpecRoundTripEveryFamily pins the wire codec: encoding a law and
// rebuilding it must preserve the distribution exactly, including the
// constructor-derived caches the JSON never carries — checked by
// comparing draw sequences against the original from identical
// streams.
func TestSpecRoundTripEveryFamily(t *testing.T) {
	laws := []Distribution{
		NewExponential(2.5e-5),
		NewDeterministic(12),
		NewUniform(3, 9),
		NewWeibull(1.48, 8.2e4),
		NewLognormal(1.1, 0.8),
		NewGamma(2.5, 0.3),
		NewErlang(3, 0.7),
		NewHyperExponential([]float64{0.7, 0.3}, []float64{2, 0.05}),
		NewMixture([]float64{0.5, 0.5}, NewDeterministic(1), NewWeibull(2, 5)),
	}
	for _, d := range laws {
		sp, err := SpecOf(d)
		if err != nil {
			t.Fatalf("%s: SpecOf: %v", d, err)
		}
		raw, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("%s: marshal: %v", d, err)
		}
		var back Spec
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", d, err)
		}
		got, err := back.Distribution()
		if err != nil {
			t.Fatalf("%s: rebuild: %v", d, err)
		}
		if got.String() != d.String() {
			t.Errorf("rebuilt law %s, want %s", got, d)
		}
		if m := got.Mean(); math.Abs(m-d.Mean()) > 1e-12*math.Abs(d.Mean()) {
			t.Errorf("%s: rebuilt mean %v, want %v", d, m, d.Mean())
		}
		ra, rb := xrand.New(99), xrand.New(99)
		for i := 0; i < 200; i++ {
			a, b := d.Sample(ra), got.Sample(rb)
			if a != b {
				t.Fatalf("%s: draw %d diverged after round-trip: %v vs %v", d, i, a, b)
			}
		}
		// The batch fast path must survive the round-trip too (it
		// relies on constructor-derived caches).
		if ob, ok := d.(BatchSampler); ok {
			nb, ok := got.(BatchSampler)
			if !ok {
				t.Fatalf("%s: rebuilt law lost its batch path", d)
			}
			want := make([]float64, 64)
			have := make([]float64, 64)
			ra, rb = xrand.New(7), xrand.New(7)
			ob.SampleN(ra, want)
			nb.SampleN(rb, have)
			for i := range want {
				if want[i] != have[i] {
					t.Fatalf("%s: batch draw %d diverged after round-trip: %v vs %v", d, i, want[i], have[i])
				}
			}
		}
	}
}

// TestSpecErrors covers the failure paths: wrong arity, bad params,
// unknown family, foreign implementations.
func TestSpecErrors(t *testing.T) {
	cases := []Spec{
		{Family: "exponential"},                        // missing rate
		{Family: "exponential", Params: []float64{-1}}, // invalid rate
		{Family: "weibull", Params: []float64{1}},      // wrong arity
		{Family: "mixture", Weights: []float64{1}},     // no components
		{Family: "mixture", Weights: []float64{1, 1}, Components: []Spec{{Family: "exponential", Params: []float64{1}}}}, // length mismatch
		{Family: "cauchy", Params: []float64{1}}, // unknown family
	}
	for _, sp := range cases {
		if _, err := sp.Distribution(); err == nil {
			t.Errorf("spec %+v: expected error", sp)
		}
	}
	if _, err := SpecOf(fakeDist{}); err == nil {
		t.Error("SpecOf(foreign type): expected error")
	}
}

type fakeDist struct{}

func (fakeDist) Sample(*xrand.Source) float64 { return 0 }
func (fakeDist) Mean() float64                { return 0 }
func (fakeDist) Var() float64                 { return 0 }
func (fakeDist) CDF(float64) float64          { return 0 }
func (fakeDist) Quantile(float64) float64     { return 0 }
func (fakeDist) String() string               { return "fake" }
