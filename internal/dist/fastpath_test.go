package dist

import (
	"math"
	"testing"

	"herald/internal/xrand"
)

// batchMoments draws n variates through SampleN in chunks and returns
// the empirical mean and variance.
func batchMoments(d BatchSampler, seed uint64, n, chunk int) (mean, varc float64) {
	r := xrand.NewStream(seed, 0)
	buf := make([]float64, chunk)
	sum, sumSq := 0.0, 0.0
	drawn := 0
	for drawn < n {
		k := chunk
		if n-drawn < k {
			k = n - drawn
		}
		d.SampleN(r, buf[:k])
		for _, v := range buf[:k] {
			sum += v
			sumSq += v * v
		}
		drawn += k
	}
	mean = sum / float64(n)
	varc = sumSq/float64(n) - mean*mean
	return mean, varc
}

// TestSampleNMomentsEveryFamily checks that the batch fast path of
// every family reproduces the analytic mean and variance, i.e. that
// the specialized algorithms (Marsaglia-Tsang, polar normals, hoisted
// constants) draw from the same law as Sample.
func TestSampleNMomentsEveryFamily(t *testing.T) {
	cases := []struct {
		name string
		d    interface {
			Distribution
			BatchSampler
		}
	}{
		{"exponential", NewExponential(0.25)},
		{"deterministic", NewDeterministic(3.5)},
		{"uniform", NewUniform(2, 10)},
		{"weibull-wearout", NewWeibull(1.48, 200)},
		{"weibull-infant", NewWeibull(0.7, 50)},
		{"lognormal", NewLognormal(1.2, 0.8)},
		{"gamma-int", NewGamma(3, 0.5)},
		{"gamma-frac", NewGamma(2.6, 4)},
		{"gamma-small-shape", NewGamma(0.4, 2)},
		{"erlang", NewErlang(4, 0.1)},
		{"hyperexp", NewHyperExponential([]float64{0.7, 0.3}, []float64{2, 0.1})},
	}
	const n = 300000
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mean, varc := batchMoments(c.d, 1000, n, 101)
			wm, wv := c.d.Mean(), c.d.Var()
			// 6-sigma tolerance on the mean estimator, floored for the
			// deterministic law; variance gets a looser relative band.
			tolM := 6*math.Sqrt(wv/n) + 1e-12
			if math.Abs(mean-wm) > tolM {
				t.Errorf("SampleN mean = %v, analytic %v (tol %v)", mean, wm, tolM)
			}
			if wv > 0 && math.Abs(varc-wv) > 0.05*wv {
				t.Errorf("SampleN variance = %v, analytic %v", varc, wv)
			}
		})
	}
}

// TestSampleNAgreesWithSample cross-checks the two sampling paths of
// the families whose batch algorithm differs from Sample: their
// empirical CDFs at fixed probes must agree.
func TestSampleNAgreesWithSample(t *testing.T) {
	cases := []struct {
		name string
		d    interface {
			Distribution
			BatchSampler
		}
	}{
		{"gamma", NewGamma(2.6, 4)},
		{"gamma-small", NewGamma(0.4, 2)},
		{"lognormal", NewLognormal(1.2, 0.8)},
	}
	const n = 200000
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rb := xrand.NewStream(7, 1)
			rs := xrand.NewStream(7, 2)
			batch := make([]float64, n)
			c.d.SampleN(rb, batch)
			probes := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
			for _, p := range probes {
				q := c.d.Quantile(p)
				nb := 0
				for _, v := range batch {
					if v <= q {
						nb++
					}
				}
				ns := 0
				for i := 0; i < n; i++ {
					if c.d.Sample(rs) <= q {
						ns++
					}
				}
				fb, fs := float64(nb)/n, float64(ns)/n
				if math.Abs(fb-p) > 0.01 {
					t.Errorf("batch P(X<=q%.2f) = %v", p, fb)
				}
				if math.Abs(fb-fs) > 0.01 {
					t.Errorf("batch vs sample at p=%.2f: %v vs %v", p, fb, fs)
				}
			}
		})
	}
}

// TestSampleNLiteralStructs exercises the zero-cache fallback: laws
// built as composite literals (no constructor) must still batch-sample
// correctly.
func TestSampleNLiteralStructs(t *testing.T) {
	const n = 200000
	w := Weibull{Shape: 2, Scale: 10}
	mean, _ := batchMoments(w, 5, n, 64)
	if want := w.Mean(); math.Abs(mean-want) > 0.05*want {
		t.Errorf("literal Weibull batch mean = %v, want %v", mean, want)
	}
	g := Gamma{Shape: 2, Rate: 0.5}
	mean, _ = batchMoments(g, 6, n, 64)
	if want := g.Mean(); math.Abs(mean-want) > 0.05*want {
		t.Errorf("literal Gamma batch mean = %v, want %v", mean, want)
	}
	if q := g.Quantile(0.5); math.Abs(g.CDF(q)-0.5) > 1e-9 {
		t.Errorf("literal Gamma quantile round-trip: CDF(Q(0.5)) = %v", g.CDF(q))
	}
}

func TestFastExp(t *testing.T) {
	if rate, ok := FastExp(NewExponential(2.5)); !ok || rate != 2.5 {
		t.Errorf("FastExp(Exponential) = %v, %v", rate, ok)
	}
	e := NewExponential(0.1)
	if rate, ok := FastExp(&e); !ok || rate != 0.1 {
		t.Errorf("FastExp(*Exponential) = %v, %v", rate, ok)
	}
	for _, d := range []Distribution{
		NewWeibull(1, 10), NewDeterministic(1), NewGamma(1, 1),
		NewHyperExponential([]float64{1}, []float64{2}),
	} {
		if rate, ok := FastExp(d); ok {
			t.Errorf("FastExp(%s) unexpectedly ok with rate %v", d, rate)
		}
	}
}

func TestMemoryless(t *testing.T) {
	// Every exponential parameterization answers with its hazard rate.
	yes := []struct {
		name string
		d    Distribution
		rate float64
	}{
		{"exponential", NewExponential(2.5), 2.5},
		{"weibull shape 1", NewWeibull(1, 10), 0.1},
		{"gamma shape 1", NewGamma(1, 0.25), 0.25},
		{"erlang 1 stage", NewErlang(1, 3), 3},
	}
	for _, c := range yes {
		rate, ok := Memoryless(c.d)
		if !ok || math.Abs(rate-c.rate) > 1e-15 {
			t.Errorf("Memoryless(%s) = %v, %v; want %v, true", c.name, rate, ok, c.rate)
		}
	}
	e := NewExponential(0.1)
	w := NewWeibull(1, 4)
	g := NewGamma(1, 7)
	for _, d := range []Distribution{&e, &w, &g} {
		if _, ok := Memoryless(d); !ok {
			t.Errorf("Memoryless(%T) pointer form not recognized", d)
		}
	}
	// Aging or multi-mode laws are not memoryless — even a
	// single-branch hyper-exponential, which is distributionally
	// exponential but not structurally recognized.
	no := []Distribution{
		NewWeibull(1.48, 200), NewWeibull(0.7, 50),
		NewGamma(2.6, 4), NewErlang(4, 0.1),
		NewDeterministic(1), NewUniform(0, 1), NewLognormal(0, 1),
		NewHyperExponential([]float64{1}, []float64{2}),
	}
	for _, d := range no {
		if rate, ok := Memoryless(d); ok {
			t.Errorf("Memoryless(%s) unexpectedly ok with rate %v", d, rate)
		}
	}
	// Memoryless subsumes FastExp: whatever FastExp accepts must come
	// back with the identical rate.
	if r1, _ := FastExp(NewExponential(9)); true {
		if r2, ok := Memoryless(NewExponential(9)); !ok || r1 != r2 {
			t.Errorf("Memoryless disagrees with FastExp: %v vs %v", r2, r1)
		}
	}
}

// TestSampleNEmptyAndSingle guards the batch path's slice handling.
func TestSampleNEmptyAndSingle(t *testing.T) {
	r := xrand.NewStream(1, 0)
	for _, d := range []BatchSampler{
		NewExponential(1), NewGamma(0.5, 1), NewLognormal(0, 1),
		NewWeibull(2, 1), NewUniform(0, 1), NewDeterministic(2),
		NewHyperExponential([]float64{0.5, 0.5}, []float64{1, 10}),
	} {
		d.SampleN(r, nil)
		one := make([]float64, 1)
		d.SampleN(r, one)
		if one[0] < 0 || math.IsNaN(one[0]) {
			t.Errorf("%v single-element batch drew %v", d, one[0])
		}
	}
}

// TestErlangFloat64Moments checks the O(1) integer-shape draw against
// the Erlang(k, 1) mean, variance, and median for stage counts on
// both sides of the precomputed-constants cutoff.
func TestErlangFloat64Moments(t *testing.T) {
	r := xrand.NewStream(7, 0)
	for _, k := range []int{1, 2, 3, 8, 64, 100} {
		const n = 200000
		sum, sum2, below := 0.0, 0.0, 0
		med := NewGamma(float64(k), 1).Quantile(0.5)
		for i := 0; i < n; i++ {
			v := ErlangFloat64(r, k)
			if v < 0 {
				t.Fatalf("k=%d: negative draw %v", k, v)
			}
			sum += v
			sum2 += v * v
			if v < med {
				below++
			}
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		fk := float64(k)
		if tol := 5 * math.Sqrt(fk/n); math.Abs(mean-fk) > tol {
			t.Errorf("k=%d: mean %v, want %v +- %v", k, mean, fk, tol)
		}
		if tol := 5 * math.Sqrt(2*fk*fk+4*fk) / math.Sqrt(n); math.Abs(variance-fk) > tol {
			t.Errorf("k=%d: variance %v, want %v +- %v", k, variance, fk, tol)
		}
		if frac := float64(below) / n; math.Abs(frac-0.5) > 5*0.5/math.Sqrt(n) {
			t.Errorf("k=%d: P(X < median) = %v, want 0.5", k, frac)
		}
	}
}

func TestErlangFloat64Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ErlangFloat64(r, 0) did not panic")
		}
	}()
	ErlangFloat64(xrand.New(1), 0)
}

func BenchmarkErlangFloat64(b *testing.B) {
	r := xrand.New(1)
	acc := 0.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc += ErlangFloat64(r, 24)
	}
	_ = acc
}

func BenchmarkSampleNExponential(b *testing.B) {
	d := NewExponential(0.1)
	r := xrand.New(1)
	dst := make([]float64, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.SampleN(r, dst)
	}
}

func BenchmarkSampleNGammaBatch(b *testing.B) {
	d := NewGamma(2.6, 4)
	r := xrand.New(1)
	dst := make([]float64, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.SampleN(r, dst)
	}
}

func BenchmarkSampleGammaOneAtATime(b *testing.B) {
	d := NewGamma(2.6, 4)
	r := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 256; j++ {
			_ = d.Sample(r)
		}
	}
}
