package dist

import (
	"fmt"
	"math"

	"herald/internal/xrand"
)

// Gamma is the law with density proportional to
// x^(Shape-1) * exp(-Rate*x). Integer shapes (Erlang) are sums of
// Shape exponential stages: the classic phase-type model of a service
// procedure with sequential steps. Non-integer shapes interpolate.
type Gamma struct {
	// Shape is the dimensionless shape parameter a.
	Shape float64
	// Rate is the inverse scale b (1/h); the mean is Shape/Rate.
	Rate float64
	// mtD and mtC cache the Marsaglia-Tsang rejection constants
	// d = a' - 1/3 and c = 1/(3 sqrt(d)) for the effective shape
	// a' = max(Shape, Shape+1) used by SampleN; whB and whC cache the
	// Wilson-Hilferty starting-point constants 1 - 1/(9a) and
	// 1/(3 sqrt(a)) for Quantile. Constructors fill them; literal
	// structs leave them zero and the methods re-derive on the fly.
	mtD, mtC, whB, whC float64
}

// NewGamma returns the gamma law with the given shape and rate. It
// panics unless both are finite and positive.
func NewGamma(shape, rate float64) Gamma {
	checkPositive("gamma", "shape", shape)
	checkPositive("gamma", "rate", rate)
	g := Gamma{Shape: shape, Rate: rate}
	g.mtD, g.mtC = mtConstants(shape)
	g.whB, g.whC = whConstants(shape)
	return g
}

// mtConstants returns Marsaglia-Tsang's d and c for shape a, computed
// at the boosted shape a+1 when a < 1 (the boost draw handles the
// remainder).
func mtConstants(a float64) (d, c float64) {
	if a < 1 {
		a++
	}
	d = a - 1.0/3
	c = 1 / (3 * math.Sqrt(d))
	return d, c
}

// whConstants returns the Wilson-Hilferty cube-approximation constants
// for shape a.
func whConstants(a float64) (b, c float64) {
	return 1 - 1/(9*a), 1 / (3 * math.Sqrt(a))
}

// NewErlang returns the Erlang-k law: the sum of k independent
// exponential stages of the given rate. It panics unless k >= 1 and
// rate is finite and positive.
func NewErlang(k int, rate float64) Gamma {
	if k < 1 {
		panic(fmt.Sprintf("dist: erlang stage count %d must be >= 1", k))
	}
	return NewGamma(float64(k), rate)
}

// Sample draws by numeric inverse CDF from a single uniform, keeping
// the per-draw stream consumption constant for replay.
func (g Gamma) Sample(r *xrand.Source) float64 {
	return g.Quantile(r.OpenFloat64())
}

// SampleN fills dst with independent draws by Marsaglia-Tsang
// squeeze-rejection (ACM TOMS 2000) off the cached d and c constants:
// exact, and orders of magnitude cheaper than the numeric CDF
// inversion Sample performs. Shapes below 1 sample at Shape+1 and
// apply the U^(1/Shape) boost.
func (g Gamma) SampleN(r *xrand.Source, dst []float64) {
	d, c := g.mtD, g.mtC
	if d == 0 {
		d, c = mtConstants(g.Shape)
	}
	boosted := g.Shape < 1
	invA := 0.0
	if boosted {
		invA = 1 / g.Shape
	}
	for i := range dst {
		v := mtDraw(r, d, c)
		if boosted {
			v *= math.Pow(r.OpenFloat64(), invA)
		}
		dst[i] = v / g.Rate
	}
}

// erlangMaxCached is the largest stage count whose Marsaglia-Tsang
// constants are precomputed; ErlangFloat64 derives them on the fly
// beyond it.
const erlangMaxCached = 64

// erlangD and erlangC hold mtConstants(k) for k in [2, erlangMaxCached].
var erlangD, erlangC [erlangMaxCached + 1]float64

func init() {
	for k := 2; k <= erlangMaxCached; k++ {
		erlangD[k], erlangC[k] = mtConstants(float64(k))
	}
}

// ErlangFloat64 returns one Erlang(k, 1) variate — the sum of k
// independent rate-1 exponential stages — in O(1) draws regardless of
// k: one ziggurat exponential for k = 1, Marsaglia-Tsang rejection
// off cached integer-shape constants otherwise. It is the
// benign-cycle aggregation primitive of the memoryless simulation
// kernels, which collapse k quiet repair cycles into a single elapsed
// -time draw. It panics if k < 1.
func ErlangFloat64(r *xrand.Source, k int) float64 {
	if k <= 1 {
		if k < 1 {
			panic(fmt.Sprintf("dist: ErlangFloat64 stage count %d must be >= 1", k))
		}
		return r.ExpFloat64()
	}
	var d, c float64
	if k <= erlangMaxCached {
		d, c = erlangD[k], erlangC[k]
	} else {
		d, c = mtConstants(float64(k))
	}
	return mtDraw(r, d, c)
}

// mtDraw returns one Gamma(d+1/3, 1) variate by Marsaglia-Tsang
// rejection: x standard normal, v = (1+cx)^3, accept d*v under the
// squeeze or the exact log test.
func mtDraw(r *xrand.Source, d, c float64) float64 {
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.OpenFloat64()
		x2 := x * x
		if u < 1-0.0331*x2*x2 {
			return d * v
		}
		if math.Log(u) < 0.5*x2+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Mean returns Shape/Rate.
func (g Gamma) Mean() float64 { return g.Shape / g.Rate }

// Var returns Shape/Rate^2.
func (g Gamma) Var() float64 { return g.Shape / (g.Rate * g.Rate) }

// CDF returns the regularized lower incomplete gamma P(Shape, Rate*x).
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return regGammaP(g.Shape, g.Rate*x)
}

// Quantile inverts the CDF: a Wilson-Hilferty starting point refined
// by safeguarded Newton iteration on P(Shape, x).
func (g Gamma) Quantile(p float64) float64 {
	checkProb("gamma", p)
	a := g.Shape

	// Wilson-Hilferty: Gamma(a,1) is approximately a*(1 - 1/(9a) +
	// z/(3 sqrt(a)))^3 at normal quantile z, with the two constants
	// cached per instance.
	whB, whC := g.whB, g.whC
	if whB == 0 {
		whB, whC = whConstants(a)
	}
	z := NormQuantile(p)
	t := whB + z*whC
	x := a * t * t * t
	if x <= 0 || a < 1 {
		// Small-shape / deep-tail fallback: invert the leading series
		// term P(a, x) ~ x^a / (a Gamma(a)).
		x = math.Exp((math.Log(p) + lgamma(a) + math.Log(a)) / a)
	}

	// Bracket the root, then polish with Newton steps that fall back
	// to bisection whenever they leave the bracket.
	lo, hi := 0.0, math.Max(2*x, a+10)
	for regGammaP(a, hi) < p {
		lo = hi
		hi *= 2
	}
	for i := 0; i < 100; i++ {
		f := regGammaP(a, x) - p
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		pdf := math.Exp((a-1)*math.Log(x) - x - lgamma(a))
		step := f / pdf
		next := x - step
		if !(next > lo && next < hi) || pdf == 0 || math.IsNaN(next) {
			next = (lo + hi) / 2
		}
		if math.Abs(next-x) <= 1e-14*(1+x) {
			x = next
			break
		}
		x = next
	}
	return x / g.Rate
}

// String names the law.
func (g Gamma) String() string {
	return fmt.Sprintf("Gamma(shape=%g, rate=%g)", g.Shape, g.Rate)
}

// lgamma returns ln|Gamma(a)|, discarding the sign (a > 0 throughout
// this package).
func lgamma(a float64) float64 {
	v, _ := math.Lgamma(a)
	return v
}

// regGammaP returns the regularized lower incomplete gamma function
// P(a, x) = gamma(a, x)/Gamma(a), by series expansion for x < a+1 and
// by Lentz continued fraction of the complement otherwise (Numerical
// Recipes gser/gcf).
func regGammaP(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		// Series: P(a,x) = e^(-x) x^a / Gamma(a) * sum x^n / (a)_(n+1).
		ap := a
		sum := 1 / a
		del := sum
		for n := 0; n < 500; n++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-16 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lgamma(a))
	}
	// Continued fraction for Q(a,x); P = 1 - Q.
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	return 1 - h*math.Exp(-x+a*math.Log(x)-lgamma(a))
}
