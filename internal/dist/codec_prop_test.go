package dist

import (
	"encoding/json"
	"math"
	"testing"

	"herald/internal/xrand"
)

// specJSON canonicalizes a spec for comparison.
func specJSON(t testing.TB, s Spec) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	return string(b)
}

// TestSpecRoundTripAllFamilies is the codec's fixed-point property,
// over every family the package ships: encoding a law, rebuilding it,
// and encoding again yields the identical spec — and the rebuilt law
// is behaviourally indistinguishable (same analytic moments, same
// sample stream from the same seed).
func TestSpecRoundTripAllFamilies(t *testing.T) {
	for name, d1 := range families() {
		t.Run(name, func(t *testing.T) {
			s1, err := SpecOf(d1)
			if err != nil {
				t.Fatalf("SpecOf: %v", err)
			}
			d2, err := s1.Distribution()
			if err != nil {
				t.Fatalf("Distribution: %v", err)
			}
			s2, err := SpecOf(d2)
			if err != nil {
				t.Fatalf("SpecOf(rebuilt): %v", err)
			}
			if j1, j2 := specJSON(t, s1), specJSON(t, s2); j1 != j2 {
				t.Fatalf("spec not a fixed point:\n first %s\nsecond %s", j1, j2)
			}
			if m1, m2 := d1.Mean(), d2.Mean(); math.Float64bits(m1) != math.Float64bits(m2) {
				t.Fatalf("Mean diverged: %v vs %v", m1, m2)
			}
			if v1, v2 := d1.Var(), d2.Var(); math.Float64bits(v1) != math.Float64bits(v2) {
				t.Fatalf("Var diverged: %v vs %v", v1, v2)
			}
			ra, rb := xrand.New(20170327), xrand.New(20170327)
			for i := 0; i < 256; i++ {
				x, y := d1.Sample(ra), d2.Sample(rb)
				if math.Float64bits(x) != math.Float64bits(y) {
					t.Fatalf("sample %d diverged: %v vs %v", i, x, y)
				}
			}
			// And the spec survives the wire: JSON round-trip of the
			// spec itself rebuilds the same law.
			var s3 Spec
			if err := json.Unmarshal([]byte(specJSON(t, s1)), &s3); err != nil {
				t.Fatalf("unmarshal spec: %v", err)
			}
			if specJSON(t, s3) != specJSON(t, s1) {
				t.Fatalf("spec JSON round-trip changed the spec")
			}
		})
	}
}

// TestSpecRejectsMalformed pins the decoder's rejection surface:
// wrong arity, unknown families, inconsistent mixtures and
// out-of-domain parameters must all surface as errors, never as
// panics or silently-wrong laws.
func TestSpecRejectsMalformed(t *testing.T) {
	bad := map[string]Spec{
		"unknown family":      {Family: "pareto", Params: []float64{1}},
		"empty family":        {},
		"exponential no-args": {Family: SpecExponential},
		"exponential arity":   {Family: SpecExponential, Params: []float64{1, 2}},
		"exponential rate<=0": {Family: SpecExponential, Params: []float64{-1}},
		"exponential nan":     {Family: SpecExponential, Params: []float64{math.NaN()}},
		"deterministic arity": {Family: SpecDeterministic, Params: []float64{}},
		"uniform arity":       {Family: SpecUniform, Params: []float64{1}},
		"uniform inverted":    {Family: SpecUniform, Params: []float64{5, 2}},
		"weibull arity":       {Family: SpecWeibull, Params: []float64{1.5}},
		"weibull shape<=0":    {Family: SpecWeibull, Params: []float64{0, 100}},
		"lognormal sigma<=0":  {Family: SpecLognormal, Params: []float64{1, -0.5}},
		"gamma rate<=0":       {Family: SpecGamma, Params: []float64{2, 0}},
		"gamma inf":           {Family: SpecGamma, Params: []float64{math.Inf(1), 1}},
		"mixture empty":       {Family: SpecMixture},
		"mixture mismatch": {Family: SpecMixture, Weights: []float64{1},
			Components: []Spec{{Family: SpecExponential, Params: []float64{1}}, {Family: SpecDeterministic, Params: []float64{1}}}},
		"mixture negative weight": {Family: SpecMixture, Weights: []float64{-1, 2},
			Components: []Spec{{Family: SpecExponential, Params: []float64{1}}, {Family: SpecDeterministic, Params: []float64{1}}}},
		"mixture bad component": {Family: SpecMixture, Weights: []float64{1},
			Components: []Spec{{Family: "cauchy"}}},
	}
	for name, s := range bad {
		t.Run(name, func(t *testing.T) {
			d, err := s.Distribution()
			if err == nil {
				t.Fatalf("malformed spec %+v decoded to %T", s, d)
			}
		})
	}
}

// FuzzSpecDecode throws arbitrary JSON at the spec decoder: anything
// that decodes must re-encode to a fixed point and behave identically
// when rebuilt; nothing may panic. The seed corpus covers every
// family plus known-tricky malformed shapes, so plain `go test` runs
// them as regression pins.
func FuzzSpecDecode(f *testing.F) {
	for _, d := range families() {
		s, err := SpecOf(d)
		if err != nil {
			f.Fatalf("SpecOf: %v", err)
		}
		b, err := json.Marshal(s)
		if err != nil {
			f.Fatalf("marshal: %v", err)
		}
		f.Add(string(b))
	}
	for _, s := range []string{
		`{}`,
		`{"family": "exponential"}`,
		`{"family": "exponential", "params": [0]}`,
		`{"family": "uniform", "params": [9, 1]}`,
		`{"family": "mixture", "weights": [1], "components": []}`,
		`{"family": "mixture", "weights": [0, 0], "components": [{"family": "deterministic", "params": [1]}, {"family": "deterministic", "params": [2]}]}`,
		`{"family": "weibull", "params": [1e309, 1]}`,
		`[1, 2, 3]`,
		`"exponential"`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		var s Spec
		if err := json.Unmarshal([]byte(raw), &s); err != nil {
			return // not a spec; nothing to check
		}
		d, err := s.Distribution()
		if err != nil {
			return // rejected, as malformed specs must be
		}
		s1, err := SpecOf(d)
		if err != nil {
			t.Fatalf("decoded %q but cannot re-encode: %v", raw, err)
		}
		d2, err := s1.Distribution()
		if err != nil {
			t.Fatalf("re-encoded spec of %q does not decode: %v", raw, err)
		}
		s2, err := SpecOf(d2)
		if err != nil {
			t.Fatalf("SpecOf(rebuilt): %v", err)
		}
		if j1, j2 := specJSON(t, s1), specJSON(t, s2); j1 != j2 {
			t.Fatalf("not a fixed point for %q:\n first %s\nsecond %s", raw, j1, j2)
		}
		if math.Float64bits(d.Mean()) != math.Float64bits(d2.Mean()) {
			t.Fatalf("Mean diverged for %q", raw)
		}
		// Sampling equality, guarded against parameter regimes where
		// rejection samplers could grind (the moment and fixed-point
		// checks above still cover those).
		if tame(s1) {
			ra, rb := xrand.New(1), xrand.New(1)
			for i := 0; i < 32; i++ {
				if math.Float64bits(d.Sample(ra)) != math.Float64bits(d2.Sample(rb)) {
					t.Fatalf("sample stream diverged for %q", raw)
				}
			}
		}
	})
}

// tame reports whether every parameter in the spec tree sits in a
// range where sampling terminates quickly.
func tame(s Spec) bool {
	for _, p := range append(append([]float64{}, s.Params...), s.Weights...) {
		if math.IsNaN(p) || math.Abs(p) > 1e6 || (p != 0 && math.Abs(p) < 1e-6) {
			return false
		}
	}
	for _, c := range s.Components {
		if !tame(c) {
			return false
		}
	}
	return true
}
