// Package dist provides the parametric probability laws the
// availability study samples lifetimes and service durations from:
// the input side of every Monte-Carlo experiment in the repository.
//
// All laws model a non-negative random duration in hours, sampled
// from an *xrand.Source. Replaying a stream from its (seed, stream)
// pair reproduces the exact sample sequence — the foundation of the
// repro harness's determinism.
//
// # Fast-path contract
//
// Two sampling paths coexist, and hot loops are free to mix them:
//
//   - Sample draws one variate. Uniform, Deterministic, Lognormal and
//     Gamma consume a fixed number of uniforms per draw (Gamma
//     inverts its CDF numerically from a single uniform for exactly
//     this reason); Exponential and Weibull draw their exponential
//     variate from the stream's ziggurat sampler, which consumes a
//     variable number of generator outputs per draw. Where exactly
//     one uniform per variate matters, use Quantile(r.OpenFloat64()).
//   - SampleN (the BatchSampler interface) fills a slice and may use a
//     different, faster exact algorithm: Gamma switches to
//     Marsaglia-Tsang squeeze-rejection off constants cached by the
//     constructors, Lognormal to ziggurat normals,
//     and every family hoists per-draw constants out of the loop.
//
// Both paths draw from the identical law; only the mapping from
// stream positions to variates differs. Determinism is therefore
// guaranteed per call sequence — the same sequence of Sample/SampleN
// calls on the same stream yields bit-identical results — but a
// SampleN call is not interchangeable with N Sample calls when exact
// replay matters. FastExp exposes the exponential rate for callers
// that devirtualize the inner draw entirely (see internal/sim).
//
// Constructors precompute per-instance constants (Weibull's 1/k,
// Gamma's Marsaglia-Tsang d and c plus Wilson-Hilferty starting
// points); laws built as composite literals still work and re-derive
// those constants on the fly.
//
// # Families and parameterizations
//
//   - Exponential(rate): the memoryless law; density
//     f(x) = rate * exp(-rate*x), mean 1/rate. The paper's default for
//     every repair, restore and undo service (rates muDF, muDDF, muHE)
//     and for disk time-to-failure in the Markov-comparable runs.
//   - Weibull(shape k, scale c): F(x) = 1 - exp(-(x/c)^k), mean
//     c*Gamma(1+1/k). The paper's Fig. 5 field-study disk lifetimes;
//     shape > 1 models wear-out, shape = 1 reduces to
//     Exponential(1/c). WeibullFromMeanRate(rate, k) inverts the mean
//     formula to hit MTTF = 1/rate at a given shape.
//   - Deterministic(value): a point mass, for fixed-length services
//     and exact-tie corner tests.
//   - Uniform(lo, hi): constant density on [lo, hi); maintenance
//     windows with hard bounds.
//   - Lognormal(mu, sigma): ln X ~ N(mu, sigma^2), mean
//     exp(mu + sigma^2/2). The HRA literature's standard law for human
//     task completion times.
//   - Gamma(shape a, rate b): density proportional to
//     x^(a-1) exp(-b*x), mean a/b. Erlang(k, rate) is the integer-shape
//     special case: a sum of k exponential stages, the classic
//     phase-type model of multi-step service procedures.
//   - HyperExponential(weights, rates): a probabilistic mixture of
//     exponentials for multi-mode latencies (e.g. a human error that is
//     either caught in minutes or discovered hours later). Mixture
//     generalizes this to arbitrary component laws.
//
// NormQuantile exposes the standard normal inverse CDF (Acklam's
// rational approximation polished by one Halley step); it backs the
// Lognormal law and the confidence-interval machinery mirrored in
// internal/stats.
//
// Constructors panic on invalid parameters (non-finite, out of
// domain): distribution parameters are programmer inputs, matching the
// package-wide convention (cf. xrand.Intn, trace.Generate).
package dist

import (
	"fmt"
	"math"

	"herald/internal/xrand"
)

// Distribution is a one-dimensional probability law of a non-negative
// random duration. It is the sampling interface consumed by the
// Monte-Carlo simulator, the failure-log generator and the
// discrete-event examples.
type Distribution interface {
	// Sample draws one variate using r as the sole source of
	// randomness.
	Sample(r *xrand.Source) float64
	// Mean returns the analytic expectation E[X].
	Mean() float64
	// Var returns the analytic variance Var[X].
	Var() float64
	// CDF returns P(X <= x). It is 0 for x < 0.
	CDF(x float64) float64
	// Quantile returns the generalized inverse CDF
	// inf{x : CDF(x) >= p} for p in (0, 1).
	Quantile(p float64) float64
	// String names the law with its parameters.
	String() string
}

// checkFinite panics unless v is a finite float64.
func checkFinite(law, name string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("dist: %s %s %v is not finite", law, name, v))
	}
}

// checkPositive panics unless v is finite and strictly positive.
func checkPositive(law, name string, v float64) {
	checkFinite(law, name, v)
	if v <= 0 {
		panic(fmt.Sprintf("dist: %s %s %v must be positive", law, name, v))
	}
}

// checkProb panics unless p is a valid quantile probability in (0, 1).
func checkProb(law string, p float64) {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("dist: %s quantile probability %v outside (0,1)", law, p))
	}
}
