package dist

import (
	"fmt"

	"herald/internal/xrand"
)

// Deterministic is a point mass: every draw returns Value. It models
// fixed-length services and lets tests exercise exact ties between
// event times.
type Deterministic struct {
	// Value is the constant outcome (hours).
	Value float64
}

// NewDeterministic returns the point mass at value (hours). It panics
// if value is negative or not finite.
func NewDeterministic(value float64) Deterministic {
	checkFinite("deterministic", "value", value)
	if value < 0 {
		panic(fmt.Sprintf("dist: deterministic value %v must be non-negative", value))
	}
	return Deterministic{Value: value}
}

// Sample returns Value without consuming randomness.
func (d Deterministic) Sample(*xrand.Source) float64 { return d.Value }

// SampleN fills dst with Value without consuming randomness.
func (d Deterministic) SampleN(_ *xrand.Source, dst []float64) {
	for i := range dst {
		dst[i] = d.Value
	}
}

// Mean returns Value.
func (d Deterministic) Mean() float64 { return d.Value }

// Var returns 0.
func (d Deterministic) Var() float64 { return 0 }

// CDF is the unit step at Value.
func (d Deterministic) CDF(x float64) float64 {
	if x < d.Value {
		return 0
	}
	return 1
}

// Quantile returns Value for every p.
func (d Deterministic) Quantile(p float64) float64 {
	checkProb("deterministic", p)
	return d.Value
}

// String names the law.
func (d Deterministic) String() string {
	return fmt.Sprintf("Deterministic(%g)", d.Value)
}
