package dist

import (
	"fmt"
	"math"

	"herald/internal/xrand"
)

// Lognormal is the law of exp(N) for N ~ Normal(Mu, Sigma^2): the HRA
// literature's standard model of human task completion times, whose
// long right tail captures the occasional service that takes far
// longer than the median.
type Lognormal struct {
	// Mu is the mean of the underlying normal (log-hours); the median
	// of the law is exp(Mu).
	Mu float64
	// Sigma is the standard deviation of the underlying normal.
	Sigma float64
}

// NewLognormal returns the lognormal law with log-mean mu and
// log-standard-deviation sigma. It panics unless mu is finite and
// sigma finite and positive.
func NewLognormal(mu, sigma float64) Lognormal {
	checkFinite("lognormal", "mu", mu)
	checkPositive("lognormal", "sigma", sigma)
	return Lognormal{Mu: mu, Sigma: sigma}
}

// LognormalFromMeanMedian returns the lognormal law with the given
// mean and median (hours), the two statistics HRA tables usually
// report: mu = ln(median), sigma = sqrt(2 ln(mean/median)). It panics
// unless 0 < median < mean.
func LognormalFromMeanMedian(mean, median float64) Lognormal {
	checkPositive("lognormal", "mean", mean)
	checkPositive("lognormal", "median", median)
	if median >= mean {
		panic(fmt.Sprintf("dist: lognormal median %v must be below mean %v", median, mean))
	}
	return Lognormal{Mu: math.Log(median), Sigma: math.Sqrt(2 * math.Log(mean/median))}
}

// Sample draws by inverse CDF: exp(Mu + Sigma * Phi^-1(U)).
func (l Lognormal) Sample(r *xrand.Source) float64 {
	return math.Exp(l.Mu + l.Sigma*NormQuantile(r.OpenFloat64()))
}

// SampleN fills dst with independent draws via ziggurat normals
// (xrand.Source.NormFloat64), which beat both the Acklam quantile
// evaluation of Sample and the polar method this path previously used:
// ~99% of normals cost one table compare and one multiply, leaving the
// exp of the lognormal transform as the only transcendental per
// variate.
func (l Lognormal) SampleN(r *xrand.Source, dst []float64) {
	for i := range dst {
		dst[i] = math.Exp(l.Mu + l.Sigma*r.NormFloat64())
	}
}

// Mean returns exp(Mu + Sigma^2/2).
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Var returns (exp(Sigma^2) - 1) * exp(2*Mu + Sigma^2).
func (l Lognormal) Var() float64 {
	s2 := l.Sigma * l.Sigma
	return math.Expm1(s2) * math.Exp(2*l.Mu+s2)
}

// CDF returns Phi((ln x - Mu) / Sigma).
func (l Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return NormCDF((math.Log(x) - l.Mu) / l.Sigma)
}

// Quantile returns exp(Mu + Sigma * Phi^-1(p)).
func (l Lognormal) Quantile(p float64) float64 {
	checkProb("lognormal", p)
	return math.Exp(l.Mu + l.Sigma*NormQuantile(p))
}

// String names the law.
func (l Lognormal) String() string {
	return fmt.Sprintf("Lognormal(mu=%g, sigma=%g)", l.Mu, l.Sigma)
}
