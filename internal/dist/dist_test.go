package dist

import (
	"math"
	"strings"
	"testing"

	"herald/internal/xrand"
)

// Compile-time interface compliance for every family.
var (
	_ Distribution = Exponential{}
	_ Distribution = Deterministic{}
	_ Distribution = Weibull{}
	_ Distribution = Lognormal{}
	_ Distribution = Gamma{}
	_ Distribution = Uniform{}
	_ Distribution = Mixture{}
)

// families is the shared test table: every law the package ships, with
// parameters spanning the regimes the availability models use.
func families() map[string]Distribution {
	return map[string]Distribution{
		"exponential":      NewExponential(0.1),
		"exponential-slow": NewExponential(2e-5),
		"deterministic":    NewDeterministic(33),
		"weibull-wearout":  NewWeibull(1.48, 2000),
		"weibull-infant":   NewWeibull(0.8, 500),
		"weibull-meanrate": WeibullFromMeanRate(2e-5, 1.12),
		"lognormal":        NewLognormal(1, 0.5),
		"lognormal-mm":     LognormalFromMeanMedian(20, 15),
		"gamma":            NewGamma(2.5, 0.3),
		"erlang":           NewErlang(4, 0.5),
		"uniform":          NewUniform(2, 10),
		"hyperexp":         NewHyperExponential([]float64{0.7, 0.3}, []float64{1, 0.05}),
		"mixture": NewMixture([]float64{0.5, 0.5},
			NewUniform(1, 5), NewWeibull(2, 40)),
	}
}

// moments draws n samples and returns the empirical mean and
// (population) variance.
func moments(d Distribution, seed uint64, n int) (mean, variance float64) {
	r := xrand.New(seed)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := d.Sample(r)
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return
}

// TestSampleMomentsMatchAnalytic is the package's core statistical
// property: for every family, seeded sample moments must agree with
// the analytic Mean()/Var() within standard-error tolerances.
func TestSampleMomentsMatchAnalytic(t *testing.T) {
	const n = 200000
	for name, d := range families() {
		mean, variance := moments(d, 42, n)
		wantMean, wantVar := d.Mean(), d.Var()

		// 5-sigma band on the sample mean.
		tolMean := 5 * math.Sqrt(wantVar/n)
		if wantVar == 0 {
			tolMean = 1e-12 * (1 + math.Abs(wantMean))
		}
		if diff := math.Abs(mean - wantMean); diff > tolMean {
			t.Errorf("%s: sample mean %v vs analytic %v (diff %g > tol %g)",
				name, mean, wantMean, diff, tolMean)
		}

		// The sampling variance of the variance estimator depends on
		// the 4th moment; 8%% relative covers every family here at
		// n=2e5 with a wide margin.
		if wantVar == 0 {
			if variance != 0 {
				t.Errorf("%s: deterministic law with sample variance %v", name, variance)
			}
			continue
		}
		if rel := math.Abs(variance-wantVar) / wantVar; rel > 0.08 {
			t.Errorf("%s: sample variance %v vs analytic %v (rel %g)",
				name, variance, wantVar, rel)
		}
	}
}

// TestSampleDeterminism: identical (seed, stream) pairs must replay
// the exact sample sequence; different seeds must not.
func TestSampleDeterminism(t *testing.T) {
	for name, d := range families() {
		a := xrand.NewStream(7, 3)
		b := xrand.NewStream(7, 3)
		c := xrand.NewStream(8, 3)
		same, diff := true, false
		for i := 0; i < 100; i++ {
			x, y, z := d.Sample(a), d.Sample(b), d.Sample(c)
			if x != y {
				same = false
			}
			if x != z {
				diff = true
			}
		}
		if !same {
			t.Errorf("%s: same seed produced different sequences", name)
		}
		if _, ok := d.(Deterministic); !ok && !diff {
			t.Errorf("%s: different seeds produced identical sequences", name)
		}
	}
}

var quantileProbes = []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}

// TestQuantileCDFRoundTrip: CDF(Quantile(p)) == p for every continuous
// family, and Quantile is monotone in p.
func TestQuantileCDFRoundTrip(t *testing.T) {
	for name, d := range families() {
		if _, ok := d.(Deterministic); ok {
			// Point mass: the generalized inverse is the atom itself.
			if q := d.Quantile(0.5); q != d.Mean() {
				t.Errorf("%s: quantile %v, want atom %v", name, q, d.Mean())
			}
			continue
		}
		prev := math.Inf(-1)
		for _, p := range quantileProbes {
			q := d.Quantile(p)
			if q < prev {
				t.Errorf("%s: quantile not monotone at p=%v (%v < %v)", name, p, q, prev)
			}
			prev = q
			if back := d.CDF(q); math.Abs(back-p) > 1e-9 {
				t.Errorf("%s: CDF(Quantile(%v)) = %v", name, p, back)
			}
		}
	}
}

// TestEmpiricalCDFMatchesAnalytic: the fraction of samples below the
// analytic p-quantile must be p, within a binomial 5-sigma band. This
// exercises Sample/CDF/Quantile consistency jointly.
func TestEmpiricalCDFMatchesAnalytic(t *testing.T) {
	const n = 100000
	for name, d := range families() {
		if _, ok := d.(Deterministic); ok {
			continue
		}
		r := xrand.New(99)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = d.Sample(r)
		}
		for _, p := range []float64{0.1, 0.5, 0.9} {
			q := d.Quantile(p)
			below := 0
			for _, x := range samples {
				if x <= q {
					below++
				}
			}
			got := float64(below) / n
			tol := 5 * math.Sqrt(p*(1-p)/n)
			if math.Abs(got-p) > tol {
				t.Errorf("%s: empirical CDF at q%.2g = %v (tol %g)", name, p, got, tol)
			}
		}
	}
}

// TestWeibullShapeOneMatchesExponential: at shape 1 the Weibull law is
// the exponential law, analytically and sample-for-sample (the
// inverse-CDF samplers consume the stream identically).
func TestWeibullShapeOneMatchesExponential(t *testing.T) {
	const rate = 2e-5
	w := NewWeibull(1, 1/rate)
	e := NewExponential(rate)

	if math.Abs(w.Mean()-e.Mean())/e.Mean() > 1e-12 {
		t.Errorf("means differ: weibull %v vs exponential %v", w.Mean(), e.Mean())
	}
	if math.Abs(w.Var()-e.Var())/e.Var() > 1e-9 {
		t.Errorf("variances differ: weibull %v vs exponential %v", w.Var(), e.Var())
	}
	for _, p := range quantileProbes {
		qw, qe := w.Quantile(p), e.Quantile(p)
		if math.Abs(qw-qe) > 1e-9*qe {
			t.Errorf("quantile(%v) differs: weibull %v vs exponential %v", p, qw, qe)
		}
	}
	ra, rb := xrand.New(5), xrand.New(5)
	for i := 0; i < 1000; i++ {
		xw, xe := w.Sample(ra), e.Sample(rb)
		if math.Abs(xw-xe) > 1e-9*xe {
			t.Fatalf("sample %d differs: weibull %v vs exponential %v", i, xw, xe)
		}
	}
}

// TestWeibullFromMeanRateInvertsMean: the constructor must hit
// MTTF = 1/rate exactly for every shape the paper's Fig. 5 uses and
// beyond.
func TestWeibullFromMeanRateInvertsMean(t *testing.T) {
	for _, shape := range []float64{0.7, 1, 1.09, 1.12, 1.21, 1.48, 2, 3.5} {
		for _, rate := range []float64{1.25e-6, 2e-5, 0.1} {
			w := WeibullFromMeanRate(rate, shape)
			want := 1 / rate
			if rel := math.Abs(w.Mean()-want) / want; rel > 1e-12 {
				t.Errorf("shape %v rate %v: mean %v, want %v (rel %g)",
					shape, rate, w.Mean(), want, rel)
			}
			if w.Var() <= 0 {
				t.Errorf("shape %v rate %v: non-positive variance %v", shape, rate, w.Var())
			}
		}
	}
}

// TestNormQuantileKnownValues pins the classic critical points.
func TestNormQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.995, 2.5758293035489004},
		{0.841344746068543, 1}, // Phi(1)
		{0.025, -1.959963984540054},
	}
	for _, c := range cases {
		if got := NormQuantile(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

// TestNormQuantileRoundTrip: Phi(Phi^-1(p)) must return p to near
// machine precision at fixed probes across both tails.
func TestNormQuantileRoundTrip(t *testing.T) {
	probes := []float64{1e-12, 1e-9, 1e-4, 0.025, 0.2, 0.5, 0.8, 0.975, 1 - 1e-4, 1 - 1e-9}
	for _, p := range probes {
		x := NormQuantile(p)
		back := NormCDF(x)
		tol := 1e-12 * math.Max(p, 1e-300)
		if p > 0.5 {
			// Near 1 the limiting factor is the spacing of floats
			// around p itself.
			tol = 1e-13
		}
		if math.Abs(back-p) > tol {
			t.Errorf("NormCDF(NormQuantile(%g)) = %g (err %g > tol %g)",
				p, back, math.Abs(back-p), tol)
		}
	}
	// Symmetry.
	for _, p := range []float64{1e-6, 0.01, 0.3} {
		if d := NormQuantile(p) + NormQuantile(1-p); math.Abs(d) > 1e-11 {
			t.Errorf("asymmetry at p=%v: %g", p, d)
		}
	}
}

// TestGammaCDFMatchesErlangClosedForm cross-checks the incomplete
// gamma implementation against the elementary Erlang CDF
// 1 - exp(-rx) * sum_{j<k} (rx)^j / j!.
func TestGammaCDFMatchesErlangClosedForm(t *testing.T) {
	const k, rate = 3, 0.5
	g := NewErlang(k, rate)
	for _, x := range []float64{0.1, 1, 3, 6, 12, 30} {
		rx := rate * x
		sum, term := 1.0, 1.0
		for j := 1; j < k; j++ {
			term *= rx / float64(j)
			sum += term
		}
		want := 1 - math.Exp(-rx)*sum
		if got := g.CDF(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("Erlang CDF(%v) = %v, want %v", x, got, want)
		}
	}
}

// TestHyperExponentialAnalytic pins the mixture moments against the
// hand-computed hyper-exponential formulas.
func TestHyperExponentialAnalytic(t *testing.T) {
	w := []float64{0.7, 0.3}
	r := []float64{1, 0.05}
	h := NewHyperExponential(w, r)
	wantMean := 0.7/1 + 0.3/0.05
	if math.Abs(h.Mean()-wantMean) > 1e-12 {
		t.Errorf("mean %v, want %v", h.Mean(), wantMean)
	}
	wantVar := 0.7*2/(1*1) + 0.3*2/(0.05*0.05) - wantMean*wantMean
	if math.Abs(h.Var()-wantVar) > 1e-9 {
		t.Errorf("var %v, want %v", h.Var(), wantVar)
	}
	// A hyper-exponential always has coefficient of variation >= 1.
	if cv := math.Sqrt(h.Var()) / h.Mean(); cv < 1 {
		t.Errorf("hyper-exponential CV %v < 1", cv)
	}
	// Weights are normalized even when given unnormalized.
	h2 := NewHyperExponential([]float64{7, 3}, r)
	if math.Abs(h2.Mean()-wantMean) > 1e-12 {
		t.Errorf("unnormalized weights: mean %v, want %v", h2.Mean(), wantMean)
	}
}

// TestAtomicMixtureGeneralizedInverse: a mixture with a point-mass
// component has a CDF jump; the quantile must still satisfy the
// generalized-inverse contract CDF(Quantile(p)) >= p with monotone
// quantiles.
func TestAtomicMixtureGeneralizedInverse(t *testing.T) {
	m := NewMixture([]float64{0.5, 0.5}, NewDeterministic(5), NewWeibull(2, 40))
	prev := 0.0
	for _, p := range quantileProbes {
		q := m.Quantile(p)
		if q < prev {
			t.Errorf("quantile not monotone at p=%v (%v < %v)", p, q, prev)
		}
		prev = q
		if back := m.CDF(q); back < p-1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v < p", p, back)
		}
	}
	// The atom carries half the mass: quantiles across its span
	// collapse onto it.
	if q := m.Quantile(0.4); math.Abs(q-5) > 1e-6 {
		t.Errorf("quantile inside the atom = %v, want 5", q)
	}
}

// TestStrings: every law names itself (availsim prints the TTF law
// with %s).
func TestStrings(t *testing.T) {
	for name, d := range families() {
		s := d.String()
		if s == "" || strings.Contains(s, "%!") {
			t.Errorf("%s: bad String() %q", name, s)
		}
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// TestConstructorValidation: invalid parameters are programmer errors
// and must panic with a clear message.
func TestConstructorValidation(t *testing.T) {
	mustPanic(t, "exp zero rate", func() { NewExponential(0) })
	mustPanic(t, "exp negative rate", func() { NewExponential(-1) })
	mustPanic(t, "exp NaN rate", func() { NewExponential(math.NaN()) })
	mustPanic(t, "exp Inf rate", func() { NewExponential(math.Inf(1)) })
	mustPanic(t, "deterministic negative", func() { NewDeterministic(-1) })
	mustPanic(t, "weibull zero shape", func() { NewWeibull(0, 1) })
	mustPanic(t, "weibull zero scale", func() { NewWeibull(1, 0) })
	mustPanic(t, "weibull-mr zero rate", func() { WeibullFromMeanRate(0, 1.2) })
	mustPanic(t, "lognormal zero sigma", func() { NewLognormal(0, 0) })
	mustPanic(t, "lognormal-mm median>=mean", func() { LognormalFromMeanMedian(10, 10) })
	mustPanic(t, "gamma zero shape", func() { NewGamma(0, 1) })
	mustPanic(t, "erlang zero stages", func() { NewErlang(0, 1) })
	mustPanic(t, "uniform empty", func() { NewUniform(5, 5) })
	mustPanic(t, "uniform negative lo", func() { NewUniform(-1, 5) })
	mustPanic(t, "mixture length mismatch", func() {
		NewMixture([]float64{1}, NewExponential(1), NewExponential(2))
	})
	mustPanic(t, "mixture zero weights", func() {
		NewMixture([]float64{0, 0}, NewExponential(1), NewExponential(2))
	})
	mustPanic(t, "mixture negative weight", func() {
		NewMixture([]float64{-1, 2}, NewExponential(1), NewExponential(2))
	})
	mustPanic(t, "mixture nil component", func() { NewMixture([]float64{1}, nil) })
	mustPanic(t, "hyperexp length mismatch", func() {
		NewHyperExponential([]float64{1}, []float64{1, 2})
	})
	mustPanic(t, "quantile p=0", func() { NewExponential(1).Quantile(0) })
	mustPanic(t, "quantile p=1", func() { NewExponential(1).Quantile(1) })
	mustPanic(t, "norm quantile p=0", func() { NormQuantile(0) })
	mustPanic(t, "norm quantile p=1", func() { NormQuantile(1) })
	mustPanic(t, "norm quantile NaN", func() { NormQuantile(math.NaN()) })
}

// TestCDFBasics: CDF is 0 at and below zero, approaches 1, and is
// non-decreasing on a coarse grid, for every family.
func TestCDFBasics(t *testing.T) {
	for name, d := range families() {
		if c := d.CDF(-1); c != 0 {
			t.Errorf("%s: CDF(-1) = %v", name, c)
		}
		if c := d.CDF(0); c != 0 {
			t.Errorf("%s: CDF(0) = %v", name, c)
		}
		far := d.Mean() + 50*math.Sqrt(d.Var()+1)
		if c := d.CDF(far); c < 0.99 {
			t.Errorf("%s: CDF(far) = %v", name, c)
		}
		prev := 0.0
		for i := 1; i <= 40; i++ {
			c := d.CDF(far * float64(i) / 40)
			if c < prev || c > 1 {
				t.Errorf("%s: CDF not monotone into [0,1] at step %d (%v after %v)", name, i, c, prev)
				break
			}
			prev = c
		}
	}
}

// TestGammaQuantileExtremeProbes exercises the Newton/bisection
// inversion in the far tails and at sub-1 shapes where
// Wilson-Hilferty degrades.
func TestGammaQuantileExtremeProbes(t *testing.T) {
	for _, g := range []Gamma{NewGamma(0.3, 2), NewGamma(1, 1), NewGamma(9.5, 0.01)} {
		for _, p := range []float64{1e-9, 1e-4, 0.5, 1 - 1e-4, 1 - 1e-9} {
			q := g.Quantile(p)
			if q <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
				t.Fatalf("%s: quantile(%g) = %v", g, p, q)
			}
			if back := g.CDF(q); math.Abs(back-p) > 1e-8*math.Max(p, 1e-12) && math.Abs(back-p) > 1e-11 {
				t.Errorf("%s: CDF(Quantile(%g)) = %g", g, p, back)
			}
		}
	}
}
