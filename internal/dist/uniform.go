package dist

import (
	"fmt"

	"herald/internal/xrand"
)

// Uniform is the constant-density law on [Lo, Hi): a service whose
// duration is only known to lie within hard bounds, e.g. a maintenance
// window.
type Uniform struct {
	// Lo and Hi bound the support in hours, 0 <= Lo < Hi.
	Lo, Hi float64
}

// NewUniform returns the uniform law on [lo, hi). It panics unless
// 0 <= lo < hi with both finite.
func NewUniform(lo, hi float64) Uniform {
	checkFinite("uniform", "lo", lo)
	checkFinite("uniform", "hi", hi)
	if lo < 0 || lo >= hi {
		panic(fmt.Sprintf("dist: uniform bounds [%v, %v) need 0 <= lo < hi", lo, hi))
	}
	return Uniform{Lo: lo, Hi: hi}
}

// Sample draws Lo + (Hi-Lo)*U.
func (u Uniform) Sample(r *xrand.Source) float64 {
	return u.Lo + (u.Hi-u.Lo)*r.Float64()
}

// SampleN fills dst with independent draws, consuming the stream
// exactly as len(dst) Sample calls would.
func (u Uniform) SampleN(r *xrand.Source, dst []float64) {
	w := u.Hi - u.Lo
	for i := range dst {
		dst[i] = u.Lo + w*r.Float64()
	}
}

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Var returns (Hi-Lo)^2 / 12.
func (u Uniform) Var() float64 {
	w := u.Hi - u.Lo
	return w * w / 12
}

// CDF is linear on the support.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.Lo:
		return 0
	case x >= u.Hi:
		return 1
	default:
		return (x - u.Lo) / (u.Hi - u.Lo)
	}
}

// Quantile returns Lo + p*(Hi-Lo).
func (u Uniform) Quantile(p float64) float64 {
	checkProb("uniform", p)
	return u.Lo + p*(u.Hi-u.Lo)
}

// String names the law.
func (u Uniform) String() string {
	return fmt.Sprintf("Uniform[%g, %g)", u.Lo, u.Hi)
}
