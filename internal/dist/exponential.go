package dist

import (
	"fmt"
	"math"

	"herald/internal/xrand"
)

// Exponential is the memoryless law with density
// f(x) = Rate * exp(-Rate*x). It is the continuous-time analogue of
// the constant-hazard assumption behind every CTMC transition in
// internal/model.
type Exponential struct {
	// Rate is the hazard (1/h); the mean is 1/Rate.
	Rate float64
}

// NewExponential returns the exponential law with the given rate
// (1/h). It panics if rate is not finite and positive.
func NewExponential(rate float64) Exponential {
	checkPositive("exponential", "rate", rate)
	return Exponential{Rate: rate}
}

// Sample draws a rate-1 exponential from the stream's ziggurat
// sampler and rescales by Rate. Stream consumption per draw is
// variable (see xrand.Source.ExpFloat64); use an inverse-CDF draw via
// Quantile(r.OpenFloat64()) where exactly one uniform per variate
// matters.
func (e Exponential) Sample(r *xrand.Source) float64 {
	return r.ExpFloat64() / e.Rate
}

// SampleN fills dst with independent draws, consuming the stream
// exactly as len(dst) Sample calls would.
func (e Exponential) SampleN(r *xrand.Source, dst []float64) {
	for i := range dst {
		dst[i] = r.ExpFloat64() / e.Rate
	}
}

// Mean returns 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Var returns 1/Rate^2.
func (e Exponential) Var() float64 { return 1 / (e.Rate * e.Rate) }

// CDF returns 1 - exp(-Rate*x).
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// -Expm1 avoids cancellation for small Rate*x.
	return -math.Expm1(-e.Rate * x)
}

// Quantile returns -ln(1-p)/Rate.
func (e Exponential) Quantile(p float64) float64 {
	checkProb("exponential", p)
	return -math.Log1p(-p) / e.Rate
}

// String names the law.
func (e Exponential) String() string {
	return fmt.Sprintf("Exponential(rate=%g)", e.Rate)
}
