package dist

import "math"

// NormCDF returns the standard normal CDF Phi(x), computed through
// erfc for full accuracy in both tails.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// Acklam's rational approximation coefficients for the standard
// normal inverse CDF (relative error < 1.15e-9 before refinement).
var (
	acklamA = [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	acklamB = [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	acklamC = [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	acklamD = [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
)

// NormQuantile returns the standard normal inverse CDF Phi^-1(p) for
// p in (0, 1): Acklam's rational approximation followed by one Halley
// refinement step against erfc, which pushes the result to within a
// few ulps of the true quantile across the whole open interval. It
// panics outside (0, 1).
//
// It backs the Lognormal law, the mixture quantile bracketing, and
// mirrors the large-sample critical values used by internal/stats.
func NormQuantile(p float64) float64 {
	checkProb("normal", p)

	const pLow, pHigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < pLow:
		// Lower tail: rational in q = sqrt(-2 ln p).
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((acklamC[0]*q+acklamC[1])*q+acklamC[2])*q+acklamC[3])*q+acklamC[4])*q + acklamC[5]) /
			((((acklamD[0]*q+acklamD[1])*q+acklamD[2])*q+acklamD[3])*q + 1)
	case p > pHigh:
		// Upper tail: mirror of the lower tail.
		q := math.Sqrt(-2 * math.Log1p(-p))
		x = -(((((acklamC[0]*q+acklamC[1])*q+acklamC[2])*q+acklamC[3])*q+acklamC[4])*q + acklamC[5]) /
			((((acklamD[0]*q+acklamD[1])*q+acklamD[2])*q+acklamD[3])*q + 1)
	default:
		// Central region: rational in r = (p - 1/2)^2.
		q := p - 0.5
		r := q * q
		x = (((((acklamA[0]*r+acklamA[1])*r+acklamA[2])*r+acklamA[3])*r+acklamA[4])*r + acklamA[5]) * q /
			(((((acklamB[0]*r+acklamB[1])*r+acklamB[2])*r+acklamB[3])*r+acklamB[4])*r + 1)
	}

	// One Halley step on f(x) = Phi(x) - p. With the approximation
	// already at ~1e-9, this converges past double precision.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}
