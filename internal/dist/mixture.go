package dist

import (
	"fmt"
	"math"
	"strings"

	"herald/internal/xrand"
)

// Mixture is a probabilistic mixture: a draw first selects component
// i with probability Weights[i], then samples Components[i]. It
// models multi-mode durations — most prominently the hyper-exponential
// human-error recovery in which a wrong pull is either noticed within
// minutes or discovered hours later during a routine check.
type Mixture struct {
	// Components are the branch laws.
	Components []Distribution
	// Weights are the branch probabilities; they sum to 1.
	Weights []float64
	// cum is the exclusive cumulative weight table used for branch
	// selection.
	cum []float64
}

// NewMixture returns the mixture of the given components with the
// given weights. Weights must be non-negative with a positive sum
// (they are normalized internally); the lengths must match and be
// non-empty. It panics otherwise.
func NewMixture(weights []float64, components ...Distribution) Mixture {
	if len(components) == 0 || len(weights) != len(components) {
		panic(fmt.Sprintf("dist: mixture needs matching weights and components, got %d and %d",
			len(weights), len(components)))
	}
	total := 0.0
	for i, w := range weights {
		checkFinite("mixture", "weight", w)
		if w < 0 {
			panic(fmt.Sprintf("dist: mixture weight %d is negative (%v)", i, w))
		}
		if components[i] == nil {
			panic(fmt.Sprintf("dist: mixture component %d is nil", i))
		}
		total += w
	}
	if total <= 0 {
		panic("dist: mixture weights sum to zero")
	}
	m := Mixture{
		Components: append([]Distribution(nil), components...),
		Weights:    make([]float64, len(weights)),
		cum:        make([]float64, len(weights)),
	}
	run := 0.0
	for i, w := range weights {
		m.Weights[i] = w / total
		m.cum[i] = run
		run += w / total
	}
	return m
}

// NewHyperExponential returns the mixture of exponentials with the
// given branch weights and rates: the standard model for durations
// with a coefficient of variation above 1.
func NewHyperExponential(weights, rates []float64) Mixture {
	if len(rates) != len(weights) {
		panic(fmt.Sprintf("dist: hyper-exponential needs matching weights and rates, got %d and %d",
			len(weights), len(rates)))
	}
	comps := make([]Distribution, len(rates))
	for i, r := range rates {
		comps[i] = NewExponential(r)
	}
	return NewMixture(weights, comps...)
}

// Sample selects a branch by one uniform, then samples it.
func (m Mixture) Sample(r *xrand.Source) float64 {
	u := r.Float64()
	k := len(m.Components) - 1
	for i := 1; i < len(m.cum); i++ {
		if u < m.cum[i] {
			k = i - 1
			break
		}
	}
	return m.Components[k].Sample(r)
}

// SampleN fills dst with independent draws. Each draw selects its
// branch independently, matching Sample's stream consumption; branch
// laws that implement BatchSampler are still sampled one at a time
// because the branch sequence is itself random.
func (m Mixture) SampleN(r *xrand.Source, dst []float64) {
	for i := range dst {
		dst[i] = m.Sample(r)
	}
}

// Mean returns the weighted component mean.
func (m Mixture) Mean() float64 {
	s := 0.0
	for i, c := range m.Components {
		s += m.Weights[i] * c.Mean()
	}
	return s
}

// Var returns the mixture variance by the law of total variance:
// sum w_i (Var_i + Mean_i^2) - Mean^2.
func (m Mixture) Var() float64 {
	mean := m.Mean()
	s := 0.0
	for i, c := range m.Components {
		mi := c.Mean()
		s += m.Weights[i] * (c.Var() + mi*mi)
	}
	return s - mean*mean
}

// CDF returns the weighted component CDF.
func (m Mixture) CDF(x float64) float64 {
	s := 0.0
	for i, c := range m.Components {
		s += m.Weights[i] * c.CDF(x)
	}
	return s
}

// Quantile inverts the mixture CDF by bisection between the extreme
// component quantiles (the mixture CDF is sandwiched between them).
func (m Mixture) Quantile(p float64) float64 {
	checkProb("mixture", p)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, c := range m.Components {
		if m.Weights[i] == 0 {
			continue
		}
		q := c.Quantile(p)
		lo = math.Min(lo, q)
		hi = math.Max(hi, q)
	}
	if lo == hi {
		return lo
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if m.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// String names the law with its branches.
func (m Mixture) String() string {
	var sb strings.Builder
	sb.WriteString("Mixture(")
	for i, c := range m.Components {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%.3g:%s", m.Weights[i], c)
	}
	sb.WriteString(")")
	return sb.String()
}
