package dist

import (
	"fmt"
	"math"

	"herald/internal/xrand"
)

// Weibull is the law F(x) = 1 - exp(-(x/Scale)^Shape). Shape > 1
// models wear-out (increasing hazard), Shape < 1 infant mortality,
// and Shape = 1 reduces exactly to Exponential(1/Scale). The paper's
// Fig. 5 runs the simulator with field-study (shape, scale) pairs from
// Schroeder & Gibson (FAST'07).
type Weibull struct {
	// Shape is the dimensionless Weibull modulus k.
	Shape float64
	// Scale is the characteristic life c (hours): the 63.2th
	// percentile of the law.
	Scale float64
	// invShape caches 1/Shape for the batch fast path; constructors
	// fill it, literal structs leave it zero and fall back to the
	// division.
	invShape float64
}

// NewWeibull returns the Weibull law with the given shape and scale
// (hours). It panics unless both are finite and positive.
func NewWeibull(shape, scale float64) Weibull {
	checkPositive("weibull", "shape", shape)
	checkPositive("weibull", "scale", scale)
	return Weibull{Shape: shape, Scale: scale, invShape: 1 / shape}
}

// WeibullFromMeanRate returns the Weibull law with the given shape
// whose mean is 1/rate, inverting mean = Scale * Gamma(1 + 1/Shape).
// This is how the paper's Fig. 5 states its disk lifetimes: a mean
// failure rate paired with a field-study shape.
func WeibullFromMeanRate(rate, shape float64) Weibull {
	checkPositive("weibull", "rate", rate)
	checkPositive("weibull", "shape", shape)
	return Weibull{Shape: shape, Scale: 1 / (rate * math.Gamma(1+1/shape)), invShape: 1 / shape}
}

// Sample draws Scale * E^(1/Shape) with E a standard exponential from
// the stream's ziggurat sampler (variable stream consumption per
// draw, like Exponential.Sample).
func (w Weibull) Sample(r *xrand.Source) float64 {
	return w.Scale * math.Pow(r.ExpFloat64(), 1/w.Shape)
}

// SampleN fills dst with independent draws, hoisting the 1/Shape
// exponent out of the loop.
func (w Weibull) SampleN(r *xrand.Source, dst []float64) {
	k := w.invShape
	if k == 0 {
		k = 1 / w.Shape
	}
	for i := range dst {
		dst[i] = w.Scale * math.Pow(r.ExpFloat64(), k)
	}
}

// Mean returns Scale * Gamma(1 + 1/Shape).
func (w Weibull) Mean() float64 { return w.Scale * math.Gamma(1+1/w.Shape) }

// Var returns Scale^2 * (Gamma(1+2/Shape) - Gamma(1+1/Shape)^2).
func (w Weibull) Var() float64 {
	g1 := math.Gamma(1 + 1/w.Shape)
	g2 := math.Gamma(1 + 2/w.Shape)
	return w.Scale * w.Scale * (g2 - g1*g1)
}

// CDF returns 1 - exp(-(x/Scale)^Shape).
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.Scale, w.Shape))
}

// Quantile returns Scale * (-ln(1-p))^(1/Shape).
func (w Weibull) Quantile(p float64) float64 {
	checkProb("weibull", p)
	return w.Scale * math.Pow(-math.Log1p(-p), 1/w.Shape)
}

// String names the law.
func (w Weibull) String() string {
	return fmt.Sprintf("Weibull(shape=%g, scale=%g)", w.Shape, w.Scale)
}
