// Package sensitivity ranks the availability models' parameters by
// how much they move the result — the "what should I fix first"
// analysis the paper's conclusion points designers and administrators
// toward. It computes log-log elasticities by central finite
// differences:
//
//	E_p = d ln(unavailability) / d ln(p)
//
// so E = +1 means a 1% increase in the parameter raises unavailability
// by 1%; negative elasticities mark parameters worth investing in
// (faster repairs, better checklists).
package sensitivity

import (
	"fmt"
	"math"
	"sort"
)

// Elasticity is one parameter's ranked influence.
type Elasticity struct {
	// Parameter names the knob.
	Parameter string
	// Value is the evaluation point.
	Value float64
	// Elasticity is d ln(U) / d ln(p) at the evaluation point.
	Elasticity float64
}

// Parameter is a named knob with an accessor pair over a model
// configuration of type T.
type Parameter[T any] struct {
	Name string
	Get  func(T) float64
	Set  func(T, float64) T
}

// Analyze computes the unavailability elasticity of every parameter by
// central differences with relative step h (e.g. 0.01). The eval
// function maps a configuration to an unavailability in (0, 1).
// Parameters whose value is zero are skipped (log-derivative
// undefined); the result is sorted by descending |elasticity|.
func Analyze[T any](cfg T, params []Parameter[T], h float64, eval func(T) (float64, error)) ([]Elasticity, error) {
	if h <= 0 || h >= 1 {
		return nil, fmt.Errorf("sensitivity: relative step %v outside (0,1)", h)
	}
	base, err := eval(cfg)
	if err != nil {
		return nil, err
	}
	if base <= 0 || base >= 1 {
		return nil, fmt.Errorf("sensitivity: base unavailability %v outside (0,1)", base)
	}
	var out []Elasticity
	for _, p := range params {
		v := p.Get(cfg)
		if v == 0 {
			continue
		}
		up, err := eval(p.Set(cfg, v*(1+h)))
		if err != nil {
			return nil, fmt.Errorf("sensitivity: %s+: %w", p.Name, err)
		}
		down, err := eval(p.Set(cfg, v*(1-h)))
		if err != nil {
			return nil, fmt.Errorf("sensitivity: %s-: %w", p.Name, err)
		}
		if up <= 0 || down <= 0 {
			continue
		}
		e := (math.Log(up) - math.Log(down)) / (math.Log(1+h) - math.Log(1-h))
		out = append(out, Elasticity{Parameter: p.Name, Value: v, Elasticity: e})
	}
	sort.Slice(out, func(i, j int) bool {
		return math.Abs(out[i].Elasticity) > math.Abs(out[j].Elasticity)
	})
	return out, nil
}
