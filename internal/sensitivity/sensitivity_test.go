package sensitivity

import (
	"errors"
	"math"
	"testing"

	"herald/internal/model"
)

// knownSystem: U = a * b^2 has elasticities exactly (1, 2).
type knownSystem struct{ a, b float64 }

func knownParams() []Parameter[knownSystem] {
	return []Parameter[knownSystem]{
		{Name: "a", Get: func(s knownSystem) float64 { return s.a },
			Set: func(s knownSystem, v float64) knownSystem { s.a = v; return s }},
		{Name: "b", Get: func(s knownSystem) float64 { return s.b },
			Set: func(s knownSystem, v float64) knownSystem { s.b = v; return s }},
	}
}

func TestAnalyzeClosedFormElasticities(t *testing.T) {
	cfg := knownSystem{a: 1e-3, b: 0.1}
	out, err := Analyze(cfg, knownParams(), 0.01, func(s knownSystem) (float64, error) {
		return s.a * s.b * s.b, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d elasticities", len(out))
	}
	// Sorted by magnitude: b (2) before a (1).
	if out[0].Parameter != "b" || math.Abs(out[0].Elasticity-2) > 1e-6 {
		t.Fatalf("b elasticity = %+v", out[0])
	}
	if out[1].Parameter != "a" || math.Abs(out[1].Elasticity-1) > 1e-6 {
		t.Fatalf("a elasticity = %+v", out[1])
	}
}

func TestAnalyzeSkipsZeroParameters(t *testing.T) {
	cfg := knownSystem{a: 0, b: 0.1}
	out, err := Analyze(cfg, knownParams(), 0.01, func(s knownSystem) (float64, error) {
		return 0.5 * s.b, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range out {
		if e.Parameter == "a" {
			t.Fatal("zero-valued parameter not skipped")
		}
	}
}

func TestAnalyzeValidation(t *testing.T) {
	cfg := knownSystem{a: 1e-3, b: 0.1}
	eval := func(s knownSystem) (float64, error) { return s.a, nil }
	if _, err := Analyze(cfg, knownParams(), 0, eval); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := Analyze(cfg, knownParams(), 1.5, eval); err == nil {
		t.Fatal("huge step accepted")
	}
	if _, err := Analyze(cfg, knownParams(), 0.01, func(knownSystem) (float64, error) {
		return 2, nil // not an unavailability
	}); err == nil {
		t.Fatal("out-of-range base accepted")
	}
	boom := errors.New("boom")
	if _, err := Analyze(cfg, knownParams(), 0.01, func(knownSystem) (float64, error) {
		return 0, boom
	}); err == nil {
		t.Fatal("eval error swallowed")
	}
}

// modelParams adapts the paper's conventional model for analysis.
func modelParams() []Parameter[model.Params] {
	return []Parameter[model.Params]{
		{Name: "lambda", Get: func(p model.Params) float64 { return p.Lambda },
			Set: func(p model.Params, v float64) model.Params { p.Lambda = v; return p }},
		{Name: "hep", Get: func(p model.Params) float64 { return p.HEP },
			Set: func(p model.Params, v float64) model.Params { p.HEP = v; return p }},
		{Name: "muDF", Get: func(p model.Params) float64 { return p.MuDF },
			Set: func(p model.Params, v float64) model.Params { p.MuDF = v; return p }},
		{Name: "muDDF", Get: func(p model.Params) float64 { return p.MuDDF },
			Set: func(p model.Params, v float64) model.Params { p.MuDDF = v; return p }},
		{Name: "muHE", Get: func(p model.Params) float64 { return p.MuHE },
			Set: func(p model.Params, v float64) model.Params { p.MuHE = v; return p }},
	}
}

func evalModel(p model.Params) (float64, error) {
	res, err := model.Conventional(p)
	if err != nil {
		return 0, err
	}
	return res.Unavailability(), nil
}

func TestPaperModelElasticities(t *testing.T) {
	out, err := Analyze(model.Paper(4, 1e-6, 0.01), modelParams(), 0.01, evalModel)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, e := range out {
		byName[e.Parameter] = e.Elasticity
	}
	// In the human-error-dominated regime: unavailability scales ~1:1
	// with lambda and hep, and improving muDDF (which governs the DU
	// resync) helps nearly 1:1.
	if e := byName["lambda"]; math.Abs(e-1) > 0.1 {
		t.Errorf("lambda elasticity = %v, want ~1", e)
	}
	if e := byName["hep"]; math.Abs(e-1) > 0.1 {
		t.Errorf("hep elasticity = %v, want ~1", e)
	}
	if e := byName["muDDF"]; e > -0.85 {
		t.Errorf("muDDF elasticity = %v, want strongly negative", e)
	}
	if e := byName["muHE"]; e > 0 {
		t.Errorf("muHE elasticity = %v, want <= 0", e)
	}
}

func TestElasticityIdentifiesHumanErrorRegimeShift(t *testing.T) {
	// At hep = 0 the muHE knob is inert, and lambda's elasticity is ~2
	// (double-failure dominated).
	out, err := Analyze(model.Paper(4, 1e-6, 1e-9), modelParams(), 0.01, evalModel)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range out {
		if e.Parameter == "lambda" {
			if math.Abs(e.Elasticity-2) > 0.1 {
				t.Errorf("failure-dominated lambda elasticity = %v, want ~2", e.Elasticity)
			}
		}
	}
}
