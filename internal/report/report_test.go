package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "lambda", "nines")
	tb.AddRow("1e-6", "8.40")
	tb.AddRow("1e-5", "5.55")
	tb.AddNote("parameters per paper §V-B")
	out := tb.String()
	for _, want := range []string{"Fig X", "lambda", "nines", "8.40", "5.55", "note: parameters"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("T", "a", "bbbb")
	tb.AddRow("xxxxxx", "y")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header line and data line must place column 2 at the same offset.
	var header, data string
	for i, l := range lines {
		if strings.HasPrefix(l, "a") {
			header = l
			data = lines[i+2] // separator between
			break
		}
	}
	if header == "" {
		t.Fatalf("no header found:\n%s", out)
	}
	if strings.Index(data, "y") != strings.Index(header, "bbbb") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestAddRowArityPanics(t *testing.T) {
	tb := NewTable("T", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestCSV(t *testing.T) {
	tb := NewTable("T", "name", "value")
	tb.AddRow(`quo"te`, "1,5")
	tb.AddRow("plain", "2")
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "name,value\n\"quo\"\"te\",\"1,5\"\nplain,2\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.5) != "1.5" {
		t.Errorf("F = %q", F(1.5))
	}
	if F3(2.0/3) != "0.667" {
		t.Errorf("F3 = %q", F3(2.0/3))
	}
	if E(0.000123) != "1.23e-04" {
		t.Errorf("E = %q", E(0.000123))
	}
	if B(true) != "yes" || B(false) != "no" {
		t.Error("B wrong")
	}
	inf := math.Inf(1)
	if F(inf) != "inf" || F3(inf) != "inf" || E(inf) != "inf" {
		t.Error("infinity formatting wrong")
	}
}

func TestEmptyTitleSkipsHeader(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("1")
	out := tb.String()
	if strings.HasPrefix(out, "\n") || strings.Contains(out, "=") {
		t.Fatalf("unexpected title decoration:\n%q", out)
	}
}
