// Package report renders experiment results as aligned ASCII tables
// and CSV — the textual equivalents of the paper's figures that the
// repro harness and CLIs print.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Notes   []string
	Columns []string
	Rows    [][]string
}

// NewTable returns an empty table with the given title and columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: append([]string(nil), columns...)}
}

// AddRow appends one row; the cell count must match the column count.
func (t *Table) AddRow(cells ...string) *Table {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, append([]string(nil), cells...))
	return t
}

// AddNote appends a free-form footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) *Table {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
	return t
}

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.Title)))
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		return ""
	}
	return sb.String()
}

// CSV writes the table as RFC-4180-ish CSV (quotes only where needed).
func (t *Table) CSV(w io.Writer) error {
	write := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

// F formats a float compactly (%.6g), the standard cell format.
func F(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.6g", v)
}

// F3 formats a float with three decimals; used for nines columns.
func F3(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.3f", v)
}

// E formats a float in scientific notation with two decimals; used for
// rates and unavailability magnitudes.
func E(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2e", v)
}

// B formats a boolean as yes/no.
func B(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}
