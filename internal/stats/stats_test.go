package stats

import (
	"math"
	"testing"
	"testing/quick"

	"herald/internal/dist"
	"herald/internal/xrand"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", a.Mean())
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if math.Abs(a.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %v, want %v", a.Variance(), 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Error("empty accumulator not zeroed")
	}
	if !math.IsNaN(a.Min()) || !math.IsNaN(a.Max()) {
		t.Error("empty accumulator min/max should be NaN")
	}
	iv := a.ConfidenceInterval(0.99)
	if iv.Lo != 0 || iv.Hi != 0 {
		t.Error("empty CI should be degenerate at 0")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Variance() != 0 {
		t.Error("single-sample variance should be 0")
	}
	iv := a.ConfidenceInterval(0.95)
	if iv.Lo != 3.5 || iv.Hi != 3.5 {
		t.Error("single-sample CI should be degenerate at the mean")
	}
}

func TestAccumulatorMergeMatchesSequential(t *testing.T) {
	r := xrand.New(42)
	var whole, left, right Accumulator
	for i := 0; i < 1000; i++ {
		x := r.NormFloat64()*3 + 10
		whole.Add(x)
		if i%2 == 0 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), whole.N())
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-10 {
		t.Errorf("merged mean %v vs %v", left.Mean(), whole.Mean())
	}
	if math.Abs(left.Variance()-whole.Variance()) > 1e-8 {
		t.Errorf("merged variance %v vs %v", left.Variance(), whole.Variance())
	}
	if left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Error("merged min/max mismatch")
	}
}

func TestAccumulatorMergeEmpty(t *testing.T) {
	var a, b Accumulator
	a.Add(1)
	a.Add(2)
	before := a
	a.Merge(&b) // merging empty is a no-op
	if a != before {
		t.Error("merging empty changed accumulator")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 1.5 {
		t.Error("merging into empty failed")
	}
}

func TestTinyMagnitudeStability(t *testing.T) {
	// Unavailability magnitudes ~1e-9 must not lose precision.
	var a Accumulator
	for i := 0; i < 1000; i++ {
		a.Add(1e-9 + float64(i%2)*1e-12)
	}
	want := 1e-9 + 0.5e-12
	if math.Abs(a.Mean()-want)/want > 1e-9 {
		t.Errorf("mean of tiny values = %v, want %v", a.Mean(), want)
	}
	if a.Variance() < 0 {
		t.Error("negative variance")
	}
}

func TestStudentTCDFSymmetry(t *testing.T) {
	for _, nu := range []float64{1, 2, 5, 30, 100} {
		for _, x := range []float64{0.5, 1, 2, 5} {
			s := StudentTCDF(nu, x) + StudentTCDF(nu, -x)
			if math.Abs(s-1) > 1e-12 {
				t.Errorf("CDF(%v)+CDF(-%v) = %v for nu=%v", x, x, s, nu)
			}
		}
		if math.Abs(StudentTCDF(nu, 0)-0.5) > 1e-15 {
			t.Errorf("CDF(0) != 0.5 for nu=%v", nu)
		}
	}
}

func TestStudentTQuantileKnownValues(t *testing.T) {
	// Classic t-table values.
	cases := []struct{ nu, p, want float64 }{
		{1, 0.975, 12.706},
		{2, 0.975, 4.3027},
		{5, 0.975, 2.5706},
		{10, 0.995, 3.1693},
		{30, 0.975, 2.0423},
		{100, 0.995, 2.6259},
		{1000000 - 1, 0.995, 2.5758},
	}
	for _, c := range cases {
		got := StudentTQuantile(c.nu, c.p)
		if math.Abs(got-c.want)/c.want > 2e-4 {
			t.Errorf("t(%v, %v) = %v, want %v", c.nu, c.p, got, c.want)
		}
	}
}

func TestStudentTQuantileRoundTrip(t *testing.T) {
	for _, nu := range []float64{3, 12, 60} {
		for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
			x := StudentTQuantile(nu, p)
			if back := StudentTCDF(nu, x); math.Abs(back-p) > 1e-9 {
				t.Errorf("CDF(Quantile(%v)) = %v for nu=%v", p, back, nu)
			}
		}
	}
}

func TestStudentTLargeNuIsNormal(t *testing.T) {
	got := StudentTQuantile(2e6, 0.975)
	if math.Abs(got-1.959964) > 1e-4 {
		t.Errorf("large-nu quantile = %v, want ~1.96", got)
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(2,2) = x^2 (3-2x).
	for _, x := range []float64{0.2, 0.5, 0.8} {
		want := x * x * (3 - 2*x)
		if got := RegIncBeta(2, 2, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("I_%v(2,2) = %v, want %v", x, got, want)
		}
	}
	if RegIncBeta(3, 4, 0) != 0 || RegIncBeta(3, 4, 1) != 1 {
		t.Error("boundary values wrong")
	}
}

func TestConfidenceIntervalCoverage(t *testing.T) {
	// ~95% of 95% CIs from normal samples should contain the true mean.
	r := xrand.New(7)
	const trials, n = 400, 30
	covered := 0
	for trial := 0; trial < trials; trial++ {
		var a Accumulator
		for i := 0; i < n; i++ {
			a.Add(r.NormFloat64()*2 + 5)
		}
		if a.ConfidenceInterval(0.95).Contains(5) {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.90 || frac > 0.99 {
		t.Errorf("95%% CI coverage = %v over %d trials", frac, trials)
	}
}

func TestHalfWidthShrinksWithN(t *testing.T) {
	r := xrand.New(11)
	var small, large Accumulator
	for i := 0; i < 100; i++ {
		small.Add(r.NormFloat64())
	}
	for i := 0; i < 10000; i++ {
		large.Add(r.NormFloat64())
	}
	if large.HalfWidth(0.99) >= small.HalfWidth(0.99) {
		t.Error("half-width did not shrink with more samples")
	}
}

func TestNinesConversions(t *testing.T) {
	cases := []struct{ avail, nines float64 }{
		{0.9, 1}, {0.99, 2}, {0.999, 3}, {0.99999, 5},
	}
	for _, c := range cases {
		if got := Nines(c.avail); math.Abs(got-c.nines) > 1e-9 {
			t.Errorf("Nines(%v) = %v, want %v", c.avail, got, c.nines)
		}
		if got := FromNines(c.nines); math.Abs(got-c.avail) > 1e-12 {
			t.Errorf("FromNines(%v) = %v, want %v", c.nines, got, c.avail)
		}
	}
	if !math.IsInf(Nines(1), 1) {
		t.Error("Nines(1) should be +Inf")
	}
	if FromNines(math.Inf(1)) != 1 {
		t.Error("FromNines(+Inf) should be 1")
	}
}

func TestNinesPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Nines(-0.1)
}

func TestDowntimeConversions(t *testing.T) {
	// Five nines is the canonical "about 5 minutes a year".
	min := DowntimeMinutesPerYear(0.99999)
	if min < 5 || min > 5.5 {
		t.Errorf("five-nines downtime = %v min/yr", min)
	}
	if got := DowntimeHoursPerYear(1); got != 0 {
		t.Errorf("perfect availability downtime = %v", got)
	}
	if got := Unavailability(1.0000001); got != 0 {
		t.Errorf("clamped unavailability = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	if h.Total() != 12 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Errorf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bin %d = %d, want 1", i, c)
		}
	}
	if med := h.Quantile(0.5); math.Abs(med-5.5) > 1.01 {
		t.Errorf("median = %v", med)
	}
}

func TestHistogramEdgeValue(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(math.Nextafter(1, 0)) // just under Hi must land in last bin
	if h.Counts[3] != 1 {
		t.Errorf("edge value landed in %v", h.Counts)
	}
	h.Add(1) // exactly Hi overflows
	if h.Overflow != 1 {
		t.Error("Hi should overflow")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 1, 5)
}

func TestSmallSampleHelpers(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 {
		t.Errorf("mean = %v", Mean(xs))
	}
	if Median(xs) != 2 {
		t.Errorf("median = %v", Median(xs))
	}
	if xs[0] != 3 {
		t.Error("median mutated input")
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-12 {
		t.Errorf("geomean = %v", g)
	}
	if !math.IsNaN(GeoMean([]float64{1, 0})) {
		t.Error("geomean with zero should be NaN")
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) || !math.IsNaN(GeoMean(nil)) {
		t.Error("empty helpers should be NaN")
	}
}

func TestQuickNinesRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		// Beyond ~10 nines the 1-a subtraction saturates float64
		// precision, so bound the property to the representable range.
		n := 0.5 + float64(raw)/65535*9 // nines in [0.5, 9.5]
		back := Nines(FromNines(n))
		return math.Abs(back-n) < 1e-5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAccumulatorMergeCommutes(t *testing.T) {
	f := func(seed uint64, split uint8) bool {
		r := xrand.New(seed)
		n := 10 + int(split)
		var ab, ba, a1, b1 Accumulator
		var xs []float64
		for i := 0; i < n; i++ {
			xs = append(xs, r.Float64()*100)
		}
		k := n / 2
		for i, x := range xs {
			if i < k {
				a1.Add(x)
			} else {
				b1.Add(x)
			}
		}
		ab = a1
		ab.Merge(&b1)
		ba = b1
		ba.Merge(&a1)
		return math.Abs(ab.Mean()-ba.Mean()) < 1e-9 &&
			math.Abs(ab.Variance()-ba.Variance()) < 1e-7 &&
			ab.N() == ba.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickVarianceNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		var a Accumulator
		for i := 0; i < 100; i++ {
			a.Add(r.Float64() * 1e-9)
		}
		return a.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 10, 5)
	a.Add(1)
	a.Add(-1)
	b.Add(3)
	b.Add(99)
	a.Merge(b)
	if a.Total() != 4 || a.Underflow != 1 || a.Overflow != 1 {
		t.Fatalf("merged totals wrong: %+v", a)
	}
	if a.Counts[0] != 1 || a.Counts[1] != 1 {
		t.Fatalf("merged counts = %v", a.Counts)
	}
}

func TestHistogramMergeMismatchPanics(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 20, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Merge(b)
}

// bisectTQuantile is the pre-unification reference implementation:
// bracket then bisect on StudentTCDF.
func bisectTQuantile(nu, p float64) float64 {
	lo, hi := -1.0, 1.0
	for StudentTCDF(nu, lo) > p {
		lo *= 2
		if lo < -1e12 {
			break
		}
	}
	for StudentTCDF(nu, hi) < p {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if StudentTCDF(nu, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+math.Abs(hi)) {
			break
		}
	}
	return (lo + hi) / 2
}

// TestStudentTQuantileMatchesBisection pins the Hill-plus-Newton
// inversion to the slow bracketed bisection it replaced, across small
// and large degrees of freedom and both tails.
func TestStudentTQuantileMatchesBisection(t *testing.T) {
	for _, nu := range []float64{1, 2, 3, 4.5, 9, 29, 99, 999, 123456} {
		// p = 0.5 is excluded: the fast path returns the exact 0 while
		// the bisection reference stops within ~1e-8 of it.
		for _, p := range []float64{0.001, 0.005, 0.025, 0.2, 0.8, 0.975, 0.995, 0.999} {
			fast := StudentTQuantile(nu, p)
			slow := bisectTQuantile(nu, p)
			if d := math.Abs(fast - slow); d > 1e-8*(1+math.Abs(slow)) {
				t.Errorf("nu=%v p=%v: fast %v vs bisection %v (diff %g)", nu, p, fast, slow, d)
			}
		}
	}
}

// TestNormQuantileUnification checks stats' large-nu fallback is
// exactly dist.NormQuantile (the local bisection duplicate is gone).
func TestNormQuantileUnification(t *testing.T) {
	for _, p := range []float64{0.001, 0.025, 0.3, 0.5, 0.7, 0.975, 0.999} {
		got := StudentTQuantile(2e6, p)
		want := dist.NormQuantile(p)
		if got != want {
			t.Errorf("StudentTQuantile(2e6, %v) = %v, want dist.NormQuantile = %v", p, got, want)
		}
	}
	// And dist.NormQuantile itself round-trips through the erfc CDF.
	for _, p := range []float64{1e-9, 0.001, 0.3, 0.9999} {
		z := dist.NormQuantile(p)
		if back := 0.5 * math.Erfc(-z/math.Sqrt2); math.Abs(back-p) > 1e-12*(1+p) {
			t.Errorf("NormCDF(NormQuantile(%v)) = %v", p, back)
		}
	}
}

func BenchmarkStudentTQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = StudentTQuantile(99, 0.995)
	}
}

// TestHistogramQuantileAllMassInteriorBin pins the Quantile
// off-by-one: with every observation in one interior bin, every
// quantile — including q=1, whose truncated target used to walk off
// the end and answer h.Hi — is that bin's center.
func TestHistogramQuantileAllMassInteriorBin(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(3.5)
	}
	want := h.BinCenter(3)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

// TestHistogramQuantileOverflowMass checks high quantiles account for
// Overflow: ranks inside the top overflow decile answer h.Hi, ranks at
// or below the in-range mass answer their bin.
func TestHistogramQuantileOverflowMass(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 90; i++ {
		h.Add(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Add(42)
	}
	if got := h.Quantile(0.5); got != h.BinCenter(0) {
		t.Errorf("Quantile(0.5) = %v, want %v", got, h.BinCenter(0))
	}
	if got := h.Quantile(0.9); got != h.BinCenter(0) {
		t.Errorf("Quantile(0.9) = %v, want %v (90th observation is in-range)", got, h.BinCenter(0))
	}
	for _, q := range []float64{0.95, 1} {
		if got := h.Quantile(q); got != h.Hi {
			t.Errorf("Quantile(%v) = %v, want Hi=%v (overflow mass)", q, got, h.Hi)
		}
	}
}

// TestHistogramQuantileUnderflowAndDomain checks the low end and the
// domain guard: underflow mass answers h.Lo, and q outside [0,1]
// (including NaN) answers NaN instead of a bogus bin.
func TestHistogramQuantileUnderflowAndDomain(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(-5)
	h.Add(5.5)
	if got := h.Quantile(0); got != h.Lo {
		t.Errorf("Quantile(0) = %v, want Lo=%v", got, h.Lo)
	}
	if got := h.Quantile(1); got != h.BinCenter(5) {
		t.Errorf("Quantile(1) = %v, want %v", got, h.BinCenter(5))
	}
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Errorf("Quantile(%v) = %v, want NaN", q, got)
		}
	}
}

// TestConfidenceLevelOutOfRangeIsNaN pins the non-panicking sentinel:
// HalfWidth and ConfidenceInterval answer NaN for levels outside
// (0,1) — the values that used to reach StudentTQuantile and panic.
func TestConfidenceLevelOutOfRangeIsNaN(t *testing.T) {
	var a Accumulator
	for i := 0; i < 10; i++ {
		a.Add(float64(i))
	}
	for _, lvl := range []float64{-0.5, 0, 1, 1.5, math.NaN()} {
		if hw := a.HalfWidth(lvl); !math.IsNaN(hw) {
			t.Errorf("HalfWidth(%v) = %v, want NaN", lvl, hw)
		}
		if iv := a.ConfidenceInterval(lvl); !math.IsNaN(iv.Lo) || !math.IsNaN(iv.Hi) {
			t.Errorf("ConfidenceInterval(%v) = %v, want NaN interval", lvl, iv)
		}
	}
	if hw := a.HalfWidth(0.99); math.IsNaN(hw) || hw <= 0 {
		t.Errorf("HalfWidth(0.99) = %v, want positive", hw)
	}
}
