package stats

import (
	"encoding/json"
	"math"
)

// WeightedAccumulator tracks the moments an importance-sampled
// Monte-Carlo stream needs: alongside the raw count n it maintains
//
//	w    = Σ wᵢ
//	w2   = Σ wᵢ²
//	mean = Σ wᵢ xᵢ / Σ wᵢ   (the self-normalized estimator)
//	m2   = Σ wᵢ (xᵢ - mean)²
//	s1   = Σ wᵢ² (xᵢ - mean)
//	v2   = Σ wᵢ² (xᵢ - mean)²
//
// all centred on the current weighted mean, updated online in the
// Welford/Chan style so Add-then-Merge over any partition of the stream
// is exact (identical merge order ⇒ bit-identical state, the same
// contract Accumulator gives the shard layer). v2/s1 feed the
// delta-method standard error of the ratio estimator; w²/w2 is the
// Kish effective sample size. With all weights equal to 1 every
// accessor agrees with the unweighted Accumulator. The zero value is
// ready to use.
type WeightedAccumulator struct {
	n    int64
	w    float64
	w2   float64
	mean float64
	m2   float64
	s1   float64
	v2   float64
}

// Add folds one observation x carrying importance weight w >= 0.
// Zero-weight observations count toward n but carry no mass (the
// likelihood ratio underflowed; its contribution is genuinely
// negligible in that case).
func (a *WeightedAccumulator) Add(x, w float64) {
	a.n++
	if w == 0 {
		return
	}
	if a.w == 0 {
		a.w, a.w2, a.mean = w, w*w, x
		return
	}
	total := a.w + w
	delta := x - a.mean
	dA := delta * (w / total) // shift of the running mean
	dB := dA - delta          // = -(delta·wA/total): singleton's offset from the new mean
	w2B := w * w
	a.m2 += a.w*dA*dA + w*dB*dB
	a.v2 += -2*dA*a.s1 + a.w2*dA*dA + w2B*dB*dB
	a.s1 += -a.w2*dA - w2B*dB
	a.mean += dA
	a.w = total
	a.w2 += w2B
}

// Merge folds another weighted accumulator into this one. Both sides'
// centred moments are shifted to the combined mean before summing, so
// any grouping of a stream into sub-accumulators merged in stream
// order reproduces the sequential Add result exactly.
func (a *WeightedAccumulator) Merge(b *WeightedAccumulator) {
	if b.n == 0 {
		return
	}
	if b.w == 0 {
		a.n += b.n
		return
	}
	if a.w == 0 {
		n := a.n + b.n
		*a = *b
		a.n = n
		return
	}
	total := a.w + b.w
	delta := b.mean - a.mean
	dA := delta * (b.w / total)
	dB := dA - delta
	a.m2 = a.m2 + a.w*dA*dA + b.m2 + b.w*dB*dB
	a.v2 = (a.v2 - 2*dA*a.s1 + a.w2*dA*dA) + (b.v2 - 2*dB*b.s1 + b.w2*dB*dB)
	a.s1 = (a.s1 - a.w2*dA) + (b.s1 - b.w2*dB)
	a.mean += dA
	a.w = total
	a.w2 += b.w2
	a.n += b.n
}

// N returns the number of observations (zero-weight ones included).
func (a *WeightedAccumulator) N() int64 { return a.n }

// SumW returns Σw, the total importance weight seen.
func (a *WeightedAccumulator) SumW() float64 { return a.w }

// ESS returns the Kish effective sample size (Σw)²/Σw² — the number of
// equally-weighted observations carrying the same information. 0 when
// no mass has been recorded.
func (a *WeightedAccumulator) ESS() float64 {
	if a.w2 == 0 {
		return 0
	}
	return a.w * a.w / a.w2
}

// Mean returns the self-normalized estimate Σwx/Σw (0 when empty).
// Under an importance-sampling proposal Q this is the consistent
// estimator of E_P[x] with the smaller variance in the zero-inflated
// regime; it is exact for constants regardless of the weights.
func (a *WeightedAccumulator) Mean() float64 { return a.mean }

// MeanHT returns the Horvitz–Thompson estimate Σwx/n, unbiased when
// the weights are exact likelihood ratios (E_Q[w] = 1). It is reported
// as a diagnostic: a MeanHT far from Mean flags weight degeneracy.
func (a *WeightedAccumulator) MeanHT() float64 {
	if a.n == 0 {
		return 0
	}
	return a.w * a.mean / float64(a.n)
}

// Variance returns the weighted sample variance of the observations
// (frequency-weight convention, scaled n/(n-1); 0 for fewer than two
// observations). With unit weights it equals Accumulator.Variance.
func (a *WeightedAccumulator) Variance() float64 {
	if a.n < 2 || a.w == 0 {
		return 0
	}
	return a.m2 / a.w * float64(a.n) / float64(a.n-1)
}

// StdErr returns the delta-method standard error of the
// self-normalized mean: sqrt(Σw²(x-mean)² · n/(n-1)) / Σw. With unit
// weights it reduces exactly to Accumulator.StdErr.
func (a *WeightedAccumulator) StdErr() float64 {
	if a.n < 2 || a.w == 0 {
		return 0
	}
	v := a.v2 * float64(a.n) / float64(a.n-1)
	if !(v > 0) {
		return 0
	}
	return math.Sqrt(v) / a.w
}

// HalfWidth returns the Student-t confidence half-width of the
// self-normalized mean at the given level, on ESS-based degrees of
// freedom (min(n-1, ESS-1), floored at 1): with degenerate weights the
// information content is ESS observations, not n. A level outside
// (0, 1) — including NaN — yields NaN rather than a panic.
func (a *WeightedAccumulator) HalfWidth(level float64) float64 {
	if !(level > 0 && level < 1) {
		return math.NaN()
	}
	if a.n < 2 {
		return 0
	}
	se := a.StdErr()
	if se == 0 {
		return 0
	}
	df := a.ESS() - 1
	if fn := float64(a.n - 1); df > fn {
		df = fn
	}
	if !(df >= 1) {
		df = 1
	}
	return StudentTQuantile(df, 0.5+level/2) * se
}

// WeightedAccumulatorState is the exported snapshot of a
// WeightedAccumulator: the exact sufficient statistics of the weighted
// stream. It is the wire and checkpoint representation used by sharded
// biased runs; restoring a state and continuing reproduces the
// accumulator bit-for-bit.
type WeightedAccumulatorState struct {
	N    int64   `json:"n"`
	W    float64 `json:"w"`
	W2   float64 `json:"w2"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	S1   float64 `json:"s1"`
	V2   float64 `json:"v2"`
}

// State returns the accumulator's exact snapshot.
func (a *WeightedAccumulator) State() WeightedAccumulatorState {
	return WeightedAccumulatorState{N: a.n, W: a.w, W2: a.w2, Mean: a.mean, M2: a.m2, S1: a.s1, V2: a.v2}
}

// SetState overwrites the accumulator with a previously captured
// snapshot.
func (a *WeightedAccumulator) SetState(st WeightedAccumulatorState) {
	a.n, a.w, a.w2, a.mean, a.m2, a.s1, a.v2 = st.N, st.W, st.W2, st.Mean, st.M2, st.S1, st.V2
}

// MarshalJSON encodes the accumulator as its state snapshot.
func (a WeightedAccumulator) MarshalJSON() ([]byte, error) {
	return json.Marshal(a.State())
}

// UnmarshalJSON decodes a snapshot back into the accumulator.
func (a *WeightedAccumulator) UnmarshalJSON(b []byte) error {
	var st WeightedAccumulatorState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	a.SetState(st)
	return nil
}
