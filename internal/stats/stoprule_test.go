package stats

import (
	"math"
	"testing"
)

// accOf builds an accumulator from explicit observations.
func accOf(xs ...float64) *Accumulator {
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return &a
}

// synthAcc builds a zero-inflated stream: n observations of which
// events carry the value lo (the rest are 1.0), mimicking availability
// samples where most lifetimes see no downtime.
func synthAcc(n, events int64, lo float64) *Accumulator {
	var a Accumulator
	for i := int64(0); i < n; i++ {
		if i < events {
			a.Add(lo)
		} else {
			a.Add(1)
		}
	}
	return &a
}

func TestStopRuleValidate(t *testing.T) {
	good := StopRule{TargetHalfWidth: 1e-6}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
	for _, r := range []StopRule{
		{TargetHalfWidth: 0},
		{TargetHalfWidth: -1},
		{TargetHalfWidth: math.Inf(1)},
		{TargetHalfWidth: math.NaN()},
		{TargetHalfWidth: 1e-6, Confidence: 1},
		{TargetHalfWidth: 1e-6, Confidence: -0.5},
		{TargetHalfWidth: 1e-6, MinN: -1},
		{TargetHalfWidth: 1e-6, MinEvents: -2},
	} {
		if err := r.Validate(); err == nil {
			t.Errorf("rule %+v accepted", r)
		}
	}
}

// TestStopRuleFloors pins that the rule never binds before its MinN /
// MinEvents floors, however tight the stream looks.
func TestStopRuleFloors(t *testing.T) {
	r := StopRule{TargetHalfWidth: 1, MinN: 100, MinEvents: 10}
	if r.Met(synthAcc(50, 20, 0.5), 20) {
		t.Error("rule bound below MinN")
	}
	if r.Met(synthAcc(200, 5, 0.5), 5) {
		t.Error("rule bound below MinEvents")
	}
	if !r.Met(synthAcc(200, 20, 0.5), 20) {
		t.Error("rule did not bind with both floors met and a huge target")
	}
}

// TestStopRuleZeroVariance pins the degenerate-stream guard: a stream
// of identical observations has half-width 0 but carries no
// information about the tail, so the rule must not bind.
func TestStopRuleZeroVariance(t *testing.T) {
	r := StopRule{TargetHalfWidth: 1e-3, MinN: 4, MinEvents: 1}
	var a Accumulator
	for i := 0; i < 1000; i++ {
		a.Add(1)
	}
	// events reported nonzero on purpose: the variance guard alone must
	// refuse.
	if r.Met(&a, 50) {
		t.Error("rule bound on a zero-variance stream")
	}
	if !math.IsInf(r.EffectiveHalfWidth(&a, 50), 1) {
		t.Error("effective half-width of a zero-variance stream is not +Inf")
	}
}

// TestStopRuleEffectiveDF pins the Student-t safeguard: with few
// informative observations the rule uses the wider quantile at
// df = events, so an event-starved stream needs a larger margin than
// the n-1 reporting quantile suggests.
func TestStopRuleEffectiveDF(t *testing.T) {
	r := StopRule{TargetHalfWidth: 1e-9, Confidence: 0.99, MinN: 16, MinEvents: 2}
	a := synthAcc(10000, 3, 0.9)
	events := int64(3)

	eff := r.EffectiveHalfWidth(a, events)
	reported := a.HalfWidth(0.99)
	if !(eff > reported) {
		t.Errorf("effective half-width %g not wider than reported %g with 3 events over 10000 obs", eff, reported)
	}
	// The widening is exactly the quantile ratio t_df=3 / t_df=9999.
	want := reported * StudentTQuantile(3, 0.995) / StudentTQuantile(9999, 0.995)
	if math.Abs(eff-want) > 1e-12*math.Abs(want) {
		t.Errorf("effective half-width %g, want %g", eff, want)
	}

	// With events >= n-1 the two quantiles agree (df = n-1 in both).
	b := synthAcc(10000, 9999, 0.9)
	if got := r.EffectiveHalfWidth(b, 9999); math.Abs(got-b.HalfWidth(0.99)) > 1e-12*got {
		t.Errorf("event-rich stream widened: eff %g, reported %g", got, b.HalfWidth(0.99))
	}
}

// TestStopRuleMetImpliesReported pins the a-fortiori property the
// adaptive runs rely on: a met rule implies the *reported* (df = n-1)
// half-width is also at or below the target.
func TestStopRuleMetImpliesReported(t *testing.T) {
	r := StopRule{TargetHalfWidth: 0.02, MinN: 32, MinEvents: 4}
	for events := int64(4); events <= 4096; events *= 4 {
		a := synthAcc(8192, events, 0.8)
		if r.Met(a, events) && a.HalfWidth(r.confidence()) > r.TargetHalfWidth {
			t.Errorf("events=%d: rule met but reported half-width %g above target %g",
				events, a.HalfWidth(r.confidence()), r.TargetHalfWidth)
		}
	}
}

// TestStopRuleDefaults pins the zero-value safeguards.
func TestStopRuleDefaults(t *testing.T) {
	r := StopRule{TargetHalfWidth: 10}
	a := synthAcc(DefaultStopMinN-1, DefaultStopMinEvents, 0.5)
	if r.Met(a, DefaultStopMinEvents) {
		t.Error("rule bound below the default MinN")
	}
	b := synthAcc(DefaultStopMinN, DefaultStopMinEvents-1, 0.5)
	if r.Met(b, DefaultStopMinEvents-1) {
		t.Error("rule bound below the default MinEvents")
	}
	c := synthAcc(DefaultStopMinN, DefaultStopMinEvents, 0.5)
	if !r.Met(c, DefaultStopMinEvents) {
		t.Error("rule did not bind at the default floors with a huge target")
	}
	if r.confidence() != 0.99 {
		t.Errorf("default confidence %v, want 0.99", r.confidence())
	}
}

// TestStopRuleDegenerateInputs is the corrupt-snapshot regression:
// negative event counts and NaN or negative moments (as restored from
// a damaged checkpoint, or produced by a buggy weighted fold) must
// answer +Inf / not-met, never bind the rule.
func TestStopRuleDegenerateInputs(t *testing.T) {
	r := StopRule{TargetHalfWidth: 10, MinN: 2, MinEvents: 1}

	if hw := r.EffectiveHalfWidth(synthAcc(100, 50, 0.5), -3); !math.IsInf(hw, 1) {
		t.Errorf("negative events: half-width %v, want +Inf", hw)
	}
	if r.Met(synthAcc(100, 50, 0.5), -3) {
		t.Error("rule bound on a negative event count")
	}

	for name, m2 := range map[string]float64{"NaN m2": math.NaN(), "negative m2": -1} {
		var a Accumulator
		a.SetState(AccumulatorState{N: 100, Mean: 0.9, M2: m2, Min: 0.5, Max: 1})
		if hw := r.EffectiveHalfWidth(&a, 50); !math.IsInf(hw, 1) {
			t.Errorf("%s: half-width %v, want +Inf", name, hw)
		}
		if r.Met(&a, 50) {
			t.Errorf("%s: rule bound", name)
		}
	}
}

// weightedSynth builds the weighted counterpart of synthAcc with unit
// weights.
func weightedSynth(n, events int64, lo float64) *WeightedAccumulator {
	var a WeightedAccumulator
	for i := int64(0); i < n; i++ {
		if i < events {
			a.Add(lo, 1)
		} else {
			a.Add(1, 1)
		}
	}
	return &a
}

// TestStopRuleWeighted pins the importance-sampled variant: with unit
// weights it behaves like the unweighted rule fed events = n, the ESS
// floor replaces the event floor, and degenerate weighted moments
// never bind.
func TestStopRuleWeighted(t *testing.T) {
	r := StopRule{TargetHalfWidth: 10, MinN: 32, MinEvents: 16}

	if !r.MetWeighted(weightedSynth(64, 32, 0.5)) {
		t.Error("weighted rule did not bind on a healthy stream with a huge target")
	}
	if r.MetWeighted(weightedSynth(31, 16, 0.5)) {
		t.Error("weighted rule bound below MinN")
	}

	// ESS floor: one dominating weight collapses ESS to ~1 < MinEvents.
	var dom WeightedAccumulator
	for i := 0; i < 64; i++ {
		dom.Add(1, 1e-12)
	}
	dom.Add(0.5, 1e6)
	if hw := r.EffectiveHalfWidthWeighted(&dom); !math.IsInf(hw, 1) {
		t.Errorf("degenerate-weight stream: half-width %v, want +Inf", hw)
	}

	// Zero variance never binds.
	var flat WeightedAccumulator
	for i := 0; i < 64; i++ {
		flat.Add(1, 1)
	}
	if hw := r.EffectiveHalfWidthWeighted(&flat); !math.IsInf(hw, 1) {
		t.Errorf("zero-variance stream: half-width %v, want +Inf", hw)
	}

	// NaN moments from a corrupt snapshot answer +Inf / not-met.
	for name, st := range map[string]WeightedAccumulatorState{
		"NaN v2":      {N: 100, W: 100, W2: 100, Mean: 0.9, M2: 1, S1: 0, V2: math.NaN()},
		"NaN w2":      {N: 100, W: 100, W2: math.NaN(), Mean: 0.9, M2: 1, S1: 0, V2: 1},
		"negative v2": {N: 100, W: 100, W2: 100, Mean: 0.9, M2: 1, S1: 0, V2: -4},
		"zero mass":   {N: 100, W: 0, W2: 0, Mean: 0, M2: 0, S1: 0, V2: 0},
	} {
		var a WeightedAccumulator
		a.SetState(st)
		if hw := r.EffectiveHalfWidthWeighted(&a); !math.IsInf(hw, 1) {
			t.Errorf("%s: half-width %v, want +Inf", name, hw)
		}
		if r.MetWeighted(&a) {
			t.Errorf("%s: weighted rule bound", name)
		}
	}

	// Unit weights reproduce the unweighted rule at events = n.
	wa := weightedSynth(4096, 512, 0.8)
	ua := synthAcc(4096, 512, 0.8)
	got := r.EffectiveHalfWidthWeighted(wa)
	want := r.EffectiveHalfWidth(ua, 4095)
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("unit weights: weighted %g vs unweighted %g", got, want)
	}
}
